module supercharged

go 1.24
