package supercharged

// One benchmark per table/figure of the paper's evaluation (§4), per
// DESIGN.md's experiment index. Absolute numbers come from the simulated
// substrate (see DESIGN.md §1); the asserted artifacts are the shapes —
// linear vs flat, crossover, improvement factor, n(n-1).
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	"supercharged/internal/lab"
	"supercharged/internal/metrics"
	"supercharged/internal/sim"
)

// BenchmarkFig5 regenerates Fig. 5 cell by cell: per prefix count and
// mode, one lab run per iteration. Custom metrics report the measured
// convergence distribution alongside the paper's reference maxima.
func BenchmarkFig5(b *testing.B) {
	paperMax := map[int]float64{
		1_000: 0.9, 5_000: 1.6, 10_000: 3.4, 50_000: 13.8, 100_000: 29.2,
		200_000: 56.9, 300_000: 86.4, 400_000: 113.1, 500_000: 140.9,
	}
	for _, n := range lab.Fig5Sweep {
		for _, mode := range []sim.Mode{sim.Standalone, sim.Supercharged} {
			name := fmt.Sprintf("%s/prefixes=%d", mode, n)
			b.Run(name, func(b *testing.B) {
				var last metrics.Summary
				for i := 0; i < b.N; i++ {
					res, err := sim.Run(context.Background(), sim.Config{Mode: mode, NumPrefixes: n, Seed: int64(i + 1)})
					if err != nil {
						b.Fatal(err)
					}
					last = metrics.SummarizeDurations(res.Durations())
				}
				b.ReportMetric(last.Median, "median-s")
				b.ReportMetric(last.Max, "max-s")
				if mode == sim.Standalone {
					b.ReportMetric(paperMax[n], "paper-max-s")
				} else {
					b.ReportMetric(lab.Fig5PaperSuperchargedSeconds, "paper-max-s")
				}
			})
		}
	}
}

// BenchmarkFirstEntry regenerates E2: the standalone router's best case —
// the time to update the first FIB entry (paper: 375 ms).
func BenchmarkFirstEntry(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		d, err := lab.FirstEntry(context.Background(), 1_000, 3, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		best = d.Seconds()
	}
	b.ReportMetric(best, "best-case-s")
	b.ReportMetric(0.375, "paper-s")
}

// BenchmarkControllerUpdate regenerates E3: per-UPDATE processing latency
// through the controller (decision process + Listing 1 + rewrite) over two
// full feeds. The default feed is scaled to 100k prefixes per peer to keep
// a bench iteration under a few seconds; pass -timeout accordingly and see
// cmd/lab -experiment micro for the full 2×500k replay.
func BenchmarkControllerUpdate(b *testing.B) {
	var last *lab.MicroResult
	for i := 0; i < b.N; i++ {
		res, err := lab.RunMicro(context.Background(), lab.MicroConfig{Prefixes: 100_000, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		perUpdate := last.Total.Seconds() / float64(last.Updates)
		b.ReportMetric(perUpdate*1e6, "µs/update")
		b.ReportMetric(last.Summary.P99*1e6, "p99-µs")
		b.ReportMetric(0.125*1e6, "paper-p99-µs")
	}
}

// BenchmarkBackupGroups regenerates E4: the number of backup-groups as a
// function of the peer count (paper: n(n-1), e.g. 90 groups at 10 peers).
func BenchmarkBackupGroups(b *testing.B) {
	var rows []lab.GroupsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = lab.RunGroups(context.Background(), lab.GroupsConfig{MaxPeers: 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		lastRow := rows[len(rows)-1]
		b.ReportMetric(float64(lastRow.Groups), "groups@10peers")
		b.ReportMetric(float64(lastRow.Expected), "paper-n(n-1)")
	}
}

// BenchmarkImprovementFactor regenerates E5: the headline speed-up at the
// largest table size the bench budget allows per iteration (50k; the full
// 512k factor is reported by cmd/lab -experiment fig5).
func BenchmarkImprovementFactor(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		std, err := sim.Run(context.Background(), sim.Config{Mode: sim.Standalone, NumPrefixes: 50_000, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		sup, err := sim.Run(context.Background(), sim.Config{Mode: sim.Supercharged, NumPrefixes: 50_000, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		factor = metrics.SummarizeDurations(std.Durations()).Max /
			metrics.SummarizeDurations(sup.Durations()).Max
	}
	b.ReportMetric(factor, "x-improvement@50k")
	b.ReportMetric(900, "paper-x@512k")
}

// BenchmarkAblationBFDSweep regenerates A3: detection share of the
// supercharged convergence budget.
func BenchmarkAblationBFDSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunBFDSweep(context.Background(), 5_000, nil, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationK3 regenerates A2: k=3 groups under double failure.
func BenchmarkAblationK3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunK3(context.Background(), 2_000, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReplicas regenerates A1: replica VNH agreement under
// reordered delivery, sequential vs deterministic allocation.
func BenchmarkAblationReplicas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lab.RunReplicaDeterminism(context.Background(), 2_000, 4, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}
