// Livelab: the full Fig. 4 test-bed on real transports — BGP over TCP
// (localhost), OpenFlow over TCP, emulated Ethernet links, live probe
// traffic, a cable pull and BFD-budgeted failover. This is the real-mode
// counterpart of the discrete-event lab, scaled down to run in seconds.
//
//	go run ./examples/livelab
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/core"
	"supercharged/internal/feed"
	"supercharged/internal/metrics"
	"supercharged/internal/netem"
	"supercharged/internal/openflow"
	"supercharged/internal/packet"
	"supercharged/internal/router"
	"supercharged/internal/trafficgen"
)

const (
	nPrefixes = 500
	nFlows    = 30
)

func tcpListener() net.Listener {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func dialTo(l net.Listener) func() (net.Conn, error) {
	addr := l.Addr().String()
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

type provider struct {
	addr netip.Addr
	as   uint32
	mac  packet.MAC
	sess *bgp.Session
	sink *trafficgen.Sink
}

func newProvider(addr netip.Addr, as uint32, mac packet.MAC, port *netem.Port, dests []netip.Addr) *provider {
	p := &provider{addr: addr, as: as, mac: mac}
	p.sink = trafficgen.NewSink(trafficgen.SinkConfig{Expected: dests, Precision: 70 * time.Microsecond})
	port.Handle(func(frame []byte) {
		var eth packet.Ethernet
		if eth.DecodeFromBytes(frame) != nil {
			return
		}
		switch eth.Type {
		case packet.EtherTypeARP:
			var arp packet.ARP
			if arp.DecodeFromBytes(eth.Payload) == nil && arp.Op == packet.ARPRequest && arp.TargetIP == p.addr {
				reply, _ := packet.ARPReplyFrame(packet.NewBuffer(), p.mac, p.addr, arp)
				port.Send(reply)
			}
		case packet.EtherTypeIPv4:
			if eth.Dst == p.mac {
				p.sink.HandleFrame(frame)
			}
		}
	})
	return p
}

func main() {
	var (
		routerIP  = netip.MustParseAddr("203.0.113.254")
		ctrlIP    = netip.MustParseAddr("203.0.113.253")
		r2IP      = netip.MustParseAddr("203.0.113.1")
		r3IP      = netip.MustParseAddr("198.51.100.2")
		routerMAC = packet.MustParseMAC("00:ff:00:00:00:01")
		r2MAC     = packet.MustParseMAC("01:aa:00:00:00:01")
		r3MAC     = packet.MustParseMAC("02:bb:00:00:00:01")
		srcMAC    = packet.MustParseMAC("00:01:00:00:00:99")
	)

	// Data plane.
	clk := clock.Real{}
	linkR1 := netem.NewLink(clk, "r1", "sw1", 0)
	linkR2 := netem.NewLink(clk, "r2", "sw2", 0)
	linkR3 := netem.NewLink(clk, "r3", "sw3", 0)
	linkSrc := netem.NewLink(clk, "src", "sw4", 0)
	r1Port, sw1 := linkR1.Ports()
	r2Port, sw2 := linkR2.Ports()
	r3Port, sw3 := linkR3.Ports()
	srcPort, sw4 := linkSrc.Ports()

	// Feed and probe targets.
	table := feed.Generate(feed.Config{N: nPrefixes, Seed: 42})
	destPrefixes := table.SamplePrefixes(nFlows, 1)
	dests := make([]netip.Addr, len(destPrefixes))
	for i, p := range destPrefixes {
		dests[i] = p.Addr().Next()
	}

	// Control plane over real TCP.
	peerL2, peerL3, routerL, ofL := tcpListener(), tcpListener(), tcpListener(), tcpListener()

	ctrl := core.NewController(core.ControllerConfig{
		LocalAS:  65001,
		RouterID: ctrlIP,
		Peers: []core.PeerConfig{
			{Addr: r2IP, AS: 65002, MAC: r2MAC, SwitchPort: 2, Weight: 200, Dial: dialTo(peerL2)},
			{Addr: r3IP, AS: 65003, MAC: r3MAC, SwitchPort: 3, Weight: 100, Dial: dialTo(peerL3)},
		},
		Router:     core.RouterConfig{Addr: routerIP, AS: 65000, MAC: routerMAC, SwitchPort: 1},
		SwitchDPID: 0x53,
		AllocMode:  core.AllocDeterministic,
	})
	go ctrl.ServeOpenFlow(ofL)
	go func() {
		for {
			conn, err := routerL.Accept()
			if err != nil {
				return
			}
			ctrl.AcceptRouter(conn)
		}
	}()

	sw := openflow.NewSwitch(openflow.SwitchConfig{
		DPID:           0x53,
		Ports:          map[uint16]*netem.Port{1: sw1, 2: sw2, 3: sw3, 4: sw4},
		Dial:           func() (net.Conn, error) { return net.Dial("tcp", ofL.Addr().String()) },
		InstallLatency: time.Millisecond,
		PuntOnMiss:     true,
	})

	prov2 := newProvider(r2IP, 65002, r2MAC, r2Port, dests)
	prov3 := newProvider(r3IP, 65003, r3MAC, r3Port, dests)
	for _, pr := range []struct {
		p *provider
		l net.Listener
	}{{prov2, peerL2}, {prov3, peerL3}} {
		pr.p.sess = bgp.NewSession(bgp.SessionConfig{
			LocalAS: pr.p.as, LocalID: pr.p.addr, PeerAS: 65001, PeerAddr: ctrlIP,
		})
		go func(sess *bgp.Session, l net.Listener) {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				go sess.Accept(conn)
			}
		}(pr.p.sess, pr.l)
	}

	r1 := router.New(router.Config{
		AS: 65000, RouterID: routerIP, IfIP: routerIP, IfMAC: routerMAC,
		Port: r1Port, PerEntry: 280 * time.Microsecond,
		Neighbors: []router.NeighborConfig{{Addr: ctrlIP, AS: 65001, Dial: dialTo(routerL)}},
	})

	fmt.Println("livelab: bringing up BGP over TCP, OpenFlow over TCP...")
	ctrl.Start()
	defer ctrl.Stop()
	sw.Start()
	defer sw.Stop()
	r1.Start()
	defer r1.Stop()

	waitFor("BGP sessions", func() bool {
		return prov2.sess.Established() && prov3.sess.Established() && ctrl.RouterEstablished()
	})

	codec := bgp.Codec{ASN4: true}
	for _, p := range []*provider{prov2, prov3} {
		ups, err := table.Updates(p.as, p.addr, codec)
		if err != nil {
			log.Fatal(err)
		}
		for _, u := range ups {
			if err := p.sess.Send(u); err != nil {
				log.Fatal(err)
			}
		}
	}
	waitFor("router FIB population", func() bool {
		if r1.FIB().Len() < nPrefixes || r1.FIB().QueueLen() != 0 {
			return false
		}
		// Steady state: every probe prefix tagged with a virtual MAC.
		for _, p := range destPrefixes {
			nh, ok := r1.FIB().Get(p)
			if !ok || !nh.MAC.IsLocal() {
				return false
			}
		}
		return true
	})
	fmt.Printf("livelab: router FIB holds %d prefixes, %d backup group(s)\n",
		r1.FIB().Len(), ctrl.Groups().Len())

	src := trafficgen.NewSource(trafficgen.SourceConfig{
		Port: srcPort, SrcMAC: srcMAC, GatewayMAC: routerMAC,
		SrcIP: netip.MustParseAddr("192.0.2.10"), Dests: dests,
		Interval: 2 * time.Millisecond,
	})
	src.Start()
	defer src.Stop()
	waitFor("traffic at primary provider", func() bool {
		for _, d := range dests {
			if fs, _ := prov2.sink.Stats(d); fs.Packets < 5 {
				return false
			}
		}
		return true
	})
	prov3.sink.Reset()

	fmt.Println("livelab: cutting the R2 link (BFD budget 90ms)...")
	linkR2.Fail()
	time.Sleep(90 * time.Millisecond)
	ctrl.PeerDown(r2IP)

	waitFor("traffic at backup provider", func() bool {
		for _, d := range dests {
			if fs, _ := prov3.sink.Stats(d); fs.Packets < 5 {
				return false
			}
		}
		return true
	})

	var gaps []time.Duration
	for _, d := range dests {
		if fs, ok := prov3.sink.Stats(d); ok && fs.Packets > 0 {
			// Time from failure to first packet at the backup is bounded
			// by FirstSeen; MaxGap at the backup covers steady state.
			gaps = append(gaps, fs.MaxGap)
		}
	}
	s := metrics.SummarizeDurations(gaps)
	fmt.Printf("livelab: all %d flows recovered via R3; %d rule rewrite(s)\n",
		len(dests), ctrl.Engine().Rewrites())
	fmt.Printf("livelab: steady-state max inter-packet gap at backup: median %s, max %s\n",
		metrics.Seconds(s.Median), metrics.Seconds(s.Max))
	st := ctrl.Status()
	fmt.Printf("livelab: controller status: router=%s groups=%d advertised=%d\n",
		st.RouterSession, len(st.Groups), st.Advertised)
}

func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("livelab: timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("livelab: %s ready\n", what)
}
