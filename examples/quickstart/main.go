// Quickstart: reproduce the paper's headline result in one run — the same
// router, the same failure, with and without the supercharger.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	supercharged "supercharged"
	"supercharged/internal/metrics"
)

func main() {
	const prefixes = 50_000
	ctx := context.Background()

	fmt.Printf("Convergence after the primary provider fails (%d prefixes, 100 flows):\n\n", prefixes)

	std, err := supercharged.RunSim(ctx, supercharged.SimConfig{
		Mode: supercharged.Standalone, NumPrefixes: prefixes, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sup, err := supercharged.RunSim(ctx, supercharged.SimConfig{
		Mode: supercharged.Supercharged, NumPrefixes: prefixes, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	sstd := metrics.SummarizeDurations(std.Durations())
	ssup := metrics.SummarizeDurations(sup.Durations())

	tbl := &metrics.Table{Header: []string{"router", "median", "p95", "max", "groups", "rules rewritten"}}
	tbl.Add("non-supercharged", metrics.Seconds(sstd.Median), metrics.Seconds(sstd.P95), metrics.Seconds(sstd.Max), "-", "-")
	tbl.Add("supercharged", metrics.Seconds(ssup.Median), metrics.Seconds(ssup.P95), metrics.Seconds(ssup.Max), sup.Groups, sup.RuleRewrites)
	fmt.Println(tbl.Render())

	fmt.Printf("improvement: %.0fx (paper reports 900x at 512k prefixes)\n", sstd.Max/ssup.Max)
	fmt.Printf("supercharged data plane recovered in %v while the router's own\n", sup.DataPlaneDone)
	fmt.Printf("FIB walk kept running for %v — the 2-stage FIB at work.\n", sup.ControlPlaneDone)
}
