// Scenarios: the declarative failure-scenario engine walkthrough. The
// paper measures one event — a primary-peer failure — on one topology;
// the scenario engine scripts arbitrary event timelines (flaps, partial
// withdraws, double failures, controller restarts) over parameterized
// topologies and measures every event in both router modes.
//
// This example runs a built-in scenario, then defines and runs a custom
// one: an asymmetric three-provider topology where the primary flaps and
// then withdraws part of its table.
//
//	go run ./examples/scenarios
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	supercharged "supercharged"
)

func main() {
	fmt.Println("Built-in scenarios:")
	for _, s := range supercharged.Scenarios() {
		fmt.Printf("  %s\n", s.Name)
	}
	fmt.Println()

	// 1. A built-in: the backup dies first, then the primary. The engine
	// must skip the dead backup and retarget straight to the tertiary.
	fmt.Println("== backup-then-primary (built-in, 2000 prefixes) ==")
	runner := supercharged.ScenarioRunner{Prefixes: 2000}
	rep, err := runner.RunNamed(context.Background(), "backup-then-primary")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.RenderTable())

	// 2. A custom scenario: three providers of different feed sizes and
	// preferences; the primary blips below the BFD detection time, then
	// fails for real, and the mid-preference peer withdraws a quarter of
	// its half-size table during the recovery.
	custom := supercharged.Scenario{
		Name: "example-custom",
		Description: "Asymmetric topology: primary flap absorbed, real " +
			"primary failure, then a partial withdraw on the new best peer.",
		Peers: []supercharged.ScenarioPeer{
			{Name: "R2", Weight: 900},
			{Name: "R3", Weight: 800, Prefixes: 1000}, // half-size feed
			{Name: "R4", Weight: 700},
		},
		GroupSize: 3,
		Events: []supercharged.ScenarioEvent{
			{At: 1 * time.Second, Kind: supercharged.EventLinkFlap, Peer: "R2", Hold: 40 * time.Millisecond},
			{At: 3 * time.Second, Kind: supercharged.EventPeerDown, Peer: "R2"},
			{At: 8 * time.Second, Kind: supercharged.EventPartialWithdraw, Peer: "R3", Fraction: 0.25},
		},
	}
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== example-custom (2000 prefixes) ==")
	rep, err = runner.Run(context.Background(), custom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.RenderTable())

	fmt.Println(`Reading the tables:
  - the absorbed flap (hold < BFD detection) costs both modes the same
    ~40 ms blackout: no failure is ever declared, so the supercharger has
    nothing to accelerate;
  - the real primary failure separates the modes: one switch-rule rewrite
    (~130 ms) versus a full per-entry FIB walk;
  - the partial withdraw converges entry-by-entry in BOTH modes — a peer
    that keeps its link but loses routes is outside the backup-group
    fast path. That boundary is exactly what the scenario engine is for.`)
}
