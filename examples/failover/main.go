// Failover: the paper's §3 reliability story. Two controller replicas
// consume the same BGP feeds delivered in different interleavings, with no
// state synchronization. With deterministic VNH allocation their outputs
// agree byte-for-byte, so the backup can take over mid-flight; the paper's
// sequential allocation (Listing 1's get_new_vnh_vmac) is shown alongside.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"

	"supercharged/internal/lab"
)

func main() {
	fmt.Println("Replica agreement under reordered BGP delivery (2000 prefixes, 4 peers):")
	fmt.Println()
	rows, err := lab.RunReplicaDeterminism(context.Background(), 2000, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(lab.RenderReplicaDeterminism(rows))
	fmt.Println(`Reading the table:
  - "prefix agree" counts prefixes both replicas advertise with the same
    (virtual) next-hop — what the router actually sees;
  - VMACs are hash-derived from the group tuple, so the switch rules agree
    in both modes;
  - deterministic VNH allocation makes replicas interchangeable without
    any synchronization, hardening the paper's §3 argument.`)
}
