// Convergence: regenerate the paper's Fig. 5 — convergence-time
// distribution versus table size, supercharged and not.
//
//	go run ./examples/convergence            # reduced sweep (seconds)
//	go run ./examples/convergence -full      # full 1k..500k sweep (minutes)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"supercharged/internal/lab"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full 1k..500k sweep")
	runs := flag.Int("runs", 3, "repetitions per size (paper: 3)")
	flag.Parse()

	cfg := lab.Fig5Config{Runs: *runs, Flows: 100, Seed: 1}
	if !*full {
		cfg.Sizes = []int{1_000, 5_000, 10_000, 50_000}
		fmt.Println("(reduced sweep — pass -full for the paper's 1k..500k)")
	}
	res, err := lab.RunFig5(context.Background(), cfg, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Render())
}
