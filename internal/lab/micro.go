package lab

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/core"
	"supercharged/internal/feed"
	"supercharged/internal/metrics"
)

// MicroConfig parameterizes E3, the controller-overhead micro-benchmark:
// the paper replays "two times 500K updates from two different peers"
// through the BGP controller and reports per-update processing latency
// (worst 0.8 s, 99th percentile ≤ 125 ms for unoptimized Python).
type MicroConfig struct {
	// Prefixes per peer feed (paper: 500k).
	Prefixes int
	// Seed for the synthetic feeds.
	Seed int64
	// AllocMode for the VNH pool.
	AllocMode core.AllocMode
}

// MicroResult is the measured per-update latency distribution.
type MicroResult struct {
	Updates  int
	Summary  metrics.Summary // seconds per UPDATE message
	Total    time.Duration
	Groups   int
	PaperP99 float64 // 125 ms
	PaperMax float64 // 0.8 s
	Emitted  int     // UPDATEs produced toward the router
}

var (
	microR2 = netip.MustParseAddr("203.0.113.1")
	microR3 = netip.MustParseAddr("203.0.113.2")
)

// RunMicro replays both peer feeds through a fresh Processor, timing each
// UPDATE's processing (decision process + Listing 1 + NH rewrite). The
// context cancels the replay between peers.
func RunMicro(ctx context.Context, cfg MicroConfig) (*MicroResult, error) {
	if cfg.Prefixes <= 0 {
		cfg.Prefixes = 500_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	table := feed.Generate(feed.Config{N: cfg.Prefixes, Seed: cfg.Seed})
	codec := bgp.Codec{ASN4: true}

	peers := []struct {
		meta bgp.PeerMeta
		nh   netip.Addr
		as   uint32
	}{
		{bgp.PeerMeta{Addr: microR2, AS: 65002, ID: microR2, Weight: 200}, microR2, 65002},
		{bgp.PeerMeta{Addr: microR3, AS: 65003, ID: microR3, Weight: 100}, microR3, 65003},
	}

	proc := core.NewProcessor(nil, core.NewGroupTable(core.NewVNHPool(cfg.AllocMode)))
	res := &MicroResult{PaperP99: 0.125, PaperMax: 0.8}
	var samples []float64
	start := time.Now()
	for _, p := range peers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		updates, err := table.Updates(p.as, p.nh, codec)
		if err != nil {
			return nil, err
		}
		for _, u := range updates {
			t0 := time.Now()
			out, err := proc.Process(p.meta, u)
			if err != nil {
				return nil, fmt.Errorf("micro: %w", err)
			}
			samples = append(samples, time.Since(t0).Seconds())
			res.Emitted += len(out)
		}
	}
	res.Total = time.Since(start)
	res.Updates = len(samples)
	res.Summary = metrics.Summarize(samples)
	res.Groups = proc.Groups().Len()
	return res, nil
}

// Render formats the micro-benchmark result with the paper's reference.
func (r *MicroResult) Render() string {
	tbl := &metrics.Table{Header: []string{"metric", "measured", "paper (python)"}}
	tbl.Add("updates processed", r.Updates, "~2x500k prefixes")
	tbl.Add("p50 per update", metrics.Seconds(r.Summary.Median), "-")
	tbl.Add("p99 per update", metrics.Seconds(r.Summary.P99), metrics.Seconds(r.PaperP99))
	tbl.Add("max per update", metrics.Seconds(r.Summary.Max), metrics.Seconds(r.PaperMax))
	tbl.Add("total replay", r.Total.Round(time.Millisecond), "-")
	tbl.Add("backup groups", r.Groups, "n(n-1) = 2")
	tbl.Add("updates emitted", r.Emitted, "-")
	return tbl.Render()
}

// GroupsConfig parameterizes E4: backup-group count versus peer count.
type GroupsConfig struct {
	// MaxPeers sweeps n = 2..MaxPeers (default 10, the paper's example).
	MaxPeers int
	// PrefixesPerPair is how many prefixes exercise each (primary,
	// backup) ordering (enough to realize every group).
	PrefixesPerPair int
	Seed            int64
}

// GroupsRow is one sweep point.
type GroupsRow struct {
	Peers    int
	Groups   int
	Expected int // n(n-1)
}

// RunGroups realizes every (primary, backup) ordering among n peers and
// counts allocated groups, checking the paper's n!/(n-2)! formula.
func RunGroups(ctx context.Context, cfg GroupsConfig) ([]GroupsRow, error) {
	if cfg.MaxPeers == 0 {
		cfg.MaxPeers = 10
	}
	if cfg.PrefixesPerPair == 0 {
		cfg.PrefixesPerPair = 1
	}
	var rows []GroupsRow
	for n := 2; n <= cfg.MaxPeers; n++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		proc := core.NewProcessor(nil, core.NewGroupTable(core.NewVNHPool(core.AllocDeterministic)))
		peers := make([]bgp.PeerMeta, n)
		for i := range peers {
			addr := netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)})
			peers[i] = bgp.PeerMeta{Addr: addr, AS: uint32(65000 + i), ID: addr}
		}
		// For each ordered pair (i, j), announce a prefix preferred via
		// i with backup j (weights make the ordering explicit).
		prefixByte := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				for k := 0; k < cfg.PrefixesPerPair; k++ {
					pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{
						byte(20 + prefixByte/65536), byte(prefixByte / 256), byte(prefixByte), 0,
					}), 24)
					prefixByte++
					hi, lo := peers[i], peers[j]
					hi.Weight, lo.Weight = 200, 100
					ann := func(meta bgp.PeerMeta) *bgp.Update {
						return &bgp.Update{
							Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(meta.AS), NextHop: meta.Addr},
							NLRI:  []netip.Prefix{pfx},
						}
					}
					if _, err := proc.Process(hi, ann(hi)); err != nil {
						return nil, err
					}
					if _, err := proc.Process(lo, ann(lo)); err != nil {
						return nil, err
					}
				}
			}
		}
		rows = append(rows, GroupsRow{Peers: n, Groups: proc.Groups().Len(), Expected: n * (n - 1)})
	}
	return rows, nil
}

// RenderGroups formats the E4 table.
func RenderGroups(rows []GroupsRow) string {
	tbl := &metrics.Table{Header: []string{"peers", "groups", "n(n-1)", "match"}}
	for _, r := range rows {
		tbl.Add(r.Peers, r.Groups, r.Expected, r.Groups == r.Expected)
	}
	return tbl.Render()
}
