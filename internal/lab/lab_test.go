package lab

import (
	"context"
	"strings"
	"testing"
	"time"

	"supercharged/internal/core"
	"supercharged/internal/sim"
)

// The sweep in tests is reduced; the full Fig. 5 runs via cmd/lab or the
// root benchmarks.
var testSizes = []int{1000, 5000, 10000}

func TestFig5ShapeOnReducedSweep(t *testing.T) {
	res, err := RunFig5(context.Background(), Fig5Config{Sizes: testSizes, Runs: 2, Flows: 50, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(testSizes)*2 {
		t.Fatalf("cells %d", len(res.Cells))
	}
	// Standalone maxima must grow with size; supercharged must stay flat.
	var stdMax, supMax []float64
	for _, c := range res.Cells {
		if c.Mode == sim.Standalone {
			stdMax = append(stdMax, c.Summary.Max)
		} else {
			supMax = append(supMax, c.Summary.Max)
		}
	}
	for i := 1; i < len(stdMax); i++ {
		if stdMax[i] <= stdMax[i-1] {
			t.Fatalf("standalone maxima not increasing: %v", stdMax)
		}
	}
	for _, m := range supMax {
		if m > 0.160 {
			t.Fatalf("supercharged max %.3fs", m)
		}
	}
	if !res.CrossoverHolds {
		t.Fatal("crossover (supercharged max < standalone min) must hold")
	}
	if res.ImprovementFactor < 10 {
		t.Fatalf("improvement factor %.1f too small even at 10k", res.ImprovementFactor)
	}
	out := res.Render()
	for _, want := range []string{"prefixes", "non-supercharged", "supercharged", "paper-max", "improvement factor"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFig5PaperReferenceAttached(t *testing.T) {
	res, err := RunFig5(context.Background(), Fig5Config{Sizes: []int{1000}, Runs: 1, Flows: 20, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Mode == sim.Standalone && c.Prefixes == 1000 && c.PaperMax != 0.9 {
			t.Fatalf("paper max for 1k = %v, want 0.9", c.PaperMax)
		}
		if c.Mode == sim.Supercharged && c.PaperMax != 0.150 {
			t.Fatalf("supercharged paper reference %v", c.PaperMax)
		}
	}
}

func TestFirstEntryMatchesPaperRegime(t *testing.T) {
	best, err := FirstEntry(context.Background(), 1000, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 375 ms best case. Ours: detection 90ms + ctl 285ms + jitter
	// ≥ 375ms, bounded above by jitter + quantization.
	if best < 350*time.Millisecond || best > 700*time.Millisecond {
		t.Fatalf("first-entry best case %v outside the paper's regime", best)
	}
}

func TestMicroBenchmark(t *testing.T) {
	res, err := RunMicro(context.Background(), MicroConfig{Prefixes: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 || res.Emitted == 0 {
		t.Fatalf("empty result %+v", res)
	}
	// Two providers sharing the whole table: exactly 2 ordered groups...
	// actually only (R2,R3) is realized since R2 always wins; allow 1..2.
	if res.Groups < 1 || res.Groups > 2 {
		t.Fatalf("groups %d", res.Groups)
	}
	// Our Go implementation must beat the paper's Python p99 of 125 ms by
	// a wide margin.
	if res.Summary.P99 > 0.125 {
		t.Fatalf("p99 %.4fs exceeds the paper's Python number", res.Summary.P99)
	}
	out := res.Render()
	if !strings.Contains(out, "p99 per update") || !strings.Contains(out, "125ms") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestGroupsFormula(t *testing.T) {
	rows, err := RunGroups(context.Background(), GroupsConfig{MaxPeers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Groups != r.Expected {
			t.Fatalf("n=%d: groups %d, want %d", r.Peers, r.Groups, r.Expected)
		}
	}
	if !strings.Contains(RenderGroups(rows), "n(n-1)") {
		t.Fatal("render missing formula column")
	}
}

func TestReplicaDeterminismAblation(t *testing.T) {
	rows, err := RunReplicaDeterminism(context.Background(), 1500, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if !r.VMACAgreement {
			t.Fatalf("%s: VMACs must agree regardless of mode", r.Mode)
		}
		if r.Mode == core.AllocDeterministic {
			if r.PrefixAgreements != r.Prefixes {
				t.Fatalf("deterministic replicas disagree on %d/%d prefixes",
					r.Prefixes-r.PrefixAgreements, r.Prefixes)
			}
			if r.VNHAgreements != r.SharedGroups {
				t.Fatalf("deterministic shared groups disagree: %d/%d", r.VNHAgreements, r.SharedGroups)
			}
		}
		if r.Mode == core.AllocSequential && r.PrefixAgreements == r.Prefixes {
			t.Log("note: sequential replicas happened to agree on this interleaving")
		}
	}
	if !strings.Contains(RenderReplicaDeterminism(rows), "alloc mode") {
		t.Fatal("render")
	}
}

func TestBFDSweepMonotone(t *testing.T) {
	rows, err := RunBFDSweep(context.Background(), 2000, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxConverge < rows[i-1].MaxConverge {
			t.Fatalf("convergence not monotone in BFD interval: %+v", rows)
		}
	}
	if rows[0].Detection >= rows[len(rows)-1].Detection {
		t.Fatal("detection must grow with the interval")
	}
	if !strings.Contains(RenderBFDSweep(rows), "bfd interval") {
		t.Fatal("render")
	}
}

func TestK3Ablation(t *testing.T) {
	res, err := RunK3(context.Background(), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstFailoverMax > 160*time.Millisecond {
		t.Fatalf("k3 first failover %v", res.FirstFailoverMax)
	}
	if res.RuleRewrites < 2 {
		t.Fatalf("rewrites %d", res.RuleRewrites)
	}
	if !strings.Contains(res.Render(), "rule rewrites") {
		t.Fatal("render")
	}
}
