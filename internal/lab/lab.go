// Package lab orchestrates the paper's evaluation: it regenerates every
// table and figure of §4 (plus the ablations DESIGN.md calls out) and
// renders paper-vs-measured comparisons.
package lab

import (
	"context"
	"fmt"
	"io"
	"time"

	"supercharged/internal/metrics"
	"supercharged/internal/sim"
)

// Fig5Sweep is the paper's prefix-count sweep.
var Fig5Sweep = []int{1_000, 5_000, 10_000, 50_000, 100_000, 200_000, 300_000, 400_000, 500_000}

// Fig5PaperMaxSeconds are the maxima printed on top of the paper's Fig. 5
// box plots for the non-supercharged router, indexed like Fig5Sweep.
var Fig5PaperMaxSeconds = []float64{0.9, 1.6, 3.4, 13.8, 29.2, 56.9, 86.4, 113.1, 140.9}

// Fig5PaperSuperchargedSeconds is the paper's flat supercharged bound.
const Fig5PaperSuperchargedSeconds = 0.150

// Fig5Config parameterizes the sweep.
type Fig5Config struct {
	// Sizes lists prefix counts (default Fig5Sweep).
	Sizes []int
	// Runs per size (paper: 3; 100 flows each → 300 points per size).
	Runs int
	// Flows per run (paper: 100).
	Flows int
	// Seed bases the per-run seeds.
	Seed int64
}

// Fig5Cell is one (size, mode) measurement cell.
type Fig5Cell struct {
	Prefixes int
	Mode     sim.Mode
	Summary  metrics.Summary
	PaperMax float64 // seconds; 0 when the paper gives no number
}

// Fig5Result is the full figure.
type Fig5Result struct {
	Cells []Fig5Cell
	// ImprovementFactor is worst standalone max / worst supercharged max
	// at the largest size (the paper's 900×).
	ImprovementFactor float64
	// CrossoverHolds records the paper's observation that the
	// supercharged worst case beats the standalone *best* case.
	CrossoverHolds bool
}

// RunFig5 executes the sweep. Progress, if non-nil, receives one line per
// completed run. The context cancels the sweep between simulator events.
func RunFig5(ctx context.Context, cfg Fig5Config, progress io.Writer) (*Fig5Result, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = Fig5Sweep
	}
	if cfg.Runs == 0 {
		cfg.Runs = 3
	}
	if cfg.Flows == 0 {
		cfg.Flows = 100
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	res := &Fig5Result{}
	var biggestStd, biggestSup metrics.Summary
	var stdMinAtBiggest, supMaxAtBiggest float64
	for _, n := range cfg.Sizes {
		for _, mode := range []sim.Mode{sim.Standalone, sim.Supercharged} {
			var samples []float64
			for r := 0; r < cfg.Runs; r++ {
				out, err := sim.Run(ctx, sim.Config{
					Mode:        mode,
					NumPrefixes: n,
					NumFlows:    cfg.Flows,
					Seed:        cfg.Seed + int64(r)*7919,
				})
				if err != nil {
					return nil, fmt.Errorf("fig5 n=%d mode=%s run=%d: %w", n, mode, r, err)
				}
				for _, d := range out.Durations() {
					samples = append(samples, d.Seconds())
				}
				if progress != nil {
					fmt.Fprintf(progress, "fig5: n=%d %s run %d/%d done\n", n, mode, r+1, cfg.Runs)
				}
			}
			cell := Fig5Cell{Prefixes: n, Mode: mode, Summary: metrics.Summarize(samples)}
			if mode == sim.Standalone {
				if i := indexOf(Fig5Sweep, n); i >= 0 {
					cell.PaperMax = Fig5PaperMaxSeconds[i]
				}
			} else {
				cell.PaperMax = Fig5PaperSuperchargedSeconds
			}
			res.Cells = append(res.Cells, cell)
			if n == cfg.Sizes[len(cfg.Sizes)-1] {
				if mode == sim.Standalone {
					biggestStd = cell.Summary
					stdMinAtBiggest = cell.Summary.Min
				} else {
					biggestSup = cell.Summary
					supMaxAtBiggest = cell.Summary.Max
				}
			}
		}
	}
	if biggestSup.Max > 0 {
		res.ImprovementFactor = biggestStd.Max / biggestSup.Max
	}
	res.CrossoverHolds = supMaxAtBiggest > 0 && supMaxAtBiggest < stdMinAtBiggest
	return res, nil
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// Render formats the figure as an aligned table with the paper's reference
// maxima alongside.
func (r *Fig5Result) Render() string {
	tbl := &metrics.Table{Header: []string{
		"prefixes", "mode", "median", "p25", "p75", "p95", "max", "paper-max",
	}}
	for _, c := range r.Cells {
		paper := "-"
		if c.PaperMax > 0 {
			paper = metrics.Seconds(c.PaperMax)
		}
		tbl.Add(c.Prefixes, c.Mode.String(),
			metrics.Seconds(c.Summary.Median), metrics.Seconds(c.Summary.P25),
			metrics.Seconds(c.Summary.P75), metrics.Seconds(c.Summary.P95),
			metrics.Seconds(c.Summary.Max), paper)
	}
	out := tbl.Render()
	out += fmt.Sprintf("\nimprovement factor at largest size: %.0fx (paper: 900x at 512k)\n", r.ImprovementFactor)
	out += fmt.Sprintf("supercharged worst case beats standalone best case: %v (paper: yes)\n", r.CrossoverHolds)
	return out
}

// FirstEntry reports the standalone best case (E2, paper: 375 ms to the
// first FIB entry) measured as the minimum convergence across runs at the
// given size.
func FirstEntry(ctx context.Context, n int, runs int, seed int64) (time.Duration, error) {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < runs; r++ {
		out, err := sim.Run(ctx, sim.Config{Mode: sim.Standalone, NumPrefixes: n, Seed: seed + int64(r)})
		if err != nil {
			return 0, err
		}
		if s := metrics.SummarizeDurations(out.Durations()); time.Duration(s.Min*float64(time.Second)) < best {
			best = time.Duration(s.Min * float64(time.Second))
		}
	}
	return best, nil
}
