package lab

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/core"
	"supercharged/internal/feed"
	"supercharged/internal/metrics"
	"supercharged/internal/sim"
)

// ReplicaDeterminism is ablation A1: two controller replicas receive the
// same per-peer feeds but with different inter-peer interleaving (the
// realistic stress on §3's "no state sync needed" claim). What must agree
// for the routers and switches behind the replicas to behave identically
// is the *eventual per-prefix advertisement* (which VNH the router learns)
// and the VMAC of every shared group (what the switch matches on).
type ReplicaDeterminism struct {
	Mode core.AllocMode
	// Prefixes is the number of prefixes compared.
	Prefixes int
	// PrefixAgreements counts prefixes whose advertised next-hop (real or
	// virtual) is identical across the two replicas.
	PrefixAgreements int
	// SharedGroups / VNHAgreements compare groups realized by both
	// replicas (transient groups may differ — that is expected and
	// harmless, they are what the interleaving makes of the ranking
	// mid-flight).
	SharedGroups  int
	VNHAgreements int
	VMACAgreement bool
}

// RunReplicaDeterminism builds two replicas per allocation mode and
// compares their eventual outputs.
func RunReplicaDeterminism(ctx context.Context, prefixes int, peers int, seed int64) ([]ReplicaDeterminism, error) {
	if prefixes <= 0 {
		prefixes = 2000
	}
	if peers < 2 {
		peers = 4
	}
	table := feed.Generate(feed.Config{N: prefixes, Seed: seed})
	codec := bgp.Codec{ASN4: true}

	type peerFeed struct {
		meta    bgp.PeerMeta
		updates []*bgp.Update
	}
	feeds := make([]peerFeed, peers)
	for i := 0; i < peers; i++ {
		addr := netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)})
		meta := bgp.PeerMeta{Addr: addr, AS: uint32(65002 + i), ID: addr, Weight: uint32(1000 - i*10)}
		ups, err := table.Updates(meta.AS, addr, codec)
		if err != nil {
			return nil, err
		}
		feeds[i] = peerFeed{meta: meta, updates: ups}
	}

	// replay interleaves the per-peer streams: order preserved within a
	// peer (TCP guarantees that), shuffled across peers.
	replay := func(mode core.AllocMode, shuffleSeed int64) (*core.GroupTable, *core.Processor, error) {
		gt := core.NewGroupTable(core.NewVNHPool(mode))
		proc := core.NewProcessor(nil, gt)
		rng := rand.New(rand.NewSource(shuffleSeed))
		idx := make([]int, peers)
		remaining := 0
		for _, f := range feeds {
			remaining += len(f.updates)
		}
		for remaining > 0 {
			p := rng.Intn(peers)
			if idx[p] >= len(feeds[p].updates) {
				continue
			}
			if _, err := proc.Process(feeds[p].meta, feeds[p].updates[idx[p]]); err != nil {
				return nil, nil, err
			}
			idx[p]++
			remaining--
		}
		return gt, proc, nil
	}

	var out []ReplicaDeterminism
	for _, mode := range []core.AllocMode{core.AllocSequential, core.AllocDeterministic} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gtA, procA, err := replay(mode, seed+100)
		if err != nil {
			return nil, err
		}
		gtB, procB, err := replay(mode, seed+200)
		if err != nil {
			return nil, err
		}
		row := ReplicaDeterminism{Mode: mode, VMACAgreement: true}
		for _, r := range table.Routes {
			row.Prefixes++
			nhA, virtA, okA := procA.Advertised(r.Prefix)
			nhB, virtB, okB := procB.Advertised(r.Prefix)
			if okA && okB && virtA == virtB && nhA == nhB {
				row.PrefixAgreements++
			}
		}
		for _, ga := range gtA.All() {
			gb, ok := gtB.Get(ga.NHs...)
			if !ok {
				continue
			}
			row.SharedGroups++
			if ga.VNH == gb.VNH {
				row.VNHAgreements++
			}
			if ga.VMAC != gb.VMAC {
				row.VMACAgreement = false
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderReplicaDeterminism formats A1.
func RenderReplicaDeterminism(rows []ReplicaDeterminism) string {
	tbl := &metrics.Table{Header: []string{"alloc mode", "prefix agree", "shared-group vnh agree", "vmac agree"}}
	for _, r := range rows {
		tbl.Add(r.Mode.String(),
			fmt.Sprintf("%d/%d", r.PrefixAgreements, r.Prefixes),
			fmt.Sprintf("%d/%d", r.VNHAgreements, r.SharedGroups),
			r.VMACAgreement)
	}
	return tbl.Render()
}

// BFDSweepRow is ablation A3: supercharged convergence versus BFD
// transmit interval (detection share of the ~150 ms budget).
type BFDSweepRow struct {
	Interval    time.Duration
	Detection   time.Duration
	MaxConverge time.Duration
}

// RunBFDSweep sweeps the BFD interval at a fixed table size.
func RunBFDSweep(ctx context.Context, prefixes int, intervals []time.Duration, seed int64) ([]BFDSweepRow, error) {
	if prefixes <= 0 {
		prefixes = 10_000
	}
	if len(intervals) == 0 {
		intervals = []time.Duration{
			10 * time.Millisecond, 30 * time.Millisecond,
			50 * time.Millisecond, 100 * time.Millisecond,
		}
	}
	var rows []BFDSweepRow
	for _, iv := range intervals {
		res, err := sim.Run(ctx, sim.Config{
			Mode: sim.Supercharged, NumPrefixes: prefixes, Seed: seed, BFDInterval: iv,
		})
		if err != nil {
			return nil, err
		}
		s := metrics.SummarizeDurations(res.Durations())
		rows = append(rows, BFDSweepRow{
			Interval:    iv,
			Detection:   res.DetectAt,
			MaxConverge: time.Duration(s.Max * float64(time.Second)),
		})
	}
	return rows, nil
}

// RenderBFDSweep formats A3.
func RenderBFDSweep(rows []BFDSweepRow) string {
	tbl := &metrics.Table{Header: []string{"bfd interval", "detection", "max convergence"}}
	for _, r := range rows {
		tbl.Add(r.Interval, r.Detection, r.MaxConverge.Round(time.Millisecond))
	}
	return tbl.Render()
}

// K3Result is ablation A2: backup-group size 3 under double failure.
type K3Result struct {
	FirstFailoverMax time.Duration
	RuleRewrites     int
	Groups           int
}

// RunK3 runs the double-failure scenario with three providers and k=3.
func RunK3(ctx context.Context, prefixes int, seed int64) (*K3Result, error) {
	if prefixes <= 0 {
		prefixes = 5000
	}
	res, err := sim.Run(ctx, sim.Config{
		Mode: sim.Supercharged, NumPrefixes: prefixes, Seed: seed,
		GroupSize: 3, Providers: 3, SecondFailure: 500 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	s := metrics.SummarizeDurations(res.Durations())
	return &K3Result{
		FirstFailoverMax: time.Duration(s.Max * float64(time.Second)),
		RuleRewrites:     res.RuleRewrites,
		Groups:           res.Groups,
	}, nil
}

// Render formats A2.
func (r *K3Result) Render() string {
	tbl := &metrics.Table{Header: []string{"metric", "value"}}
	tbl.Add("first failover max", r.FirstFailoverMax.Round(time.Millisecond))
	tbl.Add("rule rewrites (2 failures)", r.RuleRewrites)
	tbl.Add("groups (k=3)", r.Groups)
	return tbl.Render()
}
