// Package microbench is the hot-path micro-benchmark suite behind
// `cmd/bench micro` and the committed BENCH_micro.json baseline: a fixed
// set of workloads over the exact code paths the full-table (~1M-prefix)
// simulation leans on — RIB update churn, the indexed RemovePeer against
// its pre-index full-scan ancestor, the processor's churn filter, and
// backup-group allocation.
//
// Unlike the sweep bench (wall-clock of whole scenario runs), these are
// `go test -bench`-style measurements: a fixed operation count per
// sample, repeated samples, best sample reported as ns/op with the
// matching allocation counts. Workloads are deterministic (fixed seeds,
// fixed shapes), so allocs/op is exact and gate-able without tolerance
// games; ns/op is host telemetry and gated with both a fractional
// tolerance and an absolute grace floor, like the sweep bench's
// wall-clock numbers.
package microbench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/core"
)

// Result is one benchmark's measurement.
type Result struct {
	Name string `json:"name"`
	// Ops is the number of operations per timed sample; Samples the
	// number of repetitions (best sample wins).
	Ops     int `json:"ops"`
	Samples int `json:"samples"`
	// NsPerOp is the best sample's per-operation latency.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp come from the best sample's heap deltas;
	// the workloads are deterministic, so allocs are exact.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Snapshot is the suite's output, committed as BENCH_micro.json.
type Snapshot struct {
	Benchmarks []Result `json:"benchmarks"`
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Parse reads a snapshot written by JSON.
func Parse(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("microbench: parse snapshot: %w", err)
	}
	return &s, nil
}

// Options parameterizes a suite run.
type Options struct {
	// Filter keeps only benchmarks whose name contains the substring.
	Filter string
	// Progress, if set, receives one line per completed benchmark.
	Progress io.Writer
}

// bench is one registered workload. prepare builds the workload state
// (untimed) and returns the timed body, which performs exactly ops
// operations per call; the body is invoked once per sample against fresh
// state when fresh is true, or against shared state otherwise.
type bench struct {
	name    string
	ops     int
	samples int
	fresh   bool // rebuild state per sample (destructive bodies)
	prepare func() func()
}

// Run executes the suite and returns the snapshot, benchmarks sorted by
// name.
func Run(opts Options) (*Snapshot, error) {
	snap := &Snapshot{}
	for _, b := range suite() {
		if opts.Filter != "" && !strings.Contains(b.name, opts.Filter) {
			continue
		}
		res := runOne(b)
		snap.Benchmarks = append(snap.Benchmarks, res)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-28s %12.1f ns/op %10.1f allocs/op (%d ops x %d samples)\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.Ops, res.Samples)
		}
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("microbench: no benchmark matches filter %q", opts.Filter)
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	return snap, nil
}

func runOne(b bench) Result {
	res := Result{Name: b.name, Ops: b.ops, Samples: b.samples}
	var body func()
	if !b.fresh {
		body = b.prepare()
	}
	best := -1.0
	for s := 0; s < b.samples; s++ {
		if b.fresh {
			body = b.prepare()
		}
		// Two collections, not one: a fresh multi-GB workload leaves the
		// previous sample's heap unswept, and a single runtime.GC() would
		// let the timed body pay the sweep debt as allocation assists —
		// the dominant noise source on the 1M-table benches. The second
		// cycle cannot start before the first finishes sweeping, and the
		// freed spans stay mapped (releasing them to the OS would trade
		// sweep debt for page-fault debt inside the body).
		runtime.GC()
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		body()
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / float64(b.ops)
		if best < 0 || ns < best {
			best = ns
			res.NsPerOp = ns
			res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(b.ops)
			res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(b.ops)
		}
	}
	return res
}

// --- the suite ---

// Shapes: the RemovePeer acceptance shape is a 1M-prefix table whose
// victim peer carries 10% of it; churn shapes use a 100k table so the
// suite stays minutes-not-hours while still measuring map behavior at
// scale.
const (
	removePeerTable = 1_000_000
	removePeerShare = 0.10
	churnTable      = 100_000
)

var (
	mainPeer   = bgp.PeerMeta{Addr: netip.MustParseAddr("203.0.113.1"), AS: 65002, ID: netip.MustParseAddr("203.0.113.1"), Weight: 200}
	victimPeer = bgp.PeerMeta{Addr: netip.MustParseAddr("198.51.100.2"), AS: 65003, ID: netip.MustParseAddr("198.51.100.2"), Weight: 100}
)

func nthPrefix(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(11 + i>>16), byte(i >> 8), byte(i), 0}), 24)
}

// buildRIB populates a RIB with total prefixes from mainPeer plus
// share×total also covered by victimPeer.
func buildRIB(total int, share float64) *bgp.RIB {
	r := bgp.NewRIBSized(total)
	nlri := make([]netip.Prefix, 0, total)
	for i := 0; i < total; i++ {
		nlri = append(nlri, nthPrefix(i))
	}
	r.Update(mainPeer, &bgp.Update{
		Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(mainPeer.AS, 3356), NextHop: mainPeer.Addr},
		NLRI:  nlri,
	})
	r.Update(victimPeer, &bgp.Update{
		Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(victimPeer.AS, 1299), NextHop: victimPeer.Addr},
		NLRI:  nlri[:int(float64(total)*share)],
	})
	return r
}

// buildProcessor returns a processor loaded with total prefixes from
// mainPeer and victimShare×total of them also from victimPeer (1.0 =
// every prefix multi-path/VNH-advertised), plus the replay update whose
// attributes the interner already canonicalized.
func buildProcessor(total int, victimShare float64) (*core.Processor, *bgp.Update) {
	proc := core.NewProcessor(bgp.NewRIBSized(total), core.NewGroupTable(core.NewVNHPool(core.AllocSequential)))
	proc.Reserve(total)
	nlri := make([]netip.Prefix, 0, total)
	for i := 0; i < total; i++ {
		nlri = append(nlri, nthPrefix(i))
	}
	for _, peer := range []bgp.PeerMeta{mainPeer, victimPeer} {
		n := len(nlri)
		if peer == victimPeer {
			n = int(float64(total) * victimShare)
		}
		u := &bgp.Update{
			Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(peer.AS, 3356), NextHop: peer.Addr},
			NLRI:  nlri[:n],
		}
		if _, err := proc.Process(peer, u); err != nil {
			panic(fmt.Sprintf("microbench: %v", err))
		}
	}
	replay := &bgp.Update{
		Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(victimPeer.AS, 3356), NextHop: victimPeer.Addr},
		NLRI:  []netip.Prefix{nthPrefix(42)},
	}
	if _, err := proc.Process(victimPeer, replay); err != nil {
		panic(fmt.Sprintf("microbench: %v", err))
	}
	return proc, replay
}

func suite() []bench {
	return []bench{
		{
			// The acceptance shape: RemovePeer on a 1M-prefix table where
			// the victim carries 10%. One op per sample (the removal is
			// destructive), fresh table each time.
			name: "rib/remove-peer-1m-indexed", ops: 1, samples: 8, fresh: true,
			prepare: func() func() {
				r := buildRIB(removePeerTable, removePeerShare)
				return func() { r.RemovePeer(victimPeer.Addr) }
			},
		},
		{
			// The pre-PR implementation at the same shape — the baseline
			// the ≥10× acceptance criterion is measured against.
			name: "rib/remove-peer-1m-scan", ops: 1, samples: 5, fresh: true,
			prepare: func() func() {
				r := buildRIB(removePeerTable, removePeerShare)
				return func() { r.RemovePeerScan(victimPeer.Addr) }
			},
		},
		{
			// Identical re-announcement against a 100k table: the RIB's
			// interned churn fast path.
			name: "rib/update-churn", ops: 200_000, samples: 3,
			prepare: func() func() {
				r := buildRIB(churnTable, removePeerShare)
				u := &bgp.Update{
					Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(mainPeer.AS, 3356), NextHop: mainPeer.Addr},
					NLRI:  []netip.Prefix{nthPrefix(77)},
				}
				var buf []bgp.Change
				return func() {
					for i := 0; i < 200_000; i++ {
						buf = r.UpdateInto(mainPeer, u, buf)
					}
				}
			},
		},
		{
			// The processor's steady-state churn filter (suppressed
			// replay); allocs/op must be exactly 0 — the committed
			// baseline pins it and any increase fails the gate.
			name: "proc/churn-filter", ops: 200_000, samples: 3,
			prepare: func() func() {
				proc, replay := buildProcessor(churnTable, 1.0)
				return func() {
					for i := 0; i < 200_000; i++ {
						if _, err := proc.Process(victimPeer, replay); err != nil {
							panic(err)
						}
					}
				}
			},
		},
		{
			// PeerDown through the processor at the 100k/10% shape:
			// indexed removal plus the reaction pipeline (withdraw
			// batching toward the router). Destructive one-shot bodies
			// inherit heap-layout variance from their fresh builds, so
			// this takes extra samples to keep the best-of stable under
			// the gate's tolerance.
			name: "proc/peer-down-100k", ops: 1, samples: 7, fresh: true,
			prepare: func() func() {
				proc, _ := buildProcessor(churnTable, removePeerShare)
				return func() {
					out, err := proc.PeerDown(victimPeer.Addr)
					if err != nil {
						panic(err)
					}
					core.RecycleUpdates(out)
				}
			},
		},
		{
			// Backup-group allocation and the keyed hit path.
			name: "core/group-ensure", ops: 200_000, samples: 3,
			prepare: func() func() {
				tbl := core.NewGroupTable(core.NewVNHPool(core.AllocSequential))
				nhs := make([]netip.Addr, 64)
				for i := range nhs {
					nhs[i] = netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)})
				}
				return func() {
					for i := 0; i < 200_000; i++ {
						a, b := nhs[i%len(nhs)], nhs[(i+1)%len(nhs)]
						if _, err := tbl.Ensure(a, b); err != nil {
							panic(err)
						}
					}
				}
			},
		},
	}
}

// Grace floors, mirroring the sweep bench's wall-clock philosophy: a
// fractional gate over nanosecond timings on shared CI runners is noise,
// so an ns/op regression must also clear an absolute margin. Allocation
// counts are deterministic and get only rounding slack.
const (
	nsGraceFloor    = 500.0 // ns/op
	allocRoundSlack = 0.5   // allocs/op
)

// Compare gates current against baseline: one violation string per
// benchmark whose ns/op regressed beyond tol (fractional) plus the grace
// floor, whose allocs/op grew beyond tol plus rounding slack, or that
// vanished from the suite. Faster results and new benchmarks pass;
// ratcheting the baseline is a deliberate commit of the regenerated
// BENCH_micro.json.
func Compare(baseline, current *Snapshot, tol float64) []string {
	cur := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[r.Name] = r
	}
	var violations []string
	for _, base := range baseline.Benchmarks {
		got, ok := cur[base.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"benchmark %s vanished from the suite (baseline %.1f ns/op)", base.Name, base.NsPerOp))
			continue
		}
		if base.NsPerOp > 0 && got.NsPerOp > base.NsPerOp*(1+tol) &&
			got.NsPerOp-base.NsPerOp > nsGraceFloor {
			violations = append(violations, fmt.Sprintf(
				"%s regressed %.1f ns/op → %.1f ns/op (>%d%%)",
				base.Name, base.NsPerOp, got.NsPerOp, int(tol*100)))
		}
		if got.AllocsPerOp > base.AllocsPerOp*(1+tol)+allocRoundSlack {
			violations = append(violations, fmt.Sprintf(
				"%s allocations regressed %.1f allocs/op → %.1f allocs/op",
				base.Name, base.AllocsPerOp, got.AllocsPerOp))
		}
	}
	return violations
}

// IndexSpeedup returns the scan/indexed RemovePeer ratio of a snapshot
// (0 when either side is missing) — the acceptance criterion's headline
// number, printed by cmd/bench micro.
func (s *Snapshot) IndexSpeedup() float64 {
	var indexed, scan float64
	for _, r := range s.Benchmarks {
		switch r.Name {
		case "rib/remove-peer-1m-indexed":
			indexed = r.NsPerOp
		case "rib/remove-peer-1m-scan":
			scan = r.NsPerOp
		}
	}
	if indexed <= 0 || scan <= 0 {
		return 0
	}
	return scan / indexed
}
