package microbench

import (
	"strings"
	"testing"
)

// TestRunFiltered executes the cheap group-allocation benchmark end to
// end (the 1M-table benches are cmd/bench micro territory, not unit-test
// territory) and sanity-checks the measurement.
func TestRunFiltered(t *testing.T) {
	snap, err := Run(Options{Filter: "core/group-ensure"})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 {
		t.Fatalf("filter matched %d benchmarks, want 1", len(snap.Benchmarks))
	}
	r := snap.Benchmarks[0]
	if r.NsPerOp <= 0 {
		t.Fatalf("ns/op %v, want > 0", r.NsPerOp)
	}
	if r.Samples != 3 || r.Ops <= 0 {
		t.Fatalf("bad sample accounting: %+v", r)
	}
	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks[0].Name != r.Name {
		t.Fatal("JSON round trip lost the benchmark")
	}
}

func TestRunUnknownFilter(t *testing.T) {
	if _, err := Run(Options{Filter: "no-such-bench"}); err == nil {
		t.Fatal("unknown filter accepted")
	}
}

func snapOf(results ...Result) *Snapshot { return &Snapshot{Benchmarks: results} }

func TestCompareGates(t *testing.T) {
	base := snapOf(
		Result{Name: "a", NsPerOp: 1000, AllocsPerOp: 2},
		Result{Name: "b", NsPerOp: 100, AllocsPerOp: 0},
	)
	// Identical: clean.
	if v := Compare(base, base, 0.20); len(v) != 0 {
		t.Fatalf("self-compare violations: %v", v)
	}
	// 19% slower: inside tolerance.
	if v := Compare(base, snapOf(
		Result{Name: "a", NsPerOp: 1190, AllocsPerOp: 2},
		Result{Name: "b", NsPerOp: 119, AllocsPerOp: 0},
	), 0.20); len(v) != 0 {
		t.Fatalf("in-tolerance violations: %v", v)
	}
	// 2x slower but under the absolute grace floor: noise, passes.
	if v := Compare(base, snapOf(
		Result{Name: "a", NsPerOp: 1000, AllocsPerOp: 2},
		Result{Name: "b", NsPerOp: 200, AllocsPerOp: 0},
	), 0.20); len(v) != 0 {
		t.Fatalf("grace-floor violations: %v", v)
	}
	// Real regression: beyond tolerance AND the grace floor.
	v := Compare(base, snapOf(
		Result{Name: "a", NsPerOp: 2000, AllocsPerOp: 2},
		Result{Name: "b", NsPerOp: 100, AllocsPerOp: 0},
	), 0.20)
	if len(v) != 1 || !strings.Contains(v[0], "a regressed") {
		t.Fatalf("missed ns/op regression: %v", v)
	}
	// Allocation regression on a zero-alloc baseline: even one alloc/op
	// fails (0.5 rounding slack only).
	v = Compare(base, snapOf(
		Result{Name: "a", NsPerOp: 1000, AllocsPerOp: 2},
		Result{Name: "b", NsPerOp: 100, AllocsPerOp: 1},
	), 0.20)
	if len(v) != 1 || !strings.Contains(v[0], "allocations regressed") {
		t.Fatalf("missed alloc regression: %v", v)
	}
	// Vanished benchmark.
	v = Compare(base, snapOf(Result{Name: "a", NsPerOp: 1000, AllocsPerOp: 2}), 0.20)
	if len(v) != 1 || !strings.Contains(v[0], "vanished") {
		t.Fatalf("missed vanished benchmark: %v", v)
	}
	// Faster and brand-new: both pass.
	if v := Compare(base, snapOf(
		Result{Name: "a", NsPerOp: 500, AllocsPerOp: 1},
		Result{Name: "b", NsPerOp: 50, AllocsPerOp: 0},
		Result{Name: "c", NsPerOp: 9999, AllocsPerOp: 99},
	), 0.20); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
}

func TestIndexSpeedup(t *testing.T) {
	s := snapOf(
		Result{Name: "rib/remove-peer-1m-indexed", NsPerOp: 10},
		Result{Name: "rib/remove-peer-1m-scan", NsPerOp: 140},
	)
	if got := s.IndexSpeedup(); got != 14 {
		t.Fatalf("speedup %v, want 14", got)
	}
	if got := snapOf().IndexSpeedup(); got != 0 {
		t.Fatalf("empty snapshot speedup %v, want 0", got)
	}
}
