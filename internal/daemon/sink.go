package daemon

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"sync"
	"time"
)

// Batch is one flushed unit of the downstream pipeline: the route
// changes accumulated over one batching window, in RIB-application
// order per prefix.
type Batch struct {
	// Seq numbers batches in flush order; every router sees the same
	// sequence, so sinks can assert ordered, gap-free delivery. Resync
	// batches reuse the newest flushed sequence number instead of
	// consuming a fresh one (a per-sink resync must not punch holes in
	// the other sinks' streams).
	Seq uint64
	// At is the flush instant on the daemon's clock — propagation
	// latency is measured from here to Apply completion.
	At time.Time
	// Changes are the window's route changes, oldest first. A prefix may
	// appear more than once; the last occurrence wins.
	Changes []RouteChange
	// Resync marks a full-state snapshot: Changes carries the best path
	// of every prefix in the RIB, consistent as of Seq (every batch at
	// or below Seq is already folded in; batches above it apply cleanly
	// on top, last-writer-wins). A sink applying a resync replaces its
	// state wholesale — entries absent from the snapshot are gone — and
	// treats any later-arriving batch with Seq at or below the
	// snapshot's as stale. Resyncs are the daemon's gap-heal and
	// breaker-recovery payload.
	Resync bool
}

// SeqRange is an inclusive range of batch sequence numbers a sink never
// received.
type SeqRange struct {
	From, To uint64
}

func (r SeqRange) String() string {
	if r.From == r.To {
		return fmt.Sprintf("%d", r.From)
	}
	return fmt.Sprintf("%d-%d", r.From, r.To)
}

// GapError is returned by a sink's Apply when the arriving batch
// exposes a sequence gap: batches From..To never arrived. The carrying
// batch HAS still been applied — a gap is a recovery signal (the
// resilient delivery path answers it with a resync), not a delivery
// failure, so it must not count against retry budgets or breakers.
type GapError struct {
	From, To uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("daemon: sink sequence gap: batches %s lost", SeqRange{e.From, e.To})
}

// SinkState is a sink's delivery bookkeeping, the read-back surface the
// daemon uses to verify recovery (a resync "applied" through a faulty
// transport proves nothing until the sink's own state says the gaps are
// gone and the stream tip was reached).
type SinkState struct {
	// LastSeq is the highest batch sequence applied (resyncs included).
	LastSeq uint64
	// Missing are the unhealed gap ranges, oldest first.
	Missing []SeqRange
	// Gaps counts gap ranges ever observed; Healed counts ranges closed
	// by a resync. Gaps == Healed and an empty Missing is a clean exit.
	Gaps   uint64
	Healed uint64
	// Stale counts batches skipped because a resync had already
	// subsumed them (their Seq was at or below the snapshot's).
	Stale uint64
}

// StatefulSink is a RouterSink whose delivery state can be read back.
// The resilient delivery path prefers snapshot resyncs for these and
// verifies recovery against State(); sinks without it are recovered by
// replaying the degraded-state buffer instead.
type StatefulSink interface {
	RouterSink
	State() SinkState
}

// RouterSink is one downstream router the daemon programs. Apply is
// called serially per sink from that sink's own delivery goroutine; a
// slow sink fills its bounded queue and backpressures ingestion rather
// than dropping batches (unless a delivery policy trips the sink into
// degraded buffering — see DeliveryPolicy).
type RouterSink interface {
	Name() string
	Apply(b Batch) error
}

// FIBSink is an in-memory downstream router: it programs a map FIB,
// tracking applied batches, sequence gaps and entries — the stand-in
// sink behind `supercharged serve` and the concurrency tests.
type FIBSink struct {
	name string
	// Delay simulates per-batch programming latency (0 = instant).
	Delay time.Duration

	mu      sync.Mutex
	fib     map[netip.Prefix]netip.Addr
	batches uint64
	lastSeq uint64
	missing []SeqRange
	gaps    uint64
	healed  uint64
	stale   uint64
}

// NewFIBSink builds an empty in-memory router FIB.
func NewFIBSink(name string) *FIBSink {
	return &FIBSink{name: name, fib: make(map[netip.Prefix]netip.Addr)}
}

func (s *FIBSink) Name() string { return s.name }

// Apply programs the batch into the FIB. Withdraws delete the entry.
// Ordinary batches must arrive in dense Seq order: a jump forward
// records the missing range and returns a *GapError (the batch itself
// is still applied); a batch at or below the high-water mark after a
// resync is skipped as stale. A Resync batch replaces the FIB wholesale
// and heals every outstanding gap.
func (s *FIBSink) Apply(b Batch) error {
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	if b.Resync {
		clear(s.fib)
		for _, ch := range b.Changes {
			if ch.NextHop.IsValid() {
				s.fib[ch.Prefix] = ch.NextHop
			}
		}
		if n := uint64(len(s.missing)); n > 0 {
			s.healed += n
			s.missing = nil
		}
		if b.Seq > s.lastSeq {
			s.lastSeq = b.Seq
		}
		return nil
	}
	if b.Seq <= s.lastSeq {
		// Subsumed by an earlier resync (its snapshot already reflected
		// this batch's changes); replaying it would regress nothing but
		// wastes work — skip and account.
		s.stale++
		return nil
	}
	var gap *GapError
	if b.Seq != s.lastSeq+1 {
		gap = &GapError{From: s.lastSeq + 1, To: b.Seq - 1}
		s.missing = append(s.missing, SeqRange{From: gap.From, To: gap.To})
		s.gaps++
	}
	s.lastSeq = b.Seq
	for _, ch := range b.Changes {
		if ch.NextHop.IsValid() {
			s.fib[ch.Prefix] = ch.NextHop
		} else {
			delete(s.fib, ch.Prefix)
		}
	}
	if gap != nil {
		return gap
	}
	return nil
}

// State implements StatefulSink.
func (s *FIBSink) State() SinkState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SinkState{
		LastSeq: s.lastSeq,
		Missing: append([]SeqRange(nil), s.missing...),
		Gaps:    s.gaps,
		Healed:  s.healed,
		Stale:   s.stale,
	}
}

// Len returns the programmed entry count.
func (s *FIBSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fib)
}

// Batches returns how many batches were applied.
func (s *FIBSink) Batches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches
}

// Gaps returns how many sequence gaps were observed (0 on a healthy
// pipeline — bounded queues block, they never drop). Healed gaps still
// count; Unhealed reports the ones a resync has not yet closed.
func (s *FIBSink) Gaps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.gaps)
}

// Unhealed returns the number of gap ranges not yet closed by a resync.
func (s *FIBSink) Unhealed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.missing)
}

// NextHop reads one programmed entry.
func (s *FIBSink) NextHop(p netip.Prefix) (netip.Addr, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nh, ok := s.fib[p]
	return nh, ok
}

// FIBEntry is one programmed route, the unit of Entries/Hash.
type FIBEntry struct {
	Prefix  netip.Prefix
	NextHop netip.Addr
}

// Entries returns the FIB contents sorted by prefix — the canonical
// form for byte-for-byte comparisons between sinks and against the
// RIB's best-path snapshot.
func (s *FIBSink) Entries() []FIBEntry {
	s.mu.Lock()
	out := make([]FIBEntry, 0, len(s.fib))
	for p, nh := range s.fib {
		out = append(out, FIBEntry{Prefix: p, NextHop: nh})
	}
	s.mu.Unlock()
	SortFIBEntries(out)
	return out
}

// Hash returns a deterministic FNV-1a digest of the sorted FIB
// contents. Two sinks (or two runs) converged to the same table hash
// identically, whatever order programmed them.
func (s *FIBSink) Hash() uint64 {
	return HashEntries(s.Entries())
}

// HashEntries digests a sorted entry list the way FIBSink.Hash does.
func HashEntries(entries []FIBEntry) uint64 {
	h := fnv.New64a()
	var buf [64]byte
	for _, e := range entries {
		b := e.Prefix.Addr().As16()
		n := copy(buf[:], b[:])
		buf[n] = byte(e.Prefix.Bits())
		n++
		nb := e.NextHop.As16()
		n += copy(buf[n:], nb[:])
		h.Write(buf[:n])
	}
	return h.Sum64()
}

// SortFIBEntries orders entries by prefix (address, then length) —
// Entries' canonical order, for callers building comparable lists.
func SortFIBEntries(entries []FIBEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Prefix, entries[j].Prefix
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c < 0
		}
		return a.Bits() < b.Bits()
	})
}
