package daemon

import (
	"net/netip"
	"sync"
	"time"
)

// Batch is one flushed unit of the downstream pipeline: the route
// changes accumulated over one batching window, in RIB-application
// order per prefix.
type Batch struct {
	// Seq numbers batches in flush order; every router sees the same
	// sequence, so sinks can assert ordered, gap-free delivery.
	Seq uint64
	// At is the flush instant on the daemon's clock — propagation
	// latency is measured from here to Apply completion.
	At time.Time
	// Changes are the window's route changes, oldest first. A prefix may
	// appear more than once; the last occurrence wins.
	Changes []RouteChange
}

// RouterSink is one downstream router the daemon programs. Apply is
// called serially per sink from that sink's own delivery goroutine; a
// slow sink fills its bounded queue and backpressures ingestion rather
// than dropping batches.
type RouterSink interface {
	Name() string
	Apply(b Batch) error
}

// FIBSink is an in-memory downstream router: it programs a map FIB,
// tracking applied batches and entries — the stand-in sink behind
// `supercharged serve` and the concurrency tests.
type FIBSink struct {
	name string
	// Delay simulates per-batch programming latency (0 = instant).
	Delay time.Duration

	mu      sync.Mutex
	fib     map[netip.Prefix]netip.Addr
	batches uint64
	lastSeq uint64
	gaps    int
}

// NewFIBSink builds an empty in-memory router FIB.
func NewFIBSink(name string) *FIBSink {
	return &FIBSink{name: name, fib: make(map[netip.Prefix]netip.Addr)}
}

func (s *FIBSink) Name() string { return s.name }

// Apply programs the batch into the FIB. Withdraws delete the entry.
func (s *FIBSink) Apply(b Batch) error {
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batches > 0 && b.Seq != s.lastSeq+1 {
		s.gaps++
	}
	s.lastSeq = b.Seq
	s.batches++
	for _, ch := range b.Changes {
		if ch.NextHop.IsValid() {
			s.fib[ch.Prefix] = ch.NextHop
		} else {
			delete(s.fib, ch.Prefix)
		}
	}
	return nil
}

// Len returns the programmed entry count.
func (s *FIBSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fib)
}

// Batches returns how many batches were applied.
func (s *FIBSink) Batches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches
}

// Gaps returns how many sequence gaps were observed (0 on a healthy
// pipeline — bounded queues block, they never drop).
func (s *FIBSink) Gaps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gaps
}

// NextHop reads one programmed entry.
func (s *FIBSink) NextHop(p netip.Prefix) (netip.Addr, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nh, ok := s.fib[p]
	return nh, ok
}
