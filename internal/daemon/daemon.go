// Package daemon is the long-running controller service behind
// `supercharged serve`: the batch lab's control plane turned into a
// concurrent pipeline. Per-peer ingestion goroutines stream BGP UPDATEs
// from their sources into a sharded, per-peer-indexed RIB; a batching
// stage accumulates the resulting best-path changes and fans them out
// to every downstream router over bounded queues (a slow router
// backpressures ingestion instead of dropping routes); and the whole
// pipeline drains gracefully under context cancellation. A source that
// fails mid-stream is treated as a session failure: the daemon
// withdraws the peer's routes via the indexed RemovePeer — the paper's
// failover event, at service scale.
//
// The daemon observes real time through clock.Clock, so tests can run
// it against any source; its concurrency is free-threaded (goroutines +
// channels), unlike the lab's serial discrete-event engine.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/telemetry"
)

// Config assembles a daemon.
type Config struct {
	// Sources are the upstream peers; one ingestion goroutine each.
	Sources []PeerSource
	// Routers are the downstream sinks; one delivery goroutine and one
	// bounded queue each. No routers = ingest-only (the RIB still
	// builds, nothing is programmed).
	Routers []RouterSink
	// Shards splits the RIB lock domain (default 8).
	Shards int
	// SizeHint pre-sizes the RIB for about this many prefixes.
	SizeHint int
	// BatchSize flushes a batch when it reaches this many changes
	// (default 4096).
	BatchSize int
	// BatchInterval flushes a non-empty batch at least this often
	// (default 50 ms).
	BatchInterval time.Duration
	// QueueDepth bounds each router's batch queue (default 64). A full
	// queue blocks the flusher, which blocks ingestion: backpressure,
	// not loss.
	QueueDepth int
	// Clock drives batching timers and latency stamps (nil = system).
	Clock clock.Clock
	// Telemetry, if set, registers the daemon's metric series: per-peer
	// session state and update counts, batch/queue gauges, propagation
	// latency and failover convergence histograms. Nil disables all of
	// it — the pipeline behaves identically either way.
	Telemetry *telemetry.Registry
	// Trace, if set, receives instant spans for resilience events
	// (breaker transitions, resyncs, gaps, reconnects).
	Trace *telemetry.Trace
	// Delivery, when non-zero, turns on the resilient delivery path:
	// push timeouts, retries, per-sink circuit breakers with degraded
	// buffering, and gap-driven resyncs. Zero keeps the plain apply
	// loop, byte-identical to the policy-free daemon.
	Delivery DeliveryPolicy
	// Reconnect, when non-zero, re-runs failed sources with backoff
	// after their withdraw. Zero leaves failed sessions down.
	Reconnect ReconnectPolicy
	// Logf, if set, receives lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// Daemon is the running service. Lifecycle: New → Start → (serve) →
// Drain or Stop. Start, Drain and Stop are all idempotent.
type Daemon struct {
	cfg     Config
	clk     clock.Clock
	rib     *ShardedRIB
	metrics *metrics

	ctx    context.Context
	cancel context.CancelFunc

	hardStop chan struct{} // closed by Stop (or an expired Drain): lets blocked work abort
	hardOnce sync.Once

	epoch    time.Time // Start instant; trace span timestamps are offsets from it
	tracePID int

	workers []*sinkWorker // resilient delivery workers (policy enabled only)

	mu      sync.Mutex
	started bool
	batch   []RouteChange
	seq     uint64
	flushT  clock.Timer
	closed  bool // intake closed; no further flushes may enqueue

	queues  []chan Batch
	sendMu  sync.Mutex     // serializes queue sends, so Seq order holds per queue
	srcWG   sync.WaitGroup // ingestion goroutines
	sinkWG  sync.WaitGroup // delivery goroutines
	drainMu sync.Mutex     // serializes Drain/Stop shutdown
	drained bool
	downMu  sync.Mutex
	down    map[string]bool // peers already withdrawn

	errMu sync.Mutex
	errs  []error
}

// New builds a daemon; Start brings it up.
func New(cfg Config) *Daemon {
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 4096
	}
	if cfg.BatchInterval == 0 {
		cfg.BatchInterval = 50 * time.Millisecond
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cfg.Delivery = cfg.Delivery.normalize()
	cfg.Reconnect = cfg.Reconnect.normalize()
	d := &Daemon{
		cfg:      cfg,
		clk:      cfg.Clock,
		rib:      NewShardedRIB(cfg.Shards, cfg.SizeHint),
		down:     make(map[string]bool),
		hardStop: make(chan struct{}),
	}
	d.metrics = newMetrics(cfg.Telemetry, d)
	return d
}

// RIB exposes the daemon's table (live; safe for concurrent reads).
func (d *Daemon) RIB() *ShardedRIB { return d.rib }

// Start launches the pipeline: one goroutine per source, one per
// router, plus the batch flusher. Idempotent; the second call is a
// no-op. ctx cancels ingestion (sources see it via their Run context);
// use Drain for a graceful stop that flushes in-flight work.
func (d *Daemon) Start(ctx context.Context) {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.ctx, d.cancel = context.WithCancel(ctx)
	d.epoch = d.clk.Now()
	if d.cfg.Trace != nil {
		d.tracePID = d.cfg.Trace.Process("daemon")
	}
	d.queues = make([]chan Batch, len(d.cfg.Routers))
	for i := range d.cfg.Routers {
		d.queues[i] = make(chan Batch, d.cfg.QueueDepth)
	}
	d.mu.Unlock()

	for i, sink := range d.cfg.Routers {
		d.sinkWG.Add(1)
		if d.cfg.Delivery.Enabled() {
			w := newSinkWorker(d, d.queues[i], sink)
			d.workers = append(d.workers, w)
			go w.run()
		} else {
			go d.deliver(d.queues[i], sink)
		}
	}
	for _, src := range d.cfg.Sources {
		d.srcWG.Add(1)
		d.metrics.sessionUp(src, true)
		go d.ingest(src)
	}
	d.armFlush()
	d.cfg.Logf("daemon: started (%d peers, %d routers, %d shards)",
		len(d.cfg.Sources), len(d.cfg.Routers), d.cfg.Shards)
}

// ErrCorruptUpdate marks an UPDATE that failed ingest validation. Like
// a malformed wire message in BGP proper, it fails the whole session
// (RFC 4271's treat-as-session-reset for fatal UPDATE errors): the
// peer's routes are withdrawn, and the reconnect policy — if enabled —
// brings the session back, at which point the peer re-announces its
// full table and the pipeline reconverges.
var ErrCorruptUpdate = errors.New("daemon: corrupt update")

// validateUpdate is the ingest guard against corrupted records (the
// chaos layer's corruption faults land here, as would a broken bridge).
func validateUpdate(u *bgp.Update) error {
	if u == nil {
		return fmt.Errorf("%w: nil update", ErrCorruptUpdate)
	}
	if len(u.NLRI) > 0 && u.Attrs == nil {
		return fmt.Errorf("%w: NLRI without path attributes", ErrCorruptUpdate)
	}
	for _, p := range u.NLRI {
		if !p.IsValid() {
			return fmt.Errorf("%w: invalid NLRI prefix", ErrCorruptUpdate)
		}
	}
	for _, p := range u.Withdrawn {
		if !p.IsValid() {
			return fmt.Errorf("%w: invalid withdrawn prefix", ErrCorruptUpdate)
		}
	}
	return nil
}

// ingest runs one source's session loop: stream into the RIB until the
// feed ends; on session failure, withdraw (PeerDown) and — under a
// reconnect policy — back off and re-run the source, which re-announces
// its table and reconverges the pipeline.
func (d *Daemon) ingest(src PeerSource) {
	defer d.srcWG.Done()
	name := src.Name()
	for attempt := 0; ; attempt++ {
		err := d.runSession(src)
		switch {
		case err == nil:
			// Clean end of feed: session stays up, routes stay in.
			d.cfg.Logf("daemon: peer %s: feed complete (%d routes)", name, d.rib.PeerLen(src.Peer().Addr))
			return
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// Shutdown, not failure.
			return
		}
		d.cfg.Logf("daemon: peer %s: session failed: %v", name, err)
		if errors.Is(err, ErrCorruptUpdate) {
			d.metrics.corruptUpdate(src)
		}
		d.PeerDown(src)
		rp := d.cfg.Reconnect
		if !rp.Enabled() || attempt >= rp.MaxAttempts-1 {
			return
		}
		if clock.SleepCtx(d.ctx, d.clk, rp.delay(name, attempt)) != nil {
			return
		}
		// Re-arm the peer's down latch so a later failure withdraws
		// again, then re-run the source from the top (a fresh session
		// re-announces the full table; the RIB dedups unchanged paths).
		d.downMu.Lock()
		delete(d.down, name)
		d.downMu.Unlock()
		d.metrics.sessionUp(src, true)
		d.metrics.reconnect(src)
		d.span("peer-reconnect", name)
		d.cfg.Logf("daemon: peer %s: reconnecting (attempt %d/%d)", name, attempt+1, rp.MaxAttempts)
	}
}

// runSession is one pass of a source's Run: validate, apply, emit.
func (d *Daemon) runSession(src PeerSource) error {
	peer := src.Peer()
	return src.Run(d.ctx, func(u *bgp.Update) error {
		if err := d.ctx.Err(); err != nil {
			return err
		}
		if err := validateUpdate(u); err != nil {
			return err
		}
		// Changes are enqueued from inside the shard lock (UpdateEmit's
		// contract): for any prefix, the batch stream carries its changes
		// in RIB-mutation order, so the last change a sink applies is the
		// RIB's final word. Applying first and enqueueing after would open
		// a window where two peers' changes for one prefix enter the batch
		// in the opposite order they hit the RIB — a stale withdraw could
		// then shadow the surviving announcement downstream.
		changed := 0
		d.rib.UpdateEmit(peer, u, func(ch []RouteChange) {
			changed += len(ch)
			d.enqueue(ch)
		})
		d.metrics.updates(src, len(u.NLRI), len(u.Withdrawn), changed)
		return nil
	})
}

// PeerDown withdraws every route learned from the source's peer — the
// failover event. Idempotent per peer; the convergence histogram
// observes the wall time from the failure to the last router queue
// accepting the withdraw batch.
func (d *Daemon) PeerDown(src PeerSource) {
	name := src.Name()
	d.downMu.Lock()
	if d.down[name] {
		d.downMu.Unlock()
		return
	}
	d.down[name] = true
	d.downMu.Unlock()

	d.metrics.sessionUp(src, false)
	t0 := d.clk.Now()
	// Enqueue under the shard locks (see ingest) so the withdraws order
	// correctly against any still-streaming peer's announcements.
	n := d.rib.RemovePeerEmit(src.Peer().Addr, d.enqueue)
	d.flush() // failover does not wait for the batching window
	d.metrics.failover(d.clk.Now().Sub(t0), n)
	d.cfg.Logf("daemon: peer %s: withdrew %d routes in %v", name, n, d.clk.Now().Sub(t0))
}

// enqueue appends changes to the pending batch, flushing on size. The
// ingestion paths call it while holding the originating RIB shard's
// lock — that is what keeps per-prefix order in the batch stream equal
// to RIB-mutation order. A size-triggered flush can therefore block on
// a full router queue with a shard lock held: backpressure propagates
// all the way to that shard's writers, by design.
func (d *Daemon) enqueue(changes []RouteChange) {
	if len(changes) == 0 {
		return
	}
	d.mu.Lock()
	d.batch = append(d.batch, changes...)
	full := len(d.batch) >= d.cfg.BatchSize
	d.mu.Unlock()
	if full {
		d.flush()
	}
}

// armFlush schedules the interval flush.
func (d *Daemon) armFlush() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.flushT = d.clk.AfterFunc(d.cfg.BatchInterval, func() {
		d.flush()
		d.armFlush()
	})
}

// flush ships the pending batch to every router queue. Sends block on
// full queues — that is the backpressure path, and it holds during a
// graceful drain too (the final flush waits for the sinks to catch up).
// Only a hard Stop aborts a blocked send, because its sink goroutines
// are exiting and would never free the queue. sendMu serializes
// concurrent flushers so batches enter every queue in Seq order.
func (d *Daemon) flush() {
	d.sendMu.Lock()
	defer d.sendMu.Unlock()
	d.mu.Lock()
	if len(d.batch) == 0 || d.closed {
		d.mu.Unlock()
		return
	}
	d.seq++
	b := Batch{Seq: d.seq, At: d.clk.Now(), Changes: d.batch}
	d.batch = nil
	queues := d.queues
	d.mu.Unlock()

	d.metrics.flush(len(b.Changes))
	for _, q := range queues {
		select {
		case q <- b:
		case <-d.hardStop:
			return
		}
	}
}

// resyncBatch builds a full-state snapshot batch for a recovering sink.
// The sequence stamp is read BEFORE the snapshot walk: every batch at
// or below it was flushed before the read, so its RIB mutations
// happened-before the walk and are in the snapshot — which is exactly
// the claim the stamp makes (the snapshot subsumes all batches ≤ Seq).
// Batches above the stamp may or may not be reflected; either way they
// reapply cleanly on top, last-writer-wins. The stamp deliberately does
// NOT consume a fresh sequence number: a per-sink resync must not punch
// holes in the other sinks' dense streams.
func (d *Daemon) resyncBatch() Batch {
	d.mu.Lock()
	seq := d.seq
	d.mu.Unlock()
	return Batch{
		Seq:     seq,
		At:      d.clk.Now(),
		Changes: d.rib.Snapshot(nil),
		Resync:  true,
	}
}

// finalSeq is the last flushed sequence number; valid as the stream's
// end mark once intake has closed.
func (d *Daemon) finalSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// hardStopNow closes hardStop exactly once: Stop does it by definition,
// and an expired Drain does it so blocked flushes and healing workers
// abort instead of hanging past the deadline the caller set.
func (d *Daemon) hardStopNow() {
	d.hardOnce.Do(func() { close(d.hardStop) })
}

// span emits an instant trace span for a resilience event (no-op
// without Config.Trace).
func (d *Daemon) span(name, entity string) {
	tr := d.cfg.Trace
	if tr == nil {
		return
	}
	tr.Add(telemetry.Span{
		Name:  name,
		Cat:   "daemon",
		PID:   d.tracePID,
		Start: d.clk.Now().Sub(d.epoch),
		Peer:  entity,
	})
}

// DeliveryStates reports each resilient worker's breaker state by
// router name ("closed", "open", "half-open"); empty without a
// delivery policy.
func (d *Daemon) DeliveryStates() map[string]string {
	out := make(map[string]string, len(d.workers))
	for _, w := range d.workers {
		out[w.sink.Name()] = w.stateName()
	}
	return out
}

// deliver consumes one router's queue until it closes.
func (d *Daemon) deliver(q chan Batch, sink RouterSink) {
	defer d.sinkWG.Done()
	for b := range q {
		if err := sink.Apply(b); err != nil {
			d.recordErr(fmt.Errorf("daemon: router %s: %w", sink.Name(), err))
			continue
		}
		d.metrics.delivered(sink, len(b.Changes), d.clk.Now().Sub(b.At))
	}
}

// Wait blocks until every source's feed has ended on its own — clean
// completion or session failure — or ctx expires. It does not stop the
// daemon: the flusher keeps running and the RIB stays live, so callers
// typically Wait (finite replays) and then Drain. For endless sources,
// skip Wait and Drain directly.
func (d *Daemon) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		d.srcWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain performs a graceful shutdown: stop intake (sources see their
// context cancelled), wait for ingestion to finish, flush the final
// batch, close the router queues and wait for every queued batch to be
// applied. ctx bounds the wait; on expiry Drain falls back to Stop
// semantics and returns the context's error. Idempotent — concurrent
// and repeated calls all observe the one shutdown.
func (d *Daemon) Drain(ctx context.Context) error {
	d.drainMu.Lock()
	defer d.drainMu.Unlock()
	if d.drained {
		return d.err()
	}
	d.drained = true
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if !started {
		return nil
	}

	d.cancel() // stop sources
	done := make(chan struct{})
	go func() {
		d.srcWG.Wait()
		d.finalFlush()
		d.closeQueues()
		d.sinkWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		d.stopFlushTimer()
		d.cfg.Logf("daemon: drained (%d prefixes in RIB)", d.rib.Len())
		return d.err()
	case <-ctx.Done():
		// Past the caller's deadline a graceful finish is off the table:
		// release anything still blocked (full queues, healing workers)
		// so the shutdown goroutine can unwind.
		d.hardStopNow()
		d.stopFlushTimer()
		d.recordErr(fmt.Errorf("daemon: drain: %w", ctx.Err()))
		return d.err()
	}
}

// Stop is the hard shutdown: cancel everything, drop queued work, wait
// for goroutines. Idempotent, and safe after Drain.
func (d *Daemon) Stop() {
	d.drainMu.Lock()
	defer d.drainMu.Unlock()
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if !started {
		return
	}
	if !d.drained {
		d.drained = true
		d.cancel()
		d.hardStopNow()
		d.srcWG.Wait()
		d.closeQueues()
		d.sinkWG.Wait()
	}
	d.stopFlushTimer()
}

// finalFlush ships whatever ingestion left pending. Called with intake
// finished, before queues close.
func (d *Daemon) finalFlush() { d.flush() }

// closeQueues marks the pipeline closed and closes every router queue
// exactly once.
func (d *Daemon) closeQueues() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	queues := d.queues
	d.mu.Unlock()
	for _, q := range queues {
		close(q)
	}
}

func (d *Daemon) stopFlushTimer() {
	d.mu.Lock()
	if d.flushT != nil {
		d.flushT.Stop()
		d.flushT = nil
	}
	d.closed = true
	d.mu.Unlock()
}

func (d *Daemon) recordErr(err error) {
	d.errMu.Lock()
	d.errs = append(d.errs, err)
	d.errMu.Unlock()
}

// err joins every recorded pipeline error.
func (d *Daemon) err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return errors.Join(d.errs...)
}
