// Package daemon is the long-running controller service behind
// `supercharged serve`: the batch lab's control plane turned into a
// concurrent pipeline. Per-peer ingestion goroutines stream BGP UPDATEs
// from their sources into a sharded, per-peer-indexed RIB; a batching
// stage accumulates the resulting best-path changes and fans them out
// to every downstream router over bounded queues (a slow router
// backpressures ingestion instead of dropping routes); and the whole
// pipeline drains gracefully under context cancellation. A source that
// fails mid-stream is treated as a session failure: the daemon
// withdraws the peer's routes via the indexed RemovePeer — the paper's
// failover event, at service scale.
//
// The daemon observes real time through clock.Clock, so tests can run
// it against any source; its concurrency is free-threaded (goroutines +
// channels), unlike the lab's serial discrete-event engine.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/telemetry"
)

// Config assembles a daemon.
type Config struct {
	// Sources are the upstream peers; one ingestion goroutine each.
	Sources []PeerSource
	// Routers are the downstream sinks; one delivery goroutine and one
	// bounded queue each. No routers = ingest-only (the RIB still
	// builds, nothing is programmed).
	Routers []RouterSink
	// Shards splits the RIB lock domain (default 8).
	Shards int
	// SizeHint pre-sizes the RIB for about this many prefixes.
	SizeHint int
	// BatchSize flushes a batch when it reaches this many changes
	// (default 4096).
	BatchSize int
	// BatchInterval flushes a non-empty batch at least this often
	// (default 50 ms).
	BatchInterval time.Duration
	// QueueDepth bounds each router's batch queue (default 64). A full
	// queue blocks the flusher, which blocks ingestion: backpressure,
	// not loss.
	QueueDepth int
	// Clock drives batching timers and latency stamps (nil = system).
	Clock clock.Clock
	// Telemetry, if set, registers the daemon's metric series: per-peer
	// session state and update counts, batch/queue gauges, propagation
	// latency and failover convergence histograms. Nil disables all of
	// it — the pipeline behaves identically either way.
	Telemetry *telemetry.Registry
	// Logf, if set, receives lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// Daemon is the running service. Lifecycle: New → Start → (serve) →
// Drain or Stop. Start, Drain and Stop are all idempotent.
type Daemon struct {
	cfg     Config
	clk     clock.Clock
	rib     *ShardedRIB
	metrics *metrics

	ctx    context.Context
	cancel context.CancelFunc

	hardStop chan struct{} // closed by Stop: lets a blocked flush abort

	mu      sync.Mutex
	started bool
	batch   []RouteChange
	seq     uint64
	flushT  clock.Timer
	closed  bool // intake closed; no further flushes may enqueue

	queues  []chan Batch
	sendMu  sync.Mutex     // serializes queue sends, so Seq order holds per queue
	srcWG   sync.WaitGroup // ingestion goroutines
	sinkWG  sync.WaitGroup // delivery goroutines
	drainMu sync.Mutex     // serializes Drain/Stop shutdown
	drained bool
	downMu  sync.Mutex
	down    map[string]bool // peers already withdrawn

	errMu sync.Mutex
	errs  []error
}

// New builds a daemon; Start brings it up.
func New(cfg Config) *Daemon {
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 4096
	}
	if cfg.BatchInterval == 0 {
		cfg.BatchInterval = 50 * time.Millisecond
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	d := &Daemon{
		cfg:      cfg,
		clk:      cfg.Clock,
		rib:      NewShardedRIB(cfg.Shards, cfg.SizeHint),
		down:     make(map[string]bool),
		hardStop: make(chan struct{}),
	}
	d.metrics = newMetrics(cfg.Telemetry, d)
	return d
}

// RIB exposes the daemon's table (live; safe for concurrent reads).
func (d *Daemon) RIB() *ShardedRIB { return d.rib }

// Start launches the pipeline: one goroutine per source, one per
// router, plus the batch flusher. Idempotent; the second call is a
// no-op. ctx cancels ingestion (sources see it via their Run context);
// use Drain for a graceful stop that flushes in-flight work.
func (d *Daemon) Start(ctx context.Context) {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.ctx, d.cancel = context.WithCancel(ctx)
	d.queues = make([]chan Batch, len(d.cfg.Routers))
	for i := range d.cfg.Routers {
		d.queues[i] = make(chan Batch, d.cfg.QueueDepth)
	}
	d.mu.Unlock()

	for i, sink := range d.cfg.Routers {
		d.sinkWG.Add(1)
		go d.deliver(d.queues[i], sink)
	}
	for _, src := range d.cfg.Sources {
		d.srcWG.Add(1)
		d.metrics.sessionUp(src, true)
		go d.ingest(src)
	}
	d.armFlush()
	d.cfg.Logf("daemon: started (%d peers, %d routers, %d shards)",
		len(d.cfg.Sources), len(d.cfg.Routers), d.cfg.Shards)
}

// ingest runs one source and applies its stream to the sharded RIB.
func (d *Daemon) ingest(src PeerSource) {
	defer d.srcWG.Done()
	peer := src.Peer()
	err := src.Run(d.ctx, func(u *bgp.Update) error {
		if err := d.ctx.Err(); err != nil {
			return err
		}
		// Changes are enqueued from inside the shard lock (UpdateEmit's
		// contract): for any prefix, the batch stream carries its changes
		// in RIB-mutation order, so the last change a sink applies is the
		// RIB's final word. Applying first and enqueueing after would open
		// a window where two peers' changes for one prefix enter the batch
		// in the opposite order they hit the RIB — a stale withdraw could
		// then shadow the surviving announcement downstream.
		changed := 0
		d.rib.UpdateEmit(peer, u, func(ch []RouteChange) {
			changed += len(ch)
			d.enqueue(ch)
		})
		d.metrics.updates(src, len(u.NLRI), len(u.Withdrawn), changed)
		return nil
	})
	switch {
	case err == nil:
		// Clean end of feed: session stays up, routes stay in.
		d.cfg.Logf("daemon: peer %s: feed complete (%d routes)", src.Name(), d.rib.PeerLen(peer.Addr))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Shutdown, not failure.
	default:
		d.cfg.Logf("daemon: peer %s: session failed: %v", src.Name(), err)
		d.PeerDown(src)
	}
}

// PeerDown withdraws every route learned from the source's peer — the
// failover event. Idempotent per peer; the convergence histogram
// observes the wall time from the failure to the last router queue
// accepting the withdraw batch.
func (d *Daemon) PeerDown(src PeerSource) {
	name := src.Name()
	d.downMu.Lock()
	if d.down[name] {
		d.downMu.Unlock()
		return
	}
	d.down[name] = true
	d.downMu.Unlock()

	d.metrics.sessionUp(src, false)
	t0 := d.clk.Now()
	// Enqueue under the shard locks (see ingest) so the withdraws order
	// correctly against any still-streaming peer's announcements.
	n := d.rib.RemovePeerEmit(src.Peer().Addr, d.enqueue)
	d.flush() // failover does not wait for the batching window
	d.metrics.failover(d.clk.Now().Sub(t0), n)
	d.cfg.Logf("daemon: peer %s: withdrew %d routes in %v", name, n, d.clk.Now().Sub(t0))
}

// enqueue appends changes to the pending batch, flushing on size. The
// ingestion paths call it while holding the originating RIB shard's
// lock — that is what keeps per-prefix order in the batch stream equal
// to RIB-mutation order. A size-triggered flush can therefore block on
// a full router queue with a shard lock held: backpressure propagates
// all the way to that shard's writers, by design.
func (d *Daemon) enqueue(changes []RouteChange) {
	if len(changes) == 0 {
		return
	}
	d.mu.Lock()
	d.batch = append(d.batch, changes...)
	full := len(d.batch) >= d.cfg.BatchSize
	d.mu.Unlock()
	if full {
		d.flush()
	}
}

// armFlush schedules the interval flush.
func (d *Daemon) armFlush() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.flushT = d.clk.AfterFunc(d.cfg.BatchInterval, func() {
		d.flush()
		d.armFlush()
	})
}

// flush ships the pending batch to every router queue. Sends block on
// full queues — that is the backpressure path, and it holds during a
// graceful drain too (the final flush waits for the sinks to catch up).
// Only a hard Stop aborts a blocked send, because its sink goroutines
// are exiting and would never free the queue. sendMu serializes
// concurrent flushers so batches enter every queue in Seq order.
func (d *Daemon) flush() {
	d.sendMu.Lock()
	defer d.sendMu.Unlock()
	d.mu.Lock()
	if len(d.batch) == 0 || d.closed {
		d.mu.Unlock()
		return
	}
	d.seq++
	b := Batch{Seq: d.seq, At: d.clk.Now(), Changes: d.batch}
	d.batch = nil
	queues := d.queues
	d.mu.Unlock()

	d.metrics.flush(len(b.Changes))
	for _, q := range queues {
		select {
		case q <- b:
		case <-d.hardStop:
			return
		}
	}
}

// deliver consumes one router's queue until it closes.
func (d *Daemon) deliver(q chan Batch, sink RouterSink) {
	defer d.sinkWG.Done()
	for b := range q {
		if err := sink.Apply(b); err != nil {
			d.recordErr(fmt.Errorf("daemon: router %s: %w", sink.Name(), err))
			continue
		}
		d.metrics.delivered(sink, len(b.Changes), d.clk.Now().Sub(b.At))
	}
}

// Wait blocks until every source's feed has ended on its own — clean
// completion or session failure — or ctx expires. It does not stop the
// daemon: the flusher keeps running and the RIB stays live, so callers
// typically Wait (finite replays) and then Drain. For endless sources,
// skip Wait and Drain directly.
func (d *Daemon) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		d.srcWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain performs a graceful shutdown: stop intake (sources see their
// context cancelled), wait for ingestion to finish, flush the final
// batch, close the router queues and wait for every queued batch to be
// applied. ctx bounds the wait; on expiry Drain falls back to Stop
// semantics and returns the context's error. Idempotent — concurrent
// and repeated calls all observe the one shutdown.
func (d *Daemon) Drain(ctx context.Context) error {
	d.drainMu.Lock()
	defer d.drainMu.Unlock()
	if d.drained {
		return d.err()
	}
	d.drained = true
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if !started {
		return nil
	}

	d.cancel() // stop sources
	done := make(chan struct{})
	go func() {
		d.srcWG.Wait()
		d.finalFlush()
		d.closeQueues()
		d.sinkWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		d.stopFlushTimer()
		d.cfg.Logf("daemon: drained (%d prefixes in RIB)", d.rib.Len())
		return d.err()
	case <-ctx.Done():
		d.stopFlushTimer()
		d.recordErr(fmt.Errorf("daemon: drain: %w", ctx.Err()))
		return d.err()
	}
}

// Stop is the hard shutdown: cancel everything, drop queued work, wait
// for goroutines. Idempotent, and safe after Drain.
func (d *Daemon) Stop() {
	d.drainMu.Lock()
	defer d.drainMu.Unlock()
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if !started {
		return
	}
	if !d.drained {
		d.drained = true
		d.cancel()
		close(d.hardStop)
		d.srcWG.Wait()
		d.closeQueues()
		d.sinkWG.Wait()
	}
	d.stopFlushTimer()
}

// finalFlush ships whatever ingestion left pending. Called with intake
// finished, before queues close.
func (d *Daemon) finalFlush() { d.flush() }

// closeQueues marks the pipeline closed and closes every router queue
// exactly once.
func (d *Daemon) closeQueues() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	queues := d.queues
	d.mu.Unlock()
	for _, q := range queues {
		close(q)
	}
}

func (d *Daemon) stopFlushTimer() {
	d.mu.Lock()
	if d.flushT != nil {
		d.flushT.Stop()
		d.flushT = nil
	}
	d.closed = true
	d.mu.Unlock()
}

func (d *Daemon) recordErr(err error) {
	d.errMu.Lock()
	d.errs = append(d.errs, err)
	d.errMu.Unlock()
}

// err joins every recorded pipeline error.
func (d *Daemon) err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return errors.Join(d.errs...)
}
