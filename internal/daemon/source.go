package daemon

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/feed"
)

// PeerSource is one upstream BGP feed: the daemon runs each source on
// its own ingestion goroutine and applies everything it emits to the
// sharded RIB under the source's peer identity. Run streams UPDATEs
// into emit until the feed is exhausted (clean session close), the
// context is cancelled, or the source fails — a non-cancellation error
// is treated as a session failure and triggers the peer's withdraw
// (RemovePeer) downstream, the daemon-scale version of the paper's
// failover event.
type PeerSource interface {
	// Peer identifies the session; Meta.Addr keys the RIB's per-peer
	// index and the per-peer telemetry series.
	Peer() bgp.PeerMeta
	// Name labels the peer in logs and metrics.
	Name() string
	// Run streams updates. emit's error (backpressure, shutdown) must
	// abort the stream and be returned unwrapped.
	Run(ctx context.Context, emit func(*bgp.Update) error) error
}

// ErrSessionFailed is the conventional failure a load-generating source
// returns to script a peer failure (TableReplay.FailAfter).
var ErrSessionFailed = fmt.Errorf("daemon: scripted session failure")

// TableReplay replays a routing table as one peer's feed: the MRT
// bridge (feed.FromMRT) or the synthetic generator both produce the
// *feed.Table it streams. It is the daemon's load generator.
type TableReplay struct {
	// PeerName labels the peer ("" = addr).
	PeerName string
	// Meta is the session identity; Meta.Addr must be set.
	Meta bgp.PeerMeta
	// Table is the feed to replay.
	Table *feed.Table
	// NextHop is the announced NEXT_HOP (default Meta.Addr).
	NextHop netip.Addr
	// Rate paces the replay in routes per second (0 = as fast as the
	// pipeline accepts). Pacing happens in 10 ms quanta against Clock.
	Rate int
	// Loop, when positive, replays the table that many extra times after
	// the initial announcement (identical re-announcements — update
	// churn the RIB recognizes by interned-attribute pointer compare).
	Loop int
	// FailAfter, when positive, ends the session with ErrSessionFailed
	// after that many routes have been emitted — the scripted peer
	// failure the daemon converges around.
	FailAfter int
	// Clock paces the replay (nil = system).
	Clock clock.Clock
}

// NewSynthetic builds a TableReplay over a generated table: n prefixes,
// deterministic per seed, announced by the given peer.
func NewSynthetic(name string, meta bgp.PeerMeta, n int, seed int64, rate int) *TableReplay {
	return &TableReplay{
		PeerName: name,
		Meta:     meta,
		Table:    feed.Generate(feed.Config{N: n, Seed: seed}),
		Rate:     rate,
	}
}

func (t *TableReplay) Peer() bgp.PeerMeta { return t.Meta }

func (t *TableReplay) Name() string {
	if t.PeerName != "" {
		return t.PeerName
	}
	return t.Meta.Addr.String()
}

// Run streams the table (and its Loop replays) through emit, paced at
// Rate. The context is polled between updates, so cancellation takes
// effect within one batch.
func (t *TableReplay) Run(ctx context.Context, emit func(*bgp.Update) error) error {
	clk := t.Clock
	if clk == nil {
		clk = clock.System
	}
	nh := t.NextHop
	if !nh.IsValid() {
		nh = t.Meta.Addr
	}
	pace := newPacer(clk, t.Rate)
	sent := 0
	pass := func() error {
		return t.Table.StreamUpdates(t.Meta.AS, nh, bgp.Codec{}, func(u *bgp.Update) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := pace.wait(ctx, len(u.NLRI)); err != nil {
				return err
			}
			if err := emit(u); err != nil {
				return err
			}
			sent += len(u.NLRI)
			if t.FailAfter > 0 && sent >= t.FailAfter {
				return ErrSessionFailed
			}
			return nil
		})
	}
	for i := 0; i <= t.Loop; i++ {
		if err := pass(); err != nil {
			return err
		}
	}
	return nil
}

// pacer meters emission at a routes-per-second budget in 10 ms quanta.
// A zero rate never waits.
type pacer struct {
	clk     clock.Clock
	quantum time.Duration
	budget  int // routes per quantum
	avail   int
	next    time.Time
}

func newPacer(clk clock.Clock, rate int) *pacer {
	p := &pacer{clk: clk, quantum: 10 * time.Millisecond}
	if rate > 0 {
		p.budget = rate / 100
		if p.budget == 0 {
			p.budget = 1
		}
		p.avail = p.budget
		p.next = clk.Now().Add(p.quantum)
	}
	return p
}

// wait debits n routes from the budget and sleeps off any debt: a
// batch larger than one quantum's budget (updates carry hundreds of
// prefixes) stalls for proportionally many quanta, so the long-run rate
// holds regardless of batch shape.
func (p *pacer) wait(ctx context.Context, n int) error {
	if p.budget == 0 {
		return nil
	}
	p.avail -= n
	for p.avail < 0 {
		d := p.next.Sub(p.clk.Now())
		if d > 0 {
			if err := clock.SleepCtx(ctx, p.clk, d); err != nil {
				return err
			}
		}
		p.avail += p.budget
		p.next = p.next.Add(p.quantum)
	}
	return nil
}
