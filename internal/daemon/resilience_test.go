package daemon

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/telemetry"
)

// fastPolicy keeps resilience tests quick: millisecond backoffs and
// cooldowns, generous budgets.
func fastPolicy() DeliveryPolicy {
	return DeliveryPolicy{
		PushTimeout:      500 * time.Millisecond,
		RetryBudget:      6,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		JitterFrac:       0.2,
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Millisecond,
		BufferBytes:      1 << 20,
		Seed:             1,
	}
}

// dropSeqs silently swallows chosen sequence numbers once — Apply
// reports success, nothing lands — while passing delivery state
// through (StatefulSink), like a transport that loses a write.
type dropSeqs struct {
	*FIBSink
	mu   sync.Mutex
	drop map[uint64]bool
}

func (d *dropSeqs) Apply(b Batch) error {
	d.mu.Lock()
	doomed := !b.Resync && d.drop[b.Seq]
	if doomed {
		delete(d.drop, b.Seq)
	}
	d.mu.Unlock()
	if doomed {
		return nil
	}
	return d.FIBSink.Apply(b)
}

func TestGapTriggersResync(t *testing.T) {
	fib := NewFIBSink("edge0")
	sink := &dropSeqs{FIBSink: fib, drop: map[uint64]bool{3: true}}
	reg := telemetry.NewRegistry()
	d := New(Config{
		Sources:   []PeerSource{NewSynthetic("", peerMeta(0), 2000, 1, 0)},
		Routers:   []RouterSink{sink},
		BatchSize: 64, BatchInterval: 2 * time.Millisecond,
		Telemetry: reg,
		Delivery:  fastPolicy(),
	})
	d.Start(context.Background())
	drain(t, d)

	st := fib.State()
	if st.Gaps != 1 || st.Healed != 1 || len(st.Missing) != 0 {
		t.Fatalf("gap accounting after drain: %+v", st)
	}
	if got, want := fib.Len(), d.RIB().Len(); got != want {
		t.Fatalf("FIB has %d entries, RIB %d", got, want)
	}
	if states := d.DeliveryStates(); states["edge0"] != "closed" {
		t.Fatalf("breaker state = %q, want closed", states["edge0"])
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, want := range []string{
		`supercharged_daemon_sink_gaps_total{router="edge0"} 1`,
		`supercharged_daemon_sink_gap_last_seq{router="edge0"} 3`,
		`supercharged_daemon_resyncs_total{router="edge0"} 1`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if !strings.Contains(exp, `supercharged_daemon_resync_routes_total{router="edge0"}`) {
		t.Errorf("metrics exposition missing resync route counter")
	}
}

// faultySink fails its first failN Apply calls outright, then works,
// recording everything that lands. It is deliberately NOT stateful, so
// recovery must come from the worker's buffered replay.
type faultySink struct {
	mu    sync.Mutex
	failN int
	calls int
	fib   map[netip.Prefix]netip.Addr
}

func (s *faultySink) Name() string { return "flaky" }

func (s *faultySink) Apply(b Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.calls <= s.failN {
		return ErrSessionFailed // any non-gap error
	}
	if s.fib == nil {
		s.fib = make(map[netip.Prefix]netip.Addr)
	}
	for _, ch := range b.Changes {
		if ch.NextHop.IsValid() {
			s.fib[ch.Prefix] = ch.NextHop
		} else {
			delete(s.fib, ch.Prefix)
		}
	}
	return nil
}

func (s *faultySink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fib)
}

func TestBreakerTripsBuffersAndReplays(t *testing.T) {
	// 12 consecutive failures: enough to burn the first batch's retry
	// budget, trip the breaker (threshold 3), and fail at least one
	// half-open replay before recovering.
	sink := &faultySink{failN: 12}
	reg := telemetry.NewRegistry()
	d := New(Config{
		Sources:   []PeerSource{NewSynthetic("", peerMeta(0), 1500, 1, 0)},
		Routers:   []RouterSink{sink},
		BatchSize: 64, BatchInterval: 2 * time.Millisecond,
		Telemetry: reg,
		Delivery:  fastPolicy(),
	})
	d.Start(context.Background())
	drain(t, d)

	if got, want := sink.len(), d.RIB().Len(); got != want {
		t.Fatalf("sink holds %d entries after recovery, RIB %d — buffered replay lost updates", got, want)
	}
	if states := d.DeliveryStates(); states["flaky"] != "closed" {
		t.Fatalf("breaker state = %q, want closed", states["flaky"])
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, want := range []string{
		`supercharged_daemon_breaker_trips_total{router="flaky"}`,
		`supercharged_daemon_push_retries_total{router="flaky"}`,
		`supercharged_daemon_breaker_state{router="flaky"} 0`,
		`supercharged_daemon_buffered_bytes{router="flaky"} 0`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// stallOnce blocks one Apply long enough to blow the push timeout; the
// late apply still lands afterwards, exercising the stale-skip path.
type stallOnce struct {
	*FIBSink
	mu      sync.Mutex
	stall   time.Duration
	stalled bool
}

func (s *stallOnce) Apply(b Batch) error {
	s.mu.Lock()
	first := !s.stalled && !b.Resync
	s.stalled = s.stalled || first
	s.mu.Unlock()
	if first {
		time.Sleep(s.stall)
	}
	return s.FIBSink.Apply(b)
}

func TestPushTimeoutRecoversWithoutDoubleApply(t *testing.T) {
	pol := fastPolicy()
	pol.PushTimeout = 20 * time.Millisecond
	fib := NewFIBSink("edge0")
	sink := &stallOnce{FIBSink: fib, stall: 120 * time.Millisecond}
	reg := telemetry.NewRegistry()
	d := New(Config{
		Sources:   []PeerSource{NewSynthetic("", peerMeta(0), 1000, 1, 0)},
		Routers:   []RouterSink{sink},
		BatchSize: 64, BatchInterval: 2 * time.Millisecond,
		Telemetry: reg,
		Delivery:  pol,
	})
	d.Start(context.Background())
	drain(t, d)

	if got, want := fib.Len(), d.RIB().Len(); got != want {
		t.Fatalf("FIB has %d entries, RIB %d", got, want)
	}
	if got := fib.State(); len(got.Missing) != 0 {
		t.Fatalf("unhealed ranges after timeout recovery: %v", got.Missing)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `supercharged_daemon_push_timeouts_total{router="edge0"} 1`) {
		t.Errorf("metrics exposition missing the push timeout counter:\n%s", b.String())
	}
}

// corruptThenClean fails its first session with a corrupt update (an
// invalid NLRI prefix) and replays cleanly on reconnect.
type corruptThenClean struct {
	*TableReplay
	mu       sync.Mutex
	sessions int
}

func (c *corruptThenClean) Run(ctx context.Context, emit func(*bgp.Update) error) error {
	c.mu.Lock()
	s := c.sessions
	c.sessions++
	c.mu.Unlock()
	if s == 0 {
		return emit(&bgp.Update{Attrs: &bgp.Attrs{}, NLRI: []netip.Prefix{{}}})
	}
	return c.TableReplay.Run(ctx, emit)
}

func TestCorruptUpdateFailsSessionAndReconnects(t *testing.T) {
	src := &corruptThenClean{TableReplay: NewSynthetic("feed", peerMeta(0), 700, 1, 0)}
	sink := NewFIBSink("edge0")
	reg := telemetry.NewRegistry()
	d := New(Config{
		Sources:   []PeerSource{src},
		Routers:   []RouterSink{sink},
		Telemetry: reg,
		Reconnect: ReconnectPolicy{
			MaxAttempts: 3,
			Backoff:     time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
			Seed:        1,
		},
	})
	d.Start(context.Background())
	drain(t, d)

	if got := d.RIB().Len(); got != 700 {
		t.Fatalf("RIB has %d prefixes after reconnect, want 700", got)
	}
	if got := sink.Len(); got != 700 {
		t.Fatalf("sink has %d entries after reconnect, want 700", got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, want := range []string{
		`supercharged_daemon_corrupt_updates_total{peer="feed"} 1`,
		`supercharged_daemon_reconnects_total{peer="feed"} 1`,
		`supercharged_daemon_failovers_total 1`,
		`supercharged_daemon_session_up{peer="feed"} 1`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestCoalescePreservesSemantics(t *testing.T) {
	pol := fastPolicy()
	pol.BufferBytes = 4 * routeChangeBytes // force shedding almost immediately
	d := New(Config{Delivery: pol})
	w := newSinkWorker(d, nil, NewFIBSink("buf"))

	batches := []Batch{
		{Seq: 1, Changes: []RouteChange{rc("1.0.0.0/24", "10.0.0.1"), rc("2.0.0.0/24", "10.0.0.1")}},
		{Seq: 2, Changes: []RouteChange{rc("1.0.0.0/24", "10.0.0.2"), rc("3.0.0.0/24", "10.0.0.3")}},
		{Seq: 3, Changes: []RouteChange{rc("2.0.0.0/24", ""), rc("4.0.0.0/24", "10.0.0.4")}},
		{Seq: 4, Changes: []RouteChange{rc("1.0.0.0/24", "10.0.0.5")}},
	}
	want := NewFIBSink("want")
	for _, b := range batches {
		if err := want.Apply(b); err != nil {
			t.Fatal(err)
		}
		w.buffer(b)
	}
	if len(w.buf) >= len(batches) {
		t.Fatalf("no coalescing happened: %d batches buffered", len(w.buf))
	}
	got := NewFIBSink("got")
	seq := uint64(0)
	for _, b := range w.buf {
		if b.Seq <= seq {
			t.Fatalf("coalesced buffer out of order: seq %d after %d", b.Seq, seq)
		}
		seq = b.Seq
		// Coalescing removes sequence numbers by design; only the gap
		// report is expected, the content must still land.
		var gap *GapError
		if err := got.Apply(b); err != nil && !errors.As(err, &gap) {
			t.Fatal(err)
		}
	}
	if gotH, wantH := got.Hash(), want.Hash(); gotH != wantH {
		t.Fatalf("coalesced replay diverged: %v, want %v", got.Entries(), want.Entries())
	}
}
