package daemon

import (
	"hash/maphash"
	"net/netip"
	"sync"

	"supercharged/internal/bgp"
)

// RouteChange is one prefix's post-decision outcome, the unit the
// batching pipeline ships downstream: the prefix now resolves via
// NextHop through Peer, or became unreachable (zero NextHop). It is the
// daemon's flattened view of bgp.Change — downstream routers program
// best paths, they do not care about the full ranked list.
type RouteChange struct {
	Prefix  netip.Prefix
	Peer    netip.Addr // advertising peer of the new best path
	NextHop netip.Addr // zero = withdraw (prefix unreachable)
}

// ShardedRIB partitions the controller's merged Adj-RIB-In across
// independently locked bgp.RIB shards, keyed by prefix hash. Concurrent
// per-peer ingestion goroutines touching disjoint prefixes proceed in
// parallel instead of serializing on one table lock; a prefix always
// hashes to the same shard, so per-prefix ordering guarantees are
// exactly those of a single RIB. Every shard keeps the PR-5 per-peer
// index, which is what makes RemovePeer — the failover hot path —
// proportional to the dead peer's own prefixes in every shard.
type ShardedRIB struct {
	seed   maphash.Seed
	shards []ribShard
}

// ribShard is one lock domain. The bgp.RIB has its own internal lock;
// the shard's mutex extends the critical section over the emit
// callback, so a consumer observes every shard's changes in mutation
// order (the property the daemon's downstream pipeline depends on).
// scratch/flat are shard-owned buffers reused across updates.
type ribShard struct {
	mu      sync.Mutex
	rib     *bgp.RIB
	scratch []bgp.Change
	flat    []RouteChange
}

// NewShardedRIB builds a table split across shards lock domains
// (minimum 1), pre-sized for about sizeHint prefixes overall.
func NewShardedRIB(shards, sizeHint int) *ShardedRIB {
	if shards < 1 {
		shards = 1
	}
	s := &ShardedRIB{
		seed:   maphash.MakeSeed(),
		shards: make([]ribShard, shards),
	}
	per := sizeHint / shards
	for i := range s.shards {
		if per > 0 {
			s.shards[i].rib = bgp.NewRIBSized(per)
		} else {
			s.shards[i].rib = bgp.NewRIB()
		}
	}
	return s
}

// shardOf hashes a prefix to its home shard.
func (s *ShardedRIB) shardOf(p netip.Prefix) int {
	if len(s.shards) == 1 {
		return 0
	}
	var h maphash.Hash
	h.SetSeed(s.seed)
	a := p.Addr().As4()
	h.Write(a[:])
	h.WriteByte(byte(p.Bits()))
	return int(h.Sum64() % uint64(len(s.shards)))
}

// UpdateEmit applies one UPDATE from a peer, splitting its prefixes
// across their home shards, and hands each shard's flattened best-path
// changes to emit *while still holding that shard's lock*: for any
// prefix, successive emit calls observe changes in RIB-mutation order,
// which is what lets a consumer replicate the table downstream without
// read-back. emit must not re-enter the ShardedRIB and must copy what
// it keeps (the slice is shard-owned scratch). Safe for concurrent use
// by any number of per-peer writers.
func (s *ShardedRIB) UpdateEmit(peer bgp.PeerMeta, u *bgp.Update, emit func([]RouteChange)) {
	if len(s.shards) == 1 {
		s.applyShard(0, peer, u, emit)
		return
	}
	// Split the update's prefixes by home shard, then apply one
	// sub-update per touched shard. Updates batch ~dozens of prefixes
	// sharing one attribute set, so the split cost is noise next to the
	// decision-process work it unlocks concurrency for.
	var sub bgp.Update
	sub.Attrs = u.Attrs
	for i := range s.shards {
		sub.NLRI = sub.NLRI[:0]
		sub.Withdrawn = sub.Withdrawn[:0]
		for _, p := range u.NLRI {
			if s.shardOf(p) == i {
				sub.NLRI = append(sub.NLRI, p)
			}
		}
		for _, p := range u.Withdrawn {
			if s.shardOf(p) == i {
				sub.Withdrawn = append(sub.Withdrawn, p)
			}
		}
		if len(sub.NLRI) == 0 && len(sub.Withdrawn) == 0 {
			continue
		}
		s.applyShard(i, peer, &sub, emit)
	}
}

// Update is UpdateEmit accumulating into out (returned like append),
// for callers that want the changes as a value rather than a stream.
func (s *ShardedRIB) Update(peer bgp.PeerMeta, u *bgp.Update, out []RouteChange) []RouteChange {
	s.UpdateEmit(peer, u, func(ch []RouteChange) { out = append(out, ch...) })
	return out
}

// applyShard applies u to one shard and emits the flattened changes
// under the shard lock.
func (s *ShardedRIB) applyShard(i int, peer bgp.PeerMeta, u *bgp.Update, emit func([]RouteChange)) {
	sh := &s.shards[i]
	sh.mu.Lock()
	sh.scratch = sh.rib.UpdateInto(peer, u, sh.scratch[:0])
	sh.flat = flatten(sh.scratch, sh.flat[:0])
	if len(sh.flat) > 0 && emit != nil {
		emit(sh.flat)
	}
	sh.mu.Unlock()
}

// RemovePeerEmit drops every path learned from the peer — shards in
// parallel, since session failure is the latency-critical event — and
// emits each shard's flattened changes under that shard's lock (emit
// must therefore be safe for concurrent calls). Returns the total
// number of changes.
func (s *ShardedRIB) RemovePeerEmit(peerAddr netip.Addr, emit func([]RouteChange)) int {
	if len(s.shards) == 1 {
		return s.removeShard(0, peerAddr, emit)
	}
	counts := make([]int, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counts[i] = s.removeShard(i, peerAddr, emit)
		}(i)
	}
	wg.Wait()
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// RemovePeer is RemovePeerEmit materializing the changes.
func (s *ShardedRIB) RemovePeer(peerAddr netip.Addr) []RouteChange {
	var mu sync.Mutex
	var out []RouteChange
	s.RemovePeerEmit(peerAddr, func(ch []RouteChange) {
		mu.Lock()
		out = append(out, ch...)
		mu.Unlock()
	})
	return out
}

func (s *ShardedRIB) removeShard(i int, peerAddr netip.Addr, emit func([]RouteChange)) int {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.scratch = sh.rib.RemovePeerInto(peerAddr, sh.scratch[:0])
	sh.flat = flatten(sh.scratch, sh.flat[:0])
	if len(sh.flat) > 0 && emit != nil {
		emit(sh.flat)
	}
	return len(sh.flat)
}

// flatten converts ranked-list changes to best-path RouteChanges.
func flatten(changes []bgp.Change, out []RouteChange) []RouteChange {
	for _, ch := range changes {
		rc := RouteChange{Prefix: ch.Prefix}
		if len(ch.New) > 0 {
			rc.Peer = ch.New[0].Peer
			rc.NextHop = ch.New[0].NextHop()
		}
		out = append(out, rc)
	}
	return out
}

// Snapshot appends every prefix's current best path to out as a
// RouteChange and returns the extended slice — the payload of a resync
// batch. It reads through each shard's bgp.RIB under the RIB's own
// internal lock and deliberately does NOT take the shard mutexes: a
// snapshot is requested by a sink worker whose queue may be full, while
// an ingest goroutine holds a shard mutex blocked on enqueueing into
// that very queue — taking shard.mu here would deadlock the pair. The
// cost of the narrower lock is only that a snapshot is not a single
// cross-shard atomic cut; the resync protocol already tolerates that
// (the stamped Seq bounds which batches the snapshot subsumes, and
// later batches reapply idempotently, last-writer-wins).
func (s *ShardedRIB) Snapshot(out []RouteChange) []RouteChange {
	for i := range s.shards {
		s.shards[i].rib.Walk(func(p netip.Prefix, paths []*bgp.Path) bool {
			if len(paths) > 0 {
				out = append(out, RouteChange{
					Prefix:  p,
					Peer:    paths[0].Peer,
					NextHop: paths[0].NextHop(),
				})
			}
			return true
		})
	}
	return out
}

// Len sums the prefix counts of all shards.
func (s *ShardedRIB) Len() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].rib.Len()
	}
	return n
}

// PeerLen sums the peer's path counts across shards.
func (s *ShardedRIB) PeerLen(peerAddr netip.Addr) int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].rib.PeerLen(peerAddr)
	}
	return n
}

// Best returns the current best path for a prefix (nil if unknown).
func (s *ShardedRIB) Best(p netip.Prefix) *bgp.Path {
	return s.shards[s.shardOf(p)].rib.Best(p)
}
