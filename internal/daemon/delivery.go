package daemon

import (
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"
)

// Sentinel outcomes of applyOnce that are not sink errors.
var (
	// errPushTimeout: the Apply outlived DeliveryPolicy.PushTimeout. The
	// call itself keeps running in the background; the worker waits it
	// out before the next Apply so the sink never sees two at once.
	errPushTimeout = errors.New("daemon: push timeout")
	// errHardStop: the daemon hard-stopped mid-attempt; abandon delivery.
	errHardStop = errors.New("daemon: hard stop")
)

// Breaker states, in the order the gauge reports them.
const (
	stateClosed   int32 = iota // healthy: apply with retries
	stateOpen                  // tripped: buffer and wait out the cooldown
	stateHalfOpen              // probing: one recovery attempt in flight
)

// sinkWorker is one router's resilient delivery goroutine — the
// policy-enabled replacement for Daemon.deliver. All fields are owned
// by the worker goroutine except state, which DeliveryStates reads.
//
// State machine: closed applies each batch with a push timeout and a
// jittered-backoff retry budget; a sequence gap (the sink applied the
// batch but reports predecessors lost) triggers an immediate resync.
// Enough consecutive failures — or an exhausted per-batch budget —
// trip the breaker open: the batch and everything after it is buffered
// (coalescing the oldest batches past the byte cap, which is loss-free
// because batches are last-writer-wins), so a broken router degrades
// alone instead of backpressuring the whole pipeline. After the
// cooldown the worker goes half-open and probes: stateful sinks get a
// snapshot resync verified by State() read-back (a transport that
// swallows writes can fake Apply success, not read-back), other sinks
// get their buffer replayed. Success re-closes the breaker; failure
// re-opens it for another cooldown.
type sinkWorker struct {
	d    *Daemon
	q    chan Batch
	sink RouterSink
	pol  DeliveryPolicy

	state     atomic.Int32
	fails     int // consecutive failed attempts (breaker input)
	trippedAt time.Time
	buf       []Batch
	bufBytes  int
	stalled   chan error // Apply that outlived its timeout, still running
}

func newSinkWorker(d *Daemon, q chan Batch, sink RouterSink) *sinkWorker {
	w := &sinkWorker{d: d, q: q, sink: sink, pol: d.cfg.Delivery}
	d.metrics.preRegisterRouter(sink)
	return w
}

func (w *sinkWorker) is(s int32) bool { return w.state.Load() == s }

func (w *sinkWorker) stateName() string {
	switch w.state.Load() {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// run consumes the router's queue until it closes, then heals whatever
// the faults left behind (finish). Batches arriving while the breaker
// is open are buffered; a cooldown expiry wakes the probe.
func (w *sinkWorker) run() {
	defer w.d.sinkWG.Done()
	for {
		var wake <-chan time.Time
		if w.is(stateOpen) {
			rem := w.pol.BreakerCooldown - w.d.clk.Now().Sub(w.trippedAt)
			if rem < 0 {
				rem = 0
			}
			wake = w.d.clk.After(rem)
		}
		select {
		case b, ok := <-w.q:
			if !ok {
				w.finish()
				return
			}
			if w.is(stateOpen) {
				w.buffer(b)
			} else {
				w.deliverClosed(b)
			}
		case <-wake:
			w.probe()
		case <-w.d.hardStop:
			return
		}
	}
}

// deliverClosed pushes one batch through the closed-state retry loop.
func (w *sinkWorker) deliverClosed(b Batch) {
	name := w.sink.Name()
	for attempt := 0; ; attempt++ {
		err := w.applyOnce(b)
		var gap *GapError
		if err == nil || errors.As(err, &gap) {
			w.fails = 0
			w.d.metrics.delivered(w.sink, len(b.Changes), w.d.clk.Now().Sub(b.At))
			if gap != nil {
				// The batch landed; its predecessors did not. Heal with a
				// snapshot rather than stalling the stream.
				w.d.metrics.gap(w.sink, gap.From, gap.To)
				w.d.span("gap-detected", name)
				w.d.cfg.Logf("daemon: router %s: sequence gap %s, resyncing", name, SeqRange{gap.From, gap.To})
				if !w.resyncVerify() {
					w.trip(nil)
				}
			}
			return
		}
		if errors.Is(err, errHardStop) {
			return
		}
		w.fails++
		w.d.cfg.Logf("daemon: router %s: apply seq %d failed (attempt %d): %v", name, b.Seq, attempt+1, err)
		if w.fails >= w.pol.BreakerThreshold || attempt >= w.pol.RetryBudget {
			w.trip(&b)
			return
		}
		w.d.metrics.retry(w.sink)
		if !w.sleep(w.pol.delay(name, attempt)) {
			return
		}
	}
}

// applyOnce runs a single Apply attempt under the push timeout,
// guaranteeing the sink never sees two concurrent Applies: a previous
// attempt that timed out keeps running in its goroutine, and the next
// attempt first waits for it to return (its late result is discarded —
// if it did land, the sink's stale-skip absorbs the duplicate).
func (w *sinkWorker) applyOnce(b Batch) error {
	if w.stalled != nil {
		select {
		case <-w.stalled:
			w.stalled = nil
		case <-w.d.hardStop:
			return errHardStop
		}
	}
	if w.pol.PushTimeout <= 0 {
		return w.sink.Apply(b)
	}
	done := make(chan error, 1)
	go func() { done <- w.sink.Apply(b) }()
	tm := w.d.clk.After(w.pol.PushTimeout)
	select {
	case err := <-done:
		return err
	case <-tm:
		w.stalled = done
		w.d.metrics.pushTimeout(w.sink)
		return errPushTimeout
	case <-w.d.hardStop:
		w.stalled = done
		return errHardStop
	}
}

// resyncVerify ships a fresh full-state snapshot with retries and, for
// stateful sinks, verifies by read-back that it actually landed: no
// missing ranges left and the sink's high-water mark at or past the
// snapshot's stamp. Reports whether the sink is verifiably current.
func (w *sinkWorker) resyncVerify() bool {
	name := w.sink.Name()
	for attempt := 0; ; attempt++ {
		b := w.d.resyncBatch()
		err := w.applyOnce(b)
		ok := err == nil
		if ok {
			if ss, stateful := w.sink.(StatefulSink); stateful {
				st := ss.State()
				ok = len(st.Missing) == 0 && st.LastSeq >= b.Seq
			}
		}
		if ok {
			w.fails = 0
			w.d.metrics.resync(w.sink, len(b.Changes))
			w.d.span("resync", name)
			w.d.cfg.Logf("daemon: router %s: resynced %d routes at seq %d", name, len(b.Changes), b.Seq)
			return true
		}
		if errors.Is(err, errHardStop) || attempt >= w.pol.RetryBudget {
			return false
		}
		w.d.metrics.retry(w.sink)
		if !w.sleep(w.pol.delay(name, attempt)) {
			return false
		}
	}
}

// probe is the half-open transition: one recovery attempt. Stateful
// sinks are healed by snapshot resync (their buffer is then subsumed by
// the snapshot and dropped); others by replaying the buffer in order.
func (w *sinkWorker) probe() {
	name := w.sink.Name()
	w.state.Store(stateHalfOpen)
	w.d.metrics.breakerState(w.sink, stateHalfOpen)
	w.d.span("breaker-half-open", name)
	var ok bool
	if _, stateful := w.sink.(StatefulSink); stateful {
		ok = w.resyncVerify()
		if ok && len(w.buf) > 0 {
			// Every buffered batch was flushed before the snapshot was
			// taken, so the snapshot already carries its effect.
			w.buf = nil
			w.bufBytes = 0
			w.d.metrics.bufferedBytes(w.sink, 0)
		}
	} else {
		ok = w.replayBuffer()
	}
	if ok {
		w.state.Store(stateClosed)
		w.fails = 0
		w.d.metrics.breakerState(w.sink, stateClosed)
		w.d.span("breaker-close", name)
		w.d.cfg.Logf("daemon: router %s: breaker re-closed", name)
	} else {
		w.trip(nil)
	}
}

// replayBuffer drains the degraded-state buffer through the sink in
// order. Any failure aborts (the breaker re-opens; what replayed stays
// replayed, the rest stays buffered).
func (w *sinkWorker) replayBuffer() bool {
	for len(w.buf) > 0 {
		b := w.buf[0]
		err := w.applyOnce(b)
		var gap *GapError
		if err != nil && !errors.As(err, &gap) {
			return false
		}
		w.buf = w.buf[1:]
		w.bufBytes -= batchBytes(b)
		w.d.metrics.bufferedBytes(w.sink, w.bufBytes)
		w.d.metrics.delivered(w.sink, len(b.Changes), w.d.clk.Now().Sub(b.At))
	}
	if w.buf != nil {
		w.buf = nil
		w.bufBytes = 0
	}
	return true
}

// trip opens the breaker (buffering the undeliverable batch first, so
// nothing is lost) and starts the cooldown.
func (w *sinkWorker) trip(b *Batch) {
	if b != nil {
		w.buffer(*b)
	}
	w.state.Store(stateOpen)
	w.fails = 0
	w.trippedAt = w.d.clk.Now()
	w.d.metrics.breakerTrip(w.sink)
	w.d.metrics.breakerState(w.sink, stateOpen)
	w.d.span("breaker-open", w.sink.Name())
	w.d.cfg.Logf("daemon: router %s: breaker open (%d batches / %d bytes buffered)",
		w.sink.Name(), len(w.buf), w.bufBytes)
}

// buffer holds a batch for post-recovery replay, shedding by coalescing
// the oldest pair whenever the byte cap is exceeded. Coalescing merges
// and deduplicates by prefix keeping the last occurrence — exactly the
// contract a batch already has (last writer wins), so shedding changes
// footprint, never semantics.
func (w *sinkWorker) buffer(b Batch) {
	w.buf = append(w.buf, b)
	w.bufBytes += batchBytes(b)
	for w.bufBytes > w.pol.BufferBytes && len(w.buf) > 1 {
		a, c := w.buf[0], w.buf[1]
		merged := coalesce(a, c)
		w.bufBytes += batchBytes(merged) - batchBytes(a) - batchBytes(c)
		w.buf[1] = merged
		w.buf = w.buf[1:]
		w.d.metrics.shed(w.sink)
	}
	w.d.metrics.bufferedBytes(w.sink, w.bufBytes)
}

// coalesce merges two adjacent batches into one carrying the later
// sequence number, deduplicated by prefix (last occurrence wins,
// surviving entries keep their relative order).
func coalesce(a, b Batch) Batch {
	changes := make([]RouteChange, 0, len(a.Changes)+len(b.Changes))
	changes = append(changes, a.Changes...)
	changes = append(changes, b.Changes...)
	last := make(map[netip.Prefix]int, len(changes))
	for i, ch := range changes {
		last[ch.Prefix] = i
	}
	out := changes[:0]
	for i, ch := range changes {
		if last[ch.Prefix] == i {
			out = append(out, ch)
		}
	}
	return Batch{Seq: b.Seq, At: b.At, Changes: out}
}

// routeChangeBytes approximates one RouteChange's footprint (prefix +
// two addrs); batchBytes adds per-batch overhead. The buffer cap is a
// memory bound, not an accounting exercise — close is good enough.
const routeChangeBytes = 80

func batchBytes(b Batch) int { return 96 + len(b.Changes)*routeChangeBytes }

// finish is the drain-time healer, run when the queue closes. It first
// re-closes an open breaker (cooldown, probe, repeat — bounded by the
// attempt cap, the chaos layer's per-entity fault budget, and
// hardStop), then verifies stateful sinks actually reached the final
// sequence with nothing missing: an injected drop can swallow the tail
// batch with no successor left to expose the gap, and only read-back
// catches that.
func (w *sinkWorker) finish() {
	const maxHeals = 256
	name := w.sink.Name()
	for i := 0; !w.is(stateClosed); i++ {
		if i >= maxHeals {
			w.d.recordErr(fmt.Errorf("daemon: router %s: breaker failed to re-close after %d recovery attempts (%d batches buffered)",
				name, maxHeals, len(w.buf)))
			return
		}
		rem := w.pol.BreakerCooldown - w.d.clk.Now().Sub(w.trippedAt)
		if !w.sleep(rem) {
			return
		}
		w.probe()
	}
	ss, stateful := w.sink.(StatefulSink)
	if !stateful {
		return
	}
	final := w.d.finalSeq()
	for i := 0; ; i++ {
		st := ss.State()
		if len(st.Missing) == 0 && st.LastSeq >= final {
			return
		}
		if i >= maxHeals {
			w.d.recordErr(fmt.Errorf("daemon: router %s: unhealed at drain: last seq %d of %d, missing %v",
				name, st.LastSeq, final, st.Missing))
			return
		}
		if !w.resyncVerify() {
			if !w.sleep(w.pol.BreakerCooldown) {
				return
			}
		}
	}
}

// sleep waits d on the daemon clock, abandoned by hardStop.
func (w *sinkWorker) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	select {
	case <-w.d.clk.After(d):
		return true
	case <-w.d.hardStop:
		return false
	}
}
