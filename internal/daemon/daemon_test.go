package daemon

import (
	"context"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/feed"
	"supercharged/internal/telemetry"
	"supercharged/internal/testutil"
)

// peerMeta builds a distinct session identity per index.
func peerMeta(i int) bgp.PeerMeta {
	return bgp.PeerMeta{
		Addr: netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}),
		AS:   uint32(65001 + i),
		ID:   netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}),
	}
}

// drain waits for every finite feed to complete, then drains. The
// budget scales with the race detector and clamps under `go test
// -timeout`, so a loaded -race runner fails the test with diagnostics
// instead of the runtime killing the whole binary.
func drain(t *testing.T, d *Daemon) {
	t.Helper()
	ctx, cancel := testutil.Context(t, 30*time.Second)
	defer cancel()
	if err := d.Wait(ctx); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestConcurrentIngestionSharded(t *testing.T) {
	const peers, prefixes = 6, 2000
	var sources []PeerSource
	for i := 0; i < peers; i++ {
		sources = append(sources, NewSynthetic("", peerMeta(i), prefixes, 1, 0))
	}
	sink := NewFIBSink("edge0")
	d := New(Config{Sources: sources, Routers: []RouterSink{sink}, Shards: 4})
	d.Start(context.Background())
	drain(t, d)

	// Every peer announced the same seed-1 table: same prefix set, one
	// best path each — the RIB must hold exactly `prefixes` prefixes
	// with all peers' paths behind them.
	if got := d.RIB().Len(); got != prefixes {
		t.Fatalf("RIB has %d prefixes, want %d", got, prefixes)
	}
	for i := 0; i < peers; i++ {
		if got := d.RIB().PeerLen(peerMeta(i).Addr); got != prefixes {
			t.Fatalf("peer %d holds %d paths, want %d", i, got, prefixes)
		}
	}
	// The sink converges to the RIB's best next-hops, gap-free.
	if sink.Gaps() != 0 {
		t.Fatalf("sink observed %d sequence gaps", sink.Gaps())
	}
	if got := sink.Len(); got != prefixes {
		t.Fatalf("sink programmed %d entries, want %d", got, prefixes)
	}
	table := feed.Generate(feed.Config{N: prefixes, Seed: 1})
	for _, p := range table.Prefixes()[:50] {
		best := d.RIB().Best(p)
		if best == nil {
			t.Fatalf("no best path for %s", p)
		}
		nh, ok := sink.NextHop(p)
		if !ok || nh != best.NextHop() {
			t.Fatalf("sink next-hop for %s = %v (ok=%v), RIB best %v", p, nh, ok, best.NextHop())
		}
	}
}

func TestBackpressureDeliversEverything(t *testing.T) {
	var sources []PeerSource
	for i := 0; i < 3; i++ {
		sources = append(sources, NewSynthetic("", peerMeta(i), 800, int64(i+1), 0))
	}
	slow := NewFIBSink("slow")
	slow.Delay = 2 * time.Millisecond
	fast := NewFIBSink("fast")
	d := New(Config{
		Sources: sources, Routers: []RouterSink{slow, fast},
		QueueDepth: 1, BatchSize: 64, BatchInterval: 5 * time.Millisecond,
	})
	d.Start(context.Background())
	drain(t, d)

	if slow.Gaps() != 0 || fast.Gaps() != 0 {
		t.Fatalf("sequence gaps: slow %d, fast %d", slow.Gaps(), fast.Gaps())
	}
	if slow.Batches() != fast.Batches() {
		t.Fatalf("slow applied %d batches, fast %d — bounded queues must not drop", slow.Batches(), fast.Batches())
	}
	if slow.Len() != fast.Len() {
		t.Fatalf("slow FIB %d entries, fast %d", slow.Len(), fast.Len())
	}
}

func TestDrainIsIdempotentAndConcurrent(t *testing.T) {
	d := New(Config{Sources: []PeerSource{NewSynthetic("", peerMeta(0), 500, 1, 0)}})
	d.Start(context.Background())
	if err := d.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := testutil.Context(t, 30*time.Second)
			defer cancel()
			if err := d.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
		}()
	}
	wg.Wait()
	d.Stop() // Stop after Drain is a no-op, not a panic
	if got := d.RIB().Len(); got != 500 {
		t.Fatalf("RIB has %d prefixes, want 500", got)
	}
}

func TestStopWithoutStart(t *testing.T) {
	d := New(Config{})
	d.Stop()
	if err := d.Drain(context.Background()); err != nil {
		t.Fatalf("drain on never-started daemon: %v", err)
	}
}

func TestPeerFailureWithdrawsRoutes(t *testing.T) {
	// Two peers over the same table; the primary (higher weight) fails
	// mid-stream. After drain the sink must resolve everything through
	// the survivor.
	primary := peerMeta(0)
	primary.Weight = 100
	backup := peerMeta(1)
	fail := NewSynthetic("primary", primary, 600, 1, 0)
	fail.FailAfter = 600 // complete the feed, then die
	survivor := NewSynthetic("backup", backup, 600, 1, 0)

	sink := NewFIBSink("edge0")
	reg := telemetry.NewRegistry()
	d := New(Config{
		Sources: []PeerSource{fail, survivor}, Routers: []RouterSink{sink},
		Telemetry: reg,
	})
	d.Start(context.Background())
	drain(t, d)

	if got := d.RIB().PeerLen(primary.Addr); got != 0 {
		t.Fatalf("failed peer still holds %d paths", got)
	}
	if got := d.RIB().Len(); got != 600 {
		t.Fatalf("RIB has %d prefixes after failover, want 600", got)
	}
	if got := sink.Len(); got != 600 {
		t.Fatalf("sink has %d entries after failover, want 600", got)
	}
	table := feed.Generate(feed.Config{N: 600, Seed: 1})
	backupNH := backup.Addr
	for _, p := range table.Prefixes()[:50] {
		if nh, ok := sink.NextHop(p); !ok || nh != backupNH {
			t.Fatalf("prefix %s resolves via %v (ok=%v), want survivor %v", p, nh, ok, backupNH)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, want := range []string{
		`supercharged_daemon_session_up{peer="primary"} 0`,
		`supercharged_daemon_session_up{peer="backup"} 1`,
		`supercharged_daemon_failovers_total 1`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if !strings.Contains(exp, `supercharged_daemon_updates_total{peer="primary"}`) {
		t.Errorf("metrics exposition missing per-peer update counter")
	}
}

func TestRatePacingSlowsReplay(t *testing.T) {
	// 200 routes at 1000 routes/s should take about 200 ms; unpaced the
	// same replay is near-instant. Generous bounds keep CI stable.
	src := NewSynthetic("paced", peerMeta(0), 200, 1, 1000)
	d := New(Config{Sources: []PeerSource{src}})
	t0 := time.Now()
	d.Start(context.Background())
	drain(t, d)
	if el := time.Since(t0); el < 100*time.Millisecond {
		t.Fatalf("paced replay finished in %v, want >= ~200ms", el)
	}
}

func TestHardStopInterruptsBlockedPipeline(t *testing.T) {
	// A sink that never returns would block the flusher forever; Stop
	// must still complete.
	stuck := make(chan struct{})
	sink := applyFunc(func(Batch) error { <-stuck; return nil })
	d := New(Config{
		Sources:   []PeerSource{NewSynthetic("", peerMeta(0), 2000, 1, 0)},
		Routers:   []RouterSink{sink},
		BatchSize: 16, QueueDepth: 1,
	})
	d.Start(context.Background())
	time.Sleep(20 * time.Millisecond) // let the pipeline jam
	done := make(chan struct{})
	go func() { d.Stop(); close(done) }()
	// Stop cancels sources and aborts the blocked flush; unblock the
	// sink's in-flight Apply so its goroutine can exit.
	time.Sleep(20 * time.Millisecond)
	close(stuck)
	select {
	case <-done:
	case <-time.After(testutil.Budget(t, 10*time.Second)):
		t.Fatal("Stop never returned on a jammed pipeline")
	}
}

// applyFunc adapts a function to RouterSink.
type applyFunc func(Batch) error

func (f applyFunc) Name() string        { return "func" }
func (f applyFunc) Apply(b Batch) error { return f(b) }

func TestMRTTableReplay(t *testing.T) {
	// Round-trip through the MRT bridge: generate → WriteMRT → FromMRT →
	// replay into the daemon, proving the feed backends are
	// interchangeable load generators.
	table := feed.Generate(feed.Config{N: 300, Seed: 7})
	var buf strings.Builder
	meta := peerMeta(0)
	if err := table.WriteMRT(&buf, []feed.MRTPeer{{Addr: meta.Addr, AS: meta.AS}}); err != nil {
		t.Fatal(err)
	}
	dump, err := feed.FromMRT(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	src := &TableReplay{PeerName: "ris", Meta: meta, Table: dump.Table}
	d := New(Config{Sources: []PeerSource{src}})
	d.Start(context.Background())
	drain(t, d)
	if got := d.RIB().Len(); got != 300 {
		t.Fatalf("RIB has %d prefixes from MRT replay, want 300", got)
	}
}
