package daemon

import (
	"hash/fnv"
	"time"
)

// DeliveryPolicy makes the per-router delivery path resilient: bounded
// push timeouts, retries with jittered exponential backoff, a per-sink
// circuit breaker that trips the router into degraded buffering, and
// gap-driven resyncs. The zero value disables all of it — delivery is
// then the plain apply loop, byte-identical to the pre-policy daemon.
type DeliveryPolicy struct {
	// PushTimeout bounds a single Apply call; past it the attempt counts
	// as failed and the in-flight call is left to finish in the
	// background (the worker waits it out before the next Apply, so the
	// sink still sees at most one Apply at a time). 0 = no timeout.
	PushTimeout time.Duration
	// RetryBudget is how many times one batch is retried after its first
	// failed attempt before the breaker trips regardless of threshold.
	RetryBudget int
	// BackoffBase/BackoffMax bound the exponential retry backoff
	// (base·2ⁿ clamped to max).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterFrac spreads each backoff uniformly over ±frac of itself,
	// deterministically from Seed (0 = no jitter).
	JitterFrac float64
	// BreakerThreshold trips the sink's circuit breaker after this many
	// consecutive failed attempts.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before the
	// half-open recovery probe.
	BreakerCooldown time.Duration
	// BufferBytes caps the degraded-state buffer; past it the oldest
	// batches are coalesced (merged, deduplicated by prefix keeping the
	// last occurrence — semantics-preserving load shedding, since a
	// batch already promises only last-writer-wins).
	BufferBytes int
	// Seed keys the deterministic backoff jitter.
	Seed uint64
}

// Enabled reports whether any resilience behavior is configured. The
// zero policy keeps the legacy delivery loop.
func (p DeliveryPolicy) Enabled() bool { return p != DeliveryPolicy{} }

// DefaultDeliveryPolicy is the serve-mode resilience configuration.
func DefaultDeliveryPolicy() DeliveryPolicy {
	return DeliveryPolicy{
		PushTimeout:      2 * time.Second,
		RetryBudget:      4,
		BackoffBase:      25 * time.Millisecond,
		BackoffMax:       500 * time.Millisecond,
		JitterFrac:       0.2,
		BreakerThreshold: 5,
		BreakerCooldown:  250 * time.Millisecond,
		BufferBytes:      8 << 20,
		Seed:             1,
	}
}

// normalize fills the gaps an enabled but partial policy leaves.
func (p DeliveryPolicy) normalize() DeliveryPolicy {
	if !p.Enabled() {
		return p
	}
	def := DefaultDeliveryPolicy()
	if p.RetryBudget <= 0 {
		p.RetryBudget = def.RetryBudget
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = def.BackoffBase
	}
	if p.BackoffMax < p.BackoffBase {
		p.BackoffMax = maxDur(def.BackoffMax, p.BackoffBase)
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = def.BreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = def.BreakerCooldown
	}
	if p.BufferBytes <= 0 {
		p.BufferBytes = def.BufferBytes
	}
	return p
}

// ReconnectPolicy governs upstream session recovery: after a session
// failure (and its immediate withdraw), the daemon re-runs the source
// with jittered exponential backoff, up to MaxAttempts reconnects. The
// zero value disables reconnection — a failed session stays down, the
// pre-policy behavior.
type ReconnectPolicy struct {
	// MaxAttempts bounds reconnects per source (not per incident).
	MaxAttempts int
	// Backoff/BackoffMax bound the exponential reconnect delay.
	Backoff    time.Duration
	BackoffMax time.Duration
	// JitterFrac spreads each delay over ±frac of itself.
	JitterFrac float64
	// Seed keys the deterministic jitter.
	Seed uint64
}

// Enabled reports whether failed sessions are reconnected.
func (p ReconnectPolicy) Enabled() bool { return p != ReconnectPolicy{} }

// DefaultReconnectPolicy is the serve-mode session recovery setting.
func DefaultReconnectPolicy() ReconnectPolicy {
	return ReconnectPolicy{
		MaxAttempts: 8,
		Backoff:     50 * time.Millisecond,
		BackoffMax:  2 * time.Second,
		JitterFrac:  0.2,
		Seed:        1,
	}
}

func (p ReconnectPolicy) normalize() ReconnectPolicy {
	if !p.Enabled() {
		return p
	}
	def := DefaultReconnectPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = def.Backoff
	}
	if p.BackoffMax < p.Backoff {
		p.BackoffMax = maxDur(def.BackoffMax, p.Backoff)
	}
	return p
}

func (p ReconnectPolicy) delay(entity string, attempt int) time.Duration {
	return backoffDelay(p.Backoff, p.BackoffMax, p.JitterFrac, p.Seed, entity, attempt)
}

func (p DeliveryPolicy) delay(entity string, attempt int) time.Duration {
	return backoffDelay(p.BackoffBase, p.BackoffMax, p.JitterFrac, p.Seed, entity, attempt)
}

// backoffDelay is base·2^attempt clamped to max, jittered uniformly
// over ±frac deterministically in (seed, entity, attempt) — never in
// wall time, so two runs with one seed back off identically.
func backoffDelay(base, max time.Duration, frac float64, seed uint64, entity string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt > 30 {
		attempt = 30
	}
	d := base << uint(attempt)
	if max > 0 && d > max {
		d = max
	}
	if frac > 0 {
		r := unitRand(seed, entity, "backoff", uint64(attempt))
		d = time.Duration(float64(d) * (1 - frac + 2*frac*r))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// unitRand maps (seed, entity, kind, n) to a uniform [0,1) — the
// stateless decision function shared with the chaos layer's fault
// schedule. Stateless means replayable: decisions depend only on their
// inputs, never on how many other decisions were drawn before them.
func unitRand(seed uint64, entity, kind string, n uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(entity))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	x := splitmix64(seed ^ h.Sum64() ^ (n * 0x9e3779b97f4a7c15))
	return float64(x>>11) / float64(1<<53)
}

// splitmix64 is the finalizer from Vigna's SplitMix64 — a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
