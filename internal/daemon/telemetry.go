package daemon

import (
	"time"

	"supercharged/internal/telemetry"
)

// metrics is the daemon's registry-backed instrument bundle; nil (no
// Config.Telemetry) disables every hook. Per-peer and per-router series
// are labeled via telemetry.Series, so the live /metrics page breaks
// the pipeline down by session:
//
//	supercharged_daemon_session_up{peer="R2"} 1
//	supercharged_daemon_updates_total{peer="R2"} 41250
//	supercharged_daemon_batches_applied_total{router="edge0"} 310
type metrics struct {
	reg *telemetry.Registry

	changes *telemetry.Counter
	batches *telemetry.Counter
	// propagation is flush-to-applied latency per batch: the service
	// analogue of the lab's rule-install span.
	propagation *telemetry.Histogram
	// failoverLatency is RemovePeer-to-enqueued latency per peer
	// failure: the daemon-scale convergence number.
	failoverLatency *telemetry.Histogram
	failoverRoutes  *telemetry.Counter
	failoversTotal  *telemetry.Counter
}

// peerSeries caches one peer's labeled instruments.
type peerSeries struct {
	up      *telemetry.Gauge
	updates *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry, d *Daemon) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{
		reg: reg,
		changes: reg.Counter("supercharged_daemon_changes_total",
			"Best-path route changes produced by the sharded RIB."),
		batches: reg.Counter("supercharged_daemon_batches_total",
			"Batches flushed toward the downstream routers."),
		propagation: reg.Histogram("supercharged_daemon_propagation_seconds",
			"Flush-to-applied latency per (router, batch).", nil),
		failoverLatency: reg.Histogram("supercharged_daemon_failover_seconds",
			"Peer-failure to withdraw-batch-enqueued latency.", nil),
		failoverRoutes: reg.Counter("supercharged_daemon_failover_routes_total",
			"Routes withdrawn by peer failures."),
		failoversTotal: reg.Counter("supercharged_daemon_failovers_total",
			"Peer failures converged around."),
	}
	reg.GaugeFunc("supercharged_daemon_rib_prefixes",
		"Prefixes currently in the sharded RIB.",
		func() float64 { return float64(d.rib.Len()) })
	reg.GaugeFunc("supercharged_daemon_pending_changes",
		"Route changes accumulated toward the next batch flush.",
		func() float64 {
			d.mu.Lock()
			n := len(d.batch)
			d.mu.Unlock()
			return float64(n)
		})
	return m
}

// peer returns the source's labeled series (get-or-create is idempotent
// in the registry, so no caching map is needed for correctness — the
// registry lookup is one mutex acquire).
func (m *metrics) peer(src PeerSource) peerSeries {
	name := src.Name()
	return peerSeries{
		up: m.reg.Gauge(telemetry.Series("supercharged_daemon_session_up", "peer", name),
			"1 while the peer's session is up, 0 after it failed."),
		updates: m.reg.Counter(telemetry.Series("supercharged_daemon_updates_total", "peer", name),
			"BGP UPDATE-carried routes ingested from the peer (NLRI + withdrawn)."),
	}
}

func (m *metrics) sessionUp(src PeerSource, up bool) {
	if m == nil {
		return
	}
	ps := m.peer(src)
	if up {
		ps.up.Set(1)
	} else {
		ps.up.Set(0)
	}
}

func (m *metrics) updates(src PeerSource, nlri, withdrawn, changes int) {
	if m == nil {
		return
	}
	m.peer(src).updates.Add(uint64(nlri + withdrawn))
	m.changes.Add(uint64(changes))
}

func (m *metrics) flush(n int) {
	if m == nil {
		return
	}
	m.batches.Inc()
}

func (m *metrics) delivered(sink RouterSink, n int, latency time.Duration) {
	if m == nil {
		return
	}
	m.reg.Counter(telemetry.Series("supercharged_daemon_batches_applied_total", "router", sink.Name()),
		"Batches applied by the downstream router.").Inc()
	m.reg.Counter(telemetry.Series("supercharged_daemon_routes_programmed_total", "router", sink.Name()),
		"Route changes programmed into the downstream router.").Add(uint64(n))
	m.propagation.ObserveDuration(latency)
}

func (m *metrics) failover(d time.Duration, routes int) {
	if m == nil {
		return
	}
	m.failoversTotal.Inc()
	m.failoverRoutes.Add(uint64(routes))
	m.failoverLatency.ObserveDuration(d)
}

// --- resilient delivery series (per router) ---------------------------
//
// Registry lookups are get-or-create, so these helpers fetch on use;
// preRegisterRouter creates every series up front at zero so the
// /metrics page (and the CI greps against it) shows them before the
// first fault.

func (m *metrics) routerCounter(sink RouterSink, name, help string) *telemetry.Counter {
	return m.reg.Counter(telemetry.Series(name, "router", sink.Name()), help)
}

func (m *metrics) routerGauge(sink RouterSink, name, help string) *telemetry.Gauge {
	return m.reg.Gauge(telemetry.Series(name, "router", sink.Name()), help)
}

const (
	helpRetries    = "Delivery attempts retried after a failed push."
	helpTimeouts   = "Pushes abandoned at the delivery policy's timeout."
	helpBreaker    = "Breaker state: 0 closed, 1 open, 2 half-open."
	helpTrips      = "Circuit breaker trips (closed/half-open to open)."
	helpResyncs    = "Full-state snapshot resyncs shipped to the router."
	helpResyncRts  = "Routes carried by resync snapshots."
	helpGaps       = "Batch sequence gaps the router reported."
	helpGapLast    = "Highest batch sequence lost in the router's most recent gap."
	helpShed       = "Oldest-batch coalescing events while degraded (load shedding)."
	helpBufBytes   = "Bytes currently buffered for the router while its breaker is open."
	helpReconnects = "Session reconnects performed for the peer."
	helpCorrupt    = "UPDATEs rejected by ingest validation for the peer."
)

// preRegisterRouter creates the router's resilience series at zero.
func (m *metrics) preRegisterRouter(sink RouterSink) {
	if m == nil {
		return
	}
	m.routerCounter(sink, "supercharged_daemon_push_retries_total", helpRetries)
	m.routerCounter(sink, "supercharged_daemon_push_timeouts_total", helpTimeouts)
	m.routerGauge(sink, "supercharged_daemon_breaker_state", helpBreaker).Set(0)
	m.routerCounter(sink, "supercharged_daemon_breaker_trips_total", helpTrips)
	m.routerCounter(sink, "supercharged_daemon_resyncs_total", helpResyncs)
	m.routerCounter(sink, "supercharged_daemon_resync_routes_total", helpResyncRts)
	m.routerCounter(sink, "supercharged_daemon_sink_gaps_total", helpGaps)
	m.routerGauge(sink, "supercharged_daemon_sink_gap_last_seq", helpGapLast).Set(0)
	m.routerCounter(sink, "supercharged_daemon_shed_coalesced_total", helpShed)
	m.routerGauge(sink, "supercharged_daemon_buffered_bytes", helpBufBytes).Set(0)
}

func (m *metrics) retry(sink RouterSink) {
	if m == nil {
		return
	}
	m.routerCounter(sink, "supercharged_daemon_push_retries_total", helpRetries).Inc()
}

func (m *metrics) pushTimeout(sink RouterSink) {
	if m == nil {
		return
	}
	m.routerCounter(sink, "supercharged_daemon_push_timeouts_total", helpTimeouts).Inc()
}

func (m *metrics) breakerState(sink RouterSink, state int32) {
	if m == nil {
		return
	}
	m.routerGauge(sink, "supercharged_daemon_breaker_state", helpBreaker).Set(float64(state))
}

func (m *metrics) breakerTrip(sink RouterSink) {
	if m == nil {
		return
	}
	m.routerCounter(sink, "supercharged_daemon_breaker_trips_total", helpTrips).Inc()
}

func (m *metrics) resync(sink RouterSink, routes int) {
	if m == nil {
		return
	}
	m.routerCounter(sink, "supercharged_daemon_resyncs_total", helpResyncs).Inc()
	m.routerCounter(sink, "supercharged_daemon_resync_routes_total", helpResyncRts).Add(uint64(routes))
}

func (m *metrics) gap(sink RouterSink, from, to uint64) {
	if m == nil {
		return
	}
	m.routerCounter(sink, "supercharged_daemon_sink_gaps_total", helpGaps).Inc()
	m.routerGauge(sink, "supercharged_daemon_sink_gap_last_seq", helpGapLast).Set(float64(to))
}

func (m *metrics) shed(sink RouterSink) {
	if m == nil {
		return
	}
	m.routerCounter(sink, "supercharged_daemon_shed_coalesced_total", helpShed).Inc()
}

func (m *metrics) bufferedBytes(sink RouterSink, n int) {
	if m == nil {
		return
	}
	m.routerGauge(sink, "supercharged_daemon_buffered_bytes", helpBufBytes).Set(float64(n))
}

func (m *metrics) reconnect(src PeerSource) {
	if m == nil {
		return
	}
	m.reg.Counter(telemetry.Series("supercharged_daemon_reconnects_total", "peer", src.Name()),
		helpReconnects).Inc()
}

func (m *metrics) corruptUpdate(src PeerSource) {
	if m == nil {
		return
	}
	m.reg.Counter(telemetry.Series("supercharged_daemon_corrupt_updates_total", "peer", src.Name()),
		helpCorrupt).Inc()
}
