package daemon

import (
	"time"

	"supercharged/internal/telemetry"
)

// metrics is the daemon's registry-backed instrument bundle; nil (no
// Config.Telemetry) disables every hook. Per-peer and per-router series
// are labeled via telemetry.Series, so the live /metrics page breaks
// the pipeline down by session:
//
//	supercharged_daemon_session_up{peer="R2"} 1
//	supercharged_daemon_updates_total{peer="R2"} 41250
//	supercharged_daemon_batches_applied_total{router="edge0"} 310
type metrics struct {
	reg *telemetry.Registry

	changes *telemetry.Counter
	batches *telemetry.Counter
	// propagation is flush-to-applied latency per batch: the service
	// analogue of the lab's rule-install span.
	propagation *telemetry.Histogram
	// failoverLatency is RemovePeer-to-enqueued latency per peer
	// failure: the daemon-scale convergence number.
	failoverLatency *telemetry.Histogram
	failoverRoutes  *telemetry.Counter
	failoversTotal  *telemetry.Counter
}

// peerSeries caches one peer's labeled instruments.
type peerSeries struct {
	up      *telemetry.Gauge
	updates *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry, d *Daemon) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{
		reg: reg,
		changes: reg.Counter("supercharged_daemon_changes_total",
			"Best-path route changes produced by the sharded RIB."),
		batches: reg.Counter("supercharged_daemon_batches_total",
			"Batches flushed toward the downstream routers."),
		propagation: reg.Histogram("supercharged_daemon_propagation_seconds",
			"Flush-to-applied latency per (router, batch).", nil),
		failoverLatency: reg.Histogram("supercharged_daemon_failover_seconds",
			"Peer-failure to withdraw-batch-enqueued latency.", nil),
		failoverRoutes: reg.Counter("supercharged_daemon_failover_routes_total",
			"Routes withdrawn by peer failures."),
		failoversTotal: reg.Counter("supercharged_daemon_failovers_total",
			"Peer failures converged around."),
	}
	reg.GaugeFunc("supercharged_daemon_rib_prefixes",
		"Prefixes currently in the sharded RIB.",
		func() float64 { return float64(d.rib.Len()) })
	reg.GaugeFunc("supercharged_daemon_pending_changes",
		"Route changes accumulated toward the next batch flush.",
		func() float64 {
			d.mu.Lock()
			n := len(d.batch)
			d.mu.Unlock()
			return float64(n)
		})
	return m
}

// peer returns the source's labeled series (get-or-create is idempotent
// in the registry, so no caching map is needed for correctness — the
// registry lookup is one mutex acquire).
func (m *metrics) peer(src PeerSource) peerSeries {
	name := src.Name()
	return peerSeries{
		up: m.reg.Gauge(telemetry.Series("supercharged_daemon_session_up", "peer", name),
			"1 while the peer's session is up, 0 after it failed."),
		updates: m.reg.Counter(telemetry.Series("supercharged_daemon_updates_total", "peer", name),
			"BGP UPDATE-carried routes ingested from the peer (NLRI + withdrawn)."),
	}
}

func (m *metrics) sessionUp(src PeerSource, up bool) {
	if m == nil {
		return
	}
	ps := m.peer(src)
	if up {
		ps.up.Set(1)
	} else {
		ps.up.Set(0)
	}
}

func (m *metrics) updates(src PeerSource, nlri, withdrawn, changes int) {
	if m == nil {
		return
	}
	m.peer(src).updates.Add(uint64(nlri + withdrawn))
	m.changes.Add(uint64(changes))
}

func (m *metrics) flush(n int) {
	if m == nil {
		return
	}
	m.batches.Inc()
}

func (m *metrics) delivered(sink RouterSink, n int, latency time.Duration) {
	if m == nil {
		return
	}
	m.reg.Counter(telemetry.Series("supercharged_daemon_batches_applied_total", "router", sink.Name()),
		"Batches applied by the downstream router.").Inc()
	m.reg.Counter(telemetry.Series("supercharged_daemon_routes_programmed_total", "router", sink.Name()),
		"Route changes programmed into the downstream router.").Add(uint64(n))
	m.propagation.ObserveDuration(latency)
}

func (m *metrics) failover(d time.Duration, routes int) {
	if m == nil {
		return
	}
	m.failoversTotal.Inc()
	m.failoverRoutes.Add(uint64(routes))
	m.failoverLatency.ObserveDuration(d)
}
