package daemon

import (
	"errors"
	"net/netip"
	"testing"
)

func rc(p string, nh string) RouteChange {
	out := RouteChange{Prefix: netip.MustParsePrefix(p)}
	if nh != "" {
		out.NextHop = netip.MustParseAddr(nh)
		out.Peer = out.NextHop
	}
	return out
}

func TestFIBSinkRecordsForcedGap(t *testing.T) {
	s := NewFIBSink("edge0")
	if err := s.Apply(Batch{Seq: 1, Changes: []RouteChange{rc("1.0.0.0/24", "10.0.0.1")}}); err != nil {
		t.Fatalf("seq 1: %v", err)
	}
	// Seq 2 never arrives; seq 3 must expose it — applied AND reported.
	err := s.Apply(Batch{Seq: 3, Changes: []RouteChange{rc("2.0.0.0/24", "10.0.0.1")}})
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("seq 3 after seq 1 returned %v, want *GapError", err)
	}
	if gap.From != 2 || gap.To != 2 {
		t.Fatalf("gap range %d-%d, want 2-2", gap.From, gap.To)
	}
	if s.Len() != 2 {
		t.Fatalf("gap batch was not applied: %d entries, want 2", s.Len())
	}
	st := s.State()
	if st.Gaps != 1 || len(st.Missing) != 1 || st.Missing[0] != (SeqRange{2, 2}) {
		t.Fatalf("state after gap: %+v", st)
	}
	if s.Gaps() != 1 || s.Unhealed() != 1 {
		t.Fatalf("Gaps=%d Unhealed=%d, want 1/1", s.Gaps(), s.Unhealed())
	}

	// A wider jump records the full missing range.
	err = s.Apply(Batch{Seq: 7, Changes: []RouteChange{rc("3.0.0.0/24", "10.0.0.1")}})
	if !errors.As(err, &gap) || gap.From != 4 || gap.To != 6 {
		t.Fatalf("second gap = %v, want 4-6", err)
	}
	if got := s.State().Missing; len(got) != 2 || got[1] != (SeqRange{4, 6}) {
		t.Fatalf("missing ranges = %v", got)
	}
}

func TestFIBSinkResyncHealsAndSkipsStale(t *testing.T) {
	s := NewFIBSink("edge0")
	if err := s.Apply(Batch{Seq: 1, Changes: []RouteChange{
		rc("1.0.0.0/24", "10.0.0.1"),
		rc("9.0.0.0/24", "10.0.0.9"),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Batch{Seq: 4, Changes: []RouteChange{rc("2.0.0.0/24", "10.0.0.1")}}); err == nil {
		t.Fatal("expected gap error at seq 4")
	}

	// The resync snapshot replaces the FIB wholesale: 9.0.0.0/24 is
	// absent from it (withdrawn while the sink was degraded) and must
	// disappear; every missing range heals.
	resync := Batch{Seq: 6, Resync: true, Changes: []RouteChange{
		rc("1.0.0.0/24", "10.0.0.2"),
		rc("2.0.0.0/24", "10.0.0.1"),
		rc("3.0.0.0/24", "10.0.0.3"),
	}}
	if err := s.Apply(resync); err != nil {
		t.Fatalf("resync: %v", err)
	}
	st := s.State()
	if len(st.Missing) != 0 || st.Healed != 1 || st.LastSeq != 6 {
		t.Fatalf("state after resync: %+v", st)
	}
	if s.Len() != 3 {
		t.Fatalf("FIB has %d entries after resync, want 3", s.Len())
	}
	if _, ok := s.NextHop(netip.MustParsePrefix("9.0.0.0/24")); ok {
		t.Fatal("resync kept an entry absent from the snapshot")
	}
	if nh, _ := s.NextHop(netip.MustParsePrefix("1.0.0.0/24")); nh != netip.MustParseAddr("10.0.0.2") {
		t.Fatalf("resync did not replace 1.0.0.0/24: %v", nh)
	}

	// Seq 5 flushed before the snapshot but arrives after: stale, its
	// changes already reflected — it must be skipped, not regress state.
	if err := s.Apply(Batch{Seq: 5, Changes: []RouteChange{rc("1.0.0.0/24", "10.0.0.1")}}); err != nil {
		t.Fatalf("stale batch: %v", err)
	}
	if nh, _ := s.NextHop(netip.MustParsePrefix("1.0.0.0/24")); nh != netip.MustParseAddr("10.0.0.2") {
		t.Fatal("stale batch overwrote post-resync state")
	}
	if got := s.State().Stale; got != 1 {
		t.Fatalf("stale count = %d, want 1", got)
	}
	// Seq 7 is the next dense sequence after the resync stamp: no gap.
	if err := s.Apply(Batch{Seq: 7, Changes: []RouteChange{rc("4.0.0.0/24", "10.0.0.4")}}); err != nil {
		t.Fatalf("post-resync continuation: %v", err)
	}
}

func TestFIBSinkHashIsOrderInsensitiveAndContentSensitive(t *testing.T) {
	a, b := NewFIBSink("a"), NewFIBSink("b")
	one := rc("1.0.0.0/24", "10.0.0.1")
	two := rc("2.0.0.0/24", "10.0.0.2")
	if err := a.Apply(Batch{Seq: 1, Changes: []RouteChange{one, two}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(Batch{Seq: 1, Changes: []RouteChange{two, one}}); err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("same FIB content, different hashes")
	}
	if err := b.Apply(Batch{Seq: 2, Changes: []RouteChange{rc("2.0.0.0/24", "10.0.0.3")}}); err != nil {
		t.Fatal(err)
	}
	if a.Hash() == b.Hash() {
		t.Fatal("diverged FIBs share a hash")
	}
}
