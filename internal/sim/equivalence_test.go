package sim

import (
	"context"
	"testing"
	"time"

	"supercharged/internal/clock"
)

// TestWallSourceMatchesVirtual runs the identical lab twice — once on
// the default virtual discrete-event source, once paced by the real
// system clock — and checks that the wall run reproduces the virtual
// run's structure exactly and its timing within the measurement
// quantum. This is the pluggable-time-source contract: the engine's
// behavior is a function of the event schedule, not of which source
// fires it.
func TestWallSourceMatchesVirtual(t *testing.T) {
	// Millisecond-scale timings keep the wall run under a second while
	// still exercising every stage: detection, router control plane, FIB
	// walk, probing. RouterCtlJitter of 1 ns makes the jitter draw zero
	// without tripping the zero-means-default rule.
	base := Config{
		Mode:            Supercharged,
		NumPrefixes:     200,
		NumFlows:        20,
		Seed:            7,
		PerEntry:        50 * time.Microsecond,
		BFDInterval:     10 * time.Millisecond,
		BFDMult:         2,
		RouterCtl:       30 * time.Millisecond,
		RouterCtlJitter: time.Nanosecond,
		ControllerReact: 5 * time.Millisecond,
		FlowModLatency:  5 * time.Millisecond,
		ProbeInterval:   2 * time.Millisecond,
		FailAt:          50 * time.Millisecond,
	}

	virtual, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	wallCfg := base
	wallCfg.Source = clock.NewWall()
	wall, err := Run(context.Background(), wallCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Structure must be identical: same flows over the same prefixes at
	// the same FIB positions, same groups, same rule rewrites.
	if wall.Groups != virtual.Groups || wall.RuleRewrites != virtual.RuleRewrites {
		t.Fatalf("structural divergence: wall groups=%d rewrites=%d, virtual groups=%d rewrites=%d",
			wall.Groups, wall.RuleRewrites, virtual.Groups, virtual.RuleRewrites)
	}
	if len(wall.Flows) != len(virtual.Flows) {
		t.Fatalf("wall measured %d flows, virtual %d", len(wall.Flows), len(virtual.Flows))
	}

	// Timing must agree within the quantization bound: the wall source
	// fires timers with real scheduler latency, and probes sample at
	// ProbeInterval, so each measurement may shift by a few quanta. The
	// tolerance is deliberately generous for noisy CI machines — the
	// point is that wall time tracks virtual time, not that the OS
	// scheduler is exact.
	const tol = 100 * time.Millisecond
	within := func(name string, w, v time.Duration, tol time.Duration) {
		t.Helper()
		d := w - v
		if d < 0 {
			d = -d
		}
		if d > tol {
			t.Errorf("%s: wall %v vs virtual %v (|Δ| %v > %v)", name, w, v, d, tol)
		}
	}
	within("DetectAt", wall.DetectAt, virtual.DetectAt, tol)
	within("DataPlaneDone", wall.DataPlaneDone, virtual.DataPlaneDone, tol)
	// The control-plane drain sits behind one chained timer per FIB
	// entry, and each real timer fires late by up to a scheduling
	// quantum — lateness that accumulates across the serial chain. Its
	// quantization bound therefore scales with the walk length.
	walkTol := tol + time.Duration(base.NumPrefixes)*2*time.Millisecond
	within("ControlPlaneDone", wall.ControlPlaneDone, virtual.ControlPlaneDone, walkTol)
	for i := range virtual.Flows {
		vf, wf := virtual.Flows[i], wall.Flows[i]
		if wf.Prefix != vf.Prefix || wf.Position != vf.Position {
			t.Fatalf("flow %d: wall probes %s@%d, virtual %s@%d",
				i, wf.Prefix, wf.Position, vf.Prefix, vf.Position)
		}
		within("flow "+vf.Prefix.String(), wf.Convergence, vf.Convergence, tol)
	}
}
