package sim

// Tests for the second-generation event model: shared-risk link groups,
// session resets with and without graceful restart, and background
// UPDATE noise. Each test pins the outage accounting — affected /
// recovered / unrecovered flows and the qualitative convergence shape —
// that docs/scenarios.md promises for the corresponding builtin.

import (
	"context"
	"testing"
	"time"
)

func maxConv(ev EventResult) time.Duration {
	var max time.Duration
	for _, d := range ev.Convergence {
		if d > max {
			max = d
		}
	}
	return max
}

func TestSRLGDownKillsAllMembersAtOnce(t *testing.T) {
	// R2 and R3 share a conduit; k=3 groups know the surviving R4, so the
	// supercharger recovers every flow with constant-time rewrites.
	cfg := TimelineConfig{
		Config: Config{Mode: Supercharged, NumPrefixes: 2000, NumFlows: 50, Seed: 1, GroupSize: 3},
		Peers:  []PeerSpec{{Name: "R2"}, {Name: "R3"}, {Name: "R4"}},
		Events: []TimelineEvent{{At: time.Second, Kind: EventSRLGDown, Peers: []string{"R2", "R3"}}},
	}
	res := runTL(t, cfg)
	ev := res.Events[0]
	if ev.Peer != "R2+R3" {
		t.Fatalf("event peer label %q, want R2+R3", ev.Peer)
	}
	if ev.DetectAt != 90*time.Millisecond {
		t.Fatalf("detect at %v, want 90ms (BFD)", ev.DetectAt)
	}
	if ev.Affected != 50 || ev.Unrecovered != 0 {
		t.Fatalf("affected %d unrecovered %d, want 50/0", ev.Affected, ev.Unrecovered)
	}
	if max := maxConv(ev); max > 200*time.Millisecond {
		t.Fatalf("supercharged SRLG convergence %v, want constant-time (<200ms)", max)
	}

	// Standalone recovers too (R4 is in its RIB), but per-entry.
	cfg.Mode = Standalone
	cfg.Config.GroupSize = 3
	res = runTL(t, cfg)
	ev = res.Events[0]
	if ev.Affected != 50 || ev.Unrecovered != 0 {
		t.Fatalf("standalone affected %d unrecovered %d, want 50/0", ev.Affected, ev.Unrecovered)
	}
	if max := maxConv(ev); max < 200*time.Millisecond {
		t.Fatalf("standalone SRLG convergence %v — should pay the FIB walk", max)
	}
}

func TestSRLGDownExhaustsPairGroups(t *testing.T) {
	// With k=2 groups over (R2, R3), losing both members leaves the
	// supercharger nothing to retarget to: flows stay black. The honest
	// accounting (unrecovered, not silently dropped) is the point.
	cfg := TimelineConfig{
		Config: Config{Mode: Supercharged, NumPrefixes: 1000, NumFlows: 30, Seed: 1},
		Peers:  []PeerSpec{{Name: "R2"}, {Name: "R3"}},
		Events: []TimelineEvent{{At: time.Second, Kind: EventSRLGDown, Peers: []string{"R2", "R3"}}},
	}
	res := runTL(t, cfg)
	ev := res.Events[0]
	if ev.Affected != 30 || ev.Unrecovered != 30 {
		t.Fatalf("affected %d unrecovered %d, want 30/30 (no surviving member)", ev.Affected, ev.Unrecovered)
	}
}

func TestSessionResetHardIsAnnouncedNotDetected(t *testing.T) {
	// A hard reset blacks traffic out for the restart window, but there is
	// no detection latency: the supercharger reacts immediately and
	// converges in ControllerReact+FlowModLatency, under the 130 ms
	// BFD-detected baseline.
	res := runTL(t, timelineConfig(Supercharged, 2000,
		TimelineEvent{At: time.Second, Kind: EventSessionReset, Peer: "R2"}))
	ev := res.Events[0]
	if ev.DetectAt != 0 {
		t.Fatalf("announced reset has detection latency %v", ev.DetectAt)
	}
	if ev.Affected != 50 || ev.Unrecovered != 0 {
		t.Fatalf("affected %d unrecovered %d, want 50/0", ev.Affected, ev.Unrecovered)
	}
	if max := maxConv(ev); max > 90*time.Millisecond {
		t.Fatalf("supercharged reset convergence %v, want <90ms (no detection term)", max)
	}

	// Standalone pays RouterCtl + the FIB walk, capped by the 1 s session
	// restore: strictly slower than the supercharger.
	res = runTL(t, timelineConfig(Standalone, 2000,
		TimelineEvent{At: time.Second, Kind: EventSessionReset, Peer: "R2"}))
	ev = res.Events[0]
	if ev.Affected != 50 || ev.Unrecovered != 0 {
		t.Fatalf("standalone affected %d unrecovered %d, want 50/0", ev.Affected, ev.Unrecovered)
	}
	if max := maxConv(ev); max < 200*time.Millisecond {
		t.Fatalf("standalone reset convergence %v — should pay the control plane + walk", max)
	}
}

func TestSessionResetGracefulRestartPreservesForwarding(t *testing.T) {
	// RFC 4724: forwarding state survives the restart, so the data plane
	// never notices in either mode. The full-feed replay is churn only —
	// and the supercharged controller's semantic filter keeps even that
	// away from the router.
	for _, mode := range []Mode{Standalone, Supercharged} {
		res := runTL(t, timelineConfig(mode, 1000,
			TimelineEvent{At: time.Second, Kind: EventSessionReset, Peer: "R2", Graceful: true}))
		ev := res.Events[0]
		if ev.Affected != 0 {
			t.Fatalf("%v: graceful restart blacked out %d flows", mode, ev.Affected)
		}
		switch mode {
		case Standalone:
			if res.FIBWrites == 0 {
				t.Fatal("standalone: graceful replay caused no FIB churn — the naive router should rewrite entries")
			}
		case Supercharged:
			if res.FIBWrites != 0 {
				t.Fatalf("supercharged: %d FIB writes leaked through the churn filter", res.FIBWrites)
			}
		}
	}
}

func TestSessionResetCustomRestartWindow(t *testing.T) {
	// Hold overrides the re-establishment delay: with a 5 s restart the
	// standalone walk finishes first, so the worst blackout tracks the
	// walk, and no flow outlives the restore.
	cfg := timelineConfig(Standalone, 1000,
		TimelineEvent{At: time.Second, Kind: EventSessionReset, Peer: "R2", Hold: 5 * time.Second})
	res := runTL(t, cfg)
	ev := res.Events[0]
	if ev.Unrecovered != 0 {
		t.Fatalf("%d flows never recovered", ev.Unrecovered)
	}
	if max := maxConv(ev); max > 5100*time.Millisecond {
		t.Fatalf("blackout %v beyond the 5s restore", max)
	}
}

func TestUpdateNoiseDelaysStandaloneNotSupercharged(t *testing.T) {
	failover := TimelineEvent{At: 2 * time.Second, Kind: EventPeerDown, Peer: "R2"}
	noise := TimelineEvent{At: 500 * time.Millisecond, Kind: EventUpdateNoise,
		Peer: "R3", Hold: 4 * time.Second, Rate: 5000}

	worst := func(mode Mode, events ...TimelineEvent) time.Duration {
		res := runTL(t, timelineConfig(mode, 2000, events...))
		for _, ev := range res.Events {
			if ev.Kind == EventUpdateNoise && ev.Affected != 0 {
				t.Fatalf("%v: noise itself blacked out %d flows", mode, ev.Affected)
			}
			if ev.Kind == EventPeerDown && (ev.Affected == 0 || ev.Unrecovered != 0) {
				t.Fatalf("%v: failover affected %d unrecovered %d", mode, ev.Affected, ev.Unrecovered)
			}
		}
		for _, ev := range res.Events {
			if ev.Kind == EventPeerDown {
				return maxConv(ev)
			}
		}
		t.Fatal("no failover event in result")
		return 0
	}

	// Standalone: the failure's FIB walk queues behind the noise backlog.
	quietSA := worst(Standalone, failover)
	noisySA := worst(Standalone, noise, failover)
	if noisySA <= quietSA {
		t.Fatalf("standalone under noise converged in %v, quiet %v — backlog had no effect", noisySA, quietSA)
	}

	// Supercharged: the churn filter keeps the router idle; convergence
	// stays at the constant baseline.
	noisySC := worst(Supercharged, noise, failover)
	if noisySC > 200*time.Millisecond {
		t.Fatalf("supercharged under noise converged in %v, want constant-time (<200ms)", noisySC)
	}
}

func TestFeedWindowsDiversifyGroups(t *testing.T) {
	// Staggered circular windows give different prefixes different
	// covering peer sets: the group table must hold several distinct
	// (primary, backup) pairs, where nested Head feeds would yield one.
	peers := []PeerSpec{
		{Name: "R2", Prefixes: 400, Offset: 0},
		{Name: "R3", Prefixes: 400, Offset: 250},
		{Name: "R4", Prefixes: 400, Offset: 500},
		{Name: "R5", Prefixes: 400, Offset: 750},
	}
	cfg := TimelineConfig{
		Config: Config{Mode: Supercharged, NumPrefixes: 1000, NumFlows: 20, Seed: 1},
		Peers:  peers,
		Events: []TimelineEvent{{At: time.Second, Kind: EventPeerDown, Peer: "R2"}},
	}
	res := runTL(t, cfg)
	if res.Groups < 4 {
		t.Fatalf("windowed fabric allocated %d groups, want ≥4 distinct pairs", res.Groups)
	}
	ev := res.Events[0]
	if ev.Affected == 0 {
		t.Fatal("primary failure affected no flows")
	}
	if ev.Unrecovered != 0 {
		t.Fatalf("%d flows unrecovered despite 1.6× coverage", ev.Unrecovered)
	}
}

func TestSessionResetSurvivesAbsorbedFlapAcrossRestore(t *testing.T) {
	// A sub-detection flap spanning the hard reset's restore instant must
	// not cancel the re-establishment for good: the session still comes
	// back and every flow recovers (regression: the restore closure bailed
	// on a down link and the absorbed-flap path never replayed).
	res := runTL(t, timelineConfig(Standalone, 1000,
		TimelineEvent{At: 1 * time.Second, Kind: EventSessionReset, Peer: "R2"},
		TimelineEvent{At: 1960 * time.Millisecond, Kind: EventLinkFlap, Peer: "R2", Hold: 80 * time.Millisecond}))
	for _, ev := range res.Events {
		if ev.Unrecovered != 0 {
			t.Fatalf("event %d (%s): %d flows never recovered — session lost forever",
				ev.Index, ev.Kind, ev.Unrecovered)
		}
	}
}

func TestDeadPeerEmitsNothing(t *testing.T) {
	// A peer whose link or session is down cannot announce or withdraw:
	// burst-reannounce and partial-withdraw after a peer-down must not
	// resurrect its routes (the FIB would point at a dead peer forever).
	for _, tail := range []TimelineEvent{
		{At: 3 * time.Second, Kind: EventBurstReannounce, Peer: "R2"},
		{At: 3 * time.Second, Kind: EventPartialWithdraw, Peer: "R2", Fraction: 0.5},
	} {
		res := runTL(t, timelineConfig(Standalone, 1000,
			TimelineEvent{At: time.Second, Kind: EventPeerDown, Peer: "R2"}, tail))
		for _, ev := range res.Events {
			if ev.Unrecovered != 0 {
				t.Fatalf("%s after peer-down: event %d left %d flows unrecovered",
					tail.Kind, ev.Index, ev.Unrecovered)
			}
		}
		if res.Events[1].Affected != 0 {
			t.Fatalf("%s from a dead peer affected %d flows", tail.Kind, res.Events[1].Affected)
		}
	}
}

func TestSecondGenValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*TimelineConfig)
	}{
		{"srlg one member", func(c *TimelineConfig) {
			c.Events[0] = TimelineEvent{At: time.Second, Kind: EventSRLGDown, Peers: []string{"R2"}}
		}},
		{"srlg unknown member", func(c *TimelineConfig) {
			c.Events[0] = TimelineEvent{At: time.Second, Kind: EventSRLGDown, Peers: []string{"R2", "R9"}}
		}},
		{"srlg duplicate member", func(c *TimelineConfig) {
			c.Events[0] = TimelineEvent{At: time.Second, Kind: EventSRLGDown, Peers: []string{"R2", "R2"}}
		}},
		{"peers on non-srlg", func(c *TimelineConfig) {
			c.Events[0].Peers = []string{"R2", "R3"}
		}},
		{"graceful on non-reset", func(c *TimelineConfig) {
			c.Events[0].Graceful = true
		}},
		{"rate on non-noise", func(c *TimelineConfig) {
			c.Events[0].Rate = 100
		}},
		{"noise without rate", func(c *TimelineConfig) {
			c.Events[0] = TimelineEvent{At: time.Second, Kind: EventUpdateNoise, Peer: "R2", Hold: time.Second}
		}},
		{"noise without hold", func(c *TimelineConfig) {
			c.Events[0] = TimelineEvent{At: time.Second, Kind: EventUpdateNoise, Peer: "R2", Rate: 100}
		}},
		{"noise volume over cap", func(c *TimelineConfig) {
			c.Events[0] = TimelineEvent{At: time.Second, Kind: EventUpdateNoise,
				Peer: "R2", Hold: time.Hour, Rate: 50_000}
		}},
		{"negative reset hold", func(c *TimelineConfig) {
			c.Events[0] = TimelineEvent{At: time.Second, Kind: EventSessionReset, Peer: "R2", Hold: -1}
		}},
		{"negative feed offset", func(c *TimelineConfig) {
			c.Peers[1].Offset = -5
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := timelineConfig(Supercharged, 1000,
				TimelineEvent{At: time.Second, Kind: EventPeerDown, Peer: "R2"})
			tc.mutate(&cfg)
			if _, err := RunTimeline(context.Background(), cfg); err == nil {
				t.Fatal("invalid second-generation timeline accepted")
			}
		})
	}
}

func TestSecondGenDeterministic(t *testing.T) {
	// A timeline mixing every new kind must reproduce byte-for-byte from
	// its seed — the property the result store and the fuzzer rest on.
	cfg := TimelineConfig{
		Config: Config{Mode: Supercharged, NumPrefixes: 1500, NumFlows: 40, Seed: 7, GroupSize: 3},
		Peers:  []PeerSpec{{Name: "R2"}, {Name: "R3"}, {Name: "R4", Prefixes: 800, Offset: 300}},
		Events: []TimelineEvent{
			{At: 500 * time.Millisecond, Kind: EventUpdateNoise, Peer: "R3", Hold: 2 * time.Second, Rate: 1000},
			{At: time.Second, Kind: EventSRLGDown, Peers: []string{"R2", "R3"}},
			{At: 4 * time.Second, Kind: EventPeerUp, Peer: "R2"},
			{At: 8 * time.Second, Kind: EventSessionReset, Peer: "R2"},
		},
	}
	a := runTL(t, cfg)
	b := runTL(t, cfg)
	if a.FIBWrites != b.FIBWrites || a.Elapsed != b.Elapsed || len(a.Events) != len(b.Events) {
		t.Fatalf("top-level results differ: %+v vs %+v", a, b)
	}
	for i := range a.Events {
		ae, be := a.Events[i], b.Events[i]
		if ae.Affected != be.Affected || ae.Recovered != be.Recovered ||
			ae.Unrecovered != be.Unrecovered || ae.DetectAt != be.DetectAt {
			t.Fatalf("event %d differs: %+v vs %+v", i, ae, be)
		}
		for j := range ae.Convergence {
			if ae.Convergence[j] != be.Convergence[j] {
				t.Fatalf("event %d sample %d: %v vs %v", i, j, ae.Convergence[j], be.Convergence[j])
			}
		}
	}
}
