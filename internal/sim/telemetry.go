package sim

import (
	"fmt"
	"time"

	"supercharged/internal/core"
	"supercharged/internal/telemetry"
)

// This file is the lab's telemetry surface: every trace span and metric
// the simulator emits is produced here, behind nil checks on
// Config.Trace / Config.Telemetry. cmd/modelhash excludes telemetry
// files from the ModelVersion source hash — the spans describe the
// model's timing, they do not shape it, so editing this file must not
// invalidate the content-addressed result store.
//
// Span geometry: one trace *process* per run (mode · size · seed), one
// *thread* per timeline event (tid = event index + 1), with tid 0 as the
// run-level pipeline row (setup, feed ingest, rule installs). All span
// timestamps come from the run's time source: offsets from the lab's
// epoch — the source's time when the lab was built, time.Unix(0,0) for
// the default virtual source — so the viewer's axis shows exactly the
// durations the reports print, whichever source drove the run.

// Trace span names (the catalogue in docs/observability.md).
const (
	spanSetup         = "setup"
	spanFeedIngest    = "feed-ingest"
	spanEvent         = "event"
	spanDetect        = "failure-detected"
	spanCtlNotified   = "controller-notified"
	spanChurnFilter   = "churn-filtered"
	spanRulesComputed = "rules-computed"
	spanRuleInstall   = "rule-install"
	spanRouterCtl     = "router-ctl"
	spanConverged     = "flow-converged"
	spanCtlCost       = "controller-cost"
	spanTakeover      = "controller-takeover"
)

// traceStart registers the run's trace process and pipeline thread.
func (l *lab) traceStart() {
	if l.cfg.Trace == nil {
		return
	}
	l.tracePID = l.cfg.Trace.Process(fmt.Sprintf("%s · %d prefixes · seed %d",
		l.cfg.Mode, l.cfg.NumPrefixes, l.cfg.Seed))
	l.cfg.Trace.Thread(l.tracePID, 0, "pipeline")
}

// vt converts an absolute source instant to a span offset from the
// run's epoch.
func (l *lab) vt(at time.Time) time.Duration { return at.Sub(l.epoch) }

// emit records one span on the run's trace process.
func (l *lab) emit(s telemetry.Span) {
	if l.cfg.Trace == nil {
		return
	}
	s.PID = l.tracePID
	l.cfg.Trace.Add(s)
}

// traceSetup closes the setup span: steady-state construction from the
// clock epoch to now (feeds loaded, FIB installed, rules drained).
func (l *lab) traceSetup() {
	l.emit(telemetry.Span{
		Name: spanSetup, Cat: "pipeline", TID: 0,
		Start: 0, Dur: l.vt(l.clk.Now()),
	})
}

// traceFeedIngest marks one provider's feed load (N routes).
func (l *lab) traceFeedIngest(prov *provider, n int) {
	l.emit(telemetry.Span{
		Name: spanFeedIngest, Cat: "pipeline", TID: 0,
		Start: l.vt(l.clk.Now()), Peer: prov.name, N: n,
	})
}

// traceEvent registers the event's thread row and its firing marker.
func (l *lab) traceEvent(st *eventState) {
	if l.cfg.Trace == nil {
		return
	}
	name := fmt.Sprintf("#%d %s", st.idx, st.ev.Kind)
	if st.ev.Peer != "" {
		name += " " + st.ev.Peer
	}
	l.cfg.Trace.Thread(l.tracePID, st.idx+1, name)
	l.emit(telemetry.Span{
		Name: spanEvent, Cat: "event", TID: st.idx + 1,
		Start: l.vt(st.absAt), Kind: string(st.ev.Kind), Peer: st.ev.Peer,
	})
}

// traceDetect spans link-cut → failure-declared on the event's thread
// (tid 0 for the single-shot run path).
func (l *lab) traceDetect(tid int, prov *provider, cutAt time.Time) {
	l.emit(telemetry.Span{
		Name: spanDetect, Cat: "pipeline", TID: tid,
		Start: l.vt(cutAt), Dur: l.clk.Now().Sub(cutAt), Peer: prov.name,
	})
}

// traceCtlNotified marks the controller reacting to a failure: the
// engine's Listing-2 retarget ran, rewriting n rules.
func (l *lab) traceCtlNotified(prov *provider, n int) {
	now := l.vt(l.clk.Now())
	l.emit(telemetry.Span{
		Name: spanCtlNotified, Cat: "pipeline", TID: 0,
		Start: now, Peer: prov.name,
	})
	l.emit(telemetry.Span{
		Name: spanRulesComputed, Cat: "pipeline", TID: 0,
		Start: now, Peer: prov.name, N: n,
	})
}

// traceChurnFilter marks one ingest batch through the supercharger: in
// updates arrived, out survived the churn filter toward the router.
func (l *lab) traceChurnFilter(prov *provider, in, out int) {
	l.emit(telemetry.Span{
		Name: spanChurnFilter, Cat: "pipeline", TID: 0,
		Start: l.vt(l.clk.Now()), Peer: prov.name, N: in, Out: out,
	})
}

// traceRuleInstall spans one switch-rule push: FLOW_MOD issued now,
// rule active after the controller-react + programming latency.
func (l *lab) traceRuleInstall(dur time.Duration) {
	l.emit(telemetry.Span{
		Name: spanRuleInstall, Cat: "pipeline", TID: 0,
		Start: l.vt(l.clk.Now()), Dur: dur,
	})
}

// traceControllerCost spans the controller's processing tax: the
// centralization-economics latency between a batch arriving (or a failure
// being detected) and the rules/updates leaving the controller.
func (l *lab) traceControllerCost(tax time.Duration) {
	l.emit(telemetry.Span{
		Name: spanCtlCost, Cat: "pipeline", TID: 0,
		Start: l.vt(l.clk.Now()), Dur: tax,
	})
}

// traceTakeover spans a controller replica takeover: primary killed now,
// the standby (one of n remaining replicas) is in charge after dur.
func (l *lab) traceTakeover(dur time.Duration, n int) {
	l.emit(telemetry.Span{
		Name: spanTakeover, Cat: "pipeline", TID: 0,
		Start: l.vt(l.clk.Now()), Dur: dur, N: n,
	})
}

// traceRouterCtl spans the router's control-plane digestion window:
// batch handed over at start, FIB walk begins at the end of the span.
func (l *lab) traceRouterCtl(start time.Time) {
	l.emit(telemetry.Span{
		Name: spanRouterCtl, Cat: "pipeline", TID: 0,
		Start: l.vt(start), Dur: l.clk.Now().Sub(start),
	})
}

// traceConverge records one recovered flow's blackout as a span whose
// duration IS the reported convergence: it starts at the last probe
// delivered before the blackout and lasts the quantized gap, so the
// trace reconstructs the report's numbers exactly.
func (l *lab) traceConverge(tid int, pr *probe, o outage, conv time.Duration) {
	if l.cfg.Trace == nil {
		return
	}
	iv := l.cfg.ProbeInterval
	lastBefore := alignDown(o.start.Sub(l.epoch)-pr.phase, iv) + pr.phase
	l.emit(telemetry.Span{
		Name: spanConverged, Cat: "pipeline", TID: tid,
		Start: lastBefore, Dur: conv, Prefix: pr.prefix.String(),
	})
}

// --- metrics ---

// simMetrics is the lab's registry-backed instrument bundle.
type simMetrics struct {
	runs        *telemetry.Counter
	events      *telemetry.Counter
	fibWrites   *telemetry.Counter
	convergence *telemetry.Histogram
}

// wireMetrics registers the lab's series. Called once per lab; a nil
// registry leaves everything nil (disabled). The processor/engine
// bundles are wired separately (wireCoreMetrics) because they must be in
// place before setup-time feed ingest, which wireMetrics postdates.
func (l *lab) wireMetrics() {
	reg := l.cfg.Telemetry
	if reg == nil {
		return
	}
	l.metrics = &simMetrics{
		runs: reg.Counter("supercharged_sim_runs_total",
			"Lab runs executed."),
		events: reg.Counter("supercharged_sim_events_total",
			"Timeline events applied."),
		fibWrites: reg.Counter("supercharged_sim_fib_writes_total",
			"Per-entry FIB installs after steady state."),
		convergence: reg.Histogram("supercharged_sim_flow_convergence_seconds",
			"Per-flow quantized blackout durations (the paper's Fig. 5 samples).", nil),
	}
}

// wireCoreMetrics attaches the processor/engine bundles. setupSupercharged
// calls it right after constructing both, so the counters see the
// setup-phase feed ingest too — not just post-steady-state traffic. Only
// the first supercharged router is instrumented: the registry rejects
// duplicate series names, and one router's counters characterize the
// deployment.
func (l *lab) wireCoreMetrics(r *router) {
	reg := l.cfg.Telemetry
	if reg == nil || r.proc == nil || l.coreWired {
		return
	}
	l.coreWired = true
	r.proc.Metrics = core.NewProcMetrics(reg)
	r.engine.Metrics = core.NewEngineMetrics(reg)
}

func (m *simMetrics) runDone(fibWrites uint64) {
	if m != nil {
		m.runs.Inc()
		m.fibWrites.Add(fibWrites)
	}
}

func (m *simMetrics) eventApplied() {
	if m != nil {
		m.events.Inc()
	}
}

func (m *simMetrics) observeConvergence(d time.Duration) {
	if m != nil {
		m.convergence.ObserveDuration(d)
	}
}
