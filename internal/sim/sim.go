// Package sim is the discrete-event convergence lab: the Fig. 4 topology
// (edge router R1 behind an SDN switch, primary provider R2, backup
// provider R3, FPGA-style traffic probes) driven on a virtual clock so the
// full 1k→500k-prefix sweep of Fig. 5 runs deterministically in CPU
// milliseconds instead of lab hours.
//
// The control-plane code under test is the real thing — core.Processor
// (Listing 1), core.Engine (Listing 2), bgp.RIB/decision process,
// dataplane.FlatFIB and dataplane.FlowTable. Only the physical elements
// are modeled by timing parameters: BFD detection, per-FIB-entry install
// cost, switch rule programming and controller reaction.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/core"
	"supercharged/internal/dataplane"
	"supercharged/internal/feed"
	"supercharged/internal/packet"
	"supercharged/internal/telemetry"
)

// Mode selects the router under test.
type Mode int

const (
	// Standalone is the vanilla router: flat FIB, entry-by-entry
	// convergence (the paper's non-supercharged baseline).
	Standalone Mode = iota
	// Supercharged puts the controller and switch in front of the same
	// router.
	Supercharged
)

func (m Mode) String() string {
	if m == Supercharged {
		return "supercharged"
	}
	return "non-supercharged"
}

// Config parameterizes one lab run. Zero fields take the calibrated
// defaults in DefaultConfig.
type Config struct {
	Mode        Mode
	NumPrefixes int
	NumFlows    int
	Seed        int64
	GroupSize   int // backup-group size k (default 2)
	AllocMode   core.AllocMode

	// --- timing model (see DESIGN.md §5 for the calibration) ---

	// PerEntry is the router's per-FIB-entry install cost.
	PerEntry time.Duration
	// BFDInterval and BFDMult give the failure detection time.
	BFDInterval time.Duration
	BFDMult     int
	// RouterCtl is the router's control-plane time between detection and
	// the start of the FIB walk (BGP withdraw processing, decision, ARP).
	RouterCtl time.Duration
	// RouterCtlJitter adds a per-run uniform extra in [0, jitter) —
	// run-to-run variance of the router's control plane; this reproduces
	// the spread between the paper's 375 ms best case and 0.9 s worst
	// case at 1k prefixes.
	RouterCtlJitter time.Duration
	// ControllerReact is BFD-expiry→FLOW_MOD-sent latency at the
	// controller.
	ControllerReact time.Duration
	// FlowModLatency is the switch's rule programming time.
	FlowModLatency time.Duration
	// ProbeInterval is the per-flow inter-packet gap of the traffic
	// source (the paper's FPGA: ~14k pkt/s per flow ≈ 70 µs), which is
	// also the measurement quantum.
	ProbeInterval time.Duration
	// FailAt is when the R2 link is cut (after setup).
	FailAt time.Duration
	// SecondFailure, if positive, also cuts the backup R3 at
	// FailAt+SecondFailure (ablation A2; meaningful with GroupSize ≥ 3
	// and a third provider).
	SecondFailure time.Duration
	// Providers is the number of provider peers (default 2: R2 primary,
	// R3 backup; A2 uses 3).
	Providers int

	// Cost prices the controller's work in virtual time (the
	// centralization-economics model). The zero value is the free
	// controller of the original experiments: no tax anywhere, and the
	// event schedule is byte-identical to the pre-cost model.
	Cost ControllerCost

	// Source is the time source the lab runs on. Nil — the default —
	// builds a fresh virtual discrete-event source starting at the Unix
	// epoch: the deterministic lab. A clock.Wall source runs the same
	// engine paced by the system clock (the virtual-vs-real equivalence
	// tests do exactly that); the source must serialize callbacks on the
	// driving goroutine, as Virtual and Wall do — the lab's state is
	// unsynchronized.
	Source clock.Source `json:"-"`

	// Trace, if set, records source-time spans of the convergence
	// pipeline (see internal/telemetry and sim's telemetry.go). Nil — the
	// default — disables tracing entirely.
	Trace *telemetry.Trace `json:"-"`
	// Telemetry, if set, registers the run's metric series on the
	// registry. Nil disables every metric hook.
	Telemetry *telemetry.Registry `json:"-"`
}

// DefaultConfig returns the calibrated configuration for n prefixes.
func DefaultConfig(mode Mode, n int) Config {
	return Config{
		Mode:            mode,
		NumPrefixes:     n,
		NumFlows:        100,
		Seed:            1,
		GroupSize:       2,
		PerEntry:        280 * time.Microsecond,
		BFDInterval:     30 * time.Millisecond,
		BFDMult:         3,
		RouterCtl:       285 * time.Millisecond,
		RouterCtlJitter: 300 * time.Millisecond,
		ControllerReact: 15 * time.Millisecond,
		FlowModLatency:  25 * time.Millisecond,
		ProbeInterval:   70 * time.Microsecond,
		FailAt:          time.Second,
		Providers:       2,
	}
}

// ControllerCost models the controller's processing latency: the tax a
// centralized reaction pays between failure-detected and rules-computed
// (Sermpezis & Dimitropoulos, "Can SDN Accelerate BGP Convergence?").
// Every field adds virtual time on the supercharged path only; vanilla
// routers never consult it.
type ControllerCost struct {
	// Base is the fixed per-reaction latency: queueing, scheduling and
	// decision logic at the controller (the paper's E3 reports ~125 ms
	// p99 reaction under load for the prototype).
	Base time.Duration
	// PerUpdate is the per-BGP-UPDATE processing cost, paid on every
	// ingest batch the controller relays (Base + N×PerUpdate).
	PerUpdate time.Duration
	// PerRule is the extra per-FLOW_MOD cost on top of the switch's own
	// programming latency (FlowModLatency).
	PerRule time.Duration
}

// benchPerUpdateNS mirrors the committed BENCH_micro.json churn-filter
// measurement (proc/churn-filter ns/op, ~252 ns on the reference host).
// A calibration test parses the snapshot and fails when the two drift
// apart, so the default cost model stays anchored to the measured code.
const benchPerUpdateNS = 252

// DefaultControllerCost is the calibrated cost model: Base from the
// paper's E3 p99 reaction latency, PerUpdate from the committed
// churn-filter micro-benchmark, PerRule a conservative FLOW_MOD
// serialization allowance.
func DefaultControllerCost() ControllerCost {
	return ControllerCost{
		Base:      125 * time.Millisecond,
		PerUpdate: benchPerUpdateNS * time.Nanosecond,
		PerRule:   500 * time.Microsecond,
	}
}

// FlowResult is one probed flow's measured convergence.
type FlowResult struct {
	Prefix      netip.Prefix
	Position    int // FIB walk position of the covering entry
	Convergence time.Duration
}

// Result is one lab run.
type Result struct {
	Mode        Mode
	NumPrefixes int
	// Flows holds the per-flow convergence measurements (the paper's 100
	// points per run).
	Flows []FlowResult
	// DetectAt is when BFD declared the failure (after FailAt).
	DetectAt time.Duration
	// DataPlaneDone is when the last probed flow recovered.
	DataPlaneDone time.Duration
	// ControlPlaneDone is when the router's FIB queue drained.
	ControlPlaneDone time.Duration
	// Groups is the number of backup-groups allocated (supercharged).
	Groups int
	// RuleRewrites is the number of switch rules rewritten on failure.
	RuleRewrites int
}

// Durations returns the per-flow convergence samples.
func (r *Result) Durations() []time.Duration {
	out := make([]time.Duration, len(r.Flows))
	for i, f := range r.Flows {
		out[i] = f.Convergence
	}
	return out
}

// provider is one upstream router in the lab.
type provider struct {
	name string
	nh   netip.Addr
	mac  packet.MAC
	port uint16
	as   uint32
	meta bgp.PeerMeta
	up   bool
	// session is the BGP session liveness: true while established. A hard
	// session reset (EventSessionReset without graceful restart) drops it
	// with the link still up — the peer's forwarding state is gone until
	// the session re-establishes and the feed replays.
	session bool

	// feedN caps the provider's advertised table and feedOff rotates the
	// window start (0 = full table from index 0); feed is the rendered
	// view, assigned once the table is generated.
	feedN   int
	feedOff int
	feed    *feed.Table
	// withdrawn marks prefixes the peer has withdrawn while its link stays
	// up (partial-withdraw events): the destination is unreachable via
	// this peer even though the session is alive. withdrawnN is the
	// high-water head count of the withdrawn chunk.
	withdrawn  map[netip.Prefix]bool
	withdrawnN int
	// detect is the pending failure-detection timer (BFD or hold timer),
	// cancelled if the link comes back before it fires.
	detect clock.Timer
}

// forwarding reports whether packets handed to this provider reach their
// destinations: the link is up and the peer's forwarding state exists
// (not flushed by a non-graceful session restart).
func (p *provider) forwarding() bool { return p.up && p.session }

// Run executes one convergence experiment and returns the measurements.
// The context cancels the run between simulator events; a cancelled run
// returns ctx's error and no partial result.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.NumPrefixes <= 0 {
		return nil, fmt.Errorf("sim: NumPrefixes must be positive")
	}
	cfg = cfg.withDefaults()
	if cfg.Providers < 2 {
		return nil, fmt.Errorf("sim: need at least 2 providers")
	}

	lab := newLab(cfg, nil, nil)
	return lab.run(ctx)
}

// withDefaults fills zero fields from the calibrated DefaultConfig.
func (cfg Config) withDefaults() Config {
	def := DefaultConfig(cfg.Mode, cfg.NumPrefixes)
	if cfg.NumFlows == 0 {
		cfg.NumFlows = def.NumFlows
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = def.GroupSize
	}
	if cfg.PerEntry == 0 {
		cfg.PerEntry = def.PerEntry
	}
	if cfg.BFDInterval == 0 {
		cfg.BFDInterval = def.BFDInterval
	}
	if cfg.BFDMult == 0 {
		cfg.BFDMult = def.BFDMult
	}
	if cfg.RouterCtl == 0 {
		cfg.RouterCtl = def.RouterCtl
	}
	if cfg.RouterCtlJitter == 0 {
		cfg.RouterCtlJitter = def.RouterCtlJitter
	}
	if cfg.ControllerReact == 0 {
		cfg.ControllerReact = def.ControllerReact
	}
	if cfg.FlowModLatency == 0 {
		cfg.FlowModLatency = def.FlowModLatency
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = def.ProbeInterval
	}
	if cfg.FailAt == 0 {
		cfg.FailAt = def.FailAt
	}
	if cfg.Providers == 0 {
		cfg.Providers = def.Providers
	}
	return cfg
}

type lab struct {
	cfg Config
	// clk is the run's time source; every timer and timestamp in the lab
	// goes through it. epoch is the source's time when the lab was built
	// — the origin all reported offsets and trace spans are relative to
	// (Unix(0,0) for the default virtual source).
	clk   clock.Source
	epoch time.Time
	rng   *rand.Rand
	table *feed.Table

	providers []*provider

	// routers are the edge routers under test: one in the classic
	// full-deployment labs, N in partial-deployment timelines where
	// supercharged and vanilla routers share the providers and probes.
	routers []*router

	targets map[packet.MAC]*provider // real MAC -> provider

	// Probes.
	probes map[netip.Prefix]*probe

	failAbs time.Time
	result  *Result

	// Timeline state (nil/zero outside RunTimeline).
	tcfg          *TimelineConfig
	events        []*eventState
	base          time.Time
	ctrlDownUntil time.Time

	// Replica failover state: replicasLeft counts live controller
	// replicas; once the last one dies ctrlDead sticks and every
	// controller-mediated reaction is dropped (installed rules keep
	// forwarding — fail-standalone). pending tracks in-flight FLOW_MODs
	// in issue order so a takeover can replay or drop them
	// deterministically.
	replicasLeft int
	ctrlDead     bool
	pending      []*pendingRule

	// Telemetry wiring (zero when disabled; see telemetry.go).
	tracePID  int
	metrics   *simMetrics
	coreWired bool
}

// router is one edge router under test. Partial deployment mixes
// supercharged and vanilla routers in a single run; each keeps its own
// FIB, control-plane FIFO and jitter stream, while the provider links,
// the probe set and the (single, shared) controller live on the lab.
type router struct {
	name         string
	idx          int
	supercharged bool
	// rng is the router's control-plane jitter stream. Router 0 shares
	// the lab's stream, so a single-router run draws the exact sequence
	// the pre-refactor lab drew — byte-identical results.
	rng *rand.Rand

	fib       *dataplane.FlatFIB
	routerRIB *bgp.RIB // vanilla: the router's own BGP view

	// Supercharger state (nil on vanilla routers).
	proc   *core.Processor
	engine *core.Engine
	flows  *dataplane.FlowTable // switch table in front of this router
	arp    *core.ARPResponder

	fibBase uint64
	// routerCtlFIFO is the in-order floor of the router's control-plane
	// channel: no batch may be applied before one emitted earlier.
	routerCtlFIFO time.Time
}

// pendingRule is one FLOW_MOD in flight between the controller and the
// switch, tracked so replica failover can replay (durable) or drop
// (non-durable) the batch.
type pendingRule struct {
	at    time.Time // when the rule lands on the original schedule
	timer clock.Timer
	fire  func()
}

// outage is one contiguous blackout window of a probed flow.
type outage struct {
	start, end time.Time
	ended      bool
}

type probe struct {
	prefix  netip.Prefix
	rtr     *router       // the edge router this flow enters through
	phase   time.Duration // probe phase offset in [0, ProbeInterval)
	working bool
	// outages records every blackout window in chronological order; the
	// last entry is open while the flow is down.
	outages []outage
}

// open starts a new outage window unless one is already open.
func (p *probe) open(at time.Time) {
	if n := len(p.outages); n > 0 && !p.outages[n-1].ended {
		return
	}
	p.outages = append(p.outages, outage{start: at})
}

// closeAt ends the open outage window, if any.
func (p *probe) closeAt(at time.Time) {
	if n := len(p.outages); n > 0 && !p.outages[n-1].ended {
		p.outages[n-1].end = at
		p.outages[n-1].ended = true
	}
}

// newLab builds the lab. peers parameterizes the provider topology; nil
// synthesizes cfg.Providers identical full-feed peers (R2 preferred, then
// descending), the paper's fixed setup. routers parameterizes the
// deployment; nil builds the classic single edge router whose class
// follows cfg.Mode.
func newLab(cfg Config, peers []PeerSpec, routers []RouterSpec) *lab {
	src := cfg.Source
	if src == nil {
		src = clock.NewVirtualAtZero()
	}
	l := &lab{
		cfg:     cfg,
		clk:     src,
		epoch:   src.Now(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		probes:  make(map[netip.Prefix]*probe),
		targets: make(map[packet.MAC]*provider),
		result:  &Result{Mode: cfg.Mode, NumPrefixes: cfg.NumPrefixes},
	}
	if len(routers) == 0 {
		routers = []RouterSpec{{Supercharged: cfg.Mode == Supercharged}}
	}
	for i, spec := range routers {
		r := &router{name: spec.Name, idx: i, supercharged: spec.Supercharged, rng: l.rng}
		if r.name == "" {
			if len(routers) == 1 {
				r.name = "R1"
			} else {
				r.name = fmt.Sprintf("E%d", i+1)
			}
		}
		if i > 0 {
			// Routers after the first get their own jitter stream; the
			// large odd stride keeps per-router sequences disjoint for
			// nearby seeds.
			r.rng = rand.New(rand.NewSource(cfg.Seed + int64(i)*1_000_003))
		}
		l.routers = append(l.routers, r)
	}
	if peers == nil {
		for i := 0; i < cfg.Providers; i++ {
			peers = append(peers, PeerSpec{})
		}
	}
	// Providers: R2 (primary, preferred via weight), R3, R4...
	for i, spec := range peers {
		p := &provider{
			name:    spec.Name,
			nh:      netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}),
			mac:     packet.MAC{0x01 + byte(i)*0x11, 0xaa, 0, 0, 0, byte(i + 1)},
			port:    uint16(i + 2), // port 1 is the router
			as:      uint32(65002 + i),
			up:      true,
			session: true,
			feedN:   spec.Prefixes,
			feedOff: spec.Offset,
		}
		if p.name == "" {
			p.name = fmt.Sprintf("R%d", i+2)
		}
		weight := spec.Weight
		if weight == 0 {
			// Highest weight on R2, decreasing after: the paper's "R1 is
			// configured to prefer R2 for all destinations". Anchored high
			// so the auto weights stay positive and distinct for any
			// number of peers.
			weight = uint32(1_000_000 - i)
		}
		p.meta = bgp.PeerMeta{Addr: p.nh, AS: p.as, ID: p.nh, Weight: weight}
		l.providers = append(l.providers, p)
		l.targets[p.mac] = p
	}
	return l
}

// assignFeeds renders each provider's advertised table view: the full
// table, a head-anchored cap, or a rotated circular window.
func (l *lab) assignFeeds() {
	for _, prov := range l.providers {
		switch {
		case prov.feedOff > 0:
			n := prov.feedN
			if n <= 0 || n > l.table.Len() {
				n = l.table.Len()
			}
			prov.feed = l.table.Window(prov.feedOff, n)
		case prov.feedN > 0 && prov.feedN < l.table.Len():
			prov.feed = l.table.Head(prov.feedN)
		default:
			prov.feed = l.table
		}
	}
}

func (l *lab) run(ctx context.Context) (*Result, error) {
	cfg := l.cfg
	l.traceStart()
	l.table = feed.Generate(feed.Config{N: cfg.NumPrefixes, Seed: cfg.Seed})
	l.assignFeeds()

	if err := l.setup(ctx); err != nil {
		return nil, err
	}
	l.wireMetrics()
	l.setupProbes()
	l.traceSetup()

	// Schedule the failure relative to the post-setup clock (setup may
	// have consumed virtual time draining rule installs).
	failAbs := l.clk.Now().Add(cfg.FailAt)
	l.failAbs = failAbs
	l.clk.AfterFunc(cfg.FailAt, func() { l.failProvider(l.providers[0]) })
	if cfg.SecondFailure > 0 && len(l.providers) > 2 {
		l.clk.AfterFunc(cfg.FailAt+cfg.SecondFailure, func() { l.failProvider(l.providers[1]) })
	}

	// Drive the event loop dry. The FIB walk dominates: bound events
	// generously.
	if _, err := l.clk.Drive(ctx, 50_000_000); err != nil {
		return nil, fmt.Errorf("sim: run cancelled: %w", err)
	}

	// Harvest measurements.
	res := l.result
	r0 := l.routers[0]
	res.ControlPlaneDone = l.clk.Now().Sub(failAbs)
	res.Groups = 0
	if r0.proc != nil {
		res.Groups = r0.proc.Groups().Len()
		res.RuleRewrites = int(r0.engine.Rewrites())
	}
	for _, pr := range l.sortedProbes() {
		if len(pr.outages) == 0 || !pr.outages[0].ended {
			return nil, fmt.Errorf("sim: flow %v never recovered", pr.prefix)
		}
		// Only the first blackout anchors the single-failure measurement
		// (a later failure must not shift an already-measured flow).
		first := pr.outages[0]
		conv := l.quantizedGap(pr, first)
		pos, _ := pr.rtr.fib.Position(pr.prefix)
		res.Flows = append(res.Flows, FlowResult{Prefix: pr.prefix, Position: pos, Convergence: conv})
		l.traceConverge(0, pr, first, conv)
		l.metrics.observeConvergence(conv)
		if d := first.end.Sub(failAbs); d > res.DataPlaneDone {
			res.DataPlaneDone = d
		}
	}
	l.metrics.runDone(r0.fib.Applied())
	return res, nil
}

// quantizedGap reproduces the FPGA methodology: the maximum inter-packet
// gap seen by the flow across an outage, i.e. first probe delivered after
// recovery minus last probe delivered before the blackout.
func (l *lab) quantizedGap(pr *probe, o outage) time.Duration {
	iv := l.cfg.ProbeInterval
	// Last probe at or before the blackout started.
	lastBefore := alignDown(o.start.Sub(l.epoch)-pr.phase, iv) + pr.phase
	// First probe at or after recovery.
	firstAfter := alignUp(o.end.Sub(l.epoch)-pr.phase, iv) + pr.phase
	return firstAfter - lastBefore
}

func alignDown(d, q time.Duration) time.Duration {
	if q <= 0 {
		return d
	}
	return d - d%q
}

func alignUp(d, q time.Duration) time.Duration {
	if q <= 0 {
		return d
	}
	if r := d % q; r != 0 {
		return d + q - r
	}
	return d
}

func (l *lab) sortedProbes() []*probe {
	out := make([]*probe, 0, len(l.probes))
	for _, p := range l.probes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].prefix.String() < out[j].prefix.String() })
	return out
}
