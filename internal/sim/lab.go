package sim

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/core"
	"supercharged/internal/dataplane"
	"supercharged/internal/packet"
)

// routerPortOnSwitch is the switch port facing R1.
const routerPortOnSwitch uint16 = 1

// setup populates the pre-failure steady state for every router: feeds
// loaded, best paths selected, FIB installed, and — on supercharged
// routers — backup-groups allocated, VNHs announced, ARP resolved and
// switch rules installed. Setup is not part of the measured experiment,
// so table loads are synchronous.
func (l *lab) setup(ctx context.Context) error {
	cfg := l.cfg
	if cfg.Mode != Standalone && cfg.Mode != Supercharged {
		return fmt.Errorf("sim: unknown mode %d", cfg.Mode)
	}
	for _, r := range l.routers {
		r.fib = dataplane.NewFlatFIBNoLPM(l.clk, cfg.PerEntry)
		r.fib.Reserve(cfg.NumPrefixes)
		var err error
		if r.supercharged {
			err = l.setupSupercharged(ctx, r)
		} else {
			err = l.setupStandalone(r)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// setupStandalone loads both provider feeds straight into the router's own
// RIB and installs the flat FIB: every prefix resolves to R2's MAC. Feeds
// stream one UPDATE at a time (feed.Table.StreamUpdates) and the change
// buffer is reused across messages, so a 1M-prefix load never holds a
// per-peer rendered table in memory.
func (l *lab) setupStandalone(r *router) error {
	r.routerRIB = bgp.NewRIBSized(l.cfg.NumPrefixes)
	codec := bgp.Codec{ASN4: true}
	ops := make([]dataplane.FIBOp, 0, l.cfg.NumPrefixes)
	var changes []bgp.Change
	for _, prov := range l.providers {
		err := prov.feed.StreamUpdates(prov.as, prov.nh, codec, func(u *bgp.Update) error {
			changes = r.routerRIB.UpdateInto(prov.meta, u, changes[:0])
			for _, ch := range changes {
				// Best-path selection; install/replace the FIB entry.
				best := ch.New[0]
				target, ok := l.providerByNH(best.NextHop())
				if !ok {
					return fmt.Errorf("sim: unknown next-hop %v", best.NextHop())
				}
				ops = append(ops, dataplane.FIBOp{
					Prefix: ch.Prefix,
					NH:     dataplane.L2NH{MAC: target.mac, Port: int(routerPortOnSwitch)},
				})
			}
			return nil
		})
		if err != nil {
			return err
		}
		l.traceFeedIngest(prov, prov.feed.Len())
	}
	r.fib.LoadSync(ops)
	r.fib.OnApplied = func(op dataplane.FIBOp, at time.Time) { l.onFIBApplied(r, op, at) }
	return nil
}

// setupSupercharged interposes the controller: feeds flow through
// core.Processor, the router receives VNH announcements, resolves them via
// the ARP responder and installs VMAC-tagged FIB entries; the engine
// installs one switch rule per backup-group.
func (l *lab) setupSupercharged(ctx context.Context, r *router) error {
	cfg := l.cfg
	pool := core.NewVNHPool(cfg.AllocMode)
	groups := core.NewGroupTable(pool)
	r.flows = dataplane.NewFlowTable()
	r.arp = core.NewARPResponder(groups)
	r.engine = core.NewEngine(groups, core.FlowPusherFunc(func(g core.Group, target core.PeerPort) error {
		return l.pushRule(r, g, target)
	}))
	for _, prov := range l.providers {
		r.engine.RegisterPeer(core.PeerPort{NH: prov.nh, MAC: prov.mac, Port: prov.port})
	}
	r.proc = core.NewProcessor(bgp.NewRIBSized(cfg.NumPrefixes), groups)
	r.proc.GroupSize = cfg.GroupSize
	r.proc.OnNewGroup = r.engine.InstallGroup
	r.proc.Reserve(cfg.NumPrefixes)
	l.wireCoreMetrics(r)

	codec := bgp.Codec{ASN4: true}
	ops := make([]dataplane.FIBOp, 0, cfg.NumPrefixes)
	for _, prov := range l.providers {
		err := prov.feed.StreamUpdates(prov.as, prov.nh, codec, func(u *bgp.Update) error {
			out, err := r.proc.Process(prov.meta, u)
			if err != nil {
				return err
			}
			ops = append(ops, l.routerApply(r, out)...)
			core.RecycleUpdates(out)
			return nil
		})
		if err != nil {
			return err
		}
		l.traceFeedIngest(prov, prov.feed.Len())
	}
	r.fib.LoadSync(ops)
	r.fib.OnApplied = func(op dataplane.FIBOp, at time.Time) { l.onFIBApplied(r, op, at) }
	// Setup-phase rule installs happen synchronously; drain them now so
	// they are in place before traffic starts.
	if _, err := l.clk.Drive(ctx, 1_000_000); err != nil {
		return fmt.Errorf("sim: setup cancelled: %w", err)
	}
	return nil
}

// routerApply models a supercharged router's control plane receiving
// UPDATEs from the controller: resolve the announced next-hop to a MAC
// (via ARP: VNH→VMAC, or a real peer's MAC) and produce FIB ops.
func (l *lab) routerApply(r *router, updates []*bgp.Update) []dataplane.FIBOp {
	var ops []dataplane.FIBOp
	for _, u := range updates {
		for _, w := range u.Withdrawn {
			ops = append(ops, dataplane.FIBOp{Prefix: w, Delete: true})
		}
		if u.Attrs == nil {
			continue
		}
		mac, ok := l.resolveNH(r, u.Attrs.NextHop)
		if !ok {
			continue // unresolvable next-hop: router keeps the route in RIB only
		}
		for _, p := range u.NLRI {
			ops = append(ops, dataplane.FIBOp{
				Prefix: p,
				NH:     dataplane.L2NH{MAC: mac, Port: int(routerPortOnSwitch)},
			})
		}
	}
	return ops
}

// resolveNH is the router's ARP step: virtual next-hops answered by the
// controller's responder, real peers by their own MAC.
func (l *lab) resolveNH(r *router, nh netip.Addr) (packet.MAC, bool) {
	if r.arp != nil {
		if vmac, ok := r.arp.Lookup(nh); ok {
			return vmac, true
		}
	}
	if prov, ok := l.providerByNH(nh); ok {
		return prov.mac, true
	}
	return packet.MAC{}, false
}

func (l *lab) providerByNH(nh netip.Addr) (*provider, bool) {
	for _, p := range l.providers {
		if p.nh == nh {
			return p, true
		}
	}
	return nil, false
}

// hasSupercharged reports whether any router is SDN-assisted — i.e.
// whether a controller exists in this deployment at all.
func (l *lab) hasSupercharged() bool {
	for _, r := range l.routers {
		if r.supercharged {
			return true
		}
	}
	return false
}

// mixedDeployment reports whether the run mixes supercharged and vanilla
// routers — the partial-deployment regime whose reports carry per-class
// breakdowns.
func (l *lab) mixedDeployment() bool {
	vanilla := false
	for _, r := range l.routers {
		if !r.supercharged {
			vanilla = true
		}
	}
	return vanilla && l.hasSupercharged()
}

// afterCost defers fn by the controller's processing tax. A zero tax runs
// fn inline — never through a zero-delay timer, which would reorder
// same-instant events and break byte-identity with the free-controller
// model.
func (l *lab) afterCost(tax time.Duration, fn func()) {
	if tax <= 0 {
		fn()
		return
	}
	l.traceControllerCost(tax)
	l.clk.AfterFunc(tax, fn)
}

// pushRule is the engine's FlowPusher: controller reaction plus switch
// programming latency (plus the per-rule cost tax), then the rule lands in
// the router's flow table. During setup (before traffic) the same path is
// used but the virtual clock drains it immediately. The in-flight window
// is tracked in l.pending so replica failover can replay or drop it.
func (l *lab) pushRule(r *router, g core.Group, target core.PeerPort) error {
	delay := l.cfg.ControllerReact + l.cfg.FlowModLatency + l.cfg.Cost.PerRule
	l.traceRuleInstall(delay)
	p := &pendingRule{at: l.clk.Now().Add(delay)}
	p.fire = func() {
		l.unpend(p)
		r.flows.Upsert(dataplane.Flow{
			Priority: 100,
			Match:    dataplane.MatchDstMAC(g.VMAC),
			Actions:  []dataplane.Action{dataplane.SetDstMAC(target.MAC), dataplane.Output(target.Port)},
		})
		l.reevaluateAllProbes()
	}
	p.timer = l.clk.AfterFunc(delay, p.fire)
	l.pending = append(l.pending, p)
	return nil
}

// unpend removes one in-flight FLOW_MOD from the pending list,
// preserving issue order for the remainder.
func (l *lab) unpend(p *pendingRule) {
	for i, q := range l.pending {
		if q == p {
			l.pending = append(l.pending[:i], l.pending[i+1:]...)
			return
		}
	}
}

// stopPending drops every in-flight FLOW_MOD — the dead primary's
// unacknowledged batch, lost with it.
func (l *lab) stopPending() {
	for _, p := range l.pending {
		p.timer.Stop()
	}
	l.pending = nil
}

// rearmPending replays the in-flight batch from the standby: each rule
// lands no earlier than the takeover completes and no earlier than its
// original schedule, in issue order.
func (l *lab) rearmPending(until time.Time) {
	for _, p := range l.pending {
		p.timer.Stop()
		at := p.at
		if at.Before(until) {
			at = until
		}
		p.timer = l.clk.AfterFunc(at.Sub(l.clk.Now()), p.fire)
	}
}

// setupProbes selects the probe prefixes (paper: 100 random prefixes
// including the first and last advertised) and initializes their state.
// With several routers the flows are dealt round-robin across them in
// sample order, so every class carries probes.
func (l *lab) setupProbes() {
	for i, pfx := range l.table.SamplePrefixes(l.cfg.NumFlows, l.cfg.Seed+7) {
		pr := &probe{
			prefix: pfx,
			rtr:    l.routers[i%len(l.routers)],
			phase:  time.Duration(l.rng.Int63n(int64(l.cfg.ProbeInterval))),
		}
		pr.working = l.pathWorks(pr.rtr, pfx)
		l.probes[pfx] = pr
	}
}

// pathWorks walks a probe's forwarding path through its router's real
// tables: router FIB → (switch flow table if VMAC-tagged) → provider link
// state.
func (l *lab) pathWorks(r *router, pfx netip.Prefix) bool {
	nh, ok := r.fib.Get(pfx)
	if !ok {
		return false
	}
	mac := nh.MAC
	if r.flows != nil {
		if prov, direct := l.targets[mac]; direct {
			return prov.forwarding() && !prov.withdrawn[pfx]
		}
		// VMAC: resolve through the switch table.
		eth := &packet.Ethernet{Dst: mac, Type: packet.EtherTypeIPv4}
		flow := r.flows.Lookup(routerPortOnSwitch, eth)
		if flow == nil {
			return false
		}
		for _, a := range flow.Actions {
			if a.Type == dataplane.ActionSetDstMAC {
				mac = a.MAC
			}
		}
	}
	prov, ok := l.targets[mac]
	return ok && prov.forwarding() && !prov.withdrawn[pfx]
}

// --- failure sequence ---

// failProvider cuts the link to prov and schedules the BFD detection and
// reaction pipeline (the single-shot Run path).
func (l *lab) failProvider(prov *provider) {
	cutAt := l.clk.Now()
	l.linkDown(prov)
	detect := time.Duration(l.cfg.BFDMult) * l.cfg.BFDInterval
	prov.detect = l.clk.AfterFunc(detect, func() {
		prov.detect = nil
		if l.result.DetectAt == 0 {
			l.result.DetectAt = l.clk.Now().Sub(l.failAbs)
		}
		l.traceDetect(0, prov, cutAt)
		l.reactToFailure(prov)
	})
}

// linkDown cuts the physical link: probes through this provider black-hole
// immediately, before any detection or reaction.
func (l *lab) linkDown(prov *provider) {
	prov.up = false
	now := l.clk.Now()
	for _, pr := range l.probes {
		if pr.working && !l.pathWorks(pr.rtr, pr.prefix) {
			pr.working = false
			pr.open(now)
		}
	}
}

// reactToFailure dispatches the post-detection convergence pipeline on
// every router: each converges through its own class's path.
func (l *lab) reactToFailure(prov *provider) {
	for _, r := range l.routers {
		if r.supercharged {
			l.superchargedReact(r, prov)
		} else {
			l.standaloneReact(r, prov)
		}
	}
}

// ctlDelay draws one router's control-plane delay: RouterCtl plus the
// per-reaction jitter from that router's own stream.
func (l *lab) ctlDelay(r *router) time.Duration {
	ctl := l.cfg.RouterCtl
	if l.cfg.RouterCtlJitter > 0 {
		ctl += time.Duration(r.rng.Int63n(int64(l.cfg.RouterCtlJitter)))
	}
	return ctl
}

// afterRouterCtl schedules fn after the router's control-plane delay,
// preserving FIFO order across batches: BGP messages ride one TCP
// session, so a batch emitted later must not overtake an earlier one,
// however their independent jitter draws land. Without this floor a
// withdraw burst could be applied after the re-announcement that
// superseded it, deleting routes forever (the fuzzer found exactly that
// interleaving).
func (l *lab) afterRouterCtl(r *router, fn func()) {
	at := l.clk.Now().Add(l.ctlDelay(r))
	if at.Before(r.routerCtlFIFO) {
		at = r.routerCtlFIFO
	}
	r.routerCtlFIFO = at
	l.clk.AfterFunc(at.Sub(l.clk.Now()), fn)
}

// controllerDelay is how long until the controller can react: zero
// normally, the remaining restart/takeover window while it is down.
func (l *lab) controllerDelay() time.Duration {
	if l.ctrlDownUntil.IsZero() {
		return 0
	}
	if d := l.ctrlDownUntil.Sub(l.clk.Now()); d > 0 {
		return d
	}
	return 0
}

// enqueueFIBChanges converts RIB changes into FIB ops and enqueues them in
// table-walk order — the hardware rewrites entries one by one.
func (l *lab) enqueueFIBChanges(r *router, changes []bgp.Change) {
	ops := make([]dataplane.FIBOp, 0, len(changes))
	for _, ch := range changes {
		if len(ch.New) == 0 {
			ops = append(ops, dataplane.FIBOp{Prefix: ch.Prefix, Delete: true})
			continue
		}
		target, ok := l.providerByNH(ch.New[0].NextHop())
		if !ok {
			continue
		}
		ops = append(ops, dataplane.FIBOp{
			Prefix: ch.Prefix,
			NH:     dataplane.L2NH{MAC: target.mac, Port: int(routerPortOnSwitch)},
		})
	}
	l.enqueueWalkOrder(r, ops)
}

// enqueueWalkOrder sorts ops by current FIB position (new prefixes first)
// and feeds them to the router's serialized per-entry updater.
func (l *lab) enqueueWalkOrder(r *router, ops []dataplane.FIBOp) {
	type pendingOp struct {
		pos int
		op  dataplane.FIBOp
	}
	pending := make([]pendingOp, 0, len(ops))
	for _, op := range ops {
		pos, _ := r.fib.Position(op.Prefix)
		pending = append(pending, pendingOp{pos, op})
	}
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].pos < pending[j].pos })
	sorted := make([]dataplane.FIBOp, len(pending))
	for i, p := range pending {
		sorted[i] = p.op
	}
	r.fib.Enqueue(sorted...)
}

// standaloneReact is the vanilla router's convergence: after its control
// plane digests the failure (RouterCtl + jitter), it rewrites every FIB
// entry one by one in table-walk order — the linear process of Fig. 5.
func (l *lab) standaloneReact(r *router, prov *provider) {
	start := l.clk.Now()
	l.afterRouterCtl(r, func() {
		l.traceRouterCtl(start)
		l.enqueueFIBChanges(r, r.routerRIB.RemovePeer(prov.nh))
	})
}

// superchargedReact is Listing 2: the controller rewrites the affected
// backup-group rules (constant count), restoring the data plane; the
// router's own BGP/FIB cleanup then proceeds in the background without
// traffic impact. The reaction pays the controller's Base cost tax, and
// is dropped entirely once the last replica is gone (installed rules keep
// forwarding — fail-standalone).
func (l *lab) superchargedReact(r *router, prov *provider) {
	if l.ctrlDead {
		return
	}
	l.clk.AfterFunc(l.controllerDelay(), func() {
		if l.ctrlDead {
			return
		}
		l.afterCost(l.cfg.Cost.Base, func() {
			n, err := r.engine.PeerDown(prov.nh)
			if err != nil {
				panic(fmt.Sprintf("sim: engine.PeerDown: %v", err))
			}
			l.traceCtlNotified(prov, n)
			// Control-plane cleanup toward the router (unmeasured but real):
			// the processor withdraws/re-announces, the router walks its FIB.
			updates, err := r.proc.PeerDown(prov.nh)
			if err != nil {
				panic(fmt.Sprintf("sim: processor.PeerDown: %v", err))
			}
			ctlStart := l.clk.Now()
			l.afterRouterCtl(r, func() {
				l.traceRouterCtl(ctlStart)
				l.enqueueWalkOrder(r, l.routerApply(r, updates))
				core.RecycleUpdates(updates)
			})
		})
	})
}

// onFIBApplied re-evaluates the touched prefix's probe when a router's
// serialized updater installs an entry — only the probes that enter
// through that router.
func (l *lab) onFIBApplied(r *router, op dataplane.FIBOp, at time.Time) {
	if pr, ok := l.probes[op.Prefix.Masked()]; ok && pr.rtr == r {
		l.reevaluateProbe(pr, at)
	}
}

func (l *lab) reevaluateAllProbes() {
	now := l.clk.Now()
	for _, pr := range l.probes {
		l.reevaluateProbe(pr, now)
	}
}

func (l *lab) reevaluateProbe(pr *probe, at time.Time) {
	works := l.pathWorks(pr.rtr, pr.prefix)
	switch {
	case !pr.working && works:
		pr.working = true
		pr.closeAt(at)
	case pr.working && !works:
		pr.working = false
		pr.open(at)
	}
}
