package sim

import (
	"context"
	"testing"
	"time"
)

// timelineConfig builds a 2-peer timeline base config for tests.
func timelineConfig(mode Mode, prefixes int, events ...TimelineEvent) TimelineConfig {
	return TimelineConfig{
		Config: Config{Mode: mode, NumPrefixes: prefixes, NumFlows: 50, Seed: 1},
		Peers:  []PeerSpec{{Name: "R2"}, {Name: "R3"}},
		Events: events,
	}
}

func runTL(t *testing.T, cfg TimelineConfig) *TimelineResult {
	t.Helper()
	res, err := RunTimeline(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunTimelineCancelled: a cancelled context stops the simulation
// between events and surfaces the context error instead of a partial
// (meaningless) measurement.
func TestRunTimelineCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead before the first event fires
	cfg := timelineConfig(Standalone, 2000,
		TimelineEvent{At: time.Second, Kind: EventPeerDown, Peer: "R2"})
	res, err := RunTimeline(ctx, cfg)
	if err == nil {
		t.Fatal("cancelled RunTimeline returned no error")
	}
	if res != nil {
		t.Fatalf("cancelled RunTimeline returned a partial result: %+v", res)
	}
	if got := context.Cause(ctx); got != context.Canceled {
		t.Fatalf("unexpected cause: %v", got)
	}
}

func TestTimelineValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*TimelineConfig)
	}{
		{"no peers", func(c *TimelineConfig) { c.Peers = nil }},
		{"one peer", func(c *TimelineConfig) { c.Peers = c.Peers[:1] }},
		{"duplicate peers", func(c *TimelineConfig) { c.Peers[1].Name = "R2" }},
		{"unknown kind", func(c *TimelineConfig) { c.Events[0].Kind = "quake" }},
		{"negative at", func(c *TimelineConfig) { c.Events[0].At = -1 }},
		{"unknown peer", func(c *TimelineConfig) { c.Events[0].Peer = "R7" }},
		{"missing peer", func(c *TimelineConfig) { c.Events[0].Peer = "" }},
		{"bad detection", func(c *TimelineConfig) { c.Events[0].Detection = "sixth-sense" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := timelineConfig(Supercharged, 1000,
				TimelineEvent{At: time.Second, Kind: EventPeerDown, Peer: "R2"})
			tc.mutate(&cfg)
			if _, err := RunTimeline(context.Background(), cfg); err == nil {
				t.Fatal("invalid timeline accepted")
			}
		})
	}
}

func TestTimelineSingleFailureMatchesRunShape(t *testing.T) {
	// One BFD-detected peer-down behaves like the classic Run experiment.
	res := runTL(t, timelineConfig(Supercharged, 2000,
		TimelineEvent{At: time.Second, Kind: EventPeerDown, Peer: "R2"}))
	ev := res.Events[0]
	if ev.DetectAt != 90*time.Millisecond {
		t.Fatalf("detect at %v, want 90ms (BFD)", ev.DetectAt)
	}
	if ev.Affected != 50 || ev.Recovered != 50 {
		t.Fatalf("affected %d recovered %d, want 50/50", ev.Affected, ev.Recovered)
	}
	for _, d := range ev.Convergence {
		if d > 160*time.Millisecond {
			t.Fatalf("supercharged convergence %v > 160ms", d)
		}
	}
	if res.RuleRewrites != 1 {
		t.Fatalf("rewrites %d, want 1", res.RuleRewrites)
	}
}

func TestTimelineHoldTimerDetection(t *testing.T) {
	cfg := timelineConfig(Supercharged, 1000,
		TimelineEvent{At: time.Second, Kind: EventPeerDown, Peer: "R2", Detection: DetectHoldTimer})
	cfg.HoldTimer = 9 * time.Second
	res := runTL(t, cfg)
	if res.Events[0].DetectAt != 9*time.Second {
		t.Fatalf("detect at %v, want 9s hold timer", res.Events[0].DetectAt)
	}
	for _, d := range res.Events[0].Convergence {
		if d < 9*time.Second {
			t.Fatalf("convergence %v below detection time", d)
		}
	}
}

func TestTimelineAbsorbedFlap(t *testing.T) {
	// Hold below BFD detection (90ms): the failure is never declared —
	// no detection, no rule rewrite, blackout ≈ hold in BOTH modes.
	for _, mode := range []Mode{Standalone, Supercharged} {
		res := runTL(t, timelineConfig(mode, 1000,
			TimelineEvent{At: time.Second, Kind: EventLinkFlap, Peer: "R2", Hold: 50 * time.Millisecond}))
		ev := res.Events[0]
		if ev.DetectAt != 0 {
			t.Fatalf("%v: absorbed flap was detected at %v", mode, ev.DetectAt)
		}
		if ev.Affected == 0 || ev.Unrecovered != 0 {
			t.Fatalf("%v: affected %d unrecovered %d", mode, ev.Affected, ev.Unrecovered)
		}
		for _, d := range ev.Convergence {
			if d < 50*time.Millisecond || d > 51*time.Millisecond {
				t.Fatalf("%v: absorbed-flap blackout %v, want ≈50ms", mode, d)
			}
		}
		if res.RuleRewrites != 0 {
			t.Fatalf("%v: %d rule rewrites for an absorbed flap", mode, res.RuleRewrites)
		}
	}
}

func TestTimelineDetectedFlapRecoversAndRestores(t *testing.T) {
	// A long flap fails over, then the peer comes back and re-announces:
	// the FIB must end up preferring the primary again with no second
	// outage.
	res := runTL(t, timelineConfig(Supercharged, 1000,
		TimelineEvent{At: time.Second, Kind: EventLinkFlap, Peer: "R2", Hold: 3 * time.Second}))
	ev := res.Events[0]
	if ev.DetectAt != 90*time.Millisecond {
		t.Fatalf("detect at %v", ev.DetectAt)
	}
	if ev.Affected != 50 || ev.Unrecovered != 0 {
		t.Fatalf("affected %d unrecovered %d", ev.Affected, ev.Unrecovered)
	}
	// Failover rewrite + restoration rewrite.
	if res.RuleRewrites != 2 {
		t.Fatalf("rewrites %d, want 2 (failover + restore)", res.RuleRewrites)
	}
}

func TestTimelineRuleLossResync(t *testing.T) {
	res := runTL(t, timelineConfig(Supercharged, 1000,
		TimelineEvent{At: time.Second, Kind: EventRuleLoss}))
	ev := res.Events[0]
	if ev.Affected != 50 || ev.Unrecovered != 0 {
		t.Fatalf("affected %d unrecovered %d, want 50/0", ev.Affected, ev.Unrecovered)
	}
	// Recovery = controller notices (15ms) + push (15+25ms): fast and flat.
	for _, d := range ev.Convergence {
		if d > 100*time.Millisecond {
			t.Fatalf("resync convergence %v > 100ms", d)
		}
	}
	// Standalone forwards router→switch ports directly: rule loss is
	// invisible.
	res = runTL(t, timelineConfig(Standalone, 1000,
		TimelineEvent{At: time.Second, Kind: EventRuleLoss}))
	if res.Events[0].Affected != 0 {
		t.Fatalf("standalone affected by rule loss: %d", res.Events[0].Affected)
	}
}

func TestTimelineControllerRestartDefersFailover(t *testing.T) {
	// Failure lands inside the restart window: convergence waits for the
	// controller to come back (~2.5s) instead of the usual ~150ms.
	res := runTL(t, timelineConfig(Supercharged, 1000,
		TimelineEvent{At: time.Second, Kind: EventControllerRestart, Hold: 3 * time.Second},
		TimelineEvent{At: 1500 * time.Millisecond, Kind: EventPeerDown, Peer: "R2"}))
	ev := res.Events[1]
	if ev.Affected != 50 || ev.Unrecovered != 0 {
		t.Fatalf("affected %d unrecovered %d", ev.Affected, ev.Unrecovered)
	}
	for _, d := range ev.Convergence {
		if d < 2*time.Second || d > 3*time.Second {
			t.Fatalf("deferred convergence %v, want ~2.5s (wait for controller)", d)
		}
	}
}

func TestTimelinePartialWithdrawIsPerEntryInBothModes(t *testing.T) {
	var maxes []time.Duration
	for _, mode := range []Mode{Standalone, Supercharged} {
		res := runTL(t, timelineConfig(mode, 2000,
			TimelineEvent{At: time.Second, Kind: EventPartialWithdraw, Peer: "R2", Fraction: 0.5}))
		ev := res.Events[0]
		if ev.Affected == 0 || ev.Unrecovered != 0 {
			t.Fatalf("%v: affected %d unrecovered %d", mode, ev.Affected, ev.Unrecovered)
		}
		var max time.Duration
		for _, d := range ev.Convergence {
			if d > max {
				max = d
			}
		}
		// Convergence is a control-plane FIB walk, well above the
		// supercharged fast path.
		if max < 200*time.Millisecond {
			t.Fatalf("%v: withdraw converged in %v — suspiciously fast", mode, max)
		}
		maxes = append(maxes, max)
	}
	// The supercharger must NOT accelerate per-prefix withdraws: both
	// modes pay a comparable per-entry walk (within 3x of each other).
	if maxes[1] > 3*maxes[0] || maxes[0] > 3*maxes[1] {
		t.Fatalf("withdraw asymmetry: standalone %v vs supercharged %v", maxes[0], maxes[1])
	}
}

func TestTimelineAsymmetricFeedsLeaveUncoveredPrefixesDown(t *testing.T) {
	// R3 advertises only the first half of the table: prefixes beyond it
	// have no backup, so after R2 dies some flows never recover.
	cfg := TimelineConfig{
		Config: Config{Mode: Supercharged, NumPrefixes: 2000, NumFlows: 50, Seed: 1},
		Peers:  []PeerSpec{{Name: "R2"}, {Name: "R3", Prefixes: 1000}},
		Events: []TimelineEvent{{At: time.Second, Kind: EventPeerDown, Peer: "R2"}},
	}
	res := runTL(t, cfg)
	ev := res.Events[0]
	if ev.Unrecovered == 0 {
		t.Fatal("no unrecovered flows despite half-size backup feed")
	}
	if ev.Recovered == 0 {
		t.Fatal("no recovered flows despite covered half")
	}
	if ev.Recovered+ev.Unrecovered != ev.Affected {
		t.Fatalf("accounting: %d + %d != %d", ev.Recovered, ev.Unrecovered, ev.Affected)
	}
}

func TestTimelineSessionBounceClearsPartialWithdraw(t *testing.T) {
	// Withdraw part of the table, then bounce the peer: the fresh session
	// replays the full feed, superseding the withdraw — no flow may stay
	// down for good.
	res := runTL(t, timelineConfig(Standalone, 1000,
		TimelineEvent{At: 1 * time.Second, Kind: EventPartialWithdraw, Peer: "R2", Fraction: 0.5},
		TimelineEvent{At: 5 * time.Second, Kind: EventPeerDown, Peer: "R2"},
		TimelineEvent{At: 10 * time.Second, Kind: EventPeerUp, Peer: "R2"}))
	for _, ev := range res.Events {
		if ev.Unrecovered != 0 {
			t.Fatalf("event %d (%s): %d flows never recovered after session bounce",
				ev.Index, ev.Kind, ev.Unrecovered)
		}
	}
}

func TestTimelineManyPeersFirstIsPrimary(t *testing.T) {
	// Auto weights must stay positive and descending for any peer count:
	// with 13 unweighted peers, killing the first must still black out
	// every flow (it was the primary for the whole table).
	peers := make([]PeerSpec, 13)
	cfg := TimelineConfig{
		Config: Config{Mode: Standalone, NumPrefixes: 1000, NumFlows: 20, Seed: 1},
		Peers:  peers,
		Events: []TimelineEvent{{At: time.Second, Kind: EventPeerDown, Peer: "R2"}},
	}
	res := runTL(t, cfg)
	if ev := res.Events[0]; ev.Affected != 20 || ev.Unrecovered != 0 {
		t.Fatalf("primary failure with 13 peers: affected %d unrecovered %d, want 20/0",
			ev.Affected, ev.Unrecovered)
	}
}

func TestTimelineDeterministic(t *testing.T) {
	cfg := timelineConfig(Standalone, 2000,
		TimelineEvent{At: time.Second, Kind: EventLinkFlap, Peer: "R2", Hold: 3 * time.Second},
		TimelineEvent{At: 6 * time.Second, Kind: EventPartialWithdraw, Peer: "R2", Fraction: 0.25})
	cfg.Seed = 99
	a := runTL(t, cfg)
	b := runTL(t, cfg)
	if len(a.Events) != len(b.Events) || a.FIBWrites != b.FIBWrites || a.Elapsed != b.Elapsed {
		t.Fatalf("top-level results differ: %+v vs %+v", a, b)
	}
	for i := range a.Events {
		ae, be := a.Events[i], b.Events[i]
		if ae.Affected != be.Affected || ae.Recovered != be.Recovered || ae.DetectAt != be.DetectAt {
			t.Fatalf("event %d differs: %+v vs %+v", i, ae, be)
		}
		if len(ae.Convergence) != len(be.Convergence) {
			t.Fatalf("event %d sample counts differ", i)
		}
		for j := range ae.Convergence {
			if ae.Convergence[j] != be.Convergence[j] {
				t.Fatalf("event %d sample %d: %v vs %v", i, j, ae.Convergence[j], be.Convergence[j])
			}
		}
	}
}
