package sim

import (
	"context"
	"fmt"
	"math"
	"net/netip"
	"strings"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/core"
	"supercharged/internal/dataplane"
	"supercharged/internal/feed"
)

// ModelVersion identifies the simulator's semantics and calibrated timing
// model for result caching (internal/results): it is hashed into every
// cached unit's key, so a change to it invalidates all previously stored
// measurements at once.
//
// The trailing component is generated (cmd/modelhash, CI-checked): the
// truncated hash of every non-test source in the packages that can shape
// a cached report (the simulator and its measurement-relevant dependency
// closure — see cmd/modelhash's hashedPackages). Nobody bumps this by
// hand anymore — any edit to
// those packages, semantic or "just" a hot-path rewrite, reshapes the
// version mechanically, because a stale cache is silently wrong and a
// forgotten bump used to be the way to get one. The sim-v3 prefix
// records the generation: third-generation model — batched feed template
// runs, interned attributes, the indexed RIB — on top of sim-v2's SRLG /
// graceful-restart / update-noise event model.
const ModelVersion = "sim-v3-" + modelSourcesHash

// EventKind enumerates the scripted timeline events the lab can replay.
// The string values are the declarative names used by scenario specs and
// their JSON encodings.
type EventKind string

const (
	// EventPeerDown cuts a provider's link; the failure is noticed via
	// the event's Detection and the mode's convergence pipeline runs.
	EventPeerDown EventKind = "peer-down"
	// EventPeerUp restores a provider's link; after SessionUp the BGP
	// session re-establishes and the peer re-announces its feed.
	EventPeerUp EventKind = "peer-up"
	// EventLinkFlap cuts the link and restores it Hold later. A Hold
	// shorter than the detection time is absorbed: the failure is never
	// declared and only the physical blackout is visible.
	EventLinkFlap EventKind = "link-flap"
	// EventPartialWithdraw has the peer withdraw the first
	// ceil(Fraction×feed) prefixes of its table while the link stays up —
	// the destinations become unreachable via that peer upstream.
	EventPartialWithdraw EventKind = "partial-withdraw"
	// EventBurstReannounce has the peer re-announce its withdrawn chunk
	// (or, with nothing withdrawn, replay its full feed) in one burst.
	EventBurstReannounce EventKind = "burst-reannounce"
	// EventRuleLoss wipes the switch flow table (switch reboot / eviction);
	// the controller resyncs it from the group table. Standalone mode has
	// no switch rules in the forwarding path, so the event is a no-op.
	EventRuleLoss EventKind = "rule-loss"
	// EventControllerRestart takes the controller down for Hold. Installed
	// switch rules keep forwarding (fail-standalone), but reactions to
	// failures detected during the window wait for the restart to finish.
	EventControllerRestart EventKind = "controller-restart"
	// EventSRLGDown cuts every link of a shared-risk link group (Peers) at
	// one instant — a conduit cut or power failure taking several
	// providers down together. Each member is detected via the event's
	// Detection path and reacted to independently; all resulting outages
	// are attributed to this one event.
	EventSRLGDown EventKind = "srlg-down"
	// EventSessionReset bounces the peer's BGP session while the physical
	// link stays up (the peer's BGP process restarted). The reset is
	// announced (TCP reset / NOTIFICATION), so there is no detection
	// latency. Without Graceful the peer's forwarding state dies for the
	// restart window (Hold, default SessionUp) and the re-established
	// session replays the full feed — full-table re-convergence churn.
	// With Graceful (RFC 4724) forwarding state is preserved across the
	// restart: zero blackout, and only the replay churn remains.
	EventSessionReset EventKind = "session-reset"
	// EventControllerFailover kills the current controller primary. With
	// replicas left (TimelineConfig.Replicas), a standby — holding the
	// same deterministic VNH allocation, as in examples/failover — takes
	// over after the takeover latency (Hold, else TimelineConfig.Takeover,
	// else 2 s); in-flight FLOW_MODs are replayed by the standby when
	// TimelineConfig.Durable, lost otherwise (the standby resyncs the
	// switch instead). Killing the last replica leaves the deployment
	// controller-less for the rest of the run: installed rules keep
	// forwarding (fail-standalone) but no new reaction ever happens.
	EventControllerFailover EventKind = "controller-failover"
	// EventUpdateNoise has the peer re-announce chunks of its feed in
	// 100 ms bursts at Rate updates/s for Hold — background churn during
	// failover, the control-plane load of the paper's E3 micro-benchmark.
	// The re-announcements change no routes: the naive standalone router
	// still rewrites one FIB entry per update, so a failure during the
	// noise queues behind the backlog, while the supercharged controller's
	// churn filter drops them before they reach the router.
	EventUpdateNoise EventKind = "update-noise"
)

// knownEventKinds lists every valid kind, in display order.
var knownEventKinds = []EventKind{
	EventPeerDown, EventPeerUp, EventLinkFlap, EventPartialWithdraw,
	EventBurstReannounce, EventRuleLoss, EventControllerRestart,
	EventControllerFailover, EventSRLGDown, EventSessionReset,
	EventUpdateNoise,
}

// KnownEventKinds returns the valid event kinds in display order.
func KnownEventKinds() []EventKind {
	return append([]EventKind(nil), knownEventKinds...)
}

// ValidEventKind reports whether k names a known event kind.
func ValidEventKind(k EventKind) bool {
	for _, known := range knownEventKinds {
		if k == known {
			return true
		}
	}
	return false
}

// Detection selects how a link failure is noticed.
type Detection string

const (
	// DetectBFD is the paper's fast path: BFDMult × BFDInterval.
	DetectBFD Detection = "bfd"
	// DetectHoldTimer is the slow path of a router without BFD: the BGP
	// hold timer (TimelineConfig.HoldTimer) must expire first.
	DetectHoldTimer Detection = "hold-timer"
)

// PeerSpec declares one provider peer of a timeline topology.
type PeerSpec struct {
	// Name identifies the peer in events ("" = R2, R3, ... by position).
	Name string
	// Weight is the router's preference for this peer (higher wins;
	// 0 = auto-descending by position, first peer primary).
	Weight uint32
	// Prefixes caps the peer's advertised feed (0 = the full table).
	Prefixes int
	// Offset rotates the peer's feed window: the peer advertises Prefixes
	// routes starting at table index Offset (modulo the table size),
	// wrapping around the end. Staggered windows give different prefixes
	// different covering peer sets — the path-set diversity that makes a
	// many-peer fabric allocate many distinct backup-groups.
	Offset int
}

// RouterSpec declares one edge router of a timeline deployment: partial
// deployment mixes SDN-assisted (Supercharged) and vanilla-BGP routers
// behind the same providers in a single run.
type RouterSpec struct {
	// Name identifies the router ("" = E1, E2, ... by position; a single
	// unnamed router keeps the classic name R1).
	Name string
	// Supercharged puts the controller and switch in front of this
	// router; false is the vanilla baseline class.
	Supercharged bool
}

// TimelineEvent is one scripted event, At after traffic steady-state.
type TimelineEvent struct {
	At   time.Duration
	Kind EventKind
	// Peer names the affected peer (required for peer/link events).
	Peer string
	// Peers names the members of a shared-risk link group (srlg-down
	// only, ≥ 2 distinct peers).
	Peers []string
	// Hold is the link-flap downtime, controller-restart duration,
	// session-reset re-establishment time (0 = SessionUp) or update-noise
	// duration.
	Hold time.Duration
	// Fraction is the partial-withdraw share of the peer's feed, (0, 1].
	Fraction float64
	// Detection selects the failure-detection path ("" = bfd).
	Detection Detection
	// Graceful preserves forwarding state across a session-reset
	// (RFC 4724 graceful restart).
	Graceful bool
	// Rate is the update-noise intensity in UPDATEs per second.
	Rate int
}

// TimelineConfig drives RunTimeline: the single-shot Config timing model
// (FailAt/SecondFailure/Providers are ignored) plus a parameterized peer
// topology and an event timeline.
type TimelineConfig struct {
	Config
	Peers  []PeerSpec
	Events []TimelineEvent
	// Table, when set, replaces the synthetic feed: the run announces
	// the first NumPrefixes routes of this table (an MRT-loaded real RIB,
	// typically) instead of feed.Generate output. The table must hold at
	// least NumPrefixes routes — a short table fails loudly rather than
	// silently shrinking the experiment.
	Table *feed.Table `json:"-"`
	// HoldTimer is the hold-timer detection latency (default 90 s, the
	// BGP default).
	HoldTimer time.Duration
	// SessionUp is the BGP re-establishment delay after a link returns
	// (default 1 s).
	SessionUp time.Duration

	// Routers declares the deployment (nil = the classic single router
	// whose class follows Config.Mode). Supercharged routers are only
	// valid in Supercharged mode; a run whose Routers mix classes
	// reports per-class convergence breakdowns.
	Routers []RouterSpec
	// Replicas is the controller replica count for controller-failover
	// events (0 = 1: a single primary, no standby).
	Replicas int
	// Takeover is the standby's default takeover latency after a
	// controller-failover (0 = 2 s; a failover event's Hold overrides).
	Takeover time.Duration
	// Durable replays in-flight FLOW_MODs from the standby after a
	// takeover; without it the dead primary's unacknowledged batch is
	// lost and the standby resyncs the switch instead.
	Durable bool
}

// eventState tracks one scheduled event through the run.
type eventState struct {
	ev       TimelineEvent
	idx      int
	absAt    time.Time
	detectAt time.Duration
}

// EventResult is one event's measured impact.
type EventResult struct {
	Index int           `json:"index"`
	Kind  EventKind     `json:"kind"`
	Peer  string        `json:"peer,omitempty"`
	At    time.Duration `json:"at"`
	// DetectAt is the detection latency after the event fired (0 when the
	// event needs no detection or the failure was never declared).
	DetectAt time.Duration `json:"detect_at"`
	// Affected counts probed flows that blacked out due to this event;
	// Recovered of those came back, Unrecovered never did.
	Affected    int `json:"affected"`
	Recovered   int `json:"recovered"`
	Unrecovered int `json:"unrecovered"`
	// Convergence holds the per-recovered-flow quantized blackout gaps.
	Convergence []time.Duration `json:"convergence,omitempty"`
	// SuperchargedClass / VanillaClass break the counts above down by
	// router class. Only populated on genuinely mixed (partial
	// deployment) runs, so full-deployment reports keep their exact
	// legacy encoding.
	SuperchargedClass *ClassResult `json:"supercharged_class,omitempty"`
	VanillaClass      *ClassResult `json:"vanilla_class,omitempty"`
}

// ClassResult is one router class's share of an event's impact in a
// mixed partial-deployment run.
type ClassResult struct {
	// Routers counts the deployment's routers of this class.
	Routers     int `json:"routers"`
	Affected    int `json:"affected"`
	Recovered   int `json:"recovered"`
	Unrecovered int `json:"unrecovered"`
	// Convergence holds this class's recovered-flow blackout gaps.
	Convergence []time.Duration `json:"convergence,omitempty"`
}

// RouterResult names one router of a multi-router deployment.
type RouterResult struct {
	Name         string `json:"name"`
	Supercharged bool   `json:"supercharged"`
}

// TimelineResult is one timeline run's measurements.
type TimelineResult struct {
	Mode        Mode     `json:"-"`
	NumPrefixes int      `json:"prefixes"`
	Peers       []string `json:"peers"`
	// Routers lists the deployment when it has more than one router;
	// classic single-router runs omit it (legacy encoding).
	Routers []RouterResult `json:"routers,omitempty"`
	Events  []EventResult  `json:"events"`
	// Groups and RuleRewrites mirror Result (supercharged mode only).
	Groups       int `json:"groups"`
	RuleRewrites int `json:"rule_rewrites"`
	// FIBWrites counts per-entry FIB installs after steady state — the
	// control-plane churn the events caused.
	FIBWrites uint64 `json:"fib_writes"`
	// Elapsed is the virtual time from steady state to quiescence.
	Elapsed time.Duration `json:"elapsed"`
}

// RunTimeline executes a scripted multi-event experiment and returns the
// per-event measurements. The context cancels the run between simulator
// events (a sweep budget expiring, ^C): a cancelled run returns ctx's
// error and no partial result, since a half-drained timeline measures
// nothing meaningful.
func RunTimeline(ctx context.Context, cfg TimelineConfig) (*TimelineResult, error) {
	if cfg.NumPrefixes <= 0 {
		return nil, fmt.Errorf("sim: NumPrefixes must be positive")
	}
	cfg.Config = cfg.Config.withDefaults()
	if cfg.HoldTimer == 0 {
		cfg.HoldTimer = 90 * time.Second
	}
	if cfg.SessionUp == 0 {
		cfg.SessionUp = time.Second
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := newLab(cfg.Config, cfg.Peers, cfg.Routers)
	l.tcfg = &cfg
	l.replicasLeft = cfg.Replicas
	if l.replicasLeft <= 0 {
		l.replicasLeft = 1
	}
	return l.runTimeline(ctx)
}

// Validate rejects malformed topologies and events up front, so a
// scripted scenario fails loudly instead of running a half-meaningful lab.
func (cfg *TimelineConfig) Validate() error {
	if len(cfg.Peers) < 2 {
		return fmt.Errorf("sim: timeline needs at least 2 peers, got %d", len(cfg.Peers))
	}
	names := make(map[string]bool, len(cfg.Peers))
	for i, p := range cfg.Peers {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("R%d", i+2)
		}
		if names[name] {
			return fmt.Errorf("sim: duplicate peer name %q", name)
		}
		names[name] = true
		if p.Prefixes < 0 {
			return fmt.Errorf("sim: peer %q: negative feed size %d", name, p.Prefixes)
		}
		if p.Offset < 0 {
			return fmt.Errorf("sim: peer %q: negative feed offset %d", name, p.Offset)
		}
	}
	rnames := make(map[string]bool, len(cfg.Routers))
	for i, r := range cfg.Routers {
		name := r.Name
		if name == "" {
			if len(cfg.Routers) == 1 {
				name = "R1"
			} else {
				name = fmt.Sprintf("E%d", i+1)
			}
		}
		if rnames[name] {
			return fmt.Errorf("sim: duplicate router name %q", name)
		}
		if names[name] {
			return fmt.Errorf("sim: router name %q collides with a peer", name)
		}
		rnames[name] = true
		if r.Supercharged && cfg.Mode != Supercharged {
			return fmt.Errorf("sim: router %q: supercharged routers need Supercharged mode", name)
		}
	}
	if cfg.Replicas < 0 {
		return fmt.Errorf("sim: negative replica count %d", cfg.Replicas)
	}
	if cfg.Takeover < 0 {
		return fmt.Errorf("sim: negative takeover latency %v", cfg.Takeover)
	}
	if cfg.Cost.Base < 0 || cfg.Cost.PerUpdate < 0 || cfg.Cost.PerRule < 0 {
		return fmt.Errorf("sim: controller cost fields must be non-negative")
	}
	for i, ev := range cfg.Events {
		if ev.At < 0 {
			return fmt.Errorf("sim: event %d (%s): scheduled before t=0 (%v)", i, ev.Kind, ev.At)
		}
		if !ValidEventKind(ev.Kind) {
			return fmt.Errorf("sim: event %d: unknown kind %q", i, ev.Kind)
		}
		switch ev.Kind {
		case EventPeerDown, EventPeerUp, EventLinkFlap, EventPartialWithdraw,
			EventBurstReannounce, EventSessionReset, EventUpdateNoise:
			if ev.Peer == "" {
				return fmt.Errorf("sim: event %d (%s): missing peer", i, ev.Kind)
			}
			if !names[ev.Peer] {
				return fmt.Errorf("sim: event %d (%s): unknown peer %q", i, ev.Kind, ev.Peer)
			}
		}
		if ev.Kind == EventSRLGDown {
			if len(ev.Peers) < 2 {
				return fmt.Errorf("sim: event %d (%s): a shared-risk group needs at least 2 peers, got %d",
					i, ev.Kind, len(ev.Peers))
			}
			member := make(map[string]bool, len(ev.Peers))
			for _, name := range ev.Peers {
				if !names[name] {
					return fmt.Errorf("sim: event %d (%s): unknown peer %q", i, ev.Kind, name)
				}
				if member[name] {
					return fmt.Errorf("sim: event %d (%s): peer %q listed twice", i, ev.Kind, name)
				}
				member[name] = true
			}
		} else if len(ev.Peers) > 0 {
			return fmt.Errorf("sim: event %d (%s): Peers is only valid on %s", i, ev.Kind, EventSRLGDown)
		}
		switch ev.Kind {
		case EventLinkFlap, EventControllerRestart:
			if ev.Hold <= 0 {
				return fmt.Errorf("sim: event %d (%s): Hold must be positive", i, ev.Kind)
			}
		case EventPartialWithdraw:
			if ev.Fraction <= 0 || ev.Fraction > 1 {
				return fmt.Errorf("sim: event %d (%s): Fraction %v outside (0, 1]", i, ev.Kind, ev.Fraction)
			}
		case EventSessionReset, EventControllerFailover:
			if ev.Hold < 0 {
				return fmt.Errorf("sim: event %d (%s): negative Hold %v", i, ev.Kind, ev.Hold)
			}
		case EventUpdateNoise:
			if ev.Hold <= 0 {
				return fmt.Errorf("sim: event %d (%s): Hold must be positive", i, ev.Kind)
			}
			if ev.Rate <= 0 {
				return fmt.Errorf("sim: event %d (%s): Rate must be positive", i, ev.Kind)
			}
			// Cap the total volume so a fuzzer-generated spec cannot turn
			// one event into a multi-minute simulation.
			if volume := float64(ev.Rate) * ev.Hold.Seconds(); volume > maxNoiseUpdates {
				return fmt.Errorf("sim: event %d (%s): Rate×Hold is %.0f updates, above the %d cap",
					i, ev.Kind, volume, int(maxNoiseUpdates))
			}
		}
		if ev.Graceful && ev.Kind != EventSessionReset {
			return fmt.Errorf("sim: event %d (%s): Graceful is only valid on %s", i, ev.Kind, EventSessionReset)
		}
		if ev.Rate != 0 && ev.Kind != EventUpdateNoise {
			return fmt.Errorf("sim: event %d (%s): Rate is only valid on %s", i, ev.Kind, EventUpdateNoise)
		}
		if ev.Detection != "" && ev.Detection != DetectBFD && ev.Detection != DetectHoldTimer {
			return fmt.Errorf("sim: event %d (%s): unknown detection %q", i, ev.Kind, ev.Detection)
		}
	}
	return nil
}

// maxNoiseUpdates bounds one update-noise event's total UPDATE count.
const maxNoiseUpdates = 1_000_000

// runTimeline is the timeline counterpart of run: set up steady state,
// replay the script, drain to quiescence and attribute outages to events.
func (l *lab) runTimeline(ctx context.Context) (*TimelineResult, error) {
	cfg := l.cfg
	l.traceStart()
	if l.tcfg.Table != nil {
		if l.tcfg.Table.Len() < cfg.NumPrefixes {
			return nil, fmt.Errorf("sim: table holds %d routes, run needs %d prefixes", l.tcfg.Table.Len(), cfg.NumPrefixes)
		}
		l.table = l.tcfg.Table.Head(cfg.NumPrefixes)
	} else {
		l.table = feed.Generate(feed.Config{N: cfg.NumPrefixes, Seed: cfg.Seed})
	}
	l.assignFeeds()

	if err := l.setup(ctx); err != nil {
		return nil, err
	}
	l.wireMetrics()
	l.setupProbes()
	l.traceSetup()

	l.base = l.clk.Now()
	for _, r := range l.routers {
		r.fibBase = r.fib.Applied()
	}
	for i := range l.tcfg.Events {
		st := &eventState{ev: l.tcfg.Events[i], idx: i, absAt: l.base.Add(l.tcfg.Events[i].At)}
		l.events = append(l.events, st)
		l.clk.AfterFunc(st.ev.At, func() { l.applyEvent(st) })
	}
	if _, err := l.clk.Drive(ctx, 50_000_000); err != nil {
		return nil, fmt.Errorf("sim: timeline cancelled: %w", err)
	}
	return l.harvestTimeline(), nil
}

func (l *lab) applyEvent(st *eventState) {
	l.traceEvent(st)
	l.metrics.eventApplied()
	var prov *provider
	if st.ev.Peer != "" {
		var ok bool
		if prov, ok = l.providerByName(st.ev.Peer); !ok {
			panic(fmt.Sprintf("sim: event references unknown peer %q", st.ev.Peer))
		}
	}
	switch st.ev.Kind {
	case EventPeerDown:
		l.eventLinkDown(st, prov)
	case EventPeerUp:
		l.eventLinkUp(prov)
	case EventLinkFlap:
		l.eventLinkDown(st, prov)
		l.clk.AfterFunc(st.ev.Hold, func() { l.eventLinkUp(prov) })
	case EventPartialWithdraw:
		l.eventPartialWithdraw(st, prov)
	case EventBurstReannounce:
		l.eventBurstReannounce(prov)
	case EventRuleLoss:
		l.eventRuleLoss()
	case EventControllerRestart:
		l.eventControllerRestart(st)
	case EventControllerFailover:
		l.eventControllerFailover(st)
	case EventSRLGDown:
		for _, name := range st.ev.Peers {
			member, ok := l.providerByName(name)
			if !ok {
				panic(fmt.Sprintf("sim: event references unknown peer %q", name))
			}
			l.eventLinkDown(st, member)
		}
	case EventSessionReset:
		l.eventSessionReset(st, prov)
	case EventUpdateNoise:
		l.eventUpdateNoise(st, prov)
	}
}

// eventLinkDown cuts the link and arms the detection timer for the
// event's detection path.
func (l *lab) eventLinkDown(st *eventState, prov *provider) {
	if !prov.up {
		return
	}
	cutAt := l.clk.Now()
	l.linkDown(prov)
	detect := time.Duration(l.cfg.BFDMult) * l.cfg.BFDInterval
	if st.ev.Detection == DetectHoldTimer {
		detect = l.tcfg.HoldTimer
	}
	prov.detect = l.clk.AfterFunc(detect, func() {
		prov.detect = nil
		// An SRLG event shares one eventState across members; the first
		// detection stamps the event's latency (they fire together anyway).
		if st.detectAt == 0 {
			st.detectAt = l.clk.Now().Sub(st.absAt)
		}
		l.traceDetect(st.idx+1, prov, cutAt)
		l.reactToFailure(prov)
	})
}

// eventLinkUp restores the link. If detection has not fired yet the
// failure is absorbed (timer cancelled, routes and FIB untouched);
// otherwise the session re-establishes after SessionUp and the peer
// re-announces its feed.
func (l *lab) eventLinkUp(prov *provider) {
	if prov.up {
		return
	}
	prov.up = true
	absorbed := prov.detect != nil
	if absorbed {
		prov.detect.Stop()
		prov.detect = nil
	}
	l.reevaluateAllProbes()
	if absorbed && prov.session {
		return // absorbed flap: the session never dropped, nothing to replay
	}
	// Either the failure was detected (session torn down) or a hard
	// session reset is still pending re-establishment — a flap across the
	// restart window must not cancel it for good.
	l.clk.AfterFunc(l.tcfg.SessionUp, func() { l.replayFeed(prov, true) })
}

// replayFeed models a freshly (re-)established BGP session replaying the
// peer's entire feed. The replay supersedes any earlier partial withdraw:
// the peer advertises the routes again, so they are reachable via it from
// now on. peerUp additionally runs the engine's PeerUp retarget in
// supercharged mode (a session the engine saw die).
func (l *lab) replayFeed(prov *provider, peerUp bool) {
	if !prov.up {
		// The link died again between the recovery being scheduled and
		// now (down/up/down inside one SessionUp window): a session
		// cannot establish over a dead link, and replaying anyway would
		// resurrect the dead peer's routes with no withdraw ever coming —
		// a permanent phantom blackhole for every flow steered into it.
		return
	}
	prov.session = true // a replaying session is an established one
	prov.withdrawn = nil
	prov.withdrawnN = 0
	l.reevaluateAllProbes()
	l.ingestFeed(prov, prov.feed, peerUp)
}

// eventSessionReset bounces the peer's BGP session while the link stays
// up. The reset is announced, not detected: the failure reaction (if any)
// starts immediately, with no BFD or hold-timer latency.
func (l *lab) eventSessionReset(st *eventState, prov *provider) {
	if !prov.up || !prov.session {
		return // link dead or session already down: nothing to reset
	}
	restart := st.ev.Hold
	if restart == 0 {
		restart = l.tcfg.SessionUp
	}
	if st.ev.Graceful {
		// RFC 4724: the restarting peer preserves its forwarding state, so
		// the data plane never notices. The re-established session replays
		// the full feed (ending with End-of-RIB), superseding the now-stale
		// routes — pure control-plane churn, zero blackout.
		l.clk.AfterFunc(restart, func() {
			if prov.up && prov.session {
				l.replayFeed(prov, false)
			}
		})
		return
	}
	// Hard reset: the peer's BGP process restarted without graceful
	// restart, flushing its forwarding state — traffic sent into it
	// blackholes for the restart window, and the local side tears its
	// routes down through the mode's usual pipeline (supercharged: the
	// engine retargets groups away from the peer; standalone: RIB flush
	// plus the per-entry FIB walk).
	prov.session = false
	l.reevaluateAllProbes()
	l.reactToFailure(prov)
	l.clk.AfterFunc(restart, func() {
		if !prov.up || prov.session {
			return // link died meanwhile (eventLinkUp replays) or already re-established
		}
		l.replayFeed(prov, true)
	})
}

// noiseBurstEvery is the update-noise burst cadence: Rate updates/s are
// delivered as one batch per 100 ms, mimicking the bursty arrivals of the
// paper's E3 load benchmark.
const noiseBurstEvery = 100 * time.Millisecond

// eventUpdateNoise schedules the background-churn bursts: every 100 ms
// for Hold, the peer re-announces the next Rate/10 routes of its feed
// (wrapping around), with unchanged attributes.
func (l *lab) eventUpdateNoise(st *eventState, prov *provider) {
	bursts := int(st.ev.Hold / noiseBurstEvery)
	if bursts < 1 {
		bursts = 1
	}
	perBurst := int(float64(st.ev.Rate)*noiseBurstEvery.Seconds() + 0.5)
	if perBurst < 1 {
		perBurst = 1
	}
	for k := 0; k < bursts; k++ {
		start := k * perBurst
		l.clk.AfterFunc(time.Duration(k)*noiseBurstEvery, func() {
			l.noiseBurst(prov, start, perBurst)
		})
	}
}

// noiseBurst re-announces n routes of the peer's feed starting at index
// start (mod feed size) as single-prefix UPDATEs through the mode's
// control plane. The routes are byte-identical to what the peer already
// advertised: no reachability changes, only processing load. The naive
// standalone router turns every one into a FIB write; the supercharged
// controller's churn filter drops them all.
func (l *lab) noiseBurst(prov *provider, start, n int) {
	if !prov.up || !prov.session || prov.feed.Len() == 0 {
		return // a dead peer or session emits nothing
	}
	// Rendered attributes are cached per template for the burst (the
	// same trick StreamUpdates uses): a capped noise event is up to 1M
	// updates, and re-rendering attrs the interner would immediately
	// deduplicate is garbage on the exact path the churn filter keeps
	// allocation-free.
	attrsCache := make(map[int]*bgp.Attrs)
	updates := make([]*bgp.Update, 0, n)
	for i := 0; i < n; i++ {
		r := prov.feed.Routes[(start+i)%prov.feed.Len()]
		if prov.withdrawn[r.Prefix] {
			// A peer only refreshes routes it still has: re-announcing a
			// withdrawn prefix would silently revert the withdraw (the
			// fuzzer caught exactly this inconsistency).
			continue
		}
		attrs := attrsCache[r.Template]
		if attrs == nil {
			attrs = prov.feed.AttrsFor(r.Template, prov.as, prov.nh)
			attrsCache[r.Template] = attrs
		}
		updates = append(updates, &bgp.Update{
			Attrs: attrs,
			NLRI:  []netip.Prefix{r.Prefix},
		})
	}
	l.ingest(prov, updates, false)
}

// eventPartialWithdraw marks the head chunk of the peer's feed withdrawn
// and sends the WITHDRAW through the mode's control plane.
func (l *lab) eventPartialWithdraw(st *eventState, prov *provider) {
	if !prov.up || !prov.session {
		return // a dead peer or session emits nothing
	}
	n := int(math.Ceil(st.ev.Fraction * float64(prov.feed.Len())))
	if n <= 0 {
		return
	}
	if n > prov.feed.Len() {
		n = prov.feed.Len()
	}
	withdrawn := prov.feed.Head(n).Prefixes()
	if prov.withdrawn == nil {
		prov.withdrawn = make(map[netip.Prefix]bool, len(withdrawn))
	}
	for _, p := range withdrawn {
		prov.withdrawn[p] = true
	}
	if n > prov.withdrawnN {
		prov.withdrawnN = n
	}
	// The destinations are unreachable via this peer from now on.
	l.reevaluateAllProbes()
	l.ingest(prov, []*bgp.Update{{Withdrawn: withdrawn}}, false)
}

// eventBurstReannounce replays the peer's withdrawn chunk (or, with
// nothing withdrawn, its whole feed) as one announcement burst.
func (l *lab) eventBurstReannounce(prov *provider) {
	if !prov.up || !prov.session {
		return // a dead peer or session emits nothing
	}
	chunk := prov.feed
	if prov.withdrawnN > 0 {
		chunk = prov.feed.Head(prov.withdrawnN)
	}
	for _, p := range chunk.Prefixes() {
		delete(prov.withdrawn, p)
	}
	prov.withdrawnN = 0
	// Reachability via this peer is restored upstream immediately.
	l.reevaluateAllProbes()
	l.ingestFeed(prov, chunk, false)
}

// eventRuleLoss wipes every supercharged router's switch flow table; the
// controller detects the loss and resyncs every group rule from its own
// state (paying its Base cost) — unless the last replica is already gone,
// in which case nobody is left to resync.
func (l *lab) eventRuleLoss() {
	wiped := false
	for _, r := range l.routers {
		if r.flows == nil {
			continue // vanilla: no switch rules in the forwarding path
		}
		r.flows = dataplane.NewFlowTable()
		wiped = true
	}
	if !wiped {
		return
	}
	l.reevaluateAllProbes()
	if l.ctrlDead {
		return
	}
	l.clk.AfterFunc(l.controllerDelay()+l.cfg.ControllerReact+l.cfg.Cost.Base, func() {
		if l.ctrlDead {
			return
		}
		for _, r := range l.routers {
			if r.engine == nil {
				continue
			}
			if _, err := r.engine.Resync(); err != nil {
				panic(fmt.Sprintf("sim: engine.Resync: %v", err))
			}
		}
	})
}

// eventControllerRestart takes the controller down for Hold; reactions
// arriving in the window are deferred via controllerDelay.
func (l *lab) eventControllerRestart(st *eventState) {
	if !l.hasSupercharged() {
		return
	}
	until := l.clk.Now().Add(st.ev.Hold)
	if until.After(l.ctrlDownUntil) {
		l.ctrlDownUntil = until
	}
}

// takeoverWindow resolves one failover event's takeover latency: the
// event's Hold, else the config default, else 2 s.
func (l *lab) takeoverWindow(ev TimelineEvent) time.Duration {
	if ev.Hold > 0 {
		return ev.Hold
	}
	if l.tcfg.Takeover > 0 {
		return l.tcfg.Takeover
	}
	return 2 * time.Second
}

// eventControllerFailover kills the controller primary. A surviving
// standby — which holds the same deterministic VNH/group allocation, so
// no recomputation is needed — takes over after the takeover window;
// in-flight FLOW_MODs are replayed (durable) or lost (the standby
// resyncs the switch instead). Killing the last replica leaves the run
// controller-less: installed rules keep forwarding, nothing new happens.
func (l *lab) eventControllerFailover(st *eventState) {
	if !l.hasSupercharged() || l.ctrlDead {
		return
	}
	if l.replicasLeft <= 1 {
		l.replicasLeft = 0
		l.ctrlDead = true
		l.stopPending()
		return
	}
	l.replicasLeft--
	take := l.takeoverWindow(st.ev)
	until := l.clk.Now().Add(take)
	if until.After(l.ctrlDownUntil) {
		l.ctrlDownUntil = until
	}
	l.traceTakeover(take, l.replicasLeft)
	if l.tcfg.Durable {
		l.rearmPending(until)
		return
	}
	l.stopPending()
	l.clk.AfterFunc(take+l.cfg.ControllerReact+l.cfg.Cost.Base, func() {
		if l.ctrlDead {
			return
		}
		for _, r := range l.routers {
			if r.engine == nil {
				continue
			}
			if _, err := r.engine.Resync(); err != nil {
				panic(fmt.Sprintf("sim: engine.Resync: %v", err))
			}
		}
	})
}

// ingest feeds a peer's materialized UPDATE batch through the mode's
// control plane; see ingestStream.
func (l *lab) ingest(prov *provider, updates []*bgp.Update, peerUp bool) {
	l.ingestStream(prov, func(fn func(*bgp.Update) error) error {
		for _, u := range updates {
			if err := fn(u); err != nil {
				return err
			}
		}
		return nil
	}, peerUp)
}

// ingestFeed streams a whole feed view through the mode's control plane
// without materializing the rendered UPDATE list — the path full-table
// session replays take, sized for the 1M-prefix xl tier.
func (l *lab) ingestFeed(prov *provider, table *feed.Table, peerUp bool) {
	l.ingestStream(prov, func(fn func(*bgp.Update) error) error {
		return table.StreamUpdates(prov.as, prov.nh, bgp.Codec{ASN4: true}, fn)
	}, peerUp)
}

// ingestStream feeds a peer's UPDATE stream through every router's
// control plane: straight into a vanilla router's own RIB, through the
// supercharger's processor (and, on session recovery, the engine's PeerUp
// retarget) on supercharged routers. The router's FIB walk follows after
// its usual control-plane delay. The source function is invoked once per
// router, inside the control-plane stage, so streams render at ingestion
// time rather than at scheduling time (and each router sees its own
// deterministic rendering of the same session).
func (l *lab) ingestStream(prov *provider, source func(fn func(*bgp.Update) error) error, peerUp bool) {
	for _, r := range l.routers {
		if r.supercharged {
			l.ingestSupercharged(r, prov, source, peerUp)
		} else {
			l.ingestStandalone(r, prov, source)
		}
	}
}

// ingestStandalone is the vanilla router's ingest leg of ingestStream.
func (l *lab) ingestStandalone(r *router, prov *provider, source func(fn func(*bgp.Update) error) error) {
	ctlStart := l.clk.Now()
	l.afterRouterCtl(r, func() {
		l.traceRouterCtl(ctlStart)
		var changes []bgp.Change
		err := source(func(u *bgp.Update) error {
			changes = append(changes, r.routerRIB.Update(prov.meta, u)...)
			return nil
		})
		if err != nil {
			panic(fmt.Sprintf("sim: render feed for %s: %v", prov.name, err))
		}
		l.enqueueFIBChanges(r, changes)
	})
}

// ingestSupercharged is the SDN-assisted ingest leg of ingestStream: the
// controller relays the session, paying Base + N×PerUpdate of processing
// tax after the churn filter counts the batch. A dead controller (last
// replica gone) relays nothing — the router's view freezes.
func (l *lab) ingestSupercharged(r *router, prov *provider, source func(fn func(*bgp.Update) error) error, peerUp bool) {
	if l.ctrlDead {
		return
	}
	l.clk.AfterFunc(l.controllerDelay(), func() {
		if l.ctrlDead {
			return
		}
		var toRouter []*bgp.Update
		nIn := 0
		err := source(func(u *bgp.Update) error {
			nIn++
			out, err := r.proc.Process(prov.meta, u)
			if err != nil {
				panic(fmt.Sprintf("sim: processor.Process: %v", err))
			}
			toRouter = append(toRouter, out...)
			return nil
		})
		if err != nil {
			panic(fmt.Sprintf("sim: render feed for %s: %v", prov.name, err))
		}
		l.traceChurnFilter(prov, nIn, len(toRouter))
		l.afterCost(l.cfg.Cost.Base+time.Duration(nIn)*l.cfg.Cost.PerUpdate, func() {
			if peerUp {
				if _, err := r.engine.PeerUp(prov.nh); err != nil {
					panic(fmt.Sprintf("sim: engine.PeerUp: %v", err))
				}
			}
			ctlStart := l.clk.Now()
			l.afterRouterCtl(r, func() {
				l.traceRouterCtl(ctlStart)
				l.enqueueWalkOrder(r, l.routerApply(r, toRouter))
				core.RecycleUpdates(toRouter)
			})
		})
	})
}

func (l *lab) providerByName(name string) (*provider, bool) {
	for _, p := range l.providers {
		if p.name == name {
			return p, true
		}
	}
	return nil, false
}

// harvestTimeline attributes every probe outage to the most recent event
// at or before its start and assembles the result. Mixed-deployment runs
// additionally break every event's impact down by router class.
func (l *lab) harvestTimeline() *TimelineResult {
	res := &TimelineResult{
		Mode:        l.cfg.Mode,
		NumPrefixes: l.cfg.NumPrefixes,
		Elapsed:     l.clk.Now().Sub(l.base),
	}
	for _, prov := range l.providers {
		res.Peers = append(res.Peers, prov.name)
	}
	scRouters, vanRouters := 0, 0
	for _, r := range l.routers {
		res.FIBWrites += r.fib.Applied() - r.fibBase
		if r.proc != nil {
			res.Groups += r.proc.Groups().Len()
			res.RuleRewrites += int(r.engine.Rewrites())
		}
		if r.supercharged {
			scRouters++
		} else {
			vanRouters++
		}
	}
	if len(l.routers) > 1 {
		for _, r := range l.routers {
			res.Routers = append(res.Routers, RouterResult{Name: r.name, Supercharged: r.supercharged})
		}
	}
	mixed := l.mixedDeployment()
	for i, st := range l.events {
		peer := st.ev.Peer
		if len(st.ev.Peers) > 0 {
			peer = strings.Join(st.ev.Peers, "+") // SRLG: the whole risk group
		}
		er := EventResult{
			Index: i, Kind: st.ev.Kind, Peer: peer,
			At: st.ev.At, DetectAt: st.detectAt,
		}
		if mixed {
			er.SuperchargedClass = &ClassResult{Routers: scRouters}
			er.VanillaClass = &ClassResult{Routers: vanRouters}
		}
		res.Events = append(res.Events, er)
	}
	for _, pr := range l.sortedProbes() {
		for _, o := range pr.outages {
			idx := l.eventIndexFor(o.start)
			if idx < 0 {
				continue
			}
			er := &res.Events[idx]
			cl := er.SuperchargedClass
			if !pr.rtr.supercharged {
				cl = er.VanillaClass
			}
			er.Affected++
			if cl != nil {
				cl.Affected++
			}
			if !o.ended {
				er.Unrecovered++
				if cl != nil {
					cl.Unrecovered++
				}
				continue
			}
			er.Recovered++
			conv := l.quantizedGap(pr, o)
			er.Convergence = append(er.Convergence, conv)
			if cl != nil {
				cl.Recovered++
				cl.Convergence = append(cl.Convergence, conv)
			}
			l.traceConverge(idx+1, pr, o, conv)
			l.metrics.observeConvergence(conv)
		}
	}
	l.metrics.runDone(res.FIBWrites)
	return res
}

// eventIndexFor returns the latest event fired at or before t (-1 if t
// precedes every event).
func (l *lab) eventIndexFor(t time.Time) int {
	best := -1
	for i, st := range l.events {
		if !st.absAt.After(t) {
			if best == -1 || !st.absAt.Before(l.events[best].absAt) {
				best = i
			}
		}
	}
	return best
}
