package sim

import (
	"context"
	"testing"
	"time"

	"supercharged/internal/metrics"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStandaloneConvergenceIsLinear(t *testing.T) {
	// The paper's core baseline behaviour: worst-case convergence grows
	// linearly with the prefix count (≈ fixed + N × perEntry).
	resSmall := run(t, Config{Mode: Standalone, NumPrefixes: 1000, Seed: 1})
	resBig := run(t, Config{Mode: Standalone, NumPrefixes: 10000, Seed: 1})

	maxSmall := metrics.SummarizeDurations(resSmall.Durations()).Max
	maxBig := metrics.SummarizeDurations(resBig.Durations()).Max

	// Slope check: (maxBig-maxSmall)/(9000 entries) ≈ 280µs within 20%.
	slope := (maxBig - maxSmall) / 9000
	if slope < 0.000280*0.8 || slope > 0.000280*1.2 {
		t.Fatalf("per-entry slope %.0fµs, want ≈280µs", slope*1e6)
	}
}

func TestStandaloneWorstCaseMatchesPaperShape(t *testing.T) {
	res := run(t, Config{Mode: Standalone, NumPrefixes: 1000, Seed: 1})
	s := metrics.SummarizeDurations(res.Durations())
	// Paper @1k: max 0.9s. Ours must land in the same regime (0.4–1.2s).
	if s.Max < 0.4 || s.Max > 1.2 {
		t.Fatalf("1k worst case %.3fs outside [0.4,1.2]", s.Max)
	}
	// Best case must reflect detection+ctl+first entry (paper: 375 ms).
	if s.Min < 0.3 || s.Min > 0.8 {
		t.Fatalf("1k best case %.3fs outside [0.3,0.8]", s.Min)
	}
	if len(res.Flows) != 100 {
		t.Fatalf("flows %d", len(res.Flows))
	}
}

func TestSuperchargedIsFlatAndFast(t *testing.T) {
	// Fig. 5's headline: supercharged convergence is ~150 ms regardless
	// of the number of prefixes.
	var maxes []float64
	for _, n := range []int{1000, 10000, 50000} {
		res := run(t, Config{Mode: Supercharged, NumPrefixes: n, Seed: 1})
		s := metrics.SummarizeDurations(res.Durations())
		if s.Max > 0.160 {
			t.Fatalf("supercharged @%d max %.3fs exceeds 160ms", n, s.Max)
		}
		if s.Min < 0.050 {
			t.Fatalf("supercharged @%d min %.3fs suspiciously small", n, s.Min)
		}
		maxes = append(maxes, s.Max)
	}
	// Flat: spread across sizes within one flow-mod latency.
	spread := maxes[len(maxes)-1] - maxes[0]
	if spread < 0 {
		spread = -spread
	}
	if spread > 0.030 {
		t.Fatalf("supercharged spread %.3fs across sizes; not flat", spread)
	}
}

func TestSuperchargedSingleGroupSingleRewrite(t *testing.T) {
	// Two providers, full shared table: exactly one backup-group and one
	// rule rewrite on failure (Fig. 2's "only one entry needs to update").
	res := run(t, Config{Mode: Supercharged, NumPrefixes: 2000, Seed: 3})
	if res.Groups != 1 {
		t.Fatalf("groups %d, want 1", res.Groups)
	}
	if res.RuleRewrites != 1 {
		t.Fatalf("rewrites %d, want 1", res.RuleRewrites)
	}
}

func TestDetectionTimeIsBFD(t *testing.T) {
	res := run(t, Config{Mode: Supercharged, NumPrefixes: 1000, Seed: 1})
	want := 90 * time.Millisecond
	if res.DetectAt != want {
		t.Fatalf("detected at %v, want %v", res.DetectAt, want)
	}
}

func TestControlPlaneLagsDataPlaneWhenSupercharged(t *testing.T) {
	// The insight of the paper: data plane converges in ~150ms while the
	// router's FIB walk (control plane) takes its usual slow pace.
	res := run(t, Config{Mode: Supercharged, NumPrefixes: 20000, Seed: 1})
	if res.DataPlaneDone > 200*time.Millisecond {
		t.Fatalf("data plane %v", res.DataPlaneDone)
	}
	// 20000 entries × 280µs ≈ 5.6s of FIB walking afterwards.
	if res.ControlPlaneDone < 3*time.Second {
		t.Fatalf("control plane done after only %v — FIB walk missing", res.ControlPlaneDone)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := run(t, Config{Mode: Standalone, NumPrefixes: 2000, Seed: 99})
	b := run(t, Config{Mode: Standalone, NumPrefixes: 2000, Seed: 99})
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("flow count differs")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a.Flows[i], b.Flows[i])
		}
	}
}

func TestSeedChangesJitter(t *testing.T) {
	a := run(t, Config{Mode: Standalone, NumPrefixes: 1000, Seed: 1})
	b := run(t, Config{Mode: Standalone, NumPrefixes: 1000, Seed: 2})
	sa := metrics.SummarizeDurations(a.Durations())
	sb := metrics.SummarizeDurations(b.Durations())
	if sa.Min == sb.Min && sa.Max == sb.Max {
		t.Fatal("different seeds produced identical distributions")
	}
}

func TestConvergencePositionCorrelation(t *testing.T) {
	// In the standalone router, a flow's convergence is ordered by its
	// prefix's FIB position — the entry-by-entry walk made visible.
	res := run(t, Config{Mode: Standalone, NumPrefixes: 5000, Seed: 5})
	flows := res.Flows
	for i := 0; i < len(flows); i++ {
		for j := 0; j < len(flows); j++ {
			if flows[i].Position < flows[j].Position && flows[i].Convergence > flows[j].Convergence {
				t.Fatalf("position %d converged after position %d",
					flows[i].Position, flows[j].Position)
			}
		}
	}
}

func TestGroupSize3SurvivesDoubleFailure(t *testing.T) {
	// Ablation A2: k=3 with 3 providers; primary fails, then the first
	// backup fails 500ms later; flows recover both times.
	res := run(t, Config{
		Mode: Supercharged, NumPrefixes: 1000, Seed: 1,
		GroupSize: 3, Providers: 3, SecondFailure: 500 * time.Millisecond,
	})
	s := metrics.SummarizeDurations(res.Durations())
	// First-failure convergence still fast — and strictly positive (a
	// second failure must never shift a measured flow's window).
	if s.Max > 0.160 {
		t.Fatalf("first failover max %.3fs", s.Max)
	}
	if s.Min <= 0 {
		t.Fatalf("non-positive convergence %.3fs after double failure", s.Min)
	}
	if res.RuleRewrites < 2 {
		t.Fatalf("rewrites %d, want ≥2 (both failures)", res.RuleRewrites)
	}
}

func TestProbeQuantizationRespectsInterval(t *testing.T) {
	res := run(t, Config{Mode: Supercharged, NumPrefixes: 1000, Seed: 1})
	iv := 70 * time.Microsecond
	for _, f := range res.Flows {
		if f.Convergence%iv != 0 {
			t.Fatalf("convergence %v not quantized to %v", f.Convergence, iv)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Mode: Standalone, NumPrefixes: 0}); err == nil {
		t.Fatal("accepted zero prefixes")
	}
	if _, err := Run(context.Background(), Config{Mode: Standalone, NumPrefixes: 10, Providers: 1}); err == nil {
		t.Fatal("accepted one provider")
	}
}

func TestImprovementFactorAtScale(t *testing.T) {
	// E5: the paper reports 900× at 512k. At 50k (kept CI-friendly) the
	// factor must already exceed ~80×.
	std := run(t, Config{Mode: Standalone, NumPrefixes: 50000, Seed: 1})
	sup := run(t, Config{Mode: Supercharged, NumPrefixes: 50000, Seed: 1})
	f := metrics.SummarizeDurations(std.Durations()).Max / metrics.SummarizeDurations(sup.Durations()).Max
	if f < 80 {
		t.Fatalf("improvement factor %.0f× too small", f)
	}
}

func BenchmarkSimStandalone10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Mode: Standalone, NumPrefixes: 10000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimSupercharged10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Mode: Supercharged, NumPrefixes: 10000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
