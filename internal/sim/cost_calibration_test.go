package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The default controller cost's per-UPDATE term is seeded from the
// committed micro-benchmark of the controller's hottest per-update path
// (proc/churn-filter in BENCH_micro.json). This test keeps the constant
// honest: if the benchmark gate is re-baselined far away from the
// modeled cost, the model must be re-seeded too.
func TestPerUpdateCostMatchesCommittedBenchmark(t *testing.T) {
	path := findUp(t, "BENCH_micro.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	var measured float64
	for _, b := range doc.Benchmarks {
		if b.Name == "proc/churn-filter" {
			measured = b.NsPerOp
		}
	}
	if measured == 0 {
		t.Fatalf("%s has no proc/churn-filter entry", path)
	}
	// Calibration, not precision: the constant must sit within 2× of the
	// committed measurement in either direction.
	if benchPerUpdateNS < measured/2 || benchPerUpdateNS > measured*2 {
		t.Fatalf("benchPerUpdateNS = %d, committed churn-filter ns/op = %.1f: "+
			"re-seed DefaultControllerCost from BENCH_micro.json", benchPerUpdateNS, measured)
	}
}

// findUp resolves a repo-root file from the package test directory.
func findUp(t *testing.T, name string) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("%s not found above the test directory", name)
		}
		dir = parent
	}
}
