package trafficgen

import (
	"net/netip"
	"testing"
	"time"

	"supercharged/internal/clock"
	"supercharged/internal/netem"
	"supercharged/internal/packet"
)

var (
	srcMAC = packet.MustParseMAC("00:01:00:00:00:01")
	gwMAC  = packet.MustParseMAC("00:ff:00:00:00:01")
)

func dests(n int) []netip.Addr {
	out := make([]netip.Addr, n)
	for i := range out {
		out[i] = netip.AddrFrom4([4]byte{1, 0, byte(i), 1})
	}
	return out
}

func TestSourceRoundRobinAndRate(t *testing.T) {
	v := clock.NewVirtualAtZero()
	link := netem.NewLink(v, "src", "sink", 0)
	a, b := link.Ports()
	got := map[netip.Addr]int{}
	b.Handle(func(frame []byte) {
		var eth packet.Ethernet
		var ip packet.IPv4
		if eth.DecodeFromBytes(frame) == nil && ip.DecodeFromBytes(eth.Payload) == nil {
			got[ip.Dst]++
		}
	})
	ds := dests(4)
	src := NewSource(SourceConfig{
		Port: a, SrcMAC: srcMAC, GatewayMAC: gwMAC,
		SrcIP: netip.MustParseAddr("192.0.2.10"), Dests: ds,
		Interval: 4 * time.Millisecond, Clock: v,
	})
	src.Start()
	v.Advance(40 * time.Millisecond) // 10 per-flow intervals
	src.Stop()
	v.RunUntilIdleLimit(1000)
	for _, d := range ds {
		if got[d] < 9 || got[d] > 11 {
			t.Fatalf("flow %v got %d packets, want ~10", d, got[d])
		}
	}
	if src.Sent() < 36 {
		t.Fatalf("sent %d", src.Sent())
	}
	// Frames must be ≥64 bytes and addressed to the gateway.
	var eth packet.Ethernet
	b.Handle(nil)
	_ = eth
}

func TestSourceStopsCleanly(t *testing.T) {
	v := clock.NewVirtualAtZero()
	link := netem.NewLink(v, "src", "sink", 0)
	a, _ := link.Ports()
	src := NewSource(SourceConfig{Port: a, Dests: dests(1), Interval: time.Millisecond, Clock: v,
		SrcIP: netip.MustParseAddr("192.0.2.10"), SrcMAC: srcMAC, GatewayMAC: gwMAC})
	src.Start()
	v.Advance(5 * time.Millisecond)
	src.Stop()
	before := src.Sent()
	v.Advance(50 * time.Millisecond)
	if src.Sent() != before {
		t.Fatal("source kept transmitting after Stop")
	}
}

func TestSinkMeasuresMaxGap(t *testing.T) {
	v := clock.NewVirtualAtZero()
	link := netem.NewLink(v, "net", "sink", 0)
	a, b := link.Ports()
	dst := netip.MustParseAddr("1.0.0.1")
	sink := NewSink(SinkConfig{Port: b, Expected: []netip.Addr{dst}, Precision: 70 * time.Microsecond, Clock: v})

	buf := packet.NewBuffer()
	send := func() {
		f, err := packet.UDPFrame(buf, srcMAC, gwMAC, netip.MustParseAddr("192.0.2.10"), dst, 40000, ProbePort, []byte{1})
		if err != nil {
			t.Fatal(err)
		}
		a.Send(f)
	}
	// Regular traffic, then a 150ms blackout, then recovery.
	for i := 0; i < 10; i++ {
		send()
		v.Advance(time.Millisecond)
	}
	v.Advance(150 * time.Millisecond) // blackout
	send()
	v.Advance(time.Millisecond)
	send()
	v.RunUntilIdleLimit(1000)

	fs, ok := sink.Stats(dst)
	if !ok {
		t.Fatal("flow missing")
	}
	if fs.Packets != 12 {
		t.Fatalf("packets %d", fs.Packets)
	}
	// Max gap ≈ 151ms, quantized to 70µs.
	if fs.MaxGap < 150*time.Millisecond || fs.MaxGap > 152*time.Millisecond {
		t.Fatalf("max gap %v", fs.MaxGap)
	}
	if fs.MaxGap%(70*time.Microsecond) != 0 {
		t.Fatalf("gap %v not quantized", fs.MaxGap)
	}
}

func TestSinkStraysAndReset(t *testing.T) {
	v := clock.NewVirtualAtZero()
	link := netem.NewLink(v, "net", "sink", 0)
	a, b := link.Ports()
	dst := netip.MustParseAddr("1.0.0.1")
	sink := NewSink(SinkConfig{Port: b, Expected: []netip.Addr{dst}, Clock: v})
	buf := packet.NewBuffer()
	f, _ := packet.UDPFrame(buf, srcMAC, gwMAC, netip.MustParseAddr("192.0.2.10"),
		netip.MustParseAddr("9.9.9.9"), 40000, ProbePort, nil)
	a.Send(f)
	v.RunUntilIdleLimit(100)
	if sink.Strays() != 1 {
		t.Fatalf("strays %d", sink.Strays())
	}
	sink.Reset()
	if sink.Strays() != 0 {
		t.Fatal("reset")
	}
	if gaps := sink.MaxGaps(); len(gaps) != 1 || gaps[dst] != 0 {
		t.Fatalf("gaps %v", gaps)
	}
}

func TestEndToEndSourceSink(t *testing.T) {
	// Source and sink on one link: every packet arrives, gaps equal the
	// per-flow interval (quantization-exact on the virtual clock).
	v := clock.NewVirtualAtZero()
	link := netem.NewLink(v, "src", "sink", 0)
	a, b := link.Ports()
	ds := dests(5)
	sink := NewSink(SinkConfig{Port: b, Expected: ds, Clock: v})
	src := NewSource(SourceConfig{Port: a, SrcMAC: srcMAC, GatewayMAC: gwMAC,
		SrcIP: netip.MustParseAddr("192.0.2.10"), Dests: ds, Interval: 5 * time.Millisecond, Clock: v})
	src.Start()
	v.Advance(100 * time.Millisecond)
	src.Stop()
	v.RunUntilIdleLimit(10000)
	for _, d := range ds {
		fs, _ := sink.Stats(d)
		if fs.Packets < 18 {
			t.Fatalf("flow %v packets %d", d, fs.Packets)
		}
		if fs.MaxGap != 5*time.Millisecond {
			t.Fatalf("flow %v max gap %v, want 5ms", d, fs.MaxGap)
		}
	}
}
