// Package trafficgen reproduces the paper's FPGA-based measurement
// apparatus in software: a Source streaming minimum-size (64-byte) UDP
// packets to a set of destination IPs through the device under test, and a
// Sink that records, per destination flow, the maximum inter-packet gap —
// the paper's convergence metric — with configurable quantization (the
// FPGA's 70 µs precision).
package trafficgen

import (
	"encoding/binary"
	"net/netip"
	"sync"
	"time"

	"supercharged/internal/clock"
	"supercharged/internal/netem"
	"supercharged/internal/packet"
)

// ProbePort is the UDP port probes are addressed to (discard).
const ProbePort = 9

// SourceConfig configures the probe generator.
type SourceConfig struct {
	Port   *netem.Port
	SrcMAC packet.MAC
	// GatewayMAC is the device under test's interface MAC (R1): all
	// probes are L2-addressed to it, like hosts behind an edge router.
	GatewayMAC packet.MAC
	SrcIP      netip.Addr
	// Dests are the probed destination IPs (the paper uses 100, one per
	// sampled prefix).
	Dests []netip.Addr
	// Interval is the per-flow inter-packet gap (the paper's FPGA: ~70 µs
	// per flow; software sources use coarser values).
	Interval time.Duration
	Clock    clock.Clock
}

// Source streams probe packets round-robin across flows.
type Source struct {
	cfg SourceConfig

	mu      sync.Mutex
	running bool
	timer   clock.Timer
	seq     []uint64
	next    int
	sent    uint64
	buf     *packet.Buffer
}

// NewSource builds a source.
func NewSource(cfg SourceConfig) *Source {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 70 * time.Microsecond
	}
	return &Source{cfg: cfg, seq: make([]uint64, len(cfg.Dests)), buf: packet.NewBuffer()}
}

// Start begins transmission: every Interval/len(Dests), the next flow in
// round-robin order emits one packet, giving each flow the configured
// per-flow interval.
func (s *Source) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running || len(s.cfg.Dests) == 0 {
		return
	}
	s.running = true
	tick := s.cfg.Interval / time.Duration(len(s.cfg.Dests))
	if tick <= 0 {
		tick = time.Microsecond
	}
	var fire func()
	fire = func() {
		// The whole emission runs under the lock: the shared frame buffer
		// must not be touched by two timer callbacks at once (Port.Send
		// copies the frame, so holding the lock across it is safe).
		s.mu.Lock()
		defer s.mu.Unlock()
		if !s.running {
			return
		}
		i := s.next
		s.next = (s.next + 1) % len(s.cfg.Dests)
		seq := s.seq[i]
		s.seq[i]++
		s.sent++
		dst := s.cfg.Dests[i]

		var payload [16]byte
		binary.BigEndian.PutUint64(payload[0:8], seq)
		frame, err := packet.UDPFrame(s.buf, s.cfg.SrcMAC, s.cfg.GatewayMAC,
			s.cfg.SrcIP, dst, 40000+uint16(i%1000), ProbePort, payload[:])
		if err == nil {
			s.cfg.Port.Send(frame)
		}
		s.timer = s.cfg.Clock.AfterFunc(tick, fire)
	}
	s.timer = s.cfg.Clock.AfterFunc(tick, fire)
}

// Stop halts transmission.
func (s *Source) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running = false
	if s.timer != nil {
		s.timer.Stop()
	}
}

// Sent returns the number of transmitted probes.
func (s *Source) Sent() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// FlowStats is the per-destination measurement the sink maintains — the
// paper's CAM entry: packet count and maximum inter-packet delay.
type FlowStats struct {
	Packets   uint64
	MaxGap    time.Duration
	FirstSeen time.Time
	LastSeen  time.Time
}

// SinkConfig configures the measurement sink.
type SinkConfig struct {
	Port *netem.Port
	// Expected lists the destination IPs to track (the CAM contents);
	// packets to other destinations are counted as strays.
	Expected []netip.Addr
	// Precision quantizes measured gaps (the FPGA's 70 µs); zero keeps
	// native resolution.
	Precision time.Duration
	Clock     clock.Clock
}

// Sink terminates probe flows and measures inter-packet gaps.
type Sink struct {
	cfg SinkConfig

	mu     sync.Mutex
	flows  map[netip.Addr]*FlowStats
	strays uint64
}

// NewSink builds a sink and attaches it to its port.
func NewSink(cfg SinkConfig) *Sink {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	s := &Sink{cfg: cfg, flows: make(map[netip.Addr]*FlowStats, len(cfg.Expected))}
	for _, d := range cfg.Expected {
		s.flows[d] = &FlowStats{}
	}
	if cfg.Port != nil {
		cfg.Port.Handle(s.HandleFrame)
	}
	return s
}

// HandleFrame ingests one received frame; exported so devices that own
// their port handler (e.g. a provider router that also answers ARP) can
// delegate probe accounting to the sink.
func (s *Sink) HandleFrame(frame []byte) {
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil || eth.Type != packet.EtherTypeIPv4 {
		return
	}
	var ip packet.IPv4
	if err := ip.DecodeFromBytes(eth.Payload); err != nil || ip.Protocol != packet.ProtoUDP {
		return
	}
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.flows[ip.Dst]
	if !ok {
		s.strays++
		return
	}
	if fs.Packets > 0 {
		gap := now.Sub(fs.LastSeen)
		if s.cfg.Precision > 0 {
			gap = gap / s.cfg.Precision * s.cfg.Precision
		}
		if gap > fs.MaxGap {
			fs.MaxGap = gap
		}
	} else {
		fs.FirstSeen = now
	}
	fs.Packets++
	fs.LastSeen = now
}

// Stats returns a snapshot for one destination.
func (s *Sink) Stats(dst netip.Addr) (FlowStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.flows[dst]
	if !ok {
		return FlowStats{}, false
	}
	return *fs, true
}

// MaxGaps returns every flow's maximum inter-packet gap — the convergence
// distribution of Fig. 5.
func (s *Sink) MaxGaps() map[netip.Addr]time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[netip.Addr]time.Duration, len(s.flows))
	for d, fs := range s.flows {
		out[d] = fs.MaxGap
	}
	return out
}

// Strays returns the count of packets to untracked destinations.
func (s *Sink) Strays() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.strays
}

// Reset clears measurements (e.g. after warm-up, before the failure).
func (s *Sink) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, fs := range s.flows {
		*fs = FlowStats{}
	}
	s.strays = 0
}
