package bfd

import (
	"errors"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"supercharged/internal/clock"
)

func TestControlPacketRoundTrip(t *testing.T) {
	in := ControlPacket{
		Version: Version, Diag: DiagNeighborDown, State: StateUp,
		Poll: true, Final: false, CPI: true, Demand: false,
		DetectMult: 3, MyDiscr: 0xdeadbeef, YourDiscr: 0x12345678,
		DesiredMinTx: 30 * time.Millisecond, RequiredMinRx: 50 * time.Millisecond,
		RequiredMinEchoRx: 0,
	}
	buf, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != PacketLen {
		t.Fatalf("len %d", len(buf))
	}
	var out ControlPacket
	if err := out.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestControlPacketValidation(t *testing.T) {
	base := ControlPacket{Version: Version, State: StateDown, DetectMult: 3, MyDiscr: 1,
		DesiredMinTx: time.Millisecond, RequiredMinRx: time.Millisecond}

	p := base
	p.DetectMult = 0
	if _, err := p.Marshal(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("marshal accepted detect mult 0")
	}
	p = base
	p.MyDiscr = 0
	if _, err := p.Marshal(); !errors.Is(err, ErrBadPacket) {
		t.Fatal("marshal accepted my discr 0")
	}

	good, _ := base.Marshal()
	var out ControlPacket

	trunc := good[:20]
	if err := out.Unmarshal(trunc); !errors.Is(err, ErrTruncated) {
		t.Fatal("accepted truncated packet")
	}
	badVer := append([]byte(nil), good...)
	badVer[0] = 0x3<<5 | badVer[0]&0x1f
	if err := out.Unmarshal(badVer); !errors.Is(err, ErrBadPacket) {
		t.Fatal("accepted bad version")
	}
	// YourDiscr 0 is only legal in Down/AdminDown.
	upZero := base
	upZero.State = StateUp
	upZero.YourDiscr = 0
	buf, _ := upZero.Marshal()
	if err := out.Unmarshal(buf); !errors.Is(err, ErrBadPacket) {
		t.Fatal("accepted Up with your-discr 0")
	}
}

func TestUnmarshalNeverPanicsQuick(t *testing.T) {
	f := func(b []byte) bool {
		var p ControlPacket
		_ = p.Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// pair wires two sessions through in-memory transports on one virtual
// clock.
func pair(v *clock.Virtual, txA, txB time.Duration) (*Session, *Session, func(State, Diag), *[]State) {
	var a, b *Session
	var mu sync.Mutex
	var transitions []State
	record := func(st State, d Diag) {
		mu.Lock()
		transitions = append(transitions, st)
		mu.Unlock()
	}
	a = NewSession(Config{
		LocalDiscr: 1, TxInterval: txA, DetectMult: 3, Clock: v,
		Transport:     FuncTransport(func(p []byte) error { b.HandlePacket(p); return nil }),
		OnStateChange: record,
	})
	b = NewSession(Config{
		LocalDiscr: 2, TxInterval: txB, DetectMult: 3, Clock: v,
		Transport: FuncTransport(func(p []byte) error { a.HandlePacket(p); return nil }),
	})
	return a, b, record, &transitions
}

func TestThreeWayHandshakeReachesUp(t *testing.T) {
	v := clock.NewVirtualAtZero()
	a, b, _, _ := pair(v, 30*time.Millisecond, 30*time.Millisecond)
	a.Start()
	b.Start()
	v.Advance(200 * time.Millisecond)
	if a.State() != StateUp || b.State() != StateUp {
		t.Fatalf("states %s/%s after handshake window", a.State(), b.State())
	}
	in, out := a.Counters()
	if in == 0 || out == 0 {
		t.Fatal("no packets counted")
	}
}

func TestDetectionTimeExpiryDeclaresDown(t *testing.T) {
	v := clock.NewVirtualAtZero()
	a, b, _, transitions := pair(v, 30*time.Millisecond, 30*time.Millisecond)
	a.Start()
	b.Start()
	v.Advance(200 * time.Millisecond)
	if a.State() != StateUp {
		t.Fatal("not up")
	}
	// Silence the peer: stop B entirely (its Stop also halts tx).
	b.Stop()
	start := v.Now()
	v.Advance(time.Second)
	if a.State() != StateDown {
		t.Fatalf("a still %s after peer silence", a.State())
	}
	// Detection must have taken ~3×30ms = 90ms (no jitter configured).
	var downAt time.Time
	_ = downAt
	// Find the Down transition among recorded ones; it is the last.
	if len(*transitions) == 0 || (*transitions)[len(*transitions)-1] != StateDown {
		t.Fatalf("transitions %v", *transitions)
	}
	// The detection window must be ≤ 4 tx intervals from the silence.
	if d := a.DetectionTime(); d != 90*time.Millisecond {
		t.Fatalf("detection time %v, want 90ms", d)
	}
	_ = start
}

func TestDetectionLatencyMatchesConfig(t *testing.T) {
	// The supercharged convergence budget hinges on detect = mult × interval.
	v := clock.NewVirtualAtZero()
	a, b, _, _ := pair(v, 30*time.Millisecond, 30*time.Millisecond)
	var downAt time.Duration
	aCfgHook(a, func(st State, d Diag) {
		if st == StateDown {
			downAt = v.Now().Sub(time.Unix(0, 0).UTC())
		}
	})
	a.Start()
	b.Start()
	v.Advance(150 * time.Millisecond)
	b.Stop()
	silenceAt := v.Now().Sub(time.Unix(0, 0).UTC())
	v.Advance(2 * time.Second)
	if downAt == 0 {
		t.Fatal("never went down")
	}
	gap := downAt - silenceAt
	if gap <= 0 || gap > 120*time.Millisecond {
		t.Fatalf("detected after %v, want ≤ ~90ms+interval", gap)
	}
}

// aCfgHook swaps the state-change callback (test helper).
func aCfgHook(s *Session, fn func(State, Diag)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.OnStateChange = fn
}

func TestAdminDownFromPeerForcesDown(t *testing.T) {
	v := clock.NewVirtualAtZero()
	a, b, _, _ := pair(v, 30*time.Millisecond, 30*time.Millisecond)
	a.Start()
	b.Start()
	v.Advance(200 * time.Millisecond)
	// Peer signals AdminDown explicitly.
	pkt := ControlPacket{Version: Version, State: StateAdminDown, DetectMult: 3,
		MyDiscr: 2, YourDiscr: 1, DesiredMinTx: time.Millisecond, RequiredMinRx: time.Millisecond}
	buf, _ := pkt.Marshal()
	a.HandlePacket(buf)
	if a.State() != StateDown {
		t.Fatalf("state %s after AdminDown", a.State())
	}
}

func TestPacketForWrongDiscriminatorIgnored(t *testing.T) {
	v := clock.NewVirtualAtZero()
	a, _, _, _ := pair(v, 30*time.Millisecond, 30*time.Millisecond)
	pkt := ControlPacket{Version: Version, State: StateDown, DetectMult: 3,
		MyDiscr: 99, YourDiscr: 42, // not our discriminator
		DesiredMinTx: time.Millisecond, RequiredMinRx: time.Millisecond}
	buf, _ := pkt.Marshal()
	a.HandlePacket(buf)
	if in, _ := a.Counters(); in != 0 {
		t.Fatal("foreign packet consumed")
	}
	if a.State() != StateDown {
		t.Fatal("state changed by foreign packet")
	}
}

func TestStoppedSessionStaysSilent(t *testing.T) {
	v := clock.NewVirtualAtZero()
	sent := 0
	s := NewSession(Config{
		LocalDiscr: 7, TxInterval: 10 * time.Millisecond, Clock: v,
		Transport: FuncTransport(func([]byte) error { sent++; return nil }),
	})
	s.Start()
	v.Advance(35 * time.Millisecond)
	if sent == 0 {
		t.Fatal("no transmissions before stop")
	}
	s.Stop()
	before := sent
	v.Advance(100 * time.Millisecond)
	if sent != before {
		t.Fatal("transmissions after Stop")
	}
	if s.State() != StateAdminDown {
		t.Fatalf("state %s after Stop", s.State())
	}
}

func TestSlowReceiverPacesSender(t *testing.T) {
	// RFC 5880 §6.8.3: we must not send faster than the peer's
	// RequiredMinRx.
	v := clock.NewVirtualAtZero()
	a, b, _, _ := pair(v, 10*time.Millisecond, 100*time.Millisecond)
	a.Start()
	b.Start()
	v.Advance(time.Second)
	_, aOut := a.Counters()
	// Roughly once per 100ms after negotiation, not once per 10ms.
	if aOut > 30 {
		t.Fatalf("sender ignored peer RequiredMinRx: %d packets in 1s", aOut)
	}
	if a.State() != StateUp || b.State() != StateUp {
		t.Fatal("sessions not up")
	}
}

func TestJitterKeepsIntervalWithinBounds(t *testing.T) {
	v := clock.NewVirtualAtZero()
	var times []time.Duration
	s := NewSession(Config{
		LocalDiscr: 3, TxInterval: 100 * time.Millisecond, Clock: v, Jitter: true, Seed: 42,
		Transport: FuncTransport(func([]byte) error {
			times = append(times, v.Now().Sub(time.Unix(0, 0).UTC()))
			return nil
		}),
	})
	s.Start()
	v.Advance(3 * time.Second)
	s.Stop()
	if len(times) < 10 {
		t.Fatalf("only %d transmissions", len(times))
	}
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap < 75*time.Millisecond || gap > 100*time.Millisecond {
			t.Fatalf("jittered gap %v outside [75ms,100ms]", gap)
		}
	}
}

func TestMuxDispatchByDiscriminatorAndPeer(t *testing.T) {
	v := clock.NewVirtualAtZero()
	var got []uint32
	s := NewSession(Config{
		LocalDiscr: 11, TxInterval: 10 * time.Millisecond, Clock: v,
		Transport: FuncTransport(func([]byte) error { return nil }),
	})
	_ = got
	m := NewMux()
	m.Register(s, "192.0.2.9:3784")

	// Initial Down packet with YourDiscr 0 routes by peer address.
	down := ControlPacket{Version: Version, State: StateDown, DetectMult: 3, MyDiscr: 77,
		DesiredMinTx: time.Millisecond, RequiredMinRx: time.Millisecond}
	buf, _ := down.Marshal()
	if !m.Dispatch(buf, "192.0.2.9:3784") {
		t.Fatal("peer-keyed dispatch failed")
	}
	if s.State() != StateInit {
		t.Fatalf("state %s after Down packet", s.State())
	}

	// Subsequent packets route by discriminator.
	init := down
	init.State = StateInit
	init.YourDiscr = 11
	buf, _ = init.Marshal()
	if !m.Dispatch(buf, "somewhere-else") {
		t.Fatal("discriminator dispatch failed")
	}
	if s.State() != StateUp {
		t.Fatalf("state %s", s.State())
	}

	// Unknown packets are not consumed.
	foreign := down
	foreign.MyDiscr = 5
	buf, _ = foreign.Marshal()
	if m.Dispatch(buf, "1.2.3.4:9") {
		t.Fatal("foreign packet consumed")
	}
	m.Unregister(s, "192.0.2.9:3784")
	buf, _ = init.Marshal()
	if m.Dispatch(buf, "192.0.2.9:3784") {
		t.Fatal("dispatch after unregister")
	}
}

func TestUDPTransportEndToEnd(t *testing.T) {
	// Real sockets: two sessions over loopback UDP reach Up and detect a
	// failure when one socket closes.
	mkConn := func() *net.UDPConn {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	connA, connB := mkConn(), mkConn()
	defer connA.Close()
	defer connB.Close()

	upA := make(chan struct{}, 1)
	downA := make(chan struct{}, 1)
	a := NewSession(Config{
		LocalDiscr: 100, TxInterval: 20 * time.Millisecond, DetectMult: 3,
		Transport: &UDPTransport{Conn: connA, Peer: connB.LocalAddr().(*net.UDPAddr)},
		OnStateChange: func(st State, d Diag) {
			switch st {
			case StateUp:
				select {
				case upA <- struct{}{}:
				default:
				}
			case StateDown:
				select {
				case downA <- struct{}{}:
				default:
				}
			}
		},
	})
	b := NewSession(Config{
		LocalDiscr: 200, TxInterval: 20 * time.Millisecond, DetectMult: 3,
		Transport: &UDPTransport{Conn: connB, Peer: connA.LocalAddr().(*net.UDPAddr)},
	})
	muxA, muxB := NewMux(), NewMux()
	muxA.Register(a, connB.LocalAddr().String())
	muxB.Register(b, connA.LocalAddr().String())
	go muxA.ServeUDP(connA)
	go muxB.ServeUDP(connB)
	a.Start()
	b.Start()
	defer a.Stop()

	select {
	case <-upA:
	case <-time.After(5 * time.Second):
		t.Fatal("session never reached Up over UDP")
	}
	b.Stop() // peer goes silent
	select {
	case <-downA:
	case <-time.After(5 * time.Second):
		t.Fatal("failure not detected over UDP")
	}
}

func TestStateAndDiagStrings(t *testing.T) {
	if StateUp.String() != "Up" || StateDown.String() != "Down" || StateInit.String() != "Init" || StateAdminDown.String() != "AdminDown" {
		t.Fatal("state strings")
	}
	if DiagControlTimeExpired.String() == "" || Diag(20).String() == "" {
		t.Fatal("diag strings")
	}
}
