package bfd

import (
	"net"
	"sync"
)

// Port is the RFC 5881 single-hop BFD control port.
const Port = 3784

// UDPTransport sends control packets to a fixed peer over a shared UDP
// socket.
type UDPTransport struct {
	Conn *net.UDPConn
	Peer *net.UDPAddr
}

// Send implements Transport.
func (t *UDPTransport) Send(pkt []byte) error {
	_, err := t.Conn.WriteToUDP(pkt, t.Peer)
	return err
}

// Mux demultiplexes received control packets to sessions by the packet's
// YourDiscriminator field, falling back to the source address for initial
// Down packets that carry YourDiscr 0 (RFC 5880 §6.8.6).
type Mux struct {
	mu      sync.RWMutex
	byDiscr map[uint32]*Session
	byPeer  map[string]*Session
}

// NewMux returns an empty demultiplexer.
func NewMux() *Mux {
	return &Mux{byDiscr: make(map[uint32]*Session), byPeer: make(map[string]*Session)}
}

// Register routes packets with YourDiscr == the session's local
// discriminator — or packets from peerKey carrying YourDiscr 0 — to s.
// peerKey is typically the peer's "ip:port" string.
func (m *Mux) Register(s *Session, peerKey string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byDiscr[s.LocalDiscr()] = s
	if peerKey != "" {
		m.byPeer[peerKey] = s
	}
}

// Unregister removes the session.
func (m *Mux) Unregister(s *Session, peerKey string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.byDiscr, s.LocalDiscr())
	if peerKey != "" {
		delete(m.byPeer, peerKey)
	}
}

// Dispatch routes one received packet. It reports whether a session
// consumed it.
func (m *Mux) Dispatch(buf []byte, peerKey string) bool {
	var p ControlPacket
	if err := p.Unmarshal(buf); err != nil {
		return false
	}
	m.mu.RLock()
	s := m.byDiscr[p.YourDiscr]
	if s == nil && p.YourDiscr == 0 {
		s = m.byPeer[peerKey]
	}
	m.mu.RUnlock()
	if s == nil {
		return false
	}
	s.HandlePacket(buf)
	return true
}

// ServeUDP reads packets from conn and dispatches them until the connection
// is closed. Run it in a goroutine.
func (m *Mux) ServeUDP(conn *net.UDPConn) {
	buf := make([]byte, 1500)
	for {
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		m.Dispatch(pkt, from.String())
	}
}
