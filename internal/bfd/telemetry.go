package bfd

import (
	"supercharged/internal/telemetry"
)

// This file is BFD's telemetry surface; cmd/modelhash excludes telemetry
// files from the ModelVersion source hash.

// Metrics counts BFD session activity and measures detection latency. A
// nil *Metrics disables every hook (one branch each).
type Metrics struct {
	Transitions *telemetry.Counter
	Detections  *telemetry.Counter
	// DetectionTime observes the session's negotiated detection timeout
	// (seconds) each time the detection timer actually fires — the
	// failure-detection share of the paper's ~150 ms convergence budget.
	DetectionTime *telemetry.Histogram
}

// NewMetrics registers the BFD series on reg (nil reg returns nil, the
// disabled bundle).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Transitions: reg.Counter("supercharged_bfd_state_transitions_total",
			"BFD session state transitions (all edges)."),
		Detections: reg.Counter("supercharged_bfd_detections_total",
			"Failures declared by detection-timer expiry."),
		DetectionTime: reg.Histogram("supercharged_bfd_detection_seconds",
			"Negotiated detection timeout at each detection-timer expiry.", nil),
	}
}

func (m *Metrics) transition() {
	if m != nil {
		m.Transitions.Inc()
	}
}

func (m *Metrics) detected(seconds float64) {
	if m != nil {
		m.Detections.Inc()
		m.DetectionTime.Observe(seconds)
	}
}
