// Package bfd implements Bidirectional Forwarding Detection (RFC 5880)
// asynchronous mode: the control packet codec, the three-way session state
// machine (Down → Init → Up), negotiated transmission intervals with
// jitter, and the detection timer whose expiry is the fast failure signal
// the supercharged controller acts on (the paper uses FreeBFD for this
// role). Transports are pluggable: UDP (RFC 5881 single-hop encapsulation)
// for real deployments, in-memory for the emulated test-bed.
package bfd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// State is a BFD session state (RFC 5880 §4.1).
type State uint8

// Session states.
const (
	StateAdminDown State = 0
	StateDown      State = 1
	StateInit      State = 2
	StateUp        State = 3
)

func (s State) String() string {
	switch s {
	case StateAdminDown:
		return "AdminDown"
	case StateDown:
		return "Down"
	case StateInit:
		return "Init"
	case StateUp:
		return "Up"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Diag is a diagnostic code (RFC 5880 §4.1).
type Diag uint8

// Diagnostic codes.
const (
	DiagNone               Diag = 0
	DiagControlTimeExpired Diag = 1
	DiagEchoFailed         Diag = 2
	DiagNeighborDown       Diag = 3
	DiagForwardingReset    Diag = 4
	DiagPathDown           Diag = 5
	DiagConcatPathDown     Diag = 6
	DiagAdminDown          Diag = 7
	DiagRevConcatPathDown  Diag = 8
)

func (d Diag) String() string {
	names := []string{
		"none", "control detection time expired", "echo failed",
		"neighbor signaled session down", "forwarding plane reset",
		"path down", "concatenated path down", "administratively down",
		"reverse concatenated path down",
	}
	if int(d) < len(names) {
		return names[d]
	}
	return fmt.Sprintf("diag(%d)", uint8(d))
}

// PacketLen is the length of a control packet without authentication.
const PacketLen = 24

// Version is the protocol version implemented (RFC 5880).
const Version = 1

// ControlPacket is a BFD control packet (RFC 5880 §4.1), without the
// optional authentication section.
type ControlPacket struct {
	Version    uint8
	Diag       Diag
	State      State
	Poll       bool
	Final      bool
	CPI        bool // Control Plane Independent
	AuthParams bool
	Demand     bool
	Multipoint bool
	DetectMult uint8
	MyDiscr    uint32
	YourDiscr  uint32
	// Intervals are in microseconds on the wire; kept as durations here.
	DesiredMinTx      time.Duration
	RequiredMinRx     time.Duration
	RequiredMinEchoRx time.Duration
}

// Codec errors.
var (
	ErrTruncated = errors.New("bfd: truncated packet")
	ErrBadPacket = errors.New("bfd: invalid packet")
)

// Marshal encodes the packet.
func (p *ControlPacket) Marshal() ([]byte, error) {
	if p.DetectMult == 0 {
		return nil, fmt.Errorf("%w: detect multiplier 0", ErrBadPacket)
	}
	if p.MyDiscr == 0 {
		return nil, fmt.Errorf("%w: my discriminator 0", ErrBadPacket)
	}
	out := make([]byte, PacketLen)
	out[0] = p.Version<<5 | uint8(p.Diag)&0x1f
	var flags uint8
	flags = uint8(p.State) << 6
	if p.Poll {
		flags |= 1 << 5
	}
	if p.Final {
		flags |= 1 << 4
	}
	if p.CPI {
		flags |= 1 << 3
	}
	if p.AuthParams {
		flags |= 1 << 2
	}
	if p.Demand {
		flags |= 1 << 1
	}
	if p.Multipoint {
		flags |= 1
	}
	out[1] = flags
	out[2] = p.DetectMult
	out[3] = PacketLen
	binary.BigEndian.PutUint32(out[4:8], p.MyDiscr)
	binary.BigEndian.PutUint32(out[8:12], p.YourDiscr)
	binary.BigEndian.PutUint32(out[12:16], uint32(p.DesiredMinTx.Microseconds()))
	binary.BigEndian.PutUint32(out[16:20], uint32(p.RequiredMinRx.Microseconds()))
	binary.BigEndian.PutUint32(out[20:24], uint32(p.RequiredMinEchoRx.Microseconds()))
	return out, nil
}

// Unmarshal decodes and validates a control packet per the RFC 5880 §6.8.6
// reception rules that concern the packet itself.
func (p *ControlPacket) Unmarshal(b []byte) error {
	if len(b) < PacketLen {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	version := b[0] >> 5
	if version != Version {
		return fmt.Errorf("%w: version %d", ErrBadPacket, version)
	}
	length := int(b[3])
	if length < PacketLen || length > len(b) {
		return fmt.Errorf("%w: length field %d", ErrBadPacket, length)
	}
	p.Version = version
	p.Diag = Diag(b[0] & 0x1f)
	p.State = State(b[1] >> 6)
	p.Poll = b[1]&(1<<5) != 0
	p.Final = b[1]&(1<<4) != 0
	p.CPI = b[1]&(1<<3) != 0
	p.AuthParams = b[1]&(1<<2) != 0
	p.Demand = b[1]&(1<<1) != 0
	p.Multipoint = b[1]&1 != 0
	p.DetectMult = b[2]
	if p.DetectMult == 0 {
		return fmt.Errorf("%w: detect multiplier 0", ErrBadPacket)
	}
	if p.Multipoint {
		return fmt.Errorf("%w: multipoint set", ErrBadPacket)
	}
	p.MyDiscr = binary.BigEndian.Uint32(b[4:8])
	if p.MyDiscr == 0 {
		return fmt.Errorf("%w: my discriminator 0", ErrBadPacket)
	}
	p.YourDiscr = binary.BigEndian.Uint32(b[8:12])
	if p.YourDiscr == 0 && p.State != StateDown && p.State != StateAdminDown {
		return fmt.Errorf("%w: your discriminator 0 in state %s", ErrBadPacket, p.State)
	}
	p.DesiredMinTx = time.Duration(binary.BigEndian.Uint32(b[12:16])) * time.Microsecond
	p.RequiredMinRx = time.Duration(binary.BigEndian.Uint32(b[16:20])) * time.Microsecond
	p.RequiredMinEchoRx = time.Duration(binary.BigEndian.Uint32(b[20:24])) * time.Microsecond
	return nil
}
