package bfd

import (
	"math/rand"
	"sync"
	"time"

	"supercharged/internal/clock"
)

// Transport sends BFD control packets toward the peer. Implementations:
// UDPTransport (real sockets) and FuncTransport (emulated links).
type Transport interface {
	Send(pkt []byte) error
}

// FuncTransport adapts a function to Transport.
type FuncTransport func(pkt []byte) error

// Send implements Transport.
func (f FuncTransport) Send(pkt []byte) error { return f(pkt) }

// Session defaults; the lab's 30 ms × 3 gives the ~90 ms detection share of
// the paper's 150 ms supercharged convergence.
const (
	DefaultTxInterval = 30 * time.Millisecond
	DefaultDetectMult = 3
)

// Config configures a BFD session.
type Config struct {
	// LocalDiscr must be nonzero and unique per session on this system.
	LocalDiscr uint32
	// TxInterval is the desired min TX interval (and our required min RX).
	TxInterval time.Duration
	// DetectMult is the detection time multiplier.
	DetectMult uint8
	// Transport carries outgoing control packets.
	Transport Transport
	// Clock drives all timers. Any clock.Source works: the session is
	// agnostic to whether the callbacks come from the virtual lab, the
	// paced wall source or free-running system timers (nil = system).
	Clock clock.Clock
	// OnStateChange fires on every transition with the new state and the
	// diagnostic; the controller's convergence engine hooks the Up→Down
	// edge.
	OnStateChange func(State, Diag)
	// Jitter, if true, applies the RFC's 75–100% jitter to transmission
	// intervals. The deterministic simulation leaves it off.
	Jitter bool
	// Seed seeds the jitter source (0 = unjittered even with Jitter set).
	Seed int64
	// Logf, if set, receives diagnostics.
	Logf func(format string, args ...any)
	// Metrics, if set, counts transitions and observes detection
	// latency; nil disables the hooks.
	Metrics *Metrics
}

// Session is one asynchronous-mode BFD session.
type Session struct {
	cfg Config

	mu               sync.Mutex
	state            State
	diag             Diag
	remoteDisc       uint32
	remoteMinRx      time.Duration
	remoteDetectMult uint8
	remoteTx         time.Duration
	detect           clock.Timer
	txTimer          clock.Timer
	stopped          bool
	rng              *rand.Rand

	pktsIn, pktsOut uint64
}

// NewSession creates a session; call Start to begin transmitting.
func NewSession(cfg Config) *Session {
	if cfg.TxInterval == 0 {
		cfg.TxInterval = DefaultTxInterval
	}
	if cfg.DetectMult == 0 {
		cfg.DetectMult = DefaultDetectMult
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.LocalDiscr == 0 {
		panic("bfd: LocalDiscr must be nonzero")
	}
	s := &Session{cfg: cfg, state: StateDown}
	if cfg.Jitter && cfg.Seed != 0 {
		s.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return s
}

// State returns the current session state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// LocalDiscr returns the session's local discriminator.
func (s *Session) LocalDiscr() uint32 { return s.cfg.LocalDiscr }

// Counters returns packets received and sent.
func (s *Session) Counters() (in, out uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pktsIn, s.pktsOut
}

// DetectionTime returns the current detection timeout: remote DetectMult ×
// max(remote DesiredMinTx, local TxInterval)... per RFC 5880 §6.8.4 the
// detection time in async mode is the remote's DetectMult times the agreed
// transmit interval of the remote system.
func (s *Session) DetectionTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detectionTimeLocked()
}

func (s *Session) detectionTimeLocked() time.Duration {
	mult := s.remoteDetectMult
	if mult == 0 {
		mult = s.cfg.DetectMult
	}
	interval := s.remoteTx
	if s.cfg.TxInterval > interval {
		// The remote may not send faster than our RequiredMinRx.
		interval = s.cfg.TxInterval
	}
	if interval == 0 {
		interval = s.cfg.TxInterval
	}
	return time.Duration(mult) * interval
}

// Start begins periodic transmission.
func (s *Session) Start() {
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		return
	}
	s.transmitAndReschedule()
}

// Stop halts transmission and marks the session AdminDown; no further
// callbacks fire.
func (s *Session) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	s.state = StateAdminDown
	if s.txTimer != nil {
		s.txTimer.Stop()
	}
	if s.detect != nil {
		s.detect.Stop()
	}
}

func (s *Session) transmitAndReschedule() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	pkt := ControlPacket{
		Version:       Version,
		Diag:          s.diag,
		State:         s.state,
		DetectMult:    s.cfg.DetectMult,
		MyDiscr:       s.cfg.LocalDiscr,
		YourDiscr:     s.remoteDisc,
		DesiredMinTx:  s.cfg.TxInterval,
		RequiredMinRx: s.cfg.TxInterval,
	}
	s.pktsOut++
	interval := s.txInterval()
	s.mu.Unlock()

	if buf, err := pkt.Marshal(); err == nil {
		if err := s.cfg.Transport.Send(buf); err != nil {
			s.cfg.Logf("bfd %d: send: %v", s.cfg.LocalDiscr, err)
		}
	}
	s.mu.Lock()
	if !s.stopped {
		s.txTimer = s.cfg.Clock.AfterFunc(interval, s.transmitAndReschedule)
	}
	s.mu.Unlock()
}

// txInterval applies negotiated pacing: we must not send faster than the
// remote's RequiredMinRx. Jitter (75–100%) is applied when configured.
func (s *Session) txInterval() time.Duration {
	interval := s.cfg.TxInterval
	if s.remoteMinRx > interval {
		interval = s.remoteMinRx
	}
	if s.rng != nil {
		frac := 0.75 + 0.25*s.rng.Float64()
		interval = time.Duration(float64(interval) * frac)
	}
	return interval
}

// HandlePacket processes one received control packet (RFC 5880 §6.8.6).
func (s *Session) HandlePacket(buf []byte) {
	var p ControlPacket
	if err := p.Unmarshal(buf); err != nil {
		s.cfg.Logf("bfd %d: drop: %v", s.cfg.LocalDiscr, err)
		return
	}
	if p.YourDiscr != 0 && p.YourDiscr != s.cfg.LocalDiscr {
		return // not for this session
	}

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.pktsIn++
	s.remoteDisc = p.MyDiscr
	s.remoteMinRx = p.RequiredMinRx
	s.remoteTx = p.DesiredMinTx
	s.remoteDetectMult = p.DetectMult

	old := s.state
	var next State
	switch {
	case p.State == StateAdminDown:
		next = StateDown
	default:
		switch old {
		case StateDown:
			if p.State == StateDown {
				next = StateInit
			} else if p.State == StateInit {
				next = StateUp
			} else {
				next = old // Up packets in Down state are ignored
			}
		case StateInit:
			if p.State == StateInit || p.State == StateUp {
				next = StateUp
			} else {
				next = old
			}
		case StateUp:
			if p.State == StateDown {
				next = StateDown
				s.diag = DiagNeighborDown
			} else {
				next = old
			}
		default:
			next = old
		}
	}
	changed := next != old
	s.state = next
	if next == StateUp || next == StateInit {
		s.armDetectLocked()
	}
	cb := s.cfg.OnStateChange
	diag := s.diag
	s.mu.Unlock()

	if changed {
		s.cfg.Metrics.transition()
		s.cfg.Logf("bfd %d: %s -> %s", s.cfg.LocalDiscr, old, next)
		if cb != nil {
			cb(next, diag)
		}
	}
}

func (s *Session) armDetectLocked() {
	d := s.detectionTimeLocked()
	if s.detect != nil {
		s.detect.Reset(d)
		return
	}
	s.detect = s.cfg.Clock.AfterFunc(d, s.detectExpired)
}

// detectExpired fires when no control packet arrived within the detection
// time: the peer (or the path to it) is declared down. This is the paper's
// fast failure signal.
func (s *Session) detectExpired() {
	s.mu.Lock()
	if s.stopped || (s.state != StateUp && s.state != StateInit) {
		s.mu.Unlock()
		return
	}
	old := s.state
	s.state = StateDown
	s.diag = DiagControlTimeExpired
	cb := s.cfg.OnStateChange
	detection := s.detectionTimeLocked()
	s.mu.Unlock()

	s.cfg.Metrics.transition()
	s.cfg.Metrics.detected(detection.Seconds())
	s.cfg.Logf("bfd %d: %s -> Down (detection time expired)", s.cfg.LocalDiscr, old)
	if cb != nil {
		cb(StateDown, DiagControlTimeExpired)
	}
}
