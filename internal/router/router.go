// Package router models the legacy edge router the paper supercharges
// (their Cisco Nexus 7k "R1", NX-OS, no hierarchical FIB): a BGP speaker
// with per-neighbor preferences, ARP resolution of next-hops, and a flat
// FIB whose hardware updater installs entries strictly one at a time. The
// router is deliberately unaware of the supercharger — it just peers with
// whatever speaks BGP at it and resolves whatever next-hop it learns,
// which is exactly the property the paper exploits.
package router

import (
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/dataplane"
	"supercharged/internal/netem"
	"supercharged/internal/packet"
)

// NeighborConfig is one BGP neighbor of the router.
type NeighborConfig struct {
	Addr netip.Addr
	AS   uint32
	// Weight implements the paper's "R1 is configured to prefer R2":
	// highest weight wins the decision process.
	Weight uint32
	// Dial actively connects to the neighbor (the usual arrangement in
	// the test-bed: the router dials the controller or the providers).
	Dial func() (net.Conn, error)
	// HoldTime overrides the session hold time.
	HoldTime time.Duration
}

// Config configures the router.
type Config struct {
	AS       uint32
	RouterID netip.Addr
	// IfIP and IfMAC are the router's single data-plane interface (the
	// link into the SDN switch in Fig. 4).
	IfIP  netip.Addr
	IfMAC packet.MAC
	// Port is the data-plane attachment.
	Port *netem.Port
	// PerEntry is the flat FIB's per-entry install cost (the Nexus 7k's
	// ≈280 µs; small values keep real-mode tests fast).
	PerEntry time.Duration
	// ARPTimeout bounds next-hop resolution attempts.
	ARPTimeout time.Duration
	Neighbors  []NeighborConfig
	Clock      clock.Clock
	Logf       func(format string, args ...any)
}

// Router is the device.
type Router struct {
	cfg Config
	rib *bgp.RIB
	fib *dataplane.FlatFIB

	mu       sync.Mutex
	sessions map[netip.Addr]*bgp.Session
	arpCache map[netip.Addr]packet.MAC
	// pendingARP queues FIB operations waiting on next-hop resolution.
	pendingARP map[netip.Addr][]dataplane.FIBOp
	arpTimers  map[netip.Addr]clock.Timer
	stopped    bool

	buf *packet.Buffer

	// Drops counts data-plane packets dropped for lack of a route or
	// unresolved next-hop.
	drops uint64
}

// New builds the router; Start brings up sessions and the data plane.
func New(cfg Config) *Router {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.ARPTimeout == 0 {
		cfg.ARPTimeout = 2 * time.Second
	}
	return &Router{
		cfg:        cfg,
		rib:        bgp.NewRIB(),
		fib:        dataplane.NewFlatFIB(cfg.Clock, cfg.PerEntry),
		sessions:   make(map[netip.Addr]*bgp.Session),
		arpCache:   make(map[netip.Addr]packet.MAC),
		pendingARP: make(map[netip.Addr][]dataplane.FIBOp),
		arpTimers:  make(map[netip.Addr]clock.Timer),
		buf:        packet.NewBuffer(),
	}
}

// FIB exposes the router's forwarding table (tests, ops).
func (r *Router) FIB() *dataplane.FlatFIB { return r.fib }

// RIB exposes the router's BGP table.
func (r *Router) RIB() *bgp.RIB { return r.rib }

// Drops returns the count of data-plane drops.
func (r *Router) Drops() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// Session returns the BGP session to the given neighbor.
func (r *Router) Session(addr netip.Addr) (*bgp.Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[addr]
	return s, ok
}

// Start attaches the data plane and brings up every neighbor session.
func (r *Router) Start() {
	if r.cfg.Port != nil {
		r.cfg.Port.Handle(r.handleFrame)
	}
	for _, nb := range r.cfg.Neighbors {
		nb := nb
		meta := bgp.PeerMeta{Addr: nb.Addr, AS: nb.AS, ID: nb.Addr, Weight: nb.Weight}
		sess := bgp.NewSession(bgp.SessionConfig{
			LocalAS:  r.cfg.AS,
			LocalID:  r.cfg.RouterID,
			PeerAS:   nb.AS,
			PeerAddr: nb.Addr,
			HoldTime: nb.HoldTime,
			Dial:     nb.Dial,
			Clock:    r.cfg.Clock,
			Logf:     r.cfg.Logf,
			OnUpdate: func(u *bgp.Update) { r.applyUpdate(meta, u) },
			OnDown:   func(error) { r.PeerDown(nb.Addr) },
		})
		r.mu.Lock()
		r.sessions[nb.Addr] = sess
		r.mu.Unlock()
		sess.Start()
	}
}

// Stop tears the router down.
func (r *Router) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	sessions := make([]*bgp.Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	for _, t := range r.arpTimers {
		t.Stop()
	}
	r.mu.Unlock()
	for _, s := range sessions {
		s.Stop()
	}
}

// Accept hands a passive transport connection to the session for the given
// neighbor (used when the neighbor dials us).
func (r *Router) Accept(addr netip.Addr, conn net.Conn) error {
	r.mu.Lock()
	sess, ok := r.sessions[addr]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("router: no neighbor %v", addr)
	}
	go sess.Accept(conn)
	return nil
}

// PeerDown withdraws everything learned from a neighbor and starts the
// (slow) FIB walk — the standalone convergence path. External failure
// detectors (BFD) call this directly; session loss calls it automatically.
func (r *Router) PeerDown(addr netip.Addr) {
	changes := r.rib.RemovePeer(addr)
	r.enqueueChanges(changes)
	r.cfg.Logf("router: peer %v down, %d prefixes affected", addr, len(changes))
}

// applyUpdate runs one received UPDATE through the RIB and schedules the
// resulting FIB work.
func (r *Router) applyUpdate(meta bgp.PeerMeta, u *bgp.Update) {
	r.enqueueChanges(r.rib.Update(meta, u))
}

// enqueueChanges turns RIB changes into FIB operations, resolving
// next-hops through ARP. Ops are enqueued in FIB walk order, preserving
// the paper's entry-by-entry serialization.
func (r *Router) enqueueChanges(changes []bgp.Change) {
	type pending struct {
		pos int
		op  dataplane.FIBOp
		nh  netip.Addr // unresolved next-hop, if any
	}
	items := make([]pending, 0, len(changes))
	r.mu.Lock()
	for _, ch := range changes {
		if len(ch.New) == 0 {
			pos, _ := r.fib.Position(ch.Prefix)
			items = append(items, pending{pos: pos, op: dataplane.FIBOp{Prefix: ch.Prefix, Delete: true}})
			continue
		}
		nh := ch.New[0].NextHop()
		pos, known := r.fib.Position(ch.Prefix)
		if !known {
			pos = int(^uint(0) >> 1) // new prefixes append at the end
		}
		if mac, ok := r.arpCache[nh]; ok {
			items = append(items, pending{pos: pos, op: dataplane.FIBOp{
				Prefix: ch.Prefix, NH: dataplane.L2NH{MAC: mac, Port: 0},
			}})
		} else {
			items = append(items, pending{pos: pos, op: dataplane.FIBOp{Prefix: ch.Prefix}, nh: nh})
		}
	}
	r.mu.Unlock()

	sort.SliceStable(items, func(i, j int) bool { return items[i].pos < items[j].pos })

	var ready []dataplane.FIBOp
	for _, it := range items {
		if it.nh.IsValid() {
			r.queueForARP(it.nh, it.op)
			continue
		}
		ready = append(ready, it.op)
	}
	if len(ready) > 0 {
		r.fib.Enqueue(ready...)
	}
}

// queueForARP parks an op until the next-hop resolves, kicking off an ARP
// request if none is in flight.
func (r *Router) queueForARP(nh netip.Addr, op dataplane.FIBOp) {
	r.mu.Lock()
	first := len(r.pendingARP[nh]) == 0
	r.pendingARP[nh] = append(r.pendingARP[nh], op)
	r.mu.Unlock()
	if first {
		r.sendARPRequest(nh)
	}
}

func (r *Router) sendARPRequest(nh netip.Addr) {
	if r.cfg.Port == nil {
		return
	}
	frame, err := packet.ARPRequestFrame(packet.NewBuffer(), r.cfg.IfMAC, r.cfg.IfIP, nh)
	if err != nil {
		r.cfg.Logf("router: arp request: %v", err)
		return
	}
	r.cfg.Port.Send(frame)
	// Retry until resolved or timeout.
	r.mu.Lock()
	if t, ok := r.arpTimers[nh]; ok {
		t.Stop()
	}
	deadline := r.cfg.Clock.Now().Add(r.cfg.ARPTimeout)
	var retry func()
	retry = func() {
		r.mu.Lock()
		_, resolved := r.arpCache[nh]
		waiting := len(r.pendingARP[nh])
		stopped := r.stopped
		r.mu.Unlock()
		if resolved || waiting == 0 || stopped || r.cfg.Clock.Now().After(deadline) {
			return
		}
		frame, err := packet.ARPRequestFrame(packet.NewBuffer(), r.cfg.IfMAC, r.cfg.IfIP, nh)
		if err == nil {
			r.cfg.Port.Send(frame)
		}
		r.mu.Lock()
		if !r.stopped {
			r.arpTimers[nh] = r.cfg.Clock.AfterFunc(100*time.Millisecond, retry)
		}
		r.mu.Unlock()
	}
	if !r.stopped {
		r.arpTimers[nh] = r.cfg.Clock.AfterFunc(100*time.Millisecond, retry)
	}
	r.mu.Unlock()
}

// handleFrame is the data plane: ARP processing plus LPM forwarding with
// L2 rewrite.
func (r *Router) handleFrame(frame []byte) {
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		return
	}
	switch eth.Type {
	case packet.EtherTypeARP:
		r.handleARP(eth)
	case packet.EtherTypeIPv4:
		if eth.Dst != r.cfg.IfMAC && !eth.Dst.IsBroadcast() {
			return // not for us
		}
		r.forward(eth)
	}
}

func (r *Router) handleARP(eth packet.Ethernet) {
	var arp packet.ARP
	if err := arp.DecodeFromBytes(eth.Payload); err != nil {
		return
	}
	switch arp.Op {
	case packet.ARPRequest:
		if arp.TargetIP == r.cfg.IfIP {
			reply, err := packet.ARPReplyFrame(packet.NewBuffer(), r.cfg.IfMAC, r.cfg.IfIP, arp)
			if err == nil {
				r.cfg.Port.Send(reply)
			}
		}
	case packet.ARPReply:
		r.learnARP(arp.SenderIP, arp.SenderHW)
	}
}

// learnARP caches a resolution and flushes parked FIB operations.
func (r *Router) learnARP(ip netip.Addr, mac packet.MAC) {
	r.mu.Lock()
	r.arpCache[ip] = mac
	parked := r.pendingARP[ip]
	delete(r.pendingARP, ip)
	if t, ok := r.arpTimers[ip]; ok {
		t.Stop()
		delete(r.arpTimers, ip)
	}
	r.mu.Unlock()
	if len(parked) == 0 {
		return
	}
	for i := range parked {
		parked[i].NH = dataplane.L2NH{MAC: mac, Port: 0}
	}
	r.fib.Enqueue(parked...)
}

// forward performs the LPM lookup and L2 rewrite.
func (r *Router) forward(eth packet.Ethernet) {
	var ip packet.IPv4
	if err := ip.DecodeFromBytes(eth.Payload); err != nil {
		return
	}
	nh, _, ok := r.fib.Lookup(ip.Dst)
	if !ok {
		r.mu.Lock()
		r.drops++
		r.mu.Unlock()
		return
	}
	if ip.TTL <= 1 {
		return
	}
	// Rewrite on a copy: dst MAC = next-hop record, src = ours, TTL
	// decrement, header checksum recomputed.
	out := make([]byte, len(eth.Payload)+packet.EthernetHeaderLen)
	copy(out[0:6], nh.MAC[:])
	copy(out[6:12], r.cfg.IfMAC[:])
	out[12] = byte(packet.EtherTypeIPv4 >> 8)
	out[13] = byte(packet.EtherTypeIPv4 & 0xff)
	copy(out[14:], eth.Payload)
	out[14+8]-- // TTL
	ihl := int(out[14]&0x0f) * 4
	out[14+10], out[14+11] = 0, 0
	sum := packet.Checksum(out[14 : 14+ihl])
	out[14+10], out[14+11] = byte(sum>>8), byte(sum&0xff)
	r.cfg.Port.Send(out)
}

// ARPCacheLen returns the number of resolved next-hops (tests, ops).
func (r *Router) ARPCacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.arpCache)
}
