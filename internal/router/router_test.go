package router

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/netem"
	"supercharged/internal/packet"
)

var (
	routerMAC = packet.MustParseMAC("00:ff:00:00:00:01")
	peerMAC   = packet.MustParseMAC("01:aa:00:00:00:01")
	peer2MAC  = packet.MustParseMAC("02:bb:00:00:00:01")
	routerIP  = netip.MustParseAddr("203.0.113.254")
	peerIP    = netip.MustParseAddr("203.0.113.1")
	peer2IP   = netip.MustParseAddr("203.0.113.2")
)

// fakePeer answers ARP for its IP and records received IPv4 frames.
type fakePeer struct {
	mac  packet.MAC
	ip   netip.Addr
	port *netem.Port
	got  chan []byte
}

func newFakePeer(mac packet.MAC, ip netip.Addr, port *netem.Port) *fakePeer {
	p := &fakePeer{mac: mac, ip: ip, port: port, got: make(chan []byte, 256)}
	port.Handle(func(frame []byte) {
		var eth packet.Ethernet
		if eth.DecodeFromBytes(frame) != nil {
			return
		}
		switch eth.Type {
		case packet.EtherTypeARP:
			var arp packet.ARP
			if arp.DecodeFromBytes(eth.Payload) == nil && arp.Op == packet.ARPRequest && arp.TargetIP == p.ip {
				reply, _ := packet.ARPReplyFrame(packet.NewBuffer(), p.mac, p.ip, arp)
				port.Send(reply)
			}
		case packet.EtherTypeIPv4:
			if eth.Dst == p.mac {
				select {
				case p.got <- append([]byte(nil), frame...):
				default:
				}
			}
		}
	})
	return p
}

// hub wires N ports into a broadcast domain (stand-in for the switch in
// router-only tests).
type hub struct {
	clk   clock.Clock
	ports []*netem.Port
}

func newHub(clk clock.Clock) *hub { return &hub{clk: clk} }

// attach creates a link; the hub floods frames arriving on its side to
// every other device port.
func (h *hub) attach(name string) *netem.Port {
	link := netem.NewLink(h.clk, name, name+"-hub", 0)
	dev, hubSide := link.Ports()
	idx := len(h.ports)
	h.ports = append(h.ports, hubSide)
	hubSide.Handle(func(frame []byte) {
		for i, p := range h.ports {
			if i != idx {
				p.Send(frame)
			}
		}
	})
	return dev
}

func pipeDialer() (func() (net.Conn, error), <-chan net.Conn) {
	ch := make(chan net.Conn, 8)
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		ch <- b
		return a, nil
	}, ch
}

// peerSpeaker runs the provider side of the BGP session.
func peerSpeaker(t *testing.T, as uint32, id netip.Addr, accepted <-chan net.Conn) *bgp.Session {
	t.Helper()
	sess := bgp.NewSession(bgp.SessionConfig{
		LocalAS: as, LocalID: id, PeerAS: 65001, PeerAddr: routerIP,
	})
	go func() {
		for conn := range accepted {
			go sess.Accept(conn)
		}
	}()
	return sess
}

func TestRouterLearnsResolvesInstallsForwards(t *testing.T) {
	hub := newHub(clock.Real{})
	routerPort := hub.attach("r1")
	peerPort := hub.attach("r2")
	peer := newFakePeer(peerMAC, peerIP, peerPort)

	dial, accepted := pipeDialer()
	r := New(Config{
		AS: 65001, RouterID: routerIP, IfIP: routerIP, IfMAC: routerMAC,
		Port: routerPort, PerEntry: 100 * time.Microsecond,
		Neighbors: []NeighborConfig{{Addr: peerIP, AS: 65002, Weight: 100, Dial: dial}},
	})
	sess := peerSpeaker(t, 65002, peerIP, accepted)
	defer sess.Stop()
	r.Start()
	defer r.Stop()

	if err := sess.WaitEstablished(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Announce a prefix with the peer as next-hop.
	err := sess.Send(&bgp.Update{
		Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(65002), NextHop: peerIP},
		NLRI:  []netip.Prefix{netip.MustParsePrefix("1.0.0.0/24")},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The router must ARP for the next-hop and install the FIB entry.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if nh, ok := r.FIB().Get(netip.MustParsePrefix("1.0.0.0/24")); ok && nh.MAC == peerMAC {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("FIB entry never installed (arp cache %d, fib %d)", r.ARPCacheLen(), r.FIB().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Data plane: a packet for 1.0.0.5 must come out rewritten to the peer.
	probe, _ := packet.UDPFrame(packet.NewBuffer(), packet.MustParseMAC("00:01:00:00:00:09"), routerMAC,
		netip.MustParseAddr("192.0.2.9"), netip.MustParseAddr("1.0.0.5"), 40000, 9, []byte("x"))
	// Inject via the hub from a third port.
	injector := hub.attach("host")
	injector.Send(probe)
	select {
	case frame := <-peer.got:
		var eth packet.Ethernet
		var ip packet.IPv4
		if eth.DecodeFromBytes(frame) != nil || ip.DecodeFromBytes(eth.Payload) != nil {
			t.Fatal("bad forwarded frame")
		}
		if eth.Src != routerMAC || eth.Dst != peerMAC {
			t.Fatalf("L2 rewrite wrong: %s -> %s", eth.Src, eth.Dst)
		}
		if ip.TTL != 63 {
			t.Fatalf("TTL %d, want 63", ip.TTL)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("packet not forwarded")
	}
}

func TestRouterFailoverWalksFIBEntryByEntry(t *testing.T) {
	hub := newHub(clock.Real{})
	routerPort := hub.attach("r1")
	newFakePeer(peerMAC, peerIP, hub.attach("r2"))
	newFakePeer(peer2MAC, peer2IP, hub.attach("r3"))

	dial1, accepted1 := pipeDialer()
	dial2, accepted2 := pipeDialer()
	const perEntry = 200 * time.Microsecond
	r := New(Config{
		AS: 65001, RouterID: routerIP, IfIP: routerIP, IfMAC: routerMAC,
		Port: routerPort, PerEntry: perEntry,
		Neighbors: []NeighborConfig{
			{Addr: peerIP, AS: 65002, Weight: 200, Dial: dial1},
			{Addr: peer2IP, AS: 65003, Weight: 100, Dial: dial2},
		},
	})
	s1 := peerSpeaker(t, 65002, peerIP, accepted1)
	s2 := peerSpeaker(t, 65003, peer2IP, accepted2)
	defer s1.Stop()
	defer s2.Stop()
	r.Start()
	defer r.Stop()
	if err := s1.WaitEstablished(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s2.WaitEstablished(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Both peers announce the same 200 prefixes; R2 preferred.
	const n = 200
	var nlri []netip.Prefix
	for i := 0; i < n; i++ {
		nlri = append(nlri, netip.PrefixFrom(netip.AddrFrom4([4]byte{10 + byte(i/250), byte(i), 0, 0}), 24))
	}
	for _, cfg := range []struct {
		sess *bgp.Session
		nh   netip.Addr
		as   uint32
	}{{s1, peerIP, 65002}, {s2, peer2IP, 65003}} {
		err := cfg.sess.Send(&bgp.Update{
			Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(cfg.as), NextHop: cfg.nh},
			NLRI:  nlri,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the full table is installed via R2.
	waitFor(t, 10*time.Second, func() bool {
		nh, ok := r.FIB().Get(nlri[n-1])
		return ok && nh.MAC == peerMAC
	})

	// Fail R2 (as BFD would signal it).
	start := time.Now()
	r.PeerDown(peerIP)
	// Every entry must be rewritten to R3, serialized by the updater.
	waitFor(t, 10*time.Second, func() bool {
		nh, ok := r.FIB().Get(nlri[n-1])
		return ok && nh.MAC == peer2MAC
	})
	elapsed := time.Since(start)
	if want := time.Duration(n) * perEntry; elapsed < want {
		t.Fatalf("full rewrite in %v, faster than the serialized minimum %v", elapsed, want)
	}
	if r.RIB().Len() != n {
		t.Fatalf("RIB len %d", r.RIB().Len())
	}
}

func TestRouterAnswersARPForItsInterface(t *testing.T) {
	v := clock.Real{}
	hub := newHub(v)
	routerPort := hub.attach("r1")
	host := hub.attach("host")
	got := make(chan packet.ARP, 1)
	host.Handle(func(frame []byte) {
		var eth packet.Ethernet
		var arp packet.ARP
		if eth.DecodeFromBytes(frame) == nil && eth.Type == packet.EtherTypeARP &&
			arp.DecodeFromBytes(eth.Payload) == nil && arp.Op == packet.ARPReply {
			got <- arp
		}
	})
	r := New(Config{AS: 65001, RouterID: routerIP, IfIP: routerIP, IfMAC: routerMAC, Port: routerPort})
	r.Start()
	defer r.Stop()

	req, _ := packet.ARPRequestFrame(packet.NewBuffer(), packet.MustParseMAC("00:01:00:00:00:02"),
		netip.MustParseAddr("203.0.113.9"), routerIP)
	host.Send(req)
	select {
	case arp := <-got:
		if arp.SenderHW != routerMAC || arp.SenderIP != routerIP {
			t.Fatalf("reply %+v", arp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no ARP reply from router")
	}
}

func TestRouterDropsUnroutable(t *testing.T) {
	hub := newHub(clock.Real{})
	routerPort := hub.attach("r1")
	host := hub.attach("host")
	r := New(Config{AS: 65001, RouterID: routerIP, IfIP: routerIP, IfMAC: routerMAC, Port: routerPort})
	r.Start()
	defer r.Stop()
	probe, _ := packet.UDPFrame(packet.NewBuffer(), packet.MustParseMAC("00:01:00:00:00:09"), routerMAC,
		netip.MustParseAddr("192.0.2.9"), netip.MustParseAddr("8.8.8.8"), 40000, 9, nil)
	host.Send(probe)
	waitFor(t, 5*time.Second, func() bool { return r.Drops() == 1 })
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
