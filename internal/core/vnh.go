// Package core implements the paper's contribution: the supercharged
// controller. It interposes on the router's BGP sessions, maintains the
// ordered path list per prefix, computes (primary, backup) backup-groups
// (Listing 1), allocates a virtual next-hop (VNH) and virtual MAC (VMAC)
// per group, rewrites announcements toward the router, answers the
// router's ARP for VNHs, and on failure rewrites O(#peers) switch rules to
// restore connectivity (Listing 2) — giving the legacy router a
// hierarchical FIB that spans two devices.
package core

import (
	"fmt"
	"hash/fnv"
	"net/netip"

	"supercharged/internal/packet"
)

// AllocMode selects how VNH/VMAC values are assigned to backup-groups.
type AllocMode int

const (
	// AllocSequential numbers groups in first-seen order — the paper's
	// Listing 1 (get_new_vnh_vmac). Simple, but two controller replicas
	// that receive the same routes in different interleavings can assign
	// different VNHs to the same group.
	AllocSequential AllocMode = iota
	// AllocDeterministic derives the VNH/VMAC from a hash of the
	// (primary, backup) pair, so independent replicas agree without any
	// state synchronization (the property §3 relies on), except in the
	// astronomically unlikely event of a probed hash collision observed
	// in different orders. Ablation A1 quantifies this.
	AllocDeterministic
)

func (m AllocMode) String() string {
	if m == AllocDeterministic {
		return "deterministic"
	}
	return "sequential"
}

// VNHPool hands out virtual next-hop addresses and virtual MACs. The VNH
// pool is a /14 by default (2^18 slots — vastly more than the n(n-1)
// groups any real peering needs); VMACs are locally-administered unicast
// addresses under the 02:53 prefix.
type VNHPool struct {
	Mode AllocMode
	// Base is the VNH pool; the default 10.200.0.0/14 leaves the rest of
	// 10/8 to the deployment.
	Base netip.Prefix

	next  int // sequential mode cursor
	inUse map[netip.Addr]string
	byKey map[string]netip.Addr
}

// DefaultVNHBase is the default virtual next-hop pool.
var DefaultVNHBase = netip.MustParsePrefix("10.200.0.0/14")

// NewVNHPool returns a pool with the given mode and default base.
func NewVNHPool(mode AllocMode) *VNHPool {
	return &VNHPool{
		Mode:  mode,
		Base:  DefaultVNHBase,
		inUse: make(map[netip.Addr]string),
		byKey: make(map[string]netip.Addr),
	}
}

// Alloc assigns a (VNH, VMAC) to the ordered next-hop tuple. Allocations
// are stable: the same tuple always gets the same answer from one pool.
func (p *VNHPool) Alloc(nhs []netip.Addr) (netip.Addr, packet.MAC, error) {
	if p.inUse == nil {
		p.inUse = make(map[netip.Addr]string)
	}
	if p.byKey == nil {
		p.byKey = make(map[string]netip.Addr)
	}
	if !p.Base.IsValid() {
		p.Base = DefaultVNHBase
	}
	key := groupKeyOf(nhs)
	if addr, ok := p.byKey[key]; ok {
		return addr, vmacFor(nhs), nil
	}
	slots := p.slots()
	if len(p.inUse) >= slots {
		return netip.Addr{}, packet.MAC{}, fmt.Errorf("core: VNH pool %v exhausted (%d groups)", p.Base, len(p.inUse))
	}

	var start int
	switch p.Mode {
	case AllocDeterministic:
		start = int(hashTuple(nhs, 0) % uint64(slots))
	default:
		start = p.next % slots
	}
	for i := 0; i < slots; i++ {
		slot := (start + i) % slots
		addr := p.addrAt(slot)
		owner, taken := p.inUse[addr]
		if taken {
			if owner == key {
				return addr, vmacFor(nhs), nil
			}
			continue
		}
		p.inUse[addr] = key
		p.byKey[key] = addr
		if p.Mode == AllocSequential {
			p.next = slot + 1
		}
		return addr, vmacFor(nhs), nil
	}
	return netip.Addr{}, packet.MAC{}, fmt.Errorf("core: VNH pool %v exhausted", p.Base)
}

// Release returns a VNH to the pool (used when a backup-group dies).
func (p *VNHPool) Release(vnh netip.Addr) {
	if key, ok := p.inUse[vnh]; ok {
		delete(p.byKey, key)
	}
	delete(p.inUse, vnh)
}

// InUse returns the number of allocated VNHs.
func (p *VNHPool) InUse() int { return len(p.inUse) }

func (p *VNHPool) slots() int {
	bits := 32 - p.Base.Bits()
	if bits > 24 {
		bits = 24 // cap the scan space
	}
	// Avoid the all-zeros and broadcast-looking tail by skipping slot 0.
	return 1<<bits - 1
}

func (p *VNHPool) addrAt(slot int) netip.Addr {
	base := ipv4ToUint(p.Base.Addr())
	return uintToIPv4(base + uint32(slot) + 1)
}

// vmacFor derives the group's virtual MAC: locally administered unicast
// under 02:53 with 32 bits of tuple hash — deterministic across replicas
// in both allocation modes (the VMAC is what the data plane matches on, so
// replica agreement here is what makes §3's "no state sync" story work for
// the switch rules).
func vmacFor(nhs []netip.Addr) packet.MAC {
	h := hashTuple(nhs, 1)
	return packet.MAC{0x02, 0x53, byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h)}
}

func hashTuple(nhs []netip.Addr, salt byte) uint64 {
	h := fnv.New64a()
	for _, nh := range nhs {
		b := nh.As4()
		h.Write(b[:])
	}
	h.Write([]byte{salt})
	return h.Sum64()
}

func ipv4ToUint(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func uintToIPv4(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}
