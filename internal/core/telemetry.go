package core

import (
	"supercharged/internal/telemetry"
)

// This file is the controller's telemetry surface. It is excluded from
// the ModelVersion source hash (cmd/modelhash skips telemetry files):
// metrics describe the model, they are not part of it, so editing this
// file must not invalidate the content-addressed result store.

// ProcMetrics counts the processor's Listing-1 work: updates in, churn
// suppressed, announcements and withdraws out, groups allocated. A nil
// *ProcMetrics (the default) makes every hook a single branch — the
// zero-alloc churn-path pin holds with hooks in place.
type ProcMetrics struct {
	Updates    *telemetry.Counter
	Suppressed *telemetry.Counter
	Announced  *telemetry.Counter
	Withdraws  *telemetry.Counter
	Groups     *telemetry.Counter
}

// NewProcMetrics registers the processor series on reg (nil reg returns
// nil, the disabled bundle).
func NewProcMetrics(reg *telemetry.Registry) *ProcMetrics {
	if reg == nil {
		return nil
	}
	return &ProcMetrics{
		Updates: reg.Counter("supercharged_proc_updates_total",
			"BGP UPDATE messages applied to the processor RIB."),
		Suppressed: reg.Counter("supercharged_proc_churn_suppressed_total",
			"RIB changes suppressed by the churn filter (no announcement needed)."),
		Announced: reg.Counter("supercharged_proc_announced_prefixes_total",
			"Prefixes (re)announced toward the supercharged router."),
		Withdraws: reg.Counter("supercharged_proc_withdrawn_prefixes_total",
			"Prefixes withdrawn toward the supercharged router."),
		Groups: reg.Counter("supercharged_proc_groups_allocated_total",
			"Backup groups allocated (Listing 1's get_backup_group misses)."),
	}
}

func (m *ProcMetrics) update() {
	if m != nil {
		m.Updates.Inc()
	}
}

func (m *ProcMetrics) suppressed() {
	if m != nil {
		m.Suppressed.Inc()
	}
}

func (m *ProcMetrics) announced() {
	if m != nil {
		m.Announced.Inc()
	}
}

func (m *ProcMetrics) withdrawn() {
	if m != nil {
		m.Withdraws.Inc()
	}
}

func (m *ProcMetrics) groupAllocated() {
	if m != nil {
		m.Groups.Inc()
	}
}

// EngineMetrics counts the Listing-2 data-plane work: every rule push,
// the subset triggered by failure rewrites, peer transitions, resyncs.
type EngineMetrics struct {
	RulePushes      *telemetry.Counter
	FailureRewrites *telemetry.Counter
	PeerDowns       *telemetry.Counter
	PeerUps         *telemetry.Counter
	Resyncs         *telemetry.Counter
}

// NewEngineMetrics registers the engine series on reg (nil reg returns
// nil, the disabled bundle).
func NewEngineMetrics(reg *telemetry.Registry) *EngineMetrics {
	if reg == nil {
		return nil
	}
	return &EngineMetrics{
		RulePushes: reg.Counter("supercharged_engine_rule_pushes_total",
			"Switch rules pushed (installs, rewrites and resyncs)."),
		FailureRewrites: reg.Counter("supercharged_engine_failure_rewrites_total",
			"Rule rewrites triggered by peer failure or recovery (Listing 2)."),
		PeerDowns: reg.Counter("supercharged_engine_peer_down_total",
			"Peer-down events handled by the convergence engine."),
		PeerUps: reg.Counter("supercharged_engine_peer_up_total",
			"Peer-up events handled by the convergence engine."),
		Resyncs: reg.Counter("supercharged_engine_resyncs_total",
			"Full switch-state resyncs (switch reboot / reconnect recovery)."),
	}
}

func (m *EngineMetrics) rulePush() {
	if m != nil {
		m.RulePushes.Inc()
	}
}

func (m *EngineMetrics) failureRewrite() {
	if m != nil {
		m.FailureRewrites.Inc()
	}
}

func (m *EngineMetrics) peerDown() {
	if m != nil {
		m.PeerDowns.Inc()
	}
}

func (m *EngineMetrics) peerUp() {
	if m != nil {
		m.PeerUps.Inc()
	}
}

func (m *EngineMetrics) resync() {
	if m != nil {
		m.Resyncs.Inc()
	}
}
