package core

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"time"

	"supercharged/internal/bfd"
	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/openflow"
	"supercharged/internal/packet"
	"supercharged/internal/telemetry"
)

// PeerConfig describes one of the supercharged router's (former) BGP
// peers, now terminated on the controller.
type PeerConfig struct {
	Addr netip.Addr
	AS   uint32
	// MAC and SwitchPort locate the peer in the data plane.
	MAC        packet.MAC
	SwitchPort uint16
	// Weight expresses the router's preference (the paper's "prefer R2").
	Weight uint32
	// Dial connects the BGP session to the peer (nil = passive; hand
	// connections to AcceptPeer).
	Dial func() (net.Conn, error)
	// BFD optionally enables failure detection to this peer. When nil,
	// failures must be signaled via Controller.PeerDown.
	BFD *BFDConfig
}

// BFDConfig enables BFD-based detection for a peer.
type BFDConfig struct {
	LocalDiscr uint32
	TxInterval time.Duration
	DetectMult uint8
	Transport  bfd.Transport
}

// RouterConfig describes the session toward the supercharged router.
type RouterConfig struct {
	Addr netip.Addr
	AS   uint32
	// MAC and SwitchPort locate the router in the data plane (for the
	// static L2 rules on the switch).
	MAC        packet.MAC
	SwitchPort uint16
	// Dial connects to the router (nil = passive via AcceptRouter).
	Dial func() (net.Conn, error)
}

// ControllerConfig assembles the full supercharger.
type ControllerConfig struct {
	LocalAS  uint32
	RouterID netip.Addr
	Peers    []PeerConfig
	Router   RouterConfig
	// SwitchDPID identifies the SDN switch to program.
	SwitchDPID uint64
	// AllocMode selects VNH allocation (deterministic recommended for
	// replicated deployments, §3).
	AllocMode AllocMode
	// GroupSize is the backup-group size k (default 2).
	GroupSize int
	// FlowPriority for backup-group rules (static L2 rules use
	// FlowPriority-50).
	FlowPriority uint16
	// Clock schedules every controller timer (BFD transmit/detect, BGP
	// keepalives). Any clock.Source satisfies it, so the same controller
	// runs under the lab's virtual clock, the paced wall source, or the
	// free-threaded daemon source; nil means the system clock.
	Clock clock.Clock
	Logf  func(format string, args ...any)
	// Telemetry, if set, registers the controller's metric series
	// (processor, engine, BFD, router session) on the registry and makes
	// OpsHandler serve /metrics. Nil (the default) compiles every hook
	// to a no-op sink.
	Telemetry *telemetry.Registry
}

// Controller is the deployable supercharger: §3's prototype (ExaBGP +
// FreeBFD + Floodlight) as one Go process.
type Controller struct {
	cfg ControllerConfig

	groups *GroupTable
	proc   *Processor
	engine *Engine
	arp    *ARPResponder
	ofc    *openflow.Controller

	bfdMetrics      *bfd.Metrics
	updatesToRouter *telemetry.Counter

	mu          sync.Mutex
	peerSess    map[netip.Addr]*bgp.Session
	routerSess  *bgp.Session
	bfdSessions map[netip.Addr]*bfd.Session
	sw          *openflow.SwitchConn
	pendingRule []RuleTarget // rules queued until the switch connects
	stopped     bool
}

// NewController builds the controller; Start brings everything up.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 2
	}
	if cfg.FlowPriority == 0 {
		cfg.FlowPriority = 100
	}
	c := &Controller{
		cfg:         cfg,
		groups:      NewGroupTable(NewVNHPool(cfg.AllocMode)),
		peerSess:    make(map[netip.Addr]*bgp.Session),
		bfdSessions: make(map[netip.Addr]*bfd.Session),
	}
	c.arp = NewARPResponder(c.groups)
	c.engine = NewEngine(c.groups, FlowPusherFunc(c.pushRule))
	for _, p := range cfg.Peers {
		c.engine.RegisterPeer(PeerPort{NH: p.Addr, MAC: p.MAC, Port: p.SwitchPort})
	}
	c.proc = NewProcessor(nil, c.groups)
	c.proc.GroupSize = cfg.GroupSize
	c.proc.OnNewGroup = c.engine.InstallGroup

	if cfg.Telemetry != nil {
		c.proc.Metrics = NewProcMetrics(cfg.Telemetry)
		c.engine.Metrics = NewEngineMetrics(cfg.Telemetry)
		c.bfdMetrics = bfd.NewMetrics(cfg.Telemetry)
		c.updatesToRouter = cfg.Telemetry.Counter("supercharged_ctl_updates_to_router_total",
			"BGP UPDATE messages sent on the session toward the supercharged router.")
		cfg.Telemetry.GaugeFunc("supercharged_ctl_groups",
			"Backup groups currently allocated.",
			func() float64 { return float64(len(c.groups.All())) })
		cfg.Telemetry.GaugeFunc("supercharged_ctl_advertised_prefixes",
			"Prefixes currently advertised toward the router.",
			func() float64 { return float64(c.proc.AdvertisedCount()) })
	}

	c.ofc = openflow.NewController(openflow.ControllerConfig{
		Logf:       cfg.Logf,
		OnSwitch:   c.onSwitch,
		OnPacketIn: c.onPacketIn,
	})
	return c
}

// Groups exposes the backup-group table.
func (c *Controller) Groups() *GroupTable { return c.groups }

// Engine exposes the convergence engine.
func (c *Controller) Engine() *Engine { return c.engine }

// Processor exposes the Listing-1 processor.
func (c *Controller) Processor() *Processor { return c.proc }

// OpenFlow exposes the OF controller core (e.g. to Serve a listener).
func (c *Controller) OpenFlow() *openflow.Controller { return c.ofc }

// Start brings up the BGP sessions (router first, then peers) and the BFD
// sessions. The OpenFlow side is driven by ServeOpenFlow or by handing
// connections to OpenFlow().HandleConn.
func (c *Controller) Start() {
	r := c.cfg.Router
	c.routerSess = bgp.NewSession(bgp.SessionConfig{
		LocalAS: c.cfg.LocalAS, LocalID: c.cfg.RouterID,
		PeerAS: r.AS, PeerAddr: r.Addr, Dial: r.Dial,
		Clock: c.cfg.Clock, Logf: c.cfg.Logf,
		OnEstablished: c.resyncRouter,
	})
	c.routerSess.Start()

	for _, p := range c.cfg.Peers {
		p := p
		meta := bgp.PeerMeta{Addr: p.Addr, AS: p.AS, ID: p.Addr, Weight: p.Weight}
		sess := bgp.NewSession(bgp.SessionConfig{
			LocalAS: c.cfg.LocalAS, LocalID: c.cfg.RouterID,
			PeerAS: p.AS, PeerAddr: p.Addr, Dial: p.Dial,
			Clock: c.cfg.Clock, Logf: c.cfg.Logf,
			OnUpdate: func(u *bgp.Update) { c.handlePeerUpdate(meta, u) },
			OnDown:   func(error) { c.peerSessionDown(p.Addr) },
		})
		c.mu.Lock()
		c.peerSess[p.Addr] = sess
		c.mu.Unlock()
		sess.Start()

		if p.BFD != nil {
			bs := bfd.NewSession(bfd.Config{
				LocalDiscr: p.BFD.LocalDiscr,
				TxInterval: p.BFD.TxInterval,
				DetectMult: p.BFD.DetectMult,
				Transport:  p.BFD.Transport,
				Clock:      c.cfg.Clock,
				Logf:       c.cfg.Logf,
				Metrics:    c.bfdMetrics,
				OnStateChange: func(st bfd.State, d bfd.Diag) {
					switch st {
					case bfd.StateDown:
						c.PeerDown(p.Addr)
					case bfd.StateUp:
						c.PeerUp(p.Addr)
					}
				},
			})
			c.mu.Lock()
			c.bfdSessions[p.Addr] = bs
			c.mu.Unlock()
			bs.Start()
		}
	}
}

// Stop tears everything down.
func (c *Controller) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	sessions := make([]*bgp.Session, 0, len(c.peerSess)+1)
	for _, s := range c.peerSess {
		sessions = append(sessions, s)
	}
	if c.routerSess != nil {
		sessions = append(sessions, c.routerSess)
	}
	bfds := make([]*bfd.Session, 0, len(c.bfdSessions))
	for _, b := range c.bfdSessions {
		bfds = append(bfds, b)
	}
	c.mu.Unlock()
	for _, b := range bfds {
		b.Stop()
	}
	for _, s := range sessions {
		s.Stop()
	}
	c.ofc.Close()
}

// ServeOpenFlow accepts switch connections on l (blocking).
func (c *Controller) ServeOpenFlow(l net.Listener) error { return c.ofc.Serve(l) }

// AcceptPeer hands a passive transport connection to a peer session.
func (c *Controller) AcceptPeer(addr netip.Addr, conn net.Conn) error {
	c.mu.Lock()
	sess, ok := c.peerSess[addr]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown peer %v", addr)
	}
	go sess.Accept(conn)
	return nil
}

// AcceptRouter hands a passive transport connection to the router session.
func (c *Controller) AcceptRouter(conn net.Conn) {
	go c.routerSess.Accept(conn)
}

// BFDSession returns the BFD session toward a peer (for transport wiring).
func (c *Controller) BFDSession(addr netip.Addr) (*bfd.Session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.bfdSessions[addr]
	return s, ok
}

// RouterEstablished reports whether the session to the router is up.
func (c *Controller) RouterEstablished() bool {
	return c.routerSess != nil && c.routerSess.Established()
}

// PeerDown drives Listing 2 (fast data-plane failover) and the
// control-plane cleanup toward the router.
func (c *Controller) PeerDown(addr netip.Addr) {
	n, err := c.engine.PeerDown(addr)
	if err != nil {
		c.cfg.Logf("core: peer %v down: engine: %v", addr, err)
	}
	c.cfg.Logf("core: peer %v down, %d rule(s) rewritten", addr, n)
	updates, err := c.proc.PeerDown(addr)
	if err != nil {
		c.cfg.Logf("core: peer %v down: processor: %v", addr, err)
	}
	c.sendToRouter(updates)
}

// PeerUp restores the primary after recovery.
func (c *Controller) PeerUp(addr netip.Addr) {
	n, err := c.engine.PeerUp(addr)
	if err != nil {
		c.cfg.Logf("core: peer %v up: engine: %v", addr, err)
	}
	c.cfg.Logf("core: peer %v up, %d rule(s) restored", addr, n)
}

// peerSessionDown reacts to BGP transport loss; with BFD configured the
// engine has usually fired already (idempotent either way).
func (c *Controller) peerSessionDown(addr netip.Addr) {
	c.PeerDown(addr)
}

func (c *Controller) handlePeerUpdate(meta bgp.PeerMeta, u *bgp.Update) {
	out, err := c.proc.Process(meta, u)
	if err != nil {
		c.cfg.Logf("core: process update from %v: %v", meta.Addr, err)
		return
	}
	c.sendToRouter(out)
}

func (c *Controller) sendToRouter(updates []*bgp.Update) {
	for _, u := range updates {
		if err := c.routerSess.Send(u); err != nil {
			c.cfg.Logf("core: send to router: %v", err)
			return
		}
		c.updatesToRouter.Inc()
	}
}

// resyncRouter replays the current advertisement state when the router
// session (re)establishes.
func (c *Controller) resyncRouter() {
	var updates []*bgp.Update
	c.proc.RIB().Walk(func(p netip.Prefix, paths []*bgp.Path) bool {
		if len(paths) == 0 {
			return true
		}
		nh, virtual, ok := c.proc.Advertised(p)
		if !ok {
			return true
		}
		attrs := paths[0].Attrs.Clone()
		if virtual {
			attrs.NextHop = nh
		}
		updates = append(updates, &bgp.Update{Attrs: attrs, NLRI: []netip.Prefix{p}})
		return true
	})
	c.cfg.Logf("core: router session up, resyncing %d prefixes", len(updates))
	c.sendToRouter(updates)
}

// --- OpenFlow side ---

func (c *Controller) onSwitch(sw *openflow.SwitchConn) {
	if sw.DPID() != c.cfg.SwitchDPID {
		c.cfg.Logf("core: ignoring unexpected switch %#x", sw.DPID())
		return
	}
	c.mu.Lock()
	c.sw = sw
	pending := c.pendingRule
	c.pendingRule = nil
	c.mu.Unlock()
	c.installStaticRules(sw)
	for _, rt := range pending {
		if err := c.pushRule(rt.Group, rt.Target); err != nil {
			c.cfg.Logf("core: replay rule: %v", err)
		}
	}
}

// installStaticRules wires plain L2 reachability: router→peers and
// everyone→router by real MAC, so single-path (non-VNH) routes and return
// traffic work.
func (c *Controller) installStaticRules(sw *openflow.SwitchConn) {
	prio := c.cfg.FlowPriority - 50
	add := func(mac packet.MAC, port uint16) {
		fm := &openflow.FlowMod{
			Match:    openflow.MatchDLDst(mac),
			Command:  openflow.FlowAdd,
			Priority: prio,
			BufferID: openflow.BufferNone,
			OutPort:  openflow.PortNone,
			Actions:  []openflow.Action{openflow.ActionOutput(port)},
		}
		if err := sw.FlowMod(fm); err != nil {
			c.cfg.Logf("core: static rule for %s: %v", mac, err)
		}
	}
	if !c.cfg.Router.MAC.IsZero() {
		add(c.cfg.Router.MAC, c.cfg.Router.SwitchPort)
	}
	for _, p := range c.cfg.Peers {
		add(p.MAC, p.SwitchPort)
	}
}

// pushRule is the engine's backend: one FLOW_MOD per backup-group rewrite.
func (c *Controller) pushRule(g Group, target PeerPort) error {
	c.mu.Lock()
	sw := c.sw
	if sw == nil {
		// Switch not connected yet: queue for replay on connect.
		c.pendingRule = append(c.pendingRule, RuleTarget{Group: g, Target: target})
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	return sw.FlowMod(&openflow.FlowMod{
		Match:    openflow.MatchDLDst(g.VMAC),
		Command:  openflow.FlowModify, // ADD semantics on first install in our switch
		Priority: c.cfg.FlowPriority,
		BufferID: openflow.BufferNone,
		OutPort:  openflow.PortNone,
		Actions: []openflow.Action{
			openflow.ActionSetDLDst(target.MAC),
			openflow.ActionOutput(target.Port),
		},
	})
}

// onPacketIn answers VNH ARP requests (PACKET_OUT back through the ingress
// port) and floods other broadcast ARP traffic.
func (c *Controller) onPacketIn(sw *openflow.SwitchConn, pi *openflow.PacketIn) {
	reply, handled, err := c.arp.Respond(pi.Data, nil)
	if err != nil {
		c.cfg.Logf("core: arp respond: %v", err)
		return
	}
	if handled {
		err := sw.PacketOut(&openflow.PacketOut{
			BufferID: openflow.BufferNone,
			InPort:   openflow.PortNone,
			Actions:  []openflow.Action{openflow.ActionOutput(pi.InPort)},
			Data:     reply,
		})
		if err != nil {
			c.cfg.Logf("core: arp packet-out: %v", err)
		}
		return
	}
	// Not ours: flood broadcast frames so hosts can resolve each other.
	var eth packet.Ethernet
	if eth.DecodeFromBytes(pi.Data) == nil && eth.Dst.IsBroadcast() {
		for _, port := range sw.Ports() {
			if port.PortNo == pi.InPort {
				continue
			}
			sw.PacketOut(&openflow.PacketOut{
				BufferID: openflow.BufferNone,
				InPort:   openflow.PortNone,
				Actions:  []openflow.Action{openflow.ActionOutput(port.PortNo)},
				Data:     pi.Data,
			})
		}
	}
}

// --- ops endpoint ---

// Status is the ops endpoint's JSON document.
type Status struct {
	RouterSession string        `json:"router_session"`
	Peers         []PeerStatus  `json:"peers"`
	Groups        []GroupStatus `json:"groups"`
	Advertised    int           `json:"advertised_prefixes"`
	Rewrites      uint64        `json:"failure_rewrites"`
}

// PeerStatus is one peer's view.
type PeerStatus struct {
	Addr    string `json:"addr"`
	Session string `json:"session"`
	Down    bool   `json:"down"`
}

// GroupStatus is one backup-group's view.
type GroupStatus struct {
	NHs      []string `json:"next_hops"`
	VNH      string   `json:"vnh"`
	VMAC     string   `json:"vmac"`
	Prefixes int      `json:"prefixes"`
	Target   string   `json:"current_target,omitempty"`
}

// Status snapshots the controller.
func (c *Controller) Status() Status {
	st := Status{Advertised: c.proc.AdvertisedCount(), Rewrites: c.engine.Rewrites()}
	if c.routerSess != nil {
		st.RouterSession = c.routerSess.State().String()
	}
	for _, p := range c.cfg.Peers {
		ps := PeerStatus{Addr: p.Addr.String(), Session: bgp.StateIdle.String(), Down: c.engine.PeerIsDown(p.Addr)}
		c.mu.Lock()
		if sess, ok := c.peerSess[p.Addr]; ok {
			ps.Session = sess.State().String()
		}
		c.mu.Unlock()
		st.Peers = append(st.Peers, ps)
	}
	for _, g := range c.groups.All() {
		gs := GroupStatus{VNH: g.VNH.String(), VMAC: g.VMAC.String(), Prefixes: g.Prefixes}
		for _, nh := range g.NHs {
			gs.NHs = append(gs.NHs, nh.String())
		}
		if cur, ok := c.engine.CurrentTarget(g); ok {
			gs.Target = cur.String()
		}
		st.Groups = append(st.Groups, gs)
	}
	return st
}

// OpsHandler returns an http.Handler exposing /status (JSON) and, when
// the controller was built with a Telemetry registry, /metrics
// (Prometheus text exposition).
func (c *Controller) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if c.cfg.Telemetry != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			c.cfg.Telemetry.WritePrometheus(w)
		})
	}
	return mux
}
