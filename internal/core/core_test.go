package core

import (
	"net/netip"
	"testing"

	"supercharged/internal/bgp"
	"supercharged/internal/packet"
)

func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

var (
	r2 = addr("203.0.113.1")   // primary provider (cheap)
	r3 = addr("198.51.100.2")  // backup provider
	r4 = addr("198.51.100.77") // third provider for k=3 tests

	peerR2 = bgp.PeerMeta{Addr: r2, AS: 65002, ID: r2, Weight: 100}
	peerR3 = bgp.PeerMeta{Addr: r3, AS: 65003, ID: r3, Weight: 50}
	peerR4 = bgp.PeerMeta{Addr: r4, AS: 65004, ID: r4, Weight: 10}

	r2mac = packet.MustParseMAC("01:aa:00:00:00:01")
	r3mac = packet.MustParseMAC("02:bb:00:00:00:01")
	r4mac = packet.MustParseMAC("03:cc:00:00:00:01")
)

func announceFrom(nh netip.Addr, as uint32, prefixes ...string) *bgp.Update {
	u := &bgp.Update{Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(as), NextHop: nh}}
	for _, s := range prefixes {
		u.NLRI = append(u.NLRI, pfx(s))
	}
	return u
}

func withdrawFrom(prefixes ...string) *bgp.Update {
	u := &bgp.Update{}
	for _, s := range prefixes {
		u.Withdrawn = append(u.Withdrawn, pfx(s))
	}
	return u
}

// --- VNH pool ---

func TestVNHPoolSequentialAssignsDistinct(t *testing.T) {
	p := NewVNHPool(AllocSequential)
	a1, m1, err := p.Alloc([]netip.Addr{r2, r3})
	if err != nil {
		t.Fatal(err)
	}
	a2, m2, err := p.Alloc([]netip.Addr{r3, r2})
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 || m1 == m2 {
		t.Fatal("distinct tuples share VNH/VMAC")
	}
	// Same tuple: stable result.
	a1b, m1b, _ := p.Alloc([]netip.Addr{r2, r3})
	if a1b != a1 || m1b != m1 {
		t.Fatal("repeat alloc not stable")
	}
	if p.InUse() != 2 {
		t.Fatalf("in use %d", p.InUse())
	}
	if !DefaultVNHBase.Contains(a1) {
		t.Fatalf("VNH %v outside pool", a1)
	}
}

func TestVNHPoolDeterministicAgreesAcrossOrder(t *testing.T) {
	// Two replicas see the same groups in different order; deterministic
	// mode must assign identical VNHs, sequential mode must not (in
	// general) — the paper's §3 no-state-sync argument, hardened.
	tuples := [][]netip.Addr{{r2, r3}, {r3, r2}, {r2, r4}, {r4, r2}, {r3, r4}, {r4, r3}}

	allocAll := func(mode AllocMode, order []int) map[string]netip.Addr {
		p := NewVNHPool(mode)
		out := make(map[string]netip.Addr)
		for _, i := range order {
			a, _, err := p.Alloc(tuples[i])
			if err != nil {
				t.Fatal(err)
			}
			out[groupKeyOf(tuples[i])] = a
		}
		return out
	}
	fwd := []int{0, 1, 2, 3, 4, 5}
	rev := []int{5, 4, 3, 2, 1, 0}

	detA, detB := allocAll(AllocDeterministic, fwd), allocAll(AllocDeterministic, rev)
	for k, v := range detA {
		if detB[k] != v {
			t.Fatalf("deterministic replicas disagree on %s: %v vs %v", k, v, detB[k])
		}
	}
	seqA, seqB := allocAll(AllocSequential, fwd), allocAll(AllocSequential, rev)
	same := true
	for k, v := range seqA {
		if seqB[k] != v {
			same = false
		}
	}
	if same {
		t.Fatal("sequential replicas agreed under reversed order — test topology too small?")
	}
}

func TestVMACIsLocalUnicastAndDeterministic(t *testing.T) {
	_, m1, _ := NewVNHPool(AllocSequential).Alloc([]netip.Addr{r2, r3})
	_, m2, _ := NewVNHPool(AllocDeterministic).Alloc([]netip.Addr{r2, r3})
	if m1 != m2 {
		t.Fatal("VMAC must not depend on allocation mode")
	}
	if !m1.IsLocal() || m1.IsMulticast() {
		t.Fatalf("VMAC %s not locally-administered unicast", m1)
	}
}

func TestVNHPoolExhaustion(t *testing.T) {
	p := &VNHPool{Mode: AllocSequential, Base: netip.MustParsePrefix("10.200.0.0/30")}
	// /30 → 3 usable slots.
	seen := map[netip.Addr]bool{}
	for i := 0; i < 3; i++ {
		nh := netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
		a, _, err := p.Alloc([]netip.Addr{nh, r3})
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[a] {
			t.Fatal("duplicate VNH")
		}
		seen[a] = true
	}
	if _, _, err := p.Alloc([]netip.Addr{addr("10.9.9.9"), r3}); err == nil {
		t.Fatal("exhausted pool allocated")
	}
	// Release frees a slot.
	for a := range seen {
		p.Release(a)
		break
	}
	if _, _, err := p.Alloc([]netip.Addr{addr("10.9.9.9"), r3}); err != nil {
		t.Fatalf("alloc after release: %v", err)
	}
}

// --- group table ---

func TestGroupTableEnsureAndLookups(t *testing.T) {
	gt := NewGroupTable(nil)
	g, err := gt.Ensure(r2, r3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Primary() != r2 || g.Backup() != r3 {
		t.Fatalf("group %v", g)
	}
	byVNH, ok := gt.ByVNH(g.VNH)
	if !ok || byVNH.VMAC != g.VMAC {
		t.Fatal("ByVNH lookup failed")
	}
	if _, ok := gt.ByVNH(addr("10.200.99.99")); ok {
		t.Fatal("phantom VNH resolved")
	}
	if got, ok := gt.Get(r2, r3); !ok || got.VNH != g.VNH {
		t.Fatal("Get failed")
	}
	if gt.Len() != 1 {
		t.Fatalf("len %d", gt.Len())
	}
	if _, err := gt.Ensure(r2); err == nil {
		t.Fatal("singleton tuple accepted")
	}
}

func TestGroupTableWithPrimaryAndContaining(t *testing.T) {
	gt := NewGroupTable(nil)
	gt.Ensure(r2, r3)
	gt.Ensure(r2, r4)
	gt.Ensure(r3, r2)
	if got := gt.WithPrimary(r2); len(got) != 2 {
		t.Fatalf("WithPrimary(r2) = %d groups", len(got))
	}
	if got := gt.Containing(r2); len(got) != 3 {
		t.Fatalf("Containing(r2) = %d groups", len(got))
	}
	if got := gt.WithPrimary(r4); len(got) != 0 {
		t.Fatalf("WithPrimary(r4) = %d groups", len(got))
	}
}

func TestGroupCountMatchesPaperFormula(t *testing.T) {
	// §2: with n peers the number of possible backup-groups is
	// n!/(n-2)! = n(n-1); e.g. 90 for 10 peers.
	for _, n := range []int{2, 3, 5, 10} {
		gt := NewGroupTable(NewVNHPool(AllocDeterministic))
		peers := make([]netip.Addr, n)
		for i := range peers {
			peers[i] = netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)})
		}
		for _, a := range peers {
			for _, b := range peers {
				if a != b {
					if _, err := gt.Ensure(a, b); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if want := n * (n - 1); gt.Len() != want {
			t.Fatalf("n=%d: %d groups, want %d", n, gt.Len(), want)
		}
	}
}

// --- processor (Listing 1) ---

func TestProcessorSinglePathAnnouncedAsIs(t *testing.T) {
	p := NewProcessor(nil, nil)
	out, err := p.Process(peerR2, announceFrom(r2, 65002, "1.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].NLRI) != 1 {
		t.Fatalf("out %v", out)
	}
	if out[0].Attrs.NextHop != r2 {
		t.Fatalf("single-path NH rewritten to %v", out[0].Attrs.NextHop)
	}
	if p.Groups().Len() != 0 {
		t.Fatal("group allocated for single-path prefix")
	}
}

func TestProcessorSecondPathTriggersVNHRewrite(t *testing.T) {
	p := NewProcessor(nil, nil)
	var newGroups []Group
	p.OnNewGroup = func(g Group) error { newGroups = append(newGroups, g); return nil }

	p.Process(peerR2, announceFrom(r2, 65002, "1.0.0.0/24"))
	out, err := p.Process(peerR3, announceFrom(r3, 65003, "1.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out %v", out)
	}
	if len(newGroups) != 1 {
		t.Fatalf("groups created: %d", len(newGroups))
	}
	g := newGroups[0]
	if g.Primary() != r2 || g.Backup() != r3 {
		t.Fatalf("group %v; want primary R2 (higher weight)", g)
	}
	if out[0].Attrs.NextHop != g.VNH {
		t.Fatalf("announced NH %v, want VNH %v", out[0].Attrs.NextHop, g.VNH)
	}
	// The original attributes must otherwise survive (transparent
	// interposition).
	if out[0].Attrs.ASPath.First() != 65002 {
		t.Fatalf("as-path %v lost", out[0].Attrs.ASPath)
	}
	nh, virtual, ok := p.Advertised(pfx("1.0.0.0/24"))
	if !ok || !virtual || nh != g.VNH {
		t.Fatalf("advertised state %v %v %v", nh, virtual, ok)
	}
}

func TestProcessorSharedGroupAcrossPrefixes(t *testing.T) {
	// All 512k prefixes in Fig. 2 share ONE backup-group; verify the
	// group is allocated once and refcounted per prefix.
	p := NewProcessor(nil, nil)
	p.Process(peerR2, announceFrom(r2, 65002, "1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"))
	out, err := p.Process(peerR3, announceFrom(r3, 65003, "1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Groups().Len() != 1 {
		t.Fatalf("%d groups, want 1", p.Groups().Len())
	}
	g := p.Groups().All()[0]
	if g.Prefixes != 3 {
		t.Fatalf("group refcount %d, want 3", g.Prefixes)
	}
	// Batching: the three same-attrs announcements collapse.
	total := 0
	for _, u := range out {
		total += len(u.NLRI)
	}
	if total != 3 {
		t.Fatalf("announced %d prefixes", total)
	}
	if len(out) != 1 {
		t.Fatalf("expected 1 batched update, got %d", len(out))
	}
}

func TestProcessorSuppressesNoOpUpdates(t *testing.T) {
	p := NewProcessor(nil, nil)
	p.Process(peerR2, announceFrom(r2, 65002, "1.0.0.0/24"))
	p.Process(peerR3, announceFrom(r3, 65003, "1.0.0.0/24"))
	// R3 re-announces the identical route: ranking unchanged, best path
	// object unchanged → nothing to send.
	out, err := p.Process(peerR3, announceFrom(r3, 65003, "1.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		// The replacement path object differs, so one re-announcement is
		// acceptable; what matters is the NH stays the same VNH.
		t.Logf("note: %d updates emitted", len(out))
	}
	if len(out) > 0 && out[0].Attrs != nil {
		g, _ := p.Groups().Get(r2, r3)
		if out[0].Attrs.NextHop != g.VNH {
			t.Fatal("re-announcement changed the VNH")
		}
	}
}

func TestProcessorWithdrawBackupKeepsPlainAnnouncement(t *testing.T) {
	p := NewProcessor(nil, nil)
	p.Process(peerR2, announceFrom(r2, 65002, "1.0.0.0/24"))
	p.Process(peerR3, announceFrom(r3, 65003, "1.0.0.0/24"))
	// Backup disappears: back to single path, announced with the real NH.
	out, err := p.Process(peerR3, withdrawFrom("1.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Attrs == nil {
		t.Fatalf("out %v", out)
	}
	if out[0].Attrs.NextHop != r2 {
		t.Fatalf("NH %v, want real R2", out[0].Attrs.NextHop)
	}
	// Group stays allocated (stable VNH) but with zero members.
	g, _ := p.Groups().Get(r2, r3)
	if g.Prefixes != 0 {
		t.Fatalf("refcount %d", g.Prefixes)
	}
}

func TestProcessorFullWithdrawSendsWithdraw(t *testing.T) {
	p := NewProcessor(nil, nil)
	p.Process(peerR2, announceFrom(r2, 65002, "1.0.0.0/24"))
	out, err := p.Process(peerR2, withdrawFrom("1.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Withdrawn) != 1 || out[0].Attrs != nil {
		t.Fatalf("out %v", out)
	}
	if p.AdvertisedCount() != 0 {
		t.Fatal("state leaked")
	}
}

func TestProcessorBackupChangeReallocatesGroup(t *testing.T) {
	p := NewProcessor(nil, nil)
	p.Process(peerR2, announceFrom(r2, 65002, "1.0.0.0/24"))
	p.Process(peerR3, announceFrom(r3, 65003, "1.0.0.0/24"))
	g1, _ := p.Groups().Get(r2, r3)

	// A better backup appears (r4 with weight 10 < r3's 50 — r3 stays
	// backup). Then r3 withdraws: the backup becomes r4 → new group, new
	// VNH announced.
	p.Process(peerR4, announceFrom(r4, 65004, "1.0.0.0/24"))
	out, err := p.Process(peerR3, withdrawFrom("1.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	g2, ok := p.Groups().Get(r2, r4)
	if !ok {
		t.Fatal("new group not created")
	}
	if g2.VNH == g1.VNH {
		t.Fatal("distinct groups share a VNH")
	}
	if len(out) != 1 || out[0].Attrs.NextHop != g2.VNH {
		t.Fatalf("router not repointed to new VNH: %v", out)
	}
}

func TestProcessorPeerDownWithdrawsEverything(t *testing.T) {
	p := NewProcessor(nil, nil)
	p.Process(peerR2, announceFrom(r2, 65002, "1.0.0.0/24", "2.0.0.0/24"))
	p.Process(peerR3, announceFrom(r3, 65003, "1.0.0.0/24"))
	out, err := p.PeerDown(r2)
	if err != nil {
		t.Fatal(err)
	}
	// 1.0.0.0/24 falls back to plain R3; 2.0.0.0/24 is withdrawn.
	var sawPlain, sawWithdraw bool
	for _, u := range out {
		if u.Attrs != nil && u.Attrs.NextHop == r3 {
			sawPlain = true
		}
		if len(u.Withdrawn) == 1 && u.Withdrawn[0] == pfx("2.0.0.0/24") {
			sawWithdraw = true
		}
	}
	if !sawPlain || !sawWithdraw {
		t.Fatalf("peer-down stream wrong: %v", out)
	}
}

func TestProcessorGroupSize3(t *testing.T) {
	p := NewProcessor(nil, nil)
	p.GroupSize = 3
	p.Process(peerR2, announceFrom(r2, 65002, "1.0.0.0/24"))
	p.Process(peerR3, announceFrom(r3, 65003, "1.0.0.0/24"))
	p.Process(peerR4, announceFrom(r4, 65004, "1.0.0.0/24"))
	gs := p.Groups().All()
	// The final group must be the k=3 tuple (r2, r3, r4).
	var found bool
	for _, g := range gs {
		if len(g.NHs) == 3 && g.NHs[0] == r2 && g.NHs[1] == r3 && g.NHs[2] == r4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no k=3 group: %v", gs)
	}
}

// --- engine (Listing 2) ---

type recordingPusher struct {
	pushes []RuleTarget
}

func (r *recordingPusher) PushGroupRule(g Group, target PeerPort) error {
	r.pushes = append(r.pushes, RuleTarget{Group: g, Target: target})
	return nil
}

func newEngineFixture(t *testing.T) (*GroupTable, *Engine, *recordingPusher) {
	t.Helper()
	gt := NewGroupTable(nil)
	rec := &recordingPusher{}
	e := NewEngine(gt, rec)
	e.RegisterPeer(PeerPort{NH: r2, MAC: r2mac, Port: 1})
	e.RegisterPeer(PeerPort{NH: r3, MAC: r3mac, Port: 2})
	e.RegisterPeer(PeerPort{NH: r4, MAC: r4mac, Port: 3})
	return gt, e, rec
}

func TestEngineInstallsPrimaryRule(t *testing.T) {
	gt, e, rec := newEngineFixture(t)
	g, _ := gt.Ensure(r2, r3)
	if err := e.InstallGroup(g); err != nil {
		t.Fatal(err)
	}
	if len(rec.pushes) != 1 {
		t.Fatalf("pushes %d", len(rec.pushes))
	}
	got := rec.pushes[0]
	if got.Target.MAC != r2mac || got.Target.Port != 1 {
		t.Fatalf("initial rule targets %+v, want R2", got.Target)
	}
	if cur, _ := e.CurrentTarget(g); cur != r2 {
		t.Fatalf("current target %v", cur)
	}
}

func TestEnginePeerDownRewritesToBackup(t *testing.T) {
	// Listing 2: upon failure of R2, rewrite (00:ff) to (02:bb, 2).
	gt, e, rec := newEngineFixture(t)
	g, _ := gt.Ensure(r2, r3)
	e.InstallGroup(g)
	rec.pushes = nil

	n, err := e.PeerDown(r2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(rec.pushes) != 1 {
		t.Fatalf("rewrites %d pushes %d", n, len(rec.pushes))
	}
	got := rec.pushes[0]
	if got.Target.MAC != r3mac || got.Target.Port != 2 {
		t.Fatalf("failover rule targets %+v, want R3", got.Target)
	}
	if e.Rewrites() != 1 {
		t.Fatalf("rewrite counter %d", e.Rewrites())
	}
	// Idempotent: second PeerDown is a no-op.
	if n, _ := e.PeerDown(r2); n != 0 {
		t.Fatalf("duplicate PeerDown rewrote %d rules", n)
	}
}

func TestEngineRewritesOnlyAffectedGroups(t *testing.T) {
	// Worst case rewrite count is the number of peers, not prefixes.
	gt, e, rec := newEngineFixture(t)
	g1, _ := gt.Ensure(r2, r3)
	g2, _ := gt.Ensure(r3, r2) // primary r3: unaffected by r2 failure
	g3, _ := gt.Ensure(r2, r4)
	for _, g := range []Group{g1, g2, g3} {
		e.InstallGroup(g)
	}
	rec.pushes = nil
	n, err := e.PeerDown(r2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rewrote %d groups, want 2 (g1, g3)", n)
	}
	for _, p := range rec.pushes {
		if p.Target.NH == r2 {
			t.Fatal("rule still targets the dead peer")
		}
	}
	if cur, _ := e.CurrentTarget(g2); cur != r3 {
		t.Fatal("unaffected group was touched")
	}
}

func TestEnginePeerUpRestoresPrimary(t *testing.T) {
	gt, e, rec := newEngineFixture(t)
	g, _ := gt.Ensure(r2, r3)
	e.InstallGroup(g)
	e.PeerDown(r2)
	rec.pushes = nil
	n, err := e.PeerUp(r2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d rules", n)
	}
	if rec.pushes[0].Target.NH != r2 {
		t.Fatalf("restore target %v", rec.pushes[0].Target.NH)
	}
	if n, _ := e.PeerUp(r2); n != 0 {
		t.Fatal("duplicate PeerUp not idempotent")
	}
}

func TestEngineK3DoubleFailure(t *testing.T) {
	// Ablation A2: with k=3 the group survives primary AND first backup
	// failing.
	gt, e, rec := newEngineFixture(t)
	g, _ := gt.Ensure(r2, r3, r4)
	e.InstallGroup(g)
	e.PeerDown(r2)
	rec.pushes = nil
	n, err := e.PeerDown(r3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || rec.pushes[0].Target.NH != r4 {
		t.Fatalf("double failure: %d rewrites, target %v", n, rec.pushes)
	}
	// All three down: no live target; rule left as-is.
	if n, _ := e.PeerDown(r4); n != 0 {
		t.Fatalf("rewrote %d rules with no live target", n)
	}
}

func TestEngineAllNextHopsDownInstallDeferred(t *testing.T) {
	// A group can form out of peers whose failures are still being cleaned
	// up. Installing a rule at a dead peer would blackhole identically, so
	// nothing is pushed — the first PeerUp of a member installs the rule.
	gt, e, rec := newEngineFixture(t)
	e.PeerDown(r2)
	e.PeerDown(r3)
	g, _ := gt.Ensure(r2, r3)
	if err := e.InstallGroup(g); err != nil {
		t.Fatalf("deferred install errored: %v", err)
	}
	if len(rec.pushes) != 0 {
		t.Fatalf("pushed %d rules with no live next-hop", len(rec.pushes))
	}
	if _, has := e.CurrentTarget(g); has {
		t.Fatal("dead group acquired a target")
	}
	if !e.PeerIsDown(r2) || e.PeerIsDown(r4) {
		t.Fatal("down bookkeeping")
	}
	// The backup recovering pushes the deferred rule.
	if n, err := e.PeerUp(r3); err != nil || n != 1 {
		t.Fatalf("PeerUp pushed %d rules (err %v), want 1", n, err)
	}
	if got := rec.pushes[len(rec.pushes)-1]; got.Target.NH != r3 {
		t.Fatalf("deferred rule targets %v, want r3", got.Target.NH)
	}
}

// --- ARP responder ---

func TestARPResponderAnswersVNH(t *testing.T) {
	gt := NewGroupTable(nil)
	g, _ := gt.Ensure(r2, r3)
	resp := NewARPResponder(gt)

	routerMAC := packet.MustParseMAC("00:ff:00:00:00:01")
	routerIP := addr("203.0.113.254")
	buf := packet.NewBuffer()
	req, err := packet.ARPRequestFrame(buf, routerMAC, routerIP, g.VNH)
	if err != nil {
		t.Fatal(err)
	}
	reply, handled, err := resp.Respond(req, packet.NewBuffer())
	if err != nil || !handled {
		t.Fatalf("respond: handled=%v err=%v", handled, err)
	}
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(reply); err != nil {
		t.Fatal(err)
	}
	if eth.Dst != routerMAC || eth.Src != g.VMAC {
		t.Fatalf("reply header %+v", eth)
	}
	var arp packet.ARP
	if err := arp.DecodeFromBytes(eth.Payload); err != nil {
		t.Fatal(err)
	}
	if arp.Op != packet.ARPReply || arp.SenderHW != g.VMAC || arp.SenderIP != g.VNH {
		t.Fatalf("reply arp %+v", arp)
	}
}

func TestARPResponderIgnoresForeignTraffic(t *testing.T) {
	gt := NewGroupTable(nil)
	gt.Ensure(r2, r3)
	resp := NewARPResponder(gt)

	// ARP request for a non-VNH address.
	buf := packet.NewBuffer()
	req, _ := packet.ARPRequestFrame(buf, r2mac, r2, addr("203.0.113.99"))
	if _, handled, _ := resp.Respond(req, nil); handled {
		t.Fatal("answered ARP for a real host")
	}
	// Non-ARP frame.
	udp, _ := packet.UDPFrame(packet.NewBuffer(), r2mac, r3mac, r2, r3, 1, 2, nil)
	if _, handled, _ := resp.Respond(udp, nil); handled {
		t.Fatal("handled a UDP frame")
	}
	// ARP reply (not a request).
	var reqARP packet.ARP
	var eth packet.Ethernet
	eth.DecodeFromBytes(req)
	reqARP.DecodeFromBytes(eth.Payload)
	rep, _ := packet.ARPReplyFrame(packet.NewBuffer(), r3mac, r3, reqARP)
	if _, handled, _ := resp.Respond(rep, nil); handled {
		t.Fatal("handled an ARP reply")
	}
	// Garbage.
	if _, handled, _ := resp.Respond([]byte{1, 2}, nil); handled {
		t.Fatal("handled garbage")
	}
}

// --- end-to-end control-plane slice ---

func TestProcessorEngineEndToEnd(t *testing.T) {
	// Wire processor → engine the way the controller does and replay the
	// paper's scenario on 3 prefixes.
	gt := NewGroupTable(nil)
	rec := &recordingPusher{}
	e := NewEngine(gt, rec)
	e.RegisterPeer(PeerPort{NH: r2, MAC: r2mac, Port: 1})
	e.RegisterPeer(PeerPort{NH: r3, MAC: r3mac, Port: 2})
	p := NewProcessor(nil, gt)
	p.OnNewGroup = e.InstallGroup

	p.Process(peerR2, announceFrom(r2, 65002, "1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"))
	p.Process(peerR3, announceFrom(r3, 65003, "1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"))

	if gt.Len() != 1 {
		t.Fatalf("groups %d", gt.Len())
	}
	if len(rec.pushes) != 1 {
		t.Fatalf("initial installs %d, want 1 (one rule for all prefixes)", len(rec.pushes))
	}

	// Failure: one rewrite converges all three prefixes.
	rec.pushes = nil
	n, _ := e.PeerDown(r2)
	if n != 1 || rec.pushes[0].Target.NH != r3 {
		t.Fatalf("failover: %d rewrites to %v", n, rec.pushes)
	}
}

func BenchmarkProcessorUpdate(b *testing.B) {
	p := NewProcessor(nil, nil)
	ups := make([]*bgp.Update, 0, 1024)
	for i := 0; i < 512; i++ {
		pfxStr := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(20 + i/256), byte(i), 0, 0}), 24)
		ups = append(ups, &bgp.Update{Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(65002), NextHop: r2}, NLRI: []netip.Prefix{pfxStr}})
		ups = append(ups, &bgp.Update{Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(65003), NextHop: r3}, NLRI: []netip.Prefix{pfxStr}})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := ups[i%len(ups)]
		peer := peerR2
		if u.Attrs.NextHop == r3 {
			peer = peerR3
		}
		if _, err := p.Process(peer, u); err != nil {
			b.Fatal(err)
		}
	}
}
