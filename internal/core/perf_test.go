package core

import (
	"fmt"
	"net/netip"
	"testing"

	"supercharged/internal/bgp"
)

// perfPeers builds two peers (R2 preferred) and a processor with every
// prefix in the multi-path advVNH state — the steady-state shape of the
// supercharged controller mid-run.
func perfProcessor(t testing.TB, prefixes int) (*Processor, bgp.PeerMeta, bgp.PeerMeta, []netip.Prefix) {
	t.Helper()
	r2 := bgp.PeerMeta{Addr: netip.MustParseAddr("203.0.113.1"), AS: 65002, ID: netip.MustParseAddr("203.0.113.1"), Weight: 200}
	r3 := bgp.PeerMeta{Addr: netip.MustParseAddr("203.0.113.2"), AS: 65003, ID: netip.MustParseAddr("203.0.113.2"), Weight: 100}
	proc := NewProcessor(nil, NewGroupTable(NewVNHPool(AllocSequential)))
	nlri := make([]netip.Prefix, 0, prefixes)
	for i := 0; i < prefixes; i++ {
		nlri = append(nlri, netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 0}), 24))
	}
	for _, peer := range []bgp.PeerMeta{r2, r3} {
		u := &bgp.Update{
			Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(peer.AS, 3356), NextHop: peer.Addr},
			NLRI:  nlri,
		}
		if _, err := proc.Process(peer, u); err != nil {
			t.Fatal(err)
		}
	}
	return proc, r2, r3, nlri
}

// TestProcessorChurnFilterZeroAllocs pins the acceptance criterion: the
// steady-state churn-filter path — a peer re-announcing routes with
// byte-identical attributes, the load of the paper's E3 benchmark —
// processes without a single heap allocation.
func TestProcessorChurnFilterZeroAllocs(t *testing.T) {
	proc, _, r3, nlri := perfProcessor(t, 64)
	// A replayed announcement: same attributes (a fresh object — the
	// interner canonicalizes it on first sight), same routes.
	replay := &bgp.Update{
		Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(r3.AS, 3356), NextHop: r3.Addr},
		NLRI:  nlri,
	}
	// Prime once so the replay's attrs object becomes known to the
	// interner; afterwards every Process is pointer-compares only.
	if out, err := proc.Process(r3, replay); err != nil {
		t.Fatal(err)
	} else if len(out) != 0 {
		t.Fatalf("churn replay emitted %d updates, want 0", len(out))
	}
	allocs := testing.AllocsPerRun(100, func() {
		out, err := proc.Process(r3, replay)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("churn replay emitted %d updates, want 0", len(out))
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn path allocates %.1f objects per update, want 0", allocs)
	}
}

// TestAdvertisedUsesByKeyLookup is the regression guard for the
// O(groups) scan Advertised used to do over All(): resolving an
// advertised VNH group must go through the group table's keyed lookup.
func TestAdvertisedUsesByKeyLookup(t *testing.T) {
	proc, _, _, nlri := perfProcessor(t, 8)
	before := proc.Groups().byKeyLookups.Load()
	nh, virtual, ok := proc.Advertised(nlri[0])
	if !ok || !virtual {
		t.Fatalf("Advertised(%v) = %v virtual=%v ok=%v, want a VNH", nlri[0], nh, virtual, ok)
	}
	if got := proc.Groups().byKeyLookups.Load(); got != before+1 {
		t.Fatalf("Advertised performed %d ByKey lookups, want exactly 1", got-before)
	}
	// Correctness: the VNH resolves back to the advertised group.
	if g, found := proc.Groups().ByVNH(nh); !found || g.Primary() != netip.MustParseAddr("203.0.113.1") {
		t.Fatalf("advertised VNH %v does not resolve to the R2-primary group", nh)
	}
}

// TestGroupTableByKey covers the keyed lookup directly, including the
// cached-key fast path on minted groups.
func TestGroupTableByKey(t *testing.T) {
	tbl := NewGroupTable(NewVNHPool(AllocSequential))
	a, b := netip.MustParseAddr("203.0.113.1"), netip.MustParseAddr("203.0.113.2")
	g, err := tbl.Ensure(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.ByKey(g.Key())
	if !ok || got.VNH != g.VNH {
		t.Fatalf("ByKey(%q) = %v ok=%v, want the minted group", g.Key(), got, ok)
	}
	if _, ok := tbl.ByKey("no|such"); ok {
		t.Fatal("ByKey invented a group")
	}
	// A hand-built Group (no cached key) still renders the same key.
	hand := Group{NHs: []netip.Addr{a, b}}
	if hand.Key() != g.Key() {
		t.Fatalf("cached key %q != computed key %q", g.Key(), hand.Key())
	}
}

// TestRecycleUpdates exercises the emitted-batch pool round trip: a
// real reaction's updates, recycled, then a fresh reaction — the second
// batch must be correct (the pool must hand back clean objects).
func TestRecycleUpdates(t *testing.T) {
	proc, r2, _, nlri := perfProcessor(t, 16)
	out, err := proc.PeerDown(r2.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("PeerDown emitted nothing")
	}
	RecycleUpdates(out)
	// Re-announce R2's routes: must emit VNH announcements again, with
	// none of the recycled batches' old contents leaking in.
	u := &bgp.Update{
		Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(r2.AS, 3356), NextHop: r2.Addr},
		NLRI:  nlri,
	}
	out2, err := proc.Process(r2, u)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, u := range out2 {
		if len(u.Withdrawn) != 0 {
			t.Fatalf("recycled update leaked withdrawn prefixes: %v", u.Withdrawn)
		}
		if u.Attrs == nil {
			t.Fatal("announcement without attrs")
		}
		count += len(u.NLRI)
	}
	if count != len(nlri) {
		t.Fatalf("re-announcement covered %d prefixes, want %d", count, len(nlri))
	}
}

// BenchmarkProcessorChurnFilter measures the per-update cost of the
// suppressed steady-state path (cmd/bench micro snapshots the same shape
// into BENCH_micro.json).
func BenchmarkProcessorChurnFilter(b *testing.B) {
	proc, _, r3, nlri := perfProcessor(b, 1)
	replay := &bgp.Update{
		Attrs: &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: bgp.Sequence(r3.AS, 3356), NextHop: r3.Addr},
		NLRI:  nlri[:1],
	}
	if _, err := proc.Process(r3, replay); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proc.Process(r3, replay); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupEnsure measures group allocation and the keyed hit path.
func BenchmarkGroupEnsure(b *testing.B) {
	tbl := NewGroupTable(NewVNHPool(AllocSequential))
	nhs := make([]netip.Addr, 64)
	for i := range nhs {
		nhs[i] = netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := nhs[i%len(nhs)], nhs[(i+1)%len(nhs)]
		if _, err := tbl.Ensure(a, c); err != nil {
			b.Fatal(err)
		}
	}
}
