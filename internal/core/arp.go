package core

import (
	"net/netip"

	"supercharged/internal/packet"
)

// ARPResponder answers the supercharged router's ARP queries for virtual
// next-hops with the corresponding virtual MAC (§3's Floodlight
// extension). The transport is abstracted: in a real deployment the input
// is an OpenFlow PACKET_IN and the output a PACKET_OUT; the simulation
// calls Respond directly.
type ARPResponder struct {
	groups *GroupTable
}

// NewARPResponder returns a responder over the group table.
func NewARPResponder(groups *GroupTable) *ARPResponder {
	return &ARPResponder{groups: groups}
}

// Lookup resolves a VNH to its VMAC.
func (r *ARPResponder) Lookup(vnh netip.Addr) (packet.MAC, bool) {
	g, ok := r.groups.ByVNH(vnh)
	if !ok {
		return packet.MAC{}, false
	}
	return g.VMAC, true
}

// Respond inspects an Ethernet frame; if it is an ARP request for a known
// VNH, it returns the reply frame to inject back toward the requester.
// handled reports whether the frame was an ARP request the responder owns
// (even if reply construction failed).
func (r *ARPResponder) Respond(frame []byte, buf *packet.Buffer) (reply []byte, handled bool, err error) {
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil || eth.Type != packet.EtherTypeARP {
		return nil, false, nil
	}
	var arp packet.ARP
	if err := arp.DecodeFromBytes(eth.Payload); err != nil {
		return nil, false, nil
	}
	if arp.Op != packet.ARPRequest {
		return nil, false, nil
	}
	vmac, ok := r.Lookup(arp.TargetIP)
	if !ok {
		return nil, false, nil
	}
	if buf == nil {
		buf = packet.NewBuffer()
	}
	reply, err = packet.ARPReplyFrame(buf, vmac, arp.TargetIP, arp)
	return reply, true, err
}
