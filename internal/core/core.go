package core
