package core

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"supercharged/internal/packet"
)

// Group is one backup-group: all prefixes whose ranked path list starts
// with the same ordered next-hop tuple share this group's VNH/VMAC and are
// redirected together by a single switch-rule rewrite. The paper works
// with tuples of size 2 — (primary, backup) — and notes the algorithm
// generalizes to any size; NHs[0] is the primary.
type Group struct {
	NHs  []netip.Addr
	VNH  netip.Addr
	VMAC packet.MAC
	// Prefixes counts member prefixes (bookkeeping for the ops endpoint
	// and ablations).
	Prefixes int
	// key caches the canonical tuple key for groups minted by a
	// GroupTable, so the hot paths (per-prefix AddRef/suppress checks
	// during a full-table load) don't rebuild the string per call.
	key string
}

// Primary returns the group's primary next-hop.
func (g Group) Primary() netip.Addr { return g.NHs[0] }

// Backup returns the first backup next-hop.
func (g Group) Backup() netip.Addr { return g.NHs[1] }

// Key returns the canonical string key of the ordered tuple.
func (g Group) Key() string {
	if g.key != "" {
		return g.key
	}
	return groupKeyOf(g.NHs)
}

func (g Group) String() string {
	parts := make([]string, len(g.NHs))
	for i, nh := range g.NHs {
		parts[i] = nh.String()
	}
	return fmt.Sprintf("group{%s vnh=%s vmac=%s n=%d}", strings.Join(parts, "->"), g.VNH, g.VMAC, g.Prefixes)
}

func groupKeyOf(nhs []netip.Addr) string {
	var b strings.Builder
	for i, nh := range nhs {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(nh.String())
	}
	return b.String()
}

// GroupTable owns the backup-group map of paper §2 (bck_groups) plus the
// VNH/VMAC pool. It is safe for concurrent use.
type GroupTable struct {
	mu     sync.RWMutex
	pool   *VNHPool
	groups map[string]*Group
	byVNH  map[netip.Addr]*Group
	// byKeyLookups counts ByKey calls — the regression tests use it to
	// assert the processor resolves advertised groups via the keyed map
	// instead of scanning All().
	byKeyLookups atomic.Uint64
}

// NewGroupTable returns an empty table allocating from pool.
func NewGroupTable(pool *VNHPool) *GroupTable {
	if pool == nil {
		pool = NewVNHPool(AllocSequential)
	}
	return &GroupTable{
		pool:   pool,
		groups: make(map[string]*Group),
		byVNH:  make(map[netip.Addr]*Group),
	}
}

// Ensure returns the group for the ordered next-hop tuple, allocating
// VNH/VMAC on first use — the paper's get_new_vnh_vmac(). The tuple must
// have at least two entries.
func (t *GroupTable) Ensure(nhs ...netip.Addr) (Group, error) {
	if len(nhs) < 2 {
		return Group{}, fmt.Errorf("core: backup-group needs ≥2 next-hops, got %d", len(nhs))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := groupKeyOf(nhs)
	if g, ok := t.groups[key]; ok {
		return *g, nil
	}
	vnh, vmac, err := t.pool.Alloc(nhs)
	if err != nil {
		return Group{}, err
	}
	g := &Group{NHs: append([]netip.Addr(nil), nhs...), VNH: vnh, VMAC: vmac, key: key}
	t.groups[key] = g
	t.byVNH[vnh] = g
	return *g, nil
}

// ByKey resolves a canonical tuple key (Group.Key) to its group — the
// O(1) lookup Processor.Advertised uses instead of scanning All().
func (t *GroupTable) ByKey(key string) (Group, bool) {
	t.byKeyLookups.Add(1)
	t.mu.RLock()
	defer t.mu.RUnlock()
	if g, ok := t.groups[key]; ok {
		return *g, true
	}
	return Group{}, false
}

// Get returns the group for the tuple if it exists.
func (t *GroupTable) Get(nhs ...netip.Addr) (Group, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if g, ok := t.groups[groupKeyOf(nhs)]; ok {
		return *g, true
	}
	return Group{}, false
}

// ByVNH resolves a virtual next-hop to its group — the ARP responder's
// lookup.
func (t *GroupTable) ByVNH(vnh netip.Addr) (Group, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if g, ok := t.byVNH[vnh]; ok {
		return *g, true
	}
	return Group{}, false
}

// AddRef records one more prefix using the group.
func (t *GroupTable) AddRef(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if g, ok := t.groups[key]; ok {
		g.Prefixes++
	}
}

// DecRef decrements membership; a group that reaches zero is kept (its
// VNH allocation is stable) but reported empty.
func (t *GroupTable) DecRef(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if g, ok := t.groups[key]; ok && g.Prefixes > 0 {
		g.Prefixes--
	}
}

// WithPrimary returns every group whose primary next-hop is nh — the set
// Listing 2 rewrites when nh fails.
func (t *GroupTable) WithPrimary(nh netip.Addr) []Group {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Group
	for _, g := range t.groups {
		if g.NHs[0] == nh {
			out = append(out, *g)
		}
	}
	sortGroups(out)
	return out
}

// Containing returns every group whose tuple contains nh at any position.
func (t *GroupTable) Containing(nh netip.Addr) []Group {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Group
	for _, g := range t.groups {
		for _, x := range g.NHs {
			if x == nh {
				out = append(out, *g)
				break
			}
		}
	}
	sortGroups(out)
	return out
}

// All returns every group, sorted for stable output.
func (t *GroupTable) All() []Group {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Group, 0, len(t.groups))
	for _, g := range t.groups {
		out = append(out, *g)
	}
	sortGroups(out)
	return out
}

// Len returns the number of groups.
func (t *GroupTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.groups)
}

func sortGroups(gs []Group) {
	sort.Slice(gs, func(i, j int) bool { return gs[i].Key() < gs[j].Key() })
}
