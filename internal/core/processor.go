package core

import (
	"net/netip"
	"slices"
	"sync"

	"supercharged/internal/bgp"
)

// Processor is the control-plane half of the supercharger: the online
// backup-group algorithm of paper Listing 1. It maintains the ordered path
// list per prefix (via the full BGP decision process), assigns each
// multi-path prefix to a backup-group, and emits the UPDATE stream to
// re-announce toward the supercharged router — with the next-hop rewritten
// to the group's virtual next-hop, so that the router's flat FIB ends up
// tagging traffic with the group's VMAC.
//
// The processor is engineered for full-table scale (~1M prefixes): change
// buffers and next-hop scratch space are reused across calls, the RIB's
// attribute interner turns the churn filter (sameAttrs) and the batching
// signatures into pointer compares, and emitted UPDATE batches come from
// a pool (see RecycleUpdates). The steady-state churn path — a peer
// re-announcing routes with unchanged attributes — allocates nothing.
type Processor struct {
	// GroupSize is the backup-group tuple size k (default 2, the paper's
	// configuration: protects against any single link or node failure).
	GroupSize int
	// OnNewGroup, if set, is called exactly once per newly allocated
	// group, before the announcement using its VNH is returned. The
	// convergence engine installs the group's initial switch rule here.
	OnNewGroup func(Group) error
	// Metrics, if set, counts the processor's work (see NewProcMetrics).
	// Nil is the disabled sink: every hook is one branch, so the
	// zero-alloc churn path stays zero-alloc.
	Metrics *ProcMetrics

	rib    *bgp.RIB
	groups *GroupTable

	mu  sync.Mutex
	adv map[netip.Prefix]advState
	// chScratch and nhScratch are per-processor reusable buffers for RIB
	// change lists and the top-next-hop extraction; both are only touched
	// under mu.
	chScratch []bgp.Change
	nhScratch []netip.Addr
}

// advState records what the processor last announced to the router for a
// prefix.
type advState struct {
	mode     advMode
	groupKey string     // mode == advVNH
	nextHop  netip.Addr // mode == advPlain
	attrs    *bgp.Attrs // identity of the source attrs last rendered
	// nhs is the announced group's ordered tuple (mode == advVNH). It
	// shares the group's own NHs slice, so the suppress check compares
	// addresses without building a key string or allocating.
	nhs []netip.Addr
}

type advMode uint8

const (
	advNone advMode = iota
	advPlain
	advVNH
)

// NewProcessor builds a processor over the given RIB and group table.
// Passing a nil RIB or table creates fresh ones.
func NewProcessor(rib *bgp.RIB, groups *GroupTable) *Processor {
	if rib == nil {
		rib = bgp.NewRIB()
	}
	if groups == nil {
		groups = NewGroupTable(nil)
	}
	return &Processor{GroupSize: 2, rib: rib, groups: groups, adv: make(map[netip.Prefix]advState)}
}

// Reserve pre-sizes the processor's advertised-state map for about n
// prefixes, sparing the map-growth re-zeroing a full-table load would
// otherwise pay. Call it before feeding the table; it never shrinks.
func (p *Processor) Reserve(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > len(p.adv) {
		adv := make(map[netip.Prefix]advState, n)
		for k, v := range p.adv {
			adv[k] = v
		}
		p.adv = adv
	}
}

// RIB returns the processor's routing table.
func (p *Processor) RIB() *bgp.RIB { return p.rib }

// Groups returns the backup-group table.
func (p *Processor) Groups() *GroupTable { return p.groups }

// Process applies one UPDATE from a peer and returns the UPDATEs to send
// to the supercharged router. This is the code path whose latency §4's
// micro-benchmark measures (paper: ≤125 ms at the 99th percentile for the
// unoptimized Python prototype).
//
// The RIB application and the reaction are one critical section: two peer
// streams processed concurrently must react to RIB changes in the order
// they were applied, or a stale single-path view could overwrite a newer
// VNH announcement.
//
// The returned updates may come from a pool: callers that finish with
// them can hand them back via RecycleUpdates (optional — an unrecycled
// batch is ordinary garbage).
func (p *Processor) Process(peer bgp.PeerMeta, upd *bgp.Update) ([]*bgp.Update, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Metrics.update()
	changes := p.rib.UpdateInto(peer, upd, p.chScratch[:0])
	p.chScratch = changes
	out, err := p.reactLocked(changes)
	// Zero the consumed slots so the retained buffer does not pin dead
	// Path lists (a 100k-change PeerDown would otherwise stay reachable
	// through the scratch until that many later changes overwrite it).
	clear(changes)
	return out, err
}

// PeerDown removes every path learned from the peer and returns the
// resulting UPDATE stream toward the router. Note that data-plane
// convergence does NOT wait for these: the engine's switch rewrite
// restores connectivity first, and this control-plane cleanup proceeds at
// the router's own pace. The per-peer RIB index makes the removal
// proportional to the peer's own prefix count, not the table size.
func (p *Processor) PeerDown(peerAddr netip.Addr) ([]*bgp.Update, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	changes := p.rib.RemovePeerInto(peerAddr, p.chScratch[:0])
	p.chScratch = changes
	out, err := p.reactLocked(changes)
	clear(changes) // see Process: don't pin dead Paths through the scratch
	return out, err
}

// batchSig identifies announcements that can share one outgoing UPDATE:
// same source attribute object rendered toward the same target (VNH group
// or plain next-hop). Clones of the same source with the same target are
// byte-identical. With interned attributes the comparison is pointer and
// value compares only — no key strings are built to decide a merge.
type batchSig struct {
	src *bgp.Attrs
	vnh bool
	nh  netip.Addr // plain target (vnh == false)
	key string     // group key (vnh == true; the group's cached key)
}

// updatePool recycles the Update batches the processor emits, so a
// full-feed replay (graceful-restart refresh, session recovery) reuses
// message objects and their NLRI backing arrays instead of allocating a
// fresh batch per reaction.
var updatePool = sync.Pool{New: func() any { return new(bgp.Update) }}

func newPooledUpdate() *bgp.Update {
	u := updatePool.Get().(*bgp.Update)
	u.Withdrawn = u.Withdrawn[:0]
	u.NLRI = u.NLRI[:0]
	u.Attrs = nil
	return u
}

// RecycleUpdates returns a batch previously emitted by Process or
// PeerDown to the pool. Callers must not touch the updates afterwards;
// recycling is optional and only ever correct for batches the processor
// itself returned (feed-generated updates are not pooled).
func RecycleUpdates(upds []*bgp.Update) {
	for _, u := range upds {
		if u != nil {
			updatePool.Put(u)
		}
	}
}

// reactLocked translates RIB changes into announcements per Listing 1,
// coalescing consecutive prefixes that render identically (one inbound
// UPDATE carrying many NLRI of one template yields one outbound UPDATE).
// The coalescing happens before rendering: a prefix joining the running
// batch appends its NLRI to the open update instead of cloning attributes
// and building a message that would immediately be merged away — at a 1M
// full-table load that is the difference between a handful of rendered
// attribute sets and a million discarded clones. Callers hold p.mu.
func (p *Processor) reactLocked(changes []bgp.Change) ([]*bgp.Update, error) {
	var out []*bgp.Update
	var lastSig batchSig
	var last *bgp.Update // open announcement batch (== out[len-1], Attrs != nil)
	for _, ch := range changes {
		upd, sig, err := p.reactOne(ch, last, lastSig)
		if err != nil {
			return out, err
		}
		if upd == nil {
			continue // suppressed by the churn filter
		}
		if upd == last {
			continue // merged into the open batch
		}
		if upd.Attrs == nil {
			// A withdraw extends a preceding pure-withdraw message.
			if n := len(out); n > 0 && out[n-1].Attrs == nil {
				out[n-1].Withdrawn = append(out[n-1].Withdrawn, upd.Withdrawn...)
				updatePool.Put(upd)
				continue
			}
			out = append(out, upd)
			last, lastSig = nil, batchSig{}
			continue
		}
		out = append(out, upd)
		last, lastSig = upd, sig
	}
	return out, nil
}

// reactOne reacts to one RIB change. prev is the open announcement batch
// (with its signature lastSig): when the change renders identically,
// reactOne appends the prefix to prev and returns prev itself to signal
// the merge.
func (p *Processor) reactOne(ch bgp.Change, prev *bgp.Update, lastSig batchSig) (*bgp.Update, batchSig, error) {
	pfx := ch.Prefix
	state := p.adv[pfx]

	// Prefix became unreachable: withdraw (Listing 1's send_withdraw).
	if len(ch.New) == 0 {
		p.clearState(pfx, state)
		if state.mode == advNone {
			return nil, batchSig{}, nil
		}
		p.Metrics.withdrawn()
		u := newPooledUpdate()
		u.Withdrawn = append(u.Withdrawn, pfx)
		return u, batchSig{}, nil
	}

	best := ch.New[0]

	// Single path: announce as-is; the router resolves the real next-hop
	// itself (Listing 1's len(new) == 1 branch).
	nhs := p.topNextHops(ch.New)
	if len(nhs) < 2 {
		if state.mode == advPlain && state.nextHop == best.NextHop() && sameAttrs(state.attrs, best.Attrs) {
			p.Metrics.suppressed()
			return nil, batchSig{}, nil // nothing material changed
		}
		p.clearState(pfx, state)
		p.adv[pfx] = advState{mode: advPlain, nextHop: best.NextHop(), attrs: best.Attrs}
		p.Metrics.announced()
		sig := batchSig{src: best.Attrs, nh: best.NextHop()}
		if prev != nil && sig == lastSig {
			prev.NLRI = append(prev.NLRI, pfx)
			return prev, sig, nil
		}
		u := newPooledUpdate()
		u.Attrs = best.Attrs
		u.NLRI = append(u.NLRI, pfx)
		return u, sig, nil
	}

	// Multi-path: same tuple, same attributes — suppress before paying
	// for any group lookup or key construction. This is the steady-state
	// churn path (graceful-restart replays, background UPDATE noise) and
	// it must not allocate.
	if state.mode == advVNH && sameAttrs(state.attrs, best.Attrs) && slices.Equal(state.nhs, nhs) {
		p.Metrics.suppressed()
		return nil, batchSig{}, nil
	}

	// Ensure the backup-group and announce via its VNH.
	group, existed := p.groups.Get(nhs...)
	if !existed {
		var err error
		group, err = p.groups.Ensure(nhs...)
		if err != nil {
			return nil, batchSig{}, err
		}
		p.Metrics.groupAllocated()
		if p.OnNewGroup != nil {
			if err := p.OnNewGroup(group); err != nil {
				return nil, batchSig{}, err
			}
		}
	}
	key := group.Key()
	p.clearState(pfx, state)
	p.adv[pfx] = advState{mode: advVNH, groupKey: key, attrs: best.Attrs, nhs: group.NHs}
	p.groups.AddRef(key)
	p.Metrics.announced()

	sig := batchSig{src: best.Attrs, vnh: true, key: key}
	if prev != nil && sig == lastSig {
		prev.NLRI = append(prev.NLRI, pfx)
		return prev, sig, nil
	}
	attrs := best.Attrs.Clone()
	attrs.NextHop = group.VNH
	u := newPooledUpdate()
	u.Attrs = attrs
	u.NLRI = append(u.NLRI, pfx)
	return u, sig, nil
}

// sameAttrs is the processor's churn filter: pointer identity first (with
// the RIB's interner this is the only comparison that ever runs — every
// stored attribute pointer is canonical), semantic equality as the
// defensive fallback, so a peer replaying byte-identical routes (a
// graceful-restart refresh, background UPDATE noise) produces no
// announcements toward the router. The legacy router has no such filter —
// shielding it from redundant churn is part of what the supercharger
// sells (the paper's E3 load benchmark).
func sameAttrs(a, b *bgp.Attrs) bool {
	return a == b || a.Equal(b)
}

func (p *Processor) clearState(pfx netip.Prefix, state advState) {
	if state.mode == advVNH {
		p.groups.DecRef(state.groupKey)
	}
	delete(p.adv, pfx)
}

// topNextHops extracts the first GroupSize distinct next-hops from the
// ranked path list into the processor's reusable scratch buffer; the
// returned slice is only valid until the next call.
func (p *Processor) topNextHops(paths []*bgp.Path) []netip.Addr {
	k := p.GroupSize
	if k < 2 {
		k = 2
	}
	if cap(p.nhScratch) < k {
		p.nhScratch = make([]netip.Addr, 0, k)
	}
	nhs := p.nhScratch[:0]
	for _, path := range paths {
		nh := path.NextHop()
		dup := false
		for _, seen := range nhs {
			if seen == nh {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		nhs = append(nhs, nh)
		if len(nhs) == k {
			break
		}
	}
	return nhs
}

// Advertised returns what the processor last announced for pfx: the
// next-hop the router sees (real or virtual) and whether it is virtual.
// Group resolution is a keyed lookup (GroupTable.ByKey), not a scan.
func (p *Processor) Advertised(pfx netip.Prefix) (nh netip.Addr, virtual, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, found := p.adv[pfx]
	if !found || st.mode == advNone {
		return netip.Addr{}, false, false
	}
	if st.mode == advPlain {
		return st.nextHop, false, true
	}
	if g, found := p.groups.ByKey(st.groupKey); found {
		return g.VNH, true, true
	}
	return netip.Addr{}, false, false
}

// AdvertisedCount returns the number of prefixes currently announced.
func (p *Processor) AdvertisedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.adv)
}
