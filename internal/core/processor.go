package core

import (
	"net/netip"
	"sync"

	"supercharged/internal/bgp"
)

// Processor is the control-plane half of the supercharger: the online
// backup-group algorithm of paper Listing 1. It maintains the ordered path
// list per prefix (via the full BGP decision process), assigns each
// multi-path prefix to a backup-group, and emits the UPDATE stream to
// re-announce toward the supercharged router — with the next-hop rewritten
// to the group's virtual next-hop, so that the router's flat FIB ends up
// tagging traffic with the group's VMAC.
type Processor struct {
	// GroupSize is the backup-group tuple size k (default 2, the paper's
	// configuration: protects against any single link or node failure).
	GroupSize int
	// OnNewGroup, if set, is called exactly once per newly allocated
	// group, before the announcement using its VNH is returned. The
	// convergence engine installs the group's initial switch rule here.
	OnNewGroup func(Group) error

	rib    *bgp.RIB
	groups *GroupTable

	mu  sync.Mutex
	adv map[netip.Prefix]advState
}

// advState records what the processor last announced to the router for a
// prefix.
type advState struct {
	mode     advMode
	groupKey string     // mode == advVNH
	nextHop  netip.Addr // mode == advPlain
	attrs    *bgp.Attrs // identity of the source attrs last rendered
}

type advMode uint8

const (
	advNone advMode = iota
	advPlain
	advVNH
)

// NewProcessor builds a processor over the given RIB and group table.
// Passing a nil RIB or table creates fresh ones.
func NewProcessor(rib *bgp.RIB, groups *GroupTable) *Processor {
	if rib == nil {
		rib = bgp.NewRIB()
	}
	if groups == nil {
		groups = NewGroupTable(nil)
	}
	return &Processor{GroupSize: 2, rib: rib, groups: groups, adv: make(map[netip.Prefix]advState)}
}

// RIB returns the processor's routing table.
func (p *Processor) RIB() *bgp.RIB { return p.rib }

// Groups returns the backup-group table.
func (p *Processor) Groups() *GroupTable { return p.groups }

// Process applies one UPDATE from a peer and returns the UPDATEs to send
// to the supercharged router. This is the code path whose latency §4's
// micro-benchmark measures (paper: ≤125 ms at the 99th percentile for the
// unoptimized Python prototype).
//
// The RIB application and the reaction are one critical section: two peer
// streams processed concurrently must react to RIB changes in the order
// they were applied, or a stale single-path view could overwrite a newer
// VNH announcement.
func (p *Processor) Process(peer bgp.PeerMeta, upd *bgp.Update) ([]*bgp.Update, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	changes := p.rib.Update(peer, upd)
	return p.reactLocked(changes)
}

// PeerDown removes every path learned from the peer and returns the
// resulting UPDATE stream toward the router. Note that data-plane
// convergence does NOT wait for these: the engine's switch rewrite
// restores connectivity first, and this control-plane cleanup proceeds at
// the router's own pace.
func (p *Processor) PeerDown(peerAddr netip.Addr) ([]*bgp.Update, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	changes := p.rib.RemovePeer(peerAddr)
	return p.reactLocked(changes)
}

// batchSig identifies announcements that can share one outgoing UPDATE:
// same source attribute object rendered toward the same target (VNH group
// or plain next-hop). Clones of the same source with the same target are
// byte-identical.
type batchSig struct {
	src    *bgp.Attrs
	target string
}

// reactLocked translates RIB changes into announcements per Listing 1,
// coalescing consecutive prefixes that render identically (one inbound
// UPDATE carrying many NLRI of one template yields one outbound UPDATE).
// Callers hold p.mu.
func (p *Processor) reactLocked(changes []bgp.Change) ([]*bgp.Update, error) {
	var out []*bgp.Update
	var lastSig batchSig
	for _, ch := range changes {
		upd, sig, err := p.reactOne(ch)
		if err != nil {
			return out, err
		}
		if upd == nil {
			continue
		}
		if n := len(out); n > 0 {
			prev := out[n-1]
			if upd.Attrs != nil && prev.Attrs != nil && sig == lastSig &&
				len(upd.Withdrawn) == 0 && len(prev.Withdrawn) == 0 {
				prev.NLRI = append(prev.NLRI, upd.NLRI...)
				continue
			}
			if upd.Attrs == nil && prev.Attrs == nil {
				prev.Withdrawn = append(prev.Withdrawn, upd.Withdrawn...)
				continue
			}
		}
		out = append(out, upd)
		lastSig = sig
	}
	return out, nil
}

func (p *Processor) reactOne(ch bgp.Change) (*bgp.Update, batchSig, error) {
	pfx := ch.Prefix
	state := p.adv[pfx]

	// Prefix became unreachable: withdraw (Listing 1's send_withdraw).
	if len(ch.New) == 0 {
		p.clearState(pfx, state)
		if state.mode == advNone {
			return nil, batchSig{}, nil
		}
		return &bgp.Update{Withdrawn: []netip.Prefix{pfx}}, batchSig{}, nil
	}

	best := ch.New[0]

	// Single path: announce as-is; the router resolves the real next-hop
	// itself (Listing 1's len(new) == 1 branch).
	nhs := p.topNextHops(ch.New)
	if len(nhs) < 2 {
		if state.mode == advPlain && state.nextHop == best.NextHop() && sameAttrs(state.attrs, best.Attrs) {
			return nil, batchSig{}, nil // nothing material changed
		}
		p.clearState(pfx, state)
		p.adv[pfx] = advState{mode: advPlain, nextHop: best.NextHop(), attrs: best.Attrs}
		sig := batchSig{src: best.Attrs, target: "plain|" + best.NextHop().String()}
		return &bgp.Update{Attrs: best.Attrs, NLRI: []netip.Prefix{pfx}}, sig, nil
	}

	// Multi-path: ensure the backup-group and announce via its VNH.
	group, existed := p.groups.Get(nhs...)
	if !existed {
		var err error
		group, err = p.groups.Ensure(nhs...)
		if err != nil {
			return nil, batchSig{}, err
		}
		if p.OnNewGroup != nil {
			if err := p.OnNewGroup(group); err != nil {
				return nil, batchSig{}, err
			}
		}
	}
	key := group.Key()
	if state.mode == advVNH && state.groupKey == key && sameAttrs(state.attrs, best.Attrs) {
		return nil, batchSig{}, nil // same group, same attributes: suppress
	}
	p.clearState(pfx, state)
	p.adv[pfx] = advState{mode: advVNH, groupKey: key, attrs: best.Attrs}
	p.groups.AddRef(key)

	attrs := best.Attrs.Clone()
	attrs.NextHop = group.VNH
	return &bgp.Update{Attrs: attrs, NLRI: []netip.Prefix{pfx}}, batchSig{src: best.Attrs, target: key}, nil
}

// sameAttrs is the processor's churn filter: pointer identity first (the
// common case — one UPDATE's attrs shared across its NLRI), semantic
// equality second, so a peer replaying byte-identical routes (a
// graceful-restart refresh, background UPDATE noise) produces no
// announcements toward the router. The legacy router has no such filter —
// shielding it from redundant churn is part of what the supercharger
// sells (the paper's E3 load benchmark).
func sameAttrs(a, b *bgp.Attrs) bool {
	return a == b || a.Equal(b)
}

func (p *Processor) clearState(pfx netip.Prefix, state advState) {
	if state.mode == advVNH {
		p.groups.DecRef(state.groupKey)
	}
	delete(p.adv, pfx)
}

// topNextHops extracts the first GroupSize distinct next-hops from the
// ranked path list.
func (p *Processor) topNextHops(paths []*bgp.Path) []netip.Addr {
	k := p.GroupSize
	if k < 2 {
		k = 2
	}
	nhs := make([]netip.Addr, 0, k)
	for _, path := range paths {
		nh := path.NextHop()
		dup := false
		for _, seen := range nhs {
			if seen == nh {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		nhs = append(nhs, nh)
		if len(nhs) == k {
			break
		}
	}
	return nhs
}

// Advertised returns what the processor last announced for pfx: the
// next-hop the router sees (real or virtual) and whether it is virtual.
func (p *Processor) Advertised(pfx netip.Prefix) (nh netip.Addr, virtual, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, found := p.adv[pfx]
	if !found || st.mode == advNone {
		return netip.Addr{}, false, false
	}
	if st.mode == advPlain {
		return st.nextHop, false, true
	}
	for _, g := range p.groups.All() {
		if g.Key() == st.groupKey {
			return g.VNH, true, true
		}
	}
	return netip.Addr{}, false, false
}

// AdvertisedCount returns the number of prefixes currently announced.
func (p *Processor) AdvertisedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.adv)
}
