package core

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/packet"
)

func testControllerConfig() ControllerConfig {
	return ControllerConfig{
		LocalAS:  65001,
		RouterID: addr("203.0.113.253"),
		Peers: []PeerConfig{
			{Addr: r2, AS: 65002, MAC: r2mac, SwitchPort: 2, Weight: 200},
			{Addr: r3, AS: 65003, MAC: r3mac, SwitchPort: 3, Weight: 100},
		},
		Router:     RouterConfig{Addr: addr("203.0.113.254"), AS: 65000, MAC: packet.MustParseMAC("00:ff:00:00:00:01"), SwitchPort: 1},
		SwitchDPID: 0x53,
		AllocMode:  AllocDeterministic,
	}
}

func TestControllerQueuesRulesUntilSwitchConnects(t *testing.T) {
	c := NewController(testControllerConfig())
	// No switch connected: creating a group must not fail; its rule is
	// queued for replay.
	g, err := c.Groups().Ensure(r2, r3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Engine().InstallGroup(g); err != nil {
		t.Fatalf("install without switch: %v", err)
	}
	c.mu.Lock()
	queued := len(c.pendingRule)
	c.mu.Unlock()
	if queued != 1 {
		t.Fatalf("pending rules %d, want 1", queued)
	}
}

func TestControllerStatusAndOpsEndpoint(t *testing.T) {
	c := NewController(testControllerConfig())
	g, _ := c.Groups().Ensure(r2, r3)
	c.Engine().InstallGroup(g)
	c.Engine().PeerDown(r2)

	st := c.Status()
	if len(st.Peers) != 2 || len(st.Groups) != 1 {
		t.Fatalf("status %+v", st)
	}
	var r2Down bool
	for _, p := range st.Peers {
		if p.Addr == r2.String() {
			r2Down = p.Down
		}
	}
	if !r2Down {
		t.Fatal("status misses the failed peer")
	}
	if st.Groups[0].Target != r3.String() {
		t.Fatalf("group target %q, want backup", st.Groups[0].Target)
	}
	if st.Rewrites != 1 {
		t.Fatalf("rewrites %d", st.Rewrites)
	}

	// HTTP surface.
	srv := httptest.NewServer(c.OpsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded Status
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Rewrites != 1 || len(decoded.Groups) != 1 {
		t.Fatalf("ops endpoint returned %+v", decoded)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatal("ops endpoint content type")
	}
}

func TestControllerPeerUpdateFlowsToRouterSession(t *testing.T) {
	// Wire only the BGP sides: peer updates must come out of the router
	// session with the VNH substituted once both providers announce.
	cfg := testControllerConfig()
	peerDials := map[string]func() (net.Conn, error){}
	peerConns := map[string]chan net.Conn{}
	for _, p := range cfg.Peers {
		ch := make(chan net.Conn, 4)
		peerConns[p.Addr.String()] = ch
		addrStr := p.Addr.String()
		peerDials[addrStr] = func() (net.Conn, error) {
			a, b := net.Pipe()
			peerConns[addrStr] <- b
			return a, nil
		}
	}
	for i := range cfg.Peers {
		cfg.Peers[i].Dial = peerDials[cfg.Peers[i].Addr.String()]
	}
	routerCh := make(chan net.Conn, 4)
	cfg.Router.Dial = func() (net.Conn, error) {
		a, b := net.Pipe()
		routerCh <- b
		return a, nil
	}
	c := NewController(cfg)

	// Fake router: collects received updates.
	gotUpdates := make(chan *bgp.Update, 64)
	routerSess := bgp.NewSession(bgp.SessionConfig{
		LocalAS: 65000, LocalID: addr("203.0.113.254"), PeerAS: 65001,
		PeerAddr: addr("203.0.113.253"),
		OnUpdate: func(u *bgp.Update) { gotUpdates <- u },
	})
	go func() {
		for conn := range routerCh {
			go routerSess.Accept(conn)
		}
	}()
	// Fake providers.
	provs := map[string]*bgp.Session{}
	for _, p := range cfg.Peers {
		sess := bgp.NewSession(bgp.SessionConfig{
			LocalAS: p.AS, LocalID: p.Addr, PeerAS: 65001, PeerAddr: addr("203.0.113.253"),
		})
		provs[p.Addr.String()] = sess
		ch := peerConns[p.Addr.String()]
		go func(s *bgp.Session, ch chan net.Conn) {
			for conn := range ch {
				go s.Accept(conn)
			}
		}(sess, ch)
	}

	c.Start()
	defer c.Stop()
	defer routerSess.Stop()
	for _, s := range provs {
		defer s.Stop()
		if err := s.WaitEstablished(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := routerSess.WaitEstablished(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Provider announcements.
	if err := provs[r2.String()].Send(announceFrom(r2, 65002, "1.0.0.0/24")); err != nil {
		t.Fatal(err)
	}
	first := recvUpdate(t, gotUpdates)
	if first.Attrs == nil || first.Attrs.NextHop != r2 {
		t.Fatalf("single-path announcement %v", first)
	}
	if err := provs[r3.String()].Send(announceFrom(r3, 65003, "1.0.0.0/24")); err != nil {
		t.Fatal(err)
	}
	second := recvUpdate(t, gotUpdates)
	g, ok := c.Groups().Get(r2, r3)
	if !ok {
		t.Fatal("group not created")
	}
	if second.Attrs == nil || second.Attrs.NextHop != g.VNH {
		t.Fatalf("VNH announcement carries %v, want %v", second.Attrs.NextHop, g.VNH)
	}
}

func recvUpdate(t *testing.T, ch chan *bgp.Update) *bgp.Update {
	t.Helper()
	select {
	case u := <-ch:
		return u
	case <-time.After(5 * time.Second):
		t.Fatal("no update from controller")
		return nil
	}
}
