package core

import (
	"net/netip"
	"sort"
	"sync"

	"supercharged/internal/packet"
)

// PeerPort is the data-plane location of one next-hop: its MAC address and
// the switch port it hangs off. The engine's registry maps BGP next-hops
// to these.
type PeerPort struct {
	NH   netip.Addr
	MAC  packet.MAC
	Port uint16
}

// RuleTarget is the concrete rewrite a group rule currently applies.
type RuleTarget struct {
	Group  Group
	Target PeerPort
}

// FlowPusher abstracts the switch-programming backend: the real OpenFlow
// connection in deployments, a direct table handle in the simulation.
type FlowPusher interface {
	// PushGroupRule (re)installs the rule "match dst_mac == group.VMAC →
	// set dst_mac to target.MAC, output target.Port".
	PushGroupRule(g Group, target PeerPort) error
}

// FlowPusherFunc adapts a function to FlowPusher.
type FlowPusherFunc func(g Group, target PeerPort) error

// PushGroupRule implements FlowPusher.
func (f FlowPusherFunc) PushGroupRule(g Group, target PeerPort) error { return f(g, target) }

// Engine is the data-plane half of the supercharger: paper Listing 2. On
// a peer failure it rewrites the switch rule of every backup-group whose
// current target is the failed next-hop — at most #peers rules, a small
// constant, which is why supercharged convergence is flat at ~150 ms
// regardless of table size.
type Engine struct {
	pusher FlowPusher
	// Metrics, if set, counts the engine's data-plane work (see
	// NewEngineMetrics). Nil is the disabled sink.
	Metrics *EngineMetrics

	mu      sync.Mutex
	peers   map[netip.Addr]PeerPort
	down    map[netip.Addr]bool
	targets map[string]netip.Addr // group key -> current target NH
	groups  *GroupTable
	// rewrites counts rule pushes triggered by failures (stats).
	rewrites uint64
}

// NewEngine builds the convergence engine over a group table and pusher.
func NewEngine(groups *GroupTable, pusher FlowPusher) *Engine {
	return &Engine{
		pusher:  pusher,
		peers:   make(map[netip.Addr]PeerPort),
		down:    make(map[netip.Addr]bool),
		targets: make(map[string]netip.Addr),
		groups:  groups,
	}
}

// RegisterPeer records where a next-hop lives in the data plane.
func (e *Engine) RegisterPeer(pp PeerPort) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[pp.NH] = pp
}

// Peers returns the registered peer ports, sorted by next-hop.
func (e *Engine) Peers() []PeerPort {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]PeerPort, 0, len(e.peers))
	for _, pp := range e.peers {
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NH.Less(out[j].NH) })
	return out
}

// Rewrites returns the number of failure-triggered rule pushes so far.
func (e *Engine) Rewrites() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rewrites
}

// InstallGroup installs the initial rule for a newly created group,
// pointing at the first live next-hop of its tuple (normally the primary).
// The processor calls this from OnNewGroup before the VNH is announced, so
// the data plane is ready before the router can send traffic to the VMAC.
//
// A group whose members are all currently down (possible mid-churn: a
// routing update can form a new tuple out of peers whose failures are
// still being cleaned up) installs nothing — a rule at a dead peer would
// blackhole identically — and the first PeerUp of a member pushes it.
func (e *Engine) InstallGroup(g Group) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	want, ok := e.bestLiveLocked(g)
	if !ok {
		return nil
	}
	return e.pushLocked(g, want)
}

// PeerDown marks nh failed and rewrites every group whose current target
// is nh to its best surviving next-hop (Listing 2's
// data_plane_convergence). It returns the number of rules rewritten.
func (e *Engine) PeerDown(nh netip.Addr) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.down[nh] {
		return 0, nil
	}
	e.down[nh] = true
	e.Metrics.peerDown()
	return e.retargetAllLocked(nh)
}

// PeerUp marks nh recovered and restores every group whose tuple prefers
// nh over its current target.
func (e *Engine) PeerUp(nh netip.Addr) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.down[nh] {
		return 0, nil
	}
	delete(e.down, nh)
	e.Metrics.peerUp()
	return e.retargetAllLocked(nh)
}

// Resync re-pushes the rule of every allocated group at its best live
// next-hop, regardless of the cached target. It is the recovery path for
// switch-state loss (switch reboot, flow-table eviction, controller
// reconnect): the controller's group table is the source of truth and the
// switch is repopulated from it. It returns the number of rules pushed.
func (e *Engine) Resync() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.Metrics.resync()
	n := 0
	var firstErr error
	for _, g := range e.groups.All() {
		want, ok := e.bestLiveLocked(g)
		if !ok {
			continue // every next-hop down: nothing to restore
		}
		if err := e.pushLocked(g, want); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n++
	}
	return n, firstErr
}

// PeerIsDown reports the engine's view of nh.
func (e *Engine) PeerIsDown(nh netip.Addr) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.down[nh]
}

// retargetAllLocked re-evaluates every group containing nh.
func (e *Engine) retargetAllLocked(nh netip.Addr) (int, error) {
	n := 0
	var firstErr error
	for _, g := range e.groups.Containing(nh) {
		changed, err := e.retargetOneLocked(g)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if changed {
			n++
		}
	}
	return n, firstErr
}

// retargetOneLocked points g's rule at its best live next-hop if that
// differs from the current target.
func (e *Engine) retargetOneLocked(g Group) (bool, error) {
	want, ok := e.bestLiveLocked(g)
	if !ok {
		// Every next-hop in the tuple is down: leave the last rule in
		// place (traffic black-holes either way) and report no rewrite.
		return false, nil
	}
	if cur, has := e.targets[g.Key()]; has && cur == want.NH {
		return false, nil
	}
	if err := e.pushLocked(g, want); err != nil {
		return false, err
	}
	e.rewrites++
	e.Metrics.failureRewrite()
	return true, nil
}

func (e *Engine) pushLocked(g Group, target PeerPort) error {
	if err := e.pusher.PushGroupRule(g, target); err != nil {
		return err
	}
	e.Metrics.rulePush()
	e.targets[g.Key()] = target.NH
	return nil
}

// bestLiveLocked returns the peer port of the first next-hop in the
// group's tuple that is registered and not down.
func (e *Engine) bestLiveLocked(g Group) (PeerPort, bool) {
	for _, nh := range g.NHs {
		if e.down[nh] {
			continue
		}
		if pp, ok := e.peers[nh]; ok {
			return pp, true
		}
	}
	return PeerPort{}, false
}

// CurrentTarget reports the next-hop a group's rule points at.
func (e *Engine) CurrentTarget(g Group) (netip.Addr, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	nh, ok := e.targets[g.Key()]
	return nh, ok
}
