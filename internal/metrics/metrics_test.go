package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeSimple(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Fatalf("quartiles %v/%v, want 2/4", s.P25, s.P75)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v, want zero", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestPercentileBounds(t *testing.T) {
	s := []float64{10, 20, 30, 40}
	if Percentile(s, 0) != 10 || Percentile(s, 1) != 40 {
		t.Fatal("extreme quantiles must be min/max")
	}
	if got := Percentile(s, 0.5); got != 25 {
		t.Fatalf("median of 10..40 = %v, want 25 (interpolated)", got)
	}
}

// The HF-7 estimator hits order statistics exactly whenever the
// continuous rank q·(n−1) is an integer — no neighbour averaging at
// those points, and no extrapolation past the sample at the extremes.
func TestPercentileBoundaryExactness(t *testing.T) {
	s := []float64{10, 20, 30, 40, 50}
	for i, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := Percentile(s, q); got != s[i] {
			t.Errorf("Percentile(q=%v) = %v, want exact order statistic %v", q, got, s[i])
		}
	}
	// Single sample: every quantile is that sample.
	one := []float64{42}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got := Percentile(one, q); got != 42 {
			t.Errorf("Percentile([42], %v) = %v, want 42", q, got)
		}
	}
	// q just below 1 must stay within the sample even when rounding
	// pushes q·(n−1) against the top rank.
	under := math.Nextafter(1, 0)
	if got := Percentile(s, under); got < s[3] || got > s[4] {
		t.Errorf("Percentile(q=1-ulp) = %v, outside [%v, %v]", got, s[3], s[4])
	}
	// Two samples: q=0.5 is the midpoint, the simplest interpolation.
	if got := Percentile([]float64{1, 3}, 0.5); got != 2 {
		t.Errorf("Percentile([1 3], 0.5) = %v, want 2", got)
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty sample")
		}
	}()
	Percentile(nil, 0.5)
}

// Property: for any sample set, summary invariants hold:
// min ≤ p5 ≤ p25 ≤ median ≤ p75 ≤ p95 ≤ p99 ≤ max, and mean within [min,max].
func TestSummaryInvariantsQuick(t *testing.T) {
	f := func(raw []float64) bool {
		samples := raw[:0]
		for _, x := range raw {
			// Restrict to a physically plausible measurement range;
			// float64 extremes overflow any mean computation.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				samples = append(samples, x)
			}
		}
		if len(samples) == 0 {
			return true
		}
		s := Summarize(samples)
		ordered := sort.Float64sAreSorted([]float64{s.Min, s.P5, s.P25, s.Median, s.P75, s.P95, s.P99, s.Max})
		meanOK := s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
		return ordered && meanOK && s.N == len(samples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotonic in q.
func TestPercentileMonotonicQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64() * 100
		}
		sort.Float64s(s)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := Percentile(s, q)
			if v < prev-1e-9 {
				t.Fatalf("percentile not monotonic at q=%v: %v < %v", q, v, prev)
			}
			prev = v
		}
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("duration summary %+v", s)
	}
}

func TestSecondsFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{140.9, "140.9s"},
		{1.6, "1.60s"},
		{0.150, "150ms"},
		{0.000070, "70µs"},
		{0, "0"},
		{2e-9, "2ns"},
	}
	for _, c := range cases {
		if got := Seconds(c.in); got != c.want {
			t.Errorf("Seconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.002, 0.05, 0.5, 0.09} {
		h.Observe(v)
	}
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 2 || h.Overflow != 1 {
		t.Fatalf("counts %v overflow %d", h.Counts, h.Overflow)
	}
	if !strings.Contains(h.String(), "≤1ms") {
		t.Fatalf("histogram rendering missing bucket label:\n%s", h.String())
	}
}

func TestHistogramPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unsorted bounds")
		}
	}()
	NewHistogram(0.1, 0.01)
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Header: []string{"prefixes", "mode", "max"}}
	tbl.Add(1000, "standalone", "0.9s")
	tbl.Add(500000, "supercharged", "150ms")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "prefixes") {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.Contains(lines[3], "supercharged") || !strings.Contains(lines[3], "150ms") {
		t.Fatalf("row line %q", lines[3])
	}
	// Columns must be aligned: "mode" column starts at the same offset.
	idx := strings.Index(lines[0], "mode")
	if !strings.HasPrefix(lines[2][idx:], "standalone") {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}
