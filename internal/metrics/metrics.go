// Package metrics provides the summary statistics the paper's evaluation
// reports: box-plot five-number summaries (median, inter-quartile range,
// 5th/95th-percentile whiskers, maxima) over convergence-time samples, plus
// simple latency histograms and fixed-width table rendering for the
// experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
	"unicode/utf8"
)

// Summary is a box-plot style five-number summary (plus mean and count) of a
// sample set, mirroring Fig. 5's presentation: the box spans P25–P75, the
// line in the box is the median, whiskers reach P5 and P95, and the number
// printed on top is the maximum.
type Summary struct {
	N      int
	Min    float64
	P5     float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	P99    float64
	Max    float64
	Mean   float64
}

// Summarize computes a Summary of samples. It does not modify samples.
// Summarize of an empty slice returns the zero Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	// Incremental mean avoids overflow on extreme samples.
	var mean float64
	for i, x := range s {
		mean += (x - mean) / float64(i+1)
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		P5:     Percentile(s, 0.05),
		P25:    Percentile(s, 0.25),
		Median: Percentile(s, 0.50),
		P75:    Percentile(s, 0.75),
		P95:    Percentile(s, 0.95),
		P99:    Percentile(s, 0.99),
		Max:    s[len(s)-1],
		Mean:   mean,
	}
}

// SummarizeDurations converts durations to seconds and summarizes them.
func SummarizeDurations(ds []time.Duration) Summary {
	samples := make([]float64, len(ds))
	for i, d := range ds {
		samples[i] = d.Seconds()
	}
	return Summarize(samples)
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample. It panics if sorted is empty.
//
// The estimator is Hyndman & Fan type 7 (numpy's default, R's
// quantile(type=7)): the quantile sits at continuous rank h = q·(n−1)
// over the order statistics, linearly interpolated between the two
// closest ranks. Consequences worth knowing at the boundaries:
//
//   - q=0 and q=1 are exactly the sample min and max — the estimator
//     never extrapolates beyond the observed range.
//   - Whenever h lands on an integer rank (every quantile of the form
//     k/(n−1)), the result is exactly that order statistic, not an
//     average of neighbours; e.g. the median of an odd-length sample is
//     the middle element bit-for-bit.
//   - For n=1 every quantile is the single sample.
//
// The hi index is clamped as a defence against floating-point rounding
// pushing q·(n−1) past n−1 for q just below 1.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: Percentile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Seconds formats a duration expressed in seconds with a unit-appropriate
// precision, e.g. "140.9s", "150ms", "375ms", "70µs".
func Seconds(sec float64) string {
	switch {
	case sec >= 10:
		return fmt.Sprintf("%.1fs", sec)
	case sec >= 1:
		return fmt.Sprintf("%.2fs", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.0fms", sec*1e3)
	case sec >= 1e-6:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec <= 0:
		return "0"
	default:
		return fmt.Sprintf("%.0fns", sec*1e9)
	}
}

// Histogram is a fixed-bucket latency histogram. Buckets are upper bounds in
// seconds; samples above the last bound land in the overflow bucket.
type Histogram struct {
	Bounds   []float64
	Counts   []int
	Overflow int
	N        int
}

// NewHistogram returns a Histogram with the given ascending bucket bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be ascending")
	}
	return &Histogram{Bounds: bounds, Counts: make([]int, len(bounds))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.N++
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Overflow++
}

// String renders the histogram one bucket per line with counts.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, bound := range h.Bounds {
		fmt.Fprintf(&b, "≤%-8s %d\n", Seconds(bound), h.Counts[i])
	}
	fmt.Fprintf(&b, ">%-8s %d\n", Seconds(h.Bounds[len(h.Bounds)-1]), h.Overflow)
	return b.String()
}

// Table renders rows of strings as a fixed-width text table with a header,
// for harness output that is readable both on a terminal and in
// EXPERIMENTS.md code blocks.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; cells are formatted with fmt.Sprint.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as an aligned multi-line string. Column
// widths count runes, not bytes, so cells with multibyte characters
// (the spread columns' en-dashes) stay aligned.
func (t *Table) Render() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); i < len(width) && n > width[i] {
				width[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", width[i]-utf8.RuneCountInString(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
