package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x00, 0xff, 0x01, 0xaa, 0x02, 0xbb}
	if got := m.String(); got != "00:ff:01:aa:02:bb" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseMACRoundTrip(t *testing.T) {
	for _, s := range []string{"00:ff:01:aa:02:bb", "02:53:43:00:00:01", "ff:ff:ff:ff:ff:ff"} {
		m, err := ParseMAC(s)
		if err != nil {
			t.Fatalf("ParseMAC(%q): %v", s, err)
		}
		if m.String() != s {
			t.Fatalf("round trip %q -> %q", s, m.String())
		}
	}
}

func TestParseMACDashSeparator(t *testing.T) {
	m, err := ParseMAC("01-aa-00-00-00-01")
	if err != nil {
		t.Fatal(err)
	}
	if m != (MAC{0x01, 0xaa, 0, 0, 0, 0x01}) {
		t.Fatalf("got %v", m)
	}
}

func TestParseMACErrors(t *testing.T) {
	for _, s := range []string{"", "00:11:22:33:44", "00:11:22:33:44:5", "0g:11:22:33:44:55", "00.11:22:33:44:55", "00:11:22:33:44:55:66"} {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q) succeeded, want error", s)
		}
	}
}

func TestMACPredicates(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() || !BroadcastMAC.IsMulticast() {
		t.Fatal("broadcast predicates")
	}
	if !ZeroMAC.IsZero() {
		t.Fatal("zero predicate")
	}
	vmac := MAC{0x02, 0x53, 0x43, 0, 0, 1}
	if !vmac.IsLocal() || vmac.IsMulticast() {
		t.Fatal("VMAC must be locally administered unicast")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	var b Buffer
	payload := []byte("hello world")
	copy(b.Append(len(payload)), payload)
	in := Ethernet{Dst: MustParseMAC("01:aa:00:00:00:01"), Src: MustParseMAC("00:ff:00:00:00:02"), Type: EtherTypeIPv4}
	in.SerializeTo(&b)

	var out Ethernet
	if err := out.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if out.Dst != in.Dst || out.Src != in.Src || out.Type != in.Type {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Payload, payload) {
		t.Fatalf("payload %q", out.Payload)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	err := e.DecodeFromBytes(make([]byte, 13))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	in := ARP{
		Op:       ARPReply,
		SenderHW: MustParseMAC("02:53:43:00:00:01"),
		SenderIP: netip.MustParseAddr("10.1.1.1"),
		TargetHW: MustParseMAC("00:ff:00:00:00:09"),
		TargetIP: netip.MustParseAddr("203.0.113.7"),
	}
	var b Buffer
	if err := in.SerializeTo(&b); err != nil {
		t.Fatal(err)
	}
	var out ARP
	if err := out.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestARPRejectsNonEthernetIPv4(t *testing.T) {
	var b Buffer
	in := ARP{Op: ARPRequest, SenderIP: netip.MustParseAddr("10.0.0.1"), TargetIP: netip.MustParseAddr("10.0.0.2")}
	if err := in.SerializeTo(&b); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), b.Bytes()...)
	raw[0], raw[1] = 0, 6 // hardware type 6
	var out ARP
	if err := out.DecodeFromBytes(raw); !errors.Is(err, ErrBadField) {
		t.Fatalf("err = %v, want ErrBadField", err)
	}
	if err := out.DecodeFromBytes(raw[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestARPSerializeRejectsIPv6(t *testing.T) {
	var b Buffer
	in := ARP{Op: ARPRequest, SenderIP: netip.MustParseAddr("::1"), TargetIP: netip.MustParseAddr("10.0.0.2")}
	if err := in.SerializeTo(&b); !errors.Is(err, ErrBadField) {
		t.Fatalf("err = %v, want ErrBadField", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	var b Buffer
	payload := []byte{1, 2, 3, 4, 5}
	copy(b.Append(len(payload)), payload)
	in := IPv4{TOS: 0, ID: 0xbeef, TTL: 64, Protocol: ProtoUDP,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: netip.MustParseAddr("198.51.100.2")}
	if err := in.SerializeTo(&b); err != nil {
		t.Fatal(err)
	}
	var out IPv4
	if err := out.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if out.Src != in.Src || out.Dst != in.Dst || out.TTL != 64 || out.Protocol != ProtoUDP || out.ID != 0xbeef {
		t.Fatalf("header mismatch %+v", out)
	}
	if !bytes.Equal(out.Payload, payload) {
		t.Fatalf("payload %v", out.Payload)
	}
	if int(out.TotalLen) != IPv4HeaderLen+len(payload) {
		t.Fatalf("total len %d", out.TotalLen)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	var b Buffer
	in := IPv4{TTL: 1, Protocol: ProtoUDP, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}
	if err := in.SerializeTo(&b); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), b.Bytes()...)
	raw[8] ^= 0xff // flip TTL
	var out IPv4
	if err := out.DecodeFromBytes(raw); !errors.Is(err, ErrBadField) {
		t.Fatalf("corrupted header accepted: %v", err)
	}
}

func TestIPv4TrailingBytesIgnored(t *testing.T) {
	// Ethernet padding after TotalLen must not leak into Payload.
	var b Buffer
	copy(b.Append(3), []byte{9, 9, 9})
	in := IPv4{TTL: 64, Protocol: ProtoUDP, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}
	if err := in.SerializeTo(&b); err != nil {
		t.Fatal(err)
	}
	raw := append(append([]byte(nil), b.Bytes()...), make([]byte, 20)...) // pad
	var out IPv4
	if err := out.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 3 {
		t.Fatalf("payload len %d, want 3 (padding leaked)", len(out.Payload))
	}
}

func TestUDPRoundTrip(t *testing.T) {
	var b Buffer
	payload := []byte("seq=42")
	copy(b.Append(len(payload)), payload)
	in := UDP{SrcPort: 5000, DstPort: 9}
	if err := in.SerializeTo(&b); err != nil {
		t.Fatal(err)
	}
	var out UDP
	if err := out.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if out.SrcPort != 5000 || out.DstPort != 9 || !bytes.Equal(out.Payload, payload) {
		t.Fatalf("mismatch %+v", out)
	}
}

func TestUDPBadLength(t *testing.T) {
	raw := make([]byte, 8)
	raw[5] = 4 // length 4 < 8
	var out UDP
	if err := out.DecodeFromBytes(raw); !errors.Is(err, ErrBadField) {
		t.Fatalf("err = %v", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 = 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("checksum = %#x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length data is padded with a zero byte.
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Fatal("odd-length checksum")
	}
}

// Property: a frame built by UDPFrame always decodes back to the same
// 5-tuple and payload, and is at least MinFrameLen.
func TestUDPFrameRoundTripQuick(t *testing.T) {
	buf := NewBuffer()
	f := func(srcPort, dstPort uint16, a, b [4]byte, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		src, dst := netip.AddrFrom4(a), netip.AddrFrom4(b)
		frame, err := UDPFrame(buf, MAC{0, 1, 2, 3, 4, 5}, MAC{6, 7, 8, 9, 10, 11}, src, dst, srcPort, dstPort, payload)
		if err != nil {
			return false
		}
		if len(frame) < MinFrameLen {
			return false
		}
		var eth Ethernet
		var ip IPv4
		var udp UDP
		if eth.DecodeFromBytes(frame) != nil || eth.Type != EtherTypeIPv4 {
			return false
		}
		if ip.DecodeFromBytes(eth.Payload) != nil || ip.Src != src || ip.Dst != dst || ip.Protocol != ProtoUDP {
			return false
		}
		if udp.DecodeFromBytes(ip.Payload) != nil || udp.SrcPort != srcPort || udp.DstPort != dstPort {
			return false
		}
		return bytes.Equal(udp.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoders never panic on arbitrary input.
func TestDecodersNeverPanicQuick(t *testing.T) {
	f := func(data []byte) bool {
		var eth Ethernet
		var ip IPv4
		var udp UDP
		var arp ARP
		_ = eth.DecodeFromBytes(data)
		_ = ip.DecodeFromBytes(data)
		_ = udp.DecodeFromBytes(data)
		_ = arp.DecodeFromBytes(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestARPRequestReplyFlow(t *testing.T) {
	buf := NewBuffer()
	routerMAC := MustParseMAC("00:ff:00:00:00:01")
	routerIP := netip.MustParseAddr("203.0.113.254")
	vnh := netip.MustParseAddr("10.1.1.1")
	reqFrame, err := ARPRequestFrame(buf, routerMAC, routerIP, vnh)
	if err != nil {
		t.Fatal(err)
	}
	var eth Ethernet
	if err := eth.DecodeFromBytes(reqFrame); err != nil {
		t.Fatal(err)
	}
	if !eth.Dst.IsBroadcast() || eth.Type != EtherTypeARP {
		t.Fatalf("request frame header %+v", eth)
	}
	var req ARP
	if err := req.DecodeFromBytes(eth.Payload); err != nil {
		t.Fatal(err)
	}
	if req.Op != ARPRequest || req.TargetIP != vnh {
		t.Fatalf("request %+v", req)
	}

	vmac := MustParseMAC("02:53:43:00:00:01")
	buf2 := NewBuffer()
	repFrame, err := ARPReplyFrame(buf2, vmac, vnh, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := eth.DecodeFromBytes(repFrame); err != nil {
		t.Fatal(err)
	}
	if eth.Dst != routerMAC || eth.Src != vmac {
		t.Fatalf("reply frame header %+v", eth)
	}
	var rep ARP
	if err := rep.DecodeFromBytes(eth.Payload); err != nil {
		t.Fatal(err)
	}
	if rep.Op != ARPReply || rep.SenderHW != vmac || rep.SenderIP != vnh || rep.TargetHW != routerMAC || rep.TargetIP != routerIP {
		t.Fatalf("reply %+v", rep)
	}
}

func TestBufferGrowthAndReuse(t *testing.T) {
	var b Buffer
	// Force growth through both Prepend and Append.
	copy(b.Append(3000), bytes.Repeat([]byte{0xaa}, 3000))
	copy(b.Prepend(2000), bytes.Repeat([]byte{0xbb}, 2000))
	if b.Len() != 5000 {
		t.Fatalf("len %d", b.Len())
	}
	got := b.Bytes()
	if got[0] != 0xbb || got[1999] != 0xbb || got[2000] != 0xaa || got[4999] != 0xaa {
		t.Fatal("content corrupted by growth")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	copy(b.Prepend(4), []byte{1, 2, 3, 4})
	if !bytes.Equal(b.Bytes(), []byte{1, 2, 3, 4}) {
		t.Fatal("buffer unusable after reset")
	}
}

func TestBufferPrependZeroes(t *testing.T) {
	var b Buffer
	r := b.Prepend(8)
	for _, x := range r {
		if x != 0 {
			t.Fatal("prepend region not zeroed")
		}
	}
}

func BenchmarkUDPFrameBuild(b *testing.B) {
	buf := NewBuffer()
	src := netip.MustParseAddr("192.0.2.1")
	dst := netip.MustParseAddr("198.51.100.2")
	payload := []byte("0123456789")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UDPFrame(buf, MAC{0, 1}, MAC{2, 3}, src, dst, 5000, 9, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEthernetDecode(b *testing.B) {
	buf := NewBuffer()
	src := netip.MustParseAddr("192.0.2.1")
	dst := netip.MustParseAddr("198.51.100.2")
	frame, _ := UDPFrame(buf, MAC{0, 1}, MAC{2, 3}, src, dst, 5000, 9, []byte("x"))
	var eth Ethernet
	var ip IPv4
	var udp UDP
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if eth.DecodeFromBytes(frame) != nil || ip.DecodeFromBytes(eth.Payload) != nil || udp.DecodeFromBytes(ip.Payload) != nil {
			b.Fatal("decode failed")
		}
	}
}

func TestChecksumRandomizedSelfVerify(t *testing.T) {
	// Inserting the computed checksum into the pseudo-position yields 0 on
	// re-checksum — the property IPv4 decode relies on.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		h := make([]byte, 20)
		rng.Read(h)
		h[10], h[11] = 0, 0
		c := Checksum(h)
		h[10], h[11] = byte(c>>8), byte(c)
		if Checksum(h) != 0 {
			t.Fatalf("self-verify failed for %x", h)
		}
	}
}
