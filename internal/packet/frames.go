package packet

import "net/netip"

// MinFrameLen is the minimum Ethernet frame length (without FCS) that the
// paper's FPGA source emits: 64-byte UDP probe packets.
const MinFrameLen = 64

// UDPFrame builds a complete Ethernet/IPv4/UDP frame into buf and returns
// its bytes. The frame is padded to at least MinFrameLen. buf is Reset
// first, so one buffer can be reused across calls.
func UDPFrame(buf *Buffer, srcMAC, dstMAC MAC, src, dst netip.Addr, srcPort, dstPort uint16, payload []byte) ([]byte, error) {
	buf.Reset()
	copy(buf.Append(len(payload)), payload)
	udp := UDP{SrcPort: srcPort, DstPort: dstPort}
	if err := udp.SerializeTo(buf); err != nil {
		return nil, err
	}
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst}
	if err := ip.SerializeTo(buf); err != nil {
		return nil, err
	}
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4}
	eth.SerializeTo(buf)
	if n := buf.Len(); n < MinFrameLen {
		buf.Append(MinFrameLen - n)
	}
	return buf.Bytes(), nil
}

// ARPFrame builds a complete Ethernet/ARP frame into buf and returns its
// bytes, padded to MinFrameLen.
func ARPFrame(buf *Buffer, ethSrc, ethDst MAC, a ARP) ([]byte, error) {
	buf.Reset()
	if err := a.SerializeTo(buf); err != nil {
		return nil, err
	}
	eth := Ethernet{Dst: ethDst, Src: ethSrc, Type: EtherTypeARP}
	eth.SerializeTo(buf)
	if n := buf.Len(); n < MinFrameLen {
		buf.Append(MinFrameLen - n)
	}
	return buf.Bytes(), nil
}

// ARPRequestFrame builds a broadcast ARP who-has request.
func ARPRequestFrame(buf *Buffer, senderHW MAC, senderIP, targetIP netip.Addr) ([]byte, error) {
	return ARPFrame(buf, senderHW, BroadcastMAC, ARP{
		Op:       ARPRequest,
		SenderHW: senderHW,
		SenderIP: senderIP,
		TargetIP: targetIP,
	})
}

// ARPReplyFrame builds a unicast ARP reply answering req with the given
// hardware address.
func ARPReplyFrame(buf *Buffer, answerHW MAC, answerIP netip.Addr, req ARP) ([]byte, error) {
	return ARPFrame(buf, answerHW, req.SenderHW, ARP{
		Op:       ARPReply,
		SenderHW: answerHW,
		SenderIP: answerIP,
		TargetHW: req.SenderHW,
		TargetIP: req.SenderIP,
	})
}
