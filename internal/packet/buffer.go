package packet

// Buffer builds packets by prepending layers, mirroring gopacket's
// SerializeBuffer: serialize the innermost payload first, then each header
// outward (UDP, then IPv4, then Ethernet). Content occupies buf[start:end].
// Use NewBuffer, or Reset a zero value, before first use; Reset lets a
// sender reuse one Buffer across packets without reallocating.
type Buffer struct {
	buf   []byte
	start int
	end   int
}

// NewBuffer returns a Buffer pre-sized so that typical test-bed frames
// (64–1500 bytes) never reallocate.
func NewBuffer() *Buffer {
	const cap0 = 1600
	return &Buffer{buf: make([]byte, cap0), start: cap0, end: cap0}
}

// Prepend makes room for n bytes in front of the current content and
// returns that region for the caller to fill. The region is zeroed.
func (b *Buffer) Prepend(n int) []byte {
	b.init()
	if b.start < n {
		grown := make([]byte, len(b.buf)+n+512)
		offset := len(grown) - len(b.buf) // shift content right
		copy(grown[b.start+offset:b.end+offset], b.buf[b.start:b.end])
		b.start += offset
		b.end += offset
		b.buf = grown
	}
	b.start -= n
	region := b.buf[b.start : b.start+n]
	clear(region)
	return region
}

// Append adds n zeroed bytes after the current content and returns the
// region. It is used for payload padding (e.g. 64-byte minimum frames).
func (b *Buffer) Append(n int) []byte {
	b.init()
	if b.end+n > len(b.buf) {
		grown := make([]byte, len(b.buf)+n+512)
		copy(grown[b.start:b.end], b.buf[b.start:b.end])
		b.buf = grown
	}
	region := b.buf[b.end : b.end+n]
	clear(region)
	b.end += n
	return region
}

// Bytes returns the packet built so far. The slice aliases the Buffer and is
// invalidated by further Prepend/Append/Reset calls.
func (b *Buffer) Bytes() []byte {
	b.init()
	return b.buf[b.start:b.end]
}

// Len returns the current content length.
func (b *Buffer) Len() int {
	b.init()
	return b.end - b.start
}

// Reset discards the content, keeping the allocation.
func (b *Buffer) Reset() {
	if b.buf == nil {
		b.init()
		return
	}
	b.start = len(b.buf)
	b.end = len(b.buf)
}

func (b *Buffer) init() {
	if b.buf == nil {
		*b = *NewBuffer()
	}
}
