// Package packet implements the data-plane wire formats the supercharged
// router test-bed exchanges: Ethernet II frames, ARP, IPv4 and UDP. The
// design follows the gopacket idioms with stdlib-only code: decoding writes
// into caller-owned layer structs (no allocation on the hot path) and
// serialization prepends layers into a reusable buffer so a packet is built
// innermost-payload-first.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// MAC is a 48-bit IEEE 802 address. It is comparable and usable as a map
// key, which the switch flow table exploits for its dst-MAC fast path.
type MAC [6]byte

// Well-known addresses.
var (
	// BroadcastMAC is ff:ff:ff:ff:ff:ff.
	BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	// ZeroMAC is the unspecified address.
	ZeroMAC = MAC{}
)

// String renders the address in the usual aa:bb:cc:dd:ee:ff form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsZero reports whether m is the unspecified address.
func (m MAC) IsZero() bool { return m == ZeroMAC }

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsMulticast reports whether the group bit is set (includes broadcast).
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// IsLocal reports whether the locally-administered bit is set. The
// supercharger's virtual MACs are locally administered by construction.
func (m MAC) IsLocal() bool { return m[0]&0x02 != 0 }

// ParseMAC parses the aa:bb:cc:dd:ee:ff (or aa-bb-...) form.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("packet: bad MAC %q: length %d", s, len(s))
	}
	for i := 0; i < 6; i++ {
		hi, ok1 := hexVal(s[i*3])
		lo, ok2 := hexVal(s[i*3+1])
		if !ok1 || !ok2 {
			return MAC{}, fmt.Errorf("packet: bad MAC %q: invalid hex at byte %d", s, i)
		}
		m[i] = hi<<4 | lo
		if i < 5 && s[i*3+2] != ':' && s[i*3+2] != '-' {
			return MAC{}, fmt.Errorf("packet: bad MAC %q: missing separator", s)
		}
	}
	return m, nil
}

// MustParseMAC is ParseMAC that panics on error, for constants in tests and
// examples.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// EtherType values used by the test-bed.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// Common decode errors. Decoders wrap these so callers can match with
// errors.Is while still getting layer-specific context.
var (
	ErrTruncated = errors.New("packet: truncated")
	ErrBadField  = errors.New("packet: invalid field")
)

// Ethernet is an Ethernet II header. DecodeFromBytes fills the struct and
// retains Payload as a sub-slice of the input (zero copy); callers that keep
// the payload past the lifetime of the input buffer must copy it.
type Ethernet struct {
	Dst     MAC
	Src     MAC
	Type    uint16
	Payload []byte
}

// EthernetHeaderLen is the length of an Ethernet II header.
const EthernetHeaderLen = 14

// DecodeFromBytes parses an Ethernet II frame.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return fmt.Errorf("%w: ethernet header needs %d bytes, have %d", ErrTruncated, EthernetHeaderLen, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.Type = binary.BigEndian.Uint16(data[12:14])
	e.Payload = data[14:]
	return nil
}

// SerializeTo prepends the header to b; the current content of b is treated
// as the frame payload (e.Payload is ignored by SerializeTo).
func (e *Ethernet) SerializeTo(b *Buffer) {
	h := b.Prepend(EthernetHeaderLen)
	copy(h[0:6], e.Dst[:])
	copy(h[6:12], e.Src[:])
	binary.BigEndian.PutUint16(h[12:14], e.Type)
}

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an IPv4-over-Ethernet ARP packet (fixed 28-byte body).
type ARP struct {
	Op       uint16
	SenderHW MAC
	SenderIP netip.Addr
	TargetHW MAC
	TargetIP netip.Addr
}

// ARPLen is the length of an IPv4-over-Ethernet ARP body.
const ARPLen = 28

// DecodeFromBytes parses an ARP body (the Ethernet payload).
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < ARPLen {
		return fmt.Errorf("%w: arp needs %d bytes, have %d", ErrTruncated, ARPLen, len(data))
	}
	if htype := binary.BigEndian.Uint16(data[0:2]); htype != 1 {
		return fmt.Errorf("%w: arp hardware type %d, want 1 (ethernet)", ErrBadField, htype)
	}
	if ptype := binary.BigEndian.Uint16(data[2:4]); ptype != EtherTypeIPv4 {
		return fmt.Errorf("%w: arp protocol type %#x, want IPv4", ErrBadField, ptype)
	}
	if data[4] != 6 || data[5] != 4 {
		return fmt.Errorf("%w: arp hlen/plen %d/%d, want 6/4", ErrBadField, data[4], data[5])
	}
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderHW[:], data[8:14])
	a.SenderIP = addrFrom4(data[14:18])
	copy(a.TargetHW[:], data[18:24])
	a.TargetIP = addrFrom4(data[24:28])
	return nil
}

// SerializeTo prepends the ARP body to b.
func (a *ARP) SerializeTo(b *Buffer) error {
	if !a.SenderIP.Is4() || !a.TargetIP.Is4() {
		return fmt.Errorf("%w: arp requires IPv4 sender/target", ErrBadField)
	}
	sip := a.SenderIP.As4()
	tip := a.TargetIP.As4()
	h := b.Prepend(ARPLen)
	binary.BigEndian.PutUint16(h[0:2], 1)
	binary.BigEndian.PutUint16(h[2:4], EtherTypeIPv4)
	h[4], h[5] = 6, 4
	binary.BigEndian.PutUint16(h[6:8], a.Op)
	copy(h[8:14], a.SenderHW[:])
	copy(h[14:18], sip[:])
	copy(h[18:24], a.TargetHW[:])
	copy(h[24:28], tip[:])
	return nil
}

// IP protocol numbers used by the test-bed.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// IPv4 is an IPv4 header without options (IHL=5); options in received
// packets are accepted and skipped.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16 // as decoded; recomputed on serialize
	Src      netip.Addr
	Dst      netip.Addr
	Payload  []byte
}

// IPv4HeaderLen is the length of an option-less IPv4 header.
const IPv4HeaderLen = 20

// DecodeFromBytes parses an IPv4 header and verifies its checksum.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return fmt.Errorf("%w: ipv4 header needs %d bytes, have %d", ErrTruncated, IPv4HeaderLen, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("%w: ip version %d, want 4", ErrBadField, v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return fmt.Errorf("%w: ihl %d below minimum", ErrBadField, ihl)
	}
	if len(data) < ihl {
		return fmt.Errorf("%w: ipv4 options truncated", ErrTruncated)
	}
	if Checksum(data[:ihl]) != 0 {
		return fmt.Errorf("%w: ipv4 header checksum", ErrBadField)
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = addrFrom4(data[12:16])
	ip.Dst = addrFrom4(data[16:20])
	if int(ip.TotalLen) < ihl {
		return fmt.Errorf("%w: total length %d below header length %d", ErrBadField, ip.TotalLen, ihl)
	}
	end := int(ip.TotalLen)
	if end > len(data) {
		return fmt.Errorf("%w: ipv4 payload truncated (total %d, have %d)", ErrTruncated, end, len(data))
	}
	ip.Payload = data[ihl:end]
	return nil
}

// SerializeTo prepends the header to b, computing TotalLen over the current
// buffer content and the header checksum.
func (ip *IPv4) SerializeTo(b *Buffer) error {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return fmt.Errorf("%w: ipv4 requires 4-byte addresses", ErrBadField)
	}
	payloadLen := b.Len()
	h := b.Prepend(IPv4HeaderLen)
	h[0] = 4<<4 | 5
	h[1] = ip.TOS
	total := IPv4HeaderLen + payloadLen
	if total > 0xffff {
		return fmt.Errorf("%w: ipv4 packet too large (%d)", ErrBadField, total)
	}
	ip.TotalLen = uint16(total)
	binary.BigEndian.PutUint16(h[2:4], ip.TotalLen)
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	binary.BigEndian.PutUint16(h[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	h[8] = ip.TTL
	h[9] = ip.Protocol
	h[10], h[11] = 0, 0
	src, dst := ip.Src.As4(), ip.Dst.As4()
	copy(h[12:16], src[:])
	copy(h[16:20], dst[:])
	ip.Checksum = Checksum(h)
	binary.BigEndian.PutUint16(h[10:12], ip.Checksum)
	return nil
}

// UDP is a UDP header. Checksum handling is optional (0 = not computed), as
// permitted for UDP over IPv4; the traffic generator relies on sequence
// numbers in the payload rather than UDP checksums.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
	Payload  []byte
}

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// DecodeFromBytes parses a UDP datagram (the IPv4 payload).
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return fmt.Errorf("%w: udp header needs %d bytes, have %d", ErrTruncated, UDPHeaderLen, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(data) {
		return fmt.Errorf("%w: udp length %d outside [8,%d]", ErrBadField, u.Length, len(data))
	}
	u.Payload = data[UDPHeaderLen:u.Length]
	return nil
}

// SerializeTo prepends the header to b, setting Length from the current
// buffer content. The checksum is left zero (legal for UDP/IPv4).
func (u *UDP) SerializeTo(b *Buffer) error {
	payloadLen := b.Len()
	h := b.Prepend(UDPHeaderLen)
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	total := UDPHeaderLen + payloadLen
	if total > 0xffff {
		return fmt.Errorf("%w: udp datagram too large (%d)", ErrBadField, total)
	}
	u.Length = uint16(total)
	binary.BigEndian.PutUint16(h[4:6], u.Length)
	binary.BigEndian.PutUint16(h[6:8], u.Checksum)
	return nil
}

// Checksum computes the RFC 1071 Internet checksum of data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func addrFrom4(b []byte) netip.Addr {
	return netip.AddrFrom4([4]byte{b[0], b[1], b[2], b[3]})
}
