package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"supercharged/internal/results"
	"supercharged/internal/scenario"
	"supercharged/internal/sim"
)

// Options parameterizes a sweep execution.
type Options struct {
	// Workers bounds the worker pool (<= 0: GOMAXPROCS). Each unit is an
	// independent virtual-clock lab, so the worker count affects only
	// wall-clock time, never results.
	Workers int
	// Progress, if set, receives one line per completed unit (with its
	// host wall-clock cost and cache status) plus a sweep summary line.
	Progress io.Writer
	// Store, if set, caches per-unit reports content-addressed by
	// (scenario spec, mode, size, flows, seed, Version): units whose key
	// is already present are served from disk instead of re-run, which is
	// what makes an unchanged re-sweep near-free. The aggregate is
	// byte-identical with or without the store — a cache hit returns the
	// exact bytes the run would have produced.
	Store *results.Store
	// Version is the code-relevant component of cache keys (default
	// sim.ModelVersion). Bumping it invalidates every cached unit.
	Version string
	// Budget caps the sweep's host wall-clock time (0 = none): when it
	// expires, in-flight simulations stop at their next event and every
	// remaining unit fails with the deadline error.
	Budget time.Duration
	// OnResult, if set, observes every unit result from the collection
	// goroutine (serially, in completion order) — wall-clock accounting
	// for the bench harness without disturbing the aggregate.
	OnResult func(UnitResult)
	// Runner replaces the scenario-backed unit runner; nil uses
	// scenario.RunOne. Tests inject failures and delays here. The store,
	// when set, wraps whichever runner is in effect.
	Runner func(context.Context, Unit) (scenario.RunReport, error)
}

// UnitResult is one completed unit, streamed as workers finish.
type UnitResult struct {
	// Index is the unit's position in the expanded order; the aggregate
	// reassembles the deterministic ordering from it.
	Index int
	Unit  Unit
	// Run holds the measurements on success; Err the failure otherwise.
	// A failed unit still reaches the aggregate (as a Failure row).
	Run *scenario.RunReport
	Err error
	// Cached marks a result served from the store instead of executed.
	Cached bool
	// Wall is the unit's host wall-clock cost (not the virtual lab time).
	// It is progress/bench telemetry only and never enters the aggregate,
	// which must be byte-reproducible.
	Wall time.Duration
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) version() string {
	if o.Version != "" {
		return o.Version
	}
	return sim.ModelVersion
}

func (o Options) runner() func(context.Context, Unit) (scenario.RunReport, error) {
	if o.Runner != nil {
		return o.Runner
	}
	return func(ctx context.Context, u Unit) (scenario.RunReport, error) {
		return scenario.RunOne(ctx, u.spec, u.Mode, u.Prefixes, u.Flows, u.Seed)
	}
}

// key computes the unit's store address.
func (o Options) key(u Unit) (results.Key, error) {
	return results.KeyFor(results.KeyInput{
		Spec:     u.spec,
		Mode:     u.ModeName,
		Prefixes: u.Prefixes,
		Flows:    u.Flows,
		Seed:     u.Seed,
		Version:  o.version(),
	})
}

// runUnit resolves one unit: store hit, or a real run followed by a
// best-effort store write. A failed store write is not a unit failure —
// the measurement is still good, the cache just misses next time.
func runUnit(ctx context.Context, u Unit, opts Options, run func(context.Context, Unit) (scenario.RunReport, error)) (res UnitResult) {
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	var key results.Key
	if opts.Store != nil {
		k, err := opts.key(u)
		if err == nil {
			key = k
			if rep, ok := opts.Store.Get(key); ok {
				res.Run, res.Cached = rep, true
				return res
			}
		}
	}
	rep, err := run(ctx, u)
	if err != nil {
		res.Err = err
		return res
	}
	res.Run = &rep
	if opts.Store != nil && key != "" {
		opts.Store.Put(key, rep)
	}
	return res
}

// Stream executes the units across the bounded worker pool and returns a
// channel delivering each unit's result as it completes (completion
// order, not expansion order). The channel closes once every unit has
// been delivered — partial failures included, so len(units) results
// always arrive. Cancelling the context stops in-flight simulations at
// their next event; units not yet started complete immediately with the
// context's error, so the contract of one result per unit holds even on
// a cancelled sweep.
func Stream(ctx context.Context, units []Unit, opts Options) <-chan UnitResult {
	workers := opts.workers()
	if workers > len(units) {
		workers = len(units)
	}
	run := opts.runner()

	jobs := make(chan int)
	out := make(chan UnitResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				res := runUnit(ctx, units[i], opts, run)
				res.Index, res.Unit = i, units[i]
				res.Wall = time.Since(t0)
				out <- res
			}
		}()
	}
	go func() {
		for i := range units {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	return out
}

// Run expands the spec, executes every unit across the worker pool while
// streaming progress, and aggregates the results in deterministic unit
// order. Unit failures do not abort the sweep: they surface as Failure
// rows of the aggregate. Cancellation (the caller's context, or the
// Options.Budget deadline) still returns the partial aggregate —
// cancelled units appear as failures — alongside the context's error, so
// callers can render what completed and still exit non-zero.
func Run(ctx context.Context, spec Spec, opts Options) (*Aggregate, error) {
	units, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}
	t0 := time.Now()
	collected := make([]UnitResult, len(units))
	done, cached := 0, 0
	interrupted := false
	for res := range Stream(ctx, units, opts) {
		collected[res.Index] = res
		done++
		if res.Cached {
			cached++
		}
		if res.Err != nil && (errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded)) {
			interrupted = true
		}
		if opts.OnResult != nil {
			opts.OnResult(res)
		}
		if opts.Progress != nil {
			status := "ok"
			if res.Cached {
				status = "ok (cached)"
			}
			if res.Err != nil {
				status = "FAIL: " + res.Err.Error()
			}
			fmt.Fprintf(opts.Progress, "[%*d/%d] %-52s %s (%v)\n",
				digits(len(units)), done, len(units), res.Unit.Key(), status, res.Wall.Round(time.Millisecond))
		}
	}
	agg := aggregate(spec, units, collected)
	if opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "sweep: %d units (%d cached), %d failed, %d workers, %v wall\n",
			len(units), cached, agg.Failed, opts.workers(), time.Since(t0).Round(time.Millisecond))
	}
	// Only a sweep that actually lost units to cancellation is
	// interrupted; a budget that expires after the last unit completed
	// took nothing, so it is not an error.
	if err := ctx.Err(); err != nil && interrupted {
		return agg, fmt.Errorf("sweep: interrupted: %w", err)
	}
	return agg, nil
}

func digits(n int) int { return len(fmt.Sprint(n)) }
