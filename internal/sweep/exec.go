package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"supercharged/internal/scenario"
)

// Options parameterizes a sweep execution.
type Options struct {
	// Workers bounds the worker pool (<= 0: GOMAXPROCS). Each unit is an
	// independent virtual-clock lab, so the worker count affects only
	// wall-clock time, never results.
	Workers int
	// Progress, if set, receives one line per completed unit (with its
	// host wall-clock cost) plus a sweep summary line.
	Progress io.Writer
	// Runner replaces the scenario-backed unit runner; nil uses
	// scenario.RunOne. Tests inject failures and delays here.
	Runner func(Unit) (scenario.RunReport, error)
}

// UnitResult is one completed unit, streamed as workers finish.
type UnitResult struct {
	// Index is the unit's position in the expanded order; the aggregate
	// reassembles the deterministic ordering from it.
	Index int
	Unit  Unit
	// Run holds the measurements on success; Err the failure otherwise.
	// A failed unit still reaches the aggregate (as a Failure row).
	Run *scenario.RunReport
	Err error
	// Wall is the unit's host wall-clock cost (not the virtual lab time).
	// It is progress telemetry only and never enters the aggregate, which
	// must be byte-reproducible.
	Wall time.Duration
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) runner() func(Unit) (scenario.RunReport, error) {
	if o.Runner != nil {
		return o.Runner
	}
	return func(u Unit) (scenario.RunReport, error) {
		return scenario.RunOne(u.spec, u.Mode, u.Prefixes, u.Flows, u.Seed)
	}
}

// Stream executes the units across the bounded worker pool and returns a
// channel delivering each unit's result as it completes (completion
// order, not expansion order). The channel closes once every unit has
// been delivered — partial failures included, so len(units) results
// always arrive.
func Stream(units []Unit, opts Options) <-chan UnitResult {
	workers := opts.workers()
	if workers > len(units) {
		workers = len(units)
	}
	run := opts.runner()

	jobs := make(chan int)
	out := make(chan UnitResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				u := units[i]
				t0 := time.Now()
				rep, err := run(u)
				res := UnitResult{Index: i, Unit: u, Err: err, Wall: time.Since(t0)}
				if err == nil {
					res.Run = &rep
				}
				out <- res
			}
		}()
	}
	go func() {
		for i := range units {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	return out
}

// Run expands the spec, executes every unit across the worker pool while
// streaming progress, and aggregates the results in deterministic unit
// order. Unit failures do not abort the sweep: they surface as Failure
// rows of the aggregate. Run itself only errors on an unexpandable spec.
func Run(spec Spec, opts Options) (*Aggregate, error) {
	units, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	results := make([]UnitResult, len(units))
	done := 0
	for res := range Stream(units, opts) {
		results[res.Index] = res
		done++
		if opts.Progress != nil {
			status := "ok"
			if res.Err != nil {
				status = "FAIL: " + res.Err.Error()
			}
			fmt.Fprintf(opts.Progress, "[%*d/%d] %-52s %s (%v)\n",
				digits(len(units)), done, len(units), res.Unit.Key(), status, res.Wall.Round(time.Millisecond))
		}
	}
	agg := aggregate(spec, units, results)
	if opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "sweep: %d units, %d failed, %d workers, %v wall\n",
			len(units), agg.Failed, opts.workers(), time.Since(t0).Round(time.Millisecond))
	}
	return agg, nil
}

func digits(n int) int { return len(fmt.Sprint(n)) }
