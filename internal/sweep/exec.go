package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"supercharged/internal/results"
	"supercharged/internal/scenario"
	"supercharged/internal/sim"
	"supercharged/internal/telemetry"
)

// Options parameterizes a sweep execution.
type Options struct {
	// Workers bounds the worker pool (<= 0: GOMAXPROCS). Each unit is an
	// independent virtual-clock lab, so the worker count affects only
	// wall-clock time, never results.
	Workers int
	// Progress, if set, receives one line per completed unit (with its
	// host wall-clock cost and cache status) plus a sweep summary line.
	Progress io.Writer
	// Store, if set, caches per-unit reports content-addressed by
	// (scenario spec, mode, size, flows, seed, Version): units whose key
	// is already present are served from disk instead of re-run, which is
	// what makes an unchanged re-sweep near-free. The aggregate is
	// byte-identical with or without the store — a cache hit returns the
	// exact bytes the run would have produced.
	Store *results.Store
	// Version is the code-relevant component of cache keys (default
	// sim.ModelVersion). Bumping it invalidates every cached unit.
	Version string
	// Budget caps the sweep's host wall-clock time (0 = none): when it
	// expires, in-flight simulations stop at their next event and every
	// remaining unit fails with the deadline error.
	Budget time.Duration
	// OnResult, if set, observes every unit result from the collection
	// goroutine (serially, in completion order) — wall-clock accounting
	// for the bench harness without disturbing the aggregate.
	OnResult func(UnitResult)
	// Runner replaces the scenario-backed unit runner; nil uses
	// scenario.RunOne. Tests inject failures and delays here. The store,
	// when set, wraps whichever runner is in effect.
	Runner func(context.Context, Unit) (scenario.RunReport, error)
	// Telemetry, if set, registers the sweep's metric series (unit
	// outcomes, store hits/misses, per-unit wall and virtual time) and
	// attaches the registry to every executed unit's simulation.
	Telemetry *telemetry.Registry
	// Runs, if set, tracks units through their lifecycle for the live
	// /runs status page.
	Runs *telemetry.RunTracker
	// TraceDir, if set, writes each executed (non-cached) unit's
	// virtual-time trace into the directory as <key>.trace.jsonl plus the
	// Perfetto-openable <key>.trace.json. Cache hits skip simulation
	// entirely, so they produce no trace.
	TraceDir string
}

// UnitResult is one completed unit, streamed as workers finish.
type UnitResult struct {
	// Index is the unit's position in the expanded order; the aggregate
	// reassembles the deterministic ordering from it.
	Index int
	Unit  Unit
	// Run holds the measurements on success; Err the failure otherwise.
	// A failed unit still reaches the aggregate (as a Failure row).
	Run *scenario.RunReport
	Err error
	// Cached marks a result served from the store instead of executed.
	Cached bool
	// Wall is the unit's host wall-clock cost (not the virtual lab time).
	// It is progress/bench telemetry only and never enters the aggregate,
	// which must be byte-reproducible.
	Wall time.Duration
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) version() string {
	if o.Version != "" {
		return o.Version
	}
	return sim.ModelVersion
}

func (o Options) runner() func(context.Context, Unit) (scenario.RunReport, error) {
	if o.Runner != nil {
		return o.Runner
	}
	return func(ctx context.Context, u Unit) (scenario.RunReport, error) {
		r := scenario.Runner{Telemetry: o.Telemetry}
		if o.TraceDir != "" {
			r.Trace = telemetry.NewTrace()
		}
		rep, err := r.RunUnit(ctx, u.spec, u.Mode, u.Prefixes, u.Flows, u.Seed)
		if err == nil && r.Trace != nil {
			if werr := writeUnitTrace(o.TraceDir, u, r.Trace); werr != nil {
				// Trace export is best-effort telemetry: the unit's
				// measurement stands even when the disk write fails.
				fmt.Fprintf(os.Stderr, "sweep: trace for %s: %v\n", u.Key(), werr)
			}
		}
		return rep, err
	}
}

// writeUnitTrace exports one unit's trace as JSONL plus Chrome
// trace-event JSON under dir, with the unit key's path separators
// flattened into a filename.
func writeUnitTrace(dir string, u Unit, tr *telemetry.Trace) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, strings.ReplaceAll(u.Key(), "/", "_"))
	jf, err := os.Create(base + ".trace.jsonl")
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	cf, err := os.Create(base + ".trace.json")
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(cf); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}

// key computes the unit's store address.
func (o Options) key(u Unit) (results.Key, error) {
	return results.KeyFor(results.KeyInput{
		Spec:     u.spec,
		Mode:     u.ModeName,
		Prefixes: u.Prefixes,
		Flows:    u.Flows,
		Seed:     u.Seed,
		Version:  o.version(),
	})
}

// sweepMetrics is the executor's registry-backed instrument bundle; nil
// (no Options.Telemetry) disables every hook.
type sweepMetrics struct {
	storeHits   *telemetry.Counter
	storeMisses *telemetry.Counter
	unitsOK     *telemetry.Counter
	unitsFailed *telemetry.Counter
	unitsCached *telemetry.Counter
	unitWall    *telemetry.Histogram
	unitVirtual *telemetry.Histogram
}

// metrics registers the sweep series on the options' registry (nil
// registry returns the disabled bundle). Registration is idempotent, so
// repeated sweeps over one registry share the same series.
func (o Options) metrics() *sweepMetrics {
	reg := o.Telemetry
	if reg == nil {
		return nil
	}
	return &sweepMetrics{
		storeHits: reg.Counter("supercharged_sweep_store_hits_total",
			"Units served from the content-addressed result store."),
		storeMisses: reg.Counter("supercharged_sweep_store_misses_total",
			"Units not found in the result store (executed for real)."),
		unitsOK: reg.Counter("supercharged_sweep_units_ok_total",
			"Units that completed successfully (executed, not cached)."),
		unitsFailed: reg.Counter("supercharged_sweep_units_failed_total",
			"Units that failed (including cancellation)."),
		unitsCached: reg.Counter("supercharged_sweep_units_cached_total",
			"Units resolved from the result store."),
		unitWall: reg.Histogram("supercharged_sweep_unit_wall_seconds",
			"Host wall-clock cost per unit.", nil),
		unitVirtual: reg.Histogram("supercharged_sweep_unit_virtual_seconds",
			"Virtual lab time per unit (the report's elapsed).", nil),
	}
}

func (m *sweepMetrics) storeLookup(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.storeHits.Inc()
	} else {
		m.storeMisses.Inc()
	}
}

// unitDone classifies one finished unit and observes its costs.
func (m *sweepMetrics) unitDone(res UnitResult) {
	if m == nil {
		return
	}
	switch {
	case res.Err != nil:
		m.unitsFailed.Inc()
	case res.Cached:
		m.unitsCached.Inc()
	default:
		m.unitsOK.Inc()
	}
	m.unitWall.ObserveDuration(res.Wall)
	if res.Run != nil && !res.Cached {
		m.unitVirtual.Observe(res.Run.ElapsedMS / 1e3)
	}
}

// runUnit resolves one unit: store hit, or a real run followed by a
// best-effort store write. A failed store write is not a unit failure —
// the measurement is still good, the cache just misses next time.
func runUnit(ctx context.Context, u Unit, opts Options, m *sweepMetrics, run func(context.Context, Unit) (scenario.RunReport, error)) (res UnitResult) {
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	var key results.Key
	if opts.Store != nil {
		k, err := opts.key(u)
		if err == nil {
			key = k
			rep, ok := opts.Store.Get(key)
			m.storeLookup(ok)
			if ok {
				res.Run, res.Cached = rep, true
				return res
			}
		}
	}
	rep, err := run(ctx, u)
	if err != nil {
		res.Err = err
		return res
	}
	res.Run = &rep
	if opts.Store != nil && key != "" {
		opts.Store.Put(key, rep)
	}
	return res
}

// Stream executes the units across the bounded worker pool and returns a
// channel delivering each unit's result as it completes (completion
// order, not expansion order). The channel closes once every unit has
// been delivered — partial failures included, so len(units) results
// always arrive. Cancelling the context stops in-flight simulations at
// their next event; units not yet started complete immediately with the
// context's error, so the contract of one result per unit holds even on
// a cancelled sweep.
func Stream(ctx context.Context, units []Unit, opts Options) <-chan UnitResult {
	workers := opts.workers()
	if workers > len(units) {
		workers = len(units)
	}
	run := opts.runner()
	m := opts.metrics()
	opts.Runs.SetTotal(len(units))

	jobs := make(chan int)
	out := make(chan UnitResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				key := units[i].Key()
				opts.Runs.Start(key)
				t0 := time.Now()
				res := runUnit(ctx, units[i], opts, m, run)
				res.Index, res.Unit = i, units[i]
				res.Wall = time.Since(t0)
				opts.Runs.Finish(key, res.Wall, res.Cached, res.Err)
				m.unitDone(res)
				out <- res
			}
		}()
	}
	go func() {
		for i := range units {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	return out
}

// Run expands the spec, executes every unit across the worker pool while
// streaming progress, and aggregates the results in deterministic unit
// order. Unit failures do not abort the sweep: they surface as Failure
// rows of the aggregate. Cancellation (the caller's context, or the
// Options.Budget deadline) still returns the partial aggregate —
// cancelled units appear as failures — alongside the context's error, so
// callers can render what completed and still exit non-zero.
func Run(ctx context.Context, spec Spec, opts Options) (*Aggregate, error) {
	units, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}
	if opts.Progress != nil {
		// One serialized writer for every progress line: the collection
		// loop below is single-goroutine, but worker-side warnings (trace
		// export) and a live status server can interleave on the same fd.
		opts.Progress = telemetry.NewSyncWriter(opts.Progress)
	}
	t0 := time.Now()
	collected := make([]UnitResult, len(units))
	done, cached := 0, 0
	interrupted := false
	for res := range Stream(ctx, units, opts) {
		collected[res.Index] = res
		done++
		if res.Cached {
			cached++
		}
		if res.Err != nil && (errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded)) {
			interrupted = true
		}
		if opts.OnResult != nil {
			opts.OnResult(res)
		}
		if opts.Progress != nil {
			status := "ok"
			if res.Cached {
				status = "ok (cached)"
			}
			if res.Err != nil {
				status = "FAIL: " + res.Err.Error()
			}
			fmt.Fprintf(opts.Progress, "[%*d/%d] %-52s %s (%v)\n",
				digits(len(units)), done, len(units), res.Unit.Key(), status, res.Wall.Round(time.Millisecond))
		}
	}
	agg := aggregate(spec, units, collected)
	if opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "sweep: %d units (%d cached), %d failed, %d workers, %v wall\n",
			len(units), cached, agg.Failed, opts.workers(), time.Since(t0).Round(time.Millisecond))
	}
	// Only a sweep that actually lost units to cancellation is
	// interrupted; a budget that expires after the last unit completed
	// took nothing, so it is not an error.
	if err := ctx.Err(); err != nil && interrupted {
		return agg, fmt.Errorf("sweep: interrupted: %w", err)
	}
	return agg, nil
}

func digits(n int) int { return len(fmt.Sprint(n)) }
