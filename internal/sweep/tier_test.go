package sweep

import (
	"testing"

	"supercharged/internal/scenario"
)

// TestExpandTier resolves a named size tier into the cross product.
func TestExpandTier(t *testing.T) {
	units, err := Expand(Spec{Scenarios: []string{"paper-fig5"}, Tier: "xl"})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := scenario.TierSizes("xl")
	sizes := map[int]bool{}
	for _, u := range units {
		sizes[u.Prefixes] = true
	}
	if len(sizes) != len(want) {
		t.Fatalf("tier expanded to sizes %v, want %v", sizes, want)
	}
	for _, n := range want {
		if !sizes[n] {
			t.Fatalf("tier xl missing size %d (got %v)", n, sizes)
		}
	}
	if _, err := Expand(Spec{Tier: "nope"}); err == nil {
		t.Fatal("unknown tier accepted")
	}
	if _, err := Expand(Spec{Tier: "xl", Sizes: []int{1000}}); err == nil {
		t.Fatal("Tier+Sizes accepted")
	}
}

// TestExpandMaxSeeds asserts a seed-capped scenario runs only the first
// MaxSeeds seeds while uncapped scenarios keep the full axis.
func TestExpandMaxSeeds(t *testing.T) {
	spec := Spec{
		Scenarios: []string{"paper-fig5", "paper-fig5-xl"},
		Sizes:     []int{2000},
		Seeds:     []int64{1, 2, 3},
	}
	units, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	seedsOf := map[string]map[int64]bool{}
	for _, u := range units {
		if seedsOf[u.Scenario] == nil {
			seedsOf[u.Scenario] = map[int64]bool{}
		}
		seedsOf[u.Scenario][u.Seed] = true
	}
	if got := len(seedsOf["paper-fig5"]); got != 3 {
		t.Fatalf("uncapped scenario ran %d seeds, want 3", got)
	}
	if got := len(seedsOf["paper-fig5-xl"]); got != 1 {
		t.Fatalf("capped scenario ran %d seeds, want 1 (MaxSeeds)", got)
	}
	if !seedsOf["paper-fig5-xl"][1] {
		t.Fatal("capped scenario must keep the FIRST seed of the axis")
	}
}

// TestXLBuiltinShape pins the xl builtin's contract: the tier sizes and
// the seed cap the CI budget depends on.
func TestXLBuiltinShape(t *testing.T) {
	sc, ok := scenario.Lookup("paper-fig5-xl")
	if !ok {
		t.Fatal("paper-fig5-xl not registered")
	}
	if sc.MaxSeeds != 1 {
		t.Fatalf("paper-fig5-xl MaxSeeds %d, want 1", sc.MaxSeeds)
	}
	want, _ := scenario.TierSizes("xl")
	got := sc.Sizes(0)
	if len(got) != len(want) {
		t.Fatalf("paper-fig5-xl sizes %v, want tier xl %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paper-fig5-xl sizes %v, want tier xl %v", got, want)
		}
	}
	if got[len(got)-1] != 1_000_000 {
		t.Fatalf("xl tier must top out at 1M prefixes, got %v", got)
	}
}
