// Package sweep is the parallel sweep executor over the scenario engine:
// it expands a sweep Spec (scenario names × router modes × table sizes ×
// seeds) into independent run units, executes them across a bounded
// worker pool, streams per-unit results over a channel as they complete,
// and aggregates everything into a cross-scenario comparison report with
// per-event standalone-vs-supercharged speedup ratios.
//
// The paper's headline result is a comparison curve — convergence time
// against table size for a vanilla router versus the same router behind
// the supercharger — and such a curve is only as good as the sweep that
// produced it. This package turns the one-at-a-time scenario executor
// into that sweep: every (scenario, mode, size, seed) combination is an
// independent discrete-event lab on its own virtual clock, so units
// parallelize perfectly and the worker count changes only wall-clock
// time, never results. A failed unit is reported in the aggregate, not
// dropped, and the final ordering is deterministic (by unit key) no
// matter which worker finished first.
//
// Three properties make the sweep cheap enough to run statistically
// (many seeds) on every push:
//
//   - Multi-seed statistics: comparison cells aggregate across seeds
//     into distributions (min/median/mean/p90/max and IQR — the paper's
//     Fig. 5 box plots in table form) instead of single-seed points.
//   - Incremental re-sweeps: with Options.Store attached
//     (internal/results), each unit's result is cached content-addressed
//     by (scenario spec, mode, size, flows, seed, sim.ModelVersion); an
//     unchanged unit is served from disk, so a re-sweep only executes
//     what a code or spec change invalidated.
//   - Cancellation and budgets: Run and Stream take a context and
//     Options.Budget caps wall-clock; a cancelled sweep stops in-flight
//     labs between simulator events and returns the partial aggregate
//     with the remaining units as failures.
//
// The Aggregate renders as JSON, a text table, or the committed
// EXPERIMENTS.md (see Markdown and cmd/experiments); NewBench snapshots
// a sweep's wall-clock and convergence medians for the CI perf gate
// (cmd/bench).
package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"supercharged/internal/scenario"
	"supercharged/internal/sim"
)

// Spec declares a sweep: the cross product of scenarios, modes, table
// sizes and seeds. Zero-valued axes take the natural defaults, so the
// zero Spec sweeps every registered scenario in both modes at each
// scenario's own default sizes with seed 1.
type Spec struct {
	// Scenarios names the registered scenarios to sweep (empty = every
	// registered scenario, sorted by name).
	Scenarios []string `json:"scenarios,omitempty"`
	// Modes lists the router modes (empty = standalone then supercharged,
	// so every report compares the two).
	Modes []sim.Mode `json:"modes,omitempty"`
	// Sizes overrides the table sizes for every scenario (empty = each
	// scenario's own PrefixSweep or default size).
	Sizes []int `json:"sizes,omitempty"`
	// Tier names a registered size tier (scenario.TierSizes: s, m, l,
	// xl) as a shorthand for Sizes; setting both is an error. The xl
	// tier is the 100k/1M full-Internet scale.
	Tier string `json:"tier,omitempty"`
	// Seeds lists the RNG seeds (empty = {1}). A scenario with a
	// MaxSeeds cap runs only the first MaxSeeds of them.
	Seeds []int64 `json:"seeds,omitempty"`
	// Flows overrides the probed-flow count per run (0 = the lab's 100).
	Flows int `json:"flows,omitempty"`
}

// Unit is one independent run of a sweep: one scenario in one mode at one
// table size with one seed. Units are the scheduling quantum of the
// worker pool and the row key of the aggregate.
type Unit struct {
	Scenario string   `json:"scenario"`
	Mode     sim.Mode `json:"-"`
	ModeName string   `json:"mode"`
	Prefixes int      `json:"prefixes"`
	Seed     int64    `json:"seed"`
	Flows    int      `json:"flows,omitempty"`

	// spec is the resolved scenario, captured at expansion time so a
	// mid-sweep registry change cannot skew results.
	spec scenario.Spec
}

// ParseSeeds interprets a -seeds flag value: a single integer N is a
// seed *count* (seeds 1..N — how CI asks for "five seeds" without
// naming them), while a comma-separated list names explicit seeds.
// Empty input returns nil (the sweep default, seed 1).
func ParseSeeds(s string) ([]int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if !strings.Contains(s, ",") {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad seed count %q", s)
		}
		if n <= 0 {
			return nil, fmt.Errorf("sweep: seed count %d must be positive", n)
		}
		seeds := make([]int64, n)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}
		return seeds, nil
	}
	var seeds []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad seed %q", part)
		}
		// Expand rejects non-positive seeds too, but failing here names
		// the flag instead of the expanded spec.
		if n <= 0 {
			return nil, fmt.Errorf("sweep: seed %d must be positive", n)
		}
		seeds = append(seeds, n)
	}
	return seeds, nil
}

// Key is the unit's stable identity: scenario/mode/prefixes/seed. Final
// aggregate ordering sorts by expansion order, which is itself ordered by
// key components, so two sweeps of the same spec agree byte-for-byte.
func (u Unit) Key() string {
	return fmt.Sprintf("%s/%s/%d/%d", u.Scenario, u.ModeName, u.Prefixes, u.Seed)
}

// Spec returns the resolved scenario spec the unit runs.
func (u Unit) Spec() scenario.Spec { return u.spec }

// defaultModes is the two-mode comparison every sweep defaults to.
func defaultModes() []sim.Mode { return []sim.Mode{sim.Standalone, sim.Supercharged} }

// Expand resolves the spec against the scenario registry and returns the
// sweep's run units in deterministic order: scenario (input order, or
// sorted by name when defaulted), then table size ascending, then mode,
// then seed. Unknown scenario names and empty axes are errors up front,
// so a sweep never starts half-valid.
func Expand(spec Spec) ([]Unit, error) {
	names := spec.Scenarios
	if len(names) == 0 {
		names = scenario.Names()
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("sweep: no scenarios registered")
	}
	modes := spec.Modes
	if len(modes) == 0 {
		modes = defaultModes()
	}
	modeSeen := make(map[sim.Mode]bool)
	for _, m := range modes {
		if modeSeen[m] {
			return nil, fmt.Errorf("sweep: mode %s listed twice", m)
		}
		modeSeen[m] = true
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	specSizes := spec.Sizes
	if spec.Tier != "" {
		if len(specSizes) > 0 {
			return nil, fmt.Errorf("sweep: Tier %q and explicit Sizes are mutually exclusive", spec.Tier)
		}
		tierSizes, ok := scenario.TierSizes(spec.Tier)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown size tier %q (have: %v)", spec.Tier, scenario.Tiers())
		}
		specSizes = tierSizes
	}
	// Duplicate axis values would collide on unit keys and silently
	// overwrite each other in the aggregate's mode pairing — reject them
	// with the same loudness as duplicate scenario names.
	sizeSeen := make(map[int]bool)
	for _, n := range specSizes {
		if n <= 0 {
			return nil, fmt.Errorf("sweep: table size %d must be positive", n)
		}
		if sizeSeen[n] {
			return nil, fmt.Errorf("sweep: table size %d listed twice", n)
		}
		sizeSeen[n] = true
	}
	seedSeen := make(map[int64]bool)
	for _, s := range seeds {
		if s <= 0 {
			return nil, fmt.Errorf("sweep: seed %d must be positive", s)
		}
		if seedSeen[s] {
			return nil, fmt.Errorf("sweep: seed %d listed twice", s)
		}
		seedSeen[s] = true
	}

	var units []Unit
	seen := make(map[string]bool)
	for _, name := range names {
		sc, ok := scenario.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown scenario %q (have: %v)", name, scenario.Names())
		}
		if seen[name] {
			return nil, fmt.Errorf("sweep: scenario %q listed twice", name)
		}
		seen[name] = true
		sizes := specSizes
		if len(sizes) == 0 {
			sizes = sc.Sizes(0)
		}
		// A seed-capped scenario (the expensive xl tier) runs only the
		// first MaxSeeds seeds of the sweep's axis; the aggregate's
		// per-cell statistics already report the per-cell seed count.
		scSeeds := seeds
		if sc.MaxSeeds > 0 && len(scSeeds) > sc.MaxSeeds {
			scSeeds = scSeeds[:sc.MaxSeeds]
		}
		for _, size := range sizes {
			for _, mode := range modes {
				for _, seed := range scSeeds {
					units = append(units, Unit{
						Scenario: name,
						Mode:     mode,
						ModeName: mode.String(),
						Prefixes: size,
						Seed:     seed,
						Flows:    spec.Flows,
						spec:     sc,
					})
				}
			}
		}
	}
	return units, nil
}
