package sweep

import (
	"context"
	"strings"
	"testing"

	"supercharged/internal/scenario"
)

// benchFixture runs a small injected sweep and snapshots it.
func benchFixture(t *testing.T, scale float64) *Bench {
	t.Helper()
	spec := Spec{Scenarios: []string{"paper-fig5", "rule-loss"}, Sizes: []int{100, 200}, Seeds: []int64{1, 2, 3}}
	walls := map[string]float64{}
	var cached int
	opts := Options{
		Runner: func(_ context.Context, u Unit) (scenario.RunReport, error) {
			r := fakeRun(u)
			r.Events[0].Convergence.P50MS *= scale
			r.Events[0].Convergence.MaxMS *= scale
			return r, nil
		},
		OnResult: func(res UnitResult) {
			walls[res.Unit.Scenario] += float64(res.Wall.Milliseconds())
			if res.Cached {
				cached++
			}
		},
	}
	agg, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b := NewBench(agg, walls, cached, 1000)
	for i := range b.Scenarios {
		b.Scenarios[i].WallMS = 500 // pin host noise out of the comparison tests
	}
	return b
}

func TestBenchSnapshotShape(t *testing.T) {
	b := benchFixture(t, 1.0)
	if b.Units != 24 || b.Failed != 0 {
		t.Fatalf("units/failed = %d/%d, want 24/0", b.Units, b.Failed)
	}
	if len(b.Scenarios) != 2 || b.Scenarios[0].Name != "paper-fig5" {
		t.Fatalf("scenarios %+v, want sorted [paper-fig5 rule-loss]", b.Scenarios)
	}
	// paper-fig5 at two sizes, one traffic-affecting event, two modes.
	if got := len(b.Scenarios[0].Cells); got != 4 {
		t.Fatalf("paper-fig5 has %d cells, want 4", got)
	}
	data, err := b.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	back, err := ParseBench(data)
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	if len(back.Scenarios) != 2 || back.TotalWallMS != b.TotalWallMS {
		t.Fatalf("round trip mangled the snapshot: %+v", back)
	}
}

func TestCompareBenchPassesWithinTolerance(t *testing.T) {
	base := benchFixture(t, 1.0)
	cur := benchFixture(t, 1.15) // +15% convergence, inside the 20% gate
	cur.TotalWallMS = base.TotalWallMS * 1.1
	if v := CompareBench(base, cur, 0.20, 0.20); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Faster is always fine.
	fast := benchFixture(t, 0.5)
	fast.TotalWallMS = base.TotalWallMS * 0.2
	if v := CompareBench(base, fast, 0.20, 0.20); len(v) != 0 {
		t.Fatalf("improvement flagged as regression: %v", v)
	}
}

func TestCompareBenchCatchesConvergenceRegression(t *testing.T) {
	base := benchFixture(t, 1.0)
	cur := benchFixture(t, 1.5) // +50% median convergence
	v := CompareBench(base, cur, 0.20, 0.20)
	if len(v) == 0 {
		t.Fatal("50% convergence regression passed the 20% gate")
	}
	for _, msg := range v {
		if !strings.Contains(msg, "median convergence") {
			t.Fatalf("unexpected violation kind: %q", msg)
		}
	}
}

func TestCompareBenchCatchesWallClockRegression(t *testing.T) {
	base := benchFixture(t, 1.0)
	cur := benchFixture(t, 1.0)
	cur.TotalWallMS = base.TotalWallMS * 4 // past tolerance AND grace
	v := CompareBench(base, cur, 0.20, 0.20)
	if len(v) != 1 || !strings.Contains(v[0], "wall-clock regressed") {
		t.Fatalf("violations = %v, want exactly the total wall-clock one", v)
	}
	// Below the absolute grace margin, percentage blips don't count: a
	// cached sweep's 3 ms vs 5 ms is noise, not a regression.
	tiny := benchFixture(t, 1.0)
	tiny.TotalWallMS = 3
	tinyCur := benchFixture(t, 1.0)
	tinyCur.TotalWallMS = 5
	if v := CompareBench(tiny, tinyCur, 0.20, 0.20); len(v) != 0 {
		t.Fatalf("sub-grace wall blip flagged: %v", v)
	}
	// A baseline snapshotted off a warm store has no honest wall data:
	// the wall gate stands down, the convergence gate does not.
	warm := benchFixture(t, 1.0)
	warm.CachedUnits = warm.Units
	warm.TotalWallMS = 10
	coldCur := benchFixture(t, 1.0)
	coldCur.TotalWallMS = 30000
	if v := CompareBench(warm, coldCur, 0.20, 0.20); len(v) != 0 {
		t.Fatalf("warm baseline's wall gate fired: %v", v)
	}
	slowConv := benchFixture(t, 1.5)
	slowConv.TotalWallMS = 30000
	if v := CompareBench(warm, slowConv, 0.20, 0.20); len(v) == 0 {
		t.Fatal("warm baseline disarmed the convergence gate too")
	}
}

func TestCompareBenchCatchesVanishedCells(t *testing.T) {
	base := benchFixture(t, 1.0)
	cur := benchFixture(t, 1.0)
	cur.Scenarios = cur.Scenarios[:1] // rule-loss dropped
	v := CompareBench(base, cur, 0.20, 0.20)
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "vanished") {
		t.Fatalf("vanished scenario not flagged: %v", v)
	}
	// A brand-new scenario in current is not a violation.
	grown := benchFixture(t, 1.0)
	grown.Scenarios = append(grown.Scenarios, BenchScenario{Name: "brand-new"})
	if v := CompareBench(base, grown, 0.20, 0.20); len(v) != 0 {
		t.Fatalf("new scenario flagged: %v", v)
	}
}
