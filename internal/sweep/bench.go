package sweep

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Bench is the CI performance snapshot of one sweep: per-scenario host
// wall-clock cost plus the deterministic median convergence time of
// every (scenario, size, event, mode) cell. cmd/bench writes it as
// BENCH_sweep.json; the committed copy at the repo root is the baseline
// the CI bench job gates pushes against.
//
// Wall-clock numbers are host telemetry: they vary with the machine and
// with result-store warmth (a fully cached sweep costs file reads). The
// convergence medians are pure functions of (spec, seeds, model
// version), so a convergence regression in the gate always means the
// code changed behavior — never that CI drew a slow runner.
type Bench struct {
	// Seeds are the sweep's RNG seeds (≥5 in CI, per the gate's charter).
	Seeds []int64 `json:"seeds"`
	// Units and Failed mirror the aggregate's run accounting.
	Units  int `json:"units"`
	Failed int `json:"failed"`
	// CachedUnits counts results served from the result store — context
	// for reading the wall-clock numbers.
	CachedUnits int `json:"cached_units"`
	// TotalWallMS is the whole sweep's host wall-clock time.
	TotalWallMS float64 `json:"total_wall_ms"`
	// Scenarios carries per-scenario wall-clock and convergence cells,
	// sorted by name.
	Scenarios []BenchScenario `json:"scenarios"`
}

// BenchScenario is one scenario's share of the snapshot.
type BenchScenario struct {
	Name string `json:"scenario"`
	// WallMS sums the host wall-clock of the scenario's units.
	WallMS float64 `json:"wall_ms"`
	// Cells lists the scenario's gated convergence numbers.
	Cells []BenchCell `json:"cells"`
}

// BenchCell is one gated number: the median across seeds of an event's
// worst blackout in one mode at one table size.
type BenchCell struct {
	Prefixes int     `json:"prefixes"`
	Event    int     `json:"event"`
	Mode     string  `json:"mode"`
	MedianMS float64 `json:"median_ms"`
}

// id names a cell in gate violations.
func (c BenchCell) id(scenario string) string {
	return fmt.Sprintf("%s/%s/%d/event%d", scenario, c.Mode, c.Prefixes, c.Event)
}

// NewBench assembles the snapshot from a finished aggregate plus the
// wall-clock accounting collected via Options.OnResult.
func NewBench(agg *Aggregate, wallByScenario map[string]float64, cached int, totalWallMS float64) *Bench {
	b := &Bench{
		Seeds:       append([]int64(nil), agg.Seeds...),
		Units:       agg.Units,
		Failed:      agg.Failed,
		CachedUnits: cached,
		TotalWallMS: totalWallMS,
	}
	for _, sr := range agg.Scenarios {
		bs := BenchScenario{Name: sr.Name, WallMS: wallByScenario[sr.Name]}
		for _, c := range sr.Comparisons {
			for _, side := range []struct {
				mode  string
				stats *ModeStats
			}{
				{"standalone", c.Standalone},
				{"supercharged", c.Supercharged},
			} {
				if side.stats == nil || side.stats.Max == nil {
					continue
				}
				bs.Cells = append(bs.Cells, BenchCell{
					Prefixes: c.Prefixes,
					Event:    c.Event,
					Mode:     side.mode,
					MedianMS: side.stats.Max.MedianMS,
				})
			}
		}
		b.Scenarios = append(b.Scenarios, bs)
	}
	sort.Slice(b.Scenarios, func(i, j int) bool { return b.Scenarios[i].Name < b.Scenarios[j].Name })
	return b
}

// JSON renders the snapshot as indented JSON.
func (b *Bench) JSON() ([]byte, error) { return json.MarshalIndent(b, "", "  ") }

// ParseBench reads a snapshot written by JSON.
func ParseBench(data []byte) (*Bench, error) {
	var b Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("sweep: parse bench snapshot: %w", err)
	}
	return &b, nil
}

// Wall-clock grace floors: a percentage gate over milliseconds-range
// timings (a fully cached sweep costs almost nothing) is pure noise, so
// a wall-clock regression must also clear an absolute margin before it
// counts. Convergence medians are deterministic and get no grace.
const (
	totalWallGraceMS    = 2000
	scenarioWallGraceMS = 500
)

// CompareBench gates current against baseline: it returns one violation
// string per regression — total or per-scenario wall-clock grown beyond
// wallTol (fractional, e.g. 0.20) plus the absolute grace margin, any
// cell's median convergence time grown beyond convTol, or a baseline
// cell that disappeared (a scenario silently dropping out of the sweep
// is a regression too). Faster results and brand-new cells pass;
// ratcheting the baseline down is a deliberate commit of the
// regenerated BENCH_sweep.json.
func CompareBench(baseline, current *Bench, convTol, wallTol float64) []string {
	var violations []string
	// A baseline recorded off a warm result store carries near-zero wall
	// numbers that nothing real can beat; its wall-clock data is not a
	// baseline, so the wall gate stands down (convergence medians are
	// cache-independent and stay gated). Refresh baselines cold:
	// `go run ./cmd/bench -store "" -o BENCH_sweep.json`.
	wallGate := baseline.CachedUnits == 0
	if wallGate && wallRegressed(baseline.TotalWallMS, current.TotalWallMS, wallTol, totalWallGraceMS) {
		violations = append(violations, fmt.Sprintf(
			"sweep wall-clock regressed %.0f ms → %.0f ms (>%d%%)",
			baseline.TotalWallMS, current.TotalWallMS, int(wallTol*100)))
	}
	curScen := make(map[string]*BenchScenario, len(current.Scenarios))
	for i := range current.Scenarios {
		curScen[current.Scenarios[i].Name] = &current.Scenarios[i]
	}
	for _, base := range baseline.Scenarios {
		cur, ok := curScen[base.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"scenario %s vanished from the sweep (present in baseline)", base.Name))
			continue
		}
		if wallGate && wallRegressed(base.WallMS, cur.WallMS, wallTol, scenarioWallGraceMS) {
			violations = append(violations, fmt.Sprintf(
				"%s wall-clock regressed %.0f ms → %.0f ms (>%d%%)",
				base.Name, base.WallMS, cur.WallMS, int(wallTol*100)))
		}
		curCells := make(map[string]float64, len(cur.Cells))
		for _, c := range cur.Cells {
			curCells[c.id(cur.Name)] = c.MedianMS
		}
		for _, c := range base.Cells {
			id := c.id(base.Name)
			got, ok := curCells[id]
			if !ok {
				violations = append(violations, fmt.Sprintf("cell %s vanished (baseline %.1f ms)", id, c.MedianMS))
				continue
			}
			if c.MedianMS > 0 && got > c.MedianMS*(1+convTol) {
				violations = append(violations, fmt.Sprintf(
					"median convergence of %s regressed %.1f ms → %.1f ms (>%d%%)",
					id, c.MedianMS, got, int(convTol*100)))
			}
		}
	}
	return violations
}

// wallRegressed applies the fractional tolerance and the absolute grace
// margin to one wall-clock pair.
func wallRegressed(baseMS, curMS, tol, graceMS float64) bool {
	return baseMS > 0 && curMS > baseMS*(1+tol) && curMS-baseMS > graceMS
}
