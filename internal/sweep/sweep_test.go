package sweep

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"supercharged/internal/scenario"
	"supercharged/internal/sim"
)

func TestExpandDefaultsCoverRegistry(t *testing.T) {
	units, err := Expand(Spec{})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	names := scenario.Names()
	if len(names) == 0 {
		t.Fatal("no scenarios registered")
	}
	// Every registered scenario appears, at each of its own sizes, in both
	// modes, with seed 1.
	want := 0
	for _, name := range names {
		sc, _ := scenario.Lookup(name)
		want += len(sc.Sizes(0)) * 2
	}
	if len(units) != want {
		t.Fatalf("expanded %d units, want %d", len(units), want)
	}
	seen := make(map[string]bool)
	for _, u := range units {
		if seen[u.Key()] {
			t.Fatalf("duplicate unit key %q", u.Key())
		}
		seen[u.Key()] = true
		if u.Seed != 1 {
			t.Fatalf("unit %s: seed %d, want default 1", u.Key(), u.Seed)
		}
	}
	// Scenario blocks follow registry (sorted-name) order.
	var scOrder []string
	for _, u := range units {
		if len(scOrder) == 0 || scOrder[len(scOrder)-1] != u.Scenario {
			scOrder = append(scOrder, u.Scenario)
		}
	}
	if fmt.Sprint(scOrder) != fmt.Sprint(names) {
		t.Fatalf("scenario order %v, want %v", scOrder, names)
	}
}

func TestExpandIsDeterministic(t *testing.T) {
	spec := Spec{Seeds: []int64{3, 1}, Sizes: []int{500, 100}}
	a, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	b, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("unit %d: %q vs %q", i, a[i].Key(), b[i].Key())
		}
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown scenario", Spec{Scenarios: []string{"no-such"}}, "unknown scenario"},
		{"duplicate scenario", Spec{Scenarios: []string{"paper-fig5", "paper-fig5"}}, "listed twice"},
		{"bad size", Spec{Sizes: []int{0}}, "must be positive"},
		{"bad seed", Spec{Seeds: []int64{-1}}, "must be positive"},
		// Duplicate axis values would collide on unit keys.
		{"duplicate size", Spec{Sizes: []int{300, 300}}, "listed twice"},
		{"duplicate seed", Spec{Seeds: []int64{1, 1}}, "listed twice"},
		{"duplicate mode", Spec{Modes: []sim.Mode{sim.Standalone, sim.Standalone}}, "listed twice"},
	}
	for _, tc := range cases {
		if _, err := Expand(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// smallSpec is a cheap real sweep: two scenarios, tiny tables.
func smallSpec() Spec {
	return Spec{
		Scenarios: []string{"double-failure", "rule-loss"},
		Sizes:     []int{300, 600},
	}
}

// TestWorkerCountInvariance is the core determinism contract: the same
// spec and seed produce byte-identical aggregates (JSON and markdown) at
// any worker count.
func TestWorkerCountInvariance(t *testing.T) {
	var docs [][]byte
	var jsons [][]byte
	for _, workers := range []int{1, 3, 16} {
		agg, err := Run(context.Background(), smallSpec(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		j, err := agg.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		jsons = append(jsons, j)
		docs = append(docs, agg.Markdown(MarkdownOptions{Command: "go run ./cmd/experiments"}))
	}
	for i := 1; i < len(docs); i++ {
		if !bytes.Equal(jsons[0], jsons[i]) {
			t.Errorf("aggregate JSON differs between worker counts 1 and %d", []int{1, 3, 16}[i])
		}
		if !bytes.Equal(docs[0], docs[i]) {
			t.Errorf("markdown differs between worker counts 1 and %d", []int{1, 3, 16}[i])
		}
	}
	if len(docs[0]) == 0 || !bytes.Contains(docs[0], []byte("## scenario: double-failure")) {
		t.Fatalf("markdown missing scenario section:\n%s", docs[0])
	}
}

// TestRepeatRunDeterminism re-runs the identical sweep and demands
// byte-identical output — the property the committed EXPERIMENTS.md and
// its CI freshness gate stand on.
func TestRepeatRunDeterminism(t *testing.T) {
	render := func() []byte {
		agg, err := Run(context.Background(), smallSpec(), Options{Workers: 4})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return agg.Markdown(MarkdownOptions{Command: "go run ./cmd/experiments"})
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("same spec + seed produced different markdown bytes")
	}
}

// fakeRun fabricates a plausible single-event report for a unit.
func fakeRun(u Unit) scenario.RunReport {
	conv := 150.0
	if u.Mode == sim.Standalone {
		conv = 150.0 * float64(u.Prefixes) / 100
	}
	return scenario.RunReport{
		Mode:     u.Mode.String(),
		Prefixes: u.Prefixes,
		Events: []scenario.EventReport{{
			Index: 0, Kind: sim.EventPeerDown, Peer: "R2", DetectMS: 90,
			Affected: 10, Recovered: 10,
			Convergence: &scenario.ConvergenceSummary{Samples: 10, P50MS: conv, MaxMS: conv * 1.2},
		}},
	}
}

// TestPartialFailureReported injects a runner that fails exactly one
// unit: the sweep must finish, report the failure in the aggregate (and
// both renderings), and keep every other result.
func TestPartialFailureReported(t *testing.T) {
	spec := Spec{Scenarios: []string{"paper-fig5"}, Sizes: []int{100, 200}}
	failKey := "paper-fig5/non-supercharged/200/1"
	opts := Options{
		Workers: 4,
		Runner: func(_ context.Context, u Unit) (scenario.RunReport, error) {
			if u.Key() == failKey {
				return scenario.RunReport{}, fmt.Errorf("injected fault")
			}
			return fakeRun(u), nil
		},
	}
	agg, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatalf("Run must tolerate unit failures, got: %v", err)
	}
	if agg.Failed != 1 || agg.Units != 4 {
		t.Fatalf("Failed=%d Units=%d, want 1/4", agg.Failed, agg.Units)
	}
	sr := agg.Scenarios[0]
	if len(sr.Runs) != 3 {
		t.Fatalf("kept %d runs, want 3", len(sr.Runs))
	}
	if len(sr.Failures) != 1 || sr.Failures[0].Key != failKey ||
		!strings.Contains(sr.Failures[0].Error, "injected fault") {
		t.Fatalf("failure row %+v, want key %q", sr.Failures, failKey)
	}
	// The surviving (100-prefix) pair still compares; the broken 200 pair
	// must not fabricate a comparison.
	if len(sr.Comparisons) != 1 || sr.Comparisons[0].Prefixes != 100 {
		t.Fatalf("comparisons %+v, want exactly the 100-prefix pair", sr.Comparisons)
	}
	doc := string(agg.Markdown(MarkdownOptions{}))
	if !strings.Contains(doc, failKey) || !strings.Contains(doc, "injected fault") {
		t.Error("markdown does not report the failed unit")
	}
	if !strings.Contains(agg.RenderTable(), failKey) {
		t.Error("text table does not report the failed unit")
	}
}

// TestStreamDeliversEveryUnit checks the streaming contract: one result
// per unit, channel closed afterwards, indexes covering the expansion.
func TestStreamDeliversEveryUnit(t *testing.T) {
	units, err := Expand(Spec{Scenarios: []string{"flap-storm"}, Sizes: []int{100, 200, 300}, Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	opts := Options{Workers: 3, Runner: func(_ context.Context, u Unit) (scenario.RunReport, error) {
		if u.Seed == 2 {
			return scenario.RunReport{}, fmt.Errorf("boom")
		}
		return fakeRun(u), nil
	}}
	got := make(map[int]bool)
	for res := range Stream(context.Background(), units, opts) {
		if got[res.Index] {
			t.Fatalf("index %d delivered twice", res.Index)
		}
		got[res.Index] = true
		if (res.Err == nil) == (res.Run == nil) {
			t.Fatalf("result %d: exactly one of Run/Err must be set: %+v", res.Index, res)
		}
	}
	if len(got) != len(units) {
		t.Fatalf("received %d results, want %d", len(got), len(units))
	}
}

// TestPartialRecoveryIsVisible: an event that leaves flows blackholed
// must say so in every rendering and must not claim a speedup computed
// over the survivors alone.
func TestPartialRecoveryIsVisible(t *testing.T) {
	spec := Spec{Scenarios: []string{"paper-fig5"}, Sizes: []int{100}}
	agg, err := Run(context.Background(), spec, Options{Runner: func(_ context.Context, u Unit) (scenario.RunReport, error) {
		r := fakeRun(u)
		if u.Mode == sim.Supercharged {
			// 9 of 10 flows recover fast; one never does.
			r.Events[0].Recovered = 9
			r.Events[0].Unrecovered = 1
		}
		return r, nil
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := agg.Scenarios[0].Comparisons[0]
	if c.SpeedupP50 != 0 || c.SpeedupMax != 0 {
		t.Fatalf("speedup claimed (%v/%v) despite an unrecovered flow", c.SpeedupP50, c.SpeedupMax)
	}
	doc := string(agg.Markdown(MarkdownOptions{}))
	if !strings.Contains(doc, "(+1 never)") {
		t.Errorf("markdown hides the unrecovered flow:\n%s", doc)
	}
	if !strings.Contains(doc, "| 1 |\n") { // glance table: 1 unrecovered event
		t.Errorf("glance table does not count the unrecovered event:\n%s", doc)
	}
	if !strings.Contains(agg.RenderTable(), "(+1 never)") {
		t.Error("text table hides the unrecovered flow")
	}
}

func TestSpeedupRatios(t *testing.T) {
	spec := Spec{Scenarios: []string{"paper-fig5"}, Sizes: []int{100}}
	agg, err := Run(context.Background(), spec, Options{Runner: func(_ context.Context, u Unit) (scenario.RunReport, error) {
		return fakeRun(u), nil
	}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cs := agg.Scenarios[0].Comparisons
	if len(cs) != 1 {
		t.Fatalf("got %d comparisons, want 1", len(cs))
	}
	c := cs[0]
	// fakeRun: standalone 150*100/100=150ms vs supercharged 150ms → 1.0.
	if c.SpeedupP50 != 1 || c.SpeedupMax != 1 {
		t.Fatalf("speedups %v/%v, want 1/1", c.SpeedupP50, c.SpeedupMax)
	}
	if c.DetectMS != 90 || c.Kind != string(sim.EventPeerDown) {
		t.Fatalf("comparison carries wrong event identity: %+v", c)
	}
}
