package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"supercharged/internal/results"
	"supercharged/internal/scenario"
	"supercharged/internal/sim"
)

func openStore(t *testing.T) *results.Store {
	t.Helper()
	s, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatalf("results.Open: %v", err)
	}
	return s
}

// TestStoreMakesResweepIncremental is the incremental-re-sweep contract:
// the second identical sweep executes zero units — every result comes
// from the store — and still renders byte-identical output.
func TestStoreMakesResweepIncremental(t *testing.T) {
	store := openStore(t)
	var executed atomic.Int64
	opts := func() Options {
		return Options{
			Workers: 4,
			Store:   store,
			Runner: func(_ context.Context, u Unit) (scenario.RunReport, error) {
				executed.Add(1)
				return fakeRun(u), nil
			},
		}
	}
	spec := Spec{Scenarios: []string{"paper-fig5", "rule-loss"}, Sizes: []int{300, 600}, Seeds: []int64{1, 2}}

	first, err := Run(context.Background(), spec, opts())
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	units := first.Units
	if got := executed.Load(); got != int64(units) {
		t.Fatalf("first sweep executed %d of %d units", got, units)
	}

	var cached int64
	o := opts()
	o.OnResult = func(res UnitResult) {
		if res.Cached {
			cached++
		}
	}
	second, err := Run(context.Background(), spec, o)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if got := executed.Load(); got != int64(units) {
		t.Fatalf("second sweep re-executed %d units; want all from the store", got-int64(units))
	}
	if cached != int64(units) {
		t.Fatalf("second sweep served %d/%d units from the store", cached, units)
	}
	a, _ := first.JSON()
	b, _ := second.JSON()
	if !bytes.Equal(a, b) {
		t.Fatal("cached re-sweep rendered different bytes than the original")
	}
}

// TestStoreInvalidation: the cache must miss — and re-run — when the
// seed axis grows (only the new units), and when the model version is
// bumped (everything).
func TestStoreInvalidation(t *testing.T) {
	store := openStore(t)
	var executed atomic.Int64
	run := func(spec Spec, version string) {
		t.Helper()
		_, err := Run(context.Background(), spec, Options{
			Store:   store,
			Version: version,
			Runner: func(_ context.Context, u Unit) (scenario.RunReport, error) {
				executed.Add(1)
				return fakeRun(u), nil
			},
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	spec := Spec{Scenarios: []string{"rule-loss"}, Sizes: []int{300}}
	run(spec, "v1")
	base := executed.Load() // 2 units: both modes

	// Adding seeds re-runs only the new units.
	spec.Seeds = []int64{1, 2, 3}
	run(spec, "v1")
	if got := executed.Load() - base; got != 4 {
		t.Fatalf("seed growth re-ran %d units; want exactly the 4 new ones", got)
	}

	// A version bump orphans every entry.
	executed.Store(0)
	run(spec, "v2")
	if got := executed.Load(); got != 6 {
		t.Fatalf("version bump re-ran %d of 6 units", got)
	}
}

// TestCancelMidSweep: cancellation mid-sweep must (a) finish promptly
// with one result per unit, (b) report the cancelled units as failures
// alongside the error, and (c) leave only complete, parseable entries in
// the store.
func TestCancelMidSweep(t *testing.T) {
	store := openStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := Spec{Scenarios: []string{"paper-fig5"}, Sizes: []int{100, 200}, Seeds: []int64{1, 2}}

	opts := Options{
		Workers: 2,
		Store:   store,
		Runner: func(ctx context.Context, u Unit) (scenario.RunReport, error) {
			if u.Seed == 2 {
				// Block until the sweep is cancelled, like a unit caught
				// mid-simulation when the budget expires.
				<-ctx.Done()
				return scenario.RunReport{}, ctx.Err()
			}
			return fakeRun(u), nil
		},
		OnResult: func(res UnitResult) {
			if res.Err == nil && res.Unit.Seed == 1 {
				cancel() // first completed unit pulls the plug
			}
		},
	}
	agg, err := Run(ctx, spec, opts)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("Run error = %v; want interrupted", err)
	}
	if agg == nil {
		t.Fatal("cancelled Run must still return the partial aggregate")
	}
	if agg.Failed == 0 || agg.Failed == agg.Units {
		t.Fatalf("Failed=%d of %d; want a partial sweep", agg.Failed, agg.Units)
	}
	// Store consistency: every entry on disk is complete and parseable.
	entries := 0
	err = filepath.WalkDir(store.Dir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if filepath.Ext(path) != ".json" {
			return fmt.Errorf("unexpected file %s", path)
		}
		entries++
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var e struct {
			Layout int                `json:"layout"`
			Report scenario.RunReport `json:"report"`
		}
		if err := json.Unmarshal(b, &e); err != nil || e.Layout != 1 {
			return fmt.Errorf("torn store entry %s: %v", path, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := agg.Units - agg.Failed; entries != want {
		t.Fatalf("store holds %d entries; want %d (one per completed unit)", entries, want)
	}
}

// TestBudgetBoundsSweep: a sweep over budget stops instead of running to
// completion.
func TestBudgetBoundsSweep(t *testing.T) {
	spec := Spec{Scenarios: []string{"paper-fig5"}, Sizes: []int{100, 200, 300, 400}}
	agg, err := Run(context.Background(), spec, Options{
		Workers: 1,
		Budget:  30 * time.Millisecond,
		Runner: func(ctx context.Context, u Unit) (scenario.RunReport, error) {
			select {
			case <-time.After(25 * time.Millisecond):
				return fakeRun(u), nil
			case <-ctx.Done():
				return scenario.RunReport{}, ctx.Err()
			}
		},
	})
	if err == nil {
		t.Fatal("sweep finished under an impossible budget without error")
	}
	if agg == nil || agg.Failed == 0 {
		t.Fatalf("expected budget-failed units in the aggregate, got %+v", agg)
	}
}

// TestMultiSeedStatistics: per-cell distributions must summarize the
// per-seed values, and the renderings must show median plus spread.
func TestMultiSeedStatistics(t *testing.T) {
	spec := Spec{Scenarios: []string{"paper-fig5"}, Sizes: []int{100}, Seeds: []int64{1, 2, 3}}
	agg, err := Run(context.Background(), spec, Options{
		Runner: func(_ context.Context, u Unit) (scenario.RunReport, error) {
			r := fakeRun(u)
			// Standalone blackout scales with the seed: 100, 200, 300 ms
			// (max 120, 240, 360); supercharged stays flat at 150/180.
			if u.Mode == sim.Standalone {
				c := 100.0 * float64(u.Seed)
				r.Events[0].Convergence = &scenario.ConvergenceSummary{
					Samples: 10, P50MS: c, MaxMS: c * 1.2,
				}
			}
			return r, nil
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cs := agg.Scenarios[0].Comparisons
	if len(cs) != 1 {
		t.Fatalf("got %d comparisons, want 1 (seeds aggregated into one row)", len(cs))
	}
	c := cs[0]
	if c.Seeds != 3 {
		t.Fatalf("Seeds = %d, want 3", c.Seeds)
	}
	sa := c.Standalone
	if sa == nil || sa.P50 == nil || sa.Max == nil {
		t.Fatalf("standalone stats missing: %+v", sa)
	}
	if sa.Seeds != 3 || sa.Affected != 30 || sa.Recovered != 30 {
		t.Fatalf("flow totals wrong: %+v", sa)
	}
	if sa.P50.N != 3 || sa.P50.MinMS != 100 || sa.P50.MedianMS != 200 || sa.P50.MaxMS != 300 {
		t.Fatalf("p50 dist wrong: %+v", sa.P50)
	}
	if sa.P50.MeanMS != 200 || sa.P50.IQRMS != 100 {
		t.Fatalf("mean/IQR wrong: %+v", sa.P50)
	}
	// Speedup compares medians across seeds: 240 (standalone median max)
	// over 180 (supercharged, flat).
	if got, want := c.SpeedupMax, 240.0/180.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("SpeedupMax = %v, want %v", got, want)
	}
	doc := string(agg.Markdown(MarkdownOptions{}))
	if !strings.Contains(doc, "| seeds |") {
		t.Error("markdown comparison table lacks the seeds column")
	}
	if !strings.Contains(doc, "[100ms–300ms]") {
		t.Errorf("markdown lacks the spread cell, got:\n%s", doc)
	}
	if !strings.Contains(agg.RenderTable(), "[100ms–300ms]") {
		t.Error("text table lacks the spread cell")
	}
}

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"", "[]", false},
		{"5", "[1 2 3 4 5]", false}, // bare integer = seed count
		{"7,11", "[7 11]", false},   // list = explicit seeds
		{"3,", "[3]", false},        // trailing comma tolerated
		{" 2 ", "[1 2]", false},     // count, trimmed
		{"0", "", true},             // zero count
		{"-3", "", true},            // negative count
		{"x", "", true},             // not a number
		{"1,x", "", true},           // bad list element
		{"0,1", "", true},           // zero seed in a list
		{"-5,2", "", true},          // negative seed in a list
	}
	for _, tc := range cases {
		got, err := ParseSeeds(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseSeeds(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSeeds(%q): %v", tc.in, err)
			continue
		}
		if fmt.Sprint(got) != tc.want {
			t.Errorf("ParseSeeds(%q) = %v, want %s", tc.in, got, tc.want)
		}
	}
}
