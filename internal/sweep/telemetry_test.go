package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supercharged/internal/telemetry"
)

// One instrumented sweep: the registry's unit/store series must account
// for every unit, the run tracker must drain, and the trace dir must
// hold one JSONL + Chrome pair per executed (non-cached) unit.
func TestSweepTelemetryAccounting(t *testing.T) {
	store := openStore(t)
	dir := t.TempDir()
	spec := Spec{Scenarios: []string{"paper-fig5"}, Sizes: []int{300}, Seeds: []int64{1, 2}}

	reg := telemetry.NewRegistry()
	runs := telemetry.NewRunTracker(0)
	opts := Options{
		Workers: 2, Store: store,
		Telemetry: reg, Runs: runs, TraceDir: dir,
	}
	agg, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	units := agg.Units

	counter := func(name string) uint64 { return reg.Counter(name, "").Value() }
	if got := counter("supercharged_sweep_units_ok_total"); got != uint64(units) {
		t.Fatalf("units_ok = %d, want %d", got, units)
	}
	if got := counter("supercharged_sweep_store_misses_total"); got != uint64(units) {
		t.Fatalf("store_misses = %d, want %d", got, units)
	}
	if got := counter("supercharged_sim_runs_total"); got != uint64(units) {
		t.Fatalf("sim_runs = %d, want %d (registry not attached to units?)", got, units)
	}
	snap := runs.Snapshot()
	if snap.Total != units || snap.Done != units || len(snap.Active) != 0 || snap.Failed != 0 {
		t.Fatalf("tracker snapshot %+v, want %d done", snap, units)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var jsonl, chrome int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".trace.jsonl"):
			jsonl++
		case strings.HasSuffix(e.Name(), ".trace.json"):
			chrome++
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(b, []byte(`"traceEvents"`)) {
				t.Fatalf("%s is not a Chrome trace", e.Name())
			}
		}
	}
	if jsonl != units || chrome != units {
		t.Fatalf("trace dir holds %d jsonl + %d chrome files, want %d each", jsonl, chrome, units)
	}

	// Second sweep over the warm store: all hits, no new traces.
	dir2 := t.TempDir()
	opts.TraceDir = dir2
	if _, err := Run(context.Background(), spec, opts); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if got := counter("supercharged_sweep_units_cached_total"); got != uint64(units) {
		t.Fatalf("units_cached = %d, want %d", got, units)
	}
	if got := counter("supercharged_sweep_store_hits_total"); got != uint64(units) {
		t.Fatalf("store_hits = %d, want %d", got, units)
	}
	if entries, _ := os.ReadDir(dir2); len(entries) != 0 {
		t.Fatalf("cached sweep wrote %d trace files; cache hits must not trace", len(entries))
	}

	// The exposition endpoint sees all of it.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"supercharged_sweep_unit_wall_seconds_count",
		"supercharged_sweep_unit_virtual_seconds_count",
		"supercharged_sim_flow_convergence_seconds_bucket",
	} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("exposition missing %s", series)
		}
	}
}
