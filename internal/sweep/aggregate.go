package sweep

import (
	"encoding/json"

	"supercharged/internal/metrics"
	"supercharged/internal/scenario"
	"supercharged/internal/sim"
)

// Aggregate is the deterministic cross-scenario result of a sweep. It
// contains no wall-clock or host-dependent data, so the same spec and
// seeds render byte-identically regardless of worker count or machine —
// the property the committed EXPERIMENTS.md and its CI freshness check
// rely on.
type Aggregate struct {
	Seeds     []int64          `json:"seeds"`
	Flows     int              `json:"flows,omitempty"`
	Units     int              `json:"units"`
	Failed    int              `json:"failed"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// ScenarioResult groups one scenario's runs, failures and cross-mode
// comparisons.
type ScenarioResult struct {
	Name        string       `json:"scenario"`
	Description string       `json:"description,omitempty"`
	Runs        []RunRow     `json:"runs"`
	Comparisons []Comparison `json:"comparisons,omitempty"`
	Failures    []Failure    `json:"failures,omitempty"`
}

// RunRow is one unit's report plus the unit identity the report itself
// does not carry (its key and seed).
type RunRow struct {
	Key  string `json:"key"`
	Seed int64  `json:"seed"`
	scenario.RunReport
}

// Failure is one unit that errored; the sweep reports it instead of
// dropping it, so a partially failing sweep is visibly partial.
type Failure struct {
	Key   string `json:"key"`
	Error string `json:"error"`
}

// ConvCell is one mode's convergence measurements for one event.
type ConvCell struct {
	Affected    int     `json:"affected"`
	Recovered   int     `json:"recovered"`
	Unrecovered int     `json:"unrecovered"`
	P50MS       float64 `json:"p50_ms"`
	MaxMS       float64 `json:"max_ms"`
}

// Comparison pairs one event's measurements across the two router modes
// at one (table size, seed) and carries the speedup ratios — the paper's
// headline number, computed per event instead of once.
type Comparison struct {
	Prefixes int    `json:"prefixes"`
	Seed     int64  `json:"seed"`
	Event    int    `json:"event"`
	Kind     string `json:"kind"`
	Peer     string `json:"peer,omitempty"`
	// DetectMS is the failure-detection latency (identical path in both
	// modes; 0 when the event needs no detection).
	DetectMS     float64   `json:"detect_ms"`
	Standalone   *ConvCell `json:"standalone,omitempty"`
	Supercharged *ConvCell `json:"supercharged,omitempty"`
	// SpeedupP50 and SpeedupMax are standalone/supercharged convergence
	// ratios over recovered flows. >1 means the supercharger converged
	// faster. They are 0 — "nothing honest to compare" — when either side
	// has no recovered flows OR left any flow unrecovered: a ratio over
	// the survivors would overstate a mode that blackholed traffic
	// forever.
	SpeedupP50 float64 `json:"speedup_p50,omitempty"`
	SpeedupMax float64 `json:"speedup_max,omitempty"`
}

// aggregate assembles the deterministic report from expansion-ordered
// units and their (completion-ordered, then reindexed) results.
func aggregate(spec Spec, units []Unit, results []UnitResult) *Aggregate {
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	agg := &Aggregate{
		Seeds: append([]int64(nil), seeds...),
		Flows: spec.Flows,
		Units: len(units),
	}
	byName := make(map[string]*ScenarioResult)
	var order []string
	for i, u := range units {
		sr := byName[u.Scenario]
		if sr == nil {
			sr = &ScenarioResult{Name: u.Scenario, Description: u.spec.Description}
			byName[u.Scenario] = sr
			order = append(order, u.Scenario)
		}
		res := results[i]
		if res.Err != nil {
			agg.Failed++
			sr.Failures = append(sr.Failures, Failure{Key: u.Key(), Error: res.Err.Error()})
			continue
		}
		sr.Runs = append(sr.Runs, RunRow{Key: u.Key(), Seed: u.Seed, RunReport: *res.Run})
	}
	for _, name := range order {
		sr := byName[name]
		sr.Comparisons = compare(sr.Runs)
		agg.Scenarios = append(agg.Scenarios, *sr)
	}
	return agg
}

// compare pairs each (prefixes, seed, event) across the two modes. Runs
// arrive in expansion order (size ascending, then mode, then seed), so
// the comparison rows inherit that deterministic ordering.
func compare(runs []RunRow) []Comparison {
	type rkey struct {
		prefixes int
		seed     int64
	}
	type pair struct {
		standalone, supercharged *RunRow
	}
	pairs := make(map[rkey]*pair)
	var order []rkey
	for i := range runs {
		r := &runs[i]
		k := rkey{r.Prefixes, r.Seed}
		p := pairs[k]
		if p == nil {
			p = &pair{}
			pairs[k] = p
			order = append(order, k)
		}
		if r.Mode == sim.Supercharged.String() {
			p.supercharged = r
		} else {
			p.standalone = r
		}
	}
	var out []Comparison
	for _, k := range order {
		p := pairs[k]
		if p.standalone == nil || p.supercharged == nil {
			continue // single-mode sweep: nothing to compare
		}
		n := len(p.standalone.Events)
		if len(p.supercharged.Events) < n {
			n = len(p.supercharged.Events)
		}
		for ev := 0; ev < n; ev++ {
			sa, su := p.standalone.Events[ev], p.supercharged.Events[ev]
			c := Comparison{
				Prefixes: k.prefixes,
				Seed:     k.seed,
				Event:    ev,
				Kind:     string(sa.Kind),
				Peer:     sa.Peer,
				DetectMS: max(sa.DetectMS, su.DetectMS),
			}
			c.Standalone = convCell(sa)
			c.Supercharged = convCell(su)
			if c.Standalone != nil && c.Supercharged != nil &&
				c.Standalone.Unrecovered == 0 && c.Supercharged.Unrecovered == 0 {
				if c.Supercharged.P50MS > 0 {
					c.SpeedupP50 = c.Standalone.P50MS / c.Supercharged.P50MS
				}
				if c.Supercharged.MaxMS > 0 {
					c.SpeedupMax = c.Standalone.MaxMS / c.Supercharged.MaxMS
				}
			}
			if c.Standalone == nil && c.Supercharged == nil &&
				sa.Affected == 0 && su.Affected == 0 {
				continue // event never touched traffic in either mode
			}
			out = append(out, c)
		}
	}
	return out
}

func convCell(ev scenario.EventReport) *ConvCell {
	if ev.Affected == 0 {
		return nil
	}
	c := &ConvCell{Affected: ev.Affected, Recovered: ev.Recovered, Unrecovered: ev.Unrecovered}
	if ev.Convergence != nil {
		c.P50MS = ev.Convergence.P50MS
		c.MaxMS = ev.Convergence.MaxMS
	}
	return c
}

// JSON renders the aggregate as indented JSON.
func (a *Aggregate) JSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// RenderTable renders the comparison rows as a fixed-width text table,
// the `cmd/scenario sweep` default output.
func (a *Aggregate) RenderTable() string {
	multiSeed := len(a.Seeds) > 1
	header := []string{"scenario", "prefixes"}
	if multiSeed {
		header = append(header, "seed")
	}
	header = append(header, "event", "kind", "peer", "detect",
		"standalone p50", "standalone max", "supercharged p50", "supercharged max", "speedup")
	t := &metrics.Table{Header: header}
	for _, sr := range a.Scenarios {
		for _, c := range sr.Comparisons {
			row := []any{sr.Name, c.Prefixes}
			if multiSeed {
				row = append(row, c.Seed)
			}
			row = append(row, c.Event, c.Kind, orDash(c.Peer), fmtDetect(c.DetectMS),
				cellP50(c.Standalone), cellMax(c.Standalone),
				cellP50(c.Supercharged), cellMax(c.Supercharged),
				fmtSpeedup(c.SpeedupMax))
			t.Add(row...)
		}
		for _, f := range sr.Failures {
			row := make([]any, len(header))
			row[0], row[1] = sr.Name, "FAILED"
			for i := 2; i < len(row); i++ {
				row[i] = "-"
			}
			row[len(row)-1] = f.Key
			t.Add(row...)
		}
	}
	return t.Render()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
