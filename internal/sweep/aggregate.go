package sweep

import (
	"encoding/json"
	"sort"

	"supercharged/internal/metrics"
	"supercharged/internal/scenario"
	"supercharged/internal/sim"
)

// Aggregate is the deterministic cross-scenario result of a sweep. It
// contains no wall-clock or host-dependent data, so the same spec and
// seeds render byte-identically regardless of worker count, machine, or
// result-store state — the property the committed EXPERIMENTS.md and its
// CI freshness check rely on.
type Aggregate struct {
	Seeds     []int64          `json:"seeds"`
	Flows     int              `json:"flows,omitempty"`
	Units     int              `json:"units"`
	Failed    int              `json:"failed"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// ScenarioResult groups one scenario's runs, failures and cross-mode
// comparisons.
type ScenarioResult struct {
	Name        string       `json:"scenario"`
	Description string       `json:"description,omitempty"`
	Runs        []RunRow     `json:"runs"`
	Comparisons []Comparison `json:"comparisons,omitempty"`
	Failures    []Failure    `json:"failures,omitempty"`
}

// RunRow is one unit's report plus the unit identity the report itself
// does not carry (its key and seed).
type RunRow struct {
	Key  string `json:"key"`
	Seed int64  `json:"seed"`
	scenario.RunReport
}

// Failure is one unit that errored; the sweep reports it instead of
// dropping it, so a partially failing sweep is visibly partial.
type Failure struct {
	Key   string `json:"key"`
	Error string `json:"error"`
}

// Dist is a box-plot-style summary of one per-seed statistic — the
// paper's Fig. 5 presentation, where every cell is a distribution over
// repeated runs rather than a point. Values are milliseconds.
type Dist struct {
	// N is the number of seeds contributing a sample.
	N        int     `json:"n"`
	MinMS    float64 `json:"min_ms"`
	MedianMS float64 `json:"median_ms"`
	MeanMS   float64 `json:"mean_ms"`
	P90MS    float64 `json:"p90_ms"`
	MaxMS    float64 `json:"max_ms"`
	// IQRMS is the inter-quartile range (P75−P25), the box height.
	IQRMS float64 `json:"iqr_ms"`
}

// distOf summarizes per-seed samples (nil when none exist).
func distOf(samples []float64) *Dist {
	if len(samples) == 0 {
		return nil
	}
	s := metrics.Summarize(samples)
	return &Dist{
		N:        s.N,
		MinMS:    s.Min,
		MedianMS: s.Median,
		MeanMS:   s.Mean,
		P90MS:    metrics.Percentile(sortedCopy(samples), 0.90),
		MaxMS:    s.Max,
		IQRMS:    s.P75 - s.P25,
	}
}

// ModeStats is one mode's measurements for one (scenario, event, size)
// cell, aggregated across every seed that ran it: flow counts are totals
// over seeds, and P50/Max summarize the per-seed median and worst
// blackout as distributions.
type ModeStats struct {
	// Seeds counts the runs (one per seed) contributing to this cell.
	Seeds int `json:"seeds"`
	// Affected/Recovered/Unrecovered are flow totals across those seeds.
	Affected    int `json:"affected"`
	Recovered   int `json:"recovered"`
	Unrecovered int `json:"unrecovered"`
	// P50 is the distribution of per-seed median blackout; Max the
	// distribution of per-seed worst blackout. Nil when no seed had a
	// recovered flow to measure.
	P50 *Dist `json:"p50,omitempty"`
	Max *Dist `json:"max,omitempty"`
}

// Comparison pairs one event's measurements across the two router modes
// at one table size, aggregated over every seed — the paper's headline
// number, computed per event and presented as a spread instead of a
// single-seed point.
type Comparison struct {
	Prefixes int `json:"prefixes"`
	// Seeds is the number of distinct seeds contributing to the row.
	Seeds int    `json:"seeds"`
	Event int    `json:"event"`
	Kind  string `json:"kind"`
	Peer  string `json:"peer,omitempty"`
	// DetectMS is the failure-detection latency (identical path in both
	// modes; 0 when the event needs no detection).
	DetectMS     float64    `json:"detect_ms"`
	Standalone   *ModeStats `json:"standalone,omitempty"`
	Supercharged *ModeStats `json:"supercharged,omitempty"`
	// SuperchargedClass / VanillaClass split the supercharged-mode runs
	// by router class on mixed partial deployments (absent otherwise):
	// the crossover surface of incremental SDN rollout, measured per
	// event. The supercharged totals above mix both classes.
	SuperchargedClass *ModeStats `json:"supercharged_class,omitempty"`
	VanillaClass      *ModeStats `json:"vanilla_class,omitempty"`
	// SpeedupP50 and SpeedupMax are standalone/supercharged ratios of the
	// per-seed-median blackout (median of p50s, median of maxes). >1 means
	// the supercharger converged faster. They are 0 — "nothing honest to
	// compare" — when either side has no recovered flows OR left any flow
	// in any seed unrecovered: a ratio over the survivors would overstate
	// a mode that blackholed traffic forever.
	SpeedupP50 float64 `json:"speedup_p50,omitempty"`
	SpeedupMax float64 `json:"speedup_max,omitempty"`
	// SpeedupClassMax is the standalone / supercharged-class ratio of the
	// per-seed-median worst blackout on mixed deployments — what the SDN
	// routers alone gained over the baseline, with the same honesty rules
	// as SpeedupMax. 0 when the run was not a mixed deployment.
	SpeedupClassMax float64 `json:"speedup_class_max,omitempty"`
}

// aggregate assembles the deterministic report from expansion-ordered
// units and their (completion-ordered, then reindexed) results.
func aggregate(spec Spec, units []Unit, results []UnitResult) *Aggregate {
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	agg := &Aggregate{
		Seeds: append([]int64(nil), seeds...),
		Flows: spec.Flows,
		Units: len(units),
	}
	byName := make(map[string]*ScenarioResult)
	var order []string
	for i, u := range units {
		sr := byName[u.Scenario]
		if sr == nil {
			sr = &ScenarioResult{Name: u.Scenario, Description: u.spec.Description}
			byName[u.Scenario] = sr
			order = append(order, u.Scenario)
		}
		res := results[i]
		if res.Err != nil {
			agg.Failed++
			sr.Failures = append(sr.Failures, Failure{Key: u.Key(), Error: res.Err.Error()})
			continue
		}
		sr.Runs = append(sr.Runs, RunRow{Key: u.Key(), Seed: u.Seed, RunReport: *res.Run})
	}
	for _, name := range order {
		sr := byName[name]
		sr.Comparisons = compare(sr.Runs)
		agg.Scenarios = append(agg.Scenarios, *sr)
	}
	return agg
}

// compare aggregates each (prefixes, event) cell across the two modes
// and every seed. Runs arrive in expansion order (size ascending, then
// mode, then seed), so the comparison rows inherit that deterministic
// ordering.
func compare(runs []RunRow) []Comparison {
	type group struct {
		standalone, supercharged []*RunRow
		seeds                    map[int64]bool
	}
	groups := make(map[int]*group)
	var order []int
	for i := range runs {
		r := &runs[i]
		g := groups[r.Prefixes]
		if g == nil {
			g = &group{seeds: make(map[int64]bool)}
			groups[r.Prefixes] = g
			order = append(order, r.Prefixes)
		}
		g.seeds[r.Seed] = true
		if r.Mode == sim.Supercharged.String() {
			g.supercharged = append(g.supercharged, r)
		} else {
			g.standalone = append(g.standalone, r)
		}
	}
	var out []Comparison
	for _, prefixes := range order {
		g := groups[prefixes]
		if len(g.standalone) == 0 || len(g.supercharged) == 0 {
			continue // single-mode sweep: nothing to compare
		}
		n := minEvents(g.standalone)
		if m := minEvents(g.supercharged); m < n {
			n = m
		}
		for ev := 0; ev < n; ev++ {
			sa, su := g.standalone[0].Events[ev], g.supercharged[0].Events[ev]
			c := Comparison{
				Prefixes: prefixes,
				Seeds:    len(g.seeds),
				Event:    ev,
				Kind:     string(sa.Kind),
				Peer:     sa.Peer,
				DetectMS: maxDetect(g.standalone, g.supercharged, ev),
			}
			c.Standalone = modeStats(g.standalone, ev)
			c.Supercharged = modeStats(g.supercharged, ev)
			c.SuperchargedClass = classStats(g.supercharged, ev,
				func(e scenario.EventReport) *scenario.ClassSummary { return e.SuperchargedClass })
			c.VanillaClass = classStats(g.supercharged, ev,
				func(e scenario.EventReport) *scenario.ClassSummary { return e.VanillaClass })
			if c.Standalone != nil && c.SuperchargedClass != nil &&
				c.Standalone.Unrecovered == 0 && c.SuperchargedClass.Unrecovered == 0 {
				if m := c.SuperchargedClass.Max; m != nil && m.MedianMS > 0 && c.Standalone.Max != nil {
					c.SpeedupClassMax = c.Standalone.Max.MedianMS / m.MedianMS
				}
			}
			if c.Standalone == nil && c.Supercharged == nil &&
				sa.Affected == 0 && su.Affected == 0 {
				continue // event never touched traffic in either mode or seed
			}
			if c.Standalone != nil && c.Supercharged != nil &&
				c.Standalone.Unrecovered == 0 && c.Supercharged.Unrecovered == 0 {
				if p := c.Supercharged.P50; p != nil && p.MedianMS > 0 && c.Standalone.P50 != nil {
					c.SpeedupP50 = c.Standalone.P50.MedianMS / p.MedianMS
				}
				if m := c.Supercharged.Max; m != nil && m.MedianMS > 0 && c.Standalone.Max != nil {
					c.SpeedupMax = c.Standalone.Max.MedianMS / m.MedianMS
				}
			}
			out = append(out, c)
		}
	}
	return out
}

// modeStats folds one event across one mode's per-seed runs (nil when no
// seed's run had the event touch traffic).
func modeStats(rs []*RunRow, ev int) *ModeStats {
	st := &ModeStats{}
	var p50s, maxs []float64
	for _, r := range rs {
		if ev >= len(r.Events) {
			continue
		}
		e := r.Events[ev]
		st.Seeds++
		st.Affected += e.Affected
		st.Recovered += e.Recovered
		st.Unrecovered += e.Unrecovered
		if e.Convergence != nil {
			p50s = append(p50s, e.Convergence.P50MS)
			maxs = append(maxs, e.Convergence.MaxMS)
		}
	}
	if st.Affected == 0 {
		return nil
	}
	st.P50 = distOf(p50s)
	st.Max = distOf(maxs)
	return st
}

// classStats folds one router class's share of an event across the
// supercharged-mode per-seed runs (nil when the runs carried no class
// breakdown — i.e. anything but a mixed partial deployment — or the
// class was never touched).
func classStats(rs []*RunRow, ev int, pick func(scenario.EventReport) *scenario.ClassSummary) *ModeStats {
	st := &ModeStats{}
	var p50s, maxs []float64
	for _, r := range rs {
		if ev >= len(r.Events) {
			continue
		}
		cl := pick(r.Events[ev])
		if cl == nil {
			continue
		}
		st.Seeds++
		st.Affected += cl.Affected
		st.Recovered += cl.Recovered
		st.Unrecovered += cl.Unrecovered
		if cl.Convergence != nil {
			p50s = append(p50s, cl.Convergence.P50MS)
			maxs = append(maxs, cl.Convergence.MaxMS)
		}
	}
	if st.Seeds == 0 || st.Affected == 0 {
		return nil
	}
	st.P50 = distOf(p50s)
	st.Max = distOf(maxs)
	return st
}

func minEvents(rs []*RunRow) int {
	n := len(rs[0].Events)
	for _, r := range rs[1:] {
		if len(r.Events) < n {
			n = len(r.Events)
		}
	}
	return n
}

// maxDetect is the worst detection latency of the event across modes and
// seeds (detection is the same physical path in both modes, so in
// practice the values agree; max keeps the report honest if they ever
// diverge).
func maxDetect(standalone, supercharged []*RunRow, ev int) float64 {
	var worst float64
	for _, rs := range [][]*RunRow{standalone, supercharged} {
		for _, r := range rs {
			if ev < len(r.Events) && r.Events[ev].DetectMS > worst {
				worst = r.Events[ev].DetectMS
			}
		}
	}
	return worst
}

// sortedCopy sorts without mutating the caller's slice —
// metrics.Percentile expects sorted input.
func sortedCopy(samples []float64) []float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return s
}

// JSON renders the aggregate as indented JSON.
func (a *Aggregate) JSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// RenderTable renders the comparison rows as a fixed-width text table,
// the `cmd/scenario sweep` default output. With multiple seeds each
// convergence cell reads `median [min–max]` across seeds.
func (a *Aggregate) RenderTable() string {
	multiSeed := len(a.Seeds) > 1
	header := []string{"scenario", "prefixes"}
	if multiSeed {
		header = append(header, "seeds")
	}
	header = append(header, "event", "kind", "peer", "detect",
		"standalone p50", "standalone max", "supercharged p50", "supercharged max", "speedup")
	t := &metrics.Table{Header: header}
	for _, sr := range a.Scenarios {
		for _, c := range sr.Comparisons {
			row := []any{sr.Name, c.Prefixes}
			if multiSeed {
				row = append(row, c.Seeds)
			}
			row = append(row, c.Event, c.Kind, orDash(c.Peer), fmtDetect(c.DetectMS),
				cellP50(c.Standalone), cellMax(c.Standalone),
				cellP50(c.Supercharged), cellMax(c.Supercharged),
				fmtSpeedup(c.SpeedupMax))
			t.Add(row...)
		}
		for _, f := range sr.Failures {
			row := make([]any, len(header))
			row[0], row[1] = sr.Name, "FAILED"
			for i := 2; i < len(row); i++ {
				row[i] = "-"
			}
			row[len(row)-1] = f.Key
			t.Add(row...)
		}
	}
	return t.Render()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
