package bgp

import (
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestInternerCanonicalizes asserts the interner's contract: semantically
// equal attribute sets intern to one pointer, distinct sets keep their
// own, and nil passes through. Attributes handed to Intern are frozen by
// contract (documented on Interner): mutating them afterwards is a caller
// bug, which is why every mutation site in this repository clones first.
func TestInternerCanonicalizes(t *testing.T) {
	in := NewInterner()
	mk := func() *Attrs {
		return &Attrs{
			Origin:      OriginIGP,
			ASPath:      Sequence(65002, 64512, 3356),
			NextHop:     addr("203.0.113.1"),
			MED:         10,
			HasMED:      true,
			Communities: []Community{Community(65002<<16 | 40)},
			Others:      []RawAttr{{Flags: 0xc0, Code: 32, Data: []byte{1, 2, 3}}},
		}
	}
	a, b := mk(), mk()
	if a == b {
		t.Fatal("test needs distinct pointers")
	}
	ca := in.Intern(a)
	cb := in.Intern(b)
	if ca != a {
		t.Fatal("first intern must return its argument as canonical")
	}
	if cb != ca {
		t.Fatal("equal attrs must intern to the same pointer")
	}
	if in.Len() != 1 {
		t.Fatalf("interner size %d, want 1", in.Len())
	}
	// A semantically different set keeps its own identity.
	d := mk()
	d.MED = 11
	if in.Intern(d) != d {
		t.Fatal("distinct attrs collapsed onto an existing canonical set")
	}
	if in.Len() != 2 {
		t.Fatalf("interner size %d, want 2", in.Len())
	}
	if in.Intern(nil) != nil {
		t.Fatal("nil must intern to nil")
	}
	// Hash must cover the Equal fields: flipping each scalar escapes the
	// original's bucket-or-Equal match.
	for i, mut := range []func(*Attrs){
		func(x *Attrs) { x.Origin = OriginIncomplete },
		func(x *Attrs) { x.NextHop = addr("203.0.113.2") },
		func(x *Attrs) { x.HasMED = false },
		func(x *Attrs) { x.LocalPref, x.HasLocalPref = 200, true },
		func(x *Attrs) { x.AtomicAggregate = true },
		func(x *Attrs) { x.ASPath = Sequence(65002) },
		func(x *Attrs) { x.Communities = nil },
		func(x *Attrs) { x.Others = nil },
		func(x *Attrs) { x.Aggregator = &Aggregator{AS: 1, ID: addr("192.0.2.1")} },
	} {
		x := mk()
		mut(x)
		if in.Intern(x) != x {
			t.Fatalf("mutation %d collapsed onto an existing canonical set", i)
		}
	}
}

// TestRIBInternsStoredAttrs asserts the RIB stores canonical attribute
// pointers: two updates carrying equal-but-distinct Attrs objects end up
// sharing one pointer in the table, which is what turns the processor's
// churn filter into a pointer compare.
func TestRIBInternsStoredAttrs(t *testing.T) {
	r := NewRIB()
	r.Update(peerR2, announce("203.0.113.1", "1.0.0.0/24"))
	first := r.Best(pfx("1.0.0.0/24")).Attrs
	// A fresh, semantically identical announcement (fresh Attrs object).
	r.Update(peerR2, announce("203.0.113.1", "2.0.0.0/24"))
	second := r.Best(pfx("2.0.0.0/24")).Attrs
	if first != second {
		t.Fatal("RIB stored two pointers for one semantic attribute set")
	}
}

// TestRIBIdenticalReannouncement asserts the churn fast path: a peer
// re-announcing a route with byte-identical attributes still yields a
// Change (the naive standalone router pays a FIB write for it) but leaves
// the ranked list object and its Path untouched.
func TestRIBIdenticalReannouncement(t *testing.T) {
	r := NewRIB()
	p2 := peerR2
	p2.Weight = 100
	r.Update(p2, announce("203.0.113.1", "1.0.0.0/24"))
	r.Update(peerR3, announce("198.51.100.2", "1.0.0.0/24"))
	before := r.Paths(pfx("1.0.0.0/24"))

	changes := r.Update(peerR3, announce("198.51.100.2", "1.0.0.0/24"))
	if len(changes) != 1 {
		t.Fatalf("re-announcement changes %d, want 1 (standalone FIB write)", len(changes))
	}
	after := r.Paths(pfx("1.0.0.0/24"))
	if len(after) != 2 {
		t.Fatalf("paths %d, want 2", len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("path %d was rebuilt by an identical re-announcement", i)
		}
	}
}

// TestRIBGrowthAfterRemovalKeepsOldView pins the Change contract's one
// preserved-Old case against a capacity trap: a removal leaves spare
// capacity in the entry's backing array, and a later membership-growth
// insert must NOT reuse it (an in-place shift would rewrite the Old view
// the caller just received).
func TestRIBGrowthAfterRemovalKeepsOldView(t *testing.T) {
	r := NewRIB()
	pA := peerR2
	pA.Weight = 100
	r.Update(pA, announce("203.0.113.1", "1.0.0.0/24"))
	r.Update(peerR3, announce("198.51.100.2", "1.0.0.0/24"))
	// Withdraw R3: the entry's array truncates in place, keeping cap 2.
	r.Update(peerR3, withdraw("1.0.0.0/24"))
	// A new peer that outranks A announces: growth must re-allocate.
	pC := PeerMeta{Addr: addr("192.0.2.9"), AS: 65009, ID: addr("192.0.2.9"), Weight: 200}
	changes := r.Update(pC, announce("192.0.2.9", "1.0.0.0/24"))
	if len(changes) != 1 {
		t.Fatalf("changes %d, want 1", len(changes))
	}
	ch := changes[0]
	if len(ch.Old) != 1 || ch.Old[0].Peer != pA.Addr {
		t.Fatalf("Old view corrupted: got %v, want the pre-change [A] ranking", ch.Old)
	}
	if len(ch.New) != 2 || ch.New[0].Peer != pC.Addr {
		t.Fatalf("New ranking wrong: %v", ch.New)
	}
}

// TestRIBPeerIndex asserts the per-peer index tracks announcements,
// implicit withdraws, explicit withdraws and RemovePeer.
func TestRIBPeerIndex(t *testing.T) {
	r := NewRIB()
	r.Update(peerR2, announce("203.0.113.1", "1.0.0.0/24", "2.0.0.0/24"))
	r.Update(peerR3, announce("198.51.100.2", "1.0.0.0/24"))
	if n := r.PeerLen(peerR2.Addr); n != 2 {
		t.Fatalf("R2 index %d, want 2", n)
	}
	// Implicit withdraw (replacement) must not grow the index.
	r.Update(peerR2, announce("203.0.113.9", "1.0.0.0/24"))
	if n := r.PeerLen(peerR2.Addr); n != 2 {
		t.Fatalf("R2 index after replacement %d, want 2", n)
	}
	r.Update(peerR2, withdraw("2.0.0.0/24"))
	if n := r.PeerLen(peerR2.Addr); n != 1 {
		t.Fatalf("R2 index after withdraw %d, want 1", n)
	}
	if ch := r.RemovePeer(peerR2.Addr); len(ch) != 1 {
		t.Fatalf("RemovePeer changes %d, want 1", len(ch))
	}
	if n := r.PeerLen(peerR2.Addr); n != 0 {
		t.Fatalf("R2 index after RemovePeer %d, want 0", n)
	}
	// Idempotent: a second removal finds nothing.
	if ch := r.RemovePeer(peerR2.Addr); len(ch) != 0 {
		t.Fatalf("second RemovePeer changes %d, want 0", len(ch))
	}
	if n := r.PeerLen(peerR3.Addr); n != 1 {
		t.Fatalf("R3 index %d, want 1", n)
	}
}

// TestRIBRemovePeerMatchesScan asserts the indexed RemovePeer and the
// reference full-table scan agree on both the resulting table and the
// change set, over a randomized table.
func TestRIBRemovePeerMatchesScan(t *testing.T) {
	build := func() *RIB {
		r := NewRIB()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{1, byte(i >> 8), byte(i), 0}), 24)
			u := &Update{
				Attrs: &Attrs{Origin: OriginIGP, ASPath: Sequence(65002), NextHop: addr("203.0.113.1")},
				NLRI:  []netip.Prefix{p},
			}
			r.Update(peerR2, u)
			if rng.Intn(2) == 0 {
				u3 := &Update{
					Attrs: &Attrs{Origin: OriginIGP, ASPath: Sequence(65003), NextHop: addr("198.51.100.2")},
					NLRI:  []netip.Prefix{p},
				}
				r.Update(peerR3, u3)
			}
		}
		return r
	}
	a, b := build(), build()
	chA := a.RemovePeer(peerR2.Addr)
	chB := b.RemovePeerScan(peerR2.Addr)
	if len(chA) != len(chB) {
		t.Fatalf("indexed %d changes, scan %d", len(chA), len(chB))
	}
	if a.Len() != b.Len() {
		t.Fatalf("indexed table %d prefixes, scan %d", a.Len(), b.Len())
	}
	a.Walk(func(p netip.Prefix, paths []*Path) bool {
		other := b.Paths(p)
		if len(other) != len(paths) {
			t.Errorf("%v: indexed %d paths, scan %d", p, len(paths), len(other))
			return false
		}
		for i := range paths {
			if paths[i].Peer != other[i].Peer {
				t.Errorf("%v: rank %d differs", p, i)
				return false
			}
		}
		return true
	})
}

// TestRIBRankedInsertionMatchesFullSort cross-checks the binary-search
// insertion against the reference full re-sort (DecisionConfig.Rank) over
// randomized path sets: after any sequence of announcements the stored
// order must equal what sorting from scratch produces.
func TestRIBRankedInsertionMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	target := pfx("5.0.0.0/24")
	for trial := 0; trial < 50; trial++ {
		r := NewRIB()
		nPeers := 2 + rng.Intn(8)
		for i := 0; i < nPeers; i++ {
			peer := PeerMeta{
				Addr:      netip.AddrFrom4([4]byte{10, 0, byte(trial), byte(i + 1)}),
				AS:        uint32(65000 + i),
				ID:        netip.AddrFrom4([4]byte{10, 0, byte(trial), byte(i + 1)}),
				IGPMetric: uint32(rng.Intn(3)),
				Weight:    uint32(rng.Intn(3) * 100),
			}
			u := &Update{
				Attrs: &Attrs{
					Origin:  Origin(rng.Intn(3)),
					ASPath:  Sequence(makeASNs(rng)...),
					NextHop: netip.AddrFrom4([4]byte{10, 1, byte(trial), byte(i + 1)}),
				},
				NLRI: []netip.Prefix{target},
			}
			if rng.Intn(4) == 0 {
				u.Attrs.LocalPref, u.Attrs.HasLocalPref = uint32(50+rng.Intn(3)*50), true
			}
			r.Update(peer, u)
		}
		got := r.Paths(target)
		want := append([]*Path(nil), got...)
		// Shuffle, then full-sort with the reference implementation.
		rng.Shuffle(len(want), func(i, j int) { want[i], want[j] = want[j], want[i] })
		r.Decision.Rank(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: rank %d: insertion order disagrees with full sort", trial, i)
			}
		}
	}
}

func makeASNs(rng *rand.Rand) []uint32 {
	n := 1 + rng.Intn(4)
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(64512 + rng.Intn(100))
	}
	return out
}

// TestRIBConcurrentUpdateRemovePeer hammers the RIB from parallel
// announcers, withdrawers and peer-removers; run under -race it guards
// the per-peer index's locking (the index shares the RIB mutex and must
// never be visible half-updated).
func TestRIBConcurrentUpdateRemovePeer(t *testing.T) {
	r := NewRIB()
	const peers = 4
	const prefixes = 64
	metas := make([]PeerMeta, peers)
	for i := range metas {
		a := netip.AddrFrom4([4]byte{10, 2, 0, byte(i + 1)})
		metas[i] = PeerMeta{Addr: a, AS: uint32(65000 + i), ID: a}
	}
	prefixFor := func(j int) netip.Prefix {
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{7, 0, byte(j), 0}), 24)
	}
	var wg sync.WaitGroup
	for i := range metas {
		wg.Add(1)
		go func(meta PeerMeta, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var buf []Change
			for iter := 0; iter < 200; iter++ {
				switch rng.Intn(4) {
				case 0:
					buf = r.RemovePeerInto(meta.Addr, buf)
				case 1:
					u := &Update{Withdrawn: []netip.Prefix{prefixFor(rng.Intn(prefixes))}}
					buf = r.UpdateInto(meta, u, buf)
				default:
					u := &Update{
						Attrs: &Attrs{
							Origin:  OriginIGP,
							ASPath:  Sequence(meta.AS),
							NextHop: meta.Addr,
						},
						NLRI: []netip.Prefix{prefixFor(rng.Intn(prefixes))},
					}
					buf = r.UpdateInto(meta, u, buf)
				}
				// Concurrent readers exercise the RLock paths.
				r.Best(prefixFor(rng.Intn(prefixes)))
				r.PeerLen(meta.Addr)
			}
		}(metas[i], int64(i+1))
	}
	wg.Wait()
	// Post-condition: the index agrees with the table.
	for _, meta := range metas {
		want := 0
		r.Walk(func(_ netip.Prefix, paths []*Path) bool {
			for _, p := range paths {
				if p.Peer == meta.Addr {
					want++
				}
			}
			return true
		})
		if got := r.PeerLen(meta.Addr); got != want {
			t.Fatalf("peer %v: index %d, table %d", meta.Addr, got, want)
		}
	}
}

// buildRemovePeerRIB populates a RIB with total prefixes from a main peer
// plus share×total prefixes also covered by the victim peer — the "peer
// carries 10% of a 1M table" shape of the acceptance criterion.
func buildRemovePeerRIB(total int, share float64) (*RIB, netip.Addr) {
	r := NewRIB()
	main := PeerMeta{Addr: addr("203.0.113.1"), AS: 65002, ID: addr("203.0.113.1"), Weight: 200}
	victim := PeerMeta{Addr: addr("198.51.100.2"), AS: 65003, ID: addr("198.51.100.2"), Weight: 100}
	mainAttrs := &Attrs{Origin: OriginIGP, ASPath: Sequence(65002, 3356), NextHop: main.Addr}
	victimAttrs := &Attrs{Origin: OriginIGP, ASPath: Sequence(65003, 1299), NextHop: victim.Addr}
	nVictim := int(float64(total) * share)
	nlri := make([]netip.Prefix, 0, total)
	for i := 0; i < total; i++ {
		nlri = append(nlri, netip.PrefixFrom(netip.AddrFrom4([4]byte{
			byte(11 + i>>16), byte(i >> 8), byte(i), 0,
		}), 24))
	}
	r.Update(main, &Update{Attrs: mainAttrs, NLRI: nlri})
	r.Update(victim, &Update{Attrs: victimAttrs, NLRI: nlri[:nVictim]})
	return r, victim.Addr
}

// TestRemovePeerProportionalToPeer is the in-tree guard for the indexed
// RemovePeer's complexity claim: at a 50k-prefix table where the victim
// carries 10%, the indexed removal must beat the pre-index full scan by
// a wide margin (the full 1M acceptance shape shows ≥10x and lives in
// BENCH_micro.json via cmd/bench micro; the threshold here is a deeply
// conservative 2x so shared-runner noise cannot flake the suite).
func TestRemovePeerProportionalToPeer(t *testing.T) {
	const table, share = 50_000, 0.10
	best := func(run func(*RIB)) time.Duration {
		b := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			r, _ := buildRemovePeerRIB(table, share)
			runtime.GC()
			t0 := time.Now()
			run(r)
			if d := time.Since(t0); d < b {
				b = d
			}
		}
		return b
	}
	victim := addr("198.51.100.2")
	indexed := best(func(r *RIB) { r.RemovePeer(victim) })
	scan := best(func(r *RIB) { r.RemovePeerScan(victim) })
	if scan < 2*indexed {
		t.Fatalf("indexed RemovePeer is not clearly proportional to the peer: indexed %v, scan %v", indexed, scan)
	}
}

// BenchmarkRIBRemovePeer measures RemovePeer at the acceptance shape
// scaled down per size: the victim peer carries 10% of the table.
// Compare indexed vs scan to see the index's win (the full 1M shape is
// snapshotted in BENCH_micro.json via cmd/bench micro).
func BenchmarkRIBRemovePeer(b *testing.B) {
	for _, total := range []int{10_000, 100_000} {
		for _, impl := range []string{"indexed", "scan"} {
			b.Run(fmt.Sprintf("%s/table=%d", impl, total), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					r, victim := buildRemovePeerRIB(total, 0.10)
					b.StartTimer()
					if impl == "indexed" {
						r.RemovePeer(victim)
					} else {
						r.RemovePeerScan(victim)
					}
				}
			})
		}
	}
}

// BenchmarkRIBChurnUpdate measures the identical-re-announcement fast
// path: one interned single-prefix UPDATE replayed against a populated
// table, the per-update unit of background noise.
func BenchmarkRIBChurnUpdate(b *testing.B) {
	r, _ := buildRemovePeerRIB(100_000, 0.10)
	peer := PeerMeta{Addr: addr("203.0.113.1"), AS: 65002, ID: addr("203.0.113.1"), Weight: 200}
	u := &Update{
		Attrs: &Attrs{Origin: OriginIGP, ASPath: Sequence(65002, 3356), NextHop: peer.Addr},
		NLRI:  []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{11, 0, 42, 0}), 24)},
	}
	var buf []Change
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.UpdateInto(peer, u, buf)
	}
}
