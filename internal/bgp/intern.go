package bgp

import (
	"net/netip"
	"sync"
)

// Interner canonicalizes semantically equal *Attrs to a single pointer:
// Intern returns the first pointer it ever saw for each distinct attribute
// set (keyed by a semantic hash, verified by Attrs.Equal). Once every
// attribute set flowing through a RIB is interned, "did the attributes
// change?" — the processor's churn filter, its batching signatures, the
// RIB's own identical-re-announcement fast path — degrades from a deep
// structural comparison to a pointer compare, which is what keeps the
// steady-state churn path allocation-free at full-table scale.
//
// Contract: attributes passed to Intern are frozen — the caller must not
// mutate them (nor anything reachable from them) afterwards, because the
// returned canonical pointer may be shared by every path in the table.
// Code that needs to modify attributes clones first (Attrs.Clone), exactly
// as the controller already does before rewriting next-hops.
//
// An interner only grows: canonical sets are retained for its lifetime.
// That is the right trade for routing tables, where the distinct attribute
// sets number in the tens of thousands (feed templates × peers) while the
// paths sharing them number in the millions.
type Interner struct {
	mu      sync.Mutex
	buckets map[uint64][]*Attrs
	size    int
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{buckets: make(map[uint64][]*Attrs)}
}

// Intern returns the canonical pointer for a: the previously interned
// pointer of a semantically equal set if one exists (a itself is then
// discarded), else a, which becomes canonical. Nil stays nil.
func (in *Interner) Intern(a *Attrs) *Attrs {
	if a == nil {
		return nil
	}
	h := hashAttrs(a)
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, c := range in.buckets[h] {
		if c == a || c.Equal(a) {
			return c
		}
	}
	in.buckets[h] = append(in.buckets[h], a)
	in.size++
	return a
}

// Len returns the number of distinct canonical attribute sets.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.size
}

// fnv64 is an allocation-free FNV-1a accumulator over the fields the
// semantic equality Attrs.Equal compares. Hash collisions are harmless
// (the bucket verifies with Equal); what matters is that equal sets hash
// equally, so the hash must cover exactly the Equal fields.
type fnv64 uint64

const (
	fnvOffset64 fnv64 = 14695981039346656037
	fnvPrime64  fnv64 = 1099511628211
)

func (h *fnv64) byte(b byte) {
	*h = (*h ^ fnv64(b)) * fnvPrime64
}

func (h *fnv64) u32(v uint32) {
	h.byte(byte(v >> 24))
	h.byte(byte(v >> 16))
	h.byte(byte(v >> 8))
	h.byte(byte(v))
}

func (h *fnv64) bool(v bool) {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

func (h *fnv64) addr(a netip.Addr) {
	if !a.IsValid() {
		h.byte(0)
		return
	}
	h.byte(1)
	b := a.As16()
	for _, x := range b {
		h.byte(x)
	}
}

func hashAttrs(a *Attrs) uint64 {
	h := fnvOffset64
	h.byte(byte(a.Origin))
	h.addr(a.NextHop)
	h.bool(a.HasMED)
	h.u32(a.MED)
	h.bool(a.HasLocalPref)
	h.u32(a.LocalPref)
	h.bool(a.AtomicAggregate)
	if a.Aggregator != nil {
		h.byte(1)
		h.u32(a.Aggregator.AS)
		h.addr(a.Aggregator.ID)
	} else {
		h.byte(0)
	}
	for _, s := range a.ASPath {
		h.byte(byte(s.Type))
		h.u32(uint32(len(s.ASNs)))
		for _, asn := range s.ASNs {
			h.u32(asn)
		}
	}
	h.u32(uint32(len(a.Communities)))
	for _, c := range a.Communities {
		h.u32(uint32(c))
	}
	h.u32(uint32(len(a.Others)))
	for _, r := range a.Others {
		h.byte(r.Flags)
		h.byte(r.Code)
		h.u32(uint32(len(r.Data)))
		for _, x := range r.Data {
			h.byte(x)
		}
	}
	return uint64(h)
}
