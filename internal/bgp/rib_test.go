package bgp

import (
	"net/netip"
	"testing"
)

var (
	peerR2 = PeerMeta{Addr: addr("203.0.113.1"), AS: 65002, ID: addr("203.0.113.1")}
	peerR3 = PeerMeta{Addr: addr("198.51.100.2"), AS: 65003, ID: addr("198.51.100.2")}
)

func announce(nh string, nlri ...string) *Update {
	u := &Update{Attrs: &Attrs{Origin: OriginIGP, ASPath: Sequence(65002), NextHop: addr(nh)}}
	for _, s := range nlri {
		u.NLRI = append(u.NLRI, pfx(s))
	}
	return u
}

func withdraw(nlri ...string) *Update {
	u := &Update{}
	for _, s := range nlri {
		u.Withdrawn = append(u.Withdrawn, pfx(s))
	}
	return u
}

func TestRIBTwoPeersRankedList(t *testing.T) {
	r := NewRIB()
	// R2 preferred via Weight (the paper uses a policy making R2 win).
	p2 := peerR2
	p2.Weight = 100
	r.Update(p2, announce("203.0.113.1", "1.0.0.0/24"))
	changes := r.Update(peerR3, announce("198.51.100.2", "1.0.0.0/24"))
	if len(changes) != 1 {
		t.Fatalf("changes %d", len(changes))
	}
	paths := r.Paths(pfx("1.0.0.0/24"))
	if len(paths) != 2 {
		t.Fatalf("paths %d", len(paths))
	}
	if paths[0].Peer != peerR2.Addr || paths[1].Peer != peerR3.Addr {
		t.Fatalf("ranking wrong: best via %s", paths[0].Peer)
	}
	if r.Best(pfx("1.0.0.0/24")).Peer != peerR2.Addr {
		t.Fatal("Best disagrees with Paths[0]")
	}
}

func TestRIBImplicitWithdraw(t *testing.T) {
	r := NewRIB()
	r.Update(peerR2, announce("203.0.113.1", "1.0.0.0/24"))
	// Same peer re-announces with a different next-hop: replaces, not adds.
	r.Update(peerR2, announce("203.0.113.9", "1.0.0.0/24"))
	paths := r.Paths(pfx("1.0.0.0/24"))
	if len(paths) != 1 {
		t.Fatalf("implicit withdraw failed: %d paths", len(paths))
	}
	if paths[0].NextHop() != addr("203.0.113.9") {
		t.Fatal("replacement did not take effect")
	}
}

func TestRIBWithdrawRemovesOnlyThatPeer(t *testing.T) {
	r := NewRIB()
	r.Update(peerR2, announce("203.0.113.1", "1.0.0.0/24"))
	r.Update(peerR3, announce("198.51.100.2", "1.0.0.0/24"))
	changes := r.Update(peerR2, withdraw("1.0.0.0/24"))
	if len(changes) != 1 {
		t.Fatalf("changes %d", len(changes))
	}
	paths := r.Paths(pfx("1.0.0.0/24"))
	if len(paths) != 1 || paths[0].Peer != peerR3.Addr {
		t.Fatalf("paths after withdraw: %v", paths)
	}
	// Withdrawing a prefix the peer never announced changes nothing.
	if ch := r.Update(peerR2, withdraw("9.9.9.0/24")); len(ch) != 0 {
		t.Fatalf("phantom withdraw produced changes: %v", ch)
	}
}

func TestRIBRemovePeerDropsEverything(t *testing.T) {
	r := NewRIB()
	r.Update(peerR2, announce("203.0.113.1", "1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"))
	r.Update(peerR3, announce("198.51.100.2", "1.0.0.0/24"))
	changes := r.RemovePeer(peerR2.Addr)
	if len(changes) != 3 {
		t.Fatalf("RemovePeer changes %d, want 3", len(changes))
	}
	if r.Len() != 1 {
		t.Fatalf("RIB len %d, want 1 (only 1.0.0.0/24 via R3 left)", r.Len())
	}
	if best := r.Best(pfx("1.0.0.0/24")); best == nil || best.Peer != peerR3.Addr {
		t.Fatal("survivor path wrong")
	}
	if r.Best(pfx("2.0.0.0/24")) != nil {
		t.Fatal("unreachable prefix still has a best path")
	}
}

func TestRIBChangeCarriesOldAndNew(t *testing.T) {
	r := NewRIB()
	r.Update(peerR2, announce("203.0.113.1", "1.0.0.0/24"))
	changes := r.Update(peerR3, announce("198.51.100.2", "1.0.0.0/24"))
	ch := changes[0]
	if len(ch.Old) != 1 || len(ch.New) != 2 {
		t.Fatalf("old %d new %d", len(ch.Old), len(ch.New))
	}
	// Old must be the pre-update ranking.
	if ch.Old[0].Peer != peerR2.Addr {
		t.Fatal("old list wrong")
	}
}

func TestRIBWalk(t *testing.T) {
	r := NewRIB()
	r.Update(peerR2, announce("203.0.113.1", "1.0.0.0/24", "2.0.0.0/24"))
	seen := map[netip.Prefix]int{}
	r.Walk(func(p netip.Prefix, paths []*Path) bool {
		seen[p] = len(paths)
		return true
	})
	if len(seen) != 2 || seen[pfx("1.0.0.0/24")] != 1 {
		t.Fatalf("walk saw %v", seen)
	}
	count := 0
	r.Walk(func(netip.Prefix, []*Path) bool { count++; return false })
	if count != 1 {
		t.Fatal("walk early stop")
	}
}

func TestRIBPathsReturnsCopy(t *testing.T) {
	r := NewRIB()
	r.Update(peerR2, announce("203.0.113.1", "1.0.0.0/24"))
	ps := r.Paths(pfx("1.0.0.0/24"))
	ps[0] = nil // mutate the returned slice
	if r.Best(pfx("1.0.0.0/24")) == nil {
		t.Fatal("RIB shares its internal slice")
	}
}
