package bgp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// Origin is the ORIGIN path attribute value.
type Origin uint8

// Origin values; lower is preferred by the decision process.
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "INCOMPLETE"
	}
	return fmt.Sprintf("ORIGIN(%d)", uint8(o))
}

// Path attribute type codes (RFC 4271 §5, RFC 1997).
const (
	attrOrigin          uint8 = 1
	attrASPath          uint8 = 2
	attrNextHop         uint8 = 3
	attrMED             uint8 = 4
	attrLocalPref       uint8 = 5
	attrAtomicAggregate uint8 = 6
	attrAggregator      uint8 = 7
	attrCommunities     uint8 = 8
)

// Attribute flag bits.
const (
	flagOptional   uint8 = 0x80
	flagTransitive uint8 = 0x40
	flagPartial    uint8 = 0x20
	flagExtLen     uint8 = 0x10
)

// SegType is an AS_PATH segment type.
type SegType uint8

// AS_PATH segment types.
const (
	SegSet      SegType = 1
	SegSequence SegType = 2
)

// Segment is one AS_PATH segment.
type Segment struct {
	Type SegType
	ASNs []uint32
}

// ASPath is an ordered list of segments.
type ASPath []Segment

// Sequence builds a single AS_SEQUENCE path, the common case.
func Sequence(asns ...uint32) ASPath {
	if len(asns) == 0 {
		return nil
	}
	return ASPath{{Type: SegSequence, ASNs: asns}}
}

// Length returns the decision-process length: each AS in a SEQUENCE counts
// 1, each SET counts 1 total (RFC 4271 §9.1.2.2).
func (p ASPath) Length() int {
	n := 0
	for _, s := range p {
		if s.Type == SegSet {
			n++
		} else {
			n += len(s.ASNs)
		}
	}
	return n
}

// First returns the leftmost (neighbor) AS, or 0 for an empty path.
func (p ASPath) First() uint32 {
	for _, s := range p {
		if len(s.ASNs) > 0 {
			return s.ASNs[0]
		}
	}
	return 0
}

// Prepend returns a new path with asn prepended, extending the leading
// SEQUENCE or creating one.
func (p ASPath) Prepend(asn uint32) ASPath {
	if len(p) > 0 && p[0].Type == SegSequence && len(p[0].ASNs) < 255 {
		head := Segment{Type: SegSequence, ASNs: append([]uint32{asn}, p[0].ASNs...)}
		return append(ASPath{head}, p[1:]...)
	}
	return append(ASPath{{Type: SegSequence, ASNs: []uint32{asn}}}, p...)
}

// Equal reports whether two paths are segment-for-segment identical.
func (p ASPath) Equal(q ASPath) bool {
	if len(p) != len(q) {
		return false
	}
	for i, s := range p {
		t := q[i]
		if s.Type != t.Type || len(s.ASNs) != len(t.ASNs) {
			return false
		}
		for j, a := range s.ASNs {
			if a != t.ASNs[j] {
				return false
			}
		}
	}
	return true
}

// Contains reports whether asn appears anywhere in the path (loop check).
func (p ASPath) Contains(asn uint32) bool {
	for _, s := range p {
		for _, a := range s.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// Clone deep-copies the path.
func (p ASPath) Clone() ASPath {
	if p == nil {
		return nil
	}
	out := make(ASPath, len(p))
	for i, s := range p {
		out[i] = Segment{Type: s.Type, ASNs: append([]uint32(nil), s.ASNs...)}
	}
	return out
}

func (p ASPath) String() string {
	var parts []string
	for _, s := range p {
		var asns []string
		for _, a := range s.ASNs {
			asns = append(asns, fmt.Sprint(a))
		}
		inner := strings.Join(asns, " ")
		if s.Type == SegSet {
			inner = "{" + inner + "}"
		}
		parts = append(parts, inner)
	}
	return strings.Join(parts, " ")
}

// Community is an RFC 1997 community value.
type Community uint32

func (c Community) String() string {
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xffff)
}

// Aggregator is the AGGREGATOR attribute.
type Aggregator struct {
	AS uint32
	ID netip.Addr
}

// RawAttr preserves an attribute this implementation does not interpret, so
// the controller re-advertises routes without information loss — essential
// for a transparent interposer.
type RawAttr struct {
	Flags uint8
	Code  uint8
	Data  []byte
}

// Attrs is the parsed set of path attributes of one UPDATE.
type Attrs struct {
	Origin Origin
	ASPath ASPath
	// NextHop is the attribute the supercharged controller rewrites to a
	// virtual next-hop before re-announcing to the router.
	NextHop netip.Addr

	MED          uint32
	HasMED       bool
	LocalPref    uint32
	HasLocalPref bool

	AtomicAggregate bool
	Aggregator      *Aggregator
	Communities     []Community
	Others          []RawAttr
}

// Clone deep-copies the attributes; the controller mutates clones, never
// the RIB's copy.
func (a *Attrs) Clone() *Attrs {
	if a == nil {
		return nil
	}
	out := *a
	out.ASPath = a.ASPath.Clone()
	out.Communities = append([]Community(nil), a.Communities...)
	if a.Aggregator != nil {
		agg := *a.Aggregator
		out.Aggregator = &agg
	}
	if a.Others != nil {
		out.Others = make([]RawAttr, len(a.Others))
		for i, r := range a.Others {
			out.Others[i] = RawAttr{Flags: r.Flags, Code: r.Code, Data: append([]byte(nil), r.Data...)}
		}
	}
	return &out
}

// Equal reports semantic equality of two attribute sets — the test a
// churn filter needs: a peer re-announcing a route with byte-identical
// attributes (a graceful-restart replay, background UPDATE noise) is not
// a routing change, however many times the attributes were re-parsed
// into fresh objects.
func (a *Attrs) Equal(b *Attrs) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Origin != b.Origin || a.NextHop != b.NextHop ||
		a.MED != b.MED || a.HasMED != b.HasMED ||
		a.LocalPref != b.LocalPref || a.HasLocalPref != b.HasLocalPref ||
		a.AtomicAggregate != b.AtomicAggregate {
		return false
	}
	if (a.Aggregator == nil) != (b.Aggregator == nil) {
		return false
	}
	if a.Aggregator != nil && *a.Aggregator != *b.Aggregator {
		return false
	}
	if !a.ASPath.Equal(b.ASPath) {
		return false
	}
	if len(a.Communities) != len(b.Communities) {
		return false
	}
	for i, c := range a.Communities {
		if c != b.Communities[i] {
			return false
		}
	}
	if len(a.Others) != len(b.Others) {
		return false
	}
	for i, r := range a.Others {
		o := b.Others[i]
		if r.Flags != o.Flags || r.Code != o.Code || !bytes.Equal(r.Data, o.Data) {
			return false
		}
	}
	return true
}

func (a *Attrs) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "origin=%s as-path=[%s] nh=%s", a.Origin, a.ASPath, a.NextHop)
	if a.HasMED {
		fmt.Fprintf(&b, " med=%d", a.MED)
	}
	if a.HasLocalPref {
		fmt.Fprintf(&b, " local-pref=%d", a.LocalPref)
	}
	return b.String()
}

func appendAttrHeader(out []byte, flags, code uint8, bodyLen int) []byte {
	if bodyLen > 255 {
		flags |= flagExtLen
		out = append(out, flags, code)
		return binary.BigEndian.AppendUint16(out, uint16(bodyLen))
	}
	return append(out, flags, code, byte(bodyLen))
}

func (a *Attrs) marshal(c Codec) ([]byte, error) {
	var out []byte

	out = appendAttrHeader(out, flagTransitive, attrOrigin, 1)
	out = append(out, byte(a.Origin))

	asPath, err := marshalASPath(a.ASPath, c.ASN4)
	if err != nil {
		return nil, err
	}
	out = appendAttrHeader(out, flagTransitive, attrASPath, len(asPath))
	out = append(out, asPath...)

	if !a.NextHop.Is4() {
		return nil, fmt.Errorf("%w: NEXT_HOP %v is not IPv4", ErrBadMessage, a.NextHop)
	}
	nh := a.NextHop.As4()
	out = appendAttrHeader(out, flagTransitive, attrNextHop, 4)
	out = append(out, nh[:]...)

	if a.HasMED {
		out = appendAttrHeader(out, flagOptional, attrMED, 4)
		out = binary.BigEndian.AppendUint32(out, a.MED)
	}
	if a.HasLocalPref {
		out = appendAttrHeader(out, flagTransitive, attrLocalPref, 4)
		out = binary.BigEndian.AppendUint32(out, a.LocalPref)
	}
	if a.AtomicAggregate {
		out = appendAttrHeader(out, flagTransitive, attrAtomicAggregate, 0)
	}
	if a.Aggregator != nil {
		if !a.Aggregator.ID.Is4() {
			return nil, fmt.Errorf("%w: AGGREGATOR id not IPv4", ErrBadMessage)
		}
		id := a.Aggregator.ID.As4()
		if c.ASN4 {
			out = appendAttrHeader(out, flagOptional|flagTransitive, attrAggregator, 8)
			out = binary.BigEndian.AppendUint32(out, a.Aggregator.AS)
		} else {
			out = appendAttrHeader(out, flagOptional|flagTransitive, attrAggregator, 6)
			out = binary.BigEndian.AppendUint16(out, uint16(a.Aggregator.AS))
		}
		out = append(out, id[:]...)
	}
	if len(a.Communities) > 0 {
		out = appendAttrHeader(out, flagOptional|flagTransitive, attrCommunities, 4*len(a.Communities))
		for _, cm := range a.Communities {
			out = binary.BigEndian.AppendUint32(out, uint32(cm))
		}
	}
	for _, r := range a.Others {
		out = appendAttrHeader(out, r.Flags&^flagExtLen, r.Code, len(r.Data))
		out = append(out, r.Data...)
	}
	return out, nil
}

func marshalASPath(p ASPath, asn4 bool) ([]byte, error) {
	var out []byte
	for _, s := range p {
		if len(s.ASNs) == 0 || len(s.ASNs) > 255 {
			return nil, fmt.Errorf("%w: AS_PATH segment with %d ASNs", ErrBadMessage, len(s.ASNs))
		}
		out = append(out, byte(s.Type), byte(len(s.ASNs)))
		for _, asn := range s.ASNs {
			if asn4 {
				out = binary.BigEndian.AppendUint32(out, asn)
			} else {
				if asn > 0xffff {
					asn = uint32(ASTrans)
				}
				out = binary.BigEndian.AppendUint16(out, uint16(asn))
			}
		}
	}
	return out, nil
}

func parseASPath(b []byte, asn4 bool) (ASPath, error) {
	var p ASPath
	width := 2
	if asn4 {
		width = 4
	}
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: truncated AS_PATH segment header", ErrBadMessage)
		}
		st, n := SegType(b[0]), int(b[1])
		if st != SegSet && st != SegSequence {
			return nil, fmt.Errorf("%w: AS_PATH segment type %d", ErrBadMessage, st)
		}
		need := 2 + n*width
		if len(b) < need {
			return nil, fmt.Errorf("%w: truncated AS_PATH segment", ErrBadMessage)
		}
		seg := Segment{Type: st, ASNs: make([]uint32, n)}
		for i := 0; i < n; i++ {
			off := 2 + i*width
			if asn4 {
				seg.ASNs[i] = binary.BigEndian.Uint32(b[off : off+4])
			} else {
				seg.ASNs[i] = uint32(binary.BigEndian.Uint16(b[off : off+2]))
			}
		}
		p = append(p, seg)
		b = b[need:]
	}
	return p, nil
}

// ParseAttrs decodes one raw path-attribute block (the byte range an
// UPDATE's "total path attribute length" frames, without message
// framing around it). MRT TABLE_DUMP_V2 RIB entries carry exactly this
// block per route, which is why it is exported: internal/mrt decodes
// dump entries through the same parser — and the same validation — the
// live session path uses.
func (c Codec) ParseAttrs(b []byte) (*Attrs, error) {
	return parseAttrs(b, c)
}

// MarshalAttrs encodes a as a raw path-attribute block — the inverse
// of ParseAttrs, used by the MRT fixture writer to author RIB entries.
func (c Codec) MarshalAttrs(a *Attrs) ([]byte, error) {
	return a.marshal(c)
}

func parseAttrs(b []byte, c Codec) (*Attrs, error) {
	a := &Attrs{}
	seen := map[uint8]bool{}
	for len(b) > 0 {
		if len(b) < 3 {
			return nil, fmt.Errorf("%w: truncated attribute header", ErrBadMessage)
		}
		flags, code := b[0], b[1]
		var alen, off int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return nil, fmt.Errorf("%w: truncated extended attribute header", ErrBadMessage)
			}
			alen, off = int(binary.BigEndian.Uint16(b[2:4])), 4
		} else {
			alen, off = int(b[2]), 3
		}
		if len(b) < off+alen {
			return nil, fmt.Errorf("%w: attribute %d body truncated", ErrBadMessage, code)
		}
		body := b[off : off+alen]
		b = b[off+alen:]
		if seen[code] {
			return nil, fmt.Errorf("%w: duplicate attribute %d", ErrBadMessage, code)
		}
		seen[code] = true

		switch code {
		case attrOrigin:
			if alen != 1 || body[0] > 2 {
				return nil, fmt.Errorf("%w: ORIGIN", ErrBadMessage)
			}
			a.Origin = Origin(body[0])
		case attrASPath:
			p, err := parseASPath(body, c.ASN4)
			if err != nil {
				return nil, err
			}
			a.ASPath = p
		case attrNextHop:
			if alen != 4 {
				return nil, fmt.Errorf("%w: NEXT_HOP length %d", ErrBadMessage, alen)
			}
			a.NextHop = netip.AddrFrom4([4]byte(body))
		case attrMED:
			if alen != 4 {
				return nil, fmt.Errorf("%w: MED length %d", ErrBadMessage, alen)
			}
			a.MED, a.HasMED = binary.BigEndian.Uint32(body), true
		case attrLocalPref:
			if alen != 4 {
				return nil, fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadMessage, alen)
			}
			a.LocalPref, a.HasLocalPref = binary.BigEndian.Uint32(body), true
		case attrAtomicAggregate:
			if alen != 0 {
				return nil, fmt.Errorf("%w: ATOMIC_AGGREGATE length %d", ErrBadMessage, alen)
			}
			a.AtomicAggregate = true
		case attrAggregator:
			switch {
			case c.ASN4 && alen == 8:
				a.Aggregator = &Aggregator{AS: binary.BigEndian.Uint32(body[:4]), ID: netip.AddrFrom4([4]byte(body[4:8]))}
			case !c.ASN4 && alen == 6:
				a.Aggregator = &Aggregator{AS: uint32(binary.BigEndian.Uint16(body[:2])), ID: netip.AddrFrom4([4]byte(body[2:6]))}
			default:
				return nil, fmt.Errorf("%w: AGGREGATOR length %d", ErrBadMessage, alen)
			}
		case attrCommunities:
			if alen%4 != 0 {
				return nil, fmt.Errorf("%w: COMMUNITIES length %d", ErrBadMessage, alen)
			}
			for i := 0; i < alen; i += 4 {
				a.Communities = append(a.Communities, Community(binary.BigEndian.Uint32(body[i:i+4])))
			}
		default:
			if flags&flagOptional == 0 {
				return nil, fmt.Errorf("%w: unrecognized well-known attribute %d", ErrBadMessage, code)
			}
			// Optional: preserve transitive ones (with partial bit set on
			// re-advertisement per RFC 4271 §5); drop non-transitive. The
			// extended-length bit is an encoding artifact, not a semantic
			// one — marshal re-derives it from the body size — so it is
			// cleared here to make parse→marshal→parse a fixed point.
			if flags&flagTransitive != 0 {
				a.Others = append(a.Others, RawAttr{
					Flags: (flags | flagPartial) &^ flagExtLen,
					Code:  code,
					Data:  append([]byte(nil), body...),
				})
			}
		}
	}
	return a, nil
}
