package bgp

import (
	"fmt"
	"net/netip"
	"sort"
)

// Path is one route for a prefix as stored in the RIB, with the attributes
// and the per-peer metadata the decision process needs.
type Path struct {
	Peer      netip.Addr // session address of the advertising peer
	PeerAS    uint32
	PeerID    netip.Addr // peer's BGP identifier
	IBGP      bool
	IGPMetric uint32 // configured cost to reach the peer's next-hop
	Weight    uint32 // Cisco-style local weight; highest wins, default 0
	Attrs     *Attrs

	stamp uint64 // arrival order; newer replaces older from the same peer
}

// NextHop returns the route's NEXT_HOP attribute.
func (p *Path) NextHop() netip.Addr { return p.Attrs.NextHop }

// LocalPref returns LOCAL_PREF or the conventional default 100.
func (p *Path) LocalPref() uint32 {
	if p.Attrs.HasLocalPref {
		return p.Attrs.LocalPref
	}
	return 100
}

// MED returns the MED or 0 (the RFC's "missing as best" convention).
func (p *Path) MED() uint32 {
	if p.Attrs.HasMED {
		return p.Attrs.MED
	}
	return 0
}

func (p *Path) String() string {
	return fmt.Sprintf("via %s (peer %s, lp %d, as-path [%s])", p.NextHop(), p.Peer, p.LocalPref(), p.Attrs.ASPath)
}

// DecisionConfig tunes the decision process.
type DecisionConfig struct {
	// AlwaysCompareMED compares MED across neighbor ASes (the "med
	// always" knob); default is RFC behavior (same neighbor AS only).
	AlwaysCompareMED bool
}

// Compare implements the BGP decision process as a total order over paths:
// it returns a negative value when a is preferred over b, positive when b
// wins, and never 0 for distinct peers (router ID and peer address break
// ties), which is what makes the ranking — and hence the controller's
// backup-group computation — deterministic. The steps, in order:
//
//  1. highest Weight (local, Cisco-style)
//  2. highest LOCAL_PREF
//  3. shortest AS_PATH
//  4. lowest ORIGIN
//  5. lowest MED (same neighbor AS unless AlwaysCompareMED)
//  6. eBGP over iBGP
//  7. lowest IGP metric to the next-hop
//  8. lowest peer router ID
//  9. lowest peer address
func (cfg DecisionConfig) Compare(a, b *Path) int {
	if a.Weight != b.Weight {
		if a.Weight > b.Weight {
			return -1
		}
		return 1
	}
	if la, lb := a.LocalPref(), b.LocalPref(); la != lb {
		if la > lb {
			return -1
		}
		return 1
	}
	if la, lb := a.Attrs.ASPath.Length(), b.Attrs.ASPath.Length(); la != lb {
		return la - lb
	}
	if oa, ob := a.Attrs.Origin, b.Attrs.Origin; oa != ob {
		return int(oa) - int(ob)
	}
	if cfg.AlwaysCompareMED || a.Attrs.ASPath.First() == b.Attrs.ASPath.First() {
		if ma, mb := a.MED(), b.MED(); ma != mb {
			if ma < mb {
				return -1
			}
			return 1
		}
	}
	if a.IBGP != b.IBGP {
		if !a.IBGP {
			return -1
		}
		return 1
	}
	if a.IGPMetric != b.IGPMetric {
		if a.IGPMetric < b.IGPMetric {
			return -1
		}
		return 1
	}
	if a.PeerID != b.PeerID {
		return a.PeerID.Compare(b.PeerID)
	}
	return a.Peer.Compare(b.Peer)
}

// Rank sorts paths best-first in place according to the decision process.
func (cfg DecisionConfig) Rank(paths []*Path) {
	sort.SliceStable(paths, func(i, j int) bool {
		return cfg.Compare(paths[i], paths[j]) < 0
	})
}
