package bgp

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
)

// fuzzSeedMessages marshals a representative message mix as fuzz seeds:
// the mutator starts from valid wire images of every message type
// instead of rediscovering the marker and framing byte by byte.
func fuzzSeedMessages(f *testing.F) {
	f.Helper()
	for _, asn4 := range []bool{false, true} {
		c := Codec{ASN4: asn4}
		msgs := []Message{
			&Open{Version: 4, AS: 65001, HoldTime: 90, ID: addr("192.0.2.1"),
				Caps: []Capability{{Code: CapASN4, Data: []byte{0, 0, 0xfd, 0xe9}}}},
			&Keepalive{},
			&Notification{Code: NotifCease, Subcode: 4},
			&Update{Attrs: fullAttrs(), NLRI: []netip.Prefix{pfx("10.0.0.0/8"), pfx("192.0.2.0/24")}},
			&Update{Withdrawn: []netip.Prefix{pfx("198.51.100.0/24")}},
		}
		for _, m := range msgs {
			if raw, err := c.Marshal(m); err == nil {
				f.Add(raw)
			}
		}
	}
}

// FuzzReadMessage holds the message codec's trust-boundary contract: a
// hostile byte stream either decodes or fails with a typed error —
// never a panic — and whatever decodes must survive a marshal →
// unmarshal round trip when re-marshalling succeeds.
func FuzzReadMessage(f *testing.F) {
	fuzzSeedMessages(f)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, HeaderLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, asn4 := range []bool{false, true} {
			c := Codec{ASN4: asn4}
			r := bytes.NewReader(data)
			for {
				msg, err := c.ReadMessage(r)
				if err != nil {
					// io.EOF / io.ErrUnexpectedEOF end the stream; decode
					// failures must be the codec's typed errors.
					if err == io.EOF || err == io.ErrUnexpectedEOF {
						break
					}
					if !errors.Is(err, ErrBadMarker) && !errors.Is(err, ErrBadLength) && !errors.Is(err, ErrBadMessage) {
						t.Fatalf("asn4=%v: untyped error: %v", asn4, err)
					}
					break
				}
				// Decoded messages re-marshal and re-decode to semantic
				// equality. UPDATEs with attributes but no NLRI may carry
				// an unmarshalable next-hop (the wire allows it, Marshal
				// does not re-derive it) — a Marshal error is acceptable
				// there, silent divergence is not.
				raw, err := c.Marshal(msg)
				if err != nil {
					continue
				}
				again, err := c.Unmarshal(raw)
				if err != nil {
					t.Fatalf("asn4=%v: re-marshaled message does not decode: %v", asn4, err)
				}
				assertSameMessage(t, msg, again)
			}
		}
	})
}

// FuzzParseAttrs drives the attribute block parser — the path every MRT
// RIB entry takes — with the same never-panic and fixed-point contract.
func FuzzParseAttrs(f *testing.F) {
	for _, asn4 := range []bool{false, true} {
		c := Codec{ASN4: asn4}
		if raw, err := c.MarshalAttrs(fullAttrs()); err == nil {
			f.Add(raw)
		}
	}
	// An unknown optional-transitive attribute with extended length: the
	// parser must normalize it into the partial-bit canonical form.
	f.Add([]byte{0xd0, 0xfe, 0x00, 0x03, 1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, asn4 := range []bool{false, true} {
			c := Codec{ASN4: asn4}
			attrs, err := c.ParseAttrs(data)
			if err != nil {
				continue // any typed parse error is fine; panics are the bug
			}
			raw, err := c.MarshalAttrs(attrs)
			if err != nil {
				// Parseable blocks may still be unmarshalable (e.g. no
				// next-hop attribute present): acceptable.
				continue
			}
			again, err := c.ParseAttrs(raw)
			if err != nil {
				t.Fatalf("asn4=%v: re-marshaled attrs do not parse: %v", asn4, err)
			}
			if !attrs.Equal(again) {
				t.Fatalf("asn4=%v: parse/marshal fixed point broken:\n  first  %+v\n  second %+v", asn4, attrs, again)
			}
		}
	})
}

// assertSameMessage compares two decoded messages semantically, per type.
func assertSameMessage(t *testing.T, a, b Message) {
	t.Helper()
	if a.Type() != b.Type() {
		t.Fatalf("round trip changed message type: %v -> %v", a.Type(), b.Type())
	}
	switch am := a.(type) {
	case *Update:
		bm := b.(*Update)
		if len(am.Withdrawn) != len(bm.Withdrawn) || len(am.NLRI) != len(bm.NLRI) {
			t.Fatalf("round trip changed prefix counts: %v -> %v", am, bm)
		}
		for i := range am.Withdrawn {
			if am.Withdrawn[i] != bm.Withdrawn[i] {
				t.Fatalf("withdrawn[%d]: %v -> %v", i, am.Withdrawn[i], bm.Withdrawn[i])
			}
		}
		for i := range am.NLRI {
			if am.NLRI[i] != bm.NLRI[i] {
				t.Fatalf("nlri[%d]: %v -> %v", i, am.NLRI[i], bm.NLRI[i])
			}
		}
		if (am.Attrs == nil) != (bm.Attrs == nil) {
			t.Fatalf("round trip dropped attrs: %v -> %v", am, bm)
		}
		if am.Attrs != nil && !am.Attrs.Equal(bm.Attrs) {
			t.Fatalf("attrs: %v -> %v", am.Attrs, bm.Attrs)
		}
	case *Open:
		bm := b.(*Open)
		if am.Version != bm.Version || am.AS != bm.AS || am.HoldTime != bm.HoldTime || am.ID != bm.ID {
			t.Fatalf("open: %+v -> %+v", am, bm)
		}
		// CapASN4 is codec-managed (marshal always advertises it, once),
		// so compare the capability lists with it filtered out.
		if got, want := nonASN4Caps(bm.Caps), nonASN4Caps(am.Caps); len(got) != len(want) {
			t.Fatalf("open caps: %+v -> %+v", am.Caps, bm.Caps)
		}
	case *Notification:
		bm := b.(*Notification)
		if am.Code != bm.Code || am.Subcode != bm.Subcode || !bytes.Equal(am.Data, bm.Data) {
			t.Fatalf("notification: %+v -> %+v", am, bm)
		}
	}
}

// An unknown optional-transitive attribute that arrived with the
// extended-length flag must parse to the same canonical form as its
// compact-length twin: the flag is an encoding artifact marshal
// re-derives, and storing it would break the parse→marshal→parse fixed
// point FuzzParseAttrs holds (the bug this regression pins down).
func TestParseAttrsNormalizesExtendedLength(t *testing.T) {
	c := Codec{ASN4: true}
	compact := []byte{0xc0, 0xfe, 3, 1, 2, 3}     // flags: optional|transitive
	extended := []byte{0xd0, 0xfe, 0, 3, 1, 2, 3} // same, with extLen
	// Neither block has a next-hop, so parse-only comparison:
	a1, err := c.ParseAttrs(compact)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.ParseAttrs(extended)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Fatalf("extended-length encoding changed the parse:\n  compact  %+v\n  extended %+v", a1, a2)
	}
	if len(a2.Others) != 1 || a2.Others[0].Flags&0x10 != 0 {
		t.Fatalf("stored flags %#x still carry the extended-length bit", a2.Others[0].Flags)
	}
}

// An OPEN that already lists the ASN4 capability (every decoded OPEN
// does — marshal adds it) must not grow a duplicate on re-marshal.
// Found by FuzzReadMessage: parse→marshal appended a second CapASN4 per
// cycle, so capability lists grew without bound across round trips.
func TestOpenRemarshalKeepsOneASN4Cap(t *testing.T) {
	c := Codec{}
	raw, err := c.Marshal(&Open{Version: 4, AS: 65001, HoldTime: 90, ID: addr("192.0.2.1")})
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		msg, err := c.Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		o := msg.(*Open)
		n := 0
		for _, cap := range o.Caps {
			if cap.Code == CapASN4 {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("cycle %d: %d ASN4 capabilities, want exactly 1", cycle, n)
		}
		if o.AS != 65001 {
			t.Fatalf("cycle %d: AS = %d", cycle, o.AS)
		}
		if raw, err = c.Marshal(o); err != nil {
			t.Fatal(err)
		}
	}
}

func nonASN4Caps(caps []Capability) []Capability {
	var out []Capability
	for _, c := range caps {
		if c.Code != CapASN4 {
			out = append(out, c)
		}
	}
	return out
}
