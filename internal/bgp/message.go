// Package bgp implements the subset of BGP-4 (RFC 4271) that the
// supercharged controller and the legacy-router model need to speak to each
// other and to real peers: the full message codec (OPEN with capability
// negotiation, UPDATE with path attributes and NLRI, KEEPALIVE,
// NOTIFICATION), a practical session state machine over net.Conn, per-peer
// Adj-RIB-In plus a Loc-RIB, and the complete decision process returning
// the *ordered* list of paths per prefix — the input the paper's Listing 1
// consumes to derive (primary, backup) groups.
//
// The controller in the paper extends ExaBGP; this package plays that role.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
)

// MsgType is a BGP message type code.
type MsgType uint8

// BGP message types (RFC 4271 §4.1).
const (
	MsgOpen         MsgType = 1
	MsgUpdate       MsgType = 2
	MsgNotification MsgType = 3
	MsgKeepalive    MsgType = 4
)

func (t MsgType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	}
	return fmt.Sprintf("TYPE(%d)", uint8(t))
}

// Wire-format size limits (RFC 4271 §4.1).
const (
	MarkerLen  = 16
	HeaderLen  = 19
	MaxMsgLen  = 4096
	minHoldSec = 3
)

// Message is any BGP message.
type Message interface {
	Type() MsgType
}

// Codec carries per-session encoding state. ASN4 selects 4-octet AS number
// encoding in AS_PATH and AGGREGATOR (RFC 6793), negotiated via capability
// 65 during the OPEN exchange.
type Codec struct {
	ASN4 bool
}

// Decode errors.
var (
	ErrBadMarker  = errors.New("bgp: connection not synchronized (bad marker)")
	ErrBadLength  = errors.New("bgp: bad message length")
	ErrBadMessage = errors.New("bgp: malformed message")
)

// Marshal encodes msg as a complete wire message including header.
func (c Codec) Marshal(msg Message) ([]byte, error) {
	var body []byte
	var err error
	switch m := msg.(type) {
	case *Open:
		body, err = m.marshal()
	case *Update:
		body, err = m.marshal(c)
	case *Notification:
		body = m.marshal()
	case *Keepalive:
		body = nil
	default:
		return nil, fmt.Errorf("bgp: cannot marshal %T", msg)
	}
	if err != nil {
		return nil, err
	}
	total := HeaderLen + len(body)
	if total > MaxMsgLen {
		return nil, fmt.Errorf("%w: %d exceeds %d", ErrBadLength, total, MaxMsgLen)
	}
	out := make([]byte, total)
	for i := 0; i < MarkerLen; i++ {
		out[i] = 0xff
	}
	binary.BigEndian.PutUint16(out[16:18], uint16(total))
	out[18] = byte(msg.Type())
	copy(out[HeaderLen:], body)
	return out, nil
}

// Unmarshal decodes one complete wire message (header included).
func (c Codec) Unmarshal(buf []byte) (Message, error) {
	if len(buf) < HeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadLength, len(buf))
	}
	for i := 0; i < MarkerLen; i++ {
		if buf[i] != 0xff {
			return nil, ErrBadMarker
		}
	}
	length := int(binary.BigEndian.Uint16(buf[16:18]))
	if length < HeaderLen || length > MaxMsgLen || length != len(buf) {
		return nil, fmt.Errorf("%w: header says %d, have %d", ErrBadLength, length, len(buf))
	}
	body := buf[HeaderLen:]
	switch MsgType(buf[18]) {
	case MsgOpen:
		return parseOpen(body)
	case MsgUpdate:
		return parseUpdate(body, c)
	case MsgNotification:
		return parseNotification(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: keepalive with body", ErrBadMessage)
		}
		return &Keepalive{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadMessage, buf[18])
	}
}

// ReadMessage reads exactly one message from r.
func (c Codec) ReadMessage(r io.Reader) (Message, error) {
	hdr := make([]byte, HeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[16:18]))
	if length < HeaderLen || length > MaxMsgLen {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	buf := make([]byte, length)
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		return nil, err
	}
	return c.Unmarshal(buf)
}

// WriteMessage marshals msg and writes it to w.
func (c Codec) WriteMessage(w io.Writer, msg Message) error {
	buf, err := c.Marshal(msg)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Capability codes used by this implementation.
const (
	CapMPExtensions uint8 = 1  // advertised for IPv4/unicast interop
	CapRouteRefresh uint8 = 2  // advertised, accepted, not acted upon
	CapASN4         uint8 = 65 // RFC 6793 4-octet AS numbers
)

// Capability is one BGP capability (RFC 5492).
type Capability struct {
	Code uint8
	Data []byte
}

// Open is a BGP OPEN message.
type Open struct {
	Version  uint8
	AS       uint32 // AS_TRANS (23456) is emitted on the wire when > 65535
	HoldTime uint16 // seconds
	ID       netip.Addr
	Caps     []Capability
}

// ASTrans is the 2-octet placeholder AS (RFC 6793).
const ASTrans uint16 = 23456

// Type implements Message.
func (*Open) Type() MsgType { return MsgOpen }

func (o *Open) marshal() ([]byte, error) {
	if !o.ID.Is4() {
		return nil, fmt.Errorf("%w: OPEN requires IPv4 BGP identifier", ErrBadMessage)
	}
	as2 := uint16(o.AS)
	caps := o.Caps
	if o.AS > 0xffff {
		as2 = ASTrans
	}
	// Always advertise ASN4 with our real AS; RFC 6793 makes this safe.
	// If the caller (or a previous decode) already lists the capability,
	// refresh it in place instead of appending a duplicate — marshal must
	// be a fixed point under parse→marshal cycles, not grow the list by
	// one per round trip.
	asn4 := make([]byte, 4)
	binary.BigEndian.PutUint32(asn4, o.AS)
	caps = append([]Capability{}, caps...)
	refreshed := false
	for i, c := range caps {
		if c.Code == CapASN4 {
			caps[i].Data = asn4
			refreshed = true
			break
		}
	}
	if !refreshed {
		caps = append(caps, Capability{Code: CapASN4, Data: asn4})
	}

	var capBytes []byte
	for _, c := range caps {
		if len(c.Data) > 255 {
			return nil, fmt.Errorf("%w: capability %d too long", ErrBadMessage, c.Code)
		}
		capBytes = append(capBytes, c.Code, byte(len(c.Data)))
		capBytes = append(capBytes, c.Data...)
	}
	// One optional parameter of type 2 (capabilities).
	params := []byte{2, byte(len(capBytes))}
	params = append(params, capBytes...)
	if len(capBytes) > 255 {
		return nil, fmt.Errorf("%w: capabilities exceed one parameter", ErrBadMessage)
	}

	id := o.ID.As4()
	body := make([]byte, 0, 10+len(params))
	body = append(body, o.Version)
	body = binary.BigEndian.AppendUint16(body, as2)
	body = binary.BigEndian.AppendUint16(body, o.HoldTime)
	body = append(body, id[:]...)
	body = append(body, byte(len(params)))
	body = append(body, params...)
	return body, nil
}

func parseOpen(b []byte) (*Open, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("%w: OPEN body %d bytes", ErrBadLength, len(b))
	}
	o := &Open{
		Version:  b[0],
		AS:       uint32(binary.BigEndian.Uint16(b[1:3])),
		HoldTime: binary.BigEndian.Uint16(b[3:5]),
		ID:       netip.AddrFrom4([4]byte{b[5], b[6], b[7], b[8]}),
	}
	optLen := int(b[9])
	opts := b[10:]
	if len(opts) != optLen {
		return nil, fmt.Errorf("%w: OPEN optional params length", ErrBadLength)
	}
	for len(opts) > 0 {
		if len(opts) < 2 {
			return nil, fmt.Errorf("%w: truncated optional parameter", ErrBadMessage)
		}
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return nil, fmt.Errorf("%w: truncated optional parameter body", ErrBadMessage)
		}
		pdata := opts[2 : 2+plen]
		opts = opts[2+plen:]
		if ptype != 2 {
			continue // ignore non-capability parameters
		}
		for len(pdata) > 0 {
			if len(pdata) < 2 || len(pdata) < 2+int(pdata[1]) {
				return nil, fmt.Errorf("%w: truncated capability", ErrBadMessage)
			}
			o.Caps = append(o.Caps, Capability{
				Code: pdata[0],
				Data: append([]byte(nil), pdata[2:2+int(pdata[1])]...),
			})
			pdata = pdata[2+int(pdata[1]):]
		}
	}
	// Surface the 4-octet AS if present.
	if asn4, ok := o.Cap(CapASN4); ok && len(asn4) == 4 {
		real := binary.BigEndian.Uint32(asn4)
		if real != 0 {
			o.AS = real
		}
	}
	return o, nil
}

// Cap returns the data of the first capability with the given code.
func (o *Open) Cap(code uint8) ([]byte, bool) {
	for _, c := range o.Caps {
		if c.Code == code {
			return c.Data, true
		}
	}
	return nil, false
}

// Keepalive is a BGP KEEPALIVE message.
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() MsgType { return MsgKeepalive }

// Notification error codes (RFC 4271 §4.5).
const (
	NotifMessageHeader    uint8 = 1
	NotifOpenMessage      uint8 = 2
	NotifUpdateMessage    uint8 = 3
	NotifHoldTimerExpired uint8 = 4
	NotifFSMError         uint8 = 5
	NotifCease            uint8 = 6
)

// Notification is a BGP NOTIFICATION message; sending one closes the
// session.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (*Notification) Type() MsgType { return MsgNotification }

func (n *Notification) marshal() []byte {
	out := make([]byte, 2+len(n.Data))
	out[0], out[1] = n.Code, n.Subcode
	copy(out[2:], n.Data)
	return out
}

func parseNotification(b []byte) (*Notification, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: NOTIFICATION body %d bytes", ErrBadLength, len(b))
	}
	return &Notification{Code: b[0], Subcode: b[1], Data: append([]byte(nil), b[2:]...)}, nil
}

func (n *Notification) Error() string { return n.String() }

func (n *Notification) String() string {
	name := map[uint8]string{
		NotifMessageHeader:    "message header error",
		NotifOpenMessage:      "OPEN message error",
		NotifUpdateMessage:    "UPDATE message error",
		NotifHoldTimerExpired: "hold timer expired",
		NotifFSMError:         "FSM error",
		NotifCease:            "cease",
	}[n.Code]
	if name == "" {
		name = fmt.Sprintf("code %d", n.Code)
	}
	return fmt.Sprintf("bgp notification: %s (subcode %d)", name, n.Subcode)
}
