package bgp

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestOpenRoundTrip(t *testing.T) {
	c := Codec{}
	in := &Open{Version: 4, AS: 65001, HoldTime: 90, ID: addr("192.0.2.1"),
		Caps: []Capability{{Code: CapRouteRefresh}}}
	buf, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	out := msg.(*Open)
	if out.Version != 4 || out.AS != 65001 || out.HoldTime != 90 || out.ID != addr("192.0.2.1") {
		t.Fatalf("open mismatch: %+v", out)
	}
	if _, ok := out.Cap(CapASN4); !ok {
		t.Fatal("ASN4 capability not auto-advertised")
	}
	if _, ok := out.Cap(CapRouteRefresh); !ok {
		t.Fatal("route-refresh capability lost")
	}
}

func TestOpen4ByteAS(t *testing.T) {
	c := Codec{}
	in := &Open{Version: 4, AS: 4200000001, HoldTime: 30, ID: addr("10.0.0.1")}
	buf, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// On-wire 2-byte field must carry AS_TRANS.
	if got := uint16(buf[HeaderLen+1])<<8 | uint16(buf[HeaderLen+2]); got != ASTrans {
		t.Fatalf("wire AS %d, want AS_TRANS", got)
	}
	out, err := c.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*Open).AS != 4200000001 {
		t.Fatalf("AS = %d after round trip", out.(*Open).AS)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	c := Codec{}
	buf, err := c.Marshal(&Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderLen {
		t.Fatalf("keepalive length %d", len(buf))
	}
	if _, err := c.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	c := Codec{}
	in := &Notification{Code: NotifCease, Subcode: 2, Data: []byte{1, 2}}
	buf, _ := c.Marshal(in)
	msg, err := c.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	out := msg.(*Notification)
	if out.Code != NotifCease || out.Subcode != 2 || !bytes.Equal(out.Data, []byte{1, 2}) {
		t.Fatalf("notification %+v", out)
	}
	if out.Error() == "" || out.String() == "" {
		t.Fatal("empty rendering")
	}
}

func fullAttrs() *Attrs {
	return &Attrs{
		Origin:  OriginIGP,
		ASPath:  Sequence(65001, 3356, 1299),
		NextHop: addr("203.0.113.1"),
		MED:     50, HasMED: true,
		LocalPref: 200, HasLocalPref: true,
		AtomicAggregate: true,
		Aggregator:      &Aggregator{AS: 65001, ID: addr("192.0.2.9")},
		Communities:     []Community{Community(65001<<16 | 100), Community(3356<<16 | 2)},
	}
}

func TestUpdateRoundTripAllAttrs(t *testing.T) {
	for _, asn4 := range []bool{false, true} {
		c := Codec{ASN4: asn4}
		in := &Update{
			Withdrawn: []netip.Prefix{pfx("10.1.0.0/16"), pfx("10.2.3.0/24")},
			Attrs:     fullAttrs(),
			NLRI:      []netip.Prefix{pfx("1.0.0.0/24"), pfx("100.0.0.0/8"), pfx("192.0.2.128/25")},
		}
		buf, err := c.Marshal(in)
		if err != nil {
			t.Fatalf("asn4=%v: %v", asn4, err)
		}
		msg, err := c.Unmarshal(buf)
		if err != nil {
			t.Fatalf("asn4=%v: %v", asn4, err)
		}
		out := msg.(*Update)
		if !reflect.DeepEqual(out.Withdrawn, in.Withdrawn) || !reflect.DeepEqual(out.NLRI, in.NLRI) {
			t.Fatalf("asn4=%v prefixes mismatch: %+v", asn4, out)
		}
		if !reflect.DeepEqual(out.Attrs, in.Attrs) {
			t.Fatalf("asn4=%v attrs mismatch:\n got %+v\nwant %+v", asn4, out.Attrs, in.Attrs)
		}
	}
}

func TestUpdatePureWithdraw(t *testing.T) {
	c := Codec{}
	in := &Update{Withdrawn: []netip.Prefix{pfx("10.0.0.0/8")}}
	buf, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	u := out.(*Update)
	if u.Attrs != nil || len(u.NLRI) != 0 || len(u.Withdrawn) != 1 {
		t.Fatalf("pure withdraw decoded as %+v", u)
	}
}

func TestUpdateNLRIWithoutAttrsRejected(t *testing.T) {
	c := Codec{}
	if _, err := c.Marshal(&Update{NLRI: []netip.Prefix{pfx("10.0.0.0/8")}}); err == nil {
		t.Fatal("marshal accepted NLRI without attributes")
	}
}

func TestUpdate2ByteASPathTruncatesLargeASN(t *testing.T) {
	c := Codec{ASN4: false}
	in := &Update{Attrs: &Attrs{Origin: OriginIGP, ASPath: Sequence(4200000001), NextHop: addr("10.0.0.1")},
		NLRI: []netip.Prefix{pfx("10.0.0.0/8")}}
	buf, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Unmarshal(buf)
	if got := out.(*Update).Attrs.ASPath.First(); got != uint32(ASTrans) {
		t.Fatalf("2-byte AS path carried %d, want AS_TRANS", got)
	}
}

func TestUnknownTransitiveAttrPreserved(t *testing.T) {
	// The interposing controller must not drop attributes it does not
	// understand (e.g. LARGE_COMMUNITY, code 32).
	c := Codec{}
	in := &Update{Attrs: &Attrs{
		Origin: OriginIGP, ASPath: Sequence(65001), NextHop: addr("10.0.0.1"),
		Others: []RawAttr{{Flags: flagOptional | flagTransitive, Code: 32, Data: []byte{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}},
	}, NLRI: []netip.Prefix{pfx("10.0.0.0/8")}}
	buf, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	others := out.(*Update).Attrs.Others
	if len(others) != 1 || others[0].Code != 32 || len(others[0].Data) != 12 {
		t.Fatalf("unknown attr not preserved: %+v", others)
	}
	if others[0].Flags&flagPartial == 0 {
		t.Fatal("partial bit not set on re-advertised unknown attr")
	}
	// Round-trip again: still preserved.
	buf2, err := c.Marshal(out.(*Update))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := c.Unmarshal(buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.(*Update).Attrs.Others) != 1 {
		t.Fatal("unknown attr lost on second hop")
	}
}

func TestBadMarkerRejected(t *testing.T) {
	c := Codec{}
	buf, _ := c.Marshal(&Keepalive{})
	buf[3] = 0
	if _, err := c.Unmarshal(buf); !errors.Is(err, ErrBadMarker) {
		t.Fatalf("err = %v", err)
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	c := Codec{}
	buf, _ := c.Marshal(&Keepalive{})
	buf[17] = 200 // inflate claimed length
	if _, err := c.Unmarshal(buf); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadMessageFromStream(t *testing.T) {
	c := Codec{}
	var stream bytes.Buffer
	msgs := []Message{
		&Keepalive{},
		&Update{Attrs: &Attrs{Origin: OriginIGP, ASPath: Sequence(1), NextHop: addr("10.0.0.1")}, NLRI: []netip.Prefix{pfx("10.0.0.0/8")}},
		&Notification{Code: NotifCease},
	}
	for _, m := range msgs {
		if err := c.WriteMessage(&stream, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := c.ReadMessage(&stream)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("msg %d type %s, want %s", i, got.Type(), want.Type())
		}
	}
}

func TestSplitUpdatesRespectsMessageLimit(t *testing.T) {
	c := Codec{}
	attrs := fullAttrs()
	var nlri []netip.Prefix
	for i := 0; i < 3000; i++ {
		nlri = append(nlri, netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(1 + i/65536), byte(i / 256), byte(i), 0}), 24))
	}
	ups, err := SplitUpdates(attrs, nlri, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) < 2 {
		t.Fatalf("3000 prefixes fit in %d message(s)", len(ups))
	}
	total := 0
	for _, u := range ups {
		total += len(u.NLRI)
		buf, err := c.Marshal(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) > MaxMsgLen {
			t.Fatalf("message %d bytes exceeds limit", len(buf))
		}
	}
	if total != 3000 {
		t.Fatalf("split lost prefixes: %d", total)
	}
}

// Property: NLRI prefix encoding round-trips for arbitrary IPv4 prefixes.
func TestPrefixCodecQuick(t *testing.T) {
	f := func(a [4]byte, bitsRaw uint8) bool {
		bits := int(bitsRaw) % 33
		p := netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked()
		enc, err := marshalPrefixes([]netip.Prefix{p})
		if err != nil {
			return false
		}
		dec, err := parsePrefixes(enc)
		if err != nil || len(dec) != 1 {
			return false
		}
		return dec[0] == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: update marshal/unmarshal is the identity for generated updates.
func TestUpdateRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		c := Codec{ASN4: rng.Intn(2) == 0}
		attrs := &Attrs{
			Origin:  Origin(rng.Intn(3)),
			ASPath:  Sequence(uint32(1+rng.Intn(65000)), uint32(1+rng.Intn(65000))),
			NextHop: netip.AddrFrom4([4]byte{byte(rng.Intn(223) + 1), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
		}
		if rng.Intn(2) == 0 {
			attrs.MED, attrs.HasMED = uint32(rng.Intn(1000)), true
		}
		if rng.Intn(2) == 0 {
			attrs.LocalPref, attrs.HasLocalPref = uint32(rng.Intn(1000)), true
		}
		var nlri, withdrawn []netip.Prefix
		for i := 0; i < 1+rng.Intn(5); i++ {
			nlri = append(nlri, netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(1 + rng.Intn(200)), byte(rng.Intn(256)), 0, 0}), 8+rng.Intn(17)).Masked())
		}
		for i := 0; i < rng.Intn(3); i++ {
			withdrawn = append(withdrawn, netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(1 + rng.Intn(200)), 0, 0, 0}), 8).Masked())
		}
		in := &Update{Withdrawn: withdrawn, Attrs: attrs, NLRI: nlri}
		buf, err := c.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Unmarshal(buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		u := out.(*Update)
		if !reflect.DeepEqual(u.NLRI, in.NLRI) || !reflect.DeepEqual(u.Attrs, in.Attrs) {
			t.Fatalf("trial %d mismatch", trial)
		}
	}
}

// Property: Unmarshal never panics on random bytes with a valid header
// frame.
func TestUnmarshalNeverPanicsQuick(t *testing.T) {
	f := func(body []byte, msgType uint8) bool {
		if len(body) > MaxMsgLen-HeaderLen {
			body = body[:MaxMsgLen-HeaderLen]
		}
		buf := make([]byte, HeaderLen+len(body))
		for i := 0; i < MarkerLen; i++ {
			buf[i] = 0xff
		}
		buf[16] = byte(len(buf) >> 8)
		buf[17] = byte(len(buf))
		buf[18] = msgType
		copy(buf[HeaderLen:], body)
		c := Codec{ASN4: msgType%2 == 0}
		_, _ = c.Unmarshal(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestASPathHelpers(t *testing.T) {
	p := Sequence(65001, 3356)
	if p.Length() != 2 || p.First() != 65001 {
		t.Fatalf("length/first of %v", p)
	}
	p2 := p.Prepend(65000)
	if p2.Length() != 3 || p2.First() != 65000 {
		t.Fatalf("prepend: %v", p2)
	}
	if p.First() != 65001 {
		t.Fatal("prepend mutated the original")
	}
	withSet := ASPath{{Type: SegSequence, ASNs: []uint32{1, 2}}, {Type: SegSet, ASNs: []uint32{3, 4, 5}}}
	if withSet.Length() != 3 { // 2 + 1 for the set
		t.Fatalf("set length = %d", withSet.Length())
	}
	if !withSet.Contains(4) || withSet.Contains(9) {
		t.Fatal("contains")
	}
	if withSet.String() != "1 2 {3 4 5}" {
		t.Fatalf("string %q", withSet.String())
	}
	var empty ASPath
	if empty.Length() != 0 || empty.First() != 0 || empty.Clone() != nil {
		t.Fatal("empty path helpers")
	}
}

func TestCommunityString(t *testing.T) {
	if Community(65001<<16|100).String() != "65001:100" {
		t.Fatal("community rendering")
	}
}

func TestAttrsCloneIsDeep(t *testing.T) {
	a := fullAttrs()
	a.Others = []RawAttr{{Flags: flagOptional | flagTransitive, Code: 32, Data: []byte{1}}}
	b := a.Clone()
	b.ASPath[0].ASNs[0] = 999
	b.Communities[0] = 0
	b.Others[0].Data[0] = 9
	b.Aggregator.AS = 1
	if a.ASPath[0].ASNs[0] == 999 || a.Communities[0] == 0 || a.Others[0].Data[0] == 9 || a.Aggregator.AS == 1 {
		t.Fatal("clone shares storage with the original")
	}
	var nilAttrs *Attrs
	if nilAttrs.Clone() != nil {
		t.Fatal("nil clone")
	}
}

func TestAttrsEqual(t *testing.T) {
	a := fullAttrs()
	a.Others = []RawAttr{{Flags: flagOptional | flagTransitive, Code: 32, Data: []byte{1}}}
	// A deep clone is semantically equal despite fresh storage — the churn
	// filter's case: re-parsed byte-identical attributes.
	if !a.Equal(a.Clone()) || !a.Equal(a) {
		t.Fatal("semantically identical attrs compare unequal")
	}
	mutations := []func(*Attrs){
		func(b *Attrs) { b.Origin = OriginIncomplete },
		func(b *Attrs) { b.NextHop = netip.MustParseAddr("10.9.9.9") },
		func(b *Attrs) { b.MED++ },
		func(b *Attrs) { b.HasMED = !b.HasMED },
		func(b *Attrs) { b.LocalPref++ },
		func(b *Attrs) { b.ASPath = b.ASPath.Prepend(999) },
		func(b *Attrs) { b.ASPath[0].ASNs[0] = 999 },
		func(b *Attrs) { b.Communities[0]++ },
		func(b *Attrs) { b.Communities = b.Communities[:len(b.Communities)-1] },
		func(b *Attrs) { b.Aggregator = nil },
		func(b *Attrs) { b.Aggregator.AS++ },
		func(b *Attrs) { b.Others[0].Data[0] = 9 },
		func(b *Attrs) { b.Others = nil },
	}
	for i, mutate := range mutations {
		b := a.Clone()
		mutate(b)
		if a.Equal(b) {
			t.Fatalf("mutation %d not detected by Equal", i)
		}
	}
	var nilAttrs *Attrs
	if nilAttrs.Equal(a) || a.Equal(nilAttrs) || !nilAttrs.Equal(nil) {
		t.Fatal("nil handling")
	}
}

func BenchmarkUpdateMarshal(b *testing.B) {
	c := Codec{ASN4: true}
	u := &Update{Attrs: fullAttrs(), NLRI: []netip.Prefix{pfx("1.0.0.0/24"), pfx("2.0.0.0/24"), pfx("3.0.0.0/24")}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Marshal(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateUnmarshal(b *testing.B) {
	c := Codec{ASN4: true}
	u := &Update{Attrs: fullAttrs(), NLRI: []netip.Prefix{pfx("1.0.0.0/24"), pfx("2.0.0.0/24"), pfx("3.0.0.0/24")}}
	buf, _ := c.Marshal(u)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
