package bgp

import (
	"net/netip"
	"sync"
)

// Change reports that the ordered path list of a prefix changed. Old and
// New are the ranked lists before and after (best first); both may share
// Path pointers. New is empty when the prefix became unreachable.
type Change struct {
	Prefix netip.Prefix
	Old    []*Path
	New    []*Path
}

// RIB holds, per prefix, every path learned from every peer (the merged
// Adj-RIB-In), ranked by the decision process. The ordered list — not just
// the best path — is the RIB's product, because the supercharged controller
// derives (primary, backup) from positions 0 and 1 (paper Listing 1).
type RIB struct {
	Decision DecisionConfig

	mu       sync.RWMutex
	prefixes map[netip.Prefix][]*Path
	stamp    uint64
}

// NewRIB returns an empty RIB with default decision configuration.
func NewRIB() *RIB {
	return &RIB{prefixes: make(map[netip.Prefix][]*Path)}
}

// Len returns the number of prefixes with at least one path.
func (r *RIB) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.prefixes)
}

// Paths returns the ranked path list for p (best first). The returned slice
// is a copy; the Path pointers are shared and must be treated as immutable.
func (r *RIB) Paths(p netip.Prefix) []*Path {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Path(nil), r.prefixes[p.Masked()]...)
}

// Best returns the best path for p, or nil.
func (r *RIB) Best(p netip.Prefix) *Path {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ps := r.prefixes[p.Masked()]; len(ps) > 0 {
		return ps[0]
	}
	return nil
}

// Walk visits every prefix and its ranked paths. The callback must not
// mutate the slice. Iteration order is unspecified.
func (r *RIB) Walk(fn func(p netip.Prefix, paths []*Path) bool) {
	r.mu.RLock()
	type item struct {
		p  netip.Prefix
		ps []*Path
	}
	items := make([]item, 0, len(r.prefixes))
	for p, ps := range r.prefixes {
		items = append(items, item{p, ps})
	}
	r.mu.RUnlock()
	for _, it := range items {
		if !fn(it.p, it.ps) {
			return
		}
	}
}

// PeerMeta carries the per-peer metadata stamped onto learned paths.
type PeerMeta struct {
	Addr      netip.Addr
	AS        uint32
	ID        netip.Addr
	IBGP      bool
	IGPMetric uint32
	Weight    uint32
}

// Update applies one UPDATE from a peer and returns a Change per prefix
// whose ranked list changed. Announcements replace the peer's previous path
// for the prefix (implicit withdraw); withdrawals remove it.
func (r *RIB) Update(peer PeerMeta, u *Update) []Change {
	r.mu.Lock()
	defer r.mu.Unlock()
	var changes []Change

	for _, p := range u.Withdrawn {
		if ch, changed := r.removeLocked(peer.Addr, p.Masked()); changed {
			changes = append(changes, ch)
		}
	}
	if u.Attrs != nil {
		for _, p := range u.NLRI {
			changes = append(changes, r.announceLocked(peer, p.Masked(), u.Attrs))
		}
	}
	return changes
}

// RemovePeer drops every path learned from the peer (session failure) and
// returns the resulting changes — the event that triggers the slow
// standalone convergence the paper measures.
func (r *RIB) RemovePeer(peerAddr netip.Addr) []Change {
	r.mu.Lock()
	defer r.mu.Unlock()
	var changes []Change
	for p := range r.prefixes {
		if ch, changed := r.removeLocked(peerAddr, p); changed {
			changes = append(changes, ch)
		}
	}
	return changes
}

func (r *RIB) announceLocked(peer PeerMeta, pfx netip.Prefix, attrs *Attrs) Change {
	old := r.prefixes[pfx]
	r.stamp++
	np := &Path{
		Peer: peer.Addr, PeerAS: peer.AS, PeerID: peer.ID,
		IBGP: peer.IBGP, IGPMetric: peer.IGPMetric, Weight: peer.Weight,
		Attrs: attrs, stamp: r.stamp,
	}
	next := make([]*Path, 0, len(old)+1)
	for _, p := range old {
		if p.Peer != peer.Addr {
			next = append(next, p)
		}
	}
	next = append(next, np)
	r.Decision.Rank(next)
	r.prefixes[pfx] = next
	return Change{Prefix: pfx, Old: old, New: next}
}

func (r *RIB) removeLocked(peerAddr netip.Addr, pfx netip.Prefix) (Change, bool) {
	old := r.prefixes[pfx]
	next := make([]*Path, 0, len(old))
	for _, p := range old {
		if p.Peer != peerAddr {
			next = append(next, p)
		}
	}
	if len(next) == len(old) {
		return Change{}, false
	}
	if len(next) == 0 {
		delete(r.prefixes, pfx)
	} else {
		r.prefixes[pfx] = next
	}
	return Change{Prefix: pfx, Old: old, New: next}, true
}
