package bgp

import (
	"net/netip"
	"sort"
	"sync"
)

// Change reports that the ordered path list of a prefix changed. Old and
// New are the ranked lists before and after (best first); both may share
// Path pointers. New is empty when the prefix became unreachable.
//
// Both slices are views into RIB storage, valid until the RIB's next
// mutating call: when an update replaces a peer's own path or removes a
// path from a multi-path list, the list is edited in place (the hot-path
// optimization that keeps per-prefix churn allocation-free) and Old
// aliases New. The one case where Old still reflects the pre-change
// ranking is membership growth (a peer announcing a prefix it did not
// cover before), where the list is re-allocated. Consumers that need a
// stable pre-change snapshot must capture it via Paths before updating;
// every consumer in this repository reads only New, and does so before
// the next RIB mutation.
type Change struct {
	Prefix netip.Prefix
	Old    []*Path
	New    []*Path
}

// ribEntry is one prefix's ranked path list behind a stable pointer, so
// both the main table and the per-peer index reach the same mutable list
// and edits never re-store a map value.
type ribEntry struct {
	paths []*Path
}

// RIB holds, per prefix, every path learned from every peer (the merged
// Adj-RIB-In), ranked by the decision process. The ordered list — not just
// the best path — is the RIB's product, because the supercharged controller
// derives (primary, backup) from positions 0 and 1 (paper Listing 1).
//
// Three structures keep the table fast at full-Internet scale (~1M
// prefixes):
//
//   - path lists live behind stable *ribEntry pointers, so in-place edits
//     (replacement, removal, ranked insertion) never write back through
//     the prefix map;
//   - a per-peer index maps each peer to its entries directly, so
//     RemovePeer — the event behind the paper's headline measurement —
//     visits only the failed peer's own prefixes instead of scanning the
//     whole table;
//   - an attribute interner, so every stored path's Attrs pointer is
//     canonical and an identical re-announcement (graceful-restart
//     replay, background UPDATE noise) is recognized by pointer compare
//     and leaves the ranked list untouched.
//
// Ranked lists are maintained by insertion/removal at the path's rank
// position (the decision process is a total order, so the position is a
// binary search) rather than by re-sorting the list on every update.
// Decision must be configured before the first update: changing it on a
// populated RIB leaves existing lists ranked under the old configuration.
type RIB struct {
	Decision DecisionConfig

	mu       sync.RWMutex
	prefixes map[netip.Prefix]*ribEntry
	byPeer   map[netip.Addr]map[netip.Prefix]*ribEntry
	interner *Interner
	stamp    uint64
	// sizeHint pre-sizes per-peer index sets (NewRIBSized); full-feed
	// peers cover most of the table, so each set is about table-sized.
	sizeHint int
}

// NewRIB returns an empty RIB with default decision configuration.
func NewRIB() *RIB {
	return NewRIBSized(0)
}

// NewRIBSized returns an empty RIB pre-sized for about nPrefixes
// prefixes. At full-table scale (~1M) growing the prefix map through its
// doublings re-zeroes hundreds of megabytes of buckets; a caller that
// knows the table size (the simulator always does) skips all of it.
func NewRIBSized(nPrefixes int) *RIB {
	if nPrefixes < 0 {
		nPrefixes = 0
	}
	return &RIB{
		prefixes: make(map[netip.Prefix]*ribEntry, nPrefixes),
		byPeer:   make(map[netip.Addr]map[netip.Prefix]*ribEntry, 8),
		interner: NewInterner(),
		sizeHint: nPrefixes,
	}
}

// Len returns the number of prefixes with at least one path.
func (r *RIB) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.prefixes)
}

// PeerLen returns the number of prefixes currently carrying a path from
// peerAddr — the work RemovePeer for that peer is proportional to.
func (r *RIB) PeerLen(peerAddr netip.Addr) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byPeer[peerAddr])
}

// Paths returns the ranked path list for p (best first). The returned slice
// is a copy; the Path pointers are shared and must be treated as immutable.
func (r *RIB) Paths(p netip.Prefix) []*Path {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e := r.prefixes[p.Masked()]; e != nil {
		return append([]*Path(nil), e.paths...)
	}
	return nil
}

// Best returns the best path for p, or nil.
func (r *RIB) Best(p netip.Prefix) *Path {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e := r.prefixes[p.Masked()]; e != nil && len(e.paths) > 0 {
		return e.paths[0]
	}
	return nil
}

// Walk visits every prefix and its ranked paths. The callback must not
// mutate the slice. Iteration order is unspecified.
func (r *RIB) Walk(fn func(p netip.Prefix, paths []*Path) bool) {
	r.mu.RLock()
	type item struct {
		p  netip.Prefix
		ps []*Path
	}
	items := make([]item, 0, len(r.prefixes))
	for p, e := range r.prefixes {
		items = append(items, item{p, e.paths})
	}
	r.mu.RUnlock()
	for _, it := range items {
		if !fn(it.p, it.ps) {
			return
		}
	}
}

// PeerMeta carries the per-peer metadata stamped onto learned paths.
type PeerMeta struct {
	Addr      netip.Addr
	AS        uint32
	ID        netip.Addr
	IBGP      bool
	IGPMetric uint32
	Weight    uint32
}

// Update applies one UPDATE from a peer and returns a Change per prefix
// whose ranked list changed (including identical re-announcements, which
// replace the peer's path without reshaping the list — the naive
// standalone router still pays a FIB write for them; only the
// supercharged processor's churn filter suppresses them). Announcements
// replace the peer's previous path for the prefix (implicit withdraw);
// withdrawals remove it.
func (r *RIB) Update(peer PeerMeta, u *Update) []Change {
	return r.UpdateInto(peer, u, nil)
}

// UpdateInto is Update appending into dst (reused from its start), so a
// caller processing a long stream can recycle one buffer across calls
// instead of allocating a change slice per UPDATE. The returned slice
// aliases dst's backing array when capacity suffices.
func (r *RIB) UpdateInto(peer PeerMeta, u *Update, dst []Change) []Change {
	r.mu.Lock()
	defer r.mu.Unlock()
	changes := dst[:0]

	for _, p := range u.Withdrawn {
		if ch, changed := r.removeLocked(peer.Addr, p.Masked()); changed {
			changes = append(changes, ch)
		}
	}
	if u.Attrs != nil {
		attrs := r.interner.Intern(u.Attrs)
		for _, p := range u.NLRI {
			changes = append(changes, r.announceLocked(peer, p.Masked(), attrs))
		}
	}
	return changes
}

// RemovePeer drops every path learned from the peer (session failure) and
// returns the resulting changes — the event that triggers the slow
// standalone convergence the paper measures. The per-peer index makes the
// cost proportional to the peer's own prefix count, not the table size.
func (r *RIB) RemovePeer(peerAddr netip.Addr) []Change {
	return r.RemovePeerInto(peerAddr, nil)
}

// RemovePeerInto is RemovePeer appending into dst (reused from its
// start); see UpdateInto for the buffer contract.
func (r *RIB) RemovePeerInto(peerAddr netip.Addr, dst []Change) []Change {
	r.mu.Lock()
	defer r.mu.Unlock()
	changes := dst[:0]
	// One exact-size allocation up front instead of append growth: the
	// index says how many changes are coming.
	if n := len(r.byPeer[peerAddr]); cap(changes) < n {
		changes = make([]Change, 0, n)
	}
	// The index maps straight to the entries: each removal edits the path
	// list through the entry pointer, and the only prefix-map traffic is
	// deleting prefixes that became unreachable. The peer's whole index
	// set is dropped in one delete afterwards.
	for pfx, e := range r.byPeer[peerAddr] {
		ch, changed := r.removeFromEntryLocked(peerAddr, pfx, e)
		if changed {
			changes = append(changes, ch)
		}
	}
	delete(r.byPeer, peerAddr)
	return changes
}

// RemovePeerScan is the pre-index reference implementation of RemovePeer,
// preserved in behavior: a full-table scan that rebuilds every visited
// prefix's path list into a freshly allocated slice just to discover
// whether the peer was present. It is retained solely as the baseline the
// micro-benchmark compares the indexed implementation against (cmd/bench
// micro, BENCH_micro.json); production paths must use RemovePeer. The
// per-peer index is kept consistent, so the resulting table is identical
// either way.
func (r *RIB) RemovePeerScan(peerAddr netip.Addr) []Change {
	r.mu.Lock()
	defer r.mu.Unlock()
	var changes []Change
	for pfx, e := range r.prefixes {
		old := e.paths
		next := make([]*Path, 0, len(old))
		for _, p := range old {
			if p.Peer != peerAddr {
				next = append(next, p)
			}
		}
		if len(next) == len(old) {
			continue
		}
		r.indexRemoveLocked(peerAddr, pfx)
		if len(next) == 0 {
			delete(r.prefixes, pfx)
		} else {
			e.paths = next
		}
		changes = append(changes, Change{Prefix: pfx, Old: old, New: next})
	}
	return changes
}

func (r *RIB) announceLocked(peer PeerMeta, pfx netip.Prefix, attrs *Attrs) Change {
	e := r.prefixes[pfx]
	if e == nil {
		r.stamp++
		np := &Path{
			Peer: peer.Addr, PeerAS: peer.AS, PeerID: peer.ID,
			IBGP: peer.IBGP, IGPMetric: peer.IGPMetric, Weight: peer.Weight,
			Attrs: attrs, stamp: r.stamp,
		}
		e = &ribEntry{paths: []*Path{np}}
		r.prefixes[pfx] = e
		r.indexAddLocked(peer.Addr, pfx, e)
		return Change{Prefix: pfx, Old: nil, New: e.paths}
	}
	cur := e.paths
	idx := -1
	for i, p := range cur {
		if p.Peer == peer.Addr {
			idx = i
			break
		}
	}
	if idx >= 0 {
		old := cur[idx]
		if old.Attrs == attrs && old.PeerAS == peer.AS && old.PeerID == peer.ID &&
			old.IBGP == peer.IBGP && old.IGPMetric == peer.IGPMetric && old.Weight == peer.Weight {
			// Identical re-announcement (attrs are interned, so semantic
			// equality is pointer equality): the ranked list is untouched
			// and the existing Path object stays — the allocation-free
			// churn fast path.
			return Change{Prefix: pfx, Old: cur, New: cur}
		}
	}
	r.stamp++
	np := &Path{
		Peer: peer.Addr, PeerAS: peer.AS, PeerID: peer.ID,
		IBGP: peer.IBGP, IGPMetric: peer.IGPMetric, Weight: peer.Weight,
		Attrs: attrs, stamp: r.stamp,
	}
	if idx >= 0 {
		// Implicit withdraw with unchanged membership: edit the list in
		// place (remove the old slot, insert at the new rank position)
		// instead of rebuilding it.
		copy(cur[idx:], cur[idx+1:])
		pos := r.rankPos(cur[:len(cur)-1], np)
		copy(cur[pos+1:], cur[pos:len(cur)-1])
		cur[pos] = np
		return Change{Prefix: pfx, Old: cur, New: cur}
	}
	// Membership grows: insert at the rank position into a freshly
	// allocated array — never append onto cur, whose backing may have
	// spare capacity left by an earlier removal; reusing it would shift
	// paths under the returned Old view and break the one case the
	// Change contract keeps pre-change.
	next := make([]*Path, len(cur)+1)
	pos := r.rankPos(cur, np)
	copy(next, cur[:pos])
	next[pos] = np
	copy(next[pos+1:], cur[pos:])
	e.paths = next
	r.indexAddLocked(peer.Addr, pfx, e)
	return Change{Prefix: pfx, Old: cur, New: next}
}

// rankPos returns the insertion position of np in the ranked list paths:
// the first index whose path np beats. The decision process is a total
// order over paths of distinct peers, so binary search over the sorted
// list is exact.
func (r *RIB) rankPos(paths []*Path, np *Path) int {
	return sort.Search(len(paths), func(i int) bool {
		return r.Decision.Compare(np, paths[i]) < 0
	})
}

func (r *RIB) removeLocked(peerAddr netip.Addr, pfx netip.Prefix) (Change, bool) {
	e := r.prefixes[pfx]
	if e == nil {
		return Change{}, false
	}
	ch, changed := r.removeFromEntryLocked(peerAddr, pfx, e)
	if changed {
		r.indexRemoveLocked(peerAddr, pfx)
	}
	return ch, changed
}

// removeFromEntryLocked edits the entry's path list in place without
// touching the per-peer index; RemovePeerInto uses it directly and drops
// the peer's whole index set in one delete.
func (r *RIB) removeFromEntryLocked(peerAddr netip.Addr, pfx netip.Prefix, e *ribEntry) (Change, bool) {
	cur := e.paths
	idx := -1
	for i, p := range cur {
		if p.Peer == peerAddr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return Change{}, false
	}
	if len(cur) == 1 {
		delete(r.prefixes, pfx)
		return Change{Prefix: pfx, Old: cur, New: nil}, true
	}
	// Removal keeps the remaining paths' relative order: shift down in
	// place and truncate, reusing the backing array.
	copy(cur[idx:], cur[idx+1:])
	cur[len(cur)-1] = nil // release the dropped Path to the GC
	e.paths = cur[:len(cur)-1]
	return Change{Prefix: pfx, Old: e.paths, New: e.paths}, true
}

func (r *RIB) indexAddLocked(peer netip.Addr, pfx netip.Prefix, e *ribEntry) {
	set := r.byPeer[peer]
	if set == nil {
		set = make(map[netip.Prefix]*ribEntry, r.sizeHint)
		r.byPeer[peer] = set
	}
	set[pfx] = e
}

func (r *RIB) indexRemoveLocked(peer netip.Addr, pfx netip.Prefix) {
	if set := r.byPeer[peer]; set != nil {
		delete(set, pfx)
		if len(set) == 0 {
			delete(r.byPeer, peer)
		}
	}
}
