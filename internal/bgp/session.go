package bgp

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"supercharged/internal/clock"
)

// State is a BGP FSM state (RFC 4271 §8.2.2).
type State int

// FSM states.
const (
	StateIdle State = iota
	StateConnect
	StateActive
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateConnect:
		return "Connect"
	case StateActive:
		return "Active"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Session defaults.
const (
	DefaultHoldTime     = 90 * time.Second
	DefaultConnectRetry = 5 * time.Second
	sendQueueLen        = 4096
)

// ErrSessionClosed is returned by Send after Stop.
var ErrSessionClosed = errors.New("bgp: session closed")

// SessionConfig configures one BGP adjacency.
type SessionConfig struct {
	LocalAS  uint32
	LocalID  netip.Addr
	PeerAS   uint32     // 0 accepts any AS
	PeerAddr netip.Addr // identifies the peer in logs and the RIB

	// Dial, when set, makes the session actively connect (with
	// ConnectRetry backoff). A passive session waits for Accept.
	Dial func() (net.Conn, error)

	HoldTime     time.Duration // negotiated down to the peer's value; default 90s
	ConnectRetry time.Duration
	Clock        clock.Clock
	Logf         func(format string, args ...any)

	// OnUpdate is called for every received UPDATE, from the session's
	// reader goroutine, in arrival order.
	OnUpdate func(*Update)
	// OnEstablished is called when the session reaches Established.
	OnEstablished func()
	// OnDown is called when an established session goes down, with the
	// reason.
	OnDown func(error)
}

// Session is one BGP adjacency. It reconnects automatically in active mode
// until Stop is called.
type Session struct {
	cfg SessionConfig

	mu      sync.Mutex
	state   State
	conn    net.Conn
	out     chan []byte
	codec   Codec
	stopped bool
	stopCh  chan struct{} // closed by Stop; interrupts retry sleeps
	estCh   chan struct{} // re-made on each down; closed when established

	wg sync.WaitGroup
}

// NewSession returns a configured session; call Start (active) and/or
// Accept (passive) to run it.
func NewSession(cfg SessionConfig) *Session {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = DefaultHoldTime
	}
	if cfg.ConnectRetry == 0 {
		cfg.ConnectRetry = DefaultConnectRetry
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Session{cfg: cfg, state: StateIdle, estCh: make(chan struct{}), stopCh: make(chan struct{})}
}

// State returns the current FSM state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Established reports whether the session is in Established state.
func (s *Session) Established() bool { return s.State() == StateEstablished }

// WaitEstablished blocks until the session is established or the timeout
// elapses.
func (s *Session) WaitEstablished(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return ErrSessionClosed
		}
		ch := s.estCh
		est := s.state == StateEstablished
		s.mu.Unlock()
		if est {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("bgp: session to %s not established within %v", s.cfg.PeerAddr, timeout)
		}
		select {
		case <-ch:
		case <-time.After(remain):
		}
	}
}

// Start runs the active side: dial, handshake, serve; reconnect on failure.
// It returns immediately.
func (s *Session) Start() {
	if s.cfg.Dial == nil {
		return // passive session: driven by Accept
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			s.mu.Lock()
			if s.stopped {
				s.mu.Unlock()
				return
			}
			s.state = StateConnect
			s.mu.Unlock()

			conn, err := s.cfg.Dial()
			if err != nil {
				s.cfg.Logf("bgp %s: dial: %v", s.cfg.PeerAddr, err)
				s.setState(StateActive)
				if !s.sleepRetry() {
					return
				}
				continue
			}
			s.serveConn(conn)
			if !s.sleepRetry() {
				return
			}
		}
	}()
}

func (s *Session) sleepRetry() bool {
	done := make(chan struct{})
	t := s.cfg.Clock.AfterFunc(s.cfg.ConnectRetry, func() { close(done) })
	select {
	case <-done:
	case <-s.stopCh:
		t.Stop()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.stopped
}

// Accept runs the passive side on an already-established transport
// connection. It blocks until the session ends, so callers usually run it
// in a goroutine.
func (s *Session) Accept(conn net.Conn) {
	s.serveConn(conn)
}

// Stop sends a CEASE notification if established, closes the transport and
// stops reconnecting.
func (s *Session) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stopCh)
	conn := s.conn
	out := s.out
	codec := s.codec
	s.mu.Unlock()
	if out != nil {
		// Best-effort CEASE; the writer drains it before the close below.
		if buf, err := codec.Marshal(&Notification{Code: NotifCease}); err == nil {
			select {
			case out <- buf:
			default:
			}
		}
	}
	// Give the writer a beat to flush, then tear down.
	time.Sleep(10 * time.Millisecond)
	if conn != nil {
		conn.Close()
	}
	s.wg.Wait()
	s.setState(StateIdle)
}

// Send queues an UPDATE (or any message) for transmission. It returns an
// error if the session is not established.
func (s *Session) Send(msg Message) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	if s.state != StateEstablished || s.out == nil {
		st := s.state
		s.mu.Unlock()
		return fmt.Errorf("bgp: session to %s is %s, not Established", s.cfg.PeerAddr, st)
	}
	out := s.out
	codec := s.codec
	s.mu.Unlock()
	buf, err := codec.Marshal(msg)
	if err != nil {
		return err
	}
	select {
	case out <- buf:
		return nil
	case <-s.stopCh:
		return ErrSessionClosed
	case <-time.After(30 * time.Second):
		return fmt.Errorf("bgp: send queue to %s full", s.cfg.PeerAddr)
	}
}

// Codec returns the negotiated codec (valid once established).
func (s *Session) Codec() Codec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.codec
}

func (s *Session) setState(st State) {
	s.mu.Lock()
	prev := s.state
	s.state = st
	var est chan struct{}
	if st == StateEstablished && prev != StateEstablished {
		est = s.estCh
	}
	if prev == StateEstablished && st != StateEstablished {
		s.estCh = make(chan struct{})
	}
	s.mu.Unlock()
	if est != nil {
		close(est)
	}
}

// serveConn performs the OPEN exchange and runs the established loop on one
// transport connection. It returns when the connection dies.
func (s *Session) serveConn(conn net.Conn) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conn = conn
	s.mu.Unlock()

	err := s.handshakeAndRun(conn)
	wasEstablished := s.State() == StateEstablished

	conn.Close()
	s.mu.Lock()
	s.conn = nil
	s.out = nil
	stopped := s.stopped
	s.mu.Unlock()
	s.setState(StateIdle)

	if err != nil && !stopped {
		s.cfg.Logf("bgp %s: session down: %v", s.cfg.PeerAddr, err)
	}
	if wasEstablished && s.cfg.OnDown != nil && !stopped {
		s.cfg.OnDown(err)
	}
}

func (s *Session) handshakeAndRun(conn net.Conn) error {
	// The writer goroutine starts before the OPEN exchange: both BGP
	// speakers send OPEN simultaneously, so a synchronous write here would
	// deadlock on unbuffered transports (net.Pipe) and stall on slow ones.
	// Messages are marshaled by the enqueuer with the codec in force at
	// enqueue time; during the handshake only codec-independent messages
	// (OPEN, KEEPALIVE, NOTIFICATION) flow.
	out := make(chan []byte, sendQueueLen)
	connDone := make(chan struct{})
	writeErr := make(chan error, 1)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for {
			select {
			case buf := <-out:
				if _, err := conn.Write(buf); err != nil {
					select {
					case writeErr <- err:
					default:
					}
					return
				}
			case <-connDone:
				return
			}
		}
	}()
	defer func() {
		close(connDone)
		writerWG.Wait()
	}()

	base := Codec{} // OPEN is codec-independent
	enqueue := func(c Codec, m Message) error {
		buf, err := c.Marshal(m)
		if err != nil {
			return err
		}
		select {
		case out <- buf:
			return nil
		case <-connDone:
			return ErrSessionClosed
		}
	}

	holdSec := uint16(s.cfg.HoldTime / time.Second)
	open := &Open{Version: 4, AS: s.cfg.LocalAS, HoldTime: holdSec, ID: s.cfg.LocalID,
		Caps: []Capability{{Code: CapRouteRefresh}}}
	if err := enqueue(base, open); err != nil {
		return fmt.Errorf("send OPEN: %w", err)
	}
	s.setState(StateOpenSent)

	msg, err := base.ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("read OPEN: %w", err)
	}
	peerOpen, ok := msg.(*Open)
	if !ok {
		if n, isNotif := msg.(*Notification); isNotif {
			return n
		}
		enqueue(base, &Notification{Code: NotifFSMError})
		return fmt.Errorf("expected OPEN, got %s", msg.Type())
	}
	if peerOpen.Version != 4 {
		enqueue(base, &Notification{Code: NotifOpenMessage, Subcode: 1})
		return fmt.Errorf("unsupported BGP version %d", peerOpen.Version)
	}
	if s.cfg.PeerAS != 0 && peerOpen.AS != s.cfg.PeerAS {
		enqueue(base, &Notification{Code: NotifOpenMessage, Subcode: 2})
		return fmt.Errorf("peer AS %d, expected %d", peerOpen.AS, s.cfg.PeerAS)
	}
	if peerOpen.HoldTime != 0 && peerOpen.HoldTime < minHoldSec {
		enqueue(base, &Notification{Code: NotifOpenMessage, Subcode: 6})
		return fmt.Errorf("unacceptable hold time %d", peerOpen.HoldTime)
	}

	hold := s.cfg.HoldTime
	if peer := time.Duration(peerOpen.HoldTime) * time.Second; peer < hold {
		hold = peer
	}
	_, asn4 := peerOpen.Cap(CapASN4)
	codec := Codec{ASN4: asn4}

	if err := enqueue(codec, &Keepalive{}); err != nil {
		return fmt.Errorf("send KEEPALIVE: %w", err)
	}
	s.setState(StateOpenConfirm)

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.out = out
	s.codec = codec
	s.mu.Unlock()

	var keepalive clock.Ticker
	var holdTimer clock.Timer
	if hold > 0 {
		keepalive = s.cfg.Clock.NewTicker(hold / 3)
		defer keepalive.Stop()
		kaBuf, _ := codec.Marshal(&Keepalive{})
		go func() {
			for {
				select {
				case <-keepalive.C():
					select {
					case out <- kaBuf:
					default: // queue full: the pending traffic refreshes the peer's hold timer anyway
					}
				case <-connDone:
					return
				}
			}
		}()
		holdTimer = s.cfg.Clock.AfterFunc(hold, func() { conn.Close() })
		defer holdTimer.Stop()
	}

	established := false
	for {
		msg, err := codec.ReadMessage(conn)
		if err != nil {
			select {
			case werr := <-writeErr:
				return fmt.Errorf("write: %w", werr)
			default:
			}
			if established && hold > 0 && !s.holdAlive(holdTimer, hold) {
				return &Notification{Code: NotifHoldTimerExpired}
			}
			return err
		}
		if holdTimer != nil {
			holdTimer.Reset(hold)
		}
		switch m := msg.(type) {
		case *Keepalive:
			if !established {
				established = true
				s.setState(StateEstablished)
				s.cfg.Logf("bgp %s: established (hold %v, asn4 %v)", s.cfg.PeerAddr, hold, asn4)
				if s.cfg.OnEstablished != nil {
					s.cfg.OnEstablished()
				}
			}
		case *Update:
			if !established {
				enqueue(codec, &Notification{Code: NotifFSMError})
				return fmt.Errorf("UPDATE before establishment")
			}
			if s.cfg.OnUpdate != nil {
				s.cfg.OnUpdate(m)
			}
		case *Notification:
			return m
		case *Open:
			enqueue(codec, &Notification{Code: NotifFSMError})
			return fmt.Errorf("unexpected second OPEN")
		}
	}
}

// holdAlive reports whether the hold timer is still pending (i.e. the
// connection died for another reason).
func (s *Session) holdAlive(t clock.Timer, hold time.Duration) bool {
	// Stopping a fired timer returns false.
	alive := t.Stop()
	if alive {
		t.Reset(hold)
	}
	return alive
}
