package bgp

import (
	"net"
	"sync"
	"testing"
	"time"
)

// pipeDialer returns a Dial function yielding one end of a net.Pipe and a
// channel delivering the other end for the passive side.
func pipeDialer() (dial func() (net.Conn, error), accepted <-chan net.Conn) {
	ch := make(chan net.Conn, 16)
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		ch <- b
		return a, nil
	}, ch
}

func newTestPair(t *testing.T, onUpdate func(*Update)) (*Session, *Session) {
	t.Helper()
	dial, accepted := pipeDialer()
	active := NewSession(SessionConfig{
		LocalAS: 65001, LocalID: addr("192.0.2.1"),
		PeerAS: 65002, PeerAddr: addr("192.0.2.2"),
		HoldTime: 3 * time.Second, ConnectRetry: 50 * time.Millisecond,
		Dial: dial,
	})
	passive := NewSession(SessionConfig{
		LocalAS: 65002, LocalID: addr("192.0.2.2"),
		PeerAS: 65001, PeerAddr: addr("192.0.2.1"),
		HoldTime: 3 * time.Second,
		OnUpdate: onUpdate,
	})
	go func() {
		for conn := range accepted {
			passive.Accept(conn)
		}
	}()
	active.Start()
	t.Cleanup(func() {
		active.Stop()
		passive.Stop()
	})
	return active, passive
}

func TestSessionEstablishes(t *testing.T) {
	active, passive := newTestPair(t, nil)
	if err := active.WaitEstablished(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := passive.WaitEstablished(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !active.Codec().ASN4 || !passive.Codec().ASN4 {
		t.Fatal("ASN4 not negotiated between two ASN4 speakers")
	}
}

func TestSessionCarriesUpdates(t *testing.T) {
	var mu sync.Mutex
	var got []*Update
	done := make(chan struct{}, 8)
	active, _ := newTestPair(t, func(u *Update) {
		mu.Lock()
		got = append(got, u)
		mu.Unlock()
		done <- struct{}{}
	})
	if err := active.WaitEstablished(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	upd := announce("10.0.0.9", "10.0.0.0/8", "20.0.0.0/8")
	if err := active.Send(upd); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("update not delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || len(got[0].NLRI) != 2 || got[0].Attrs.NextHop != addr("10.0.0.9") {
		t.Fatalf("received %+v", got)
	}
}

func TestSessionSendBeforeEstablishedFails(t *testing.T) {
	s := NewSession(SessionConfig{LocalAS: 1, LocalID: addr("1.1.1.1")})
	if err := s.Send(&Keepalive{}); err == nil {
		t.Fatal("send on idle session succeeded")
	}
}

func TestSessionPeerASMismatchRejected(t *testing.T) {
	dial, accepted := pipeDialer()
	active := NewSession(SessionConfig{
		LocalAS: 65001, LocalID: addr("192.0.2.1"),
		PeerAS: 64999, PeerAddr: addr("192.0.2.2"), // wrong expectation
		ConnectRetry: 24 * time.Hour,
		Dial:         dial,
	})
	passive := NewSession(SessionConfig{
		LocalAS: 65002, LocalID: addr("192.0.2.2"), PeerAS: 65001,
	})
	go func() {
		for conn := range accepted {
			passive.Accept(conn)
		}
	}()
	active.Start()
	defer active.Stop()
	defer passive.Stop()
	if err := active.WaitEstablished(500 * time.Millisecond); err == nil {
		t.Fatal("session established despite AS mismatch")
	}
}

func TestSessionDownCallbackOnPeerStop(t *testing.T) {
	dial, accepted := pipeDialer()
	downCh := make(chan error, 1)
	active := NewSession(SessionConfig{
		LocalAS: 65001, LocalID: addr("192.0.2.1"), PeerAS: 65002,
		PeerAddr:     addr("192.0.2.2"),
		ConnectRetry: 24 * time.Hour, // no reconnect during the test
		Dial:         dial,
		OnDown:       func(err error) { downCh <- err },
	})
	passive := NewSession(SessionConfig{LocalAS: 65002, LocalID: addr("192.0.2.2"), PeerAS: 65001})
	go func() {
		for conn := range accepted {
			passive.Accept(conn)
		}
	}()
	active.Start()
	defer active.Stop()
	if err := active.WaitEstablished(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	passive.Stop()
	select {
	case <-downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDown not called after peer stop")
	}
	if active.Established() {
		t.Fatal("still established after peer stop")
	}
}

func TestSessionReconnectsAfterDrop(t *testing.T) {
	dial, accepted := pipeDialer()
	active := NewSession(SessionConfig{
		LocalAS: 65001, LocalID: addr("192.0.2.1"), PeerAS: 65002,
		PeerAddr:     addr("192.0.2.2"),
		ConnectRetry: 20 * time.Millisecond,
		Dial:         dial,
	})
	// Passive side accepts every incoming transport with a fresh Session.
	var mu sync.Mutex
	established := 0
	go func() {
		for conn := range accepted {
			p := NewSession(SessionConfig{
				LocalAS: 65002, LocalID: addr("192.0.2.2"), PeerAS: 65001,
				OnEstablished: func() {
					mu.Lock()
					established++
					mu.Unlock()
				},
			})
			go p.Accept(conn)
		}
	}()
	active.Start()
	defer active.Stop()
	if err := active.WaitEstablished(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitCount := func(want int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			n := established
			mu.Unlock()
			if n >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("established %d times, want >= %d", n, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// The passive side must finish its own handshake before we kill the
	// transport, or the first establishment is never counted.
	waitCount(1)
	// Kill the transport out from under the session; it must re-dial.
	activeConnKill(active)
	waitCount(2)
	if err := active.WaitEstablished(5 * time.Second); err != nil {
		t.Fatalf("active not re-established: %v", err)
	}
}

func activeConnKill(s *Session) {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

func TestSessionHoldTimerExpires(t *testing.T) {
	// A peer that completes the handshake and then goes silent must be
	// detected by the hold timer — BGP's (slow) native failure detection,
	// which the paper contrasts with BFD.
	a, b := net.Pipe()
	sess := NewSession(SessionConfig{
		LocalAS: 65001, LocalID: addr("192.0.2.1"), PeerAS: 65002,
		PeerAddr: addr("192.0.2.2"), HoldTime: 3 * time.Second,
	})
	go sess.Accept(a)
	defer sess.Stop()

	c := Codec{}
	if err := c.WriteMessage(b, &Open{Version: 4, AS: 65002, HoldTime: 3, ID: addr("192.0.2.2")}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadMessage(b); err != nil { // their OPEN
		t.Fatal(err)
	}
	if _, err := c.ReadMessage(b); err != nil { // their KEEPALIVE
		t.Fatal(err)
	}
	if err := c.WriteMessage(b, &Keepalive{}); err != nil {
		t.Fatal(err)
	}
	if err := sess.WaitEstablished(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Go silent but keep draining their keepalives so the pipe does not
	// block their writer.
	go func() {
		for {
			if _, err := c.ReadMessage(b); err != nil {
				return
			}
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for sess.Established() {
		if time.Now().After(deadline) {
			t.Fatal("hold timer never fired")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateIdle: "Idle", StateConnect: "Connect", StateActive: "Active",
		StateOpenSent: "OpenSent", StateOpenConfirm: "OpenConfirm", StateEstablished: "Established",
	}
	for st, want := range names {
		if st.String() != want {
			t.Fatalf("%d -> %q", st, st.String())
		}
	}
}
