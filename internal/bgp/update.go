package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// Update is a BGP UPDATE: withdrawn prefixes, path attributes, and the
// prefixes (NLRI) announced with those attributes. Attrs is nil for a pure
// withdraw.
type Update struct {
	Withdrawn []netip.Prefix
	Attrs     *Attrs
	NLRI      []netip.Prefix
}

// Type implements Message.
func (*Update) Type() MsgType { return MsgUpdate }

func (u *Update) String() string {
	var parts []string
	if len(u.Withdrawn) > 0 {
		parts = append(parts, fmt.Sprintf("withdraw %v", u.Withdrawn))
	}
	if len(u.NLRI) > 0 {
		parts = append(parts, fmt.Sprintf("announce %v {%s}", u.NLRI, u.Attrs))
	}
	if len(parts) == 0 {
		return "update(empty)"
	}
	return strings.Join(parts, "; ")
}

func (u *Update) marshal(c Codec) ([]byte, error) {
	withdrawn, err := marshalPrefixes(u.Withdrawn)
	if err != nil {
		return nil, err
	}
	var attrs []byte
	if u.Attrs != nil {
		attrs, err = u.Attrs.marshal(c)
		if err != nil {
			return nil, err
		}
	} else if len(u.NLRI) > 0 {
		return nil, fmt.Errorf("%w: NLRI without path attributes", ErrBadMessage)
	}
	nlri, err := marshalPrefixes(u.NLRI)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 4+len(withdrawn)+len(attrs)+len(nlri))
	out = binary.BigEndian.AppendUint16(out, uint16(len(withdrawn)))
	out = append(out, withdrawn...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(attrs)))
	out = append(out, attrs...)
	out = append(out, nlri...)
	return out, nil
}

func parseUpdate(b []byte, c Codec) (*Update, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: UPDATE body %d bytes", ErrBadLength, len(b))
	}
	wLen := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) < 2+wLen+2 {
		return nil, fmt.Errorf("%w: withdrawn routes overflow", ErrBadLength)
	}
	withdrawn, err := parsePrefixes(b[2 : 2+wLen])
	if err != nil {
		return nil, err
	}
	rest := b[2+wLen:]
	aLen := int(binary.BigEndian.Uint16(rest[0:2]))
	if len(rest) < 2+aLen {
		return nil, fmt.Errorf("%w: path attributes overflow", ErrBadLength)
	}
	u := &Update{Withdrawn: withdrawn}
	if aLen > 0 {
		u.Attrs, err = parseAttrs(rest[2:2+aLen], c)
		if err != nil {
			return nil, err
		}
	}
	u.NLRI, err = parsePrefixes(rest[2+aLen:])
	if err != nil {
		return nil, err
	}
	if len(u.NLRI) > 0 {
		if u.Attrs == nil {
			return nil, fmt.Errorf("%w: NLRI without path attributes", ErrBadMessage)
		}
		if len(u.Attrs.ASPath) == 0 && u.Attrs.NextHop.IsValid() {
			// Empty AS_PATH is legal only for iBGP-originated routes; accept.
			_ = u
		}
		if !u.Attrs.NextHop.IsValid() {
			return nil, fmt.Errorf("%w: announcement without NEXT_HOP", ErrBadMessage)
		}
	}
	return u, nil
}

// marshalPrefixes encodes prefixes in the NLRI wire form: one length octet
// followed by ceil(len/8) address octets.
func marshalPrefixes(ps []netip.Prefix) ([]byte, error) {
	var out []byte
	for _, p := range ps {
		if !p.IsValid() || !p.Addr().Unmap().Is4() {
			return nil, fmt.Errorf("%w: NLRI prefix %v is not IPv4", ErrBadMessage, p)
		}
		p = netip.PrefixFrom(p.Addr().Unmap(), p.Bits()).Masked()
		addr := p.Addr().As4()
		nBytes := (p.Bits() + 7) / 8
		out = append(out, byte(p.Bits()))
		out = append(out, addr[:nBytes]...)
	}
	return out, nil
}

func parsePrefixes(b []byte) ([]netip.Prefix, error) {
	var ps []netip.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		if bits > 32 {
			return nil, fmt.Errorf("%w: prefix length %d", ErrBadMessage, bits)
		}
		nBytes := (bits + 7) / 8
		if len(b) < 1+nBytes {
			return nil, fmt.Errorf("%w: truncated prefix", ErrBadMessage)
		}
		var addr [4]byte
		copy(addr[:], b[1:1+nBytes])
		p := netip.PrefixFrom(netip.AddrFrom4(addr), bits).Masked()
		ps = append(ps, p)
		b = b[1+nBytes:]
	}
	return ps, nil
}

// SplitUpdates splits announcements sharing one attribute set into as many
// UPDATE messages as needed to respect the 4096-byte message limit. The
// feed generator uses it to emit realistically batched full-table feeds.
func SplitUpdates(attrs *Attrs, nlri []netip.Prefix, c Codec) ([]*Update, error) {
	if len(nlri) == 0 {
		return nil, nil
	}
	attrBytes, err := attrs.marshal(c)
	if err != nil {
		return nil, err
	}
	budget := MaxMsgLen - HeaderLen - 4 - len(attrBytes)
	if budget < 5 {
		return nil, fmt.Errorf("%w: attributes leave no room for NLRI", ErrBadLength)
	}
	var out []*Update
	cur := &Update{Attrs: attrs}
	used := 0
	for _, p := range nlri {
		need := 1 + (p.Bits()+7)/8
		if used+need > budget {
			out = append(out, cur)
			cur = &Update{Attrs: attrs}
			used = 0
		}
		cur.NLRI = append(cur.NLRI, p)
		used += need
	}
	if len(cur.NLRI) > 0 {
		out = append(out, cur)
	}
	return out, nil
}
