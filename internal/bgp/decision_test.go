package bgp

import (
	"math/rand"
	"net/netip"
	"testing"
)

func mkPath(peer string, mut func(*Path)) *Path {
	p := &Path{
		Peer:   addr(peer),
		PeerAS: 65001,
		PeerID: addr(peer),
		Attrs: &Attrs{
			Origin:  OriginIGP,
			ASPath:  Sequence(65001, 3356),
			NextHop: addr(peer),
		},
	}
	if mut != nil {
		mut(p)
	}
	return p
}

func TestDecisionWeightWins(t *testing.T) {
	cfg := DecisionConfig{}
	a := mkPath("10.0.0.1", func(p *Path) { p.Weight = 100 })
	b := mkPath("10.0.0.2", func(p *Path) {
		p.Attrs.LocalPref, p.Attrs.HasLocalPref = 900, true // would win on LP
	})
	if cfg.Compare(a, b) >= 0 {
		t.Fatal("weight should beat local-pref")
	}
}

func TestDecisionLocalPref(t *testing.T) {
	cfg := DecisionConfig{}
	// The paper's setup: R1 prefers R2 (cheap) over R3 for all prefixes.
	r2 := mkPath("203.0.113.1", func(p *Path) { p.Attrs.LocalPref, p.Attrs.HasLocalPref = 200, true })
	r3 := mkPath("198.51.100.2", func(p *Path) { p.Attrs.LocalPref, p.Attrs.HasLocalPref = 100, true })
	if cfg.Compare(r2, r3) >= 0 {
		t.Fatal("higher local-pref must win")
	}
	// Default local-pref is 100.
	noLP := mkPath("198.51.100.9", nil)
	if cfg.Compare(r3, noLP) != cfg.Compare(noLP, r3)*-1 {
		t.Fatal("compare not antisymmetric")
	}
}

func TestDecisionASPathLength(t *testing.T) {
	cfg := DecisionConfig{}
	short := mkPath("10.0.0.1", func(p *Path) { p.Attrs.ASPath = Sequence(65001) })
	long := mkPath("10.0.0.2", func(p *Path) { p.Attrs.ASPath = Sequence(65002, 3356, 1299) })
	if cfg.Compare(short, long) >= 0 {
		t.Fatal("shorter AS path must win")
	}
}

func TestDecisionOrigin(t *testing.T) {
	cfg := DecisionConfig{}
	igp := mkPath("10.0.0.1", func(p *Path) { p.Attrs.Origin = OriginIGP })
	inc := mkPath("10.0.0.2", func(p *Path) { p.Attrs.Origin = OriginIncomplete })
	if cfg.Compare(igp, inc) >= 0 {
		t.Fatal("lower origin must win")
	}
}

func TestDecisionMEDSameNeighborASOnly(t *testing.T) {
	cfg := DecisionConfig{}
	lowMED := mkPath("10.0.0.1", func(p *Path) { p.Attrs.MED, p.Attrs.HasMED = 10, true })
	highMED := mkPath("10.0.0.2", func(p *Path) { p.Attrs.MED, p.Attrs.HasMED = 90, true })
	if cfg.Compare(lowMED, highMED) >= 0 {
		t.Fatal("same neighbor AS: lower MED must win")
	}
	// Different neighbor AS: MED skipped, falls to router ID.
	diffAS := mkPath("10.0.0.2", func(p *Path) {
		p.Attrs.ASPath = Sequence(65999, 3356)
		p.Attrs.MED, p.Attrs.HasMED = 90, true
	})
	if cfg.Compare(lowMED, diffAS) >= 0 {
		t.Fatal("expected router-ID tiebreak (10.0.0.1 < 10.0.0.2)")
	}
	always := DecisionConfig{AlwaysCompareMED: true}
	if always.Compare(lowMED, diffAS) >= 0 {
		t.Fatal("always-compare-med: lower MED must win")
	}
}

func TestDecisionEBGPOverIBGP(t *testing.T) {
	cfg := DecisionConfig{}
	e := mkPath("10.0.0.2", nil)
	i := mkPath("10.0.0.1", func(p *Path) { p.IBGP = true })
	if cfg.Compare(e, i) >= 0 {
		t.Fatal("eBGP must beat iBGP")
	}
}

func TestDecisionIGPMetricAndTiebreaks(t *testing.T) {
	cfg := DecisionConfig{}
	near := mkPath("10.0.0.2", func(p *Path) { p.IGPMetric = 5 })
	far := mkPath("10.0.0.1", func(p *Path) { p.IGPMetric = 50 })
	if cfg.Compare(near, far) >= 0 {
		t.Fatal("lower IGP metric must win")
	}
	// Router-ID tiebreak.
	a := mkPath("10.0.0.1", func(p *Path) { p.PeerID = addr("1.1.1.1") })
	b := mkPath("10.0.0.2", func(p *Path) { p.PeerID = addr("2.2.2.2") })
	if cfg.Compare(a, b) >= 0 {
		t.Fatal("lower router ID must win")
	}
	// Final tiebreak: peer address.
	c := mkPath("10.0.0.1", func(p *Path) { p.PeerID = addr("9.9.9.9") })
	d := mkPath("10.0.0.2", func(p *Path) { p.PeerID = addr("9.9.9.9") })
	if cfg.Compare(c, d) >= 0 {
		t.Fatal("lower peer address must win")
	}
}

func TestDecisionTotalOrderForDistinctPeers(t *testing.T) {
	// Compare must never return 0 for paths from different peers —
	// determinism of the ranking is what lets controller replicas agree.
	cfg := DecisionConfig{}
	rng := rand.New(rand.NewSource(5))
	var paths []*Path
	for i := 0; i < 50; i++ {
		peer := netip.AddrFrom4([4]byte{10, 0, byte(i / 256), byte(i)})
		paths = append(paths, mkPath(peer.String(), func(p *Path) {
			if rng.Intn(2) == 0 {
				p.Attrs.LocalPref, p.Attrs.HasLocalPref = uint32(rng.Intn(3)*100), true
			}
			p.Attrs.ASPath = Sequence(uint32(65001 + rng.Intn(3)))
			p.IGPMetric = uint32(rng.Intn(3))
		}))
	}
	for i := range paths {
		for j := range paths {
			if i == j {
				continue
			}
			c := cfg.Compare(paths[i], paths[j])
			if c == 0 {
				t.Fatalf("compare(%d,%d) == 0", i, j)
			}
			if c2 := cfg.Compare(paths[j], paths[i]); (c < 0) == (c2 < 0) {
				t.Fatalf("compare not antisymmetric for %d,%d", i, j)
			}
		}
	}
}

func TestRankIsDeterministicUnderShuffle(t *testing.T) {
	cfg := DecisionConfig{}
	rng := rand.New(rand.NewSource(7))
	var paths []*Path
	for i := 0; i < 20; i++ {
		peer := netip.AddrFrom4([4]byte{10, 1, 0, byte(i)})
		paths = append(paths, mkPath(peer.String(), func(p *Path) {
			p.Attrs.ASPath = Sequence(uint32(65001 + rng.Intn(4)))
		}))
	}
	ranked := append([]*Path(nil), paths...)
	cfg.Rank(ranked)
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]*Path(nil), paths...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		cfg.Rank(shuffled)
		for i := range ranked {
			if shuffled[i] != ranked[i] {
				t.Fatalf("trial %d: rank depends on input order", trial)
			}
		}
	}
}

func TestPathAccessors(t *testing.T) {
	p := mkPath("10.0.0.1", nil)
	if p.LocalPref() != 100 {
		t.Fatalf("default local-pref %d", p.LocalPref())
	}
	if p.MED() != 0 {
		t.Fatalf("default MED %d", p.MED())
	}
	if p.NextHop() != addr("10.0.0.1") {
		t.Fatal("next hop accessor")
	}
	if p.String() == "" {
		t.Fatal("empty string rendering")
	}
}
