// Package textdiff renders a unified diff between two texts — the
// smallest tool that turns "CI says the committed file drifted" into
// "CI shows which lines drifted". It exists so cmd/experiments -check
// can print the drifted sections instead of a bare exit code; it is not
// a general diff library (no moves, no word-level refinement).
package textdiff

import (
	"fmt"
	"strings"
)

// Unified returns a unified diff (context lines, @@ hunk headers) from a
// to b, labeled with the given names. It returns "" when the texts are
// equal. The LCS is computed with the classic O(len(a)×len(b)) dynamic
// program — fine for the documentation-sized files this package serves.
func Unified(aName, bName string, a, b []byte, context int) string {
	if string(a) == string(b) {
		return ""
	}
	al, bl := splitLines(a), splitLines(b)
	ops := diffOps(al, bl)
	hunks := groupHunks(ops, context)
	if len(hunks) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", aName, bName)
	for _, h := range hunks {
		fmt.Fprintf(&sb, "@@ -%s +%s @@\n", span(h.aStart, h.aLen), span(h.bStart, h.bLen))
		for _, op := range h.ops {
			sb.WriteString(op.tag)
			sb.WriteString(op.line)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// splitLines splits without losing a trailing newline-less line.
func splitLines(b []byte) []string {
	s := string(b)
	if s == "" {
		return nil
	}
	lines := strings.Split(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// op is one diff line: tag is " " (context), "-" (only in a), "+" (only
// in b).
type op struct {
	tag  string
	line string
	// aIdx/bIdx are the 0-based source positions (-1 when absent).
	aIdx, bIdx int
}

// diffOps emits the full op stream via an LCS table.
func diffOps(a, b []string) []op {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []op
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, op{" ", a[i], i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, op{"-", a[i], i, -1})
			i++
		default:
			ops = append(ops, op{"+", b[j], -1, j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, op{"-", a[i], i, -1})
	}
	for ; j < m; j++ {
		ops = append(ops, op{"+", b[j], -1, j})
	}
	return ops
}

// hunk is one @@ block: a run of changes plus surrounding context.
type hunk struct {
	aStart, aLen int // 1-based start and length on the a side
	bStart, bLen int
	ops          []op
}

// groupHunks windows the op stream into hunks with at most `context`
// unchanged lines on each side, merging change runs whose context
// windows touch.
func groupHunks(ops []op, context int) []hunk {
	var hunks []hunk
	i := 0
	for i < len(ops) {
		if ops[i].tag == " " {
			i++
			continue
		}
		// Found a change: open a window `context` lines back…
		start := i - context
		if start < 0 {
			start = 0
		}
		end := i
		gap := 0
		// …and extend it until 2×context+1 consecutive context lines (the
		// windows of two change runs no longer touch) or the stream ends.
		for j := i; j < len(ops); j++ {
			if ops[j].tag == " " {
				gap++
				if gap > 2*context {
					break
				}
			} else {
				gap = 0
				end = j + 1
			}
		}
		stop := end + context
		if stop > len(ops) {
			stop = len(ops)
		}
		h := hunk{ops: ops[start:stop]}
		h.aStart, h.aLen = sideSpan(h.ops, func(o op) int { return o.aIdx })
		h.bStart, h.bLen = sideSpan(h.ops, func(o op) int { return o.bIdx })
		hunks = append(hunks, h)
		i = stop
	}
	return hunks
}

// sideSpan computes one side's 1-based start line and length.
func sideSpan(ops []op, idx func(op) int) (start, length int) {
	first := -1
	for _, o := range ops {
		if k := idx(o); k >= 0 {
			if first == -1 {
				first = k
			}
			length++
		}
	}
	if first == -1 {
		// Hunk has no lines on this side (a pure insert into an empty
		// file, or a whole-file delete): unified format writes "0,0".
		return 0, 0
	}
	return first + 1, length
}

func span(start, length int) string {
	if length == 1 {
		return fmt.Sprint(start)
	}
	return fmt.Sprintf("%d,%d", start, length)
}
