package textdiff

import (
	"strings"
	"testing"
)

func TestEqualTextsDiffEmpty(t *testing.T) {
	if d := Unified("a", "b", []byte("x\ny\n"), []byte("x\ny\n"), 3); d != "" {
		t.Fatalf("diff of equal texts = %q", d)
	}
	if d := Unified("a", "b", nil, nil, 3); d != "" {
		t.Fatalf("diff of empty texts = %q", d)
	}
}

func TestSingleChange(t *testing.T) {
	a := []byte("one\ntwo\nthree\nfour\nfive\n")
	b := []byte("one\ntwo\nTHREE\nfour\nfive\n")
	d := Unified("old", "new", a, b, 1)
	want := strings.Join([]string{
		"--- old",
		"+++ new",
		"@@ -2,3 +2,3 @@",
		" two",
		"-three",
		"+THREE",
		" four",
		"",
	}, "\n")
	if d != want {
		t.Fatalf("diff:\n%s\nwant:\n%s", d, want)
	}
}

func TestDistantChangesSplitIntoHunks(t *testing.T) {
	var al, bl []string
	for i := 0; i < 30; i++ {
		line := strings.Repeat("x", 1) + "-" + string(rune('a'+i%26))
		al = append(al, line)
		bl = append(bl, line)
	}
	bl[2] = "CHANGED-EARLY"
	bl[25] = "CHANGED-LATE"
	d := Unified("old", "new", []byte(strings.Join(al, "\n")+"\n"), []byte(strings.Join(bl, "\n")+"\n"), 2)
	if got := strings.Count(d, "@@"); got != 4 { // 2 per hunk header
		t.Fatalf("want 2 hunks, got %d markers in:\n%s", got/2, d)
	}
	if !strings.Contains(d, "+CHANGED-EARLY") || !strings.Contains(d, "+CHANGED-LATE") {
		t.Fatalf("both changes must appear:\n%s", d)
	}
	if strings.Contains(d, " "+al[13]+"\n") {
		t.Fatalf("line far from any change leaked into a hunk:\n%s", d)
	}
}

func TestInsertAndDelete(t *testing.T) {
	a := []byte("keep\ngone\nkeep2\n")
	b := []byte("keep\nkeep2\nadded\n")
	d := Unified("old", "new", a, b, 3)
	for _, want := range []string{"-gone", "+added", " keep", " keep2"} {
		if !strings.Contains(d, want+"\n") {
			t.Fatalf("diff missing %q:\n%s", want, d)
		}
	}
}

func TestNoTrailingNewline(t *testing.T) {
	d := Unified("old", "new", []byte("a\nb"), []byte("a\nc"), 3)
	if !strings.Contains(d, "-b\n") || !strings.Contains(d, "+c\n") {
		t.Fatalf("newline-less final lines mishandled:\n%s", d)
	}
}

func TestWholeFileReplaced(t *testing.T) {
	d := Unified("old", "new", []byte("a\n"), []byte("b\n"), 3)
	if !strings.Contains(d, "@@ -1 +1 @@") {
		t.Fatalf("single-line spans render without lengths:\n%s", d)
	}
}
