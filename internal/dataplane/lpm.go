// Package dataplane implements the three forwarding tables of the paper's
// architecture:
//
//   - LPM: an IPv4 longest-prefix-match binary trie, the lookup structure
//     both devices need;
//   - FlatFIB: the legacy router's flat FIB, whose serialized
//     entry-by-entry updater is the very bottleneck the paper measures
//     (Fig. 1 and Fig. 5's linear convergence);
//   - FlowTable: the SDN switch's table of match/action rules, the second
//     stage of the supercharged hierarchical FIB (Fig. 2).
package dataplane

import (
	"fmt"
	"net/netip"
)

// LPM is an IPv4 longest-prefix-match table implemented as a binary trie.
// The zero value is an empty table. LPM is not safe for concurrent use;
// callers serialize access (FlatFIB wraps it with its own lock).
type LPM[V any] struct {
	root *lpmNode[V]
	size int
}

type lpmNode[V any] struct {
	child [2]*lpmNode[V]
	val   V
	has   bool
}

// Len returns the number of prefixes in the table.
func (t *LPM[V]) Len() int { return t.size }

// Insert adds or replaces the value for prefix p. It reports whether the
// prefix was newly added (false = replaced). Insert panics on a non-IPv4 or
// invalid prefix; the test-bed is IPv4-only, as is the paper's evaluation.
func (t *LPM[V]) Insert(p netip.Prefix, v V) bool {
	p = canonical(p)
	if t.root == nil {
		t.root = &lpmNode[V]{}
	}
	n := t.root
	addr := ipv4Bits(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := addr >> (31 - i) & 1
		if n.child[b] == nil {
			n.child[b] = &lpmNode[V]{}
		}
		n = n.child[b]
	}
	added := !n.has
	n.val = v
	n.has = true
	if added {
		t.size++
	}
	return added
}

// Delete removes prefix p, reporting whether it was present. Interior trie
// nodes left empty are pruned so repeated insert/delete cycles do not leak.
func (t *LPM[V]) Delete(p netip.Prefix) bool {
	p = canonical(p)
	if t.root == nil {
		return false
	}
	// Record the path for pruning.
	path := make([]*lpmNode[V], 0, 33)
	n := t.root
	addr := ipv4Bits(p.Addr())
	path = append(path, n)
	for i := 0; i < p.Bits(); i++ {
		b := addr >> (31 - i) & 1
		if n.child[b] == nil {
			return false
		}
		n = n.child[b]
		path = append(path, n)
	}
	if !n.has {
		return false
	}
	n.has = false
	var zero V
	n.val = zero
	t.size--
	// Prune empty leaves bottom-up.
	for i := len(path) - 1; i > 0; i-- {
		cur := path[i]
		if cur.has || cur.child[0] != nil || cur.child[1] != nil {
			break
		}
		parent := path[i-1]
		b := addr >> (31 - (i - 1)) & 1
		parent.child[b] = nil
	}
	return true
}

// Get returns the value stored for exactly prefix p.
func (t *LPM[V]) Get(p netip.Prefix) (V, bool) {
	p = canonical(p)
	var zero V
	n := t.root
	if n == nil {
		return zero, false
	}
	addr := ipv4Bits(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := addr >> (31 - i) & 1
		if n.child[b] == nil {
			return zero, false
		}
		n = n.child[b]
	}
	if !n.has {
		return zero, false
	}
	return n.val, true
}

// Lookup returns the value and prefix of the longest match covering ip.
func (t *LPM[V]) Lookup(ip netip.Addr) (V, netip.Prefix, bool) {
	var (
		zero    V
		best    V
		bestLen = -1
	)
	if !ip.Is4() && !ip.Is4In6() {
		return zero, netip.Prefix{}, false
	}
	n := t.root
	if n == nil {
		return zero, netip.Prefix{}, false
	}
	addr := ipv4Bits(ip)
	if n.has {
		best, bestLen = n.val, 0
	}
	for i := 0; i < 32 && n != nil; i++ {
		b := addr >> (31 - i) & 1
		n = n.child[b]
		if n != nil && n.has {
			best, bestLen = n.val, i+1
		}
	}
	if bestLen < 0 {
		return zero, netip.Prefix{}, false
	}
	pfx, _ := ip.Unmap().Prefix(bestLen)
	return best, pfx, true
}

// Walk visits every prefix in the table in lexicographic (trie pre-order)
// order. Returning false from fn stops the walk.
func (t *LPM[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	if t.root == nil {
		return
	}
	walk(t.root, 0, 0, fn)
}

func walk[V any](n *lpmNode[V], bits uint32, depth int, fn func(netip.Prefix, V) bool) bool {
	if n.has {
		addr := netip.AddrFrom4([4]byte{byte(bits >> 24), byte(bits >> 16), byte(bits >> 8), byte(bits)})
		if !fn(netip.PrefixFrom(addr, depth), n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if c := n.child[0]; c != nil {
		if !walk(c, bits, depth+1, fn) {
			return false
		}
	}
	if c := n.child[1]; c != nil {
		if !walk(c, bits|1<<(31-depth), depth+1, fn) {
			return false
		}
	}
	return true
}

func canonical(p netip.Prefix) netip.Prefix {
	if !p.IsValid() {
		panic(fmt.Sprintf("dataplane: invalid prefix %v", p))
	}
	a := p.Addr().Unmap()
	if !a.Is4() {
		panic(fmt.Sprintf("dataplane: non-IPv4 prefix %v", p))
	}
	return netip.PrefixFrom(a, p.Bits()).Masked()
}

func ipv4Bits(a netip.Addr) uint32 {
	b := a.Unmap().As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
