package dataplane

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func mustAddr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestLPMBasicInsertLookup(t *testing.T) {
	var l LPM[string]
	l.Insert(mustPfx("10.0.0.0/8"), "eight")
	l.Insert(mustPfx("10.1.0.0/16"), "sixteen")
	l.Insert(mustPfx("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		ip   string
		want string
		pfx  string
	}{
		{"10.9.9.9", "eight", "10.0.0.0/8"},
		{"10.1.9.9", "sixteen", "10.1.0.0/16"},
		{"10.1.2.3", "twentyfour", "10.1.2.0/24"},
	}
	for _, c := range cases {
		v, p, ok := l.Lookup(mustAddr(c.ip))
		if !ok || v != c.want || p != mustPfx(c.pfx) {
			t.Errorf("Lookup(%s) = %v,%v,%v; want %v,%v", c.ip, v, p, ok, c.want, c.pfx)
		}
	}
	if _, _, ok := l.Lookup(mustAddr("11.0.0.1")); ok {
		t.Error("lookup outside table succeeded")
	}
}

func TestLPMDefaultRoute(t *testing.T) {
	var l LPM[int]
	l.Insert(mustPfx("0.0.0.0/0"), 1)
	v, p, ok := l.Lookup(mustAddr("203.0.113.1"))
	if !ok || v != 1 || p.Bits() != 0 {
		t.Fatalf("default route lookup = %v,%v,%v", v, p, ok)
	}
}

func TestLPMHostRoute(t *testing.T) {
	var l LPM[int]
	l.Insert(mustPfx("192.0.2.7/32"), 7)
	if _, _, ok := l.Lookup(mustAddr("192.0.2.8")); ok {
		t.Fatal("host route matched wrong address")
	}
	v, _, ok := l.Lookup(mustAddr("192.0.2.7"))
	if !ok || v != 7 {
		t.Fatal("host route missed")
	}
}

func TestLPMInsertReplaces(t *testing.T) {
	var l LPM[int]
	if !l.Insert(mustPfx("10.0.0.0/8"), 1) {
		t.Fatal("first insert reported replace")
	}
	if l.Insert(mustPfx("10.0.0.0/8"), 2) {
		t.Fatal("second insert reported add")
	}
	if l.Len() != 1 {
		t.Fatalf("len %d", l.Len())
	}
	v, _ := l.Get(mustPfx("10.0.0.0/8"))
	if v != 2 {
		t.Fatalf("value %d after replace", v)
	}
}

func TestLPMMaskedCanonicalization(t *testing.T) {
	var l LPM[int]
	// Non-canonical prefix (host bits set) must behave as its masked form.
	l.Insert(netip.PrefixFrom(mustAddr("10.1.2.3"), 16), 5)
	v, ok := l.Get(mustPfx("10.1.0.0/16"))
	if !ok || v != 5 {
		t.Fatal("unmasked insert not canonicalized")
	}
}

func TestLPMDeleteAndPrune(t *testing.T) {
	var l LPM[int]
	l.Insert(mustPfx("10.0.0.0/8"), 1)
	l.Insert(mustPfx("10.1.0.0/16"), 2)
	if !l.Delete(mustPfx("10.1.0.0/16")) {
		t.Fatal("delete failed")
	}
	if l.Delete(mustPfx("10.1.0.0/16")) {
		t.Fatal("double delete succeeded")
	}
	if l.Len() != 1 {
		t.Fatalf("len %d", l.Len())
	}
	// The /8 must still match where the /16 used to.
	v, _, ok := l.Lookup(mustAddr("10.1.2.3"))
	if !ok || v != 1 {
		t.Fatal("covering route lost after delete")
	}
	// Deleting a never-inserted prefix on an empty subtree.
	if l.Delete(mustPfx("172.16.0.0/12")) {
		t.Fatal("delete of absent prefix succeeded")
	}
}

func TestLPMWalkOrderAndStop(t *testing.T) {
	var l LPM[int]
	ps := []string{"10.0.0.0/8", "10.0.0.0/16", "10.128.0.0/9", "192.168.0.0/16"}
	for i, s := range ps {
		l.Insert(mustPfx(s), i)
	}
	var got []string
	l.Walk(func(p netip.Prefix, v int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"10.0.0.0/8", "10.0.0.0/16", "10.128.0.0/9", "192.168.0.0/16"}
	if len(got) != len(want) {
		t.Fatalf("walk visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
	count := 0
	l.Walk(func(netip.Prefix, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestLPMPanicsOnIPv6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for IPv6 prefix")
		}
	}()
	var l LPM[int]
	l.Insert(netip.MustParsePrefix("2001:db8::/32"), 1)
}

func TestLPMLookupIPv6ReturnsFalse(t *testing.T) {
	var l LPM[int]
	l.Insert(mustPfx("0.0.0.0/0"), 1)
	if _, _, ok := l.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Fatal("IPv6 lookup matched IPv4 table")
	}
}

// Property: Lookup agrees with a brute-force scan over the inserted
// prefixes, for random tables and random probe addresses.
func TestLPMAgreesWithBruteForceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var l LPM[int]
		type entry struct {
			p netip.Prefix
			v int
		}
		var entries []entry
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			bits := r.Intn(33)
			raw := [4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))}
			p := netip.PrefixFrom(netip.AddrFrom4(raw), bits).Masked()
			l.Insert(p, i)
			replaced := false
			for j := range entries {
				if entries[j].p == p {
					entries[j].v = i
					replaced = true
					break
				}
			}
			if !replaced {
				entries = append(entries, entry{p, i})
			}
		}
		for probe := 0; probe < 100; probe++ {
			ip := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			bestLen, bestVal, found := -1, 0, false
			for _, e := range entries {
				if e.p.Contains(ip) && e.p.Bits() > bestLen {
					bestLen, bestVal, found = e.p.Bits(), e.v, true
				}
			}
			v, p, ok := l.Lookup(ip)
			if ok != found {
				return false
			}
			if ok && (v != bestVal || p.Bits() != bestLen) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: after inserting then deleting everything, the table is empty
// and lookups miss.
func TestLPMInsertDeleteAllQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var l LPM[int]
		var ps []netip.Prefix
		for i := 0; i < 100; i++ {
			bits := 1 + r.Intn(32)
			raw := [4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))}
			p := netip.PrefixFrom(netip.AddrFrom4(raw), bits).Masked()
			if l.Insert(p, i) {
				ps = append(ps, p)
			}
		}
		for _, p := range ps {
			if !l.Delete(p) {
				return false
			}
		}
		if l.Len() != 0 {
			return false
		}
		_, _, ok := l.Lookup(netip.AddrFrom4([4]byte{1, 2, 3, 4}))
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLPMLookup(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var l LPM[int]
	for i := 0; i < 100000; i++ {
		raw := [4]byte{byte(1 + r.Intn(220)), byte(r.Intn(256)), byte(r.Intn(256)), 0}
		l.Insert(netip.PrefixFrom(netip.AddrFrom4(raw), 24).Masked(), i)
	}
	probes := make([]netip.Addr, 1024)
	for i := range probes {
		probes[i] = netip.AddrFrom4([4]byte{byte(1 + r.Intn(220)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Lookup(probes[i&1023])
	}
}

func BenchmarkLPMInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	prefixes := make([]netip.Prefix, 1<<16)
	for i := range prefixes {
		raw := [4]byte{byte(1 + r.Intn(220)), byte(r.Intn(256)), byte(r.Intn(256)), 0}
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4(raw), 24).Masked()
	}
	b.ResetTimer()
	b.ReportAllocs()
	var l LPM[int]
	for i := 0; i < b.N; i++ {
		l.Insert(prefixes[i&(1<<16-1)], i)
	}
}
