package dataplane

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"supercharged/internal/clock"
	"supercharged/internal/packet"
)

// L2NH is the flat FIB's per-entry rewrite record: the L2 next-hop MAC
// address and output port the router stamps onto matching traffic (Fig. 1).
type L2NH struct {
	MAC  packet.MAC
	Port int
}

// String renders the record like the paper's "(01:aa, 0)" notation.
func (n L2NH) String() string { return fmt.Sprintf("(%s, %d)", n.MAC, n.Port) }

// FIBOp is one update for the FIB's serialized updater.
type FIBOp struct {
	Prefix netip.Prefix
	NH     L2NH
	Delete bool
}

// FlatFIB models a legacy router's flat forwarding table: every prefix owns
// a distinct L2 next-hop record, and the hardware applies updates strictly
// one entry at a time, each costing PerEntry. This serialization is what
// makes the standalone router's convergence linear in the table size — the
// effect Fig. 5 measures. The paper's Cisco Nexus 7k updates ~3,500 entries
// per second (≈280 µs/entry).
type FlatFIB struct {
	clk      clock.Clock
	perEntry time.Duration
	// noLPM skips maintaining the longest-prefix-match index; exact-match
	// Get/Position still work. The full-scale simulation enables this to
	// keep 500k-prefix tables cheap (probes query exact prefixes).
	noLPM bool

	mu      sync.Mutex
	entries map[netip.Prefix]*fibSlot
	order   []*fibSlot // insertion order = table walk order
	lpm     LPM[*fibSlot]
	queue   []FIBOp
	busy    bool
	applied uint64

	// OnApplied, if set, is invoked (without the FIB lock held) after each
	// queued update is installed, with the op and the install time. The
	// simulation's probes subscribe here to detect per-prefix recovery.
	OnApplied func(op FIBOp, at time.Time)
}

type fibSlot struct {
	prefix netip.Prefix
	nh     L2NH
	pos    int
}

// NewFlatFIB returns an empty FIB whose updater installs one entry every
// perEntry on clk. A zero perEntry still serializes through the clock but
// without added delay.
func NewFlatFIB(clk clock.Clock, perEntry time.Duration) *FlatFIB {
	if clk == nil {
		clk = clock.System
	}
	return &FlatFIB{
		clk:      clk,
		perEntry: perEntry,
		entries:  make(map[netip.Prefix]*fibSlot),
	}
}

// NewFlatFIBNoLPM returns a FIB without the longest-prefix-match index;
// Lookup always misses, but exact-prefix queries and the timed updater
// behave identically. Used by the full-scale simulation.
func NewFlatFIBNoLPM(clk clock.Clock, perEntry time.Duration) *FlatFIB {
	f := NewFlatFIB(clk, perEntry)
	f.noLPM = true
	return f
}

// PerEntry returns the configured per-entry installation cost.
func (f *FlatFIB) PerEntry() time.Duration { return f.perEntry }

// Reserve pre-sizes the table for about n entries (map buckets and walk
// order), so a full-table load skips the growth re-zeroing. It only ever
// grows the reservation.
func (f *FlatFIB) Reserve(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= len(f.entries) {
		return
	}
	entries := make(map[netip.Prefix]*fibSlot, n)
	for k, v := range f.entries {
		entries[k] = v
	}
	f.entries = entries
	if cap(f.order) < n {
		order := make([]*fibSlot, len(f.order), n)
		copy(order, f.order)
		f.order = order
	}
}

// Len returns the number of installed prefixes.
func (f *FlatFIB) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}

// QueueLen returns the number of updates awaiting installation.
func (f *FlatFIB) QueueLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue)
}

// Applied returns the total number of installed updates since creation.
func (f *FlatFIB) Applied() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Lookup performs a longest-prefix-match over installed entries only;
// queued updates are invisible until the updater reaches them, exactly like
// hardware.
func (f *FlatFIB) Lookup(ip netip.Addr) (L2NH, netip.Prefix, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	slot, pfx, ok := f.lpm.Lookup(ip)
	if !ok {
		return L2NH{}, netip.Prefix{}, false
	}
	return slot.nh, pfx, true
}

// Get returns the installed record for exactly prefix p.
func (f *FlatFIB) Get(p netip.Prefix) (L2NH, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.entries[p]; ok {
		return s.nh, true
	}
	return L2NH{}, false
}

// Position returns the insertion-order position of prefix p (0-based). The
// FIB walk rewrites entries in this order, so a flow's convergence time is
// proportional to the position of its prefix.
func (f *FlatFIB) Position(p netip.Prefix) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.entries[p]; ok {
		return s.pos, true
	}
	return 0, false
}

// WalkOrder calls fn for each installed prefix in table-walk order.
func (f *FlatFIB) WalkOrder(fn func(p netip.Prefix, nh L2NH) bool) {
	f.mu.Lock()
	slots := make([]*fibSlot, 0, len(f.order))
	for _, s := range f.order {
		if s != nil {
			slots = append(slots, s)
		}
	}
	f.mu.Unlock()
	for _, s := range slots {
		if !fn(s.prefix, s.nh) {
			return
		}
	}
}

// LoadSync installs ops immediately, bypassing the timed updater. It is
// meant for test-bed setup (pre-failure table population), not for the
// measured convergence path.
func (f *FlatFIB) LoadSync(ops []FIBOp) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, op := range ops {
		f.applyLocked(op)
	}
}

// Enqueue appends updates to the serialized updater queue and starts the
// updater if idle. This is the measured path: each op takes PerEntry.
func (f *FlatFIB) Enqueue(ops ...FIBOp) {
	f.mu.Lock()
	f.queue = append(f.queue, ops...)
	start := !f.busy && len(f.queue) > 0
	if start {
		f.busy = true
	}
	f.mu.Unlock()
	if start {
		f.clk.AfterFunc(f.perEntry, f.applyNext)
	}
}

func (f *FlatFIB) applyNext() {
	f.mu.Lock()
	if len(f.queue) == 0 {
		f.busy = false
		f.mu.Unlock()
		return
	}
	op := f.queue[0]
	f.queue = f.queue[1:]
	f.applyLocked(op)
	more := len(f.queue) > 0
	if !more {
		f.busy = false
	}
	cb := f.OnApplied
	f.mu.Unlock()
	if cb != nil {
		cb(op, f.clk.Now())
	}
	if more {
		f.clk.AfterFunc(f.perEntry, f.applyNext)
	}
}

func (f *FlatFIB) applyLocked(op FIBOp) {
	f.applied++
	p := canonical(op.Prefix)
	if op.Delete {
		if s, ok := f.entries[p]; ok {
			delete(f.entries, p)
			if !f.noLPM {
				f.lpm.Delete(p)
			}
			f.order[s.pos] = nil
		}
		return
	}
	if s, ok := f.entries[p]; ok {
		s.nh = op.NH
		return
	}
	s := &fibSlot{prefix: p, nh: op.NH, pos: len(f.order)}
	f.entries[p] = s
	f.order = append(f.order, s)
	if !f.noLPM {
		f.lpm.Insert(p, s)
	}
}
