package dataplane

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"supercharged/internal/packet"
)

// ActionType enumerates the data-plane actions the supercharged switch
// needs: forwarding and L2 rewrite (the paper's
// "rewrite (00:ff) to (01:aa, 1)" rules).
type ActionType uint8

const (
	// ActionOutput emits the frame (as rewritten so far) on Port.
	ActionOutput ActionType = iota + 1
	// ActionSetDstMAC rewrites the Ethernet destination to MAC.
	ActionSetDstMAC
	// ActionSetSrcMAC rewrites the Ethernet source to MAC.
	ActionSetSrcMAC
)

// Action is a single flow action.
type Action struct {
	Type ActionType
	MAC  packet.MAC
	Port uint16
}

// Output returns an ActionOutput.
func Output(port uint16) Action { return Action{Type: ActionOutput, Port: port} }

// SetDstMAC returns an ActionSetDstMAC.
func SetDstMAC(m packet.MAC) Action { return Action{Type: ActionSetDstMAC, MAC: m} }

// SetSrcMAC returns an ActionSetSrcMAC.
func SetSrcMAC(m packet.MAC) Action { return Action{Type: ActionSetSrcMAC, MAC: m} }

func (a Action) String() string {
	switch a.Type {
	case ActionOutput:
		return fmt.Sprintf("output:%d", a.Port)
	case ActionSetDstMAC:
		return fmt.Sprintf("set_dl_dst:%s", a.MAC)
	case ActionSetSrcMAC:
		return fmt.Sprintf("set_dl_src:%s", a.MAC)
	}
	return "invalid"
}

// Match selects frames by any combination of ingress port and Ethernet
// header fields; nil fields are wildcards. The supercharger's rules match
// solely on DstMAC (the VMAC tag), which the table serves from an exact-
// match index.
type Match struct {
	InPort    *uint16
	DstMAC    *packet.MAC
	SrcMAC    *packet.MAC
	EtherType *uint16
}

// MatchDstMAC returns a Match on exactly the destination MAC, the shape of
// every backup-group rule.
func MatchDstMAC(m packet.MAC) Match {
	mac := m
	return Match{DstMAC: &mac}
}

// Matches reports whether a frame with the given ingress port and Ethernet
// header satisfies m.
func (m Match) Matches(inPort uint16, eth *packet.Ethernet) bool {
	if m.InPort != nil && *m.InPort != inPort {
		return false
	}
	if m.DstMAC != nil && *m.DstMAC != eth.Dst {
		return false
	}
	if m.SrcMAC != nil && *m.SrcMAC != eth.Src {
		return false
	}
	if m.EtherType != nil && *m.EtherType != eth.Type {
		return false
	}
	return true
}

// Equal reports whether two matches select exactly the same field values.
func (m Match) Equal(o Match) bool {
	eqU16 := func(a, b *uint16) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		return a == nil || *a == *b
	}
	eqMAC := func(a, b *packet.MAC) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		return a == nil || *a == *b
	}
	return eqU16(m.InPort, o.InPort) && eqMAC(m.DstMAC, o.DstMAC) &&
		eqMAC(m.SrcMAC, o.SrcMAC) && eqU16(m.EtherType, o.EtherType)
}

func (m Match) String() string {
	var parts []string
	if m.InPort != nil {
		parts = append(parts, fmt.Sprintf("in_port=%d", *m.InPort))
	}
	if m.DstMAC != nil {
		parts = append(parts, fmt.Sprintf("dl_dst=%s", *m.DstMAC))
	}
	if m.SrcMAC != nil {
		parts = append(parts, fmt.Sprintf("dl_src=%s", *m.SrcMAC))
	}
	if m.EtherType != nil {
		parts = append(parts, fmt.Sprintf("dl_type=%#04x", *m.EtherType))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}

// Flow is one table rule.
type Flow struct {
	Priority uint16
	Match    Match
	Actions  []Action
	Cookie   uint64

	seq     uint64 // install order, for deterministic tie-break
	packets uint64
	bytes   uint64
}

// Stats returns the flow's packet and byte counters.
func (f *Flow) Stats() (packets, bytes uint64) { return f.packets, f.bytes }

func (f *Flow) String() string {
	acts := make([]string, len(f.Actions))
	for i, a := range f.Actions {
		acts[i] = a.String()
	}
	return fmt.Sprintf("prio=%d match(%s) actions(%s)", f.Priority, f.Match, strings.Join(acts, ","))
}

// Egress is one frame emitted by FlowTable.Process.
type Egress struct {
	Port  uint16
	Frame []byte
}

// FlowTable is the SDN switch's rule table: priority-ordered matching with
// an exact-match index for DstMAC-only rules (the common case here, one
// rule per backup-group).
type FlowTable struct {
	mu    sync.RWMutex
	byDst map[packet.MAC][]*Flow // flows with DstMAC set
	wild  []*Flow                // flows without DstMAC
	count int
	seq   uint64
	// misses counts frames that matched no flow.
	misses uint64
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable {
	return &FlowTable{byDst: make(map[packet.MAC][]*Flow)}
}

// Len returns the number of installed flows.
func (t *FlowTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Misses returns the number of frames that matched no rule.
func (t *FlowTable) Misses() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.misses
}

// Upsert installs a flow; a flow with an equal Match and Priority is
// replaced (its counters reset), matching OpenFlow ADD semantics. It
// reports whether an existing flow was replaced.
func (t *FlowTable) Upsert(f Flow) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	nf := &Flow{Priority: f.Priority, Match: f.Match, Actions: append([]Action(nil), f.Actions...), Cookie: f.Cookie, seq: t.seq}
	t.seq++
	bucket, key, indexed := t.bucketFor(f.Match)
	for i, old := range bucket {
		if old.Priority == f.Priority && old.Match.Equal(f.Match) {
			bucket[i] = nf
			t.storeBucket(key, indexed, bucket)
			return true
		}
	}
	bucket = append(bucket, nf)
	t.storeBucket(key, indexed, bucket)
	t.count++
	return false
}

// Delete removes the flow with exactly this match and priority (OpenFlow
// DELETE_STRICT). It reports whether a flow was removed.
func (t *FlowTable) Delete(m Match, priority uint16) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	bucket, key, indexed := t.bucketFor(m)
	for i, old := range bucket {
		if old.Priority == priority && old.Match.Equal(m) {
			bucket = append(bucket[:i], bucket[i+1:]...)
			t.storeBucket(key, indexed, bucket)
			t.count--
			return true
		}
	}
	return false
}

// DeleteByCookie removes every flow with the given cookie and returns the
// number removed.
func (t *FlowTable) DeleteByCookie(cookie uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := 0
	filter := func(bucket []*Flow) []*Flow {
		out := bucket[:0]
		for _, f := range bucket {
			if f.Cookie == cookie {
				removed++
				continue
			}
			out = append(out, f)
		}
		return out
	}
	for key, bucket := range t.byDst {
		nb := filter(bucket)
		if len(nb) == 0 {
			delete(t.byDst, key)
		} else {
			t.byDst[key] = nb
		}
	}
	t.wild = filter(t.wild)
	t.count -= removed
	return removed
}

func (t *FlowTable) bucketFor(m Match) (bucket []*Flow, key packet.MAC, indexed bool) {
	if m.DstMAC != nil {
		return t.byDst[*m.DstMAC], *m.DstMAC, true
	}
	return t.wild, packet.MAC{}, false
}

func (t *FlowTable) storeBucket(key packet.MAC, indexed bool, bucket []*Flow) {
	if indexed {
		if len(bucket) == 0 {
			delete(t.byDst, key)
		} else {
			t.byDst[key] = bucket
		}
	} else {
		t.wild = bucket
	}
}

// Lookup returns the highest-priority flow matching the frame, breaking
// priority ties by earliest installation. It returns nil when nothing
// matches.
func (t *FlowTable) Lookup(inPort uint16, eth *packet.Ethernet) *Flow {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var best *Flow
	consider := func(f *Flow) {
		if !f.Match.Matches(inPort, eth) {
			return
		}
		if best == nil || f.Priority > best.Priority ||
			(f.Priority == best.Priority && f.seq < best.seq) {
			best = f
		}
	}
	for _, f := range t.byDst[eth.Dst] {
		consider(f)
	}
	for _, f := range t.wild {
		consider(f)
	}
	return best
}

// Process runs a frame through the table: it decodes the Ethernet header,
// finds the matching flow, applies its actions and returns the frames to
// emit. ok is false on a table miss (the frame is counted and dropped; the
// switch device may instead punt it to the controller).
func (t *FlowTable) Process(inPort uint16, frame []byte) (out []Egress, ok bool) {
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		return nil, false
	}
	f := t.Lookup(inPort, &eth)
	if f == nil {
		t.mu.Lock()
		t.misses++
		t.mu.Unlock()
		return nil, false
	}
	t.mu.Lock()
	f.packets++
	f.bytes += uint64(len(frame))
	actions := f.Actions
	t.mu.Unlock()

	cur := frame
	modified := false
	ensureOwned := func() {
		if !modified {
			cur = append([]byte(nil), cur...)
			modified = true
		}
	}
	for _, a := range actions {
		switch a.Type {
		case ActionSetDstMAC:
			ensureOwned()
			copy(cur[0:6], a.MAC[:])
		case ActionSetSrcMAC:
			ensureOwned()
			copy(cur[6:12], a.MAC[:])
		case ActionOutput:
			emit := cur
			if modified {
				emit = append([]byte(nil), cur...)
			}
			out = append(out, Egress{Port: a.Port, Frame: emit})
		}
	}
	return out, true
}

// Flows returns a snapshot of all flows ordered by priority (desc) then
// installation order, for the ops endpoint and tests.
func (t *FlowTable) Flows() []Flow {
	t.mu.RLock()
	defer t.mu.RUnlock()
	snap := make([]Flow, 0, t.count)
	add := func(f *Flow) {
		c := *f
		c.Actions = append([]Action(nil), f.Actions...)
		snap = append(snap, c)
	}
	for _, bucket := range t.byDst {
		for _, f := range bucket {
			add(f)
		}
	}
	for _, f := range t.wild {
		add(f)
	}
	sort.Slice(snap, func(i, j int) bool {
		if snap[i].Priority != snap[j].Priority {
			return snap[i].Priority > snap[j].Priority
		}
		return snap[i].seq < snap[j].seq
	})
	return snap
}
