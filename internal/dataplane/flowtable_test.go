package dataplane

import (
	"net/netip"
	"testing"

	"supercharged/internal/packet"
)

var (
	vmac    = packet.MustParseMAC("02:53:43:00:00:01")
	r2mac   = packet.MustParseMAC("01:aa:00:00:00:01")
	r3mac   = packet.MustParseMAC("02:bb:00:00:00:01")
	someSrc = packet.MustParseMAC("00:ff:00:00:00:09")
)

func frameTo(dst packet.MAC) []byte {
	buf := packet.NewBuffer()
	f, err := packet.UDPFrame(buf, someSrc, dst,
		netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("1.0.0.1"), 5000, 9, []byte("x"))
	if err != nil {
		panic(err)
	}
	return append([]byte(nil), f...)
}

func TestFlowTableBackupGroupRewrite(t *testing.T) {
	// The paper's central rule: match VMAC, rewrite to the live next-hop
	// MAC and output on its port.
	tbl := NewFlowTable()
	tbl.Upsert(Flow{
		Priority: 100,
		Match:    MatchDstMAC(vmac),
		Actions:  []Action{SetDstMAC(r2mac), Output(1)},
	})

	out, ok := tbl.Process(0, frameTo(vmac))
	if !ok || len(out) != 1 {
		t.Fatalf("process = %v, %v", out, ok)
	}
	if out[0].Port != 1 {
		t.Fatalf("egress port %d", out[0].Port)
	}
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(out[0].Frame); err != nil {
		t.Fatal(err)
	}
	if eth.Dst != r2mac {
		t.Fatalf("dst not rewritten: %s", eth.Dst)
	}

	// Failure: modify the rule to point at the backup (Listing 2).
	tbl.Upsert(Flow{
		Priority: 100,
		Match:    MatchDstMAC(vmac),
		Actions:  []Action{SetDstMAC(r3mac), Output(2)},
	})
	if tbl.Len() != 1 {
		t.Fatalf("upsert duplicated the flow: len %d", tbl.Len())
	}
	out, _ = tbl.Process(0, frameTo(vmac))
	eth.DecodeFromBytes(out[0].Frame)
	if eth.Dst != r3mac || out[0].Port != 2 {
		t.Fatalf("after rewrite: dst %s port %d", eth.Dst, out[0].Port)
	}
}

func TestFlowTableMissCountsAndDrops(t *testing.T) {
	tbl := NewFlowTable()
	out, ok := tbl.Process(0, frameTo(r2mac))
	if ok || out != nil {
		t.Fatal("miss produced output")
	}
	if tbl.Misses() != 1 {
		t.Fatalf("misses %d", tbl.Misses())
	}
}

func TestFlowTablePriorityAndTieBreak(t *testing.T) {
	tbl := NewFlowTable()
	et := packet.EtherTypeIPv4
	tbl.Upsert(Flow{Priority: 10, Match: Match{EtherType: &et}, Actions: []Action{Output(1)}, Cookie: 1})
	tbl.Upsert(Flow{Priority: 200, Match: MatchDstMAC(vmac), Actions: []Action{Output(2)}, Cookie: 2})
	// Higher priority dst-MAC rule wins over wildcard.
	out, ok := tbl.Process(0, frameTo(vmac))
	if !ok || out[0].Port != 2 {
		t.Fatalf("priority not honored: %+v %v", out, ok)
	}
	// Non-VMAC traffic falls to the wildcard rule.
	out, ok = tbl.Process(0, frameTo(r2mac))
	if !ok || out[0].Port != 1 {
		t.Fatalf("wildcard miss: %+v %v", out, ok)
	}
	// Equal priority: earliest installed wins.
	tbl2 := NewFlowTable()
	tbl2.Upsert(Flow{Priority: 5, Match: MatchDstMAC(vmac), Actions: []Action{Output(7)}})
	tbl2.Upsert(Flow{Priority: 5, Match: Match{}, Actions: []Action{Output(8)}})
	out, _ = tbl2.Process(0, frameTo(vmac))
	if out[0].Port != 7 {
		t.Fatalf("tie break chose port %d", out[0].Port)
	}
}

func TestFlowTableInPortMatch(t *testing.T) {
	tbl := NewFlowTable()
	inp := uint16(3)
	tbl.Upsert(Flow{Priority: 1, Match: Match{InPort: &inp}, Actions: []Action{Output(9)}})
	if _, ok := tbl.Process(2, frameTo(vmac)); ok {
		t.Fatal("in_port mismatch matched")
	}
	if out, ok := tbl.Process(3, frameTo(vmac)); !ok || out[0].Port != 9 {
		t.Fatal("in_port match failed")
	}
}

func TestFlowTableMultipleOutputsSeeSequentialRewrites(t *testing.T) {
	// OpenFlow semantics: an Output emits the frame as rewritten so far.
	tbl := NewFlowTable()
	tbl.Upsert(Flow{Priority: 1, Match: MatchDstMAC(vmac), Actions: []Action{
		Output(1),        // original dst
		SetDstMAC(r3mac), // rewrite
		Output(2),        // rewritten dst
		SetSrcMAC(r2mac), // second rewrite
		Output(3),        // rewritten src too
	}})
	out, ok := tbl.Process(0, frameTo(vmac))
	if !ok || len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	var eth packet.Ethernet
	eth.DecodeFromBytes(out[0].Frame)
	if eth.Dst != vmac {
		t.Fatal("first output should carry original dst")
	}
	eth.DecodeFromBytes(out[1].Frame)
	if eth.Dst != r3mac || eth.Src != someSrc {
		t.Fatal("second output should carry rewritten dst only")
	}
	eth.DecodeFromBytes(out[2].Frame)
	if eth.Dst != r3mac || eth.Src != r2mac {
		t.Fatal("third output should carry both rewrites")
	}
}

func TestFlowTableDeleteStrict(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Upsert(Flow{Priority: 5, Match: MatchDstMAC(vmac), Actions: []Action{Output(1)}})
	if tbl.Delete(MatchDstMAC(vmac), 6) {
		t.Fatal("delete with wrong priority succeeded")
	}
	if !tbl.Delete(MatchDstMAC(vmac), 5) {
		t.Fatal("strict delete failed")
	}
	if tbl.Len() != 0 {
		t.Fatalf("len %d", tbl.Len())
	}
}

func TestFlowTableDeleteByCookie(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Upsert(Flow{Priority: 1, Match: MatchDstMAC(vmac), Cookie: 7, Actions: []Action{Output(1)}})
	tbl.Upsert(Flow{Priority: 1, Match: MatchDstMAC(r2mac), Cookie: 7, Actions: []Action{Output(1)}})
	tbl.Upsert(Flow{Priority: 1, Match: Match{}, Cookie: 8, Actions: []Action{Output(1)}})
	if n := tbl.DeleteByCookie(7); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len %d", tbl.Len())
	}
}

func TestFlowTableCounters(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Upsert(Flow{Priority: 1, Match: MatchDstMAC(vmac), Actions: []Action{Output(1)}})
	f := frameTo(vmac)
	tbl.Process(0, f)
	tbl.Process(0, f)
	flows := tbl.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows %d", len(flows))
	}
	pkts, bytes := flows[0].Stats()
	if pkts != 2 || bytes != uint64(2*len(f)) {
		t.Fatalf("stats %d/%d", pkts, bytes)
	}
}

func TestFlowTableFlowsSnapshotOrdering(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Upsert(Flow{Priority: 1, Match: MatchDstMAC(r2mac), Actions: []Action{Output(1)}})
	tbl.Upsert(Flow{Priority: 9, Match: MatchDstMAC(vmac), Actions: []Action{Output(2)}})
	tbl.Upsert(Flow{Priority: 9, Match: MatchDstMAC(r3mac), Actions: []Action{Output(3)}})
	fs := tbl.Flows()
	if len(fs) != 3 || fs[0].Priority != 9 || fs[2].Priority != 1 {
		t.Fatalf("snapshot order %+v", fs)
	}
	// Equal priority ordered by installation.
	if *fs[0].Match.DstMAC != vmac {
		t.Fatal("tie order wrong in snapshot")
	}
}

func TestMatchStringAndEqual(t *testing.T) {
	m := MatchDstMAC(vmac)
	if m.String() != "dl_dst=02:53:43:00:00:01" {
		t.Fatalf("String() = %q", m.String())
	}
	if (Match{}).String() != "any" {
		t.Fatal("empty match string")
	}
	if !m.Equal(MatchDstMAC(vmac)) || m.Equal(MatchDstMAC(r2mac)) || m.Equal(Match{}) {
		t.Fatal("Equal misbehaves")
	}
}

func TestActionString(t *testing.T) {
	if Output(3).String() != "output:3" || SetDstMAC(r2mac).String() != "set_dl_dst:01:aa:00:00:00:01" {
		t.Fatal("action strings")
	}
}

func TestFlowTableGarbageFrame(t *testing.T) {
	tbl := NewFlowTable()
	if _, ok := tbl.Process(0, []byte{1, 2, 3}); ok {
		t.Fatal("garbage frame matched")
	}
}

func BenchmarkFlowTableProcess(b *testing.B) {
	tbl := NewFlowTable()
	tbl.Upsert(Flow{Priority: 100, Match: MatchDstMAC(vmac), Actions: []Action{SetDstMAC(r2mac), Output(1)}})
	f := frameTo(vmac)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Process(0, f); !ok {
			b.Fatal("miss")
		}
	}
}
