package dataplane

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"supercharged/internal/clock"
	"supercharged/internal/packet"
)

var (
	nhR2 = L2NH{MAC: packet.MustParseMAC("01:aa:00:00:00:01"), Port: 1}
	nhR3 = L2NH{MAC: packet.MustParseMAC("02:bb:00:00:00:01"), Port: 2}
)

func TestFlatFIBLoadSyncAndLookup(t *testing.T) {
	f := NewFlatFIB(clock.NewVirtualAtZero(), time.Millisecond)
	f.LoadSync([]FIBOp{
		{Prefix: mustPfx("1.0.0.0/24"), NH: nhR2},
		{Prefix: mustPfx("1.0.0.0/16"), NH: nhR3},
	})
	if f.Len() != 2 {
		t.Fatalf("len %d", f.Len())
	}
	nh, p, ok := f.Lookup(mustAddr("1.0.0.7"))
	if !ok || nh != nhR2 || p != mustPfx("1.0.0.0/24") {
		t.Fatalf("lookup = %v %v %v", nh, p, ok)
	}
	nh, _, _ = f.Lookup(mustAddr("1.0.9.9"))
	if nh != nhR3 {
		t.Fatalf("covering lookup = %v", nh)
	}
}

func TestFlatFIBSerializedUpdateTiming(t *testing.T) {
	// The core property behind Fig. 5: N queued updates complete at
	// exactly i×perEntry, serialized.
	v := clock.NewVirtualAtZero()
	const perEntry = 280 * time.Microsecond
	f := NewFlatFIB(v, perEntry)

	const n = 1000
	ops := make([]FIBOp, n)
	for i := range ops {
		ops[i] = FIBOp{Prefix: mustPfx(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256)), NH: nhR2}
	}
	f.LoadSync(ops)

	// Now rewrite all entries to the backup NH through the timed path.
	var installTimes []time.Duration
	f.OnApplied = func(op FIBOp, at time.Time) {
		installTimes = append(installTimes, at.Sub(time.Unix(0, 0).UTC()))
	}
	rewrites := make([]FIBOp, n)
	for i := range rewrites {
		rewrites[i] = FIBOp{Prefix: ops[i].Prefix, NH: nhR3}
	}
	f.Enqueue(rewrites...)
	v.RunUntilIdle()

	if len(installTimes) != n {
		t.Fatalf("%d installs, want %d", len(installTimes), n)
	}
	for i, at := range installTimes {
		want := time.Duration(i+1) * perEntry
		if at != want {
			t.Fatalf("install %d at %v, want %v", i, at, want)
		}
	}
	// Last entry: n × 280µs = 280ms for 1000 entries (paper: 140.9s for 500k).
	if got, want := installTimes[n-1], 280*time.Millisecond; got != want {
		t.Fatalf("last install at %v, want %v", got, want)
	}
	if nh, _ := f.Get(mustPfx("10.0.0.0/24")); nh != nhR3 {
		t.Fatal("rewrite not applied")
	}
}

func TestFlatFIBQueuedUpdatesInvisibleUntilApplied(t *testing.T) {
	v := clock.NewVirtualAtZero()
	f := NewFlatFIB(v, time.Millisecond)
	f.LoadSync([]FIBOp{{Prefix: mustPfx("10.0.0.0/24"), NH: nhR2}})
	f.Enqueue(FIBOp{Prefix: mustPfx("10.0.0.0/24"), NH: nhR3})
	if nh, _ := f.Get(mustPfx("10.0.0.0/24")); nh != nhR2 {
		t.Fatal("queued update visible before applied")
	}
	if f.QueueLen() != 1 {
		t.Fatalf("queue len %d", f.QueueLen())
	}
	v.Advance(time.Millisecond)
	if nh, _ := f.Get(mustPfx("10.0.0.0/24")); nh != nhR3 {
		t.Fatal("update not applied after perEntry")
	}
	if f.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestFlatFIBEnqueueWhileBusyExtendsQueue(t *testing.T) {
	v := clock.NewVirtualAtZero()
	f := NewFlatFIB(v, time.Millisecond)
	f.Enqueue(FIBOp{Prefix: mustPfx("10.0.0.0/24"), NH: nhR2})
	f.Enqueue(FIBOp{Prefix: mustPfx("10.0.1.0/24"), NH: nhR2})
	v.Advance(time.Millisecond)
	if f.Len() != 1 {
		t.Fatalf("after 1ms len %d, want 1", f.Len())
	}
	v.Advance(time.Millisecond)
	if f.Len() != 2 {
		t.Fatalf("after 2ms len %d, want 2", f.Len())
	}
	if f.Applied() != 2 {
		t.Fatalf("applied %d", f.Applied())
	}
}

func TestFlatFIBDelete(t *testing.T) {
	v := clock.NewVirtualAtZero()
	f := NewFlatFIB(v, 0)
	f.LoadSync([]FIBOp{
		{Prefix: mustPfx("10.0.0.0/24"), NH: nhR2},
		{Prefix: mustPfx("10.0.0.0/8"), NH: nhR3},
	})
	f.Enqueue(FIBOp{Prefix: mustPfx("10.0.0.0/24"), Delete: true})
	v.RunUntilIdle()
	if f.Len() != 1 {
		t.Fatalf("len %d", f.Len())
	}
	nh, _, ok := f.Lookup(mustAddr("10.0.0.5"))
	if !ok || nh != nhR3 {
		t.Fatal("fallback to covering prefix failed after delete")
	}
}

func TestFlatFIBPositionTracksInsertionOrder(t *testing.T) {
	f := NewFlatFIB(clock.NewVirtualAtZero(), 0)
	f.LoadSync([]FIBOp{
		{Prefix: mustPfx("10.0.0.0/24"), NH: nhR2},
		{Prefix: mustPfx("20.0.0.0/24"), NH: nhR2},
		{Prefix: mustPfx("30.0.0.0/24"), NH: nhR2},
	})
	// Rewriting an entry must keep its original position.
	f.LoadSync([]FIBOp{{Prefix: mustPfx("20.0.0.0/24"), NH: nhR3}})
	pos, ok := f.Position(mustPfx("20.0.0.0/24"))
	if !ok || pos != 1 {
		t.Fatalf("position = %d,%v", pos, ok)
	}
	var order []netip.Prefix
	f.WalkOrder(func(p netip.Prefix, nh L2NH) bool {
		order = append(order, p)
		return true
	})
	if len(order) != 3 || order[1] != mustPfx("20.0.0.0/24") {
		t.Fatalf("walk order %v", order)
	}
}

func TestFlatFIBL2NHString(t *testing.T) {
	if s := nhR2.String(); s != "(01:aa:00:00:00:01, 1)" {
		t.Fatalf("String() = %q", s)
	}
}

func BenchmarkFlatFIBEnqueueApply(b *testing.B) {
	v := clock.NewVirtualAtZero()
	f := NewFlatFIB(v, time.Microsecond)
	ops := make([]FIBOp, 1024)
	for i := range ops {
		ops[i] = FIBOp{Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24), NH: nhR2}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Enqueue(ops[i&1023])
		v.RunUntilIdle()
	}
}
