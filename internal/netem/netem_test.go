package netem

import (
	"testing"
	"time"

	"supercharged/internal/clock"
)

func TestLinkDeliversWithLatencyOnVirtualClock(t *testing.T) {
	v := clock.NewVirtualAtZero()
	l := NewLink(v, "r1", "sw", 3*time.Millisecond)
	a, b := l.Ports()

	var gotAt time.Time
	var got []byte
	b.Handle(func(frame []byte) {
		gotAt = v.Now()
		got = frame
	})

	if !a.Send([]byte{1, 2, 3}) {
		t.Fatal("send failed on up link")
	}
	v.Advance(2 * time.Millisecond)
	if got != nil {
		t.Fatal("frame delivered before latency elapsed")
	}
	v.Advance(time.Millisecond)
	if got == nil {
		t.Fatal("frame not delivered after latency")
	}
	if gotAt.Sub(time.Unix(0, 0).UTC()) != 3*time.Millisecond {
		t.Fatalf("delivered at %v, want 3ms", gotAt)
	}
	if got[0] != 1 || len(got) != 3 {
		t.Fatalf("frame %v", got)
	}
}

func TestLinkIsBidirectional(t *testing.T) {
	v := clock.NewVirtualAtZero()
	l := NewLink(v, "x", "y", 0)
	a, b := l.Ports()
	var fromA, fromB []byte
	a.Handle(func(f []byte) { fromB = f })
	b.Handle(func(f []byte) { fromA = f })
	a.Send([]byte("ab"))
	b.Send([]byte("ba"))
	v.RunUntilIdle()
	if string(fromA) != "ab" || string(fromB) != "ba" {
		t.Fatalf("fromA=%q fromB=%q", fromA, fromB)
	}
}

func TestSendCopiesFrame(t *testing.T) {
	v := clock.NewVirtualAtZero()
	l := NewLink(v, "x", "y", 0)
	a, b := l.Ports()
	var got []byte
	b.Handle(func(f []byte) { got = f })
	buf := []byte{42}
	a.Send(buf)
	buf[0] = 7 // mutate after send
	v.RunUntilIdle()
	if got[0] != 42 {
		t.Fatal("link aliased the caller's buffer")
	}
}

func TestDownLinkRefusesAndCounts(t *testing.T) {
	v := clock.NewVirtualAtZero()
	l := NewLink(v, "x", "y", 0)
	a, _ := l.Ports()
	l.Fail()
	if a.Send([]byte{1}) {
		t.Fatal("send succeeded on down link")
	}
	if s := a.Stats(); s.TxDrops != 1 || s.TxFrames != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFramesInFlightAreLostOnFailure(t *testing.T) {
	v := clock.NewVirtualAtZero()
	l := NewLink(v, "x", "y", 10*time.Millisecond)
	a, b := l.Ports()
	delivered := false
	b.Handle(func([]byte) { delivered = true })
	a.Send([]byte{1})
	v.Advance(5 * time.Millisecond)
	l.Fail()
	v.Advance(10 * time.Millisecond)
	if delivered {
		t.Fatal("frame survived a mid-flight link failure")
	}
	if s := b.Stats(); s.RxDrops != 1 {
		t.Fatalf("rx drops %d, want 1", s.RxDrops)
	}
}

func TestLinkRecoveryDeliversAgain(t *testing.T) {
	v := clock.NewVirtualAtZero()
	l := NewLink(v, "x", "y", 0)
	a, b := l.Ports()
	n := 0
	b.Handle(func([]byte) { n++ })
	l.Fail()
	a.Send([]byte{1})
	l.SetUp(true)
	a.Send([]byte{2})
	v.RunUntilIdle()
	if n != 1 {
		t.Fatalf("delivered %d frames, want 1", n)
	}
}

func TestWatchersFireOnTransitions(t *testing.T) {
	l := NewLink(clock.NewVirtualAtZero(), "x", "y", 0)
	var events []bool
	l.Watch(func(up bool) { events = append(events, up) })
	l.Fail()
	l.Fail() // no transition
	l.SetUp(true)
	if len(events) != 2 || events[0] != false || events[1] != true {
		t.Fatalf("events %v", events)
	}
}

func TestChannelModeDelivery(t *testing.T) {
	// Real clock: exercise the goroutine path end to end.
	l := NewLink(clock.Real{}, "x", "y", 0)
	a, b := l.Ports()
	rx := b.Recv()
	a.Send([]byte("hello"))
	select {
	case f := <-rx:
		if string(f) != "hello" {
			t.Fatalf("frame %q", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery in channel mode")
	}
	if s := b.Stats(); s.RxFrames != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestChannelOverflowDrops(t *testing.T) {
	v := clock.NewVirtualAtZero()
	l := NewLink(v, "x", "y", 0)
	a, b := l.Ports()
	_ = b.Recv() // channel mode, but nobody draining
	for i := 0; i < DefaultQueueLen+10; i++ {
		a.Send([]byte{byte(i)})
	}
	v.RunUntilIdle()
	s := b.Stats()
	if s.RxDrops != 10 {
		t.Fatalf("rx drops %d, want 10", s.RxDrops)
	}
	if s.RxFrames != DefaultQueueLen {
		t.Fatalf("rx frames %d, want %d", s.RxFrames, DefaultQueueLen)
	}
}

func TestStringDescribesState(t *testing.T) {
	l := NewLink(clock.NewVirtualAtZero(), "r1", "sw", time.Millisecond)
	if s := l.String(); s != "r1<->sw(up,1ms)" {
		t.Fatalf("String() = %q", s)
	}
	l.Fail()
	if s := l.String(); s != "r1<->sw(down,1ms)" {
		t.Fatalf("String() = %q", s)
	}
}
