// Package netem emulates the lab's physical layer: point-to-point Ethernet
// links with configurable propagation latency, administrative up/down state
// (the experiment's failure injection — "we then disconnected R2 from the
// switch"), and frame counters.
//
// Delivery is clock-driven: each transmitted frame is scheduled on the
// link's Clock, so the same code runs in real time (goroutine timers) and in
// the discrete-event simulation (virtual clock). A receiving Port delivers
// frames either to a registered handler (callback mode, used by the
// simulation and by devices with their own serialization) or to a buffered
// channel (channel mode, used by goroutine-per-device real-mode code).
package netem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"supercharged/internal/clock"
)

// DefaultQueueLen is the per-port receive queue length in channel mode.
// Frames arriving at a full queue are dropped and counted, like a switch
// ingress queue overflow.
const DefaultQueueLen = 1024

// Port is one end of a Link. Frames are sent with Send and received either
// via Handle (callback mode) or Recv (channel mode).
type Port struct {
	name string
	link *Link
	peer *Port

	mu      sync.Mutex
	handler func([]byte)
	ch      chan []byte

	rx, tx, rxDrop, txDrop atomic.Uint64
}

// Name returns the port's diagnostic name.
func (p *Port) Name() string { return p.name }

// Link returns the link this port belongs to.
func (p *Port) Link() *Link { return p.link }

// Handle switches the port to callback mode: every delivered frame invokes
// fn. fn runs on the clock's timer context and must not block. Passing nil
// reverts to channel mode.
func (p *Port) Handle(fn func(frame []byte)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handler = fn
}

// Recv returns the channel-mode receive queue.
func (p *Port) Recv() <-chan []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ch == nil {
		p.ch = make(chan []byte, DefaultQueueLen)
	}
	return p.ch
}

// Send transmits a frame toward the peer port. The frame contents are copied
// so the caller may reuse its buffer. Send reports whether the frame entered
// the link (false when the link is down).
func (p *Port) Send(frame []byte) bool {
	l := p.link
	if !l.Up() {
		p.txDrop.Add(1)
		return false
	}
	p.tx.Add(1)
	buf := append([]byte(nil), frame...)
	peer := p.peer
	deliver := func() {
		// Frames in flight when the link fails are lost: the paper's
		// traffic sink measures exactly this black-holing.
		if !l.Up() {
			peer.rxDrop.Add(1)
			return
		}
		peer.deliver(buf)
	}
	if l.latency <= 0 {
		// Still go through the clock so ordering is event-driven and
		// deterministic under the virtual clock.
		l.clk.AfterFunc(0, deliver)
	} else {
		l.clk.AfterFunc(l.latency, deliver)
	}
	return true
}

func (p *Port) deliver(frame []byte) {
	p.mu.Lock()
	h := p.handler
	ch := p.ch
	p.mu.Unlock()
	if h != nil {
		p.rx.Add(1)
		h(frame)
		return
	}
	if ch == nil {
		p.mu.Lock()
		if p.ch == nil {
			p.ch = make(chan []byte, DefaultQueueLen)
		}
		ch = p.ch
		p.mu.Unlock()
	}
	select {
	case ch <- frame:
		p.rx.Add(1)
	default:
		p.rxDrop.Add(1)
	}
}

// Stats is a snapshot of a port's frame counters.
type Stats struct {
	TxFrames, TxDrops uint64
	RxFrames, RxDrops uint64
}

// Stats returns the port's counters.
func (p *Port) Stats() Stats {
	return Stats{
		TxFrames: p.tx.Load(), TxDrops: p.txDrop.Load(),
		RxFrames: p.rx.Load(), RxDrops: p.rxDrop.Load(),
	}
}

// Link is a bidirectional point-to-point Ethernet link.
type Link struct {
	a, b    *Port
	clk     clock.Clock
	latency time.Duration
	up      atomic.Bool

	mu       sync.Mutex
	watchers []func(up bool)
}

// NewLink creates a link between two named ports with the given one-way
// propagation latency, initially up.
func NewLink(clk clock.Clock, nameA, nameB string, latency time.Duration) *Link {
	if clk == nil {
		clk = clock.System
	}
	l := &Link{clk: clk, latency: latency}
	l.a = &Port{name: nameA, link: l}
	l.b = &Port{name: nameB, link: l}
	l.a.peer = l.b
	l.b.peer = l.a
	l.up.Store(true)
	return l
}

// Ports returns the two endpoints of the link.
func (l *Link) Ports() (*Port, *Port) { return l.a, l.b }

// A returns the first endpoint.
func (l *Link) A() *Port { return l.a }

// B returns the second endpoint.
func (l *Link) B() *Port { return l.b }

// Latency returns the configured one-way latency.
func (l *Link) Latency() time.Duration { return l.latency }

// Up reports whether the link is administratively up.
func (l *Link) Up() bool { return l.up.Load() }

// SetUp raises or fails the link. Watchers registered with Watch are
// notified on every transition.
func (l *Link) SetUp(up bool) {
	if l.up.Swap(up) == up {
		return
	}
	l.mu.Lock()
	watchers := append([]func(up bool){}, l.watchers...)
	l.mu.Unlock()
	for _, w := range watchers {
		w(up)
	}
}

// Fail is SetUp(false): the experiment's "disconnect R2" event.
func (l *Link) Fail() { l.SetUp(false) }

// Watch registers fn to be called on every up/down transition. fn runs
// synchronously inside SetUp.
func (l *Link) Watch(fn func(up bool)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.watchers = append(l.watchers, fn)
}

// String describes the link for diagnostics.
func (l *Link) String() string {
	state := "up"
	if !l.Up() {
		state = "down"
	}
	return fmt.Sprintf("%s<->%s(%s,%v)", l.a.name, l.b.name, state, l.latency)
}
