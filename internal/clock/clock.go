// Package clock abstracts time so that every component in this repository —
// BGP hold timers, BFD detection timers, FIB updaters, traffic sources — can
// run either against the wall clock (real mode) or against a discrete-event
// virtual clock (simulation mode). The virtual clock is what lets the
// convergence lab replay a 140-second router convergence in milliseconds of
// CPU time, deterministically.
package clock

import (
	"context"
	"time"
)

// Clock is the minimal timer surface used throughout the repository. Real
// wraps package time; Virtual implements a discrete-event scheduler.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d. On a Virtual clock the
	// caller resumes when simulated time passes d (some other goroutine
	// must drive the clock forward).
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run once d has elapsed. f runs on its own
	// goroutine for the real clock and inline with the event loop for the
	// virtual clock; in both cases f must not block for long.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
}

// Timer is a handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing.
	Stop() bool
	// Reset reschedules the timer to fire after d. It reports whether the
	// timer had been active.
	Reset(d time.Duration) bool
}

// Ticker delivers the clock's time at a fixed period on C.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// SleepCtx blocks for d of clk time, abandoning the wait when ctx is
// done (returning ctx's error, nil after a full sleep). It is the
// shared pacing/backoff primitive for services that must stay
// cancellable mid-sleep: the daemon's rate pacer, its retry backoff and
// the chaos layer's injected stalls all wait through it.
func SleepCtx(ctx context.Context, clk Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	done := make(chan struct{})
	tm := clk.AfterFunc(d, func() { close(done) })
	defer tm.Stop()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Real is a Clock backed by package time. The zero value is ready to use.
type Real struct{}

// System is the shared wall-clock instance.
var System Clock = Real{}

func (Real) Now() time.Time                         { return time.Now() }
func (Real) Sleep(d time.Duration)                  { time.Sleep(d) }
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

func (Real) NewTicker(d time.Duration) Ticker {
	return realTicker{time.NewTicker(d)}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool                 { return t.t.Stop() }
func (t realTimer) Reset(d time.Duration) bool { return t.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }
