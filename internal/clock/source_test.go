package clock

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- Ordering contract, pinned for the virtual Source -----------------
//
// These tests freeze the same-timestamp semantics the simulation results
// depend on; the real-time sources inherit the contract (see below), so
// any change here is a model change and must be deliberate.

func TestOrderingEqualDeadlinesAreFIFO(t *testing.T) {
	v := NewVirtualAtZero()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		v.AfterFunc(time.Millisecond, func() { got = append(got, i) })
	}
	v.Drive(context.Background(), 1<<30)
	for i, x := range got {
		if x != i {
			t.Fatalf("equal-deadline events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestOrderingZeroDelayFromCallbackRunsAfterQueuedPeers(t *testing.T) {
	v := NewVirtualAtZero()
	var got []string
	v.AfterFunc(time.Millisecond, func() {
		got = append(got, "a")
		// Scheduled at the current instant: must run after "b" and "c",
		// which were queued for this instant first.
		v.AfterFunc(0, func() { got = append(got, "a-child") })
	})
	v.AfterFunc(time.Millisecond, func() { got = append(got, "b") })
	v.AfterFunc(time.Millisecond, func() { got = append(got, "c") })
	v.Drive(context.Background(), 1<<30)
	want := []string{"a", "b", "c", "a-child"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestOrderingNegativeDelayClampsToZero(t *testing.T) {
	v := NewVirtualAtZero()
	ran := false
	v.AfterFunc(-time.Hour, func() { ran = true })
	if ran {
		t.Fatal("negative-delay callback ran inline with AfterFunc")
	}
	v.Drive(context.Background(), 1<<30)
	if !ran {
		t.Fatal("negative-delay callback never ran")
	}
	if got := v.Now().Sub(time.Unix(0, 0).UTC()); got != 0 {
		t.Fatalf("clock moved to +%v for a clamped event, want +0", got)
	}
}

func TestOrderingResetGetsFreshSequenceNumber(t *testing.T) {
	v := NewVirtualAtZero()
	var got []string
	tm := v.AfterFunc(time.Millisecond, func() { got = append(got, "reset") })
	v.AfterFunc(2*time.Millisecond, func() { got = append(got, "first") })
	// Reset the timer onto the already-occupied 2ms deadline: contract
	// says it fires after the event that was there first.
	tm.Reset(2 * time.Millisecond)
	v.Drive(context.Background(), 1<<30)
	if len(got) != 2 || got[0] != "first" || got[1] != "reset" {
		t.Fatalf("got %v, want [first reset]", got)
	}
}

// --- Source interface on Virtual --------------------------------------

func TestVirtualDriveMatchesRunUntilIdle(t *testing.T) {
	run := func(drive bool) (total int, end time.Time) {
		v := NewVirtualAtZero()
		for i := 1; i <= 4; i++ {
			d := time.Duration(i) * time.Second
			v.AfterFunc(d, func() { total++ })
		}
		if drive {
			end, _ = v.Drive(context.Background(), 1<<30)
		} else {
			end = v.RunUntilIdle()
		}
		return total, end
	}
	n1, e1 := run(true)
	n2, e2 := run(false)
	if n1 != n2 || !e1.Equal(e2) {
		t.Fatalf("Drive (%d, %v) != RunUntilIdle (%d, %v)", n1, e1, n2, e2)
	}
}

func TestVirtualDriveHonoursCancel(t *testing.T) {
	v := NewVirtualAtZero()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v.AfterFunc(time.Second, func() { t.Error("fired under a cancelled context") })
	if _, err := v.Drive(ctx, 1<<30); err == nil {
		t.Fatal("Drive returned nil error under a cancelled context")
	}
}

// --- Wall source -------------------------------------------------------

func TestWallDriveRunsCallbacksSerially(t *testing.T) {
	w := NewWall()
	var got []int
	// Same-deadline FIFO: all due immediately, must fire in scheduling
	// order on the driving goroutine.
	for i := 0; i < 50; i++ {
		i := i
		w.AfterFunc(0, func() { got = append(got, i) })
	}
	if _, err := w.Drive(context.Background(), 1<<30); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("fired %d, want 50", len(got))
	}
	for i, x := range got {
		if x != i {
			t.Fatalf("wall equal-deadline events not FIFO: %v", got)
		}
	}
	if w.Pending() != 0 {
		t.Fatalf("%d events still pending", w.Pending())
	}
}

func TestWallDrivePacesAgainstRealTime(t *testing.T) {
	w := NewWall()
	var fired time.Time
	w.AfterFunc(30*time.Millisecond, func() { fired = time.Now() })
	start := time.Now()
	if _, err := w.Drive(context.Background(), 1<<30); err != nil {
		t.Fatal(err)
	}
	if el := fired.Sub(start); el < 25*time.Millisecond {
		t.Fatalf("callback fired after %v, want >= ~30ms", el)
	}
}

func TestWallChainedCallbacks(t *testing.T) {
	w := NewWall()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 5 {
			w.AfterFunc(time.Millisecond, chain)
		}
	}
	w.AfterFunc(time.Millisecond, chain)
	if _, err := w.Drive(context.Background(), 1<<30); err != nil {
		t.Fatal(err)
	}
	if depth != 5 {
		t.Fatalf("chain depth %d, want 5", depth)
	}
}

func TestWallWakesOnCrossGoroutineSchedule(t *testing.T) {
	w := NewWall()
	// Park Drive on a far deadline, then schedule a near one from
	// another goroutine: Drive must wake and fire it promptly.
	w.AfterFunc(10*time.Second, func() {})
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		w.AfterFunc(0, func() { close(done) })
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go w.Drive(ctx, 1<<30)
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatal("cross-goroutine schedule never woke Drive")
	}
}

func TestWallTimerStopAndTicker(t *testing.T) {
	w := NewWall()
	fired := false
	tm := w.AfterFunc(50*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending wall timer")
	}
	ticks := 0
	tk := w.NewTicker(5 * time.Millisecond)
	stop := w.AfterFunc(26*time.Millisecond, func() { tk.Stop() })
	defer stop.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		w.Drive(context.Background(), 1)
		select {
		case <-tk.C():
			ticks++
		default:
		}
		if w.Pending() == 0 {
			break
		}
	}
	if fired {
		t.Fatal("stopped wall timer fired")
	}
	if ticks < 2 {
		t.Fatalf("wall ticker fired %d times over ~26ms at 5ms, want >= 2", ticks)
	}
}

func TestWallDriveCancel(t *testing.T) {
	w := NewWall()
	w.AfterFunc(time.Hour, func() { t.Error("fired") })
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := w.Drive(ctx, 1<<30); err != context.Canceled {
		t.Fatalf("Drive error = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not interrupt the deadline wait")
	}
}

// --- Threaded source ---------------------------------------------------

func TestThreadedDriveWaitsForQuiescence(t *testing.T) {
	c := NewThreaded()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.AfterFunc(time.Duration(i%5)*time.Millisecond, func() { fired.Add(1) })
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Drive(ctx, 0); err != nil {
		t.Fatalf("Drive: %v (pending=%d)", err, c.Pending())
	}
	if fired.Load() != 20 {
		t.Fatalf("fired %d, want 20", fired.Load())
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after quiescence", c.Pending())
	}
}

func TestThreadedStopReleasesPending(t *testing.T) {
	c := NewThreaded()
	tm := c.AfterFunc(time.Hour, func() { t.Error("fired") })
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after Stop, want 0", c.Pending())
	}
}

func TestThreadedResetReArmsAndCounts(t *testing.T) {
	c := NewThreaded()
	done := make(chan struct{})
	var once sync.Once
	tm := c.AfterFunc(time.Hour, func() { once.Do(func() { close(done) }) })
	if !tm.Reset(time.Millisecond) {
		t.Fatal("Reset on active timer returned false")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reset timer never fired")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Drive(ctx, 0); err != nil {
		t.Fatalf("Drive after fire: %v (pending=%d)", err, c.Pending())
	}
	// Re-arm after firing: pending goes back up, Stop releases it.
	if tm.Reset(time.Hour) {
		t.Fatal("Reset on fired timer returned true")
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d after re-arm, want 1", c.Pending())
	}
	tm.Stop()
}

func TestThreadedTickerCountsUntilStop(t *testing.T) {
	c := NewThreaded()
	tk := c.NewTicker(time.Millisecond)
	if c.Pending() != 1 {
		t.Fatalf("pending = %d with live ticker, want 1", c.Pending())
	}
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("threaded ticker never ticked")
	}
	tk.Stop()
	tk.Stop() // idempotent
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after ticker Stop, want 0", c.Pending())
	}
}

func TestThreadedDriveCancel(t *testing.T) {
	c := NewThreaded()
	tm := c.AfterFunc(time.Hour, func() {})
	defer tm.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Drive(ctx, 0); err != context.Canceled {
		t.Fatalf("Drive error = %v, want context.Canceled", err)
	}
}
