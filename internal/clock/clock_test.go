package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualNowStartsAtOrigin(t *testing.T) {
	start := time.Date(2015, 5, 25, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", v.Now(), start)
	}
}

func TestVirtualAfterFuncOrdering(t *testing.T) {
	v := NewVirtualAtZero()
	var got []int
	v.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	v.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	v.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	v.Advance(25 * time.Millisecond)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("after 25ms got %v, want [1 2]", got)
	}
	v.Advance(10 * time.Millisecond)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("after 35ms got %v, want [1 2 3]", got)
	}
}

func TestVirtualFIFOAmongEqualDeadlines(t *testing.T) {
	v := NewVirtualAtZero()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(time.Millisecond, func() { got = append(got, i) })
	}
	v.Advance(time.Millisecond)
	for i, x := range got {
		if x != i {
			t.Fatalf("event order %v not FIFO", got)
		}
	}
}

func TestVirtualTimeObservedInsideCallback(t *testing.T) {
	v := NewVirtualAtZero()
	var at time.Time
	v.AfterFunc(42*time.Millisecond, func() { at = v.Now() })
	v.Advance(time.Second)
	if want := v.Now().Add(-time.Second + 42*time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback saw %v, want %v", at, want)
	}
	// After Advance the clock must sit at exactly origin+1s.
	if got := v.Now().Sub(time.Unix(0, 0).UTC()); got != time.Second {
		t.Fatalf("clock advanced %v, want 1s", got)
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtualAtZero()
	fired := false
	tm := v.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	v.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualTimerReset(t *testing.T) {
	v := NewVirtualAtZero()
	n := 0
	tm := v.AfterFunc(10*time.Millisecond, func() { n++ })
	if !tm.Reset(50 * time.Millisecond) {
		t.Fatal("Reset on active timer returned false")
	}
	v.Advance(20 * time.Millisecond)
	if n != 0 {
		t.Fatal("timer fired at original deadline after Reset")
	}
	v.Advance(40 * time.Millisecond)
	if n != 1 {
		t.Fatalf("timer fired %d times, want 1", n)
	}
	// Reset after firing re-arms.
	if tm.Reset(5 * time.Millisecond) {
		t.Fatal("Reset on fired timer returned true")
	}
	v.Advance(5 * time.Millisecond)
	if n != 2 {
		t.Fatalf("re-armed timer fired %d times, want 2", n)
	}
}

func TestVirtualChainedEventsWithinOneAdvance(t *testing.T) {
	v := NewVirtualAtZero()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 5 {
			v.AfterFunc(10*time.Millisecond, chain)
		}
	}
	v.AfterFunc(10*time.Millisecond, chain)
	v.Advance(time.Second)
	if depth != 5 {
		t.Fatalf("chain depth %d, want 5", depth)
	}
}

func TestVirtualSleepWakesWhenDriven(t *testing.T) {
	v := NewVirtualAtZero()
	done := make(chan struct{})
	go func() {
		v.Sleep(100 * time.Millisecond)
		close(done)
	}()
	// Wait for the sleeper to register its event.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(100 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestVirtualAfterChannel(t *testing.T) {
	v := NewVirtualAtZero()
	ch := v.After(time.Minute)
	v.Advance(time.Minute)
	select {
	case at := <-ch:
		if got := at.Sub(time.Unix(0, 0).UTC()); got != time.Minute {
			t.Fatalf("After delivered %v, want 1m", got)
		}
	default:
		t.Fatal("After channel empty after Advance")
	}
}

func TestVirtualTickerFiresRepeatedly(t *testing.T) {
	v := NewVirtualAtZero()
	tk := v.NewTicker(10 * time.Millisecond)
	defer tk.Stop()
	count := 0
	for i := 0; i < 5; i++ {
		v.Advance(10 * time.Millisecond)
		select {
		case <-tk.C():
			count++
		default:
		}
	}
	if count != 5 {
		t.Fatalf("ticker fired %d times over 50ms, want 5", count)
	}
	tk.Stop()
	v.Advance(100 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatal("ticker fired after Stop")
	default:
	}
}

func TestVirtualRunUntilIdle(t *testing.T) {
	v := NewVirtualAtZero()
	total := 0
	for i := 1; i <= 4; i++ {
		d := time.Duration(i) * time.Second
		v.AfterFunc(d, func() { total++ })
	}
	end := v.RunUntilIdle()
	if total != 4 {
		t.Fatalf("fired %d, want 4", total)
	}
	if got := end.Sub(time.Unix(0, 0).UTC()); got != 4*time.Second {
		t.Fatalf("idle at %v, want 4s", got)
	}
	if v.Pending() != 0 {
		t.Fatalf("%d events still pending", v.Pending())
	}
}

func TestVirtualRunUntilIdleLimitBoundsTickers(t *testing.T) {
	v := NewVirtualAtZero()
	tk := v.NewTicker(time.Millisecond) // reschedules forever
	defer tk.Stop()
	v.RunUntilIdleLimit(100)
	if p := v.Pending(); p != 1 {
		t.Fatalf("pending = %d, want exactly the next tick", p)
	}
}

func TestVirtualConcurrentSchedulers(t *testing.T) {
	v := NewVirtualAtZero()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v.AfterFunc(time.Duration(i)*time.Microsecond, func() { fired.Add(1) })
			}
		}()
	}
	wg.Wait()
	v.Advance(time.Second)
	if fired.Load() != 800 {
		t.Fatalf("fired %d, want 800", fired.Load())
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Real{}
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Now().Sub(t0) <= 0 {
		t.Fatal("real clock did not advance")
	}
	done := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	tm.Stop()
	tk := c.NewTicker(time.Millisecond)
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real ticker never fired")
	}
	tk.Stop()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("real After never fired")
	}
}
