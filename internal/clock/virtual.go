package clock

import (
	"container/heap"
	"context"
	"sync"
	"time"
)

// Virtual is a discrete-event Clock (and Source). Time advances only when
// Advance, Run, RunUntilIdle or Drive is called; scheduled callbacks run
// inline with those calls, in timestamp order (FIFO among equal timestamps).
// All methods are safe for concurrent use, but the typical simulation is
// single-threaded: components schedule work with AfterFunc and one driver
// loop pumps the queue.
//
// Ordering contract — pinned by the ordering tests in clock_test.go and
// source_test.go, and relied on by every simulation result in this
// repository:
//
//  1. Events fire in deadline order.
//  2. Events sharing a deadline fire in the order they were scheduled
//     (FIFO by a per-source sequence number). This includes zero-delay
//     events scheduled from inside a firing callback: they run after
//     every event already queued at the same instant.
//  3. Reset re-enqueues the timer with a fresh sequence number, so a
//     timer Reset onto an already-occupied deadline fires after the
//     events that were there first.
//  4. A negative delay clamps to zero. The event fires at the current
//     time on the next pump — never inline with AfterFunc itself.
//
// Wall implements the same contract for events that are due in the same
// dispatch batch; see source.go.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	queue   eventQueue
	seq     uint64
	running bool
}

// NewVirtual returns a Virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// NewVirtualAtZero returns a Virtual clock starting at the Unix epoch, a
// convenient origin for simulations that only care about elapsed time.
func NewVirtualAtZero() *Virtual {
	return NewVirtual(time.Unix(0, 0).UTC())
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Pending returns the number of scheduled events that have not yet fired.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.queue)
}

// AfterFunc schedules f to run at Now()+d. A non-positive d runs f at the
// current time on the next pump of the event loop (it still requires a
// driver call; it never runs inline with AfterFunc itself).
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.scheduleLocked(d, f)
}

func (v *Virtual) scheduleLocked(d time.Duration, f func()) *virtualTimer {
	if d < 0 {
		d = 0
	}
	ev := &event{at: v.now.Add(d), fn: f, seq: v.seq, clk: v}
	v.seq++
	heap.Push(&v.queue, ev)
	return &virtualTimer{ev: ev}
}

// After returns a channel receiving the virtual time once d has elapsed.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.AfterFunc(d, func() { ch <- v.Now() })
	return ch
}

// Sleep blocks until virtual time has advanced by d. Another goroutine must
// drive the clock (Advance/Run/RunUntilIdle), otherwise Sleep deadlocks.
func (v *Virtual) Sleep(d time.Duration) {
	done := make(chan struct{})
	v.AfterFunc(d, func() { close(done) })
	<-done
}

// NewTicker returns a Ticker firing every d of virtual time.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	t := &virtualTicker{clk: v, period: d, ch: make(chan time.Time, 1)}
	t.arm()
	return t
}

// Advance moves virtual time forward by d, firing every event whose deadline
// falls within the window, in order. It returns the number of events fired.
func (v *Virtual) Advance(d time.Duration) int {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	return v.Run(target)
}

// Run fires events in order until the queue holds no event at or before
// target, then sets the clock to target. It returns the number fired.
func (v *Virtual) Run(target time.Time) int {
	fired := 0
	for {
		v.mu.Lock()
		if len(v.queue) == 0 || v.queue[0].at.After(target) {
			if target.After(v.now) {
				v.now = target
			}
			v.mu.Unlock()
			return fired
		}
		ev := heap.Pop(&v.queue).(*event)
		if ev.at.After(v.now) {
			v.now = ev.at
		}
		ev.fired = true
		v.mu.Unlock()
		ev.fn()
		fired++
	}
}

// RunUntilIdle fires events until the queue is empty and returns the final
// virtual time. Use budget-limited variants for potentially unbounded event
// chains (tickers reschedule themselves forever).
func (v *Virtual) RunUntilIdle() time.Time {
	return v.RunUntilIdleLimit(1 << 62)
}

// RunUntilIdleLimit is RunUntilIdle with an upper bound on fired events. It
// returns the virtual time when it stopped.
func (v *Virtual) RunUntilIdleLimit(maxEvents int) time.Time {
	now, _ := v.RunUntilIdleCtx(context.Background(), maxEvents)
	return now
}

// cancelCheckStride is how many events RunUntilIdleCtx fires between
// context checks: coarse enough that the atomic load stays invisible in
// the event-pump hot path, fine enough that cancellation lands within a
// fraction of a millisecond of host time.
const cancelCheckStride = 256

// RunUntilIdleCtx is RunUntilIdleLimit with cooperative cancellation: it
// stops between events once ctx is done and returns ctx's error (nil on a
// normal drain or when the event budget is exhausted). Virtual time stays
// wherever the last fired event left it, so a cancelled simulation is
// abandoned mid-flight, not fast-forwarded.
func (v *Virtual) RunUntilIdleCtx(ctx context.Context, maxEvents int) (time.Time, error) {
	for fired := 0; fired < maxEvents; fired++ {
		if fired%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return v.Now(), err
			}
		}
		v.mu.Lock()
		if len(v.queue) == 0 {
			now := v.now
			v.mu.Unlock()
			return now, nil
		}
		ev := heap.Pop(&v.queue).(*event)
		if ev.at.After(v.now) {
			v.now = ev.at
		}
		ev.fired = true
		v.mu.Unlock()
		ev.fn()
	}
	return v.Now(), nil
}

// Drive implements Source: RunUntilIdleCtx under the source-neutral
// name, so engines written against Source run byte-identically on a
// Virtual clock.
func (v *Virtual) Drive(ctx context.Context, maxEvents int) (time.Time, error) {
	return v.RunUntilIdleCtx(ctx, maxEvents)
}

// scheduler is the slice of a time source that pending timers talk to:
// Stop and Reset manipulate the owning source's event heap under its
// lock. Virtual and Wall both implement it, which lets them share the
// timer and ticker machinery below.
type scheduler interface {
	lock()
	unlock()
	// removeLocked unlinks a still-pending event from the heap. The
	// caller holds the source lock and has checked ev.index >= 0.
	removeLocked(ev *event)
	// rescheduleLocked schedules fn after d from the source's current
	// time with a fresh sequence number and returns the new event. The
	// caller holds the source lock.
	rescheduleLocked(d time.Duration, fn func()) *event
}

func (v *Virtual) lock()   { v.mu.Lock() }
func (v *Virtual) unlock() { v.mu.Unlock() }

func (v *Virtual) removeLocked(ev *event) {
	heap.Remove(&v.queue, ev.index)
	ev.index = -1
}

func (v *Virtual) rescheduleLocked(d time.Duration, fn func()) *event {
	return v.scheduleLocked(d, fn).ev
}

type event struct {
	at    time.Time
	fn    func()
	seq   uint64
	index int
	fired bool
	clk   scheduler
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

type virtualTimer struct {
	mu sync.Mutex
	ev *event
}

func (t *virtualTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := t.ev
	clk := ev.clk
	clk.lock()
	defer clk.unlock()
	if ev.fired || ev.index < 0 {
		return false
	}
	clk.removeLocked(ev)
	return true
}

func (t *virtualTimer) Reset(d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := t.ev
	clk := ev.clk
	clk.lock()
	defer clk.unlock()
	active := !ev.fired && ev.index >= 0
	if active {
		clk.removeLocked(ev)
	}
	t.ev = clk.rescheduleLocked(d, ev.fn)
	return active
}

type virtualTicker struct {
	clk    Clock
	period time.Duration
	ch     chan time.Time
	mu     sync.Mutex
	stop   bool
	timer  Timer
}

func (t *virtualTicker) arm() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stop {
		return
	}
	t.timer = t.clk.AfterFunc(t.period, func() {
		select {
		case t.ch <- t.clk.Now():
		default: // drop tick if the consumer lags, like time.Ticker
		}
		t.arm()
	})
}

func (t *virtualTicker) C() <-chan time.Time { return t.ch }

func (t *virtualTicker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stop = true
	if t.timer != nil {
		t.timer.Stop()
	}
}
