package clock

import (
	"container/heap"
	"context"
	"sync"
	"time"
)

// Source is a Clock whose scheduled work some goroutine drives: the
// execution half of the time abstraction. The lab, the controller and
// the daemon are written against Source, so the same engine runs under
// the discrete-event Virtual clock (deterministic, milliseconds of CPU
// per simulated convergence) and under real time (Wall for the
// serialized dispatcher, Threaded for free-threaded services) without
// touching engine code.
type Source interface {
	Clock

	// Drive executes scheduled callbacks until the source is idle, the
	// event budget maxEvents is exhausted, or ctx is done (returning
	// ctx's error; nil otherwise). It returns the source's time when it
	// stopped. On Virtual this pumps the event queue instantly; on Wall
	// it paces the queue against the system clock; on Threaded — where
	// callbacks run on their own goroutines and there is no serialized
	// pump to budget — it ignores maxEvents and blocks until every
	// outstanding timer has fired or been stopped (the drain primitive
	// behind graceful shutdown).
	Drive(ctx context.Context, maxEvents int) (time.Time, error)

	// Pending reports the number of scheduled callbacks that have not
	// yet fired.
	Pending() int
}

var (
	_ Source = (*Virtual)(nil)
	_ Source = (*Wall)(nil)
	_ Source = (*Threaded)(nil)
)

// Wall is a real-time Source with the Virtual clock's execution model:
// deadlines are wall-clock instants, Drive paces the event heap against
// the system clock, and callbacks run serially on the driving
// goroutine. Because execution is serialized exactly as under Virtual,
// an engine whose state is unsynchronized (the lab) runs race-free on a
// Wall source, and the virtual-vs-real equivalence tests can compare
// the two directly. Events that are due in the same dispatch batch obey
// the Virtual ordering contract: deadline order, FIFO among equal
// deadlines.
type Wall struct {
	mu    sync.Mutex
	queue eventQueue
	seq   uint64
	wake  chan struct{}
}

// NewWall returns a Wall source with an empty queue.
func NewWall() *Wall { return &Wall{wake: make(chan struct{}, 1)} }

// Now returns the system time.
func (w *Wall) Now() time.Time { return time.Now() }

// Sleep blocks the calling goroutine for d of real time.
func (w *Wall) Sleep(d time.Duration) { time.Sleep(d) }

// After returns a channel receiving the time once d has elapsed; the
// send happens on the driving goroutine.
func (w *Wall) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	w.AfterFunc(d, func() { ch <- time.Now() })
	return ch
}

// AfterFunc schedules f to run once d has elapsed. f runs on the
// goroutine driving the source, never inline with AfterFunc.
func (w *Wall) AfterFunc(d time.Duration, f func()) Timer {
	w.mu.Lock()
	defer w.mu.Unlock()
	return &virtualTimer{ev: w.rescheduleLocked(d, f)}
}

// NewTicker returns a Ticker firing every d on the driving goroutine.
func (w *Wall) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	t := &virtualTicker{clk: w, period: d, ch: make(chan time.Time, 1)}
	t.arm()
	return t
}

// Pending returns the number of scheduled events that have not yet
// fired.
func (w *Wall) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.queue)
}

func (w *Wall) lock()   { w.mu.Lock() }
func (w *Wall) unlock() { w.mu.Unlock() }

func (w *Wall) removeLocked(ev *event) {
	heap.Remove(&w.queue, ev.index)
	ev.index = -1
}

func (w *Wall) rescheduleLocked(d time.Duration, fn func()) *event {
	if d < 0 {
		d = 0
	}
	ev := &event{at: time.Now().Add(d), fn: fn, seq: w.seq, clk: w}
	w.seq++
	heap.Push(&w.queue, ev)
	// Nudge a Drive blocked on a later deadline; cap-1 channel, dropped
	// when a nudge is already queued.
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return ev
}

// Drive executes due callbacks serially, sleeping on a real timer until
// the next deadline, until the queue drains, maxEvents callbacks have
// fired, or ctx is done. New events scheduled while Drive sleeps (from
// callbacks or other goroutines) wake it immediately.
func (w *Wall) Drive(ctx context.Context, maxEvents int) (time.Time, error) {
	for fired := 0; fired < maxEvents; {
		if err := ctx.Err(); err != nil {
			return time.Now(), err
		}
		w.mu.Lock()
		if len(w.queue) == 0 {
			w.mu.Unlock()
			return time.Now(), nil
		}
		if wait := time.Until(w.queue[0].at); wait > 0 {
			w.mu.Unlock()
			tm := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				tm.Stop()
				return time.Now(), ctx.Err()
			case <-tm.C:
			case <-w.wake:
				tm.Stop()
			}
			continue
		}
		ev := heap.Pop(&w.queue).(*event)
		ev.fired = true
		w.mu.Unlock()
		ev.fn()
		fired++
	}
	return time.Now(), nil
}

// Threaded is the free-threaded real-time Source for concurrent
// services: callbacks fire on their own goroutines exactly as
// time.AfterFunc's do, and Drive blocks until every outstanding timer
// has fired or been stopped — the drain primitive the daemon's graceful
// shutdown uses. Reset has package-time semantics: a Reset racing the
// in-flight callback is the caller's coordination problem, as with
// time.Timer.
type Threaded struct {
	mu      sync.Mutex
	pending int
	changed chan struct{}
}

// NewThreaded returns a Threaded source with no outstanding timers.
func NewThreaded() *Threaded { return &Threaded{changed: make(chan struct{}, 1)} }

// Now returns the system time.
func (c *Threaded) Now() time.Time { return time.Now() }

// Sleep blocks the calling goroutine for d of real time.
func (c *Threaded) Sleep(d time.Duration) { time.Sleep(d) }

// After returns a channel receiving the time once d has elapsed. Unlike
// time.After, the underlying timer counts toward Pending until it
// fires.
func (c *Threaded) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.AfterFunc(d, func() { ch <- time.Now() })
	return ch
}

func (c *Threaded) add(n int) {
	c.mu.Lock()
	c.pending += n
	c.mu.Unlock()
	select {
	case c.changed <- struct{}{}:
	default:
	}
}

// AfterFunc schedules f on its own goroutine once d has elapsed.
func (c *Threaded) AfterFunc(d time.Duration, f func()) Timer {
	t := &threadedTimer{src: c, fn: f, active: true}
	c.add(1)
	t.t = time.AfterFunc(d, t.fire)
	return t
}

// NewTicker returns a real ticker. It counts as one pending callback
// until Stop: a live ticker keeps Drive from reporting quiescence, so
// stop tickers before draining.
func (c *Threaded) NewTicker(d time.Duration) Ticker {
	c.add(1)
	return &threadedTicker{src: c, t: time.NewTicker(d)}
}

// Pending reports the number of armed timers (tickers count as one
// each until stopped).
func (c *Threaded) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending
}

// Drive blocks until no timers are outstanding or ctx is done.
// maxEvents is ignored (see Source).
func (c *Threaded) Drive(ctx context.Context, maxEvents int) (time.Time, error) {
	for {
		c.mu.Lock()
		n := c.pending
		c.mu.Unlock()
		if n == 0 {
			return time.Now(), nil
		}
		select {
		case <-ctx.Done():
			return time.Now(), ctx.Err()
		case <-c.changed:
		}
	}
}

type threadedTimer struct {
	src *Threaded
	fn  func()

	mu     sync.Mutex
	t      *time.Timer
	active bool
}

func (t *threadedTimer) fire() {
	t.mu.Lock()
	wasActive := t.active
	t.active = false
	t.mu.Unlock()
	t.fn()
	if wasActive {
		t.src.add(-1)
	}
}

func (t *threadedTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.active {
		return false
	}
	if !t.t.Stop() {
		// The callback already started; fire owns the pending decrement.
		return false
	}
	t.active = false
	t.src.add(-1)
	return true
}

func (t *threadedTimer) Reset(d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	wasActive := t.active
	if !wasActive {
		t.active = true
		t.src.add(1)
	}
	t.t.Reset(d)
	return wasActive
}

type threadedTicker struct {
	src  *Threaded
	t    *time.Ticker
	once sync.Once
}

func (t *threadedTicker) C() <-chan time.Time { return t.t.C }

func (t *threadedTicker) Stop() {
	t.t.Stop()
	t.once.Do(func() { t.src.add(-1) })
}
