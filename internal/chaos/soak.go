package chaos

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/daemon"
	"supercharged/internal/feed"
	"supercharged/internal/telemetry"
)

// SoakConfig assembles one chaos soak: a daemon replaying a table from
// several peers into several FIB sinks, everything wrapped in one fault
// plan, with resilience policies on and the invariants checked at the
// end.
type SoakConfig struct {
	// Table is the feed every peer replays (required).
	Table *feed.Table
	// Peers and Routers size the pipeline (defaults 2 and 2).
	Peers   int
	Routers int
	// Rate paces each peer in routes/sec (0 = unpaced).
	Rate int
	// Seed keys the fault plan AND the policies' backoff jitter: one
	// number reproduces the whole run's schedule.
	Seed uint64
	// Faults is the injected mix (zero = fault-free control run).
	Faults Config
	// Delivery/Reconnect override the soak's fast-recovery policy
	// defaults when non-zero.
	Delivery  daemon.DeliveryPolicy
	Reconnect daemon.ReconnectPolicy
	// Timeout bounds the replay (default 60s); DrainTimeout bounds the
	// graceful drain-and-heal (default 30s).
	Timeout      time.Duration
	DrainTimeout time.Duration
	// Clock drives everything (nil = system).
	Clock clock.Clock
	// Telemetry/Trace/Logf are passed through to the daemon and plan.
	Telemetry *telemetry.Registry
	Trace     *telemetry.Trace
	Logf      func(format string, args ...any)
}

// RouterReport is one sink's post-drain accounting.
type RouterReport struct {
	Name     string
	Entries  int
	Batches  uint64
	Gaps     uint64
	Healed   uint64
	Unhealed int
	Stale    uint64
	Hash     uint64
	Breaker  string
}

// SoakReport is the soak's outcome: per-router state, the RIB's own
// best-path hash, the injected fault tally, and every invariant
// violation found. An empty Violations slice is a passed soak.
type SoakReport struct {
	Seed        uint64
	RIBPrefixes int
	RIBHash     uint64
	Routers     []RouterReport
	Faults      map[string]uint64
	Violations  []string
}

// Ok reports whether every invariant held.
func (r *SoakReport) Ok() bool { return len(r.Violations) == 0 }

func (r *SoakReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// String renders the report for logs and the chaoscheck CLI.
func (r *SoakReport) String() string {
	s := fmt.Sprintf("soak seed=%d: rib=%d prefixes hash=%016x faults=%v\n",
		r.Seed, r.RIBPrefixes, r.RIBHash, r.Faults)
	for _, rt := range r.Routers {
		s += fmt.Sprintf("  router %s: %d entries, %d batches, %d gaps (%d healed, %d unhealed), %d stale, breaker %s, hash=%016x\n",
			rt.Name, rt.Entries, rt.Batches, rt.Gaps, rt.Healed, rt.Unhealed, rt.Stale, rt.Breaker, rt.Hash)
	}
	if r.Ok() {
		s += "  invariants: all held"
	} else {
		for _, v := range r.Violations {
			s += "  VIOLATION: " + v + "\n"
		}
	}
	return s
}

// soakMeta is the i-th peer's session identity. Peer 0 carries Weight
// 100, so the converged best path for every prefix is peer 0's — a
// final state that does not depend on which faults fired in between,
// which is what makes the final FIB hash comparable across mixes and
// against the fault-free control run.
func soakMeta(i int) bgp.PeerMeta {
	addr := netip.AddrFrom4([4]byte{203, 0, 113, byte(10 + i)})
	m := bgp.PeerMeta{Addr: addr, AS: 65001 + uint32(i), ID: addr}
	if i == 0 {
		m.Weight = 100
	}
	return m
}

// RunSoak runs one soak and checks the resilience invariants:
//
//  1. the replay finishes and the graceful drain completes mid-fault
//     without recording errors;
//  2. no silent update loss — every sink's FIB matches the RIB's
//     best-path snapshot byte-for-byte, and all sinks agree;
//  3. every observed sequence gap was healed by a resync (no missing
//     ranges survive the drain);
//  4. every breaker re-closed.
//
// The per-entity fault budget is what makes these provable: the storm
// is finite, so the reconnect policy's attempt budget (sized past the
// fault budget) always gets a clean final session, and the delivery
// path's drain-time healing always finds a fault-free resync.
func RunSoak(cfg SoakConfig) *SoakReport {
	if cfg.Peers <= 0 {
		cfg.Peers = 2
	}
	if cfg.Routers <= 0 {
		cfg.Routers = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	plan := NewPlan(cfg.Faults, cfg.Seed, clk).WithTelemetry(cfg.Telemetry)

	if !cfg.Delivery.Enabled() {
		cfg.Delivery = daemon.DeliveryPolicy{
			PushTimeout:      200 * time.Millisecond,
			RetryBudget:      4,
			BackoffBase:      2 * time.Millisecond,
			BackoffMax:       20 * time.Millisecond,
			JitterFrac:       0.2,
			BreakerThreshold: 3,
			BreakerCooldown:  20 * time.Millisecond,
			BufferBytes:      1 << 20,
			Seed:             cfg.Seed,
		}
	}
	if !cfg.Reconnect.Enabled() {
		cfg.Reconnect = daemon.ReconnectPolicy{
			// One reconnect per possible injected session failure, plus
			// slack: the budget guarantees a clean final session.
			MaxAttempts: plan.cfg.MaxFaults + 2,
			Backoff:     5 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
			JitterFrac:  0.2,
			Seed:        cfg.Seed,
		}
	}

	sources := make([]daemon.PeerSource, cfg.Peers)
	for i := range sources {
		sources[i] = plan.Source(&daemon.TableReplay{
			PeerName: fmt.Sprintf("peer%d", i),
			Meta:     soakMeta(i),
			Table:    cfg.Table,
			Rate:     cfg.Rate,
			Clock:    clk,
		})
	}
	fibs := make([]*daemon.FIBSink, cfg.Routers)
	routers := make([]daemon.RouterSink, cfg.Routers)
	for i := range routers {
		fibs[i] = daemon.NewFIBSink(fmt.Sprintf("edge%d", i))
		routers[i] = plan.Sink(fibs[i])
	}

	d := daemon.New(daemon.Config{
		Sources:       sources,
		Routers:       routers,
		BatchSize:     1024,
		BatchInterval: 5 * time.Millisecond,
		Clock:         clk,
		Telemetry:     cfg.Telemetry,
		Trace:         cfg.Trace,
		Delivery:      cfg.Delivery,
		Reconnect:     cfg.Reconnect,
		Logf:          cfg.Logf,
	})

	rep := &SoakReport{Seed: cfg.Seed}
	d.Start(context.Background())
	waitCtx, cancelWait := context.WithTimeout(context.Background(), cfg.Timeout)
	waitErr := d.Wait(waitCtx)
	cancelWait()
	if waitErr != nil {
		rep.violate("replay did not finish within %v: %v", cfg.Timeout, waitErr)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	drainErr := d.Drain(drainCtx)
	cancelDrain()
	if drainErr != nil {
		rep.violate("drain: %v", drainErr)
	}

	ribEntries := snapshotEntries(d)
	rep.RIBPrefixes = len(ribEntries)
	rep.RIBHash = daemon.HashEntries(ribEntries)
	rep.Faults = plan.Stats()
	states := d.DeliveryStates()

	for _, fib := range fibs {
		st := fib.State()
		rr := RouterReport{
			Name:     fib.Name(),
			Entries:  fib.Len(),
			Batches:  fib.Batches(),
			Gaps:     st.Gaps,
			Healed:   st.Healed,
			Unhealed: len(st.Missing),
			Stale:    st.Stale,
			Hash:     fib.Hash(),
			Breaker:  states[fib.Name()],
		}
		rep.Routers = append(rep.Routers, rr)
		if rr.Unhealed > 0 {
			rep.violate("router %s: %d unhealed gap ranges: %v", rr.Name, rr.Unhealed, st.Missing)
		}
		if rr.Breaker != "" && rr.Breaker != "closed" {
			rep.violate("router %s: breaker left %s", rr.Name, rr.Breaker)
		}
		if diff := diffEntries(ribEntries, fib.Entries()); diff != "" {
			rep.violate("router %s: FIB diverges from RIB: %s", rr.Name, diff)
		}
	}
	return rep
}

// snapshotEntries flattens the daemon's post-drain RIB to the sorted
// entry form sinks are compared against.
func snapshotEntries(d *daemon.Daemon) []daemon.FIBEntry {
	changes := d.RIB().Snapshot(nil)
	entries := make([]daemon.FIBEntry, 0, len(changes))
	for _, ch := range changes {
		if ch.NextHop.IsValid() {
			entries = append(entries, daemon.FIBEntry{Prefix: ch.Prefix, NextHop: ch.NextHop})
		}
	}
	daemon.SortFIBEntries(entries)
	return entries
}

// diffEntries compares two sorted entry lists byte-for-byte, returning
// "" on equality or a description of the first divergence.
func diffEntries(want, got []daemon.FIBEntry) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Sprintf("entry %d is %v->%v, want %v->%v",
				i, got[i].Prefix, got[i].NextHop, want[i].Prefix, want[i].NextHop)
		}
	}
	return ""
}
