package chaos

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/daemon"
)

// countSink records how many batches actually landed.
type countSink struct {
	mu      sync.Mutex
	applied int
}

func (c *countSink) Name() string { return "edge0" }
func (c *countSink) Apply(daemon.Batch) error {
	c.mu.Lock()
	c.applied++
	c.mu.Unlock()
	return nil
}

func (c *countSink) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// sinkSchedule drives a wrapped sink through a fixed operation
// sequence (seqs × attempts) and renders the observed fault schedule
// as one string per operation.
func sinkSchedule(t *testing.T, seed uint64, seqs, attempts int) []string {
	t.Helper()
	plan := NewPlan(Config{DropP: 0.25, TransientP: 0.25, MaxFaults: 1 << 30}, seed, clock.System)
	inner := &countSink{}
	s := plan.Sink(inner)
	var log []string
	for seq := 1; seq <= seqs; seq++ {
		for a := 0; a < attempts; a++ {
			before := inner.count()
			err := s.Apply(daemon.Batch{Seq: uint64(seq)})
			switch {
			case errors.Is(err, ErrInjected):
				log = append(log, fmt.Sprintf("%d/%d transient", seq, a))
			case err != nil:
				t.Fatalf("unexpected error: %v", err)
			case inner.count() == before:
				log = append(log, fmt.Sprintf("%d/%d drop", seq, a))
			default:
				log = append(log, fmt.Sprintf("%d/%d ok", seq, a))
			}
		}
	}
	return log
}

func TestSinkScheduleIsSeedDeterministic(t *testing.T) {
	a := sinkSchedule(t, 42, 50, 3)
	b := sinkSchedule(t, 42, 50, 3)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %q vs %q", i, a[i], b[i])
		}
	}
	faults := 0
	for _, e := range a {
		if e[len(e)-2:] != "ok" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("0.25+0.25 over 150 ops injected nothing — schedule is inert")
	}
	c := sinkSchedule(t, 43, 50, 3)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestFaultBudgetBoundsTheStorm(t *testing.T) {
	plan := NewPlan(Config{DropP: 1, MaxFaults: 5}, 1, clock.System)
	inner := &countSink{}
	s := plan.Sink(inner)
	for seq := 1; seq <= 40; seq++ {
		if err := s.Apply(daemon.Batch{Seq: uint64(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.count(); got != 35 {
		t.Fatalf("%d batches landed, want 35 (5 budgeted drops out of 40)", got)
	}
	if got := plan.Faults(); got != 5 {
		t.Fatalf("plan reports %d faults, want 5", got)
	}
}

// sourceSchedule runs a wrapped replay through its session loop,
// logging per session how many updates were emitted and how it ended.
func sourceSchedule(t *testing.T, seed uint64) []string {
	t.Helper()
	plan := NewPlan(Config{CrashEvery: 8, CorruptP: 0.05, MaxFaults: 6}, seed, clock.System)
	src := plan.Source(&daemon.TableReplay{
		PeerName: "peer0",
		Meta:     bgp.PeerMeta{Addr: netip.MustParseAddr("203.0.113.10"), AS: 65001},
		Table:    testTable(400),
	})
	var log []string
	for session := 0; session < 20; session++ {
		emitted, corrupt := 0, 0
		err := src.Run(context.Background(), func(u *bgp.Update) error {
			for _, p := range u.NLRI {
				if !p.IsValid() {
					corrupt++
					return fmt.Errorf("corrupt record")
				}
			}
			emitted++
			return nil
		})
		switch {
		case err == nil:
			log = append(log, fmt.Sprintf("s%d: %d updates, clean", session, emitted))
			return log
		case errors.Is(err, ErrInjectedCrash):
			log = append(log, fmt.Sprintf("s%d: %d updates, crash", session, emitted))
		default:
			log = append(log, fmt.Sprintf("s%d: %d updates, %d corrupt", session, emitted, corrupt))
		}
	}
	t.Fatal("source never completed a clean session inside the fault budget")
	return nil
}

func TestSourceScheduleIsSeedDeterministicAndConverges(t *testing.T) {
	a := sourceSchedule(t, 7)
	b := sourceSchedule(t, 7)
	if len(a) != len(b) {
		t.Fatalf("session logs differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at session %d: %q vs %q", i, a[i], b[i])
		}
	}
	if len(a) < 2 {
		t.Fatalf("CrashEvery=8 over 400 routes should crash at least once: %v", a)
	}
	if last := a[len(a)-1]; last[len(last)-5:] != "clean" {
		t.Fatalf("final session not clean: %v", a)
	}
}

func TestMixRejectsUnknownName(t *testing.T) {
	for _, name := range []string{"drop", "stall", "crash", "corrupt", "jitter", "all"} {
		if _, err := Mix(name); err != nil {
			t.Fatalf("Mix(%q): %v", name, err)
		}
	}
	if _, err := Mix("kitchen-sink"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}
