// Package chaos is the repository's seeded fault-injection layer: it
// wraps the daemon's upstream sources and downstream router sinks in
// deterministic fault schedules — latency jitter, stalls, silent
// drops, transient errors, session crashes, corrupted records — and
// pairs them with a soak runner that asserts the resilience invariants
// the daemon's delivery policies promise (no silent update loss, every
// gap healed by resync, all breakers eventually re-closed, graceful
// drain under fire).
//
// Determinism is the design center. Every fault decision is a pure
// function of (seed, entity, fault kind, operation index) — never of
// wall time, goroutine interleaving, or how many decisions came before
// it on other entities. Two runs that present the same operation
// sequence to a wrapper draw the same schedule; under the virtual
// clock the whole run is byte-reproducible, and under the real clock
// the converged state (final FIB hash) still is, because the per-entity
// fault budget guarantees the injected storm always ends while the
// delivery policies guarantee everything lost in it is re-delivered.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"supercharged/internal/clock"
	"supercharged/internal/telemetry"
)

// Injected fault errors. They are distinguishable from real failures so
// logs and tests can tell the storm from the weather.
var (
	// ErrInjected is a transient push failure (the fault analogue of a
	// refused TCP write): retryable, and the policies do.
	ErrInjected = errors.New("chaos: injected transient fault")
	// ErrInjectedCrash ends a source session (the fault analogue of a
	// BGP session reset): the daemon withdraws and reconnects.
	ErrInjectedCrash = errors.New("chaos: injected session crash")
)

// Config is one fault mix: per-operation probabilities and shapes.
// Probabilities are evaluated independently per operation in the order
// drop, transient, stall, jitter (sinks) and crash, corrupt (sources).
type Config struct {
	// DropP silently swallows a sink push: Apply reports success,
	// nothing lands. The nastiest fault — only read-back verification
	// (resync + SinkState) catches the tail case.
	DropP float64
	// TransientP fails a sink push with ErrInjected.
	TransientP float64
	// StallP delays a sink push by a uniform duration in
	// [StallMin, StallMax] before letting it through — long stalls
	// exercise the push timeout.
	StallP   float64
	StallMin time.Duration
	StallMax time.Duration
	// JitterP adds benign latency in [0, JitterMax) to a sink push.
	// Jitter does not count against the fault budget (it can never
	// prevent convergence).
	JitterP   float64
	JitterMax time.Duration
	// CrashEvery, when positive, crashes each source session after
	// about that many updates (uniformly ±50%, drawn per session).
	CrashEvery int
	// CorruptP replaces an emitted update with a mangled copy (an
	// invalid NLRI prefix) — ingest validation fails the session.
	CorruptP float64
	// MaxFaults bounds injected faults per entity (router or peer);
	// past it the entity runs clean. The budget is what turns "keeps
	// retrying" into "provably converges": every soak invariant leans
	// on the storm being finite. 0 means DefaultMaxFaults, not
	// unlimited.
	MaxFaults int
}

// DefaultMaxFaults is the per-entity budget a zero MaxFaults means.
const DefaultMaxFaults = 48

// Mix returns a named preset. Known names: "drop", "stall", "crash",
// "corrupt", "jitter", "all".
func Mix(name string) (Config, error) {
	switch name {
	case "drop":
		return Config{DropP: 0.08, TransientP: 0.08}, nil
	case "stall":
		return Config{StallP: 0.10, StallMin: time.Millisecond, StallMax: 20 * time.Millisecond,
			JitterP: 0.30, JitterMax: 2 * time.Millisecond}, nil
	case "crash":
		return Config{CrashEvery: 400}, nil
	case "corrupt":
		return Config{CorruptP: 0.01}, nil
	case "jitter":
		return Config{JitterP: 0.50, JitterMax: 2 * time.Millisecond}, nil
	case "all":
		return Config{
			DropP:      0.05,
			TransientP: 0.05,
			StallP:     0.05,
			StallMin:   time.Millisecond,
			StallMax:   10 * time.Millisecond,
			JitterP:    0.20,
			JitterMax:  2 * time.Millisecond,
			CrashEvery: 600,
			CorruptP:   0.005,
		}, nil
	}
	return Config{}, fmt.Errorf("chaos: unknown mix %q (want drop, stall, crash, corrupt, jitter or all)", name)
}

// Plan is a compiled fault schedule: one seed, one clock, one shared
// per-entity budget. Wrap sinks with Plan.Sink and sources with
// Plan.Source; the wrappers consult the plan on every operation.
type Plan struct {
	cfg  Config
	seed uint64
	clk  clock.Clock

	mu     sync.Mutex
	faults map[string]int
	stats  map[string]uint64
	reg    *telemetry.Registry
}

// NewPlan compiles a fault mix against a clock (nil = system). Stalls
// and jitter sleep on clk, so a virtual clock makes even the latency
// faults reproducible tick-for-tick.
func NewPlan(cfg Config, seed uint64, clk clock.Clock) *Plan {
	if clk == nil {
		clk = clock.System
	}
	if cfg.MaxFaults <= 0 {
		cfg.MaxFaults = DefaultMaxFaults
	}
	if cfg.StallMax < cfg.StallMin {
		cfg.StallMax = cfg.StallMin
	}
	return &Plan{
		cfg:    cfg,
		seed:   seed,
		clk:    clk,
		faults: make(map[string]int),
		stats:  make(map[string]uint64),
	}
}

// faultKinds is every kind the stats and metrics report.
var faultKinds = []string{"drop", "transient", "stall", "jitter", "crash", "corrupt"}

// WithTelemetry registers the plan's fault counters
// (supercharged_chaos_faults_total{kind=...}, pre-created at zero) and
// returns the plan for chaining.
func (p *Plan) WithTelemetry(reg *telemetry.Registry) *Plan {
	p.mu.Lock()
	p.reg = reg
	p.mu.Unlock()
	if reg != nil {
		for _, k := range faultKinds {
			p.counter(reg, k)
		}
	}
	return p
}

func (p *Plan) counter(reg *telemetry.Registry, kind string) *telemetry.Counter {
	return reg.Counter(telemetry.Series("supercharged_chaos_faults_total", "kind", kind),
		"Faults injected by the chaos plan, by kind.")
}

// Stats snapshots the per-kind injected fault counts.
func (p *Plan) Stats() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.stats))
	for k, v := range p.stats {
		out[k] = v
	}
	return out
}

// Faults reports the total injected fault count (budgeted kinds only).
func (p *Plan) Faults() uint64 {
	var n uint64
	for k, v := range p.Stats() {
		if k != "jitter" {
			n += v
		}
	}
	return n
}

// decide rolls a fault: true when the (seed, entity, kind, op) draw
// lands under prob AND the entity still has budget. The draw comes
// first so budget exhaustion never shifts later draws — the schedule
// stays a pure function of the operation sequence.
func (p *Plan) decide(entity, kind string, op uint64, prob float64) bool {
	if prob <= 0 || unitRand(p.seed, entity, kind, op) >= prob {
		return false
	}
	return p.take(entity, kind)
}

// take consumes one unit of the entity's fault budget.
func (p *Plan) take(entity, kind string) bool {
	p.mu.Lock()
	if p.faults[entity] >= p.cfg.MaxFaults {
		p.mu.Unlock()
		return false
	}
	p.faults[entity]++
	p.stats[kind]++
	reg := p.reg
	p.mu.Unlock()
	if reg != nil {
		p.counter(reg, kind).Inc()
	}
	return true
}

// note records a budget-free fault (jitter) in stats/metrics.
func (p *Plan) note(kind string) {
	p.mu.Lock()
	p.stats[kind]++
	reg := p.reg
	p.mu.Unlock()
	if reg != nil {
		p.counter(reg, kind).Inc()
	}
}

// dur draws a deterministic duration in [lo, hi] for (entity, kind, op).
func (p *Plan) dur(entity, kind string, op uint64, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	r := unitRand(p.seed, entity, kind, op)
	return lo + time.Duration(r*float64(hi-lo))
}

// unitRand maps (seed, entity, kind, n) to uniform [0,1) — stateless,
// so a decision depends only on its own coordinates.
func unitRand(seed uint64, entity, kind string, n uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(entity))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	x := splitmix64(seed ^ h.Sum64() ^ (n * 0x9e3779b97f4a7c15))
	return float64(x>>11) / float64(1<<53)
}

// splitmix64 is the finalizer from Vigna's SplitMix64.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
