package chaos

import (
	"sync"

	"supercharged/internal/daemon"
)

// Sink wraps a RouterSink in the plan's push-side faults. Operations
// are keyed (batch seq, attempt-at-that-seq): a retry of the same batch
// is a new coordinate, so a transient fault really is transient while
// the schedule stays replayable.
type Sink struct {
	inner daemon.RouterSink
	plan  *Plan

	mu       sync.Mutex
	attempts map[uint64]int
}

// Sink wraps a downstream router in this plan's fault schedule. When
// the inner sink exposes delivery state (daemon.StatefulSink), the
// wrapper passes it through, so the daemon's read-back verification
// still sees the truth the faults tried to hide.
func (p *Plan) Sink(inner daemon.RouterSink) daemon.RouterSink {
	s := &Sink{inner: inner, plan: p, attempts: make(map[uint64]int)}
	if st, ok := inner.(daemon.StatefulSink); ok {
		return &statefulSink{Sink: s, st: st}
	}
	return s
}

func (s *Sink) Name() string { return s.inner.Name() }

// Apply rolls the push-side faults for this (seq, attempt) coordinate,
// then forwards to the inner sink if the batch survived. A drop returns
// success without applying — the silent loss the daemon's resync
// read-back exists to catch. A stall sleeps on the plan's clock before
// forwarding, so a late apply can land after the daemon's push timeout
// already gave up on it (the sink's stale-skip absorbs the duplicate).
func (s *Sink) Apply(b daemon.Batch) error {
	s.mu.Lock()
	a := s.attempts[b.Seq]
	s.attempts[b.Seq] = a + 1
	s.mu.Unlock()
	op := b.Seq<<16 | uint64(a&0xffff)

	ent := s.inner.Name()
	p, cfg := s.plan, s.plan.cfg
	if p.decide(ent, "drop", op, cfg.DropP) {
		return nil
	}
	if p.decide(ent, "transient", op, cfg.TransientP) {
		return ErrInjected
	}
	if p.decide(ent, "stall", op, cfg.StallP) {
		p.clk.Sleep(p.dur(ent, "stalldur", op, cfg.StallMin, cfg.StallMax))
	} else if cfg.JitterP > 0 && unitRand(p.seed, ent, "jitter", op) < cfg.JitterP {
		p.note("jitter")
		p.clk.Sleep(p.dur(ent, "jitterdur", op, 0, cfg.JitterMax))
	}
	return s.inner.Apply(b)
}

// statefulSink is Sink plus the inner sink's State passthrough.
type statefulSink struct {
	*Sink
	st daemon.StatefulSink
}

func (s *statefulSink) State() daemon.SinkState { return s.st.State() }
