package chaos

import (
	"os"
	"testing"
	"time"

	"supercharged/internal/feed"
	"supercharged/internal/testutil"
)

// testTable is the synthetic feed the unit tests drive.
func testTable(n int) *feed.Table {
	return feed.Generate(feed.Config{N: n, Seed: 3})
}

// loadMRT loads the committed RIS sample and down-samples it so the
// soak stays fast under -race.
func loadMRT(t *testing.T, n int) *feed.Table {
	t.Helper()
	f, err := os.Open("../../testdata/ris-sample.mrt")
	if err != nil {
		t.Fatalf("open MRT sample: %v", err)
	}
	defer f.Close()
	dump, err := feed.FromMRT(f)
	if err != nil {
		t.Fatalf("load MRT sample: %v", err)
	}
	table := dump.Table
	if table.Len() > n {
		table = table.Sample(n)
	}
	return table
}

// soakBase is the shared soak shape: the real-table replay from two
// peers into two FIB routers, with time budgets that scale under -race.
func soakBase(t *testing.T) SoakConfig {
	return SoakConfig{
		Table:        loadMRT(t, 1200),
		Peers:        2,
		Routers:      2,
		Timeout:      testutil.Budget(t, 60*time.Second),
		DrainTimeout: testutil.Budget(t, 30*time.Second),
	}
}

// TestSoakChaosMixesConvergeToFaultFreeFIB is the headline invariant:
// for every fault mix, the post-recovery FIB must equal the fault-free
// FIB byte-for-byte (compared via the canonical sorted-entry hash) —
// injected drops, stalls and session crashes may delay convergence but
// never change where it lands.
func TestSoakChaosMixesConvergeToFaultFreeFIB(t *testing.T) {
	base := soakBase(t)

	control := base
	control.Seed = 99
	ctl := RunSoak(control)
	if !ctl.Ok() {
		t.Fatalf("fault-free control run violated invariants:\n%s", ctl)
	}
	if ctl.RIBPrefixes == 0 {
		t.Fatal("control run programmed nothing")
	}

	for _, name := range []string{"drop", "stall", "crash", "all"} {
		t.Run(name, func(t *testing.T) {
			mix, err := Mix(name)
			if err != nil {
				t.Fatal(err)
			}
			if mix.CrashEvery > 0 {
				// The down-sampled table replays in a few dozen update
				// messages; crash well inside a session.
				mix.CrashEvery = 12
			}
			cfg := base
			cfg.Seed = 99
			cfg.Faults = mix
			rep := RunSoak(cfg)
			t.Logf("\n%s", rep)
			if !rep.Ok() {
				t.Fatalf("invariants violated under %q:\n%s", name, rep)
			}
			if rep.Faults["drop"]+rep.Faults["transient"]+rep.Faults["stall"]+rep.Faults["crash"] == 0 && name != "stall" {
				t.Fatalf("mix %q injected nothing — the soak proved nothing", name)
			}
			if rep.RIBHash != ctl.RIBHash {
				t.Fatalf("RIB hash under %q = %016x, fault-free %016x", name, rep.RIBHash, ctl.RIBHash)
			}
			for _, rt := range rep.Routers {
				if rt.Hash != ctl.RIBHash {
					t.Fatalf("router %s hash %016x != fault-free FIB %016x", rt.Name, rt.Hash, ctl.RIBHash)
				}
			}
		})
	}
}

// TestSoakSameSeedReproducesFinalState pins the determinism contract:
// one seed, one converged state, run after run.
func TestSoakSameSeedReproducesFinalState(t *testing.T) {
	base := soakBase(t)
	mix, err := Mix("all")
	if err != nil {
		t.Fatal(err)
	}
	mix.CrashEvery = 12
	run := func() *SoakReport {
		cfg := base
		cfg.Seed = 7
		cfg.Faults = mix
		rep := RunSoak(cfg)
		if !rep.Ok() {
			t.Fatalf("soak violated invariants:\n%s", rep)
		}
		return rep
	}
	a, b := run(), run()
	if a.RIBHash != b.RIBHash {
		t.Fatalf("same seed, different converged state: %016x vs %016x", a.RIBHash, b.RIBHash)
	}
	for i := range a.Routers {
		if a.Routers[i].Hash != b.Routers[i].Hash {
			t.Fatalf("router %s hash differs across identical runs", a.Routers[i].Name)
		}
	}
}
