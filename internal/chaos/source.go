package chaos

import (
	"context"
	"net/netip"
	"sync"

	"supercharged/internal/bgp"
	"supercharged/internal/daemon"
)

// Source wraps a PeerSource in the plan's feed-side faults: session
// crashes (a per-session crash point around CrashEvery updates) and
// corrupted records (a mangled update that fails ingest validation and
// resets the session the way a malformed wire message would).
// Operations are keyed (session number, update index), so each
// reconnected session draws a fresh but replayable schedule.
type Source struct {
	inner daemon.PeerSource
	plan  *Plan

	mu      sync.Mutex
	session uint64
}

// Source wraps an upstream feed in this plan's fault schedule.
func (p *Plan) Source(inner daemon.PeerSource) daemon.PeerSource {
	return &Source{inner: inner, plan: p}
}

func (s *Source) Peer() bgp.PeerMeta { return s.inner.Peer() }
func (s *Source) Name() string       { return s.inner.Name() }

// Run streams the inner source through the fault filter. Each Run call
// is one session; the daemon's reconnect policy produces the next one.
func (s *Source) Run(ctx context.Context, emit func(*bgp.Update) error) error {
	s.mu.Lock()
	sess := s.session
	s.session++
	s.mu.Unlock()

	ent := s.inner.Name()
	p, cfg := s.plan, s.plan.cfg
	var crashAt uint64
	if cfg.CrashEvery > 0 {
		// Uniform over [0.5, 1.5)·CrashEvery, drawn once per session.
		r := unitRand(p.seed, ent, "crashpoint", sess)
		crashAt = uint64(float64(cfg.CrashEvery) * (0.5 + r))
		if crashAt < 1 {
			crashAt = 1
		}
	}
	var idx uint64
	return s.inner.Run(ctx, func(u *bgp.Update) error {
		i := idx
		idx++
		op := sess<<32 | (i & 0xffffffff)
		if crashAt > 0 && i >= crashAt && p.take(ent, "crash") {
			return ErrInjectedCrash
		}
		if p.decide(ent, "corrupt", op, cfg.CorruptP) {
			bad := *u
			bad.NLRI = append(append([]netip.Prefix(nil), u.NLRI...), netip.Prefix{})
			return emit(&bad)
		}
		return emit(u)
	})
}
