// Package mrt reads and writes MRT routing-information export records
// (RFC 6396) — the format RIPE RIS and RouteViews publish their RIB
// snapshots ("bview") and update traces in. It is the repo's bridge
// from synthetic feeds to real full-Internet tables: internal/feed
// loads a TABLE_DUMP_V2 dump through Reader into the same *feed.Table
// the simulator already consumes, so every scenario can replay real
// routes instead of generated ones.
//
// The subset implemented is the one the convergence lab needs:
//
//   - TABLE_DUMP_V2 PEER_INDEX_TABLE, RIB_IPV4_UNICAST and its
//     additional-path variant (RFC 8050) — RIB snapshots.
//   - BGP4MP / BGP4MP_ET MESSAGE, MESSAGE_AS4 and the two STATE_CHANGE
//     subtypes — update traces, decoded through the internal/bgp codec.
//
// Records of any other type or subtype are surfaced with their header
// only (Record with no payload field set), so a caller can count and
// skip them without the package guessing at semantics it doesn't have.
//
// This is a binary codec at a trust boundary: every decode error is a
// typed error (ErrTruncated, ErrBadRecord, ErrNoPeerIndex — wrapped
// with record context), never a panic, and the package carries golden,
// round-trip, corruption and fuzz suites to keep it that way.
package mrt

import (
	"errors"
	"net/netip"

	"supercharged/internal/bgp"
)

// MRT record types (RFC 6396 §4).
const (
	TypeTableDumpV2 uint16 = 13
	TypeBGP4MP      uint16 = 16
	// TypeBGP4MPET is BGP4MP with an extended (microsecond) timestamp
	// (RFC 6396 §3): same subtypes, four extra timestamp bytes.
	TypeBGP4MPET uint16 = 17
)

// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3, RFC 8050 §4).
const (
	SubtypePeerIndexTable        uint16 = 1
	SubtypeRIBIPv4Unicast        uint16 = 2
	SubtypeRIBIPv4UnicastAddPath uint16 = 8
)

// BGP4MP subtypes (RFC 6396 §4.4, RFC 8050 §3).
const (
	SubtypeStateChange    uint16 = 0
	SubtypeMessage        uint16 = 1
	SubtypeMessageAS4     uint16 = 4
	SubtypeStateChangeAS4 uint16 = 5
)

// Decode errors. Every error returned by Reader wraps exactly one of
// these (plus, for attribute errors, the underlying bgp error), so
// callers can classify failures without string matching.
var (
	// ErrTruncated reports a record cut short: a header or body that
	// ends before its declared length — the file stopped mid-record.
	ErrTruncated = errors.New("mrt: truncated record")
	// ErrBadRecord reports a structurally invalid record body: lengths
	// that overflow the record, impossible prefix sizes, unparseable
	// path attributes.
	ErrBadRecord = errors.New("mrt: malformed record")
	// ErrNoPeerIndex reports a RIB entry record arriving before any
	// PEER_INDEX_TABLE, or referencing a peer index past the table —
	// the dump cannot say who announced the route.
	ErrNoPeerIndex = errors.New("mrt: RIB entry without matching peer index")
)

// maxRecordLen bounds one record body. Real TABLE_DUMP_V2 records are
// a few KB; the cap keeps a corrupted length field from turning into a
// multi-GB allocation.
const maxRecordLen = 16 << 20

// Header is the common MRT record header.
type Header struct {
	// Timestamp is the record's capture time in Unix seconds.
	Timestamp uint32
	Type      uint16
	Subtype   uint16
	// Length is the body length in bytes (header excluded).
	Length uint32
}

// Peer is one entry of a PEER_INDEX_TABLE: the BGP neighbor a RIB
// entry's PeerIndex points at.
type Peer struct {
	// BGPID is the peer's BGP identifier.
	BGPID netip.Addr
	// Addr is the peer's transport address (IPv4 or IPv6).
	Addr netip.Addr
	// AS is the peer's autonomous-system number.
	AS uint32
}

// PeerIndex is the PEER_INDEX_TABLE record every TABLE_DUMP_V2 dump
// opens with: the collector's identity and the peer list RIB entries
// reference by index.
type PeerIndex struct {
	CollectorID netip.Addr
	ViewName    string
	Peers       []Peer
}

// RIBEntry is one peer's path for a RIB record's prefix.
type RIBEntry struct {
	// PeerIndex indexes the dump's PeerIndex.Peers.
	PeerIndex uint16
	// OriginatedAt is when the path was last changed (Unix seconds).
	OriginatedAt uint32
	// PathID is the additional-path identifier (RFC 8050 subtypes
	// only; zero otherwise).
	PathID uint32
	// Attrs are the decoded path attributes. TABLE_DUMP_V2 encodes
	// AS_PATH with 4-octet ASNs unconditionally, and an abbreviated
	// MP_REACH_NLRI (next-hop only) may stand in for NEXT_HOP — the
	// reader folds both into the canonical bgp.Attrs form.
	Attrs *bgp.Attrs
}

// RIB is one RIB_IPV4_UNICAST record: every known path for one prefix.
type RIB struct {
	// Seq is the record's sequence number within the dump.
	Seq    uint32
	Prefix netip.Prefix
	// AddPath marks the RFC 8050 additional-path subtype (entries
	// carry PathID).
	AddPath bool
	Entries []RIBEntry
}

// BGP4MP is one BGP4MP / BGP4MP_ET record: a BGP message or session
// state change observed between the collector and a peer.
type BGP4MP struct {
	PeerAS  uint32
	LocalAS uint32
	// Interface is the collector's interface index.
	Interface uint16
	PeerIP    netip.Addr
	LocalIP   netip.Addr
	// AS4 marks the 4-octet-AS subtypes (MESSAGE_AS4,
	// STATE_CHANGE_AS4); it is also the codec the message was decoded
	// with.
	AS4 bool
	// Message is the decoded BGP message (MESSAGE subtypes; nil for
	// state changes).
	Message bgp.Message
	// StateChange marks the STATE_CHANGE subtypes; OldState and
	// NewState are the FSM states (RFC 6396 §4.4.1).
	StateChange bool
	OldState    uint16
	NewState    uint16
}

// Record is one decoded MRT record. Exactly one of PeerIndex, RIB and
// BGP4MP is set for the supported types; all three are nil for record
// types the package only skips (Header still describes them).
type Record struct {
	Header    Header
	PeerIndex *PeerIndex
	RIB       *RIB
	BGP4MP    *BGP4MP
}
