package mrt

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader holds the package's core contract under hostile input: the
// reader terminates with a typed error or clean EOF on every byte
// string — no panics, no unbounded allocation, no infinite loop. When a
// mutated dump does decode, every record it yields must re-encode and
// decode again (the writer and reader agree on what "valid" means).
func FuzzReader(f *testing.F) {
	// Seed with real record shapes so the mutator starts from structure,
	// not noise: the golden fixture mix plus a truncated and a gzip'd
	// variant. Checked-in regression inputs live in testdata/fuzz.
	var seed bytes.Buffer
	w := NewWriter(&seed)
	pi := testPeerIndex()
	_ = w.WritePeerIndex(pi)
	_ = w.WriteRIB(pfx("10.0.0.0/8"), []RIBEntry{{PeerIndex: 0, Attrs: testAttrs(0)}})
	_ = w.WriteRIB(pfx("198.51.100.0/25"), []RIBEntry{{PeerIndex: 1, PathID: 3, Attrs: testAttrs(1)}})
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:17])
	f.Add([]byte{0x1f, 0x8b, 8, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data))
		for i := 0; i < 10_000; i++ {
			rec, err := rd.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadRecord) && !errors.Is(err, ErrNoPeerIndex) {
					t.Fatalf("untyped error: %v", err)
				}
				return
			}
			reencode(t, rec)
		}
		t.Fatalf("10k records from %d bytes of input: runaway loop", len(data))
	})
}

// reencode pushes a decoded record back through the writer and reader,
// asserting the round trip reproduces it. Records the writer legally
// refuses (shapes the reader accepts but the writer normalizes away,
// e.g. 2-octet-AS peers) are skipped — the property is "decodable
// implies re-encodable OR explicitly rejected", never a crash.
func reencode(t *testing.T, rec *Record) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	switch {
	case rec.PeerIndex != nil:
		if err := w.WritePeerIndex(rec.PeerIndex); err != nil {
			return
		}
	case rec.RIB != nil:
		pi := &PeerIndex{}
		for i := 0; i <= maxPeerRef(rec.RIB); i++ {
			pi.Peers = append(pi.Peers, Peer{Addr: addr("203.0.113.1"), AS: 65002})
		}
		if err := w.WritePeerIndex(pi); err != nil {
			return
		}
		if err := w.WriteRIB(rec.RIB.Prefix, rec.RIB.Entries); err != nil {
			return
		}
	case rec.BGP4MP != nil:
		if err := w.WriteBGP4MP(rec.BGP4MP); err != nil {
			return
		}
	default:
		return
	}
	rd := NewReader(bytes.NewReader(buf.Bytes()))
	for {
		if _, err := rd.Next(); err != nil {
			if err == io.EOF {
				return
			}
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
	}
}

func maxPeerRef(rib *RIB) int {
	m := 0
	for _, e := range rib.Entries {
		if int(e.PeerIndex) > m {
			m = int(e.PeerIndex)
		}
	}
	return m
}
