package mrt

import (
	"bytes"
	"encoding/json"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"supercharged/internal/bgp"
)

// goldenDump authors the committed fixture dump: a deliberately varied
// record mix (multi-entry RIBs, add-path, IPv6 peer, BGP4MP message and
// state change, an unsupported record) written deterministically.
func goldenDump(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Timestamp = 1438387200 // 2015-08-01, the paper's era
	if err := w.WritePeerIndex(testPeerIndex()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(pfx("10.0.0.0/8"), []RIBEntry{
		{PeerIndex: 0, OriginatedAt: 1438387100, Attrs: testAttrs(0)},
		{PeerIndex: 1, OriginatedAt: 1438387150, Attrs: testAttrs(1)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(pfx("198.51.100.128/25"), []RIBEntry{
		{PeerIndex: 1, PathID: 3, Attrs: testAttrs(2)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.writeRecord(11, 0, []byte{1, 2, 3}); err != nil { // OSPFv2: skipped
		t.Fatal(err)
	}
	if err := w.WriteBGP4MP(&BGP4MP{
		PeerAS: 65002, LocalAS: 65001,
		PeerIP: addr("203.0.113.1"), LocalIP: addr("203.0.113.9"),
		Message: &bgp.Update{
			Withdrawn: []netip.Prefix{pfx("192.0.2.0/24")},
			Attrs:     testAttrs(3),
			NLRI:      []netip.Prefix{pfx("203.0.113.0/24")},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBGP4MP(&BGP4MP{
		PeerAS: 4200000001, LocalAS: 65001, AS4: true,
		PeerIP: addr("2001:db8::2"), LocalIP: addr("2001:db8::1"),
		StateChange: true, OldState: 4, NewState: 5,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// goldenView flattens decoded records into a JSON-stable shape: what
// the golden file freezes. Every decoded field appears so any codec
// drift — flag handling, attribute folding, subtype selection — shows
// up as a golden diff, not as silent reinterpretation.
type goldenView struct {
	Header Header     `json:"header"`
	Peers  *PeerIndex `json:"peers,omitempty"`
	RIB    *ribView   `json:"rib,omitempty"`
	BGP4MP *mpView    `json:"bgp4mp,omitempty"`
}

type ribView struct {
	Seq     uint32      `json:"seq"`
	Prefix  string      `json:"prefix"`
	AddPath bool        `json:"add_path,omitempty"`
	Entries []entryView `json:"entries"`
}

type entryView struct {
	Peer         uint16 `json:"peer"`
	OriginatedAt uint32 `json:"originated_at,omitempty"`
	PathID       uint32 `json:"path_id,omitempty"`
	Attrs        string `json:"attrs"`
	NextHop      string `json:"next_hop"`
}

type mpView struct {
	PeerAS      uint32 `json:"peer_as"`
	LocalAS     uint32 `json:"local_as"`
	PeerIP      string `json:"peer_ip"`
	LocalIP     string `json:"local_ip"`
	AS4         bool   `json:"as4,omitempty"`
	Message     string `json:"message,omitempty"`
	StateChange bool   `json:"state_change,omitempty"`
	OldState    uint16 `json:"old_state,omitempty"`
	NewState    uint16 `json:"new_state,omitempty"`
}

func viewOf(rec *Record) goldenView {
	v := goldenView{Header: rec.Header, Peers: rec.PeerIndex}
	if rec.RIB != nil {
		rv := &ribView{Seq: rec.RIB.Seq, Prefix: rec.RIB.Prefix.String(), AddPath: rec.RIB.AddPath}
		for _, e := range rec.RIB.Entries {
			rv.Entries = append(rv.Entries, entryView{
				Peer: e.PeerIndex, OriginatedAt: e.OriginatedAt, PathID: e.PathID,
				Attrs: e.Attrs.String(), NextHop: e.Attrs.NextHop.String(),
			})
		}
		v.RIB = rv
	}
	if m := rec.BGP4MP; m != nil {
		mv := &mpView{
			PeerAS: m.PeerAS, LocalAS: m.LocalAS,
			PeerIP: m.PeerIP.String(), LocalIP: m.LocalIP.String(),
			AS4: m.AS4, StateChange: m.StateChange, OldState: m.OldState, NewState: m.NewState,
		}
		if m.Message != nil {
			mv.Message = m.Message.(*bgp.Update).String()
		}
		v.BGP4MP = mv
	}
	return v
}

// The committed sample.mrt must decode to exactly the committed JSON.
// UPDATE_GOLDEN=1 regenerates both — the dump from the deterministic
// writer, the JSON from the reader — so the pair can never drift from
// the codec without this test noticing.
func TestGolden(t *testing.T) {
	dumpPath := filepath.Join("testdata", "sample.mrt")
	goldPath := filepath.Join("testdata", "sample.golden.json")

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dumpPath, goldenDump(t), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	raw, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("read fixture: %v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	// The committed bytes must match what today's writer would emit —
	// writer determinism across versions, not just within one process.
	if want := goldenDump(t); !bytes.Equal(raw, want) {
		t.Fatalf("%s drifted from the writer's output (regenerate with UPDATE_GOLDEN=1)", dumpPath)
	}

	var views []goldenView
	rd := NewReader(bytes.NewReader(raw))
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decode fixture: %v", err)
		}
		views = append(views, viewOf(rec))
	}
	got, err := json.MarshalIndent(views, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("decoded fixture drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", goldPath, got, want)
	}
}
