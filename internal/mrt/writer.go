package mrt

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"supercharged/internal/bgp"
)

// Writer emits MRT records — the fixture half of the codec: tests (and
// cmd/feedgen -mrt) author dumps programmatically instead of committing
// opaque binaries nobody can regenerate. What Writer produces, Reader
// round-trips; the mrt test suite holds that property under fuzzing.
//
// A zero Timestamp (the default) stamps every record with time zero,
// which is what keeps generated fixtures byte-for-byte reproducible.
type Writer struct {
	w io.Writer
	// Timestamp stamps the common header of every subsequent record
	// (Unix seconds).
	Timestamp uint32
	// seq numbers RIB records in write order, as RFC 6396 requires.
	seq uint32
	// peers mirrors the last peer index written, validating RIB entry
	// references at write time instead of at the eventual read.
	peers int
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w, peers: -1} }

func (w *Writer) writeRecord(typ, subtype uint16, body []byte) error {
	if len(body) > maxRecordLen {
		return fmt.Errorf("%w: record body %d bytes exceeds the %d cap", ErrBadRecord, len(body), maxRecordLen)
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], w.Timestamp)
	binary.BigEndian.PutUint16(hdr[4:6], typ)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(body)
	return err
}

// WritePeerIndex emits the PEER_INDEX_TABLE record. It must precede
// every RIB record, exactly as in a real dump.
func (w *Writer) WritePeerIndex(pi *PeerIndex) error {
	collector := pi.CollectorID
	if !collector.IsValid() {
		collector = netip.AddrFrom4([4]byte{192, 0, 2, 255})
	}
	if !collector.Is4() {
		return fmt.Errorf("%w: collector id %v is not IPv4", ErrBadRecord, collector)
	}
	if len(pi.ViewName) > 0xffff {
		return fmt.Errorf("%w: view name %d bytes", ErrBadRecord, len(pi.ViewName))
	}
	if len(pi.Peers) > 0xffff {
		return fmt.Errorf("%w: %d peers", ErrBadRecord, len(pi.Peers))
	}
	body := make([]byte, 0, 8+len(pi.ViewName)+len(pi.Peers)*12)
	cid := collector.As4()
	body = append(body, cid[:]...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(pi.ViewName)))
	body = append(body, pi.ViewName...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(pi.Peers)))
	for i, p := range pi.Peers {
		bgpid := p.BGPID
		if !bgpid.IsValid() {
			bgpid = netip.AddrFrom4([4]byte{0, 0, 0, 0})
		}
		if !bgpid.Is4() {
			return fmt.Errorf("%w: peer %d BGP id %v is not IPv4", ErrBadRecord, i, bgpid)
		}
		addr := p.Addr.Unmap()
		if !addr.IsValid() {
			return fmt.Errorf("%w: peer %d has no address", ErrBadRecord, i)
		}
		var ptype uint8 = peerFlagAS4 // always write 4-octet ASNs
		if addr.Is6() {
			ptype |= peerFlagIPv6
		}
		body = append(body, ptype)
		id4 := bgpid.As4()
		body = append(body, id4[:]...)
		if addr.Is6() {
			a16 := addr.As16()
			body = append(body, a16[:]...)
		} else {
			a4 := addr.As4()
			body = append(body, a4[:]...)
		}
		body = binary.BigEndian.AppendUint32(body, p.AS)
	}
	if err := w.writeRecord(TypeTableDumpV2, SubtypePeerIndexTable, body); err != nil {
		return err
	}
	w.peers = len(pi.Peers)
	return nil
}

// WriteRIB emits one RIB_IPV4_UNICAST record for prefix, sequence-
// numbered in write order. Entries with a nonzero PathID select the
// RFC 8050 additional-path subtype (all entries then carry a path id).
func (w *Writer) WriteRIB(prefix netip.Prefix, entries []RIBEntry) error {
	if w.peers < 0 {
		return fmt.Errorf("%w: WriteRIB before WritePeerIndex", ErrNoPeerIndex)
	}
	if !prefix.IsValid() || !prefix.Addr().Unmap().Is4() {
		return fmt.Errorf("%w: prefix %v is not IPv4", ErrBadRecord, prefix)
	}
	if len(entries) == 0 || len(entries) > 0xffff {
		return fmt.Errorf("%w: %d RIB entries", ErrBadRecord, len(entries))
	}
	addPath := false
	for _, e := range entries {
		if e.PathID != 0 {
			addPath = true
			break
		}
	}
	prefix = netip.PrefixFrom(prefix.Addr().Unmap(), prefix.Bits()).Masked()
	addr := prefix.Addr().As4()
	nBytes := (prefix.Bits() + 7) / 8

	body := make([]byte, 0, 8+nBytes+len(entries)*64)
	body = binary.BigEndian.AppendUint32(body, w.seq)
	body = append(body, byte(prefix.Bits()))
	body = append(body, addr[:nBytes]...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(entries)))
	for i, e := range entries {
		if int(e.PeerIndex) >= w.peers {
			return fmt.Errorf("%w: entry %d references peer %d of %d", ErrNoPeerIndex, i, e.PeerIndex, w.peers)
		}
		if e.Attrs == nil {
			return fmt.Errorf("%w: entry %d has no attributes", ErrBadRecord, i)
		}
		attrBytes, err := tableDumpCodec.MarshalAttrs(e.Attrs)
		if err != nil {
			return fmt.Errorf("%w: entry %d: %w", ErrBadRecord, i, err)
		}
		if len(attrBytes) > 0xffff {
			return fmt.Errorf("%w: entry %d attributes %d bytes", ErrBadRecord, i, len(attrBytes))
		}
		body = binary.BigEndian.AppendUint16(body, e.PeerIndex)
		body = binary.BigEndian.AppendUint32(body, e.OriginatedAt)
		if addPath {
			body = binary.BigEndian.AppendUint32(body, e.PathID)
		}
		body = binary.BigEndian.AppendUint16(body, uint16(len(attrBytes)))
		body = append(body, attrBytes...)
	}
	subtype := SubtypeRIBIPv4Unicast
	if addPath {
		subtype = SubtypeRIBIPv4UnicastAddPath
	}
	if err := w.writeRecord(TypeTableDumpV2, subtype, body); err != nil {
		return err
	}
	w.seq++
	return nil
}

// WriteBGP4MP emits one BGP4MP record: a state change when
// m.StateChange is set, otherwise the encoded m.Message. The AS4 field
// selects the 4-octet-AS subtypes (and the message codec).
func (w *Writer) WriteBGP4MP(m *BGP4MP) error {
	peerIP, localIP := m.PeerIP.Unmap(), m.LocalIP.Unmap()
	if !peerIP.IsValid() || !localIP.IsValid() {
		return fmt.Errorf("%w: BGP4MP needs peer and local IPs", ErrBadRecord)
	}
	if peerIP.Is4() != localIP.Is4() {
		return fmt.Errorf("%w: BGP4MP peer/local address families differ", ErrBadRecord)
	}
	if !m.AS4 && (m.PeerAS > 0xffff || m.LocalAS > 0xffff) {
		return fmt.Errorf("%w: AS number above 65535 needs the AS4 subtype", ErrBadRecord)
	}
	var body []byte
	if m.AS4 {
		body = binary.BigEndian.AppendUint32(body, m.PeerAS)
		body = binary.BigEndian.AppendUint32(body, m.LocalAS)
	} else {
		body = binary.BigEndian.AppendUint16(body, uint16(m.PeerAS))
		body = binary.BigEndian.AppendUint16(body, uint16(m.LocalAS))
	}
	body = binary.BigEndian.AppendUint16(body, m.Interface)
	if peerIP.Is4() {
		body = binary.BigEndian.AppendUint16(body, 1)
		p4, l4 := peerIP.As4(), localIP.As4()
		body = append(body, p4[:]...)
		body = append(body, l4[:]...)
	} else {
		body = binary.BigEndian.AppendUint16(body, 2)
		p16, l16 := peerIP.As16(), localIP.As16()
		body = append(body, p16[:]...)
		body = append(body, l16[:]...)
	}
	var subtype uint16
	switch {
	case m.StateChange:
		subtype = SubtypeStateChange
		if m.AS4 {
			subtype = SubtypeStateChangeAS4
		}
		body = binary.BigEndian.AppendUint16(body, m.OldState)
		body = binary.BigEndian.AppendUint16(body, m.NewState)
	default:
		if m.Message == nil {
			return fmt.Errorf("%w: BGP4MP message record without a message", ErrBadRecord)
		}
		subtype = SubtypeMessage
		if m.AS4 {
			subtype = SubtypeMessageAS4
		}
		raw, err := (bgp.Codec{ASN4: m.AS4}).Marshal(m.Message)
		if err != nil {
			return fmt.Errorf("%w: %w", ErrBadRecord, err)
		}
		body = append(body, raw...)
	}
	return w.writeRecord(TypeBGP4MP, subtype, body)
}
