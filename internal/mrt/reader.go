package mrt

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"supercharged/internal/bgp"
)

// Reader streams MRT records from r. Records are decoded one at a time
// — a full-table dump is never held in memory — and the PEER_INDEX_TABLE
// is retained so later RIB records can resolve their peer references.
//
// Gzip-compressed input (how RIS and RouteViews publish dumps) is
// detected by magic bytes and decompressed transparently.
type Reader struct {
	r       *bufio.Reader
	started bool
	// n counts records handed out, for error context.
	n     int
	peers *PeerIndex
	// intern, when set, canonicalizes every decoded attribute set —
	// full tables repeat a few tens of thousands of attribute sets
	// across millions of entries, and downstream consumers (the feed
	// loader's template dedup) recognize interned sets by pointer.
	intern *bgp.Interner
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// SetInterner canonicalizes decoded attribute sets through in (nil
// disables interning). Interned attributes are frozen: callers must
// clone before mutating, per the interner's contract.
func (r *Reader) SetInterner(in *bgp.Interner) { r.intern = in }

// PeerIndex returns the dump's peer table once a PEER_INDEX_TABLE
// record has been read (nil before).
func (r *Reader) PeerIndex() *PeerIndex { return r.peers }

// Next decodes and returns the next record. It returns io.EOF at a
// clean end of input, ErrTruncated when the input stops mid-record, and
// ErrBadRecord / ErrNoPeerIndex (wrapped with record context) on
// malformed bodies. It never panics on hostile input.
func (r *Reader) Next() (*Record, error) {
	if !r.started {
		r.started = true
		if magic, err := r.r.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
			zr, err := gzip.NewReader(r.r)
			if err != nil {
				return nil, fmt.Errorf("%w: gzip: %v", ErrBadRecord, err)
			}
			r.r = bufio.NewReaderSize(zr, 64<<10)
		}
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: record %d: header cut short", ErrTruncated, r.n)
	}
	rec := &Record{Header: Header{
		Timestamp: binary.BigEndian.Uint32(hdr[0:4]),
		Type:      binary.BigEndian.Uint16(hdr[4:6]),
		Subtype:   binary.BigEndian.Uint16(hdr[6:8]),
		Length:    binary.BigEndian.Uint32(hdr[8:12]),
	}}
	if rec.Header.Length > maxRecordLen {
		return nil, fmt.Errorf("%w: record %d: body length %d exceeds the %d cap",
			ErrBadRecord, r.n, rec.Header.Length, maxRecordLen)
	}
	body := make([]byte, rec.Header.Length)
	if n, err := io.ReadFull(r.r, body); err != nil {
		return nil, fmt.Errorf("%w: record %d: body cut short (%d of %d bytes)",
			ErrTruncated, r.n, n, rec.Header.Length)
	}
	idx := r.n
	r.n++
	if err := r.decodeBody(rec, body); err != nil {
		return nil, fmt.Errorf("record %d (type %d subtype %d): %w",
			idx, rec.Header.Type, rec.Header.Subtype, err)
	}
	return rec, nil
}

func (r *Reader) decodeBody(rec *Record, body []byte) error {
	switch rec.Header.Type {
	case TypeTableDumpV2:
		switch rec.Header.Subtype {
		case SubtypePeerIndexTable:
			pi, err := parsePeerIndex(body)
			if err != nil {
				return err
			}
			rec.PeerIndex = pi
			r.peers = pi
		case SubtypeRIBIPv4Unicast, SubtypeRIBIPv4UnicastAddPath:
			rib, err := r.parseRIB(body, rec.Header.Subtype == SubtypeRIBIPv4UnicastAddPath)
			if err != nil {
				return err
			}
			rec.RIB = rib
		}
	case TypeBGP4MP, TypeBGP4MPET:
		if rec.Header.Type == TypeBGP4MPET {
			// Extended timestamp: four microsecond bytes precede the body.
			if len(body) < 4 {
				return fmt.Errorf("%w: BGP4MP_ET shorter than its microsecond field", ErrBadRecord)
			}
			body = body[4:]
		}
		m, err := parseBGP4MP(rec.Header.Subtype, body)
		if err != nil {
			return err
		}
		rec.BGP4MP = m
	}
	// Unsupported types/subtypes: header-only record, caller skips.
	return nil
}

// cursor is a bounds-checked byte walker; every read reports truncation
// through ErrBadRecord instead of slicing past the buffer.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) take(n int, what string) ([]byte, error) {
	if n < 0 || len(c.b)-c.off < n {
		return nil, fmt.Errorf("%w: %s overruns the record body", ErrBadRecord, what)
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out, nil
}

func (c *cursor) u8(what string) (uint8, error) {
	b, err := c.take(1, what)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *cursor) u16(what string) (uint16, error) {
	b, err := c.take(2, what)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (c *cursor) u32(what string) (uint32, error) {
	b, err := c.take(4, what)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (c *cursor) addr4(what string) (netip.Addr, error) {
	b, err := c.take(4, what)
	if err != nil {
		return netip.Addr{}, err
	}
	return netip.AddrFrom4([4]byte(b)), nil
}

func (c *cursor) addr16(what string) (netip.Addr, error) {
	b, err := c.take(16, what)
	if err != nil {
		return netip.Addr{}, err
	}
	return netip.AddrFrom16([16]byte(b)), nil
}

func (c *cursor) done() error {
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing bytes after the record payload", ErrBadRecord, len(c.b)-c.off)
	}
	return nil
}

// Peer-entry type bits (RFC 6396 §4.3.1).
const (
	peerFlagIPv6 = 0x01
	peerFlagAS4  = 0x02
)

func parsePeerIndex(body []byte) (*PeerIndex, error) {
	c := &cursor{b: body}
	pi := &PeerIndex{}
	var err error
	if pi.CollectorID, err = c.addr4("collector id"); err != nil {
		return nil, err
	}
	nameLen, err := c.u16("view name length")
	if err != nil {
		return nil, err
	}
	name, err := c.take(int(nameLen), "view name")
	if err != nil {
		return nil, err
	}
	pi.ViewName = string(name)
	count, err := c.u16("peer count")
	if err != nil {
		return nil, err
	}
	pi.Peers = make([]Peer, 0, count)
	for i := 0; i < int(count); i++ {
		ptype, err := c.u8("peer type")
		if err != nil {
			return nil, err
		}
		var p Peer
		if p.BGPID, err = c.addr4("peer BGP id"); err != nil {
			return nil, err
		}
		if ptype&peerFlagIPv6 != 0 {
			p.Addr, err = c.addr16("peer address")
		} else {
			p.Addr, err = c.addr4("peer address")
		}
		if err != nil {
			return nil, err
		}
		if ptype&peerFlagAS4 != 0 {
			p.AS, err = c.u32("peer AS")
		} else {
			var as2 uint16
			as2, err = c.u16("peer AS")
			p.AS = uint32(as2)
		}
		if err != nil {
			return nil, err
		}
		pi.Peers = append(pi.Peers, p)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return pi, nil
}

// tableDumpCodec decodes RIB-entry attributes: TABLE_DUMP_V2 always
// encodes AS_PATH (and AGGREGATOR) with 4-octet ASNs (RFC 6396 §4.3.4).
var tableDumpCodec = bgp.Codec{ASN4: true}

func (r *Reader) parseRIB(body []byte, addPath bool) (*RIB, error) {
	if r.peers == nil {
		return nil, fmt.Errorf("%w: no PEER_INDEX_TABLE seen yet", ErrNoPeerIndex)
	}
	c := &cursor{b: body}
	rib := &RIB{AddPath: addPath}
	var err error
	if rib.Seq, err = c.u32("sequence"); err != nil {
		return nil, err
	}
	bits, err := c.u8("prefix length")
	if err != nil {
		return nil, err
	}
	if bits > 32 {
		return nil, fmt.Errorf("%w: IPv4 prefix length %d", ErrBadRecord, bits)
	}
	pfxBytes, err := c.take(int(bits+7)/8, "prefix")
	if err != nil {
		return nil, err
	}
	var addr [4]byte
	copy(addr[:], pfxBytes)
	rib.Prefix = netip.PrefixFrom(netip.AddrFrom4(addr), int(bits)).Masked()
	count, err := c.u16("entry count")
	if err != nil {
		return nil, err
	}
	rib.Entries = make([]RIBEntry, 0, count)
	for i := 0; i < int(count); i++ {
		var e RIBEntry
		if e.PeerIndex, err = c.u16("peer index"); err != nil {
			return nil, err
		}
		if int(e.PeerIndex) >= len(r.peers.Peers) {
			return nil, fmt.Errorf("%w: entry %d references peer %d of %d",
				ErrNoPeerIndex, i, e.PeerIndex, len(r.peers.Peers))
		}
		if e.OriginatedAt, err = c.u32("originated time"); err != nil {
			return nil, err
		}
		if addPath {
			if e.PathID, err = c.u32("path id"); err != nil {
				return nil, err
			}
		}
		attrLen, err := c.u16("attribute length")
		if err != nil {
			return nil, err
		}
		attrBytes, err := c.take(int(attrLen), "attributes")
		if err != nil {
			return nil, err
		}
		if e.Attrs, err = r.parseRIBAttrs(attrBytes); err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		rib.Entries = append(rib.Entries, e)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return rib, nil
}

// parseRIBAttrs decodes a RIB entry's attribute block. Dumps may carry
// the next-hop as an abbreviated MP_REACH_NLRI (RFC 6396 §4.3.4: just
// the next-hop field, no NLRI) instead of a NEXT_HOP attribute; the bgp
// parser drops that optional non-transitive attribute, so the next-hop
// is scanned out first and folded into Attrs.NextHop.
func (r *Reader) parseRIBAttrs(b []byte) (*bgp.Attrs, error) {
	attrs, err := tableDumpCodec.ParseAttrs(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRecord, err)
	}
	if !attrs.NextHop.IsValid() {
		if nh, ok := scanMPNextHop(b); ok {
			attrs.NextHop = nh
		}
	}
	if r.intern != nil {
		attrs = r.intern.Intern(attrs)
	}
	return attrs, nil
}

// attrMPReachNLRI is the MP_REACH_NLRI attribute code (RFC 4760).
const attrMPReachNLRI = 14

// scanMPNextHop walks an attribute block looking for the abbreviated
// TABLE_DUMP_V2 MP_REACH_NLRI (next-hop length, next-hop) and returns
// the IPv4-mappable next-hop. The walk mirrors the bgp parser's framing
// exactly; it reports false on anything it does not recognize (the
// caller treats a missing next-hop as data, not an error).
func scanMPNextHop(b []byte) (netip.Addr, bool) {
	for len(b) >= 3 {
		flags, code := b[0], b[1]
		var alen, off int
		if flags&0x10 != 0 { // extended length
			if len(b) < 4 {
				return netip.Addr{}, false
			}
			alen, off = int(binary.BigEndian.Uint16(b[2:4])), 4
		} else {
			alen, off = int(b[2]), 3
		}
		if len(b) < off+alen {
			return netip.Addr{}, false
		}
		body := b[off : off+alen]
		b = b[off+alen:]
		if code != attrMPReachNLRI {
			continue
		}
		if len(body) < 1 || len(body) < 1+int(body[0]) {
			return netip.Addr{}, false
		}
		nh := body[1 : 1+int(body[0])]
		switch len(nh) {
		case 4:
			return netip.AddrFrom4([4]byte(nh)), true
		case 16:
			a := netip.AddrFrom16([16]byte(nh))
			if a.Is4In6() {
				return a.Unmap(), true
			}
			return a, true
		}
		return netip.Addr{}, false
	}
	return netip.Addr{}, false
}

func parseBGP4MP(subtype uint16, body []byte) (*BGP4MP, error) {
	m := &BGP4MP{}
	switch subtype {
	case SubtypeMessageAS4, SubtypeStateChangeAS4:
		m.AS4 = true
	case SubtypeMessage, SubtypeStateChange:
	default:
		return nil, nil // unsupported subtype: header-only record
	}
	c := &cursor{b: body}
	var err error
	if m.AS4 {
		if m.PeerAS, err = c.u32("peer AS"); err != nil {
			return nil, err
		}
		if m.LocalAS, err = c.u32("local AS"); err != nil {
			return nil, err
		}
	} else {
		var as2 uint16
		if as2, err = c.u16("peer AS"); err != nil {
			return nil, err
		}
		m.PeerAS = uint32(as2)
		if as2, err = c.u16("local AS"); err != nil {
			return nil, err
		}
		m.LocalAS = uint32(as2)
	}
	if m.Interface, err = c.u16("interface index"); err != nil {
		return nil, err
	}
	af, err := c.u16("address family")
	if err != nil {
		return nil, err
	}
	switch af {
	case 1:
		if m.PeerIP, err = c.addr4("peer ip"); err != nil {
			return nil, err
		}
		if m.LocalIP, err = c.addr4("local ip"); err != nil {
			return nil, err
		}
	case 2:
		if m.PeerIP, err = c.addr16("peer ip"); err != nil {
			return nil, err
		}
		if m.LocalIP, err = c.addr16("local ip"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: BGP4MP address family %d", ErrBadRecord, af)
	}
	if subtype == SubtypeStateChange || subtype == SubtypeStateChangeAS4 {
		m.StateChange = true
		if m.OldState, err = c.u16("old state"); err != nil {
			return nil, err
		}
		if m.NewState, err = c.u16("new state"); err != nil {
			return nil, err
		}
		if err := c.done(); err != nil {
			return nil, err
		}
		return m, nil
	}
	raw := c.b[c.off:]
	msg, err := (bgp.Codec{ASN4: m.AS4}).Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRecord, err)
	}
	m.Message = msg
	return m, nil
}
