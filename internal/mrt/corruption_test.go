package mrt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// validDump builds a known-good two-record dump (peer index + one RIB)
// for the corruption tests to mutilate.
func validDump(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndex(testPeerIndex()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(pfx("10.0.0.0/8"), []RIBEntry{{PeerIndex: 0, Attrs: testAttrs(0)}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain reads records until the first error and returns it (nil if the
// stream ends cleanly).
func drain(b []byte) error {
	rd := NewReader(bytes.NewReader(b))
	for {
		if _, err := rd.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// Every way a dump can be cut short or corrupted must surface as the
// matching typed error — never a panic, never a silent success.
func TestCorruption(t *testing.T) {
	good := validDump(t)
	peerIndexLen := 12 + int(binary.BigEndian.Uint32(good[8:12]))

	tests := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{
			"header cut short",
			func(b []byte) []byte { return b[:7] },
			ErrTruncated,
		},
		{
			"body cut short",
			func(b []byte) []byte { return b[:peerIndexLen-3] },
			ErrTruncated,
		},
		{
			"file ends mid second record",
			func(b []byte) []byte { return b[:len(b)-5] },
			ErrTruncated,
		},
		{
			"length field past the allocation cap",
			func(b []byte) []byte {
				c := append([]byte(nil), b...)
				binary.BigEndian.PutUint32(c[8:12], maxRecordLen+1)
				return c
			},
			ErrBadRecord,
		},
		{
			"RIB before any peer index",
			func(b []byte) []byte { return b[peerIndexLen:] },
			ErrNoPeerIndex,
		},
		{
			"RIB entry references a peer past the table",
			func(b []byte) []byte {
				c := append([]byte(nil), b...)
				// Entry's peer index field sits right after the RIB
				// record's seq(4) + plen(1) + prefix(1 byte for /8) +
				// count(2).
				off := peerIndexLen + 12 + 4 + 1 + 1 + 2
				binary.BigEndian.PutUint16(c[off:off+2], 99)
				return c
			},
			ErrNoPeerIndex,
		},
		{
			"IPv4 prefix length over 32",
			func(b []byte) []byte {
				c := append([]byte(nil), b...)
				c[peerIndexLen+12+4] = 33
				return c
			},
			ErrBadRecord,
		},
		{
			"peer count overruns the peer index body",
			func(b []byte) []byte {
				c := append([]byte(nil), b...)
				// Peer count sits after collector(4) + namelen(2) + name.
				nameLen := int(binary.BigEndian.Uint16(c[12+4 : 12+6]))
				off := 12 + 4 + 2 + nameLen
				binary.BigEndian.PutUint16(c[off:off+2], 0xffff)
				return c
			},
			ErrBadRecord,
		},
		{
			"trailing garbage after the record payload",
			func(b []byte) []byte {
				c := append([]byte(nil), b...)
				// Grow the first record's declared length by 2 and slip two
				// bytes in after its body: cursor.done must reject them.
				binary.BigEndian.PutUint32(c[8:12], uint32(peerIndexLen-12+2))
				tail := append([]byte{0xaa, 0xbb}, c[peerIndexLen:]...)
				return append(c[:peerIndexLen], tail...)
			},
			ErrBadRecord,
		},
		{
			"RIB attributes unparseable",
			func(b []byte) []byte {
				c := append([]byte(nil), b...)
				// Zero the first attribute's flag byte: NEXT_HOP becomes a
				// malformed well-known attribute framing for the bgp parser.
				// The attr block starts after peer(2)+orig(4)+alen(2).
				off := peerIndexLen + 12 + 4 + 1 + 1 + 2 + 2 + 4 + 2
				c[off] = 0xff
				return c
			},
			ErrBadRecord,
		},
		{
			"gzip magic with garbage after it",
			func([]byte) []byte { return []byte{0x1f, 0x8b, 0x00, 0x00} },
			ErrBadRecord,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := drain(tt.mutate(append([]byte(nil), good...)))
			if err == nil {
				t.Fatalf("decoded successfully, want %v", tt.wantErr)
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want errors.Is(..., %v)", err, tt.wantErr)
			}
		})
	}
}

// A truncated file still yields every complete record before the error
// — a partially fetched dump is partially usable.
func TestTruncatedTail(t *testing.T) {
	good := validDump(t)
	rd := NewReader(bytes.NewReader(good[:len(good)-1]))
	if rec, err := rd.Next(); err != nil || rec.PeerIndex == nil {
		t.Fatalf("first record: %+v, %v", rec, err)
	}
	if _, err := rd.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("second record err = %v, want ErrTruncated", err)
	}
}

// Writer-side validation mirrors the reader's rules: what WriteRIB
// rejects is exactly what Next could never have produced.
func TestWriterValidation(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteRIB(pfx("10.0.0.0/8"), []RIBEntry{{Attrs: testAttrs(0)}}); !errors.Is(err, ErrNoPeerIndex) {
		t.Errorf("WriteRIB before index: err = %v, want ErrNoPeerIndex", err)
	}
	if err := w.WritePeerIndex(testPeerIndex()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(pfx("2001:db8::/32"), []RIBEntry{{Attrs: testAttrs(0)}}); !errors.Is(err, ErrBadRecord) {
		t.Errorf("IPv6 prefix: err = %v, want ErrBadRecord", err)
	}
	if err := w.WriteRIB(pfx("10.0.0.0/8"), []RIBEntry{{PeerIndex: 7, Attrs: testAttrs(0)}}); !errors.Is(err, ErrNoPeerIndex) {
		t.Errorf("bad peer ref: err = %v, want ErrNoPeerIndex", err)
	}
	if err := w.WriteRIB(pfx("10.0.0.0/8"), nil); !errors.Is(err, ErrBadRecord) {
		t.Errorf("no entries: err = %v, want ErrBadRecord", err)
	}
	if err := w.WriteBGP4MP(&BGP4MP{
		PeerAS: 70000, LocalAS: 65001,
		PeerIP: addr("203.0.113.1"), LocalIP: addr("203.0.113.9"),
		StateChange: true,
	}); !errors.Is(err, ErrBadRecord) {
		t.Errorf("AS 70000 without AS4: err = %v, want ErrBadRecord", err)
	}
	if err := w.WriteBGP4MP(&BGP4MP{
		PeerIP: addr("203.0.113.1"), LocalIP: addr("2001:db8::1"),
		StateChange: true,
	}); !errors.Is(err, ErrBadRecord) {
		t.Errorf("mixed address families: err = %v, want ErrBadRecord", err)
	}
}
