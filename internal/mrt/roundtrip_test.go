package mrt

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/netip"
	"testing"

	"supercharged/internal/bgp"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

// testAttrs builds a representative attribute set; variant skews the
// path so distinct entries stay distinguishable through Equal.
func testAttrs(variant uint32) *bgp.Attrs {
	return &bgp.Attrs{
		Origin:      bgp.OriginIGP,
		ASPath:      bgp.Sequence(65002, 3356, 1299+variant),
		NextHop:     addr("203.0.113.1"),
		MED:         variant,
		HasMED:      variant != 0,
		Communities: []bgp.Community{community(65002, 100)},
	}
}

func community(as, val uint32) bgp.Community { return bgp.Community(as<<16 | val) }

func testPeerIndex() *PeerIndex {
	return &PeerIndex{
		CollectorID: addr("192.0.2.255"),
		ViewName:    "rt-test",
		Peers: []Peer{
			{BGPID: addr("203.0.113.1"), Addr: addr("203.0.113.1"), AS: 65002},
			{BGPID: addr("203.0.113.2"), Addr: addr("2001:db8::2"), AS: 4200000001},
		},
	}
}

// readAll drains a reader, failing the test on any decode error.
func readAll(t *testing.T, r io.Reader) []*Record {
	t.Helper()
	rd := NewReader(r)
	var recs []*Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		recs = append(recs, rec)
	}
}

// What the Writer emits, the Reader must reproduce — peer index
// (including an IPv6 peer and a 4-octet AS), plain and additional-path
// RIB records, and both BGP4MP flavors.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	pi := testPeerIndex()
	if err := w.WritePeerIndex(pi); err != nil {
		t.Fatalf("WritePeerIndex: %v", err)
	}
	ribs := []struct {
		prefix  netip.Prefix
		entries []RIBEntry
	}{
		{pfx("10.0.0.0/8"), []RIBEntry{{PeerIndex: 0, OriginatedAt: 42, Attrs: testAttrs(0)}}},
		{pfx("192.0.2.0/24"), []RIBEntry{
			{PeerIndex: 0, Attrs: testAttrs(1)},
			{PeerIndex: 1, Attrs: testAttrs(2)},
		}},
		// Nonzero path ids select the RFC 8050 add-path subtype.
		{pfx("198.51.100.0/25"), []RIBEntry{
			{PeerIndex: 1, PathID: 7, Attrs: testAttrs(3)},
			{PeerIndex: 1, PathID: 9, Attrs: testAttrs(4)},
		}},
	}
	for _, r := range ribs {
		if err := w.WriteRIB(r.prefix, r.entries); err != nil {
			t.Fatalf("WriteRIB(%v): %v", r.prefix, err)
		}
	}
	msg := &BGP4MP{
		PeerAS: 4200000001, LocalAS: 65001, AS4: true,
		PeerIP: addr("203.0.113.2"), LocalIP: addr("203.0.113.9"),
		Message: &bgp.Update{Attrs: testAttrs(5), NLRI: []netip.Prefix{pfx("203.0.113.0/24")}},
	}
	if err := w.WriteBGP4MP(msg); err != nil {
		t.Fatalf("WriteBGP4MP(message): %v", err)
	}
	state := &BGP4MP{
		PeerAS: 65002, LocalAS: 65001,
		PeerIP: addr("203.0.113.1"), LocalIP: addr("203.0.113.9"),
		StateChange: true, OldState: 5, NewState: 6,
	}
	if err := w.WriteBGP4MP(state); err != nil {
		t.Fatalf("WriteBGP4MP(state): %v", err)
	}

	recs := readAll(t, bytes.NewReader(buf.Bytes()))
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}

	got := recs[0].PeerIndex
	if got == nil {
		t.Fatalf("record 0: no peer index")
	}
	if got.CollectorID != pi.CollectorID || got.ViewName != pi.ViewName || len(got.Peers) != 2 {
		t.Fatalf("peer index = %+v, want %+v", got, pi)
	}
	for i, p := range got.Peers {
		if p != pi.Peers[i] {
			t.Fatalf("peer %d = %+v, want %+v", i, p, pi.Peers[i])
		}
	}

	for i, want := range ribs {
		rib := recs[1+i].RIB
		if rib == nil {
			t.Fatalf("record %d: no RIB payload", 1+i)
		}
		if rib.Seq != uint32(i) {
			t.Errorf("rib %d: seq = %d, want %d", i, rib.Seq, i)
		}
		if rib.Prefix != want.prefix {
			t.Errorf("rib %d: prefix = %v, want %v", i, rib.Prefix, want.prefix)
		}
		if len(rib.Entries) != len(want.entries) {
			t.Fatalf("rib %d: %d entries, want %d", i, len(rib.Entries), len(want.entries))
		}
		for j, e := range rib.Entries {
			we := want.entries[j]
			if e.PeerIndex != we.PeerIndex || e.OriginatedAt != we.OriginatedAt || e.PathID != we.PathID {
				t.Errorf("rib %d entry %d = %+v, want %+v", i, j, e, we)
			}
			if !e.Attrs.Equal(we.Attrs) {
				t.Errorf("rib %d entry %d attrs = %v, want %v", i, j, e.Attrs, we.Attrs)
			}
		}
	}
	if rib := recs[3].RIB; !rib.AddPath {
		t.Errorf("record 3: AddPath = false, want true (entries carry path ids)")
	}

	m := recs[4].BGP4MP
	if m == nil || m.StateChange {
		t.Fatalf("record 4 = %+v, want a BGP4MP message", recs[4])
	}
	if m.PeerAS != msg.PeerAS || m.PeerIP != msg.PeerIP || !m.AS4 {
		t.Errorf("BGP4MP envelope = %+v, want %+v", m, msg)
	}
	upd, ok := m.Message.(*bgp.Update)
	if !ok {
		t.Fatalf("BGP4MP message = %T, want *bgp.Update", m.Message)
	}
	if !upd.Attrs.Equal(msg.Message.(*bgp.Update).Attrs) || len(upd.NLRI) != 1 || upd.NLRI[0] != pfx("203.0.113.0/24") {
		t.Errorf("BGP4MP update = %v, want %v", upd, msg.Message)
	}

	s := recs[5].BGP4MP
	if s == nil || !s.StateChange {
		t.Fatalf("record 5 = %+v, want a state change", recs[5])
	}
	if s.OldState != 5 || s.NewState != 6 || s.AS4 {
		t.Errorf("state change = %+v, want 5->6 2-octet", s)
	}
}

// Gzip-compressed dumps (how RIS publishes them) must decode
// identically to plain ones.
func TestReaderGzip(t *testing.T) {
	var plain bytes.Buffer
	w := NewWriter(&plain)
	if err := w.WritePeerIndex(testPeerIndex()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(pfx("10.0.0.0/8"), []RIBEntry{{Attrs: testAttrs(0)}}); err != nil {
		t.Fatal(err)
	}

	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	recs := readAll(t, &zipped)
	if len(recs) != 2 || recs[1].RIB == nil || recs[1].RIB.Prefix != pfx("10.0.0.0/8") {
		t.Fatalf("gzip decode: got %d records (%+v)", len(recs), recs)
	}
}

// An interner-equipped reader canonicalizes repeated attribute sets to
// one pointer — the property the feed loader's template dedup builds on.
func TestReaderInterning(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndex(testPeerIndex()); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"10.0.0.0/8", "10.1.0.0/16", "10.2.0.0/16"} {
		if err := w.WriteRIB(pfx(p), []RIBEntry{{Attrs: testAttrs(0)}}); err != nil {
			t.Fatal(err)
		}
	}

	rd := NewReader(bytes.NewReader(buf.Bytes()))
	in := bgp.NewInterner()
	rd.SetInterner(in)
	var attrs []*bgp.Attrs
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.RIB != nil {
			attrs = append(attrs, rec.RIB.Entries[0].Attrs)
		}
	}
	if len(attrs) != 3 {
		t.Fatalf("got %d RIB entries, want 3", len(attrs))
	}
	if attrs[0] != attrs[1] || attrs[1] != attrs[2] {
		t.Errorf("identical attribute sets not interned to one pointer")
	}
	if in.Len() != 1 {
		t.Errorf("interner holds %d sets, want 1", in.Len())
	}
}

// Writing is deterministic: the same inputs yield the same bytes, which
// is what makes committed fixtures regenerable.
func TestWriterDeterministic(t *testing.T) {
	gen := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WritePeerIndex(testPeerIndex()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16)
			if err := w.WriteRIB(p, []RIBEntry{{Attrs: testAttrs(uint32(i))}}); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	if !bytes.Equal(gen(), gen()) {
		t.Fatal("two identical write sequences produced different bytes")
	}
}

// Unsupported record types surface header-only so callers can count and
// skip them, and decoding continues with the next record.
func TestReaderSkipsUnsupported(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// An OSPFv2 record (type 11), hand-authored: the reader should not
	// interpret the body.
	if err := w.writeRecord(11, 0, []byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePeerIndex(testPeerIndex()); err != nil {
		t.Fatal(err)
	}

	recs := readAll(t, bytes.NewReader(buf.Bytes()))
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	r0 := recs[0]
	if r0.PeerIndex != nil || r0.RIB != nil || r0.BGP4MP != nil {
		t.Errorf("unsupported record decoded a payload: %+v", r0)
	}
	if r0.Header.Type != 11 || r0.Header.Length != 4 {
		t.Errorf("header = %+v, want type 11 length 4", r0.Header)
	}
	if recs[1].PeerIndex == nil {
		t.Errorf("decoding did not continue past the unsupported record")
	}
}
