package openflow

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"supercharged/internal/clock"
	"supercharged/internal/netem"
	"supercharged/internal/packet"
)

// rig builds a controller connected to an emulated switch with two ports
// over a net.Pipe control channel and real-clock links.
type rig struct {
	ctrl   *Controller
	sw     *Switch
	swConn *SwitchConn
	// hostA/hostB are the far ends of the switch's two data-plane links.
	hostA, hostB *netem.Port
}

func newRig(t *testing.T, cfg ControllerConfig, puntOnMiss bool) *rig {
	t.Helper()
	linkA := netem.NewLink(clock.Real{}, "hostA", "sw:1", 0)
	linkB := netem.NewLink(clock.Real{}, "hostB", "sw:2", 0)
	hostA, swPort1 := linkA.Ports()
	hostB, swPort2 := linkB.Ports()

	ctrl := NewController(cfg)
	dial := func() (net.Conn, error) {
		a, b := net.Pipe()
		go ctrl.HandleConn(b)
		return a, nil
	}
	sw := NewSwitch(SwitchConfig{
		DPID:           0x53,
		Ports:          map[uint16]*netem.Port{1: swPort1, 2: swPort2},
		PortNames:      map[uint16]string{1: "r1", 2: "r2"},
		Dial:           dial,
		InstallLatency: time.Millisecond,
		PuntOnMiss:     puntOnMiss,
		Clock:          clock.Real{},
	})
	sw.Start()
	t.Cleanup(func() {
		sw.Stop()
		ctrl.Close()
	})
	swConn, err := ctrl.WaitSwitch(0x53, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{ctrl: ctrl, sw: sw, swConn: swConn, hostA: hostA, hostB: hostB}
}

func testFrame(dst packet.MAC) []byte {
	buf := packet.NewBuffer()
	f, err := packet.UDPFrame(buf, packet.MustParseMAC("00:ff:00:00:00:09"), dst,
		netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("1.0.0.1"), 5000, 9, []byte("probe"))
	if err != nil {
		panic(err)
	}
	return append([]byte(nil), f...)
}

func TestHandshakeReportsPorts(t *testing.T) {
	r := newRig(t, ControllerConfig{}, false)
	if r.swConn.DPID() != 0x53 {
		t.Fatalf("dpid %#x", r.swConn.DPID())
	}
	ports := r.swConn.Ports()
	if len(ports) != 2 {
		t.Fatalf("ports %d", len(ports))
	}
}

func TestFlowModInstallsAndForwards(t *testing.T) {
	r := newRig(t, ControllerConfig{}, false)
	// The supercharger's rule: VMAC -> rewrite to R2's MAC, out port 2.
	err := r.swConn.FlowMod(&FlowMod{
		Match: MatchDLDst(vmac), Command: FlowAdd, Priority: 100,
		BufferID: BufferNone, OutPort: PortNone,
		Actions: []Action{ActionSetDLDst(r2mac), ActionOutput(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.swConn.Barrier(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	rx := r.hostB.Recv()
	if !r.hostA.Send(testFrame(vmac)) {
		t.Fatal("send failed")
	}
	select {
	case frame := <-rx:
		var eth packet.Ethernet
		if err := eth.DecodeFromBytes(frame); err != nil {
			t.Fatal(err)
		}
		if eth.Dst != r2mac {
			t.Fatalf("dst %s not rewritten", eth.Dst)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame not forwarded")
	}
}

func TestFlowModifyRedirectsTraffic(t *testing.T) {
	// Listing 2's convergence action: modify the same match to the backup.
	r := newRig(t, ControllerConfig{}, false)
	add := &FlowMod{Match: MatchDLDst(vmac), Command: FlowAdd, Priority: 100,
		BufferID: BufferNone, OutPort: PortNone,
		Actions: []Action{ActionSetDLDst(r2mac), ActionOutput(1)}}
	if err := r.swConn.FlowMod(add); err != nil {
		t.Fatal(err)
	}
	mod := &FlowMod{Match: MatchDLDst(vmac), Command: FlowModifyStrict, Priority: 100,
		BufferID: BufferNone, OutPort: PortNone,
		Actions: []Action{ActionSetDLDst(r2mac), ActionOutput(2)}}
	if err := r.swConn.FlowMod(mod); err != nil {
		t.Fatal(err)
	}
	if err := r.swConn.Barrier(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := r.sw.Table().Len(); n != 1 {
		t.Fatalf("table has %d flows, want 1", n)
	}
	rx := r.hostB.Recv()
	r.hostA.Send(testFrame(vmac))
	select {
	case <-rx:
	case <-time.After(5 * time.Second):
		t.Fatal("modified flow did not redirect")
	}
}

func TestFlowDelete(t *testing.T) {
	r := newRig(t, ControllerConfig{}, false)
	add := &FlowMod{Match: MatchDLDst(vmac), Command: FlowAdd, Priority: 100,
		BufferID: BufferNone, OutPort: PortNone, Actions: []Action{ActionOutput(2)}}
	if err := r.swConn.FlowMod(add); err != nil {
		t.Fatal(err)
	}
	del := &FlowMod{Match: MatchDLDst(vmac), Command: FlowDeleteStrict, Priority: 100,
		BufferID: BufferNone, OutPort: PortNone}
	if err := r.swConn.FlowMod(del); err != nil {
		t.Fatal(err)
	}
	if err := r.swConn.Barrier(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := r.sw.Table().Len(); n != 0 {
		t.Fatalf("table has %d flows after delete", n)
	}
}

func TestPacketInOnMissAndPacketOut(t *testing.T) {
	// The ARP path: a miss punts to the controller, which injects a reply
	// with PACKET_OUT.
	piCh := make(chan *PacketIn, 1)
	var cfg ControllerConfig
	cfg.OnPacketIn = func(sw *SwitchConn, pi *PacketIn) {
		select {
		case piCh <- pi:
		default:
		}
	}
	r := newRig(t, cfg, true)

	frame := testFrame(vmac) // no flows installed: miss
	r.hostA.Send(frame)
	var pi *PacketIn
	select {
	case pi = <-piCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no PACKET_IN on miss")
	}
	if pi.InPort != 1 || pi.Reason != PacketInReasonNoMatch {
		t.Fatalf("packet-in %+v", pi)
	}

	rx := r.hostA.Recv()
	err := r.swConn.PacketOut(&PacketOut{
		BufferID: BufferNone, InPort: PortNone,
		Actions: []Action{ActionSetDLDst(r2mac), ActionOutput(1)},
		Data:    pi.Data,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-rx:
		var eth packet.Ethernet
		if err := eth.DecodeFromBytes(out); err != nil {
			t.Fatal(err)
		}
		if eth.Dst != r2mac {
			t.Fatalf("packet-out rewrite lost: %s", eth.Dst)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("packet-out not delivered")
	}
}

func TestPortStatusOnLinkFailure(t *testing.T) {
	psCh := make(chan *PortStatus, 4)
	var cfg ControllerConfig
	cfg.OnPortStatus = func(sw *SwitchConn, ps *PortStatus) { psCh <- ps }
	r := newRig(t, cfg, false)

	r.hostB.Link().Fail()
	select {
	case ps := <-psCh:
		if ps.Desc.PortNo != 2 || ps.Desc.State&PortStateLinkDown == 0 {
			t.Fatalf("port-status %+v", ps)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no PORT_STATUS after link failure")
	}
}

func TestBarrierOrdersAfterInstalls(t *testing.T) {
	r := newRig(t, ControllerConfig{}, false)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		mac := packet.MAC{0x02, 0x53, 0x43, 0, 0, byte(i)}
		fm := &FlowMod{Match: MatchDLDst(mac), Command: FlowAdd, Priority: 10,
			BufferID: BufferNone, OutPort: PortNone, Actions: []Action{ActionOutput(2)}}
		if err := r.swConn.FlowMod(fm); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := r.swConn.Barrier(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := r.sw.Table().Len(); n != 16 {
		t.Fatalf("barrier returned before installs: %d/16 flows", n)
	}
}

func TestEchoKeepsConnectionAlive(t *testing.T) {
	r := newRig(t, ControllerConfig{}, false)
	// Drive an echo from the controller side manually.
	if err := r.swConn.write(&EchoRequest{Data: []byte("hb")}, 999); err != nil {
		t.Fatal(err)
	}
	// The reply is consumed by the controller read loop; verify the
	// connection stays usable afterwards.
	if err := r.swConn.Barrier(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchKeepsForwardingWithoutController(t *testing.T) {
	// Fail-standalone: data plane keeps working when the control channel
	// dies — required for the paper's reliability story (§3).
	r := newRig(t, ControllerConfig{}, false)
	err := r.swConn.FlowMod(&FlowMod{
		Match: MatchDLDst(vmac), Command: FlowAdd, Priority: 100,
		BufferID: BufferNone, OutPort: PortNone,
		Actions: []Action{ActionOutput(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.swConn.Barrier(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	r.ctrl.Close() // controller gone
	time.Sleep(50 * time.Millisecond)
	rx := r.hostB.Recv()
	r.hostA.Send(testFrame(vmac))
	select {
	case <-rx:
	case <-time.After(5 * time.Second):
		t.Fatal("switch stopped forwarding without controller")
	}
}
