// Package openflow implements the OpenFlow 1.0 subset the supercharger
// needs — the protocol the paper drives its HP E3800 switch with via
// Floodlight: HELLO/ECHO/ERROR, the features handshake, FLOW_MOD with
// matches and actions (OUTPUT, SET_DL_SRC/DST), PACKET_IN/PACKET_OUT for
// the ARP interception path, BARRIER for install synchronization, and
// PORT_STATUS. It also provides a Controller (TCP server side) and an
// emulated Switch datapath backed by dataplane.FlowTable and netem ports.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"supercharged/internal/packet"
)

// Wire protocol version (OpenFlow 1.0).
const Version = 0x01

// MsgType is an OpenFlow message type.
type MsgType uint8

// OpenFlow 1.0 message types.
const (
	TypeHello           MsgType = 0
	TypeError           MsgType = 1
	TypeEchoRequest     MsgType = 2
	TypeEchoReply       MsgType = 3
	TypeVendor          MsgType = 4
	TypeFeaturesRequest MsgType = 5
	TypeFeaturesReply   MsgType = 6
	TypePacketIn        MsgType = 10
	TypeFlowRemoved     MsgType = 11
	TypePortStatus      MsgType = 12
	TypePacketOut       MsgType = 13
	TypeFlowMod         MsgType = 14
	TypeBarrierRequest  MsgType = 18
	TypeBarrierReply    MsgType = 19
)

func (t MsgType) String() string {
	names := map[MsgType]string{
		TypeHello: "HELLO", TypeError: "ERROR", TypeEchoRequest: "ECHO_REQUEST",
		TypeEchoReply: "ECHO_REPLY", TypeVendor: "VENDOR",
		TypeFeaturesRequest: "FEATURES_REQUEST", TypeFeaturesReply: "FEATURES_REPLY",
		TypePacketIn: "PACKET_IN", TypeFlowRemoved: "FLOW_REMOVED",
		TypePortStatus: "PORT_STATUS", TypePacketOut: "PACKET_OUT",
		TypeFlowMod: "FLOW_MOD", TypeBarrierRequest: "BARRIER_REQUEST",
		TypeBarrierReply: "BARRIER_REPLY",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("TYPE(%d)", uint8(t))
}

// HeaderLen is the OpenFlow header length.
const HeaderLen = 8

// MaxMsgLen bounds accepted messages (sanity limit, the spec allows 64 KiB).
const MaxMsgLen = 1 << 16

// Codec errors.
var (
	ErrTruncated  = errors.New("openflow: truncated message")
	ErrBadVersion = errors.New("openflow: unsupported version")
	ErrBadMessage = errors.New("openflow: malformed message")
)

// Message is any OpenFlow message.
type Message interface {
	MsgType() MsgType
	// body marshals everything after the header.
	body() ([]byte, error)
}

// Marshal encodes msg with the given transaction id.
func Marshal(msg Message, xid uint32) ([]byte, error) {
	b, err := msg.body()
	if err != nil {
		return nil, err
	}
	out := make([]byte, HeaderLen+len(b))
	out[0] = Version
	out[1] = byte(msg.MsgType())
	binary.BigEndian.PutUint16(out[2:4], uint16(len(out)))
	binary.BigEndian.PutUint32(out[4:8], xid)
	copy(out[HeaderLen:], b)
	return out, nil
}

// Unmarshal decodes one complete message, returning it with its xid.
func Unmarshal(buf []byte) (Message, uint32, error) {
	if len(buf) < HeaderLen {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(buf))
	}
	if buf[0] != Version {
		return nil, 0, fmt.Errorf("%w: %#x", ErrBadVersion, buf[0])
	}
	length := int(binary.BigEndian.Uint16(buf[2:4]))
	if length != len(buf) || length < HeaderLen {
		return nil, 0, fmt.Errorf("%w: header length %d, buffer %d", ErrTruncated, length, len(buf))
	}
	xid := binary.BigEndian.Uint32(buf[4:8])
	body := buf[HeaderLen:]
	var (
		msg Message
		err error
	)
	switch MsgType(buf[1]) {
	case TypeHello:
		msg = &Hello{}
	case TypeError:
		msg, err = parseError(body)
	case TypeEchoRequest:
		msg = &EchoRequest{Data: append([]byte(nil), body...)}
	case TypeEchoReply:
		msg = &EchoReply{Data: append([]byte(nil), body...)}
	case TypeFeaturesRequest:
		msg = &FeaturesRequest{}
	case TypeFeaturesReply:
		msg, err = parseFeaturesReply(body)
	case TypePacketIn:
		msg, err = parsePacketIn(body)
	case TypePortStatus:
		msg, err = parsePortStatus(body)
	case TypePacketOut:
		msg, err = parsePacketOut(body)
	case TypeFlowMod:
		msg, err = parseFlowMod(body)
	case TypeBarrierRequest:
		msg = &BarrierRequest{}
	case TypeBarrierReply:
		msg = &BarrierReply{}
	default:
		return nil, 0, fmt.Errorf("%w: unsupported type %d", ErrBadMessage, buf[1])
	}
	if err != nil {
		return nil, 0, err
	}
	return msg, xid, nil
}

// ReadMessage reads exactly one message from r.
func ReadMessage(r io.Reader) (Message, uint32, error) {
	hdr := make([]byte, HeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < HeaderLen || length > MaxMsgLen {
		return nil, 0, fmt.Errorf("%w: length %d", ErrTruncated, length)
	}
	buf := make([]byte, length)
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		return nil, 0, err
	}
	return Unmarshal(buf)
}

// WriteMessage marshals and writes one message.
func WriteMessage(w io.Writer, msg Message, xid uint32) error {
	buf, err := Marshal(msg, xid)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Hello is OFPT_HELLO.
type Hello struct{}

func (*Hello) MsgType() MsgType      { return TypeHello }
func (*Hello) body() ([]byte, error) { return nil, nil }

// EchoRequest is OFPT_ECHO_REQUEST.
type EchoRequest struct{ Data []byte }

func (*EchoRequest) MsgType() MsgType        { return TypeEchoRequest }
func (m *EchoRequest) body() ([]byte, error) { return m.Data, nil }

// EchoReply is OFPT_ECHO_REPLY.
type EchoReply struct{ Data []byte }

func (*EchoReply) MsgType() MsgType        { return TypeEchoReply }
func (m *EchoReply) body() ([]byte, error) { return m.Data, nil }

// Error types (subset).
const (
	ErrTypeHelloFailed   uint16 = 0
	ErrTypeBadRequest    uint16 = 1
	ErrTypeBadAction     uint16 = 2
	ErrTypeFlowModFailed uint16 = 3
)

// ErrorMsg is OFPT_ERROR.
type ErrorMsg struct {
	ErrType uint16
	Code    uint16
	Data    []byte
}

func (*ErrorMsg) MsgType() MsgType { return TypeError }

func (m *ErrorMsg) body() ([]byte, error) {
	out := make([]byte, 4+len(m.Data))
	binary.BigEndian.PutUint16(out[0:2], m.ErrType)
	binary.BigEndian.PutUint16(out[2:4], m.Code)
	copy(out[4:], m.Data)
	return out, nil
}

func parseError(b []byte) (*ErrorMsg, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: error body", ErrTruncated)
	}
	return &ErrorMsg{
		ErrType: binary.BigEndian.Uint16(b[0:2]),
		Code:    binary.BigEndian.Uint16(b[2:4]),
		Data:    append([]byte(nil), b[4:]...),
	}, nil
}

func (m *ErrorMsg) Error() string {
	return fmt.Sprintf("openflow error type %d code %d", m.ErrType, m.Code)
}

// FeaturesRequest is OFPT_FEATURES_REQUEST.
type FeaturesRequest struct{}

func (*FeaturesRequest) MsgType() MsgType      { return TypeFeaturesRequest }
func (*FeaturesRequest) body() ([]byte, error) { return nil, nil }

// PhyPort describes one switch port (ofp_phy_port, 48 bytes).
type PhyPort struct {
	PortNo uint16
	HWAddr packet.MAC
	Name   string // ≤ 15 bytes
	Config uint32
	State  uint32
}

const phyPortLen = 48

// Port state bit: link down.
const PortStateLinkDown uint32 = 1 << 0

func (p *PhyPort) marshal() []byte {
	out := make([]byte, phyPortLen)
	binary.BigEndian.PutUint16(out[0:2], p.PortNo)
	copy(out[2:8], p.HWAddr[:])
	copy(out[8:24], p.Name)
	binary.BigEndian.PutUint32(out[24:28], p.Config)
	binary.BigEndian.PutUint32(out[28:32], p.State)
	// curr/advertised/supported/peer features left zero.
	return out
}

func parsePhyPort(b []byte) (PhyPort, error) {
	if len(b) < phyPortLen {
		return PhyPort{}, fmt.Errorf("%w: phy port", ErrTruncated)
	}
	var p PhyPort
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(p.HWAddr[:], b[2:8])
	name := b[8:24]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	p.Name = string(name)
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	return p, nil
}

// FeaturesReply is OFPT_FEATURES_REPLY.
type FeaturesReply struct {
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PhyPort
}

func (*FeaturesReply) MsgType() MsgType { return TypeFeaturesReply }

func (m *FeaturesReply) body() ([]byte, error) {
	out := make([]byte, 24, 24+len(m.Ports)*phyPortLen)
	binary.BigEndian.PutUint64(out[0:8], m.DatapathID)
	binary.BigEndian.PutUint32(out[8:12], m.NBuffers)
	out[12] = m.NTables
	binary.BigEndian.PutUint32(out[16:20], m.Capabilities)
	binary.BigEndian.PutUint32(out[20:24], m.Actions)
	for i := range m.Ports {
		out = append(out, m.Ports[i].marshal()...)
	}
	return out, nil
}

func parseFeaturesReply(b []byte) (*FeaturesReply, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("%w: features reply", ErrTruncated)
	}
	m := &FeaturesReply{
		DatapathID:   binary.BigEndian.Uint64(b[0:8]),
		NBuffers:     binary.BigEndian.Uint32(b[8:12]),
		NTables:      b[12],
		Capabilities: binary.BigEndian.Uint32(b[16:20]),
		Actions:      binary.BigEndian.Uint32(b[20:24]),
	}
	rest := b[24:]
	if len(rest)%phyPortLen != 0 {
		return nil, fmt.Errorf("%w: features reply port list", ErrBadMessage)
	}
	for len(rest) > 0 {
		p, err := parsePhyPort(rest)
		if err != nil {
			return nil, err
		}
		m.Ports = append(m.Ports, p)
		rest = rest[phyPortLen:]
	}
	return m, nil
}

// PacketIn reasons.
const (
	PacketInReasonNoMatch uint8 = 0
	PacketInReasonAction  uint8 = 1
)

// BufferNone means the full frame is carried in the message.
const BufferNone uint32 = 0xffffffff

// PacketIn is OFPT_PACKET_IN.
type PacketIn struct {
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

func (*PacketIn) MsgType() MsgType { return TypePacketIn }

func (m *PacketIn) body() ([]byte, error) {
	out := make([]byte, 10+len(m.Data))
	binary.BigEndian.PutUint32(out[0:4], m.BufferID)
	binary.BigEndian.PutUint16(out[4:6], m.TotalLen)
	binary.BigEndian.PutUint16(out[6:8], m.InPort)
	out[8] = m.Reason
	copy(out[10:], m.Data)
	return out, nil
}

func parsePacketIn(b []byte) (*PacketIn, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("%w: packet-in", ErrTruncated)
	}
	return &PacketIn{
		BufferID: binary.BigEndian.Uint32(b[0:4]),
		TotalLen: binary.BigEndian.Uint16(b[4:6]),
		InPort:   binary.BigEndian.Uint16(b[6:8]),
		Reason:   b[8],
		Data:     append([]byte(nil), b[10:]...),
	}, nil
}

// PortNone is the "no port" value for FlowMod.OutPort filters.
const PortNone uint16 = 0xffff

// PacketOut is OFPT_PACKET_OUT.
type PacketOut struct {
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

func (*PacketOut) MsgType() MsgType { return TypePacketOut }

func (m *PacketOut) body() ([]byte, error) {
	acts, err := marshalActions(m.Actions)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8, 8+len(acts)+len(m.Data))
	binary.BigEndian.PutUint32(out[0:4], m.BufferID)
	binary.BigEndian.PutUint16(out[4:6], m.InPort)
	binary.BigEndian.PutUint16(out[6:8], uint16(len(acts)))
	out = append(out, acts...)
	out = append(out, m.Data...)
	return out, nil
}

func parsePacketOut(b []byte) (*PacketOut, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: packet-out", ErrTruncated)
	}
	actLen := int(binary.BigEndian.Uint16(b[6:8]))
	if len(b) < 8+actLen {
		return nil, fmt.Errorf("%w: packet-out actions", ErrTruncated)
	}
	actions, err := parseActions(b[8 : 8+actLen])
	if err != nil {
		return nil, err
	}
	return &PacketOut{
		BufferID: binary.BigEndian.Uint32(b[0:4]),
		InPort:   binary.BigEndian.Uint16(b[4:6]),
		Actions:  actions,
		Data:     append([]byte(nil), b[8+actLen:]...),
	}, nil
}

// FlowMod commands.
const (
	FlowAdd          uint16 = 0
	FlowModify       uint16 = 1
	FlowModifyStrict uint16 = 2
	FlowDelete       uint16 = 3
	FlowDeleteStrict uint16 = 4
)

// FlowMod is OFPT_FLOW_MOD.
type FlowMod struct {
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

func (*FlowMod) MsgType() MsgType { return TypeFlowMod }

func (m *FlowMod) body() ([]byte, error) {
	acts, err := marshalActions(m.Actions)
	if err != nil {
		return nil, err
	}
	out := make([]byte, matchLen+24, matchLen+24+len(acts))
	m.Match.marshalTo(out[:matchLen])
	p := out[matchLen:]
	binary.BigEndian.PutUint64(p[0:8], m.Cookie)
	binary.BigEndian.PutUint16(p[8:10], m.Command)
	binary.BigEndian.PutUint16(p[10:12], m.IdleTimeout)
	binary.BigEndian.PutUint16(p[12:14], m.HardTimeout)
	binary.BigEndian.PutUint16(p[14:16], m.Priority)
	binary.BigEndian.PutUint32(p[16:20], m.BufferID)
	binary.BigEndian.PutUint16(p[20:22], m.OutPort)
	binary.BigEndian.PutUint16(p[22:24], m.Flags)
	out = append(out, acts...)
	return out, nil
}

func parseFlowMod(b []byte) (*FlowMod, error) {
	if len(b) < matchLen+24 {
		return nil, fmt.Errorf("%w: flow-mod", ErrTruncated)
	}
	var m FlowMod
	if err := m.Match.unmarshal(b[:matchLen]); err != nil {
		return nil, err
	}
	p := b[matchLen:]
	m.Cookie = binary.BigEndian.Uint64(p[0:8])
	m.Command = binary.BigEndian.Uint16(p[8:10])
	m.IdleTimeout = binary.BigEndian.Uint16(p[10:12])
	m.HardTimeout = binary.BigEndian.Uint16(p[12:14])
	m.Priority = binary.BigEndian.Uint16(p[14:16])
	m.BufferID = binary.BigEndian.Uint32(p[16:20])
	m.OutPort = binary.BigEndian.Uint16(p[20:22])
	m.Flags = binary.BigEndian.Uint16(p[22:24])
	actions, err := parseActions(p[24:])
	if err != nil {
		return nil, err
	}
	m.Actions = actions
	return &m, nil
}

// PortStatus reasons.
const (
	PortReasonAdd    uint8 = 0
	PortReasonDelete uint8 = 1
	PortReasonModify uint8 = 2
)

// PortStatus is OFPT_PORT_STATUS.
type PortStatus struct {
	Reason uint8
	Desc   PhyPort
}

func (*PortStatus) MsgType() MsgType { return TypePortStatus }

func (m *PortStatus) body() ([]byte, error) {
	out := make([]byte, 8+phyPortLen)
	out[0] = m.Reason
	copy(out[8:], m.Desc.marshal())
	return out, nil
}

func parsePortStatus(b []byte) (*PortStatus, error) {
	if len(b) < 8+phyPortLen {
		return nil, fmt.Errorf("%w: port-status", ErrTruncated)
	}
	desc, err := parsePhyPort(b[8:])
	if err != nil {
		return nil, err
	}
	return &PortStatus{Reason: b[0], Desc: desc}, nil
}

// BarrierRequest is OFPT_BARRIER_REQUEST.
type BarrierRequest struct{}

func (*BarrierRequest) MsgType() MsgType      { return TypeBarrierRequest }
func (*BarrierRequest) body() ([]byte, error) { return nil, nil }

// BarrierReply is OFPT_BARRIER_REPLY.
type BarrierReply struct{}

func (*BarrierReply) MsgType() MsgType      { return TypeBarrierReply }
func (*BarrierReply) body() ([]byte, error) { return nil, nil }
