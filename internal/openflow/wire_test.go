package openflow

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"supercharged/internal/packet"
)

var (
	vmac  = packet.MustParseMAC("02:53:43:00:00:01")
	r2mac = packet.MustParseMAC("01:aa:00:00:00:01")
)

func roundTrip(t *testing.T, msg Message, xid uint32) Message {
	t.Helper()
	buf, err := Marshal(msg, xid)
	if err != nil {
		t.Fatalf("marshal %s: %v", msg.MsgType(), err)
	}
	out, gotXID, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", msg.MsgType(), err)
	}
	if gotXID != xid {
		t.Fatalf("xid %d, want %d", gotXID, xid)
	}
	if out.MsgType() != msg.MsgType() {
		t.Fatalf("type %s, want %s", out.MsgType(), msg.MsgType())
	}
	return out
}

func TestHelloEchoBarrierRoundTrip(t *testing.T) {
	roundTrip(t, &Hello{}, 1)
	roundTrip(t, &BarrierRequest{}, 2)
	roundTrip(t, &BarrierReply{}, 3)
	echo := roundTrip(t, &EchoRequest{Data: []byte("ping")}, 4).(*EchoRequest)
	if string(echo.Data) != "ping" {
		t.Fatal("echo data lost")
	}
	reply := roundTrip(t, &EchoReply{Data: []byte("pong")}, 5).(*EchoReply)
	if string(reply.Data) != "pong" {
		t.Fatal("echo reply data lost")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := roundTrip(t, &ErrorMsg{ErrType: ErrTypeFlowModFailed, Code: 2, Data: []byte{9}}, 7).(*ErrorMsg)
	if e.ErrType != ErrTypeFlowModFailed || e.Code != 2 || !bytes.Equal(e.Data, []byte{9}) {
		t.Fatalf("error %+v", e)
	}
	if e.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestFeaturesReplyRoundTrip(t *testing.T) {
	in := &FeaturesReply{
		DatapathID: 0xabcdef, NBuffers: 256, NTables: 2, Capabilities: 0x1, Actions: 0xfff,
		Ports: []PhyPort{
			{PortNo: 1, HWAddr: r2mac, Name: "r1"},
			{PortNo: 2, Name: "r2", State: PortStateLinkDown},
		},
	}
	out := roundTrip(t, in, 9).(*FeaturesReply)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("features mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestPacketInOutRoundTrip(t *testing.T) {
	pi := roundTrip(t, &PacketIn{BufferID: BufferNone, TotalLen: 64, InPort: 3,
		Reason: PacketInReasonNoMatch, Data: []byte{1, 2, 3}}, 11).(*PacketIn)
	if pi.InPort != 3 || pi.BufferID != BufferNone || !bytes.Equal(pi.Data, []byte{1, 2, 3}) {
		t.Fatalf("packet-in %+v", pi)
	}
	po := roundTrip(t, &PacketOut{BufferID: BufferNone, InPort: PortNone,
		Actions: []Action{ActionSetDLDst(r2mac), ActionOutput(2)},
		Data:    []byte{4, 5, 6}}, 12).(*PacketOut)
	if len(po.Actions) != 2 || po.Actions[0].MAC != r2mac || po.Actions[1].Port != 2 {
		t.Fatalf("packet-out %+v", po)
	}
	if !bytes.Equal(po.Data, []byte{4, 5, 6}) {
		t.Fatal("packet-out data lost")
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	in := &FlowMod{
		Match:  MatchDLDst(vmac),
		Cookie: 0x5343, Command: FlowModify, Priority: 100,
		BufferID: BufferNone, OutPort: PortNone,
		Actions: []Action{ActionSetDLDst(r2mac), ActionOutput(1)},
	}
	out := roundTrip(t, in, 20).(*FlowMod)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("flow-mod mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	in := &PortStatus{Reason: PortReasonModify, Desc: PhyPort{PortNo: 2, State: PortStateLinkDown, Name: "uplink"}}
	out := roundTrip(t, in, 30).(*PortStatus)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("port-status mismatch: %+v", out)
	}
}

func TestMatchConversionAndString(t *testing.T) {
	m := MatchDLDst(vmac)
	dp := m.ToDataplane()
	if dp.DstMAC == nil || *dp.DstMAC != vmac || dp.InPort != nil || dp.EtherType != nil {
		t.Fatalf("conversion %+v", dp)
	}
	if m.String() != "dl_dst=02:53:43:00:00:01" {
		t.Fatalf("string %q", m.String())
	}
	if MatchAll().String() != "any" {
		t.Fatal("match-all string")
	}
	full := MatchAll()
	full.Wildcards &^= WildcardInPort | WildcardDLType | WildcardDLSrc
	full.InPort = 7
	full.DLType = packet.EtherTypeARP
	full.DLSrc = r2mac
	dp = full.ToDataplane()
	if dp.InPort == nil || *dp.InPort != 7 || dp.EtherType == nil || *dp.EtherType != packet.EtherTypeARP || dp.SrcMAC == nil {
		t.Fatalf("full conversion %+v", dp)
	}
}

func TestActionConversion(t *testing.T) {
	for _, a := range []Action{ActionOutput(3), ActionSetDLDst(vmac), ActionSetDLSrc(r2mac)} {
		if _, err := a.ToDataplane(); err != nil {
			t.Fatalf("convert %v: %v", a, err)
		}
	}
	if _, err := (Action{Type: 99}).ToDataplane(); err == nil {
		t.Fatal("unknown action converted")
	}
}

func TestUnsupportedVersionRejected(t *testing.T) {
	buf, _ := Marshal(&Hello{}, 1)
	buf[0] = 0x04 // OpenFlow 1.3
	if _, _, err := Unmarshal(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedRejected(t *testing.T) {
	buf, _ := Marshal(&FlowMod{Match: MatchAll(), BufferID: BufferNone, OutPort: PortNone}, 1)
	if _, _, err := Unmarshal(buf[:HeaderLen+10]); err == nil {
		t.Fatal("truncated flow-mod accepted")
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var stream bytes.Buffer
	msgs := []Message{&Hello{}, &FeaturesRequest{}, &BarrierRequest{}}
	for i, m := range msgs {
		if err := WriteMessage(&stream, m, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, xid, err := ReadMessage(&stream)
		if err != nil {
			t.Fatal(err)
		}
		if got.MsgType() != want.MsgType() || xid != uint32(i) {
			t.Fatalf("msg %d: %s/%d", i, got.MsgType(), xid)
		}
	}
}

// Property: Unmarshal never panics on framed random bytes.
func TestUnmarshalNeverPanicsQuick(t *testing.T) {
	f := func(body []byte, msgType uint8) bool {
		if len(body) > 2048 {
			body = body[:2048]
		}
		buf := make([]byte, HeaderLen+len(body))
		buf[0] = Version
		buf[1] = msgType % 20
		buf[2] = byte(len(buf) >> 8)
		buf[3] = byte(len(buf))
		copy(buf[HeaderLen:], body)
		_, _, _ = Unmarshal(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeFlowMod.String() != "FLOW_MOD" || MsgType(77).String() != "TYPE(77)" {
		t.Fatal("type strings")
	}
}

func BenchmarkFlowModMarshal(b *testing.B) {
	fm := &FlowMod{Match: MatchDLDst(vmac), Command: FlowModify, Priority: 100,
		BufferID: BufferNone, OutPort: PortNone,
		Actions: []Action{ActionSetDLDst(r2mac), ActionOutput(1)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(fm, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
}
