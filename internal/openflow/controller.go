package openflow

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ControllerConfig configures the controller core.
type ControllerConfig struct {
	// Logf, if set, receives diagnostics.
	Logf func(format string, args ...any)
	// OnSwitch is called when a switch completes the features handshake.
	OnSwitch func(sw *SwitchConn)
	// OnSwitchGone is called when a switch connection dies.
	OnSwitchGone func(sw *SwitchConn)
	// OnPacketIn is called for every PACKET_IN (the supercharger's ARP
	// responder lives here).
	OnPacketIn func(sw *SwitchConn, pi *PacketIn)
	// OnPortStatus is called for PORT_STATUS messages.
	OnPortStatus func(sw *SwitchConn, ps *PortStatus)
}

// Controller is the OpenFlow controller core: it accepts switch
// connections, runs the version/features handshake and dispatches
// asynchronous messages. It plays Floodlight's role in the paper's
// prototype.
type Controller struct {
	cfg ControllerConfig

	mu       sync.Mutex
	switches map[uint64]*SwitchConn
	closed   bool
	listener net.Listener
	waiters  []chan struct{}

	wg sync.WaitGroup
}

// NewController returns a controller core.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Controller{cfg: cfg, switches: make(map[uint64]*SwitchConn)}
}

// Serve accepts switch connections on l until the controller is closed.
// It returns after the listener fails (normally because of Close).
func (c *Controller) Serve(l net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("openflow: controller closed")
	}
	c.listener = l
	c.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.HandleConn(conn)
		}()
	}
}

// Close stops the listener and closes all switch connections.
func (c *Controller) Close() {
	c.mu.Lock()
	c.closed = true
	l := c.listener
	sws := make([]*SwitchConn, 0, len(c.switches))
	for _, sw := range c.switches {
		sws = append(sws, sw)
	}
	c.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, sw := range sws {
		sw.conn.Close()
	}
	c.wg.Wait()
}

// Switch returns the connected switch with the given datapath id.
func (c *Controller) Switch(dpid uint64) (*SwitchConn, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.switches[dpid]
	return sw, ok
}

// Switches returns all connected switches.
func (c *Controller) Switches() []*SwitchConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*SwitchConn, 0, len(c.switches))
	for _, sw := range c.switches {
		out = append(out, sw)
	}
	return out
}

// WaitSwitch blocks until the switch with dpid connects or timeout expires.
func (c *Controller) WaitSwitch(dpid uint64, timeout time.Duration) (*SwitchConn, error) {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		if sw, ok := c.switches[dpid]; ok {
			c.mu.Unlock()
			return sw, nil
		}
		ch := make(chan struct{})
		c.waiters = append(c.waiters, ch)
		c.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("openflow: switch %#x did not connect within %v", dpid, timeout)
		}
		select {
		case <-ch:
		case <-time.After(remain):
		}
	}
}

// HandleConn runs the controller side of one switch connection; it blocks
// until the connection dies. Exposed so tests and in-process deployments
// can skip the TCP listener.
func (c *Controller) HandleConn(conn net.Conn) {
	sw, err := c.handshake(conn)
	if err != nil {
		c.cfg.Logf("openflow: handshake: %v", err)
		conn.Close()
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.switches[sw.dpid] = sw
	waiters := c.waiters
	c.waiters = nil
	c.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	c.cfg.Logf("openflow: switch %#x connected (%d ports)", sw.dpid, len(sw.ports))
	if c.cfg.OnSwitch != nil {
		c.cfg.OnSwitch(sw)
	}

	c.readLoop(sw)

	conn.Close()
	c.mu.Lock()
	if c.switches[sw.dpid] == sw {
		delete(c.switches, sw.dpid)
	}
	c.mu.Unlock()
	c.cfg.Logf("openflow: switch %#x gone", sw.dpid)
	if c.cfg.OnSwitchGone != nil {
		c.cfg.OnSwitchGone(sw)
	}
}

func (c *Controller) handshake(conn net.Conn) (*SwitchConn, error) {
	// Both sides emit HELLO on connect; send ours asynchronously so the
	// exchange cannot deadlock on unbuffered transports (net.Pipe).
	helloErr := make(chan error, 1)
	go func() { helloErr <- WriteMessage(conn, &Hello{}, 0) }()
	msg, _, err := ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("read HELLO: %w", err)
	}
	if _, ok := msg.(*Hello); !ok {
		return nil, fmt.Errorf("expected HELLO, got %s", msg.MsgType())
	}
	if err := <-helloErr; err != nil {
		return nil, fmt.Errorf("send HELLO: %w", err)
	}
	if err := WriteMessage(conn, &FeaturesRequest{}, 1); err != nil {
		return nil, fmt.Errorf("send FEATURES_REQUEST: %w", err)
	}
	for {
		msg, _, err := ReadMessage(conn)
		if err != nil {
			return nil, fmt.Errorf("read FEATURES_REPLY: %w", err)
		}
		switch m := msg.(type) {
		case *FeaturesReply:
			sw := &SwitchConn{ctrl: c, conn: conn, dpid: m.DatapathID, ports: m.Ports}
			sw.xid.Store(16)
			sw.barriers = make(map[uint32]chan struct{})
			return sw, nil
		case *EchoRequest:
			if err := WriteMessage(conn, &EchoReply{Data: m.Data}, 0); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("expected FEATURES_REPLY, got %s", msg.MsgType())
		}
	}
}

func (c *Controller) readLoop(sw *SwitchConn) {
	for {
		msg, xid, err := ReadMessage(sw.conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *EchoRequest:
			sw.write(&EchoReply{Data: m.Data}, xid)
		case *EchoReply:
			// RTT probes not tracked.
		case *PacketIn:
			if c.cfg.OnPacketIn != nil {
				c.cfg.OnPacketIn(sw, m)
			}
		case *PortStatus:
			if c.cfg.OnPortStatus != nil {
				c.cfg.OnPortStatus(sw, m)
			}
		case *BarrierReply:
			sw.completeBarrier(xid)
		case *ErrorMsg:
			c.cfg.Logf("openflow: switch %#x error: %v", sw.dpid, m)
		default:
			c.cfg.Logf("openflow: switch %#x unexpected %s", sw.dpid, msg.MsgType())
		}
	}
}

// SwitchConn is the controller's handle to one connected switch.
type SwitchConn struct {
	ctrl  *Controller
	conn  net.Conn
	dpid  uint64
	ports []PhyPort

	xid     atomic.Uint32
	writeMu sync.Mutex

	barrierMu sync.Mutex
	barriers  map[uint32]chan struct{}
}

// DPID returns the switch's datapath id.
func (sw *SwitchConn) DPID() uint64 { return sw.dpid }

// Ports returns the port descriptions from the features handshake.
func (sw *SwitchConn) Ports() []PhyPort { return append([]PhyPort(nil), sw.ports...) }

func (sw *SwitchConn) write(msg Message, xid uint32) error {
	sw.writeMu.Lock()
	defer sw.writeMu.Unlock()
	return WriteMessage(sw.conn, msg, xid)
}

func (sw *SwitchConn) nextXID() uint32 { return sw.xid.Add(1) }

// FlowMod pushes a flow modification. This is the operation on the
// convergence critical path (Listing 2's install_flow).
func (sw *SwitchConn) FlowMod(fm *FlowMod) error {
	return sw.write(fm, sw.nextXID())
}

// PacketOut injects a frame through the switch data plane (the ARP
// responder's reply path).
func (sw *SwitchConn) PacketOut(po *PacketOut) error {
	return sw.write(po, sw.nextXID())
}

// Barrier sends a BARRIER_REQUEST and waits for the reply, bounding the
// completion time of previously pushed flow-mods.
func (sw *SwitchConn) Barrier(timeout time.Duration) error {
	xid := sw.nextXID()
	ch := make(chan struct{})
	sw.barrierMu.Lock()
	sw.barriers[xid] = ch
	sw.barrierMu.Unlock()
	defer func() {
		sw.barrierMu.Lock()
		delete(sw.barriers, xid)
		sw.barrierMu.Unlock()
	}()
	if err := sw.write(&BarrierRequest{}, xid); err != nil {
		return err
	}
	select {
	case <-ch:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("openflow: barrier timeout on switch %#x", sw.dpid)
	}
}

func (sw *SwitchConn) completeBarrier(xid uint32) {
	sw.barrierMu.Lock()
	ch, ok := sw.barriers[xid]
	if ok {
		delete(sw.barriers, xid)
	}
	sw.barrierMu.Unlock()
	if ok {
		close(ch)
	}
}
