package openflow

import (
	"net"
	"sync"
	"time"

	"supercharged/internal/clock"
	"supercharged/internal/dataplane"
	"supercharged/internal/netem"
)

// SwitchConfig configures the emulated OpenFlow switch (the HP E3800's
// role in the paper's lab).
type SwitchConfig struct {
	// DPID is the datapath id reported in the features handshake.
	DPID uint64
	// Ports maps OpenFlow port numbers to emulated link endpoints.
	Ports map[uint16]*netem.Port
	// PortNames, optional, names ports in the features reply.
	PortNames map[uint16]string
	// Dial connects to the controller; nil runs the switch headless (flows
	// can still be installed directly via Table for tests).
	Dial func() (net.Conn, error)
	// RedialInterval is the controller reconnect backoff (default 1s).
	RedialInterval time.Duration
	// InstallLatency models the hardware flow-table programming time per
	// FLOW_MOD (a few ms on the paper's HP switch; part of the 150 ms
	// supercharged budget).
	InstallLatency time.Duration
	// PuntOnMiss sends table-miss frames to the controller as PACKET_IN;
	// otherwise misses are dropped (and counted by the table).
	PuntOnMiss bool
	// Clock drives install latency and reconnects.
	Clock clock.Clock
	// Logf, if set, receives diagnostics.
	Logf func(format string, args ...any)
}

// Switch is an emulated OpenFlow 1.0 datapath: netem ports feed a
// dataplane.FlowTable; a control channel to the Controller applies
// FLOW_MODs and punts PACKET_INs.
type Switch struct {
	cfg   SwitchConfig
	table *dataplane.FlowTable

	mu      sync.Mutex
	conn    net.Conn
	stopped bool
	stopCh  chan struct{}
	// installQueue serializes table programming: hardware applies
	// FLOW_MODs one at a time, each costing InstallLatency. Barrier
	// markers ride the same queue, which makes BARRIER_REPLY ordering
	// exact by construction.
	installQueue []installItem
	installBusy  bool

	wg sync.WaitGroup
}

type installItem struct {
	apply      func() // nil for a barrier marker
	barrierXID uint32
}

// NewSwitch builds the switch; Start attaches ports and connects to the
// controller.
func NewSwitch(cfg SwitchConfig) *Switch {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.RedialInterval == 0 {
		cfg.RedialInterval = time.Second
	}
	return &Switch{cfg: cfg, table: dataplane.NewFlowTable(), stopCh: make(chan struct{})}
}

// Table exposes the flow table (read-mostly: ops endpoints and tests).
func (s *Switch) Table() *dataplane.FlowTable { return s.table }

// DPID returns the datapath id.
func (s *Switch) DPID() uint64 { return s.cfg.DPID }

// Start attaches the data-plane port handlers and, if configured, connects
// to the controller. It returns immediately.
func (s *Switch) Start() {
	for no, port := range s.cfg.Ports {
		no, port := no, port
		port.Handle(func(frame []byte) { s.handleFrame(no, frame) })
		// Surface link transitions as PORT_STATUS.
		port.Link().Watch(func(up bool) { s.sendPortStatus(no, up) })
	}
	if s.cfg.Dial == nil {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			s.mu.Lock()
			stopped := s.stopped
			s.mu.Unlock()
			if stopped {
				return
			}
			conn, err := s.cfg.Dial()
			if err == nil {
				s.serve(conn)
			} else {
				s.cfg.Logf("switch %#x: dial controller: %v", s.cfg.DPID, err)
			}
			done := make(chan struct{})
			t := s.cfg.Clock.AfterFunc(s.cfg.RedialInterval, func() { close(done) })
			select {
			case <-done:
			case <-s.stopCh:
				t.Stop()
				return
			}
		}
	}()
}

// Stop closes the control channel and stops reconnecting. Data-plane
// forwarding with the installed table continues (fail-standalone), as a
// hardware switch would.
func (s *Switch) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stopCh)
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	s.wg.Wait()
}

// handleFrame runs one received frame through the flow table.
func (s *Switch) handleFrame(inPort uint16, frame []byte) {
	out, ok := s.table.Process(inPort, frame)
	if !ok {
		if s.cfg.PuntOnMiss {
			s.punt(inPort, frame)
		}
		return
	}
	s.emit(out)
}

func (s *Switch) emit(egress []dataplane.Egress) {
	for _, e := range egress {
		if port, ok := s.cfg.Ports[e.Port]; ok {
			port.Send(e.Frame)
		}
	}
}

func (s *Switch) punt(inPort uint16, frame []byte) {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn == nil {
		return
	}
	pi := &PacketIn{
		BufferID: BufferNone,
		TotalLen: uint16(len(frame)),
		InPort:   inPort,
		Reason:   PacketInReasonNoMatch,
		Data:     frame,
	}
	if err := WriteMessage(conn, pi, 0); err != nil {
		s.cfg.Logf("switch %#x: packet-in: %v", s.cfg.DPID, err)
	}
}

func (s *Switch) sendPortStatus(portNo uint16, up bool) {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn == nil {
		return
	}
	var state uint32
	if !up {
		state = PortStateLinkDown
	}
	ps := &PortStatus{Reason: PortReasonModify, Desc: PhyPort{PortNo: portNo, State: state}}
	if err := WriteMessage(conn, ps, 0); err != nil {
		s.cfg.Logf("switch %#x: port-status: %v", s.cfg.DPID, err)
	}
}

// serve runs the OpenFlow client side on one controller connection.
func (s *Switch) serve(conn net.Conn) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conn = conn
	s.mu.Unlock()
	defer func() {
		conn.Close()
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
	}()

	if err := WriteMessage(conn, &Hello{}, 0); err != nil {
		return
	}
	for {
		msg, xid, err := ReadMessage(conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *Hello:
			// Symmetric HELLO already sent.
		case *EchoRequest:
			WriteMessage(conn, &EchoReply{Data: m.Data}, xid)
		case *FeaturesRequest:
			WriteMessage(conn, s.featuresReply(), xid)
		case *FlowMod:
			s.applyFlowMod(conn, m, xid)
		case *PacketOut:
			s.applyPacketOut(m)
		case *BarrierRequest:
			s.scheduleBarrier(conn, xid)
		default:
			WriteMessage(conn, &ErrorMsg{ErrType: ErrTypeBadRequest}, xid)
		}
	}
}

func (s *Switch) featuresReply() *FeaturesReply {
	fr := &FeaturesReply{DatapathID: s.cfg.DPID, NBuffers: 0, NTables: 1}
	for no := range s.cfg.Ports {
		name := s.cfg.PortNames[no]
		var state uint32
		if !s.cfg.Ports[no].Link().Up() {
			state = PortStateLinkDown
		}
		fr.Ports = append(fr.Ports, PhyPort{PortNo: no, Name: name, State: state})
	}
	return fr
}

// applyFlowMod validates the message and enqueues the table change on the
// serialized installer, modeling per-rule hardware programming delay.
func (s *Switch) applyFlowMod(conn net.Conn, fm *FlowMod, xid uint32) {
	dpMatch := fm.Match.ToDataplane()
	var dpActions []dataplane.Action
	for _, a := range fm.Actions {
		da, err := a.ToDataplane()
		if err != nil {
			WriteMessage(conn, &ErrorMsg{ErrType: ErrTypeBadAction, Data: []byte(err.Error())}, xid)
			return
		}
		dpActions = append(dpActions, da)
	}
	s.enqueueInstall(installItem{apply: func() {
		switch fm.Command {
		case FlowAdd, FlowModify, FlowModifyStrict:
			s.table.Upsert(dataplane.Flow{
				Priority: fm.Priority,
				Match:    dpMatch,
				Actions:  dpActions,
				Cookie:   fm.Cookie,
			})
		case FlowDelete, FlowDeleteStrict:
			s.table.Delete(dpMatch, fm.Priority)
		}
	}})
}

func (s *Switch) scheduleBarrier(conn net.Conn, xid uint32) {
	s.mu.Lock()
	idle := !s.installBusy && len(s.installQueue) == 0
	if !idle {
		s.installQueue = append(s.installQueue, installItem{barrierXID: xid})
	}
	s.mu.Unlock()
	if idle {
		WriteMessage(conn, &BarrierReply{}, xid)
	}
}

func (s *Switch) enqueueInstall(item installItem) {
	s.mu.Lock()
	s.installQueue = append(s.installQueue, item)
	start := !s.installBusy
	if start {
		s.installBusy = true
	}
	s.mu.Unlock()
	if start {
		s.cfg.Clock.AfterFunc(s.cfg.InstallLatency, s.installNext)
	}
}

// installNext runs on each installer timer tick. One tick pays for exactly
// one apply; barrier markers are free and complete as soon as every apply
// queued before them has been made.
func (s *Switch) installNext() {
	s.replyDueBarriers()

	s.mu.Lock()
	if len(s.installQueue) == 0 {
		s.installBusy = false
		s.mu.Unlock()
		return
	}
	item := s.installQueue[0]
	s.installQueue = s.installQueue[1:]
	s.mu.Unlock()

	item.apply()
	s.replyDueBarriers()

	s.mu.Lock()
	if len(s.installQueue) == 0 {
		s.installBusy = false
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.cfg.Clock.AfterFunc(s.cfg.InstallLatency, s.installNext)
}

// replyDueBarriers completes barrier markers sitting at the queue head.
func (s *Switch) replyDueBarriers() {
	s.mu.Lock()
	var due []uint32
	for len(s.installQueue) > 0 && s.installQueue[0].apply == nil {
		due = append(due, s.installQueue[0].barrierXID)
		s.installQueue = s.installQueue[1:]
	}
	conn := s.conn
	s.mu.Unlock()
	for _, xid := range due {
		if conn != nil {
			WriteMessage(conn, &BarrierReply{}, xid)
		}
	}
}

// applyPacketOut executes the actions on the carried frame.
func (s *Switch) applyPacketOut(po *PacketOut) {
	frame := append([]byte(nil), po.Data...)
	for _, a := range po.Actions {
		switch a.Type {
		case ActionTypeSetDLDst:
			if len(frame) >= 6 {
				copy(frame[0:6], a.MAC[:])
			}
		case ActionTypeSetDLSrc:
			if len(frame) >= 12 {
				copy(frame[6:12], a.MAC[:])
			}
		case ActionTypeOutput:
			if port, ok := s.cfg.Ports[a.Port]; ok {
				port.Send(frame)
			}
		}
	}
}
