package openflow

import (
	"encoding/binary"
	"fmt"
	"strings"

	"supercharged/internal/dataplane"
	"supercharged/internal/packet"
)

// matchLen is the size of ofp_match in OpenFlow 1.0.
const matchLen = 40

// Wildcard bits (ofp_flow_wildcards). A set bit means "field ignored".
const (
	WildcardInPort  uint32 = 1 << 0
	WildcardDLVLAN  uint32 = 1 << 1
	WildcardDLSrc   uint32 = 1 << 2
	WildcardDLDst   uint32 = 1 << 3
	WildcardDLType  uint32 = 1 << 4
	WildcardNWProto uint32 = 1 << 5
	WildcardTPSrc   uint32 = 1 << 6
	WildcardTPDst   uint32 = 1 << 7
	// nw_src/nw_dst are 6-bit mask-length fields; ≥32 means fully wild.
	wildcardNWSrcShift        = 8
	wildcardNWDstShift        = 14
	WildcardDLVLANPCP  uint32 = 1 << 20
	WildcardNWTOS      uint32 = 1 << 21
	// WildcardAll ignores every field.
	WildcardAll uint32 = (1 << 22) - 1
)

// Match is an OpenFlow 1.0 ofp_match. Only the fields the supercharger
// uses are interpreted by the emulated switch (in_port, dl_src, dl_dst,
// dl_type); the rest round-trip on the wire for completeness.
type Match struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     packet.MAC
	DLDst     packet.MAC
	DLVLAN    uint16
	DLVLANPCP uint8
	DLType    uint16
	NWTOS     uint8
	NWProto   uint8
	NWSrc     uint32
	NWDst     uint32
	TPSrc     uint16
	TPDst     uint16
}

// MatchAll returns a match with every field wildcarded.
func MatchAll() Match { return Match{Wildcards: WildcardAll} }

// MatchDLDst returns the supercharger's canonical match: exactly the
// destination MAC (the VMAC), everything else wild.
func MatchDLDst(mac packet.MAC) Match {
	m := MatchAll()
	m.Wildcards &^= WildcardDLDst
	m.DLDst = mac
	return m
}

func (m *Match) marshalTo(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	copy(b[6:12], m.DLSrc[:])
	copy(b[12:18], m.DLDst[:])
	binary.BigEndian.PutUint16(b[18:20], m.DLVLAN)
	b[20] = m.DLVLANPCP
	binary.BigEndian.PutUint16(b[22:24], m.DLType)
	b[24] = m.NWTOS
	b[25] = m.NWProto
	binary.BigEndian.PutUint32(b[28:32], m.NWSrc)
	binary.BigEndian.PutUint32(b[32:36], m.NWDst)
	binary.BigEndian.PutUint16(b[36:38], m.TPSrc)
	binary.BigEndian.PutUint16(b[38:40], m.TPDst)
}

func (m *Match) unmarshal(b []byte) error {
	if len(b) < matchLen {
		return fmt.Errorf("%w: match needs %d bytes", ErrTruncated, matchLen)
	}
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DLSrc[:], b[6:12])
	copy(m.DLDst[:], b[12:18])
	m.DLVLAN = binary.BigEndian.Uint16(b[18:20])
	m.DLVLANPCP = b[20]
	m.DLType = binary.BigEndian.Uint16(b[22:24])
	m.NWTOS = b[24]
	m.NWProto = b[25]
	m.NWSrc = binary.BigEndian.Uint32(b[28:32])
	m.NWDst = binary.BigEndian.Uint32(b[32:36])
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return nil
}

// ToDataplane converts the interpreted subset of the match into the
// emulated switch's table form.
func (m Match) ToDataplane() dataplane.Match {
	var out dataplane.Match
	if m.Wildcards&WildcardInPort == 0 {
		p := m.InPort
		out.InPort = &p
	}
	if m.Wildcards&WildcardDLSrc == 0 {
		mac := m.DLSrc
		out.SrcMAC = &mac
	}
	if m.Wildcards&WildcardDLDst == 0 {
		mac := m.DLDst
		out.DstMAC = &mac
	}
	if m.Wildcards&WildcardDLType == 0 {
		et := m.DLType
		out.EtherType = &et
	}
	return out
}

func (m Match) String() string {
	var parts []string
	if m.Wildcards&WildcardInPort == 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if m.Wildcards&WildcardDLSrc == 0 {
		parts = append(parts, fmt.Sprintf("dl_src=%s", m.DLSrc))
	}
	if m.Wildcards&WildcardDLDst == 0 {
		parts = append(parts, fmt.Sprintf("dl_dst=%s", m.DLDst))
	}
	if m.Wildcards&WildcardDLType == 0 {
		parts = append(parts, fmt.Sprintf("dl_type=%#04x", m.DLType))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}

// Action type codes (ofp_action_type).
const (
	ActionTypeOutput   uint16 = 0
	ActionTypeSetDLSrc uint16 = 4
	ActionTypeSetDLDst uint16 = 5
)

// Action is one OpenFlow action. Exactly the three the paper's rewrite
// rules need are supported.
type Action struct {
	Type   uint16
	Port   uint16     // OUTPUT
	MaxLen uint16     // OUTPUT (bytes to send to controller)
	MAC    packet.MAC // SET_DL_SRC / SET_DL_DST
}

// ActionOutput returns an OUTPUT action.
func ActionOutput(port uint16) Action { return Action{Type: ActionTypeOutput, Port: port} }

// ActionSetDLDst returns a SET_DL_DST action.
func ActionSetDLDst(mac packet.MAC) Action { return Action{Type: ActionTypeSetDLDst, MAC: mac} }

// ActionSetDLSrc returns a SET_DL_SRC action.
func ActionSetDLSrc(mac packet.MAC) Action { return Action{Type: ActionTypeSetDLSrc, MAC: mac} }

// ToDataplane converts to the emulated switch's action form.
func (a Action) ToDataplane() (dataplane.Action, error) {
	switch a.Type {
	case ActionTypeOutput:
		return dataplane.Output(a.Port), nil
	case ActionTypeSetDLDst:
		return dataplane.SetDstMAC(a.MAC), nil
	case ActionTypeSetDLSrc:
		return dataplane.SetSrcMAC(a.MAC), nil
	}
	return dataplane.Action{}, fmt.Errorf("%w: action type %d", ErrBadMessage, a.Type)
}

func marshalActions(actions []Action) ([]byte, error) {
	var out []byte
	for _, a := range actions {
		switch a.Type {
		case ActionTypeOutput:
			b := make([]byte, 8)
			binary.BigEndian.PutUint16(b[0:2], a.Type)
			binary.BigEndian.PutUint16(b[2:4], 8)
			binary.BigEndian.PutUint16(b[4:6], a.Port)
			binary.BigEndian.PutUint16(b[6:8], a.MaxLen)
			out = append(out, b...)
		case ActionTypeSetDLSrc, ActionTypeSetDLDst:
			b := make([]byte, 16)
			binary.BigEndian.PutUint16(b[0:2], a.Type)
			binary.BigEndian.PutUint16(b[2:4], 16)
			copy(b[4:10], a.MAC[:])
			out = append(out, b...)
		default:
			return nil, fmt.Errorf("%w: cannot marshal action type %d", ErrBadMessage, a.Type)
		}
	}
	return out, nil
}

func parseActions(b []byte) ([]Action, error) {
	var out []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: action header", ErrTruncated)
		}
		atype := binary.BigEndian.Uint16(b[0:2])
		alen := int(binary.BigEndian.Uint16(b[2:4]))
		if alen < 8 || alen%8 != 0 || len(b) < alen {
			return nil, fmt.Errorf("%w: action length %d", ErrBadMessage, alen)
		}
		switch atype {
		case ActionTypeOutput:
			if alen != 8 {
				return nil, fmt.Errorf("%w: OUTPUT action length %d", ErrBadMessage, alen)
			}
			out = append(out, Action{
				Type:   atype,
				Port:   binary.BigEndian.Uint16(b[4:6]),
				MaxLen: binary.BigEndian.Uint16(b[6:8]),
			})
		case ActionTypeSetDLSrc, ActionTypeSetDLDst:
			if alen != 16 {
				return nil, fmt.Errorf("%w: SET_DL action length %d", ErrBadMessage, alen)
			}
			var mac packet.MAC
			copy(mac[:], b[4:10])
			out = append(out, Action{Type: atype, MAC: mac})
		default:
			return nil, fmt.Errorf("%w: unsupported action type %d", ErrBadMessage, atype)
		}
		b = b[alen:]
	}
	return out, nil
}
