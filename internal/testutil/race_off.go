//go:build !race

package testutil

// RaceEnabled reports whether this binary was built with -race.
const RaceEnabled = false

const raceScale = 1
