// Package testutil holds shared test plumbing. Its main export is the
// test budget helper: wall-clock phase deadlines for concurrency tests
// (daemon drains, chaos soaks) that scale with the race detector's
// slowdown and never outlive the test binary's own -timeout deadline —
// a pinned 30 s context.WithTimeout flakes under -race on a loaded
// runner, while a budget derived here shrinks or grows with the
// environment and fails the *test* before the *binary* is killed (which
// would lose every other test's output with it).
package testutil

import (
	"context"
	"testing"
	"time"
)

// deadlineGrace is how much of the binary's remaining -timeout budget a
// single phase leaves for cleanup and the other tests behind it.
const deadlineGrace = 5 * time.Second

// Scale reports the wall-clock slowdown multiplier for the current
// build: raceScale (see race_on.go) with the race detector on, 1
// without. Multiply expected durations, divide expected throughput.
func Scale() int {
	if RaceEnabled {
		return raceScale
	}
	return 1
}

// Budget returns base scaled for the build (race slowdown), clamped so
// it expires at least deadlineGrace before the test binary's -timeout
// deadline. The floor is one second: a budget that cannot fit still
// returns something usable, and the caller's work simply fails fast
// with the test's own diagnostics instead of the runtime's panic dump.
func Budget(t testing.TB, base time.Duration) time.Duration {
	d := base * time.Duration(Scale())
	// Deadline lives on *testing.T, not testing.TB — assert for it so
	// benchmarks (no deadline) can share the helper.
	if dt, ok := t.(interface{ Deadline() (time.Time, bool) }); ok {
		if dl, ok := dt.Deadline(); ok {
			if rem := time.Until(dl) - deadlineGrace; rem < d {
				d = rem
			}
		}
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Context returns a context bounded by Budget(t, base). The cancel func
// must be called (or deferred) as usual.
func Context(t testing.TB, base time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), Budget(t, base))
}
