//go:build race

package testutil

// RaceEnabled reports whether this binary was built with -race.
const RaceEnabled = true

// raceScale is the assumed race-detector slowdown: the Go docs quote
// 2-20x; 4x covers this repository's channel-heavy tests with room to
// spare while keeping budgets finite.
const raceScale = 4
