package feed

import (
	"net/netip"
	"reflect"
	"testing"

	"supercharged/internal/bgp"
)

func TestGenerateCountAndUniqueness(t *testing.T) {
	tbl := Generate(Config{N: 5000, Seed: 1})
	if tbl.Len() != 5000 {
		t.Fatalf("len %d", tbl.Len())
	}
	seen := make(map[netip.Prefix]bool)
	for _, r := range tbl.Routes {
		if seen[r.Prefix] {
			t.Fatalf("duplicate prefix %v", r.Prefix)
		}
		seen[r.Prefix] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{N: 2000, Seed: 42})
	b := Generate(Config{N: 2000, Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different tables")
	}
	c := Generate(Config{N: 2000, Seed: 43})
	if reflect.DeepEqual(a.Prefixes(), c.Prefixes()) {
		t.Fatal("different seeds produced identical prefixes")
	}
}

func TestGenerateAvoidsInfrastructureSpace(t *testing.T) {
	tbl := Generate(Config{N: 20000, Seed: 7})
	bad := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("127.0.0.0/8"),
		netip.MustParsePrefix("192.0.0.0/8"),
		netip.MustParsePrefix("198.0.0.0/8"),
		netip.MustParsePrefix("203.0.0.0/8"),
		netip.MustParsePrefix("224.0.0.0/3"),
	}
	for _, r := range tbl.Routes {
		for _, b := range bad {
			if b.Contains(r.Prefix.Addr()) {
				t.Fatalf("prefix %v lands in excluded space %v", r.Prefix, b)
			}
		}
	}
}

func TestGenerateLengthDistribution(t *testing.T) {
	tbl := Generate(Config{N: 50000, Seed: 3})
	counts := map[int]int{}
	for _, r := range tbl.Routes {
		counts[r.Prefix.Bits()]++
	}
	// /24s must dominate (they are ~55% of the real table).
	if frac := float64(counts[24]) / 50000; frac < 0.45 || frac > 0.65 {
		t.Fatalf("/24 fraction %.2f outside [0.45,0.65]", frac)
	}
	for bits := range counts {
		if bits < 12 || bits > 24 {
			t.Fatalf("unexpected prefix length /%d", bits)
		}
	}
}

func TestAttrsForPrependsPeer(t *testing.T) {
	tbl := Generate(Config{N: 100, Seed: 5})
	nh := netip.MustParseAddr("203.0.113.1")
	attrs := tbl.AttrsFor(tbl.Routes[0].Template, 65002, nh)
	if attrs.NextHop != nh {
		t.Fatalf("next hop %v", attrs.NextHop)
	}
	if attrs.ASPath.First() != 65002 {
		t.Fatalf("as path %v does not start with peer AS", attrs.ASPath)
	}
}

func TestUpdatesCarryWholeTable(t *testing.T) {
	tbl := Generate(Config{N: 3000, Seed: 9})
	ups, err := tbl.Updates(65002, netip.MustParseAddr("203.0.113.1"), bgp.Codec{ASN4: true})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[netip.Prefix]bool)
	for _, u := range ups {
		if u.Attrs == nil || u.Attrs.NextHop != netip.MustParseAddr("203.0.113.1") {
			t.Fatal("update without proper attrs")
		}
		for _, p := range u.NLRI {
			if got[p] {
				t.Fatalf("prefix %v announced twice", p)
			}
			got[p] = true
		}
		buf, err := (bgp.Codec{ASN4: true}).Marshal(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) > bgp.MaxMsgLen {
			t.Fatal("oversized update")
		}
	}
	if len(got) != 3000 {
		t.Fatalf("updates cover %d prefixes", len(got))
	}
	// Realistic batching: far fewer messages than prefixes.
	if len(ups) >= 3000 {
		t.Fatalf("no batching: %d messages", len(ups))
	}
}

func TestSamplePrefixesIncludesFirstAndLast(t *testing.T) {
	tbl := Generate(Config{N: 1000, Seed: 11})
	sample := tbl.SamplePrefixes(100, 1)
	if len(sample) != 100 {
		t.Fatalf("sample size %d", len(sample))
	}
	first, last := tbl.Routes[0].Prefix, tbl.Routes[len(tbl.Routes)-1].Prefix
	hasFirst, hasLast := false, false
	seen := map[netip.Prefix]bool{}
	for _, p := range sample {
		if seen[p] {
			t.Fatalf("duplicate sample %v", p)
		}
		seen[p] = true
		if p == first {
			hasFirst = true
		}
		if p == last {
			hasLast = true
		}
	}
	if !hasFirst || !hasLast {
		t.Fatal("sample must include the first and last advertised prefix")
	}
	// Deterministic given the seed.
	again := tbl.SamplePrefixes(100, 1)
	if !reflect.DeepEqual(sample, again) {
		t.Fatal("sampling not deterministic")
	}
}

func TestSamplePrefixesClamps(t *testing.T) {
	tbl := Generate(Config{N: 5, Seed: 2})
	if got := tbl.SamplePrefixes(100, 1); len(got) != 5 {
		t.Fatalf("clamped sample %d", len(got))
	}
	if got := tbl.SamplePrefixes(0, 1); got != nil {
		t.Fatal("zero sample")
	}
}

func TestWindowWrapsAround(t *testing.T) {
	tbl := Generate(Config{N: 10, Seed: 3})
	w := tbl.Window(7, 5)
	if w.Len() != 5 {
		t.Fatalf("window len %d, want 5", w.Len())
	}
	want := append(append([]Route(nil), tbl.Routes[7:]...), tbl.Routes[:2]...)
	if !reflect.DeepEqual(w.Routes, want) {
		t.Fatal("wrapped window does not match routes 7,8,9,0,1")
	}
	// Offsets are modulo the table size; full-size windows are the table.
	if got := tbl.Window(17, 5); !reflect.DeepEqual(got.Routes, w.Routes) {
		t.Fatal("offset not taken modulo table size")
	}
	// A full-size window with an offset still rotates: announcement
	// order determines the standalone FIB-walk order, so dropping the
	// rotation would silently change what a staggered-full-feed spec
	// measures.
	if got := tbl.Window(3, 100); got.Len() != 10 {
		t.Fatalf("oversized window len %d, want full table", got.Len())
	} else if !reflect.DeepEqual(got.Routes[0], tbl.Routes[3]) {
		t.Fatal("oversized window dropped its rotation")
	}
	if got := tbl.Window(0, 100); !reflect.DeepEqual(got.Routes, tbl.Routes) {
		t.Fatal("zero-offset full window must be the table itself")
	}
	if got := tbl.Window(3, 0); got.Len() != 0 {
		t.Fatalf("empty window len %d", got.Len())
	}
}

func TestGeneratePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Generate(Config{N: 0})
}

func BenchmarkGenerate50k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Config{N: 50000, Seed: int64(i)})
	}
}
