package feed

import (
	"errors"
	"fmt"
	"io"
	"net/netip"

	"supercharged/internal/bgp"
	"supercharged/internal/mrt"
)

// Dump is an MRT RIB dump loaded into the feed model: the merged table
// the simulator replays, plus one view per dump peer. All tables share
// one Templates slice, so template indices are comparable across views
// — exactly the sharing contract Head and Window already have.
type Dump struct {
	// Table is the merged table: one route per prefix, in dump order,
	// carrying the prefix's first RIB entry (the collector lists its
	// best path first).
	Table *Table
	// Peers holds one per-peer view per dump peer that contributed at
	// least one entry, in peer-index order: that peer's routes, in dump
	// order — what that neighbor's session replay would announce.
	Peers []DumpPeer
}

// DumpPeer is one dump peer's identity and table view.
type DumpPeer struct {
	// Addr is the peer's transport address from the PEER_INDEX_TABLE.
	Addr netip.Addr
	// AS is the peer's autonomous-system number.
	AS uint32
	// Table is the peer's view, sharing the dump's Templates.
	Table *Table
}

// FromMRT loads a TABLE_DUMP_V2 dump (plain or gzip) into feed form.
// Non-RIB records (BGP4MP traces, unsupported subtypes) are skipped;
// additional-path entries collapse onto their prefix like any other.
//
// Attribute sets become shared Templates via semantic interning: two
// entries announcing the same origin/AS-path/MED/communities reference
// one template, however many million routes carry it — the same dedup
// the synthetic generator gets by construction. Attribute fields the
// template form cannot carry (LOCAL_PREF, aggregator, unknown
// transitive attributes) are dropped; next-hops are dropped too, since
// the simulator re-announces every route from its own peers (AttrsFor
// sets the announcing peer's next-hop and prepends its AS, as a real
// provider would).
//
// Loading is deterministic: the same dump bytes yield the same tables,
// route for route and template index for template index.
func FromMRT(r io.Reader) (*Dump, error) {
	rd := mrt.NewReader(r)
	in := bgp.NewInterner()
	rd.SetInterner(in)

	var templates []Template
	tmplIdx := make(map[*bgp.Attrs]int)
	templateFor := func(a *bgp.Attrs) int {
		// Canonicalize to the template fields only, then intern: one
		// canonical pointer per distinct template, mapped to its index.
		c := &bgp.Attrs{
			Origin:      a.Origin,
			ASPath:      a.ASPath,
			MED:         a.MED,
			HasMED:      a.HasMED,
			Communities: a.Communities,
		}
		canon := in.Intern(c)
		if idx, ok := tmplIdx[canon]; ok {
			return idx
		}
		idx := len(templates)
		templates = append(templates, Template{
			ASPath:      canon.ASPath,
			Origin:      canon.Origin,
			MED:         canon.MED,
			HasMED:      canon.HasMED,
			Communities: canon.Communities,
		})
		tmplIdx[canon] = idx
		return idx
	}

	merged := &Table{}
	seen := make(map[netip.Prefix]bool)
	var peerRoutes map[int][]Route
	var peerSeen map[int]map[netip.Prefix]bool
	var peerIndex *mrt.PeerIndex

	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("feed: load MRT: %w", err)
		}
		if rec.PeerIndex != nil {
			peerIndex = rec.PeerIndex
			if peerRoutes == nil {
				peerRoutes = make(map[int][]Route, len(peerIndex.Peers))
				peerSeen = make(map[int]map[netip.Prefix]bool, len(peerIndex.Peers))
			}
			continue
		}
		if rec.RIB == nil || len(rec.RIB.Entries) == 0 {
			continue
		}
		prefix := rec.RIB.Prefix
		for i, e := range rec.RIB.Entries {
			tmpl := templateFor(e.Attrs)
			if i == 0 && !seen[prefix] {
				seen[prefix] = true
				merged.Routes = append(merged.Routes, Route{Prefix: prefix, Template: tmpl})
			}
			pi := int(e.PeerIndex)
			if peerSeen[pi] == nil {
				peerSeen[pi] = make(map[netip.Prefix]bool)
			}
			if peerSeen[pi][prefix] {
				continue // additional paths collapse onto the first
			}
			peerSeen[pi][prefix] = true
			peerRoutes[pi] = append(peerRoutes[pi], Route{Prefix: prefix, Template: tmpl})
		}
	}
	if len(merged.Routes) == 0 {
		return nil, errors.New("feed: MRT dump has no IPv4 unicast RIB records")
	}
	merged.Templates = templates

	dump := &Dump{Table: merged}
	for i, p := range peerIndex.Peers {
		routes := peerRoutes[i]
		if len(routes) == 0 {
			continue
		}
		dump.Peers = append(dump.Peers, DumpPeer{
			Addr:  p.Addr,
			AS:    p.AS,
			Table: &Table{Routes: routes, Templates: templates},
		})
	}
	return dump, nil
}

// MRTPeer names one peer a WriteMRT dump advertises from: its address
// (also used as the BGP identifier and the announced next-hop) and AS.
type MRTPeer struct {
	Addr netip.Addr
	AS   uint32
}

// WriteMRT renders the table as a TABLE_DUMP_V2 dump: a
// PEER_INDEX_TABLE naming peers, then one RIB record per route with one
// entry per peer, each entry carrying the template's attributes as that
// peer would announce them (its AS prepended, its address as next-hop).
// An empty peer list defaults to the lab's primary (203.0.113.1,
// AS 65002). Output is deterministic: fixture dumps reproduce
// byte-for-byte from (table, peers).
func (t *Table) WriteMRT(w io.Writer, peers []MRTPeer) error {
	if len(peers) == 0 {
		peers = []MRTPeer{{Addr: netip.AddrFrom4([4]byte{203, 0, 113, 1}), AS: 65002}}
	}
	mw := mrt.NewWriter(w)
	pi := &mrt.PeerIndex{
		CollectorID: netip.AddrFrom4([4]byte{192, 0, 2, 255}),
		ViewName:    "supercharged-feed",
	}
	for _, p := range peers {
		pi.Peers = append(pi.Peers, mrt.Peer{BGPID: p.Addr, Addr: p.Addr, AS: p.AS})
	}
	if err := mw.WritePeerIndex(pi); err != nil {
		return err
	}
	// Rendered attributes cached per (template, peer): consecutive
	// routes of one template reuse the rendering, as StreamUpdates does.
	cache := make([]map[int]*bgp.Attrs, len(peers))
	for i := range cache {
		cache[i] = make(map[int]*bgp.Attrs)
	}
	entries := make([]mrt.RIBEntry, len(peers))
	for _, r := range t.Routes {
		for i, p := range peers {
			attrs := cache[i][r.Template]
			if attrs == nil {
				attrs = t.AttrsFor(r.Template, p.AS, p.Addr)
				cache[i][r.Template] = attrs
			}
			entries[i] = mrt.RIBEntry{PeerIndex: uint16(i), Attrs: attrs}
		}
		if err := mw.WriteRIB(r.Prefix, entries); err != nil {
			return err
		}
	}
	return nil
}

// Sample returns a deterministic n-route subsample preserving dump
// order (an even stride over the table, always keeping the first
// route) — how a committed test fixture is cut from a multi-hundred-
// thousand-route RIS dump. n >= Len returns the table unchanged; the
// view shares the receiver's templates and must not be mutated.
func (t *Table) Sample(n int) *Table {
	if n <= 0 {
		return &Table{Templates: t.Templates}
	}
	if n >= len(t.Routes) {
		return t
	}
	routes := make([]Route, 0, n)
	for i := 0; i < n; i++ {
		routes = append(routes, t.Routes[i*len(t.Routes)/n])
	}
	return &Table{Routes: routes, Templates: t.Templates}
}
