// Package feed generates deterministic synthetic Internet routing tables,
// standing in for the RIPE RIS dumps the paper loads into R2 and R3 (§4):
// realistic prefix-length mix, shared AS-path templates (so UPDATEs batch
// like real feeds), MEDs and communities. The same Table rendered for two
// different peers yields the same prefix set with different next-hops —
// exactly the experiment's setup.
package feed

import (
	"fmt"
	"math/rand"
	"net/netip"

	"supercharged/internal/bgp"
)

// Config parameterizes table generation.
type Config struct {
	// N is the number of distinct prefixes (the paper sweeps 1k..500k).
	N int
	// Seed makes generation reproducible; same seed, same table.
	Seed int64
	// Templates is the number of distinct attribute templates (0 = N/50,
	// min 1). Routes sharing a template batch into shared UPDATEs.
	Templates int
}

// Route is one prefix with its attribute template index.
type Route struct {
	Prefix   netip.Prefix
	Template int
}

// Template is a shareable attribute set (before per-peer rewriting).
type Template struct {
	ASPath      bgp.ASPath
	Origin      bgp.Origin
	MED         uint32
	HasMED      bool
	Communities []bgp.Community
}

// Table is a generated routing table.
type Table struct {
	Routes    []Route
	Templates []Template
}

// excludedFirstOctets are /8s never generated: test-bed infrastructure
// (10/8 hosts the virtual next-hop pool; 192.0.2, 198.51.100, 203.0.113
// live inside 192/198/203 but excluding the whole /8 keeps it simple),
// loopback, link-local carriers and multicast.
var excludedFirstOctets = map[int]bool{
	0: true, 10: true, 127: true, 169: true, 172: true,
	192: true, 198: true, 203: true,
}

// prefixLengthWeights approximates the real table's length distribution.
var prefixLengthWeights = []struct {
	bits   int
	weight int
}{
	{24, 550}, {23, 80}, {22, 100}, {21, 60}, {20, 70},
	{19, 50}, {18, 30}, {17, 20}, {16, 30}, {15, 4}, {14, 3}, {13, 2}, {12, 1},
}

// Generate builds a table of cfg.N unique prefixes. It panics on N <= 0.
func Generate(cfg Config) *Table {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("feed: invalid N %d", cfg.N))
	}
	nTemplates := cfg.Templates
	if nTemplates <= 0 {
		nTemplates = cfg.N / 50
	}
	if nTemplates < 1 {
		nTemplates = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	t := &Table{Templates: make([]Template, nTemplates)}
	for i := range t.Templates {
		t.Templates[i] = genTemplate(rng)
	}

	totalWeight := 0
	for _, w := range prefixLengthWeights {
		totalWeight += w.weight
	}

	seen := make(map[netip.Prefix]bool, cfg.N)
	t.Routes = make([]Route, 0, cfg.N)
	// Templates are assigned in bursty runs, the way real feeds arrive:
	// consecutive routes of one template render as one batched UPDATE
	// (Updates/StreamUpdates flush per run). Per-route random templates
	// would shred a 1M-prefix feed into a million single-prefix messages.
	template, runLeft := 0, 0
	for len(t.Routes) < cfg.N {
		p := genPrefix(rng, totalWeight)
		if seen[p] {
			continue
		}
		seen[p] = true
		if runLeft == 0 {
			template = rng.Intn(nTemplates)
			runLeft = 16 + rng.Intn(69) // run length 16..84, mean ~50
		}
		runLeft--
		t.Routes = append(t.Routes, Route{Prefix: p, Template: template})
	}
	return t
}

func genPrefix(rng *rand.Rand, totalWeight int) netip.Prefix {
	bits := 24
	w := rng.Intn(totalWeight)
	for _, lw := range prefixLengthWeights {
		if w < lw.weight {
			bits = lw.bits
			break
		}
		w -= lw.weight
	}
	for {
		first := 1 + rng.Intn(223)
		if excludedFirstOctets[first] {
			continue
		}
		raw := [4]byte{byte(first), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		return netip.PrefixFrom(netip.AddrFrom4(raw), bits).Masked()
	}
}

func genTemplate(rng *rand.Rand) Template {
	tmpl := Template{Origin: bgp.OriginIGP}
	if rng.Intn(10) == 0 {
		tmpl.Origin = bgp.OriginIncomplete
	}
	pathLen := 1 + rng.Intn(5)
	asns := make([]uint32, pathLen)
	for i := range asns {
		asns[i] = uint32(1000 + rng.Intn(64000))
	}
	tmpl.ASPath = bgp.Sequence(asns...)
	if rng.Intn(10) < 3 {
		tmpl.MED, tmpl.HasMED = uint32(rng.Intn(200)), true
	}
	for i := rng.Intn(3); i > 0; i-- {
		tmpl.Communities = append(tmpl.Communities,
			bgp.Community(uint32(1000+rng.Intn(64000))<<16|uint32(rng.Intn(1000))))
	}
	return tmpl
}

// Prefixes returns the prefixes in announcement order. Index 0 is "the
// first prefix advertised" and index len-1 the last, which the paper's
// probe selection explicitly includes.
func (t *Table) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, len(t.Routes))
	for i, r := range t.Routes {
		out[i] = r.Prefix
	}
	return out
}

// Len returns the number of routes.
func (t *Table) Len() int { return len(t.Routes) }

// AttrsFor renders a template as announced by a peer: the peer's AS is
// prepended and the next-hop set to the peer's address.
func (t *Table) AttrsFor(template int, peerAS uint32, nextHop netip.Addr) *bgp.Attrs {
	tmpl := t.Templates[template]
	return &bgp.Attrs{
		Origin:      tmpl.Origin,
		ASPath:      tmpl.ASPath.Prepend(peerAS),
		NextHop:     nextHop,
		MED:         tmpl.MED,
		HasMED:      tmpl.HasMED,
		Communities: append([]bgp.Community(nil), tmpl.Communities...),
	}
}

// Updates renders the full table as the batched UPDATE stream peer (AS,
// nextHop) would send, preserving announcement order within each template
// batch and respecting the 4096-byte message limit.
//
// The whole stream is materialized at once: at full-table scale (~1M
// prefixes) prefer StreamUpdates, which yields the same messages one at a
// time in the same order without holding the entire rendered feed in
// memory.
func (t *Table) Updates(peerAS uint32, nextHop netip.Addr, codec bgp.Codec) ([]*bgp.Update, error) {
	var out []*bgp.Update
	err := t.StreamUpdates(peerAS, nextHop, codec, func(u *bgp.Update) error {
		out = append(out, u)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StreamUpdates renders the feed as Updates does — same batching, same
// order, same messages — but hands each UPDATE to fn as soon as it is
// built instead of materializing the whole stream. Only one template
// batch is ever in memory at a time, which is what lets the simulator
// load 1M-prefix per-peer feeds without a per-peer copy of the rendered
// table. fn must not retain the update's slices beyond its own call
// unless it owns them (the simulator applies each update synchronously).
// A non-nil error from fn aborts the stream and is returned.
func (t *Table) StreamUpdates(peerAS uint32, nextHop netip.Addr, codec bgp.Codec, fn func(*bgp.Update) error) error {
	// Group consecutive routes by template to mimic real feed batching
	// while keeping a deterministic global order. Rendered attributes are
	// cached per template for the duration of this stream, so a template
	// recurring across many runs is rendered once — and downstream
	// interners recognize it by pointer.
	attrsCache := make(map[int]*bgp.Attrs)
	var runStart int
	flush := func(end int) error {
		if runStart >= end {
			return nil
		}
		tmplIdx := t.Routes[runStart].Template
		attrs := attrsCache[tmplIdx]
		if attrs == nil {
			attrs = t.AttrsFor(tmplIdx, peerAS, nextHop)
			attrsCache[tmplIdx] = attrs
		}
		nlri := make([]netip.Prefix, 0, end-runStart)
		for _, r := range t.Routes[runStart:end] {
			nlri = append(nlri, r.Prefix)
		}
		ups, err := bgp.SplitUpdates(attrs, nlri, codec)
		if err != nil {
			return err
		}
		for _, u := range ups {
			if err := fn(u); err != nil {
				return err
			}
		}
		runStart = end
		return nil
	}
	for i := 1; i <= len(t.Routes); i++ {
		if i == len(t.Routes) || t.Routes[i].Template != t.Routes[i-1].Template {
			if err := flush(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Head returns a view of the first n routes as a Table sharing the
// receiver's templates — a smaller peer feed over the same prefix space,
// used for topologies where providers advertise tables of different
// sizes. n outside [0, Len] is clamped; the view must not be mutated.
func (t *Table) Head(n int) *Table {
	if n <= 0 {
		n = 0
	}
	if n > len(t.Routes) {
		n = len(t.Routes)
	}
	return &Table{Routes: t.Routes[:n], Templates: t.Templates}
}

// Window returns a view of n routes starting at offset, wrapping around
// the end of the table, as a Table sharing the receiver's templates. Two
// peers with staggered windows cover overlapping-but-different slices of
// the prefix space — the per-prefix path-set diversity that makes a
// many-peer fabric allocate many distinct backup-groups (nested Head
// views can never produce more than one group per topology position).
// n outside [0, Len] is clamped; offset is taken modulo Len; the view
// must not be mutated.
func (t *Table) Window(offset, n int) *Table {
	if len(t.Routes) == 0 || n <= 0 {
		return &Table{Templates: t.Templates}
	}
	if n > len(t.Routes) {
		n = len(t.Routes)
	}
	offset %= len(t.Routes)
	if offset < 0 {
		offset += len(t.Routes)
	}
	if offset == 0 && n == len(t.Routes) {
		return &Table{Routes: t.Routes, Templates: t.Templates}
	}
	if offset+n <= len(t.Routes) {
		return &Table{Routes: t.Routes[offset : offset+n], Templates: t.Templates}
	}
	routes := make([]Route, 0, n)
	routes = append(routes, t.Routes[offset:]...)
	routes = append(routes, t.Routes[:n-(len(t.Routes)-offset)]...)
	return &Table{Routes: routes, Templates: t.Templates}
}

// SamplePrefixes picks n probe prefixes the way the paper does: "randomly
// selected among the IP prefixes advertised, and including the first and
// last prefix advertised". Deterministic for a given seed.
func (t *Table) SamplePrefixes(n int, seed int64) []netip.Prefix {
	if n <= 0 || len(t.Routes) == 0 {
		return nil
	}
	if n > len(t.Routes) {
		n = len(t.Routes)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]netip.Prefix, 0, n)
	seen := make(map[int]bool, n)
	pick := func(i int) {
		if !seen[i] {
			seen[i] = true
			out = append(out, t.Routes[i].Prefix)
		}
	}
	pick(0)
	if n > 1 {
		pick(len(t.Routes) - 1)
	}
	for len(out) < n {
		pick(rng.Intn(len(t.Routes)))
	}
	return out
}
