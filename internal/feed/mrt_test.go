package feed

import (
	"bytes"
	"compress/gzip"
	"errors"
	"net/netip"
	"testing"

	"supercharged/internal/mrt"
)

// mrtBytes renders a table as a dump for the given peer specs.
func mrtBytes(t *testing.T, table *Table, peers []MRTPeer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := table.WriteMRT(&buf, peers); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func labPeers(n int) []MRTPeer {
	var out []MRTPeer
	for i := 0; i < n; i++ {
		out = append(out, MRTPeer{
			Addr: netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}),
			AS:   uint32(65002 + i),
		})
	}
	return out
}

// A generated table written as MRT and loaded back must reproduce every
// prefix in order, and the per-peer views must mirror the merged table.
// This is the synthetic↔real bridge: whatever holds for Generate output
// holds for a dump of it.
func TestWriteMRTFromMRTRoundTrip(t *testing.T) {
	table := Generate(Config{N: 500, Seed: 7})
	raw := mrtBytes(t, table, labPeers(2))

	dump, err := FromMRT(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if dump.Table.Len() != table.Len() {
		t.Fatalf("merged table: %d routes, want %d", dump.Table.Len(), table.Len())
	}
	for i, r := range dump.Table.Routes {
		if r.Prefix != table.Routes[i].Prefix {
			t.Fatalf("route %d: prefix %v, want %v", i, r.Prefix, table.Routes[i].Prefix)
		}
	}
	// Template structure survives. Each dump peer announces with its own
	// AS prepended, so the shared pool can hold up to one variant per
	// (source template, peer) — but the merged table (first entry per
	// prefix, i.e. one peer's view) must dedup back to exactly the
	// source's template count, with routes sharing a source template
	// sharing a loaded one.
	used := func(tb *Table) int {
		seen := map[int]bool{}
		for _, r := range tb.Routes {
			seen[r.Template] = true
		}
		return len(seen)
	}
	if got, want := used(dump.Table), used(table); got != want {
		t.Fatalf("merged table references %d templates, want %d", got, want)
	}
	if max := used(table) * 2; len(dump.Table.Templates) > max {
		t.Fatalf("template pool grew to %d, cap is %d (used source templates x peers)", len(dump.Table.Templates), max)
	}
	byTemplate := map[int]int{}
	for i, r := range dump.Table.Routes {
		src := table.Routes[i].Template
		if prev, ok := byTemplate[src]; ok {
			if r.Template != prev {
				t.Fatalf("route %d: source template %d mapped to both %d and %d", i, src, prev, r.Template)
			}
		} else {
			byTemplate[src] = r.Template
		}
	}
	// The loaded template keeps the dump's AS path: source path with the
	// announcing peer's AS prepended by AttrsFor at write time.
	first := dump.Table.Templates[dump.Table.Routes[0].Template]
	src := table.Templates[table.Routes[0].Template]
	if first.ASPath.First() != 65002 {
		t.Fatalf("loaded path %v does not start with the announcing AS", first.ASPath)
	}
	if first.ASPath.Length() != src.ASPath.Length()+1 {
		t.Fatalf("loaded path length %d, want source %d + 1", first.ASPath.Length(), src.ASPath.Length())
	}

	// Per-peer views: both dump peers announced every prefix.
	if len(dump.Peers) != 2 {
		t.Fatalf("%d dump peers, want 2", len(dump.Peers))
	}
	for i, p := range dump.Peers {
		if want := uint32(65002 + i); p.AS != want {
			t.Errorf("peer %d: AS %d, want %d", i, p.AS, want)
		}
		if p.Table.Len() != table.Len() {
			t.Errorf("peer %d: %d routes, want %d", i, p.Table.Len(), table.Len())
		}
		if &p.Table.Templates[0] != &dump.Table.Templates[0] {
			t.Errorf("peer %d does not share the merged table's templates", i)
		}
	}
}

// Loading is deterministic: same bytes, same tables.
func TestFromMRTDeterministic(t *testing.T) {
	raw := mrtBytes(t, Generate(Config{N: 200, Seed: 3}), labPeers(2))
	a, err := FromMRT(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromMRT(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.Len() != b.Table.Len() || len(a.Table.Templates) != len(b.Table.Templates) {
		t.Fatalf("two loads disagree: %d/%d routes, %d/%d templates",
			a.Table.Len(), b.Table.Len(), len(a.Table.Templates), len(b.Table.Templates))
	}
	for i := range a.Table.Routes {
		if a.Table.Routes[i] != b.Table.Routes[i] {
			t.Fatalf("route %d: %+v vs %+v", i, a.Table.Routes[i], b.Table.Routes[i])
		}
	}
}

// Gzip-compressed dumps load identically to plain ones — RIS publishes
// nothing uncompressed.
func TestFromMRTGzip(t *testing.T) {
	raw := mrtBytes(t, Generate(Config{N: 100, Seed: 1}), labPeers(1))
	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	plain, err := FromMRT(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	fromGz, err := FromMRT(&zipped)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Table.Len() != fromGz.Table.Len() {
		t.Fatalf("gzip load: %d routes, plain %d", fromGz.Table.Len(), plain.Table.Len())
	}
}

// A dump with no IPv4 RIB records is an error, not an empty table — a
// simulator fed zero routes would measure nothing and report success.
func TestFromMRTEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	if err := w.WritePeerIndex(&mrt.PeerIndex{Peers: []mrt.Peer{
		{Addr: netip.MustParseAddr("203.0.113.1"), AS: 65002},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := FromMRT(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("empty dump loaded without error")
	}
	if _, err := FromMRT(bytes.NewReader([]byte{0, 1, 2})); err == nil {
		t.Fatal("garbage loaded without error")
	} else if !errors.Is(err, mrt.ErrTruncated) && !errors.Is(err, mrt.ErrBadRecord) {
		t.Fatalf("garbage error untyped: %v", err)
	}
}

// Additional paths and repeated prefixes collapse: the merged table
// keeps one route per prefix (first wins), per-peer views one per
// (peer, prefix).
func TestFromMRTCollapsesDuplicates(t *testing.T) {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	if err := w.WritePeerIndex(&mrt.PeerIndex{Peers: []mrt.Peer{
		{Addr: netip.MustParseAddr("203.0.113.1"), AS: 65002},
	}}); err != nil {
		t.Fatal(err)
	}
	table := Generate(Config{N: 1, Seed: 1})
	a := table.AttrsFor(table.Routes[0].Template, 65002, netip.MustParseAddr("203.0.113.1"))
	p := netip.MustParsePrefix("10.0.0.0/8")
	// Two paths for one prefix (add-path), then the prefix again.
	if err := w.WriteRIB(p, []mrt.RIBEntry{
		{PeerIndex: 0, PathID: 1, Attrs: a},
		{PeerIndex: 0, PathID: 2, Attrs: a},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(p, []mrt.RIBEntry{{PeerIndex: 0, Attrs: a}}); err != nil {
		t.Fatal(err)
	}
	dump, err := FromMRT(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dump.Table.Len() != 1 {
		t.Fatalf("merged table has %d routes, want 1", dump.Table.Len())
	}
	if len(dump.Peers) != 1 || dump.Peers[0].Table.Len() != 1 {
		t.Fatalf("peer view: %+v, want one route", dump.Peers)
	}
}

// The sim-facing views must behave identically over an MRT-backed table:
// Head/Window share templates, SamplePrefixes includes first and last
// and is seed-deterministic. This is what lets runTimeline swap backends
// without caring where the table came from.
func TestViewsOverMRTTable(t *testing.T) {
	raw := mrtBytes(t, Generate(Config{N: 1000, Seed: 5}), labPeers(2))
	dump, err := FromMRT(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	table := dump.Table

	head := table.Head(100)
	if head.Len() != 100 {
		t.Fatalf("Head(100).Len() = %d", head.Len())
	}
	if &head.Templates[0] != &table.Templates[0] {
		t.Error("Head does not share templates")
	}
	for i := range head.Routes {
		if head.Routes[i] != table.Routes[i] {
			t.Fatalf("Head route %d diverges", i)
		}
	}
	if table.Head(table.Len()+50).Len() != table.Len() {
		t.Error("Head past the end did not clamp")
	}

	win := table.Window(950, 100)
	if win.Len() != 100 {
		t.Fatalf("Window(950,100).Len() = %d", win.Len())
	}
	if win.Routes[0] != table.Routes[950] || win.Routes[99] != table.Routes[49] {
		t.Error("Window did not wrap around the table end")
	}
	if &win.Templates[0] != &table.Templates[0] {
		t.Error("Window does not share templates")
	}

	s1 := table.SamplePrefixes(10, 42)
	s2 := table.SamplePrefixes(10, 42)
	if len(s1) != 10 {
		t.Fatalf("SamplePrefixes returned %d", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("SamplePrefixes not deterministic per seed")
		}
	}
	if s1[0] != table.Routes[0].Prefix || s1[1] != table.Routes[table.Len()-1].Prefix {
		t.Error("SamplePrefixes must include the first and last advertised prefix")
	}

	// AttrsFor over a loaded template announces like any other table.
	attrs := table.AttrsFor(table.Routes[0].Template, 65099, netip.MustParseAddr("198.51.100.1"))
	if attrs.ASPath.First() != 65099 || attrs.NextHop != netip.MustParseAddr("198.51.100.1") {
		t.Errorf("AttrsFor over MRT template: %v", attrs)
	}
}

// Sample keeps dump order, always includes the first route, and is a
// no-op past Len.
func TestTableSample(t *testing.T) {
	table := Generate(Config{N: 1000, Seed: 2})
	s := table.Sample(100)
	if s.Len() != 100 {
		t.Fatalf("Sample(100).Len() = %d", s.Len())
	}
	if s.Routes[0] != table.Routes[0] {
		t.Error("Sample dropped the first route")
	}
	last := -1
	pos := map[Route]int{}
	for i, r := range table.Routes {
		pos[r] = i
	}
	for _, r := range s.Routes {
		p, ok := pos[r]
		if !ok {
			t.Fatalf("sampled route %+v not in the source table", r)
		}
		if p <= last {
			t.Fatal("Sample reordered routes")
		}
		last = p
	}
	if got := table.Sample(5000); got != table {
		t.Error("Sample past Len must return the table unchanged")
	}
	if table.Sample(0).Len() != 0 {
		t.Error("Sample(0) must be empty")
	}
}
