package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The process-wide scenario registry. Built-ins register at init; library
// users add their own with Register.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Spec)
)

// Register validates s and adds it to the registry. Duplicate names and
// invalid specs are errors.
func Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// MustRegister is Register that panics on error, for init-time built-ins.
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the named scenario.
func Lookup(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// List returns every registered scenario sorted by name.
func List() []Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the registered scenario names in sorted order.
func Names() []string {
	specs := List()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
