package scenario

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"supercharged/internal/sim"
)

// The scenario fuzzer: generate random valid timelines from a seeded
// grammar, run each in both router modes, and flag every case where the
// supercharged mode converges worse than the standalone baseline — then
// shrink the offender to a 1-minimal reproduction.
//
// The grammar covers the network-side event kinds (peer failures and
// recoveries, flaps, SRLG cuts, partial withdraws, burst re-announces,
// session resets with and without graceful restart, background UPDATE
// noise). It deliberately excludes rule-loss and controller-restart:
// those model failures of the supercharger itself, where losing to the
// standalone router is the documented expected outcome, not a regression
// (see docs/scenarios.md).
//
// Everything is deterministic: the same (Seed, Runs) generate the same
// specs byte-for-byte, the labs under them are seeded, and the shrinker
// explores candidates in a fixed order — a finding's reproduction
// command is just `scenario fuzz -seed N`.

// FuzzOptions parameterizes a fuzzing session. Zero fields take the
// defaults in withDefaults.
type FuzzOptions struct {
	// Seed drives the generator; same seed, same specs, same verdicts.
	Seed int64 `json:"seed"`
	// Runs is the number of specs to generate and check (default 20).
	Runs int `json:"runs"`
	// MaxPeers caps the generated topology size (default 5, min 2).
	MaxPeers int `json:"max_peers,omitempty"`
	// MaxEvents caps the generated timeline length (default 6, min 1).
	MaxEvents int `json:"max_events,omitempty"`
	// Prefixes is the table size each generated spec runs at (default
	// 2000 — small enough that a fuzz run costs milliseconds; values
	// under 100 take the default, since the grammar draws partial-feed
	// windows from Prefixes-derived ranges).
	Prefixes int `json:"prefixes,omitempty"`
	// Flows is the probed-flow count per run (default 50).
	Flows int `json:"flows,omitempty"`
	// Slack is the allowed supercharged/standalone worst-blackout ratio
	// for events the supercharger claims to accelerate (default 1.5; a
	// quantization grace of 60 ms is always added).
	Slack float64 `json:"slack,omitempty"`
	// NoShrink reports findings as generated, without minimizing them.
	NoShrink bool `json:"no_shrink,omitempty"`
}

func (o FuzzOptions) withDefaults() FuzzOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Runs <= 0 {
		o.Runs = 20
	}
	if o.MaxPeers < 2 {
		o.MaxPeers = 5
	}
	if o.MaxEvents < 1 {
		o.MaxEvents = 6
	}
	// Floor, not just default: the grammar draws partial-feed sizes and
	// offsets from Prefixes-derived ranges, which need room to be ranges.
	if o.Prefixes < 100 {
		o.Prefixes = 2000
	}
	if o.Flows <= 0 {
		o.Flows = 50
	}
	if o.Slack <= 0 {
		o.Slack = 1.5
	}
	return o
}

// convGraceMS absorbs probe quantization and FIB-walk granularity when
// comparing the two modes' worst blackouts.
const convGraceMS = 60.0

// FuzzFinding is one spec the oracle flagged, plus its shrunk form.
type FuzzFinding struct {
	// Index is the spec's position in the generated sequence; together
	// with the session seed it reproduces the spec exactly.
	Index int `json:"index"`
	// Spec is the offending scenario as generated.
	Spec Spec `json:"spec"`
	// Reason is the oracle's verdict for Spec.
	Reason string `json:"reason"`
	// Shrunk is the 1-minimal reproduction (nil when shrinking was
	// disabled): removing any single event no longer fails the oracle.
	Shrunk *Spec `json:"shrunk,omitempty"`
	// ShrunkReason is the oracle's verdict for Shrunk (shrinking keeps a
	// spec as long as it fails for any reason, so this may differ).
	ShrunkReason string `json:"shrunk_reason,omitempty"`
}

// FuzzResult is one fuzzing session's outcome.
type FuzzResult struct {
	Seed     int64         `json:"seed"`
	Runs     int           `json:"runs"`
	Findings []FuzzFinding `json:"findings"`
}

// Fuzz generates opts.Runs specs from the seeded grammar, checks each
// for a standalone-vs-supercharged convergence regression, and shrinks
// every finding. Progress, if set, receives one line per checked spec.
// A cancelled context returns the partial result alongside the error.
func Fuzz(ctx context.Context, opts FuzzOptions, progress io.Writer) (*FuzzResult, error) {
	opts = opts.withDefaults()
	res := &FuzzResult{Seed: opts.Seed, Runs: opts.Runs}
	for i := 0; i < opts.Runs; i++ {
		spec := GenerateSpec(opts.Seed, i, opts)
		reason, err := CheckSpec(ctx, spec, opts)
		if err != nil {
			return res, fmt.Errorf("fuzz: run %d (%s): %w", i, spec.Name, err)
		}
		if progress != nil {
			verdict := "ok"
			if exhaustible(spec) {
				verdict = "skip (k-exhaustible)"
			}
			if reason != "" {
				verdict = "FINDING: " + reason
			}
			fmt.Fprintf(progress, "[%d/%d] %-12s %-60s %s\n",
				i+1, opts.Runs, spec.Name, TimelineString(spec), verdict)
		}
		if reason == "" {
			continue
		}
		finding := FuzzFinding{Index: i, Spec: spec, Reason: reason}
		if !opts.NoShrink {
			shrunk, shrunkReason, err := ShrinkSpec(ctx, spec, opts)
			if err != nil {
				return res, fmt.Errorf("fuzz: shrinking run %d (%s): %w", i, spec.Name, err)
			}
			finding.Shrunk, finding.ShrunkReason = &shrunk, shrunkReason
			if progress != nil {
				fmt.Fprintf(progress, "        shrunk to %-60s %s\n",
					TimelineString(shrunk), shrunkReason)
			}
		}
		res.Findings = append(res.Findings, finding)
	}
	return res, nil
}

// fuzzKinds is the generator's event-kind menu with selection weights.
var fuzzKinds = []struct {
	kind   Kind
	weight int
}{
	{sim.EventPeerDown, 4},
	{sim.EventLinkFlap, 3},
	{sim.EventPeerUp, 2},
	{sim.EventPartialWithdraw, 2},
	{sim.EventBurstReannounce, 2},
	{sim.EventSRLGDown, 2},
	{sim.EventSessionReset, 3},
	{sim.EventUpdateNoise, 2},
}

// GenerateSpec derives the index-th spec of a fuzzing session from the
// session seed. It is a pure function of (seed, index, opts): the
// reproduction contract of every finding.
func GenerateSpec(seed int64, index int, opts FuzzOptions) Spec {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(index)))

	numPeers := 2 + rng.Intn(opts.MaxPeers-1)
	peers := make([]Peer, numPeers)
	names := make([]string, numPeers)
	for i := range peers {
		names[i] = fmt.Sprintf("R%d", i+2)
		peers[i] = Peer{Name: names[i]}
		// Beyond the first two (kept full-feed so the topology always has
		// a full primary and backup), peers may advertise partial and/or
		// rotated windows — the fabric-style path diversity.
		if i >= 2 {
			switch rng.Intn(3) {
			case 1:
				peers[i].Prefixes = opts.Prefixes/4 + rng.Intn(opts.Prefixes/2)
			case 2:
				peers[i].Prefixes = opts.Prefixes/4 + rng.Intn(opts.Prefixes/2)
				peers[i].Offset = rng.Intn(opts.Prefixes)
			}
		}
	}

	groupSize := 0 // default k=2
	if numPeers > 2 && rng.Intn(2) == 1 {
		groupSize = 2 + rng.Intn(numPeers-1) // up to numPeers
	}

	numEvents := 1 + rng.Intn(opts.MaxEvents)
	events := make([]Event, 0, numEvents)
	totalWeight := 0
	for _, k := range fuzzKinds {
		totalWeight += k.weight
	}
	for i := 0; i < numEvents; i++ {
		ev := Event{At: time.Duration(500+rng.Intn(7500)) * time.Millisecond}
		roll := rng.Intn(totalWeight)
		for _, k := range fuzzKinds {
			if roll < k.weight {
				ev.Kind = k.kind
				break
			}
			roll -= k.weight
		}
		switch ev.Kind {
		case sim.EventSRLGDown:
			if numPeers < 3 {
				ev.Kind = sim.EventPeerDown // a 2-peer SRLG is just "everything"
			}
		}
		switch ev.Kind {
		case sim.EventSRLGDown:
			size := 2
			if numPeers > 3 && rng.Intn(2) == 1 {
				size = 3
			}
			members := rng.Perm(numPeers)[:size]
			sort.Ints(members)
			for _, m := range members {
				ev.Peers = append(ev.Peers, names[m])
			}
		default:
			ev.Peer = names[rng.Intn(numPeers)]
		}
		switch ev.Kind {
		case sim.EventPeerDown, sim.EventLinkFlap:
			if rng.Intn(10) == 0 {
				ev.Detection = sim.DetectHoldTimer // spec.HoldTimer below keeps this cheap
			}
		}
		switch ev.Kind {
		case sim.EventLinkFlap:
			ev.Hold = time.Duration(30+rng.Intn(3000)) * time.Millisecond
		case sim.EventSessionReset:
			if rng.Intn(2) == 1 {
				ev.Graceful = true
			}
			if rng.Intn(2) == 1 {
				ev.Hold = time.Duration(300+rng.Intn(1700)) * time.Millisecond
			}
		case sim.EventUpdateNoise:
			ev.Hold = time.Duration(500+rng.Intn(1500)) * time.Millisecond
			ev.Rate = 500 + 500*rng.Intn(10)
		case sim.EventPartialWithdraw:
			ev.Fraction = float64(1+rng.Intn(9)) / 10
		}
		events = append(events, ev)
	}

	return Spec{
		Name: fmt.Sprintf("fuzz-%d-%d", seed, index),
		Description: fmt.Sprintf(
			"Fuzzer-generated timeline %d of session seed %d (reproduce: scenario fuzz -seed %d).",
			index, seed, seed),
		Peers:     peers,
		Events:    events,
		GroupSize: groupSize,
		Prefixes:  opts.Prefixes,
		Flows:     opts.Flows,
		// Keep the hold-timer detection path affordable: 5 s instead of
		// the protocol-default 90 s, still far above every other latency.
		HoldTimer: 5 * time.Second,
	}
}

// acceleratable reports whether the supercharger claims constant-time
// convergence for the event — the kinds the oracle holds it to.
func acceleratable(ev Event) bool {
	switch ev.Kind {
	case sim.EventPeerDown, sim.EventLinkFlap, sim.EventSRLGDown:
		return true
	case sim.EventSessionReset:
		return !ev.Graceful
	}
	return false
}

// exhaustible reports whether the timeline can drive every member of a
// k-tuple backup-group dead: it takes down at least k distinct peers
// (link cuts, SRLG members, hard session resets), where k is the
// effective group size min(GroupSize, peers). This is deliberately
// conservative — downs are counted across the whole timeline even if
// they never overlap — because the oracle must have zero false
// positives on CI's fixed seeds; the cost is that exhaustible specs go
// unchecked (documented in docs/fuzzing.md).
func exhaustible(s Spec) bool {
	k := s.GroupSize
	if k == 0 {
		k = 2
	}
	if n := len(s.Peers); k > n {
		k = n
	}
	down := map[string]bool{}
	for _, ev := range s.Events {
		switch ev.Kind {
		case sim.EventPeerDown, sim.EventLinkFlap:
			down[ev.Peer] = true
		case sim.EventSessionReset:
			if !ev.Graceful {
				down[ev.Peer] = true
			}
		case sim.EventSRLGDown:
			for _, p := range ev.Peers {
				down[p] = true
			}
		}
	}
	return len(down) >= k
}

// CheckSpec is the fuzzing oracle: it runs the spec in both modes and
// returns a non-empty reason if the supercharged mode regressed —
// stranded flows the standalone router recovered, or converged slower
// than Slack× the standalone worst case on an event it claims to
// accelerate. An empty reason means the spec passes.
//
// One documented carve-out: when the timeline can exhaust a
// backup-group (take at least GroupSize distinct peers down, so every
// member of a k-tuple may be dead while some k+1-th peer survives), the
// supercharged mode legitimately degrades — stranded flows or
// per-entry fallback convergence through the extra controller hop.
// That is the k-sizing trade-off the srlg-dual-failure builtin
// documents, not a code regression, so such specs are exempt.
func CheckSpec(ctx context.Context, spec Spec, opts FuzzOptions) (string, error) {
	opts = opts.withDefaults()
	if exhaustible(spec) {
		return "", nil
	}
	var r Runner
	sa, err := r.RunUnit(ctx, spec, sim.Standalone, opts.Prefixes, opts.Flows, 1)
	if err != nil {
		if ctx.Err() != nil {
			return "", err
		}
		return fmt.Sprintf("standalone run failed: %v", err), nil
	}
	su, err := r.RunUnit(ctx, spec, sim.Supercharged, opts.Prefixes, opts.Flows, 1)
	if err != nil {
		if ctx.Err() != nil {
			return "", err
		}
		return fmt.Sprintf("supercharged run failed: %v", err), nil
	}
	if len(sa.Events) != len(su.Events) {
		return fmt.Sprintf("event count mismatch: standalone %d, supercharged %d",
			len(sa.Events), len(su.Events)), nil
	}
	for i := range sa.Events {
		se, ue := sa.Events[i], su.Events[i]
		if ue.Unrecovered > se.Unrecovered {
			return fmt.Sprintf(
				"event %d (%s): supercharged stranded %d flows, standalone %d",
				i, ue.Kind, ue.Unrecovered, se.Unrecovered), nil
		}
		if !acceleratable(spec.Events[i]) {
			continue
		}
		if se.Convergence == nil || ue.Convergence == nil {
			continue
		}
		if ue.Convergence.MaxMS > se.Convergence.MaxMS*opts.Slack+convGraceMS {
			return fmt.Sprintf(
				"event %d (%s): supercharged worst blackout %.0fms vs standalone %.0fms (slack %.2g)",
				i, ue.Kind, ue.Convergence.MaxMS, se.Convergence.MaxMS, opts.Slack), nil
		}
	}
	return "", nil
}

// checkFunc is the oracle signature ShrinkSpec minimizes against; tests
// inject synthetic oracles to pin the shrinker's behavior.
type checkFunc func(context.Context, Spec, FuzzOptions) (string, error)

// ShrinkSpec greedily minimizes a failing spec: repeatedly try dropping
// one event, then one unreferenced peer, then one field simplification,
// keeping any candidate that still fails the oracle (for any reason),
// until no single removal fails. The result is 1-minimal over events:
// removing any one of them makes the oracle pass. Candidates are tried
// in a fixed order, so shrinking is as deterministic as generation.
func ShrinkSpec(ctx context.Context, spec Spec, opts FuzzOptions) (Spec, string, error) {
	return shrinkSpec(ctx, spec, opts.withDefaults(), CheckSpec)
}

func shrinkSpec(ctx context.Context, spec Spec, opts FuzzOptions, check checkFunc) (Spec, string, error) {
	reason, err := check(ctx, spec, opts)
	if err != nil || reason == "" {
		return spec, reason, err
	}
	for {
		smaller, smallerReason, err := shrinkStep(ctx, spec, opts, check)
		if err != nil {
			return spec, reason, err
		}
		if smaller == nil {
			return spec, reason, nil // nothing removable: minimal
		}
		spec, reason = *smaller, smallerReason
	}
}

// shrinkStep tries every single-removal candidate in order and returns
// the first that still fails (nil when none do).
func shrinkStep(ctx context.Context, spec Spec, opts FuzzOptions, check checkFunc) (*Spec, string, error) {
	// 1. Drop one event.
	for i := range spec.Events {
		if len(spec.Events) == 1 {
			break // a scenario needs a timeline
		}
		cand := cloneSpec(spec)
		cand.Events = append(cand.Events[:i:i], cand.Events[i+1:]...)
		if keep, reason, err := tryCandidate(ctx, cand, opts, check); err != nil || keep {
			return &cand, reason, err
		}
	}
	// 2. Drop one peer no remaining event references (topologies need 2).
	for i := range spec.Peers {
		if len(spec.Peers) <= 2 || peerReferenced(spec, spec.Peers[i].Name) {
			continue
		}
		cand := cloneSpec(spec)
		cand.Peers = append(cand.Peers[:i:i], cand.Peers[i+1:]...)
		if keep, reason, err := tryCandidate(ctx, cand, opts, check); err != nil || keep {
			return &cand, reason, err
		}
	}
	// 3. Simplify fields: full feeds, default group size, default
	// detection — anything that survives simplification reads easier.
	for _, simplify := range []func(*Spec) bool{
		func(s *Spec) bool {
			changed := false
			for i := range s.Peers {
				if s.Peers[i].Prefixes != 0 || s.Peers[i].Offset != 0 {
					s.Peers[i].Prefixes, s.Peers[i].Offset = 0, 0
					changed = true
				}
			}
			return changed
		},
		func(s *Spec) bool {
			if s.GroupSize != 0 {
				s.GroupSize = 0
				return true
			}
			return false
		},
		func(s *Spec) bool {
			changed := false
			for i := range s.Events {
				if s.Events[i].Detection != "" {
					s.Events[i].Detection = ""
					changed = true
				}
			}
			return changed
		},
	} {
		cand := cloneSpec(spec)
		if !simplify(&cand) {
			continue
		}
		if keep, reason, err := tryCandidate(ctx, cand, opts, check); err != nil || keep {
			return &cand, reason, err
		}
	}
	return nil, "", nil
}

// tryCandidate reports whether a shrink candidate is valid and still
// fails the oracle.
func tryCandidate(ctx context.Context, cand Spec, opts FuzzOptions, check checkFunc) (bool, string, error) {
	if err := cand.Validate(); err != nil {
		return false, "", nil // e.g. dropped the last peer an event needs
	}
	reason, err := check(ctx, cand, opts)
	if err != nil {
		return false, "", err
	}
	return reason != "", reason, nil
}

func peerReferenced(s Spec, name string) bool {
	for _, ev := range s.Events {
		if ev.Peer == name {
			return true
		}
		for _, p := range ev.Peers {
			if p == name {
				return true
			}
		}
	}
	return false
}

func cloneSpec(s Spec) Spec {
	out := s
	out.Peers = append([]Peer(nil), s.Peers...)
	out.Events = make([]Event, len(s.Events))
	for i, ev := range s.Events {
		out.Events[i] = ev
		out.Events[i].Peers = append([]string(nil), ev.Peers...)
	}
	out.PrefixSweep = append([]int(nil), s.PrefixSweep...)
	return out
}

// TimelineString renders a spec's topology and timeline as one stable
// line — the byte-for-byte reproducible fuzz log format.
func TimelineString(s Spec) string {
	var b strings.Builder
	k := s.GroupSize
	if k == 0 {
		k = 2
	}
	fmt.Fprintf(&b, "%dp k=%d:", len(s.Peers), k)
	for _, ev := range s.Events {
		b.WriteString(" ")
		b.WriteString(string(ev.Kind))
		b.WriteString("(")
		var args []string
		if ev.Peer != "" {
			args = append(args, ev.Peer)
		}
		if len(ev.Peers) > 0 {
			args = append(args, strings.Join(ev.Peers, "+"))
		}
		args = append(args, fmt.Sprintf("@%v", ev.At))
		if ev.Hold > 0 {
			args = append(args, fmt.Sprintf("hold=%v", ev.Hold))
		}
		if ev.Fraction > 0 {
			args = append(args, fmt.Sprintf("f=%.1f", ev.Fraction))
		}
		if ev.Rate > 0 {
			args = append(args, fmt.Sprintf("rate=%d", ev.Rate))
		}
		if ev.Graceful {
			args = append(args, "graceful")
		}
		if ev.Detection != "" {
			args = append(args, string(ev.Detection))
		}
		b.WriteString(strings.Join(args, " "))
		b.WriteString(")")
	}
	return b.String()
}
