package scenario

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"supercharged/internal/sim"
)

// The scenario fuzzer: generate random valid timelines from a seeded
// grammar, run each in both router modes, and flag every case where the
// supercharged mode converges worse than the standalone baseline — then
// shrink the offender to a 1-minimal reproduction.
//
// The grammar covers the network-side event kinds (peer failures and
// recoveries, flaps, SRLG cuts, partial withdraws, burst re-announces,
// session resets with and without graceful restart, background UPDATE
// noise) plus, behind selectable axes, the centralization-economics
// dimensions: partial router deployments, priced controllers
// (sim.ControllerCost) and controller replicas with scripted failovers.
// It deliberately excludes rule-loss and controller-restart: those model
// failures of the supercharger itself, where losing to the standalone
// router is the documented expected outcome, not a regression (see
// docs/scenarios.md). Replica failovers are generated only up to
// Replicas-1 per run — the controller survives, so the acceleration
// claims still apply (the oracle prices in the takeover windows via
// costAllowance).
//
// Everything is deterministic: the same (Seed, Runs) generate the same
// specs byte-for-byte, the labs under them are seeded, and the shrinker
// explores candidates in a fixed order — a finding's reproduction
// command is just `scenario fuzz -seed N`.

// FuzzOptions parameterizes a fuzzing session. Zero fields take the
// defaults in withDefaults.
type FuzzOptions struct {
	// Seed drives the generator; same seed, same specs, same verdicts.
	Seed int64 `json:"seed"`
	// Runs is the number of specs to generate and check (default 20).
	Runs int `json:"runs"`
	// MaxPeers caps the generated topology size (default 5, min 2).
	MaxPeers int `json:"max_peers,omitempty"`
	// MaxEvents caps the generated timeline length (default 6, min 1).
	MaxEvents int `json:"max_events,omitempty"`
	// Prefixes is the table size each generated spec runs at (default
	// 2000 — small enough that a fuzz run costs milliseconds; values
	// under 100 take the default, since the grammar draws partial-feed
	// windows from Prefixes-derived ranges).
	Prefixes int `json:"prefixes,omitempty"`
	// Flows is the probed-flow count per run (default 50).
	Flows int `json:"flows,omitempty"`
	// Slack is the allowed supercharged/standalone worst-blackout ratio
	// for events the supercharger claims to accelerate (default 1.5; a
	// quantization grace of 60 ms is always added).
	Slack float64 `json:"slack,omitempty"`
	// NoShrink reports findings as generated, without minimizing them.
	NoShrink bool `json:"no_shrink,omitempty"`
	// Axes names the optional grammar dimensions the generator may draw
	// from (nil = all of KnownFuzzAxes; empty = none, the bare event
	// grammar). Disabling an axis removes its random draws entirely, so
	// the axis list is part of a finding's reproduction contract
	// alongside the seed.
	Axes []string `json:"axes,omitempty"`
}

// The generator's optional grammar dimensions, selectable per session
// via FuzzOptions.Axes.
const (
	AxisGroupSize  = "group-size" // backup-group tuple sizes k > 2
	AxisDetection  = "detection"  // hold-timer instead of BFD detection
	AxisWindows    = "windows"    // partial / rotated per-peer feed windows
	AxisDeployment = "deployment" // mixed supercharged/vanilla router fleets
	AxisCost       = "cost"       // priced controller (sim.ControllerCost)
	AxisReplicas   = "replicas"   // controller replicas + failover events
)

// KnownFuzzAxes lists the valid axis names in display order.
func KnownFuzzAxes() []string {
	return []string{
		AxisGroupSize, AxisDetection, AxisWindows,
		AxisDeployment, AxisCost, AxisReplicas,
	}
}

// ValidateAxes rejects unknown axis names before a session starts.
func ValidateAxes(axes []string) error {
	for _, a := range axes {
		known := false
		for _, k := range KnownFuzzAxes() {
			if a == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("fuzz: unknown axis %q (known: %s)",
				a, strings.Join(KnownFuzzAxes(), ", "))
		}
	}
	return nil
}

// axisEnabled reports whether the generator may draw from an axis.
func (o FuzzOptions) axisEnabled(name string) bool {
	if o.Axes == nil {
		return true
	}
	for _, a := range o.Axes {
		if a == name {
			return true
		}
	}
	return false
}

func (o FuzzOptions) withDefaults() FuzzOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Runs <= 0 {
		o.Runs = 20
	}
	if o.MaxPeers < 2 {
		o.MaxPeers = 5
	}
	if o.MaxEvents < 1 {
		o.MaxEvents = 6
	}
	// Floor, not just default: the grammar draws partial-feed sizes and
	// offsets from Prefixes-derived ranges, which need room to be ranges.
	if o.Prefixes < 100 {
		o.Prefixes = 2000
	}
	if o.Flows <= 0 {
		o.Flows = 50
	}
	if o.Slack <= 0 {
		o.Slack = 1.5
	}
	return o
}

// convGraceMS absorbs probe quantization and FIB-walk granularity when
// comparing the two modes' worst blackouts.
const convGraceMS = 60.0

// FuzzFinding is one spec the oracle flagged, plus its shrunk form.
type FuzzFinding struct {
	// Index is the spec's position in the generated sequence; together
	// with the session seed it reproduces the spec exactly.
	Index int `json:"index"`
	// Spec is the offending scenario as generated.
	Spec Spec `json:"spec"`
	// Reason is the oracle's verdict for Spec.
	Reason string `json:"reason"`
	// Shrunk is the 1-minimal reproduction (nil when shrinking was
	// disabled): removing any single event no longer fails the oracle.
	Shrunk *Spec `json:"shrunk,omitempty"`
	// ShrunkReason is the oracle's verdict for Shrunk (shrinking keeps a
	// spec as long as it fails for any reason, so this may differ).
	ShrunkReason string `json:"shrunk_reason,omitempty"`
}

// FuzzResult is one fuzzing session's outcome.
type FuzzResult struct {
	Seed     int64         `json:"seed"`
	Runs     int           `json:"runs"`
	Findings []FuzzFinding `json:"findings"`
}

// Fuzz generates opts.Runs specs from the seeded grammar, checks each
// for a standalone-vs-supercharged convergence regression, and shrinks
// every finding. Progress, if set, receives one line per checked spec.
// A cancelled context returns the partial result alongside the error.
func Fuzz(ctx context.Context, opts FuzzOptions, progress io.Writer) (*FuzzResult, error) {
	opts = opts.withDefaults()
	res := &FuzzResult{Seed: opts.Seed, Runs: opts.Runs}
	if err := ValidateAxes(opts.Axes); err != nil {
		return res, err
	}
	for i := 0; i < opts.Runs; i++ {
		spec := GenerateSpec(opts.Seed, i, opts)
		reason, err := CheckSpec(ctx, spec, opts)
		if err != nil {
			return res, fmt.Errorf("fuzz: run %d (%s): %w", i, spec.Name, err)
		}
		if progress != nil {
			verdict := "ok"
			if sr := skipReason(spec); sr != "" {
				verdict = "skip (" + sr + ")"
			}
			if reason != "" {
				verdict = "FINDING: " + reason
			}
			fmt.Fprintf(progress, "[%d/%d] %-12s %-60s %s\n",
				i+1, opts.Runs, spec.Name, TimelineString(spec), verdict)
		}
		if reason == "" {
			continue
		}
		finding := FuzzFinding{Index: i, Spec: spec, Reason: reason}
		if !opts.NoShrink {
			shrunk, shrunkReason, err := ShrinkSpec(ctx, spec, opts)
			if err != nil {
				return res, fmt.Errorf("fuzz: shrinking run %d (%s): %w", i, spec.Name, err)
			}
			finding.Shrunk, finding.ShrunkReason = &shrunk, shrunkReason
			if progress != nil {
				fmt.Fprintf(progress, "        shrunk to %-60s %s\n",
					TimelineString(shrunk), shrunkReason)
			}
		}
		res.Findings = append(res.Findings, finding)
	}
	return res, nil
}

// fuzzKinds is the generator's event-kind menu with selection weights.
var fuzzKinds = []struct {
	kind   Kind
	weight int
}{
	{sim.EventPeerDown, 4},
	{sim.EventLinkFlap, 3},
	{sim.EventPeerUp, 2},
	{sim.EventPartialWithdraw, 2},
	{sim.EventBurstReannounce, 2},
	{sim.EventSRLGDown, 2},
	{sim.EventSessionReset, 3},
	{sim.EventUpdateNoise, 2},
}

// GenerateSpec derives the index-th spec of a fuzzing session from the
// session seed. It is a pure function of (seed, index, opts): the
// reproduction contract of every finding.
func GenerateSpec(seed int64, index int, opts FuzzOptions) Spec {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(index)))

	numPeers := 2 + rng.Intn(opts.MaxPeers-1)
	peers := make([]Peer, numPeers)
	names := make([]string, numPeers)
	for i := range peers {
		names[i] = fmt.Sprintf("R%d", i+2)
		peers[i] = Peer{Name: names[i]}
		// Beyond the first two (kept full-feed so the topology always has
		// a full primary and backup), peers may advertise partial and/or
		// rotated windows — the fabric-style path diversity.
		if i >= 2 && opts.axisEnabled(AxisWindows) {
			switch rng.Intn(3) {
			case 1:
				peers[i].Prefixes = opts.Prefixes/4 + rng.Intn(opts.Prefixes/2)
			case 2:
				peers[i].Prefixes = opts.Prefixes/4 + rng.Intn(opts.Prefixes/2)
				peers[i].Offset = rng.Intn(opts.Prefixes)
			}
		}
	}

	groupSize := 0 // default k=2
	if opts.axisEnabled(AxisGroupSize) && numPeers > 2 && rng.Intn(2) == 1 {
		groupSize = 2 + rng.Intn(numPeers-1) // up to numPeers
	}

	numEvents := 1 + rng.Intn(opts.MaxEvents)
	events := make([]Event, 0, numEvents)
	totalWeight := 0
	for _, k := range fuzzKinds {
		totalWeight += k.weight
	}
	for i := 0; i < numEvents; i++ {
		ev := Event{At: time.Duration(500+rng.Intn(7500)) * time.Millisecond}
		roll := rng.Intn(totalWeight)
		for _, k := range fuzzKinds {
			if roll < k.weight {
				ev.Kind = k.kind
				break
			}
			roll -= k.weight
		}
		switch ev.Kind {
		case sim.EventSRLGDown:
			if numPeers < 3 {
				ev.Kind = sim.EventPeerDown // a 2-peer SRLG is just "everything"
			}
		}
		switch ev.Kind {
		case sim.EventSRLGDown:
			size := 2
			if numPeers > 3 && rng.Intn(2) == 1 {
				size = 3
			}
			members := rng.Perm(numPeers)[:size]
			sort.Ints(members)
			for _, m := range members {
				ev.Peers = append(ev.Peers, names[m])
			}
		default:
			ev.Peer = names[rng.Intn(numPeers)]
		}
		switch ev.Kind {
		case sim.EventPeerDown, sim.EventLinkFlap:
			if opts.axisEnabled(AxisDetection) && rng.Intn(10) == 0 {
				ev.Detection = sim.DetectHoldTimer // spec.HoldTimer below keeps this cheap
			}
		}
		switch ev.Kind {
		case sim.EventLinkFlap:
			ev.Hold = time.Duration(30+rng.Intn(3000)) * time.Millisecond
		case sim.EventSessionReset:
			if rng.Intn(2) == 1 {
				ev.Graceful = true
			}
			if rng.Intn(2) == 1 {
				ev.Hold = time.Duration(300+rng.Intn(1700)) * time.Millisecond
			}
		case sim.EventUpdateNoise:
			ev.Hold = time.Duration(500+rng.Intn(1500)) * time.Millisecond
			ev.Rate = 500 + 500*rng.Intn(10)
		case sim.EventPartialWithdraw:
			ev.Fraction = float64(1+rng.Intn(9)) / 10
		}
		events = append(events, ev)
	}

	// The centralization-economics dimensions, drawn after the timeline in
	// a fixed order so specs stay pure functions of (seed, index, opts).
	var routers []Router
	if opts.axisEnabled(AxisDeployment) && rng.Intn(3) == 0 {
		n := 2 + rng.Intn(3)
		sc := 1 + rng.Intn(n) // at least one supercharged router
		routers = make([]Router, n)
		for _, idx := range rng.Perm(n)[:sc] {
			routers[idx].Supercharged = true
		}
	}
	var cost *sim.ControllerCost
	if opts.axisEnabled(AxisCost) && rng.Intn(3) == 0 {
		cost = &sim.ControllerCost{
			Base:      time.Duration(rng.Intn(201)) * time.Millisecond,
			PerUpdate: time.Duration(rng.Intn(1001)) * time.Nanosecond,
			PerRule:   time.Duration(rng.Intn(2001)) * time.Microsecond,
		}
	}
	replicas := 0
	var takeover time.Duration
	durable := false
	if opts.axisEnabled(AxisReplicas) && rng.Intn(3) == 0 {
		replicas = 2 + rng.Intn(2)
		takeover = time.Duration(100+rng.Intn(401)) * time.Millisecond
		durable = rng.Intn(2) == 1
		// Strictly fewer failovers than replicas: the controller survives
		// the run, so the acceleration claims still bind (CheckSpec prices
		// in the takeover windows; replica-exhausting timelines would be
		// skipped by skipReason instead of checked).
		for f := 1 + rng.Intn(replicas-1); f > 0; f-- {
			events = append(events, Event{
				At:   time.Duration(500+rng.Intn(7500)) * time.Millisecond,
				Kind: sim.EventControllerFailover,
			})
		}
	}

	return Spec{
		Name: fmt.Sprintf("fuzz-%d-%d", seed, index),
		Description: fmt.Sprintf(
			"Fuzzer-generated timeline %d of session seed %d (reproduce: scenario fuzz -seed %d).",
			index, seed, seed),
		Peers:     peers,
		Events:    events,
		GroupSize: groupSize,
		Prefixes:  opts.Prefixes,
		Flows:     opts.Flows,
		// Keep the hold-timer detection path affordable: 5 s instead of
		// the protocol-default 90 s, still far above every other latency.
		HoldTimer: 5 * time.Second,
		Routers:   routers,
		Cost:      cost,
		Replicas:  replicas,
		Takeover:  takeover,
		Durable:   durable,
	}
}

// acceleratable reports whether the supercharger claims constant-time
// convergence for the event — the kinds the oracle holds it to.
func acceleratable(ev Event) bool {
	switch ev.Kind {
	case sim.EventPeerDown, sim.EventLinkFlap, sim.EventSRLGDown:
		return true
	case sim.EventSessionReset:
		return !ev.Graceful
	}
	return false
}

// sessionUpDelay mirrors the simulator's default session
// re-establishment latency (sim.TimelineConfig.SessionUp) for the
// interval analysis below.
const sessionUpDelay = time.Second

// downInterval is one span during which a peer may be unusable as a
// backup-group target: [start, end), with end < 0 meaning "until the
// end of the run".
type downInterval struct{ start, end time.Duration }

// overlapSlack widens interval close times past every delay that can
// keep a "restored" peer effectively dead a while longer: session
// re-establishment plus feed replay (the 2 s base is generous at
// fuzzing-scale tables), controller outage windows, replica takeovers,
// and the priced controller's processing tax. Over-widening only makes
// more specs exhaustible — the safe direction for a zero-false-positive
// oracle.
func overlapSlack(s Spec) time.Duration {
	slack := 2 * time.Second
	for _, ev := range s.Events {
		switch ev.Kind {
		case sim.EventControllerRestart:
			slack += ev.Hold
		case sim.EventControllerFailover:
			slack += takeoverFor(s, ev)
		}
	}
	if s.Cost != nil {
		slack += s.Cost.Base + time.Duration(s.Prefixes)*s.Cost.PerUpdate + 64*s.Cost.PerRule
	}
	return slack
}

// takeoverFor resolves a failover event's takeover window the way the
// simulator does: event Hold, else spec Takeover, else the 2 s default.
func takeoverFor(s Spec, ev Event) time.Duration {
	if ev.Hold > 0 {
		return ev.Hold
	}
	if s.Takeover > 0 {
		return s.Takeover
	}
	return 2 * time.Second
}

// downIntervals expands the timeline into per-peer down intervals: an
// interval opens the instant a link is cut (earlier than the true dead
// window, which starts at detection) and closes only sessionUp +
// overlapSlack after the restoring event (well after the replayed feed
// has landed). Hard session resets contribute their own restart-window
// intervals; graceful restarts preserve forwarding state and contribute
// nothing. Each result is a superset of the peer's true dead window, so
// interval overlap can only over-report exhaustibility.
func downIntervals(s Spec) map[string][]downInterval {
	slack := overlapSlack(s)
	type point struct {
		at   time.Duration
		down bool
	}
	points := map[string][]point{}
	iv := map[string][]downInterval{}
	for _, ev := range s.Events {
		switch ev.Kind {
		case sim.EventPeerDown:
			points[ev.Peer] = append(points[ev.Peer], point{ev.At, true})
		case sim.EventPeerUp:
			points[ev.Peer] = append(points[ev.Peer], point{ev.At, false})
		case sim.EventLinkFlap:
			points[ev.Peer] = append(points[ev.Peer],
				point{ev.At, true}, point{ev.At + ev.Hold, false})
		case sim.EventSRLGDown:
			for _, p := range ev.Peers {
				points[p] = append(points[p], point{ev.At, true})
			}
		case sim.EventSessionReset:
			if ev.Graceful {
				continue // forwarding preserved across the restart
			}
			restart := ev.Hold
			if restart == 0 {
				restart = sessionUpDelay
			}
			iv[ev.Peer] = append(iv[ev.Peer],
				downInterval{ev.At, ev.At + restart + slack})
		}
	}
	for peer, pts := range points {
		// Restores sort before cuts at the same instant: the restore
		// closes any open interval and the cut reopens one — losing
		// neither, and erring toward longer coverage.
		sort.SliceStable(pts, func(i, j int) bool {
			if pts[i].at != pts[j].at {
				return pts[i].at < pts[j].at
			}
			return !pts[i].down && pts[j].down
		})
		var open time.Duration
		opened := false
		for _, p := range pts {
			switch {
			case p.down && !opened:
				open, opened = p.at, true
			case !p.down && opened:
				iv[peer] = append(iv[peer],
					downInterval{open, p.at + sessionUpDelay + slack})
				opened = false
			}
		}
		if opened {
			iv[peer] = append(iv[peer], downInterval{open, -1}) // never restored
		}
	}
	return iv
}

// exhaustible reports whether the timeline can drive every member of a
// k-tuple backup-group dead at once, where k is the effective group
// size min(GroupSize, peers): it computes conservative per-peer down
// intervals (downIntervals) and sweeps their start points for an
// instant where at least k distinct peers are down simultaneously.
// Earlier generations counted distinct downed peers across the whole
// timeline, which also skipped timelines whose failures never overlap —
// separated failures the supercharger handles one at a time and should
// be held to. The oracle must still have zero false positives on CI's
// fixed seeds, so the intervals are widened (overlapSlack), never
// narrowed; genuinely overlapping exhaustion remains exempt (documented
// in docs/fuzzing.md).
func exhaustible(s Spec) bool {
	k := s.GroupSize
	if k == 0 {
		k = 2
	}
	if n := len(s.Peers); k > n {
		k = n
	}
	iv := downIntervals(s)
	// The maximum overlap over continuous time is attained at some
	// interval start, so sweeping the starts is exact.
	for _, list := range iv {
		for _, probe := range list {
			t := probe.start
			overlapping := 0
			for _, peerIv := range iv {
				for _, other := range peerIv {
					if other.start <= t && (other.end < 0 || t < other.end) {
						overlapping++
						break
					}
				}
			}
			if overlapping >= k {
				return true
			}
		}
	}
	return false
}

// skipReason reports why the oracle exempts a spec ("" = checked):
// k-exhaustible timelines (see exhaustible) and replica-exhausting
// timelines — at least as many controller-failover events as replicas,
// after which the controller is dead and fail-standalone forwarding
// with no new reactions is the documented expected behavior.
func skipReason(s Spec) string {
	if exhaustible(s) {
		return "k-exhaustible"
	}
	failovers := 0
	for _, ev := range s.Events {
		if ev.Kind == sim.EventControllerFailover {
			failovers++
		}
	}
	replicas := s.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if failovers >= replicas {
		return "replica-exhausted"
	}
	return ""
}

// costAllowance is the extra supercharged latency (in ms) the spec's
// centralization economics legitimately add to a reaction: the priced
// controller's processing tax plus, per failover event, the takeover
// window a reaction may have to wait out (and the standby's resync
// margin). Added to the oracle's ratio threshold so controllers that
// are priced or failing over as configured don't produce findings.
func costAllowance(s Spec) float64 {
	var allow time.Duration
	if s.Cost != nil {
		allow += s.Cost.Base + time.Duration(s.Prefixes)*s.Cost.PerUpdate + 64*s.Cost.PerRule
	}
	for _, ev := range s.Events {
		if ev.Kind == sim.EventControllerFailover {
			allow += takeoverFor(s, ev) + 200*time.Millisecond
		}
	}
	return float64(allow) / 1e6
}

// CheckSpec is the fuzzing oracle: it runs the spec in both modes and
// returns a non-empty reason if the supercharged mode regressed —
// stranded flows the standalone router recovered, or converged slower
// than Slack× the standalone worst case on an event it claims to
// accelerate. An empty reason means the spec passes.
//
// Two documented carve-outs (skipReason): when the timeline can exhaust
// a backup-group — take GroupSize distinct peers down at once, so every
// member of a k-tuple may be dead while some k+1-th peer survives — the
// supercharged mode legitimately degrades (stranded flows or per-entry
// fallback convergence through the extra controller hop; the k-sizing
// trade-off the srlg-dual-failure builtin documents). And when the
// timeline kills every controller replica, fail-standalone forwarding
// with no further reactions is the designed behavior. Neither is a code
// regression, so such specs are exempt.
func CheckSpec(ctx context.Context, spec Spec, opts FuzzOptions) (string, error) {
	opts = opts.withDefaults()
	if skipReason(spec) != "" {
		return "", nil
	}
	allowMS := costAllowance(spec)
	var r Runner
	sa, err := r.RunUnit(ctx, spec, sim.Standalone, opts.Prefixes, opts.Flows, 1)
	if err != nil {
		if ctx.Err() != nil {
			return "", err
		}
		return fmt.Sprintf("standalone run failed: %v", err), nil
	}
	su, err := r.RunUnit(ctx, spec, sim.Supercharged, opts.Prefixes, opts.Flows, 1)
	if err != nil {
		if ctx.Err() != nil {
			return "", err
		}
		return fmt.Sprintf("supercharged run failed: %v", err), nil
	}
	if len(sa.Events) != len(su.Events) {
		return fmt.Sprintf("event count mismatch: standalone %d, supercharged %d",
			len(sa.Events), len(su.Events)), nil
	}
	for i := range sa.Events {
		se, ue := sa.Events[i], su.Events[i]
		if ue.Unrecovered > se.Unrecovered {
			return fmt.Sprintf(
				"event %d (%s): supercharged stranded %d flows, standalone %d",
				i, ue.Kind, ue.Unrecovered, se.Unrecovered), nil
		}
		if !acceleratable(spec.Events[i]) {
			continue
		}
		// On mixed partial deployments only the supercharged class is held
		// to the acceleration claim: the vanilla routers converge like the
		// baseline modulo their independent control-plane jitter draws.
		uc := ue.Convergence
		if ue.SuperchargedClass != nil {
			uc = ue.SuperchargedClass.Convergence
		}
		if se.Convergence == nil || uc == nil {
			continue
		}
		if uc.MaxMS > se.Convergence.MaxMS*opts.Slack+convGraceMS+allowMS {
			return fmt.Sprintf(
				"event %d (%s): supercharged worst blackout %.0fms vs standalone %.0fms (slack %.2g, allowance %.0fms)",
				i, ue.Kind, uc.MaxMS, se.Convergence.MaxMS, opts.Slack, allowMS), nil
		}
	}
	return "", nil
}

// checkFunc is the oracle signature ShrinkSpec minimizes against; tests
// inject synthetic oracles to pin the shrinker's behavior.
type checkFunc func(context.Context, Spec, FuzzOptions) (string, error)

// ShrinkSpec greedily minimizes a failing spec: repeatedly try dropping
// one event, then one unreferenced peer, then one field simplification,
// keeping any candidate that still fails the oracle (for any reason),
// until no single removal fails. The result is 1-minimal over events:
// removing any one of them makes the oracle pass. Candidates are tried
// in a fixed order, so shrinking is as deterministic as generation.
func ShrinkSpec(ctx context.Context, spec Spec, opts FuzzOptions) (Spec, string, error) {
	return shrinkSpec(ctx, spec, opts.withDefaults(), CheckSpec)
}

func shrinkSpec(ctx context.Context, spec Spec, opts FuzzOptions, check checkFunc) (Spec, string, error) {
	reason, err := check(ctx, spec, opts)
	if err != nil || reason == "" {
		return spec, reason, err
	}
	for {
		smaller, smallerReason, err := shrinkStep(ctx, spec, opts, check)
		if err != nil {
			return spec, reason, err
		}
		if smaller == nil {
			return spec, reason, nil // nothing removable: minimal
		}
		spec, reason = *smaller, smallerReason
	}
}

// shrinkStep tries every single-removal candidate in order and returns
// the first that still fails (nil when none do).
func shrinkStep(ctx context.Context, spec Spec, opts FuzzOptions, check checkFunc) (*Spec, string, error) {
	// 1. Drop one event.
	for i := range spec.Events {
		if len(spec.Events) == 1 {
			break // a scenario needs a timeline
		}
		cand := cloneSpec(spec)
		cand.Events = append(cand.Events[:i:i], cand.Events[i+1:]...)
		if keep, reason, err := tryCandidate(ctx, cand, opts, check); err != nil || keep {
			return &cand, reason, err
		}
	}
	// 2. Drop one peer no remaining event references (topologies need 2).
	for i := range spec.Peers {
		if len(spec.Peers) <= 2 || peerReferenced(spec, spec.Peers[i].Name) {
			continue
		}
		cand := cloneSpec(spec)
		cand.Peers = append(cand.Peers[:i:i], cand.Peers[i+1:]...)
		if keep, reason, err := tryCandidate(ctx, cand, opts, check); err != nil || keep {
			return &cand, reason, err
		}
	}
	// 3. Simplify fields: full feeds, default group size, default
	// detection — anything that survives simplification reads easier.
	for _, simplify := range []func(*Spec) bool{
		func(s *Spec) bool {
			changed := false
			for i := range s.Peers {
				if s.Peers[i].Prefixes != 0 || s.Peers[i].Offset != 0 {
					s.Peers[i].Prefixes, s.Peers[i].Offset = 0, 0
					changed = true
				}
			}
			return changed
		},
		func(s *Spec) bool {
			if s.GroupSize != 0 {
				s.GroupSize = 0
				return true
			}
			return false
		},
		func(s *Spec) bool {
			changed := false
			for i := range s.Events {
				if s.Events[i].Detection != "" {
					s.Events[i].Detection = ""
					changed = true
				}
			}
			return changed
		},
		func(s *Spec) bool {
			if s.Cost == nil {
				return false
			}
			s.Cost = nil
			return true
		},
		func(s *Spec) bool {
			if len(s.Routers) == 0 {
				return false
			}
			s.Routers = nil
			return true
		},
		func(s *Spec) bool {
			// The replica model and its failover events stand or fall
			// together: failovers without standby replicas would kill the
			// controller outright and change what the verdict means.
			if s.Replicas == 0 && s.Takeover == 0 && !s.Durable {
				return false
			}
			s.Replicas, s.Takeover, s.Durable = 0, 0, false
			kept := s.Events[:0]
			for _, ev := range s.Events {
				if ev.Kind != sim.EventControllerFailover {
					kept = append(kept, ev)
				}
			}
			s.Events = kept
			return true
		},
	} {
		cand := cloneSpec(spec)
		if !simplify(&cand) {
			continue
		}
		if keep, reason, err := tryCandidate(ctx, cand, opts, check); err != nil || keep {
			return &cand, reason, err
		}
	}
	return nil, "", nil
}

// tryCandidate reports whether a shrink candidate is valid and still
// fails the oracle.
func tryCandidate(ctx context.Context, cand Spec, opts FuzzOptions, check checkFunc) (bool, string, error) {
	if err := cand.Validate(); err != nil {
		return false, "", nil // e.g. dropped the last peer an event needs
	}
	reason, err := check(ctx, cand, opts)
	if err != nil {
		return false, "", err
	}
	return reason != "", reason, nil
}

func peerReferenced(s Spec, name string) bool {
	for _, ev := range s.Events {
		if ev.Peer == name {
			return true
		}
		for _, p := range ev.Peers {
			if p == name {
				return true
			}
		}
	}
	return false
}

func cloneSpec(s Spec) Spec {
	out := s
	out.Peers = append([]Peer(nil), s.Peers...)
	out.Events = make([]Event, len(s.Events))
	for i, ev := range s.Events {
		out.Events[i] = ev
		out.Events[i].Peers = append([]string(nil), ev.Peers...)
	}
	out.PrefixSweep = append([]int(nil), s.PrefixSweep...)
	out.Routers = append([]Router(nil), s.Routers...)
	if s.Cost != nil {
		c := *s.Cost
		out.Cost = &c
	}
	return out
}

// TimelineString renders a spec's topology and timeline as one stable
// line — the byte-for-byte reproducible fuzz log format.
func TimelineString(s Spec) string {
	var b strings.Builder
	k := s.GroupSize
	if k == 0 {
		k = 2
	}
	fmt.Fprintf(&b, "%dp k=%d", len(s.Peers), k)
	// Centralization-economics markers, appended only when the dimension
	// is in play so the classic header bytes stay stable.
	if len(s.Routers) > 0 {
		sc := 0
		for _, r := range s.Routers {
			if r.Supercharged {
				sc++
			}
		}
		fmt.Fprintf(&b, " d=%d/%d", sc, len(s.Routers))
	}
	if s.Cost != nil {
		b.WriteString(" cost")
	}
	if s.Replicas > 0 {
		fmt.Fprintf(&b, " rep=%d", s.Replicas)
	}
	if s.Durable {
		b.WriteString(" durable")
	}
	b.WriteString(":")
	for _, ev := range s.Events {
		b.WriteString(" ")
		b.WriteString(string(ev.Kind))
		b.WriteString("(")
		var args []string
		if ev.Peer != "" {
			args = append(args, ev.Peer)
		}
		if len(ev.Peers) > 0 {
			args = append(args, strings.Join(ev.Peers, "+"))
		}
		args = append(args, fmt.Sprintf("@%v", ev.At))
		if ev.Hold > 0 {
			args = append(args, fmt.Sprintf("hold=%v", ev.Hold))
		}
		if ev.Fraction > 0 {
			args = append(args, fmt.Sprintf("f=%.1f", ev.Fraction))
		}
		if ev.Rate > 0 {
			args = append(args, fmt.Sprintf("rate=%d", ev.Rate))
		}
		if ev.Graceful {
			args = append(args, "graceful")
		}
		if ev.Detection != "" {
			args = append(args, string(ev.Detection))
		}
		b.WriteString(strings.Join(args, " "))
		b.WriteString(")")
	}
	return b.String()
}
