package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"supercharged/internal/feed"
	"supercharged/internal/sim"
)

// writeTestDump renders a synthetic table as an MRT dump in dir and
// returns its path.
func writeTestDump(t *testing.T, dir string, n int) string {
	t.Helper()
	table := feed.Generate(feed.Config{N: n, Seed: 11})
	path := filepath.Join(dir, "table.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := table.WriteMRT(f, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

// LoadTable resolves relative paths upward from the working directory —
// the property that lets `go test` in a package dir and a repo-root CI
// job name the same committed dump — and memoizes per resolved path.
func TestLoadTableResolution(t *testing.T) {
	dir := t.TempDir()
	abs := writeTestDump(t, dir, 50)

	tb, err := LoadTable(abs)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 50 {
		t.Fatalf("loaded %d routes, want 50", tb.Len())
	}
	again, err := LoadTable(abs)
	if err != nil {
		t.Fatal(err)
	}
	if tb != again {
		t.Error("second load returned a different table (memoization broken)")
	}

	// Relative resolution: chdir into a subdirectory; the path names the
	// file relative to a parent.
	sub := filepath.Join(dir, "a", "b")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
	if err := os.Chdir(sub); err != nil {
		t.Fatal(err)
	}
	fromChild, err := LoadTable("table.mrt")
	if err != nil {
		t.Fatalf("upward resolution failed: %v", err)
	}
	if fromChild != tb {
		t.Error("upward-resolved load did not hit the memoized table")
	}
	if _, err := LoadTable("definitely-not-here.mrt"); err == nil {
		t.Fatal("missing table loaded without error")
	}
}

// A spec's Table path must not be required at registration/validation
// time — builtins referencing the committed dump validate in every
// binary, dump present or not.
func TestSpecTableNotRequiredByValidate(t *testing.T) {
	spec, ok := Lookup("paper-fig5-real")
	if !ok {
		t.Fatal("paper-fig5-real not registered")
	}
	spec.Table = "no/such/dump.mrt"
	if err := spec.Validate(); err != nil {
		t.Fatalf("Validate must not open the dump: %v", err)
	}
	// Running it, though, fails loudly.
	if _, err := Run(context.Background(), spec, Options{Prefixes: 100}); err == nil {
		t.Fatal("run with a missing dump succeeded")
	}
}

// A run must fail loudly when the dump holds fewer routes than the
// requested table size — never silently shrink the experiment.
func TestTableShorterThanRunFails(t *testing.T) {
	path := writeTestDump(t, t.TempDir(), 100)
	spec, _ := Lookup("paper-fig5-real")
	if _, err := Run(context.Background(), spec, Options{Prefixes: 5000, Table: path}); err == nil {
		t.Fatal("run over a 100-route dump at 5000 prefixes succeeded")
	}
}

// The differential harness: the same scenario over the synthetic feed
// and over an MRT dump of different content must produce reports with
// the identical schema and run structure, each deterministic per seed.
// This is what makes synthetic and real results comparable side by side.
func TestSyntheticVsMRTDifferential(t *testing.T) {
	path := writeTestDump(t, t.TempDir(), 2000)
	spec, _ := Lookup("paper-fig5")

	runIt := func(table string) *Report {
		t.Helper()
		rep, err := Run(context.Background(), spec, Options{Prefixes: 1000, Seed: 1, Table: table})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	synthetic := runIt("")
	real := runIt(path)

	// Identical report schema: same JSON keys at every level.
	if a, b := jsonKeys(t, synthetic), jsonKeys(t, real); a != b {
		t.Fatalf("report schemas diverge:\nsynthetic %s\nreal      %s", a, b)
	}
	// Identical run structure: mode/size grid, event count, peer set.
	if len(synthetic.Runs) != len(real.Runs) {
		t.Fatalf("%d synthetic runs vs %d real", len(synthetic.Runs), len(real.Runs))
	}
	for i := range synthetic.Runs {
		s, r := synthetic.Runs[i], real.Runs[i]
		if s.Mode != r.Mode || s.Prefixes != r.Prefixes || len(s.Events) != len(r.Events) {
			t.Fatalf("run %d structure diverges: %+v vs %+v", i, s, r)
		}
	}
	// Both backends converge every probed flow; the supercharged runs
	// must show the same flat convergence on either feed.
	for _, rep := range []*Report{synthetic, real} {
		for _, run := range rep.Runs {
			ev := run.Events[0]
			if ev.Affected == 0 || ev.Recovered != ev.Affected {
				t.Fatalf("run %s: %d affected, %d recovered", run.Mode, ev.Affected, ev.Recovered)
			}
		}
	}

	// Deterministic per seed on the real backend too.
	again := runIt(path)
	aj, err := real.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := again.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same seed, different MRT-backed reports:\n%s\nvs\n%s", aj, bj)
	}
}

// jsonKeys flattens a report's JSON key structure (keys only, no
// values) for schema comparison.
func jsonKeys(t *testing.T, rep *Report) string {
	t.Helper()
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	var walk func(v any) any
	walk = func(v any) any {
		switch x := v.(type) {
		case map[string]any:
			out := map[string]any{}
			for k, vv := range x {
				out[k] = walk(vv)
			}
			return out
		case []any:
			if len(x) == 0 {
				return x
			}
			// One element stands in for all: runs share a schema.
			return []any{walk(x[0])}
		default:
			return "·"
		}
	}
	out, err := json.Marshal(walk(v))
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// paper-fig5-real runs end to end over the committed sample dump — the
// PR's acceptance scenario, trimmed to one sweep size for test time.
func TestPaperFig5RealOverCommittedDump(t *testing.T) {
	spec, ok := Lookup("paper-fig5-real")
	if !ok {
		t.Fatal("paper-fig5-real not registered")
	}
	if spec.Table != "testdata/ris-sample.mrt" {
		t.Fatalf("builtin table path = %q", spec.Table)
	}
	if spec.MaxSeeds != 1 {
		t.Fatalf("MaxSeeds = %d, want 1", spec.MaxSeeds)
	}
	rep, err := Run(context.Background(), spec, Options{Prefixes: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("%d runs, want standalone + supercharged", len(rep.Runs))
	}
	for _, run := range rep.Runs {
		ev := run.Events[0]
		if ev.Kind != sim.EventPeerDown || ev.Peer != "R2" {
			t.Fatalf("run %s: event %+v", run.Mode, ev)
		}
		if ev.Recovered != ev.Affected || ev.Affected == 0 {
			t.Fatalf("run %s: %d affected, %d recovered", run.Mode, ev.Affected, ev.Recovered)
		}
		if run.Mode == sim.Supercharged.String() {
			// The headline number: flat ~130 ms on the real table.
			if ev.Convergence == nil || ev.Convergence.MaxMS > 200 {
				t.Fatalf("supercharged convergence over the real table: %+v", ev.Convergence)
			}
		}
	}
}
